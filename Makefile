# Convenience targets for the nwscpu reproduction.

GO ?= go
GOFMT ?= gofmt
# Per-fuzzer budget for fuzz-smoke; raise locally for a deeper run, e.g.
#   make fuzz-smoke FUZZTIME=2m
FUZZTIME ?= 5s

.PHONY: all build test test-race chaos chaos-cluster chaos-repair vet docs-check fuzz-smoke grid grid-smoke bench bench-forecast bench-forecast-smoke bench-memory bench-memory-smoke bench-wire-smoke bench-subscribe-smoke bench-paper experiments report clean

all: build vet docs-check test chaos-cluster chaos-repair fuzz-smoke grid-smoke bench-forecast-smoke bench-memory-smoke bench-wire-smoke bench-subscribe-smoke

build:
	$(GO) build ./...

# Static checks: go vet plus a gofmt cleanliness gate.
vet:
	$(GO) vet ./...
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Tier-1 flow: the full suite, plus the race detector on the concurrent
# observability, daemon, and resilience packages.
test: test-race
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/metrics ./internal/nwsnet ./internal/resilience/...

# Fault-injection suite under the race detector: the resilience package's
# own tests plus the chaos integration scenarios (replica killed mid-run,
# full-outage backlog drain, seeded-schedule determinism).
chaos:
	$(GO) test -race ./internal/resilience/...
	$(GO) test -race -run 'Chaos' -v ./internal/nwsnet

# Partitioned-cluster failover smoke under the race detector: a 3-node
# cluster with writers streaming, one shard owner killed mid-run, a
# replacement joining via rebalancing handoff — asserts zero measurement
# loss, bounded unavailability, and bit-identical convergence against a
# single-node reference.
chaos-cluster:
	$(GO) test -race -run 'ChaosCluster' -count=1 -v ./internal/nwsnet

# Repair-plane fault campaign under the race detector: the repair and
# hinted-handoff unit suites plus the seeded fault campaign (crashes past
# the backlog window, stalls, asymmetric partitions, clock skew) run with
# and without anti-entropy — asserting zero loss and bounded bit-identical
# convergence with repair, reproduced divergence without — then the same
# campaign executed twice through the CLI and compared byte for byte.
chaos-repair:
	$(GO) test -race -run 'Repair|Hint|Fault|ReplicaDivergence' -count=1 ./internal/nwsnet ./internal/grid
	$(GO) run -race ./cmd/nwsgrid -faults -seed 1 -out /tmp/nwsgrid.fault.a >/dev/null
	$(GO) run -race ./cmd/nwsgrid -faults -seed 1 -out /tmp/nwsgrid.fault.b >/dev/null
	cmp /tmp/nwsgrid.fault.a /tmp/nwsgrid.fault.b

# Doc drift gate: docs/PROTOCOL.md (the normative wire spec) is compared
# against the codec — the opcode tables both ways, and the worked hex/JSON
# examples byte for byte.
docs-check:
	$(GO) test -run 'TestProtocolDoc' -count=1 ./internal/nwsnet

# Bounded fuzzing of both halves of the wire protocol in both codecs: the
# server-side request decode/execute path and the client-side response
# decode and shed/busy error classification, for the v1 JSON line codec
# (which also cross-checks v2 round-trips of whatever JSON decodes) and the
# v2 binary frame codec. Go fuzzers must run one at a time, so each gets
# its own invocation of $(FUZZTIME).
fuzz-smoke:
	$(GO) test -run - -fuzz 'FuzzDecodeRequest$$' -fuzztime $(FUZZTIME) ./internal/nwsnet
	$(GO) test -run - -fuzz 'FuzzDecodeResponse$$' -fuzztime $(FUZZTIME) ./internal/nwsnet
	$(GO) test -run - -fuzz 'FuzzDecodeBinaryRequest$$' -fuzztime $(FUZZTIME) ./internal/nwsnet
	$(GO) test -run - -fuzz 'FuzzDecodeBinaryResponse$$' -fuzztime $(FUZZTIME) ./internal/nwsnet

# Grid-scale capacity baseline: the full 1000-host scenario harness
# regenerating BENCH_grid.json (schema nws/grid-report/v1). Deterministic:
# rerunning with an unchanged harness leaves the file byte-identical.
grid:
	$(GO) run ./cmd/nwsgrid -seed 1 -json BENCH_grid.json

# CI smoke for the harness: the grid package and nwsgrid CLI tests under
# the race detector (including the same-seed byte-identity checks), then a
# down-scaled run executed twice and compared byte for byte.
grid-smoke:
	$(GO) test -race -count=1 ./internal/grid ./cmd/nwsgrid
	$(GO) run ./cmd/nwsgrid -smoke -hosts 21 -duration 120 -out /tmp/nwsgrid.smoke.a >/dev/null
	$(GO) run ./cmd/nwsgrid -smoke -hosts 21 -duration 120 -out /tmp/nwsgrid.smoke.b >/dev/null
	cmp /tmp/nwsgrid.smoke.a /tmp/nwsgrid.smoke.b

# Forecaster hot-path baseline: the Go benchmark suite with allocation
# accounting, then the nwsperf harness regenerating BENCH_forecast.json
# (measured numbers next to the committed seed baseline).
bench-forecast:
	$(GO) test -run - -bench 'BenchmarkEngine|BenchmarkBank' -benchmem ./internal/forecast
	$(GO) run ./cmd/nwsperf -out BENCH_forecast.json

# CI smoke for the same path: one iteration of each benchmark under the race
# detector (catches data races and broken benchmark setup, not perf), plus a
# down-scaled nwsperf run writing to a scratch file.
bench-forecast-smoke:
	$(GO) test -race -run - -bench 'BenchmarkEngine|BenchmarkBank' -benchtime 1x -benchmem ./internal/forecast
	$(GO) run ./cmd/nwsperf -scale 0.01 -out /tmp/BENCH_forecast.smoke.json

# Memory serving-path baseline: the nwsload closed-loop generator at the
# acceptance workload (64 writers over 256 series at steady-state eviction),
# regenerating BENCH_memory.json — the sharded serving path measured next to
# the embedded seed single-mutex implementation, both fresh.
bench-memory:
	$(GO) run ./cmd/nwsload -out BENCH_memory.json

# CI smoke for the same path: a ~1 s down-scaled closed loop under the race
# detector, writing to a scratch file (guards the generator and the serving
# path's concurrency, not perf).
bench-memory-smoke:
	$(GO) run -race ./cmd/nwsload -smoke -out /tmp/BENCH_memory.smoke.json

# Wire-path CI smoke: the json/binary/binary-pipelined closed loops only, a
# ~1 s down-scaled run under the race detector writing to a scratch file
# (guards both codecs' serving and client paths under concurrency, not perf).
bench-wire-smoke:
	$(GO) run -race ./cmd/nwsload -smoke -wire-only -out /tmp/BENCH_wire.smoke.json

# Read-plane CI smoke: the subscribe_push and tenant_quota rows only — a
# bounded, down-scaled run under the race detector writing to a scratch
# file (guards the subscription hub, forecast cache, and tenant quota
# paths under concurrency, not perf).
bench-subscribe-smoke:
	$(GO) run -race ./cmd/nwsload -smoke -subscribe-only -out /tmp/BENCH_subscribe.smoke.json

# One iteration of every table/figure/ablation benchmark at 6-hour scale.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem .

# The paper's dimensions: 24-hour monitored runs, 1-week Hurst traces.
bench-paper:
	NWSBENCH_SCALE=paper $(GO) test -bench . -benchtime 1x -benchmem .

# Regenerate every table and figure at paper scale on stdout.
experiments:
	$(GO) run ./cmd/nwsbench all

# Paper-scale HTML report plus archived CSV traces under ./out.
report:
	$(GO) run ./cmd/nwsbench -save out/traces -html out/report.html all

clean:
	rm -rf out
