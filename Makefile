# Convenience targets for the nwscpu reproduction.

GO ?= go

.PHONY: all build test vet bench bench-paper experiments report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One iteration of every table/figure/ablation benchmark at 6-hour scale.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem .

# The paper's dimensions: 24-hour monitored runs, 1-week Hurst traces.
bench-paper:
	NWSBENCH_SCALE=paper $(GO) test -bench . -benchtime 1x -benchmem .

# Regenerate every table and figure at paper scale on stdout.
experiments:
	$(GO) run ./cmd/nwsbench all

# Paper-scale HTML report plus archived CSV traces under ./out.
report:
	$(GO) run ./cmd/nwsbench -save out/traces -html out/report.html all

clean:
	rm -rf out
