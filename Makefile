# Convenience targets for the nwscpu reproduction.

GO ?= go
GOFMT ?= gofmt

.PHONY: all build test test-race chaos vet bench bench-paper experiments report clean

all: build vet test

build:
	$(GO) build ./...

# Static checks: go vet plus a gofmt cleanliness gate.
vet:
	$(GO) vet ./...
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Tier-1 flow: the full suite, plus the race detector on the concurrent
# observability, daemon, and resilience packages.
test: test-race
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/metrics ./internal/nwsnet ./internal/resilience/...

# Fault-injection suite under the race detector: the resilience package's
# own tests plus the chaos integration scenarios (replica killed mid-run,
# full-outage backlog drain, seeded-schedule determinism).
chaos:
	$(GO) test -race ./internal/resilience/...
	$(GO) test -race -run 'Chaos' -v ./internal/nwsnet

# One iteration of every table/figure/ablation benchmark at 6-hour scale.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem .

# The paper's dimensions: 24-hour monitored runs, 1-week Hurst traces.
bench-paper:
	NWSBENCH_SCALE=paper $(GO) test -bench . -benchtime 1x -benchmem .

# Regenerate every table and figure at paper scale on stdout.
experiments:
	$(GO) run ./cmd/nwsbench all

# Paper-scale HTML report plus archived CSV traces under ./out.
report:
	$(GO) run ./cmd/nwsbench -save out/traces -html out/report.html all

clean:
	rm -rf out
