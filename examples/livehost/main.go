// Livehost monitors the machine it runs on: it reads /proc/loadavg and
// /proc/stat, runs real spinning probe processes, and prints the three
// availability estimates plus an NWS forecast every few seconds — the
// paper's sensor suite pointed at your own computer.
//
//	go run ./examples/livehost [-n measurements] [-period duration]
//
// On non-Linux systems (no /proc) it falls back to a simulated host so the
// example is runnable everywhere.
package main

import (
	"flag"
	"fmt"
	"time"

	"nwscpu/internal/forecast"
	"nwscpu/internal/prochost"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

func main() {
	n := flag.Int("n", 12, "number of measurements to take")
	period := flag.Duration("period", 2*time.Second, "measurement period")
	flag.Parse()

	var host sensors.Host
	var sim *simos.Host
	if ph, err := prochost.New(); err == nil {
		host = ph
		fmt.Println("monitoring the local machine via /proc")
	} else {
		sim = simos.New(simos.DefaultConfig())
		workload.Submit(sim, workload.Thing1().Generate(86400))
		host = sensors.SimHost{H: sim}
		fmt.Printf("no /proc (%v); monitoring a simulated thing1 instead\n", err)
	}

	la := sensors.NewLoadAvgSensor(host)
	vm := sensors.NewVmstatSensor(host, 0)
	hyCfg := sensors.DefaultHybridConfig()
	hyCfg.ProbeEvery = 3
	hyCfg.ProbeLen = 0.5 // gentler probe for an interactive demo
	hy := sensors.NewHybridSensor(host, hyCfg)
	eng := forecast.NewDefaultEngine()

	fmt.Printf("\n%-8s %-10s %-10s %-10s %-22s\n",
		"t", "loadavg", "vmstat", "hybrid", "forecast (method)")
	for i := 0; i < *n; i++ {
		if sim != nil {
			sim.RunUntil(sim.Now() + period.Seconds())
		} else {
			time.Sleep(*period)
		}
		laV, vmV, hyV := la.Measure(), vm.Measure(), hy.Measure()
		eng.Update(hyV)
		line := fmt.Sprintf("%-8.0f %-10s %-10s %-10s",
			host.Now(), pct(laV), pct(vmV), pct(hyV))
		if pred, ok := eng.Forecast(); ok {
			line += fmt.Sprintf(" %-7s (%s)", pct(pred.Value), pred.Method)
		}
		fmt.Println(line)
	}

	fmt.Println("\nhybrid sensor state:")
	fmt.Printf("  selected passive method: %s\n", hy.SelectedMethod())
	fmt.Printf("  probe bias:              %+.1f%%\n", hy.Bias()*100)
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
