// Gridlab stands up a complete distributed NWS in one process — name
// server, durable memory, forecaster service, and one sensor daemon per
// simulated host — exactly the deployment the paper's forecasts were served
// from, then queries it the way a grid scheduler would.
//
//	go run ./examples/gridlab
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nwscpu/internal/nwsnet"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	stateDir, err := os.MkdirTemp("", "gridlab-memory-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)

	// 1. Name server with heartbeat expiry.
	nsSrv := nwsnet.NewServer(nwsnet.NewNameServer(), nil)
	nsAddr, err := nsSrv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer nsSrv.Close()

	// 2. Durable memory.
	mem, err := nwsnet.NewPersistentMemory(0, stateDir)
	if err != nil {
		return err
	}
	defer mem.Close()
	memSrv := nwsnet.NewServer(mem, nil)
	memAddr, err := memSrv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer memSrv.Close()

	// 3. Forecaster service over the memory.
	fcSrv := nwsnet.NewServer(nwsnet.NewForecasterService(memAddr, 0), nil)
	fcAddr, err := fcSrv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer fcSrv.Close()

	c := nwsnet.NewClient(0)
	for name, kind := range map[string]nwsnet.Kind{
		"memory0":     nwsnet.KindMemory,
		"forecaster0": nwsnet.KindForecaster,
	} {
		addr := memAddr
		if kind == nwsnet.KindForecaster {
			addr = fcAddr
		}
		if err := c.Register(nsAddr, nwsnet.Registration{Name: name, Kind: kind, Addr: addr}); err != nil {
			return err
		}
	}

	// 4. One sensor daemon per simulated host; an hour of virtual
	// measurements pushed through the real network stack.
	hosts := []workload.Profile{workload.Thing1(), workload.Thing2(), workload.Gremlin()}
	fmt.Printf("pushing 1 virtual hour of measurements from %d hosts through the NWS...\n\n", len(hosts))
	for _, p := range hosts {
		h := simos.New(simos.DefaultConfig())
		workload.Submit(h, p.Generate(4000))
		d := nwsnet.NewSensorDaemon(p.Name, sensors.SimHost{H: h}, memAddr, sensors.HybridConfig{})
		if err := d.Register(nsAddr, memAddr); err != nil {
			return err
		}
		for t := 10.0; t <= 3600; t += 10 {
			h.RunUntil(t)
			if err := d.Step(); err != nil {
				return err
			}
		}
	}

	// 5. Query it like a scheduler: enumerate sensors, read back series,
	// ask for forecasts.
	regs, err := c.List(nsAddr, nwsnet.KindSensor)
	if err != nil {
		return err
	}
	fmt.Println("registered sensors:")
	for _, r := range regs {
		fmt.Printf("  %-14s -> %s\n", r.Name, r.Addr)
	}

	keys, err := c.Series(memAddr)
	if err != nil {
		return err
	}
	fmt.Printf("\nmemory holds %d series; forecasting the hybrid series of each host:\n", len(keys))
	for _, p := range hosts {
		key := nwsnet.SeriesKey(p.Name, "nws_hybrid")
		fc, err := c.Forecast(fcAddr, key)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s next availability %.1f%%  (method %s, MAE %.2f%%, %d measurements)\n",
			p.Name, fc.Value*100, fc.Method, fc.MAE*100, fc.N)
	}

	files, _ := filepath.Glob(filepath.Join(stateDir, "*.log"))
	fmt.Printf("\ndurable memory wrote %d series logs under %s\n", len(files), stateDir)
	fmt.Println("(a restarted memory server would replay them; see nwsnet.PersistentMemory)")
	return nil
}
