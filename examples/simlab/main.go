// Simlab reproduces the paper's measurement-error experiment in miniature:
// it simulates the six UCSD hosts under their workloads for two virtual
// hours, measures each with the three sensors, runs ground-truth test
// processes, and prints a Table-1-style error report plus an ASCII rendering
// of the availability traces.
//
//	go run ./examples/simlab [-duration seconds]
package main

import (
	"flag"
	"fmt"
	"log"

	"nwscpu/internal/core"
	"nwscpu/internal/experiments"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

func main() {
	duration := flag.Float64("duration", 7200, "virtual seconds to simulate per host")
	flag.Parse()

	fmt.Printf("simulating %d hosts for %.0f virtual seconds each...\n\n",
		len(workload.Profiles(*duration)), *duration)
	fmt.Printf("%-12s %-14s %-14s %-14s %-10s\n",
		"Host", "Load Average", "vmstat", "NWS Hybrid", "(tests)")

	for _, profile := range workload.Profiles(*duration) {
		host := simos.New(simos.DefaultConfig())
		workload.Submit(host, profile.Generate(*duration+600))

		cfg := core.ShortTermConfig()
		cfg.TestPeriod = 300 // denser tests for a short demo run
		mon := core.NewMonitor(sensors.SimHost{H: host}, cfg)
		if err := mon.Run(*duration); err != nil {
			log.Fatalf("monitoring %s: %v", profile.Name, err)
		}

		row := fmt.Sprintf("%-12s", profile.Name)
		for _, method := range core.Methods {
			e, err := core.MeasurementError(mon.Measurements[method], mon.Tests)
			if err != nil {
				log.Fatalf("%s/%s: %v", profile.Name, method, err)
			}
			row += fmt.Sprintf(" %-13s", fmt.Sprintf("%.1f%%", e*100))
		}
		fmt.Printf("%s (%d)\n", row, mon.Tests.Len())

		if profile.Name == "thing2" {
			fmt.Println("\nthing2 availability (load-average method), % of CPU:")
			fmt.Print(experiments.AsciiPlot(mon.Measurements[core.MethodLoadAvg], 72, 10, 0, 1))
			fmt.Println()
		}
	}

	fmt.Println("\nnote the two anomalies the paper dissects:")
	fmt.Println("  conundrum  passive methods see a busy machine; the hybrid probe sees through the nice-19 soaker")
	fmt.Println("  kongo      the 1.5s probe evicts the long-running job, so the hybrid over-reports")
}
