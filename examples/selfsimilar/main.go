// Selfsimilar reproduces the paper's statistical analysis (Section 3.1) on
// a freshly generated trace: it simulates a host under heavy-tailed load,
// records the availability series, and then
//
//   - estimates the Hurst parameter by R/S analysis (pox plot) and by the
//     variance-time method,
//   - prints the head of the autocorrelation function, and
//   - shows how slowly the variance decays under aggregation, the signature
//     of self-similarity that distinguishes this series from white noise.
//
// go run ./examples/selfsimilar [-hours n]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/stats"
	"nwscpu/internal/workload"
)

func main() {
	hours := flag.Float64("hours", 24, "virtual hours of load to simulate")
	flag.Parse()
	duration := *hours * 3600

	fmt.Printf("simulating %.0f hours of heavy-tailed load on one host...\n", *hours)
	host := simos.New(simos.DefaultConfig())
	workload.Submit(host, workload.Thing2().Generate(duration+600))
	sh := sensors.SimHost{H: host}
	la := sensors.NewLoadAvgSensor(sh)

	var avail []float64
	for t := 10.0; t <= duration; t += 10 {
		host.RunUntil(t)
		avail = append(avail, la.Measure())
	}

	h, fit, err := stats.HurstRS(avail, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nR/S (pox plot) Hurst estimate:      H = %.2f (fit R2 %.2f)\n", h, fit.R2)

	hv, _, err := stats.HurstVarianceTime(avail, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("variance-time Hurst estimate:       H = %.2f\n", hv)

	// Contrast with white noise of the same length.
	rng := rand.New(rand.NewSource(1))
	noise := make([]float64, len(avail))
	for i := range noise {
		noise[i] = rng.Float64()
	}
	hn, _, err := stats.HurstRS(noise, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("white-noise control:                H = %.2f (should be ~0.5)\n", hn)

	fmt.Println("\nautocorrelation of the availability series:")
	acf := stats.ACF(avail, 360)
	for _, lag := range []int{1, 6, 30, 60, 180, 360} {
		fmt.Printf("  lag %4d (%5.0fs): %+.3f\n", lag, float64(lag)*10, acf[lag])
	}

	fmt.Println("\nvariance under aggregation (slow decay = self-similarity):")
	v0 := stats.Variance(avail)
	for _, m := range []int{1, 6, 30, 120} {
		agg := stats.BlockMeans(avail, m)
		v := stats.Variance(agg)
		fmt.Printf("  m=%4d: var %.5f (x%.2f of original; white noise would be x%.3f)\n",
			m, v, v/v0, 1/float64(m))
	}
}
