// Scheduler demonstrates the paper's motivating use case: placing a batch
// of tasks on a small grid using predicted CPU availability as an expansion
// factor, and comparing the forecast-driven policy against load-average-only
// and random placement.
//
//	go run ./examples/scheduler [-tasks n] [-demand cpuSeconds]
package main

import (
	"flag"
	"fmt"

	"nwscpu/internal/sched"
	"nwscpu/internal/workload"
)

func main() {
	nTasks := flag.Int("tasks", 12, "number of tasks to schedule")
	demand := flag.Float64("demand", 60, "CPU seconds per task")
	warmup := flag.Float64("warmup", 900, "sensor warm-up before placement (seconds)")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	horizon := *warmup + 20*float64(*nTasks)*(*demand)
	profiles := workload.Profiles(horizon)
	fmt.Printf("grid of %d hosts, %d tasks x %.0f CPU-seconds, %.0fs sensor warm-up\n\n",
		len(profiles), *nTasks, *demand, *warmup)

	tasks := sched.MakeTasks(*nTasks, *demand)
	for _, policy := range []sched.Policy{sched.PolicyForecast, sched.PolicyLoadAvg, sched.PolicyRandom} {
		res := sched.Experiment(profiles, tasks, policy, *warmup, *seed)
		counts := make(map[int]int)
		for _, h := range res.Placements {
			counts[h]++
		}
		fmt.Printf("%-13s makespan %7.1fs  mean completion %7.1fs  placements:",
			res.Policy, res.Makespan, res.MeanCompletion)
		for i, p := range profiles {
			if counts[i] > 0 {
				fmt.Printf(" %s=%d", p.Name, counts[i])
			}
		}
		fmt.Println()
	}

	fmt.Println("\nthe forecast policy routes work to conundrum (whose nice-19 soaker")
	fmt.Println("fools the load average) and away from genuinely contended hosts.")
}
