// Quickstart: feed a CPU-availability trace into the NWS forecasting engine
// and make one-step-ahead predictions, then run the same pipeline through a
// replicated memory group and kill a replica mid-run to show the stream
// surviving.
//
//	go run ./examples/quickstart
//
// The trace here is synthetic (a slowly drifting availability signal with
// occasional level shifts, like a workstation whose owner comes and goes);
// in a real deployment the measurements come from the sensors (see
// examples/livehost) or from a memory server (see package nwsnet).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"nwscpu/internal/forecast"
	"nwscpu/internal/nwsnet"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

func main() {
	// Build a synthetic availability trace: 2 hours at 10-second cadence.
	rng := rand.New(rand.NewSource(42))
	level := 0.8
	trace := make([]float64, 720)
	for i := range trace {
		if rng.Float64() < 0.01 { // someone starts or stops working
			level = 0.2 + 0.7*rng.Float64()
		}
		v := level + rng.NormFloat64()*0.04
		trace[i] = math.Max(0, math.Min(1, v))
	}

	// The engine runs the full NWS forecaster bank and always forwards the
	// member that has been most accurate so far.
	eng := forecast.NewDefaultEngine()
	for _, v := range trace {
		eng.Update(v)
	}

	pred, ok := eng.Forecast()
	if !ok {
		panic("no forecast available")
	}
	fmt.Printf("measurements seen:     %d\n", eng.N())
	fmt.Printf("next-step forecast:    %.1f%% CPU available\n", pred.Value*100)
	fmt.Printf("chosen method:         %s\n", pred.Method)
	fmt.Printf("its cumulative MAE:    %.2f%%\n", pred.MAE*100)

	// A scheduler uses the forecast as an expansion factor: a job needing
	// 60 CPU-seconds is expected to take 60/avail wall seconds.
	const demand = 60.0
	fmt.Printf("\na %0.f CPU-second job should take about %.0f wall seconds here\n",
		demand, demand/pred.Value)

	// The per-method report shows how the bank ranked on this series.
	fmt.Println("\ntop five forecasters on this trace:")
	for i, m := range eng.Report() {
		if i == 5 {
			break
		}
		fmt.Printf("  %-14s MAE %.2f%%\n", m.Name, m.MAE*100)
	}

	if err := replicatedRun(); err != nil {
		log.Fatal(err)
	}
}

// replicatedRun stands up a 3-replica memory group, streams a simulated
// sensor into it, and kills one replica mid-run: the write quorum keeps the
// stream flowing and the survivors end up with every measurement.
func replicatedRun() error {
	fmt.Println("\n--- resilience: a 3-replica memory group, one replica killed mid-run ---")

	mems := make([]*nwsnet.Memory, 3)
	srvs := make([]*nwsnet.Server, 3)
	addrs := make([]string, 3)
	for i := range mems {
		mems[i] = nwsnet.NewMemory(0)
		srvs[i] = nwsnet.NewServer(mems[i], nil)
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = addr
		defer srvs[i].Close()
	}
	fmt.Printf("memory replicas: %v (write quorum 2)\n", addrs)

	// A simulated host under the paper's thing1 workload, measured every
	// 10 virtual seconds by a sensor daemon that writes to the group.
	h := simos.New(simos.DefaultConfig())
	workload.Submit(h, workload.Thing1().Generate(4000))
	d := nwsnet.NewSensorDaemonReplicas("thing1", sensors.SimHost{H: h}, addrs, 0, sensors.HybridConfig{})
	defer d.Close()

	const steps = 60
	for i := 0; i < steps; i++ {
		if i == steps/2 {
			srvs[0].Close() // the primary dies mid-run
			fmt.Printf("step %2d: killed primary replica %s\n", i, addrs[0])
		}
		h.RunUntil(h.Now() + 10)
		if err := d.Step(); err != nil {
			return fmt.Errorf("step %d: measurement lost: %w", i, err)
		}
	}

	key := nwsnet.SeriesKey("thing1", "nws_hybrid")
	fmt.Printf("after %d steps: backlog %d measurements\n", steps, d.Backlogged())
	for i, m := range mems {
		state := "alive"
		if i == 0 {
			state = "killed mid-run"
		}
		fmt.Printf("  replica %d (%s): %d points of %s\n", i, state, m.Len(key), key)
	}
	for _, r := range d.Replicas() {
		fmt.Printf("  health %-21s %v\n", r.Addr, r.Healthy)
	}
	fmt.Println("the survivors hold the full series: no measurement was lost")
	return nil
}
