// Quickstart: feed a CPU-availability trace into the NWS forecasting engine
// and make one-step-ahead predictions.
//
//	go run ./examples/quickstart
//
// The trace here is synthetic (a slowly drifting availability signal with
// occasional level shifts, like a workstation whose owner comes and goes);
// in a real deployment the measurements come from the sensors (see
// examples/livehost) or from a memory server (see package nwsnet).
package main

import (
	"fmt"
	"math"
	"math/rand"

	"nwscpu/internal/forecast"
)

func main() {
	// Build a synthetic availability trace: 2 hours at 10-second cadence.
	rng := rand.New(rand.NewSource(42))
	level := 0.8
	trace := make([]float64, 720)
	for i := range trace {
		if rng.Float64() < 0.01 { // someone starts or stops working
			level = 0.2 + 0.7*rng.Float64()
		}
		v := level + rng.NormFloat64()*0.04
		trace[i] = math.Max(0, math.Min(1, v))
	}

	// The engine runs the full NWS forecaster bank and always forwards the
	// member that has been most accurate so far.
	eng := forecast.NewDefaultEngine()
	for _, v := range trace {
		eng.Update(v)
	}

	pred, ok := eng.Forecast()
	if !ok {
		panic("no forecast available")
	}
	fmt.Printf("measurements seen:     %d\n", eng.N())
	fmt.Printf("next-step forecast:    %.1f%% CPU available\n", pred.Value*100)
	fmt.Printf("chosen method:         %s\n", pred.Method)
	fmt.Printf("its cumulative MAE:    %.2f%%\n", pred.MAE*100)

	// A scheduler uses the forecast as an expansion factor: a job needing
	// 60 CPU-seconds is expected to take 60/avail wall seconds.
	const demand = 60.0
	fmt.Printf("\na %0.f CPU-second job should take about %.0f wall seconds here\n",
		demand, demand/pred.Value)

	// The per-method report shows how the bank ranked on this series.
	fmt.Println("\ntop five forecasters on this trace:")
	for i, m := range eng.Report() {
		if i == 5 {
			break
		}
		fmt.Printf("  %-14s MAE %.2f%%\n", m.Name, m.MAE*100)
	}
}
