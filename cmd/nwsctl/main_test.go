package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nwscpu/internal/nwsnet"
	"nwscpu/internal/nwsnet/cluster"
)

func startComponent(t *testing.T, h nwsnet.Handler) string {
	t.Helper()
	srv := nwsnet.NewServer(h, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		nil,           // no command
		{"bogus"},     // unknown command
		{"list"},      // missing -nameserver
		{"series"},    // missing -memory
		{"fetch"},     // missing -memory and key
		{"forecast"},  // missing -forecaster and key
		{"members"},   // missing -nameserver
		{"ring"},      // missing -nameserver and series key
		{"-nonsense"}, // bad flag
	}
	for i, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("case %d (%v) accepted", i, args)
		}
	}
}

func TestRunAgainstLiveComponents(t *testing.T) {
	nsAddr := startComponent(t, nwsnet.NewNameServer())
	memAddr := startComponent(t, nwsnet.NewMemory(0))
	fcAddr := startComponent(t, nwsnet.NewForecasterService(memAddr, 0))

	c := nwsnet.NewClient(0)
	if err := c.Register(nsAddr, nwsnet.Registration{
		Name: "h/cpu", Kind: nwsnet.KindSensor, Addr: "s:1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Store(memAddr, "h/cpu/vmstat",
		[][2]float64{{10, 0.5}, {20, 0.5}, {30, 0.5}}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-nameserver", nsAddr, "list"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "h/cpu") {
		t.Fatalf("list output: %q", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-memory", memAddr, "series"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "h/cpu/vmstat") {
		t.Fatalf("series output: %q", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-memory", memAddr, "fetch", "h/cpu/vmstat", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("fetch lines = %d, want 2:\n%s", got, buf.String())
	}
	if err := run([]string{"-memory", memAddr, "fetch", "h/cpu/vmstat", "zz"}, &buf); err == nil {
		t.Fatal("bad max accepted")
	}

	buf.Reset()
	if err := run([]string{"-forecaster", fcAddr, "forecast", "h/cpu/vmstat"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "forecast 0.5") {
		t.Fatalf("forecast output: %q", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-nameserver", nsAddr, "-memory", memAddr, "ping"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "ok") != 2 {
		t.Fatalf("ping output: %q", buf.String())
	}
}

func TestHealthCommand(t *testing.T) {
	if err := run([]string{"health"}, &bytes.Buffer{}); err == nil {
		t.Fatal("health without -memory or -nameserver accepted")
	}

	a := startComponent(t, nwsnet.NewMemory(0))
	b := startComponent(t, nwsnet.NewMemory(0))

	// All replicas up: quorum holds, exit clean.
	var buf bytes.Buffer
	group := a + "," + b
	if err := run([]string{"-memory", group, "health"}, &buf); err != nil {
		t.Fatalf("health with all replicas up: %v", err)
	}
	if got := strings.Count(buf.String(), "healthy"); got != 3 { // 2 replicas + summary
		t.Fatalf("health output: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "2/2 replicas healthy") {
		t.Fatalf("health summary missing: %q", buf.String())
	}

	// One of two down: majority (2) lost, exit non-zero but still report.
	buf.Reset()
	err := run([]string{"-memory", a + ",127.0.0.1:1", "health"}, &buf)
	if err == nil {
		t.Fatal("health with quorum lost exited clean")
	}
	if !strings.Contains(buf.String(), "down") || !strings.Contains(buf.String(), "1/2 replicas healthy") {
		t.Fatalf("degraded health output: %q", buf.String())
	}

	// Resolution via the name server's registered replica set.
	nsAddr := startComponent(t, nwsnet.NewNameServer())
	c := nwsnet.NewClient(0)
	if err := c.Register(nsAddr, nwsnet.Registration{
		Name: "memory", Kind: nwsnet.KindMemory, Addr: a, Addrs: []string{a, b},
	}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-nameserver", nsAddr, "health"}, &buf); err != nil {
		t.Fatalf("health via nameserver: %v", err)
	}
	if !strings.Contains(buf.String(), "2/2 replicas healthy") {
		t.Fatalf("nameserver health output: %q", buf.String())
	}
}

func TestHealthFrontierLag(t *testing.T) {
	a := startComponent(t, nwsnet.NewMemory(0))
	b := startComponent(t, nwsnet.NewMemory(0))
	c := nwsnet.NewClient(0)
	if err := c.Store(a, "h/cpu/vmstat", [][2]float64{{10, 0.5}, {20, 0.5}, {30, 0.5}}); err != nil {
		t.Fatal(err)
	}
	// Replica b lags two rounds and is missing a second series entirely.
	if err := c.Store(b, "h/cpu/vmstat", [][2]float64{{10, 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Store(a, "h/cpu/loadavg", [][2]float64{{10, 0.4}}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-memory", a + "," + b, "health"}, &buf); err != nil {
		t.Fatalf("health: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "frontier lag") {
		t.Fatalf("health output missing frontier lag section:\n%s", out)
	}
	if !strings.Contains(out, "max lag 20.0s") || !strings.Contains(out, "1 missing") {
		t.Fatalf("lagging replica not reported:\n%s", out)
	}
	if !strings.Contains(out, "max lag 0.0s  (0/2 series behind, 0 missing)") {
		t.Fatalf("up-to-date replica not reported clean:\n%s", out)
	}
}

func TestRepairCommand(t *testing.T) {
	if err := run([]string{"repair", "k"}, &bytes.Buffer{}); err == nil {
		t.Fatal("repair without -memory or -nameserver accepted")
	}
	if err := run([]string{"-memory", "x:1", "repair"}, &bytes.Buffer{}); err == nil {
		t.Fatal("repair without a series key accepted")
	}

	a := startComponent(t, nwsnet.NewMemory(0))
	b := startComponent(t, nwsnet.NewMemory(0))
	cth := startComponent(t, nwsnet.NewMemory(0))
	c := nwsnet.NewClient(0)
	full := [][2]float64{{10, 0.1}, {20, 0.2}, {30, 0.3}}
	if err := c.Store(a, "k", full); err != nil {
		t.Fatal(err)
	}
	if err := c.Store(b, "k", full[:1]); err != nil { // laggard
		t.Fatal(err)
	}
	// Replica c is empty: a full backfill candidate.

	group := a + "," + b + "," + cth
	var buf bytes.Buffer
	if err := run([]string{"-memory", group, "repair", "k"}, &buf); err != nil {
		t.Fatalf("repair: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "best copy (3 points") {
		t.Fatalf("repair did not pick the complete replica:\n%s", out)
	}
	if !strings.Contains(out, "3/3 replicas in sync") {
		t.Fatalf("repair did not converge the group:\n%s", out)
	}
	for _, addr := range []string{a, b, cth} {
		pts, err := c.Fetch(addr, "k", 0, 0, 0)
		if err != nil || len(pts) != 3 {
			t.Fatalf("replica %s after repair: %v, %v", addr, pts, err)
		}
	}

	// A second pass is a no-op: everyone already in sync.
	buf.Reset()
	if err := run([]string{"-memory", group, "repair", "k"}, &buf); err != nil {
		t.Fatalf("idempotent repair: %v\n%s", err, buf.String())
	}
	if got := strings.Count(buf.String(), "in sync"); got != 3 { // 2 replicas + summary
		t.Fatalf("second pass output:\n%s", buf.String())
	}

	// Unknown series everywhere: error, not a zero-replica success.
	if err := run([]string{"-memory", group, "repair", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("repair of unknown series exited clean")
	}

	// Quorum-aware exit: with a majority of the listed set unreachable, the
	// pass cannot certify quorum even though the reachable replica is fine.
	buf.Reset()
	err := run([]string{"-memory", a + ",127.0.0.1:1,127.0.0.2:1", "repair", "k"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("repair with majority unreachable: err=%v", err)
	}
}

func TestMembersAndRingCommands(t *testing.T) {
	nsAddr := startComponent(t, nwsnet.NewNameServerCluster(time.Minute,
		cluster.Config{Replication: 2, VNodes: 16}))
	c := nwsnet.NewClient(0)

	// A lone active member with replication 2: listing works, but the
	// quorum gate must report the key space at risk via a non-zero exit.
	if _, err := c.JoinCluster(nsAddr, cluster.Member{
		ID: "shard-a", Kind: string(nwsnet.KindMemory), Addr: "a:1",
		State: cluster.StateActive,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"-nameserver", nsAddr, "members"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("members with 1 active < replication 2: err=%v", err)
	}
	if !strings.Contains(buf.String(), "shard-a") {
		t.Fatalf("members output missing member row: %q", buf.String())
	}

	// Second active member restores the quorum: clean exit, and the
	// listing shows the epoch header plus both leases.
	if _, err := c.JoinCluster(nsAddr, cluster.Member{
		ID: "shard-b", Kind: string(nwsnet.KindMemory), Addr: "b:1",
		State: cluster.StateActive,
	}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-nameserver", nsAddr, "members"}, &buf); err != nil {
		t.Fatalf("members with quorum restored: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"epoch 2", "replication 2", "shard-a", "shard-b",
		"2/2 active memory members"} {
		if !strings.Contains(out, want) {
			t.Fatalf("members output missing %q:\n%s", want, out)
		}
	}

	// ring resolves the owners of one series key under the current view:
	// with replication 2 over two shards, both appear, primary first.
	buf.Reset()
	if err := run([]string{"-nameserver", nsAddr, "ring", "host0/cpu/nws_hybrid"}, &buf); err != nil {
		t.Fatalf("ring: %v\n%s", err, buf.String())
	}
	out = buf.String()
	for _, want := range []string{"epoch 2", "primary", "replica", "shard-a", "shard-b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ring output missing %q:\n%s", want, out)
		}
	}

	// A registry with no cluster config returns no view at all.
	plainNS := startComponent(t, nwsnet.NewNameServer())
	if err := run([]string{"-nameserver", plainNS, "members"}, &buf); err == nil {
		t.Fatal("members against a non-cluster registry accepted")
	}
}
