// Command nwsctl queries a running distributed NWS deployment:
//
//	nwsctl -nameserver localhost:8090 list
//	nwsctl -memory localhost:8091 series
//	nwsctl -memory localhost:8091 fetch thing1/cpu/nws_hybrid [maxPoints]
//	nwsctl -forecaster localhost:8092 forecast thing1/cpu/nws_hybrid
//	nwsctl -forecaster localhost:8092 subscribe thing1/cpu/nws_hybrid [n]
//	nwsctl -nameserver localhost:8090 ping
//	nwsctl -memory localhost:8091,localhost:8092,localhost:8093 health
//	nwsctl -nameserver localhost:8090 health
//	nwsctl -nameserver localhost:8090 members
//	nwsctl -nameserver localhost:8090 ring thing1/cpu/nws_hybrid
//
// health pings every memory replica — the comma-separated -memory list, or
// every endpoint of every memory registration found via -nameserver — and
// reports each as healthy or down. It exits non-zero when fewer than a
// majority answer, i.e. when the group has lost its write quorum.
//
// members prints the partitioned cluster's membership view (epoch, ring
// geometry, every lease with state and shard share) and exits non-zero when
// fewer active memory members remain than the replication factor — the
// cluster analogue of losing write quorum. ring <series> resolves which
// members own a series key under the current view.
//
// subscribe watches a series on the forecaster's push plane: it prints the
// acknowledgement's current forecast, then one line per server push as the
// series' forecast changes. With a count n it exits after n pushes;
// otherwise it runs until the subscription ends (server gone, or the series
// moved to another shard during a rebalance) or the process is interrupted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nwscpu/internal/nwsnet"
	"nwscpu/internal/nwsnet/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwsctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwsctl", flag.ContinueOnError)
	nameserver := fs.String("nameserver", "", "name server address")
	memory := fs.String("memory", "", "memory server address")
	forecaster := fs.String("forecaster", "", "forecaster address")
	tenant := fs.String("tenant", "", "tenant ID to attribute requests to")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmd := fs.Args()
	if len(cmd) == 0 {
		return fmt.Errorf("no command; try: list | series | fetch <key> | forecast <key> | ping | health")
	}

	c := nwsnet.NewClientOptions(nwsnet.ClientOptions{Tenant: *tenant})
	switch cmd[0] {
	case "ping":
		for _, addr := range []string{*nameserver, *memory, *forecaster} {
			if addr == "" {
				continue
			}
			if err := c.Ping(addr); err != nil {
				return err
			}
			fmt.Fprintf(out, "%s: ok\n", addr)
		}
		return nil
	case "health":
		var addrs []string
		switch {
		case *memory != "":
			for _, a := range strings.Split(*memory, ",") {
				if a = strings.TrimSpace(a); a != "" {
					addrs = append(addrs, a)
				}
			}
		case *nameserver != "":
			regs, err := c.List(*nameserver, nwsnet.KindMemory)
			if err != nil {
				return err
			}
			for _, r := range regs {
				addrs = append(addrs, r.Endpoints()...)
			}
		default:
			return fmt.Errorf("health needs -memory or -nameserver")
		}
		if len(addrs) == 0 {
			return fmt.Errorf("no memory replicas to check")
		}
		healthy := 0
		for _, addr := range addrs {
			if err := c.Ping(addr); err != nil {
				fmt.Fprintf(out, "%-24s down (%v)\n", addr, err)
				continue
			}
			healthy++
			fmt.Fprintf(out, "%-24s healthy\n", addr)
		}
		fmt.Fprintf(out, "%d/%d replicas healthy\n", healthy, len(addrs))
		if healthy < len(addrs)/2+1 {
			return fmt.Errorf("write quorum lost: %d of %d replicas healthy", healthy, len(addrs))
		}
		return nil
	case "list":
		if *nameserver == "" {
			return fmt.Errorf("list needs -nameserver")
		}
		regs, err := c.List(*nameserver, "")
		if err != nil {
			return err
		}
		for _, r := range regs {
			fmt.Fprintf(out, "%-24s %-12s %s\n", r.Name, r.Kind, r.Addr)
		}
		return nil
	case "series":
		if *memory == "" {
			return fmt.Errorf("series needs -memory")
		}
		names, err := c.Series(*memory)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(out, n)
		}
		return nil
	case "fetch":
		if *memory == "" || len(cmd) < 2 {
			return fmt.Errorf("fetch needs -memory and a series key")
		}
		max := 0
		if len(cmd) >= 3 {
			var err error
			if max, err = strconv.Atoi(cmd[2]); err != nil {
				return fmt.Errorf("bad max %q: %w", cmd[2], err)
			}
		}
		pts, err := c.Fetch(*memory, cmd[1], 0, 0, max)
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Fprintf(out, "%.3f %.6f\n", p[0], p[1])
		}
		return nil
	case "forecast":
		if *forecaster == "" || len(cmd) < 2 {
			return fmt.Errorf("forecast needs -forecaster and a series key")
		}
		f, err := c.Forecast(*forecaster, cmd[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "forecast %.4f (method %s, MAE %.4f over %d measurements)\n",
			f.Value, f.Method, f.MAE, f.N)
		return nil
	case "subscribe":
		if *forecaster == "" || len(cmd) < 2 {
			return fmt.Errorf("subscribe needs -forecaster and a series key")
		}
		limit := 0
		if len(cmd) >= 3 {
			var err error
			if limit, err = strconv.Atoi(cmd[2]); err != nil {
				return fmt.Errorf("bad count %q: %w", cmd[2], err)
			}
		}
		return subscribe(*forecaster, *tenant, cmd[1], limit, out)
	case "members":
		if *nameserver == "" {
			return fmt.Errorf("members needs -nameserver")
		}
		return members(c, *nameserver, out)
	case "ring":
		if *nameserver == "" || len(cmd) < 2 {
			return fmt.Errorf("ring needs -nameserver and a series key")
		}
		return ringOwners(c, *nameserver, cmd[1], out)
	default:
		return fmt.Errorf("unknown command %q", cmd[0])
	}
}

// subscribe watches series on the forecaster's push plane and prints each
// pushed forecast. limit > 0 exits after that many pushes.
func subscribe(addr, tenant, series string, limit int, out io.Writer) error {
	m, err := nwsnet.DialMuxTenant(addr, tenant, 0)
	if err != nil {
		return err
	}
	defer m.Close()
	type push struct {
		resp nwsnet.Response
		err  error
	}
	pushes := make(chan push, 64)
	call := m.Subscribe(series, func(resp nwsnet.Response, err error) {
		select {
		case pushes <- push{resp, err}:
		default: // a stalled stdout must not block the reader goroutine
		}
	})
	ack, err := call.Wait()
	if err != nil {
		return fmt.Errorf("subscribe %s: %w", series, err)
	}
	if f := ack.Forecast; f != nil {
		fmt.Fprintf(out, "current  %.4f (method %s, MAE %.4f over %d measurements)\n",
			f.Value, f.Method, f.MAE, f.N)
	} else {
		fmt.Fprintf(out, "current  no forecast yet (series empty)\n")
	}
	for n := 0; limit <= 0 || n < limit; {
		p := <-pushes
		if p.err != nil {
			return fmt.Errorf("subscription ended: %w", p.err)
		}
		if f := p.resp.Forecast; f != nil {
			fmt.Fprintf(out, "push     %.4f (method %s, MAE %.4f over %d measurements)\n",
				f.Value, f.Method, f.MAE, f.N)
			n++
		}
	}
	return nil
}

// members prints the cluster membership view — epoch, ring geometry, and
// every lease with its shard's share of a sample key space — and exits
// non-zero when fewer active memory members remain than the replication
// factor, i.e. when some key range has lost its write quorum.
func members(c *nwsnet.Client, nsAddr string, out io.Writer) error {
	v, err := c.FetchView(nsAddr, 0)
	if err != nil {
		return err
	}
	if v == nil {
		return fmt.Errorf("registry %s returned no view", nsAddr)
	}
	cfg := v.Config.Normalize()
	fmt.Fprintf(out, "epoch %d  replication %d  vnodes %d  seed %d\n",
		v.Epoch, cfg.Replication, cfg.VNodes, cfg.Seed)
	if len(v.Members) == 0 {
		fmt.Fprintln(out, "no members")
		return fmt.Errorf("no active memory members (need %d for write quorum)", cfg.Replication)
	}
	// Shard balance over a synthetic key sample, so the listing shows how
	// the ring would spread load even before any series exist.
	shares := map[string]int{}
	if ring := v.Ring(string(nwsnet.KindMemory)); ring != nil {
		keys := make([]string, 1000)
		for i := range keys {
			keys[i] = fmt.Sprintf("host%04d/cpu/nws_hybrid", i)
		}
		shares = ring.Shares(keys)
	}
	active := 0
	for _, m := range v.Members {
		if m.State == cluster.StateActive && m.Kind == string(nwsnet.KindMemory) {
			active++
		}
		share := ""
		if n, ok := shares[m.ID]; ok {
			share = fmt.Sprintf("  %4.1f%% of keys", float64(n)/10)
		}
		fmt.Fprintf(out, "%-20s %-12s %-8s %s%s\n", m.ID, m.Kind, m.State, m.Addr, share)
	}
	fmt.Fprintf(out, "%d/%d active memory members (replication %d)\n", active, len(v.Members), cfg.Replication)
	if active < cfg.Replication {
		return fmt.Errorf("write quorum at risk: %d active memory members < replication %d", active, cfg.Replication)
	}
	return nil
}

// ringOwners prints which members own a series key under the current view.
func ringOwners(c *nwsnet.Client, nsAddr, key string, out io.Writer) error {
	v, err := c.FetchView(nsAddr, 0)
	if err != nil {
		return err
	}
	if v == nil {
		return fmt.Errorf("registry %s returned no view", nsAddr)
	}
	owners := v.Owners(string(nwsnet.KindMemory), key)
	if len(owners) == 0 {
		return fmt.Errorf("no active memory member owns %q (epoch %d)", key, v.Epoch)
	}
	fmt.Fprintf(out, "epoch %d  key %s\n", v.Epoch, key)
	for i, m := range owners {
		role := "replica"
		if i == 0 {
			role = "primary"
		}
		fmt.Fprintf(out, "%-8s %-20s %s\n", role, m.ID, m.Addr)
	}
	if fc := v.Owners(string(nwsnet.KindForecaster), key); len(fc) > 0 {
		fmt.Fprintf(out, "%-8s %-20s %s\n", "forecast", fc[0].ID, fc[0].Addr)
	}
	return nil
}
