// Command nwsctl queries a running distributed NWS deployment:
//
//	nwsctl -nameserver localhost:8090 list
//	nwsctl -memory localhost:8091 series
//	nwsctl -memory localhost:8091 fetch thing1/cpu/nws_hybrid [maxPoints]
//	nwsctl -forecaster localhost:8092 forecast thing1/cpu/nws_hybrid
//	nwsctl -nameserver localhost:8090 ping
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"nwscpu/internal/nwsnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwsctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwsctl", flag.ContinueOnError)
	nameserver := fs.String("nameserver", "", "name server address")
	memory := fs.String("memory", "", "memory server address")
	forecaster := fs.String("forecaster", "", "forecaster address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmd := fs.Args()
	if len(cmd) == 0 {
		return fmt.Errorf("no command; try: list | series | fetch <key> | forecast <key> | ping")
	}

	c := nwsnet.NewClient(0)
	switch cmd[0] {
	case "ping":
		for _, addr := range []string{*nameserver, *memory, *forecaster} {
			if addr == "" {
				continue
			}
			if err := c.Ping(addr); err != nil {
				return err
			}
			fmt.Fprintf(out, "%s: ok\n", addr)
		}
		return nil
	case "list":
		if *nameserver == "" {
			return fmt.Errorf("list needs -nameserver")
		}
		regs, err := c.List(*nameserver, "")
		if err != nil {
			return err
		}
		for _, r := range regs {
			fmt.Fprintf(out, "%-24s %-12s %s\n", r.Name, r.Kind, r.Addr)
		}
		return nil
	case "series":
		if *memory == "" {
			return fmt.Errorf("series needs -memory")
		}
		names, err := c.Series(*memory)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(out, n)
		}
		return nil
	case "fetch":
		if *memory == "" || len(cmd) < 2 {
			return fmt.Errorf("fetch needs -memory and a series key")
		}
		max := 0
		if len(cmd) >= 3 {
			var err error
			if max, err = strconv.Atoi(cmd[2]); err != nil {
				return fmt.Errorf("bad max %q: %w", cmd[2], err)
			}
		}
		pts, err := c.Fetch(*memory, cmd[1], 0, 0, max)
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Fprintf(out, "%.3f %.6f\n", p[0], p[1])
		}
		return nil
	case "forecast":
		if *forecaster == "" || len(cmd) < 2 {
			return fmt.Errorf("forecast needs -forecaster and a series key")
		}
		f, err := c.Forecast(*forecaster, cmd[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "forecast %.4f (method %s, MAE %.4f over %d measurements)\n",
			f.Value, f.Method, f.MAE, f.N)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd[0])
	}
}
