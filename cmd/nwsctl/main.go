// Command nwsctl queries a running distributed NWS deployment:
//
//	nwsctl -nameserver localhost:8090 list
//	nwsctl -memory localhost:8091 series
//	nwsctl -memory localhost:8091 fetch thing1/cpu/nws_hybrid [maxPoints]
//	nwsctl -forecaster localhost:8092 forecast thing1/cpu/nws_hybrid
//	nwsctl -forecaster localhost:8092 subscribe thing1/cpu/nws_hybrid [n]
//	nwsctl -nameserver localhost:8090 ping
//	nwsctl -memory localhost:8091,localhost:8092,localhost:8093 health
//	nwsctl -nameserver localhost:8090 health
//	nwsctl -nameserver localhost:8090 members
//	nwsctl -nameserver localhost:8090 ring thing1/cpu/nws_hybrid
//	nwsctl -memory localhost:8091,localhost:8092 repair thing1/cpu/nws_hybrid
//
// health pings every memory replica — the comma-separated -memory list, or
// every endpoint of every memory registration found via -nameserver — and
// reports each as healthy or down, then compares per-series digest
// frontiers across the replicas that answered and prints each one's worst
// frontier lag (how far its newest point trails the group's best) with its
// behind/missing series counts. Replicas that predate the digest op are
// reported as such, not failed. It exits non-zero when fewer than a
// majority answer, i.e. when the group has lost its write quorum.
//
// repair <series> runs one client-driven repair pass: it collects the
// series' digest from every replica, picks the most complete copy, and
// backfills the laggards from it. It exits non-zero unless at least a
// majority of replicas end the pass bit-identical to the best copy.
//
// members prints the partitioned cluster's membership view (epoch, ring
// geometry, every lease with state and shard share) and exits non-zero when
// fewer active memory members remain than the replication factor — the
// cluster analogue of losing write quorum. ring <series> resolves which
// members own a series key under the current view.
//
// subscribe watches a series on the forecaster's push plane: it prints the
// acknowledgement's current forecast, then one line per server push as the
// series' forecast changes. With a count n it exits after n pushes;
// otherwise it runs until the subscription ends (server gone, or the series
// moved to another shard during a rebalance) or the process is interrupted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nwscpu/internal/nwsnet"
	"nwscpu/internal/nwsnet/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwsctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwsctl", flag.ContinueOnError)
	nameserver := fs.String("nameserver", "", "name server address")
	memory := fs.String("memory", "", "memory server address")
	forecaster := fs.String("forecaster", "", "forecaster address")
	tenant := fs.String("tenant", "", "tenant ID to attribute requests to")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmd := fs.Args()
	if len(cmd) == 0 {
		return fmt.Errorf("no command; try: list | series | fetch <key> | forecast <key> | ping | health")
	}

	c := nwsnet.NewClientOptions(nwsnet.ClientOptions{Tenant: *tenant})
	switch cmd[0] {
	case "ping":
		for _, addr := range []string{*nameserver, *memory, *forecaster} {
			if addr == "" {
				continue
			}
			if err := c.Ping(addr); err != nil {
				return err
			}
			fmt.Fprintf(out, "%s: ok\n", addr)
		}
		return nil
	case "health":
		addrs, err := memoryAddrs(c, *memory, *nameserver)
		if err != nil {
			return err
		}
		healthy := 0
		var up []string
		for _, addr := range addrs {
			if err := c.Ping(addr); err != nil {
				fmt.Fprintf(out, "%-24s down (%v)\n", addr, err)
				continue
			}
			healthy++
			up = append(up, addr)
			fmt.Fprintf(out, "%-24s healthy\n", addr)
		}
		if len(up) > 1 {
			frontierLag(c, up, out)
		}
		fmt.Fprintf(out, "%d/%d replicas healthy\n", healthy, len(addrs))
		if healthy < len(addrs)/2+1 {
			return fmt.Errorf("write quorum lost: %d of %d replicas healthy", healthy, len(addrs))
		}
		return nil
	case "repair":
		if len(cmd) < 2 {
			return fmt.Errorf("repair needs a series key and -memory or -nameserver")
		}
		addrs, err := memoryAddrs(c, *memory, *nameserver)
		if err != nil {
			return err
		}
		return repairSeries(c, addrs, cmd[1], out)
	case "list":
		if *nameserver == "" {
			return fmt.Errorf("list needs -nameserver")
		}
		regs, err := c.List(*nameserver, "")
		if err != nil {
			return err
		}
		for _, r := range regs {
			fmt.Fprintf(out, "%-24s %-12s %s\n", r.Name, r.Kind, r.Addr)
		}
		return nil
	case "series":
		if *memory == "" {
			return fmt.Errorf("series needs -memory")
		}
		names, err := c.Series(*memory)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(out, n)
		}
		return nil
	case "fetch":
		if *memory == "" || len(cmd) < 2 {
			return fmt.Errorf("fetch needs -memory and a series key")
		}
		max := 0
		if len(cmd) >= 3 {
			var err error
			if max, err = strconv.Atoi(cmd[2]); err != nil {
				return fmt.Errorf("bad max %q: %w", cmd[2], err)
			}
		}
		pts, err := c.Fetch(*memory, cmd[1], 0, 0, max)
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Fprintf(out, "%.3f %.6f\n", p[0], p[1])
		}
		return nil
	case "forecast":
		if *forecaster == "" || len(cmd) < 2 {
			return fmt.Errorf("forecast needs -forecaster and a series key")
		}
		f, err := c.Forecast(*forecaster, cmd[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "forecast %.4f (method %s, MAE %.4f over %d measurements)\n",
			f.Value, f.Method, f.MAE, f.N)
		return nil
	case "subscribe":
		if *forecaster == "" || len(cmd) < 2 {
			return fmt.Errorf("subscribe needs -forecaster and a series key")
		}
		limit := 0
		if len(cmd) >= 3 {
			var err error
			if limit, err = strconv.Atoi(cmd[2]); err != nil {
				return fmt.Errorf("bad count %q: %w", cmd[2], err)
			}
		}
		return subscribe(*forecaster, *tenant, cmd[1], limit, out)
	case "members":
		if *nameserver == "" {
			return fmt.Errorf("members needs -nameserver")
		}
		return members(c, *nameserver, out)
	case "ring":
		if *nameserver == "" || len(cmd) < 2 {
			return fmt.Errorf("ring needs -nameserver and a series key")
		}
		return ringOwners(c, *nameserver, cmd[1], out)
	default:
		return fmt.Errorf("unknown command %q", cmd[0])
	}
}

// memoryAddrs resolves the replica set: the comma-separated -memory list,
// or every endpoint of every memory registration found via -nameserver.
func memoryAddrs(c *nwsnet.Client, memory, nameserver string) ([]string, error) {
	var addrs []string
	switch {
	case memory != "":
		for _, a := range strings.Split(memory, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	case nameserver != "":
		regs, err := c.List(nameserver, nwsnet.KindMemory)
		if err != nil {
			return nil, err
		}
		for _, r := range regs {
			addrs = append(addrs, r.Endpoints()...)
		}
	default:
		return nil, fmt.Errorf("need -memory or -nameserver")
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no memory replicas to check")
	}
	return addrs, nil
}

// frontierLag compares per-series digest frontiers across the replicas that
// answered and prints each replica's worst lag behind the group's best. A
// replica whose server predates the digest op is reported, not failed.
func frontierLag(c *nwsnet.Client, addrs []string, out io.Writer) {
	digests := make(map[string]map[string]nwsnet.SeriesDigest, len(addrs))
	best := map[string]float64{}
	var supported []string
	for _, addr := range addrs {
		ds, err := c.Digests(addr, "")
		if err != nil {
			fmt.Fprintf(out, "%-24s digests unavailable (%v)\n", addr, err)
			continue
		}
		supported = append(supported, addr)
		bySeries := make(map[string]nwsnet.SeriesDigest, len(ds))
		for _, d := range ds {
			bySeries[d.Series] = d
			if d.Frontier > best[d.Series] {
				best[d.Series] = d.Frontier
			}
		}
		digests[addr] = bySeries
	}
	if len(supported) < 2 || len(best) == 0 {
		return
	}
	fmt.Fprintln(out, "frontier lag (worst series, vs the group's best frontier):")
	for _, addr := range supported {
		bySeries := digests[addr]
		maxLag, behind, missing := 0.0, 0, 0
		for series, bf := range best {
			d, ok := bySeries[series]
			if !ok {
				missing++
				continue
			}
			if lag := bf - d.Frontier; lag > 0 {
				behind++
				if lag > maxLag {
					maxLag = lag
				}
			}
		}
		fmt.Fprintf(out, "%-24s max lag %.1fs  (%d/%d series behind, %d missing)\n",
			addr, maxLag, behind, len(best), missing)
	}
}

// repairSeries runs one client-driven repair pass over a series: digest the
// replicas, pick the most complete copy, backfill the laggards from it. The
// exit code is quorum-aware: nil only when at least a majority of the
// replica set ends the pass bit-identical to the best copy.
func repairSeries(c *nwsnet.Client, addrs []string, key string, out io.Writer) error {
	type state struct {
		addr string
		d    nwsnet.SeriesDigest
		ok   bool // replica answered the digest request
	}
	states := make([]state, len(addrs))
	for i, addr := range addrs {
		states[i] = state{addr: addr}
		ds, err := c.Digests(addr, key)
		if err != nil {
			fmt.Fprintf(out, "%-24s unreachable (%v)\n", addr, err)
			continue
		}
		states[i].ok = true
		if len(ds) > 0 {
			states[i].d = ds[0]
		}
	}

	// The most complete copy: newest frontier, point count as tiebreak.
	bestIdx := -1
	for i, s := range states {
		if !s.ok || s.d.Count == 0 {
			continue
		}
		if bestIdx < 0 || s.d.Frontier > states[bestIdx].d.Frontier ||
			(s.d.Frontier == states[bestIdx].d.Frontier && s.d.Count > states[bestIdx].d.Count) {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return fmt.Errorf("repair %s: no reachable replica holds the series", key)
	}
	best := states[bestIdx]
	pts, err := c.Fetch(best.addr, key, 0, 0, 0)
	if err != nil {
		return fmt.Errorf("repair %s: fetch from %s: %w", key, best.addr, err)
	}
	fmt.Fprintf(out, "%-24s best copy (%d points, frontier %.3f)\n", best.addr, best.d.Count, best.d.Frontier)

	inSync := 1
	for _, s := range states {
		if !s.ok || s.addr == best.addr {
			continue
		}
		if s.d == best.d {
			inSync++
			fmt.Fprintf(out, "%-24s in sync\n", s.addr)
			continue
		}
		if err := c.Backfill(s.addr, key, pts); err != nil {
			fmt.Fprintf(out, "%-24s backfill failed (%v)\n", s.addr, err)
			continue
		}
		ds, err := c.Digests(s.addr, key)
		switch {
		case err == nil && len(ds) > 0 && ds[0] == best.d:
			inSync++
			fmt.Fprintf(out, "%-24s repaired (+%d points)\n", s.addr, best.d.Count-s.d.Count)
		case err == nil && len(ds) > 0:
			// Still divergent: the replica holds points the best copy lacks
			// (it needs its own repair pass the other way) or took writes
			// mid-repair.
			fmt.Fprintf(out, "%-24s still divergent after backfill (%d points, frontier %.3f)\n",
				s.addr, ds[0].Count, ds[0].Frontier)
		default:
			fmt.Fprintf(out, "%-24s verify failed (%v)\n", s.addr, err)
		}
	}
	fmt.Fprintf(out, "%d/%d replicas in sync\n", inSync, len(addrs))
	if inSync < len(addrs)/2+1 {
		return fmt.Errorf("repair %s: only %d of %d replicas in sync (quorum %d)",
			key, inSync, len(addrs), len(addrs)/2+1)
	}
	return nil
}

// subscribe watches series on the forecaster's push plane and prints each
// pushed forecast. limit > 0 exits after that many pushes.
func subscribe(addr, tenant, series string, limit int, out io.Writer) error {
	m, err := nwsnet.DialMuxTenant(addr, tenant, 0)
	if err != nil {
		return err
	}
	defer m.Close()
	type push struct {
		resp nwsnet.Response
		err  error
	}
	pushes := make(chan push, 64)
	call := m.Subscribe(series, func(resp nwsnet.Response, err error) {
		select {
		case pushes <- push{resp, err}:
		default: // a stalled stdout must not block the reader goroutine
		}
	})
	ack, err := call.Wait()
	if err != nil {
		return fmt.Errorf("subscribe %s: %w", series, err)
	}
	if f := ack.Forecast; f != nil {
		fmt.Fprintf(out, "current  %.4f (method %s, MAE %.4f over %d measurements)\n",
			f.Value, f.Method, f.MAE, f.N)
	} else {
		fmt.Fprintf(out, "current  no forecast yet (series empty)\n")
	}
	for n := 0; limit <= 0 || n < limit; {
		p := <-pushes
		if p.err != nil {
			return fmt.Errorf("subscription ended: %w", p.err)
		}
		if f := p.resp.Forecast; f != nil {
			fmt.Fprintf(out, "push     %.4f (method %s, MAE %.4f over %d measurements)\n",
				f.Value, f.Method, f.MAE, f.N)
			n++
		}
	}
	return nil
}

// members prints the cluster membership view — epoch, ring geometry, and
// every lease with its shard's share of a sample key space — and exits
// non-zero when fewer active memory members remain than the replication
// factor, i.e. when some key range has lost its write quorum.
func members(c *nwsnet.Client, nsAddr string, out io.Writer) error {
	v, err := c.FetchView(nsAddr, 0)
	if err != nil {
		return err
	}
	if v == nil {
		return fmt.Errorf("registry %s returned no view", nsAddr)
	}
	cfg := v.Config.Normalize()
	fmt.Fprintf(out, "epoch %d  replication %d  vnodes %d  seed %d\n",
		v.Epoch, cfg.Replication, cfg.VNodes, cfg.Seed)
	if len(v.Members) == 0 {
		fmt.Fprintln(out, "no members")
		return fmt.Errorf("no active memory members (need %d for write quorum)", cfg.Replication)
	}
	// Shard balance over a synthetic key sample, so the listing shows how
	// the ring would spread load even before any series exist.
	shares := map[string]int{}
	if ring := v.Ring(string(nwsnet.KindMemory)); ring != nil {
		keys := make([]string, 1000)
		for i := range keys {
			keys[i] = fmt.Sprintf("host%04d/cpu/nws_hybrid", i)
		}
		shares = ring.Shares(keys)
	}
	active := 0
	for _, m := range v.Members {
		if m.State == cluster.StateActive && m.Kind == string(nwsnet.KindMemory) {
			active++
		}
		share := ""
		if n, ok := shares[m.ID]; ok {
			share = fmt.Sprintf("  %4.1f%% of keys", float64(n)/10)
		}
		fmt.Fprintf(out, "%-20s %-12s %-8s %s%s\n", m.ID, m.Kind, m.State, m.Addr, share)
	}
	fmt.Fprintf(out, "%d/%d active memory members (replication %d)\n", active, len(v.Members), cfg.Replication)
	if active < cfg.Replication {
		return fmt.Errorf("write quorum at risk: %d active memory members < replication %d", active, cfg.Replication)
	}
	return nil
}

// ringOwners prints which members own a series key under the current view.
func ringOwners(c *nwsnet.Client, nsAddr, key string, out io.Writer) error {
	v, err := c.FetchView(nsAddr, 0)
	if err != nil {
		return err
	}
	if v == nil {
		return fmt.Errorf("registry %s returned no view", nsAddr)
	}
	owners := v.Owners(string(nwsnet.KindMemory), key)
	if len(owners) == 0 {
		return fmt.Errorf("no active memory member owns %q (epoch %d)", key, v.Epoch)
	}
	fmt.Fprintf(out, "epoch %d  key %s\n", v.Epoch, key)
	for i, m := range owners {
		role := "replica"
		if i == 0 {
			role = "primary"
		}
		fmt.Fprintf(out, "%-8s %-20s %s\n", role, m.ID, m.Addr)
	}
	if fc := v.Owners(string(nwsnet.KindForecaster), key); len(fc) > 0 {
		fmt.Fprintf(out, "%-8s %-20s %s\n", "forecast", fc[0].ID, fc[0].Addr)
	}
	return nil
}
