package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRequiresExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no experiments accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "bogus"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nonsense"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunQuickTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "table3", "ablation-aggregation"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "kongo") {
		t.Fatalf("missing table output:\n%s", out)
	}
	if !strings.Contains(out, "aggregation ablation") {
		t.Fatalf("missing ablation output:\n%s", out)
	}
}

func TestRunQuickFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-serial", "fig2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "autocorrelations") {
		t.Fatalf("missing figure output:\n%s", buf.String())
	}
}

func TestRunHTMLReport(t *testing.T) {
	dir := t.TempDir()
	html := filepath.Join(dir, "report.html")
	csvDir := filepath.Join(dir, "series")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-save", csvDir, "-html", html, "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "<svg") {
		t.Fatal("HTML report has no charts")
	}
	files, err := os.ReadDir(csvDir)
	if err != nil || len(files) == 0 {
		t.Fatalf("CSV export empty: %v %v", len(files), err)
	}
}

// TestRunAllBranches exercises every experiment dispatch at quick scale in
// one suite (the suite caches its runs, so this stays fast).
func TestRunAllBranches(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick-scale suite")
	}
	var buf bytes.Buffer
	args := []string{"-quick",
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig1", "fig2", "fig3", "fig4",
		"ablation-mixture", "ablation-bias", "ablation-probelen",
		"ablation-aggregation", "ablation-eq2weight", "ablation-selectwindow",
		"ext-smp", "ext-residuals", "ext-forecasters", "ext-cadence",
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
		"Figure 1", "Figure 2", "pox plot", "Figure 4",
		"mixture ablation", "bias ablation", "probe-length ablation",
		"aggregation ablation", "Eq.2 weighting", "selection-window",
		"multiprocessors", "KS comparison", "extended MAE", "sensing-period",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}
