// Command nwsbench regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	nwsbench [flags] <experiment>...
//
// Experiments: table1 table2 table3 table4 table5 table6
//
//	fig1 fig2 fig3 fig4
//	ablation-mixture ablation-bias ablation-probelen
//	ablation-aggregation ablation-scheduler ablation-dynamic
//	ablation-selectwindow ablation-partition ablation-eq2weight
//	ext-smp ext-forecasters ext-residuals ext-cadence
//	all (every table and figure)
//
// Flags:
//
//	-duration  monitored run length in seconds (default 86400, the paper's 24h)
//	-week      Hurst-trace length in seconds (default 604800, one week)
//	-quick     shrink both for a fast smoke run
//	-serial    disable per-host parallelism
//	-save dir  export every computed series as CSV into dir
//	-html file write a self-contained HTML report with tables and SVG figures
//	-load dir  reuse traces previously exported with -save instead of resimulating
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nwscpu/internal/experiments"
	"nwscpu/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwsbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwsbench", flag.ContinueOnError)
	duration := fs.Float64("duration", 86400, "monitored run length in seconds")
	week := fs.Float64("week", 7*86400, "Hurst trace length in seconds")
	quick := fs.Bool("quick", false, "use a small, fast configuration")
	save := fs.String("save", "", "after running, export all computed series as CSV into this directory")
	htmlOut := fs.String("html", "", "write a self-contained HTML report (tables + SVG figures) to this file")
	load := fs.String("load", "", "preload runs from a directory previously written with -save")
	serial := fs.Bool("serial", false, "run host simulations serially")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		return fmt.Errorf("no experiments requested; try: nwsbench all")
	}

	cfg := experiments.Config{Duration: *duration, WeekDuration: *week, Parallel: !*serial}
	if *quick {
		cfg = experiments.QuickConfig()
		cfg.Parallel = !*serial
	}
	suite := experiments.NewSuite(cfg)
	if *load != "" {
		n, err := suite.Preload(*load)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "preloaded %d runs from %s\n", n, *load)
	}

	var expanded []string
	for _, n := range names {
		if n == "all" {
			expanded = append(expanded,
				"table1", "table2", "table3", "table4", "table5", "table6",
				"fig1", "fig2", "fig3", "fig4")
		} else {
			expanded = append(expanded, n)
		}
	}

	for _, name := range expanded {
		if err := runOne(suite, name, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if *save != "" {
		n, err := suite.Export(*save)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "exported %d series to %s\n", n, *save)
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		if err := report.Generate(suite, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote HTML report to %s\n", *htmlOut)
	}
	return nil
}

func runOne(s *experiments.Suite, name string, out io.Writer) error {
	switch strings.ToLower(name) {
	case "table1":
		t, err := s.Table1()
		if err != nil {
			return err
		}
		fmt.Fprint(out, t)
	case "table2":
		t, err := s.Table2()
		if err != nil {
			return err
		}
		fmt.Fprint(out, t)
	case "table3":
		t, err := s.Table3()
		if err != nil {
			return err
		}
		fmt.Fprint(out, t)
	case "table4":
		rows, err := s.Table4()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatTable4(rows))
	case "table5":
		t, err := s.Table5()
		if err != nil {
			return err
		}
		fmt.Fprint(out, t)
	case "table6":
		t, err := s.Table6()
		if err != nil {
			return err
		}
		fmt.Fprint(out, t)
	case "fig1":
		traces, err := s.Figure1()
		if err != nil {
			return err
		}
		for _, host := range experiments.FigureHosts {
			fmt.Fprintf(out, "Figure 1: CPU availability (load average method), %s\n", host)
			fmt.Fprint(out, experiments.AsciiPlot(traces[host], 96, 14, 0, 1))
		}
	case "fig2":
		acfs, err := s.Figure2()
		if err != nil {
			return err
		}
		for _, host := range experiments.FigureHosts {
			fmt.Fprintf(out, "Figure 2: first %d autocorrelations, %s\n", experiments.ACFLags, host)
			fmt.Fprint(out, experiments.FormatACF(acfs[host], 24))
		}
	case "fig3":
		poxes, err := s.Figure3()
		if err != nil {
			return err
		}
		for _, p := range poxes {
			fmt.Fprintf(out, "Figure 3: pox plot, %s (Hurst %.2f)\n", p.Host, p.Hurst)
			fmt.Fprint(out, experiments.FormatPox(p))
		}
	case "fig4":
		traces, err := s.Figure4()
		if err != nil {
			return err
		}
		for _, host := range experiments.FigureHosts {
			fmt.Fprintf(out, "Figure 4: 5-minute aggregated availability, %s\n", host)
			fmt.Fprint(out, experiments.AsciiPlot(traces[host], 96, 14, 0, 1))
		}
	case "ablation-mixture":
		a, err := s.AblationMixture("thing1")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, a)
	case "ablation-bias":
		for _, host := range []string{"conundrum", "kongo"} {
			a, err := s.AblationBias(host)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, a)
		}
	case "ablation-probelen":
		a, err := s.AblationProbeLen("kongo", []float64{1.5, 3, 6, 12})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, a)
	case "ablation-aggregation":
		a, err := s.AblationAggregation("thing2", []int{1, 6, 30, 60})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, a)
	case "ablation-scheduler":
		a := experiments.AblationScheduler(12, 60, 900, 42)
		fmt.Fprintln(out, a)
	case "ablation-eq2weight":
		a, err := s.AblationEq2Weight()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, a)
	case "ablation-selectwindow":
		a, err := s.AblationSelectWindow("thing2", []int{0, 20, 50, 200})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, a)
	case "ablation-partition":
		a := experiments.AblationPartition(900, 900, 42)
		fmt.Fprintln(out, a)
	case "ablation-dynamic":
		a := experiments.AblationDynamic(12, 60, 900, 42)
		fmt.Fprintln(out, a)
	case "ext-forecasters":
		rows, err := s.ExtensionForecasters(experiments.HostNames)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatForecasterExt(rows))
	case "ext-cadence":
		rows, err := s.ExtensionCadence("thing2", []float64{10, 30, 60})
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatCadence(rows))
	case "ext-residuals":
		rows, err := s.ExtensionResiduals()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatResiduals(rows))
	case "ext-smp":
		rows, err := s.ExtensionSMP([]int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatSMP(rows))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
