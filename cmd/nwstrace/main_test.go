package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunUsage(t *testing.T) {
	if err := run(nil, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("no command accepted")
	}
	if err := run([]string{"bogus"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestGenRequiresSource(t *testing.T) {
	if err := run([]string{"gen"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("gen with no source accepted")
	}
	if err := run([]string{"gen", "-profile", "bogus"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestGenAnalyzeForecastPipeline(t *testing.T) {
	var trace bytes.Buffer
	if err := run([]string{"gen", "-fgn", "0.7", "-n", "2048"}, strings.NewReader(""), &trace); err != nil {
		t.Fatal(err)
	}
	csv := trace.String()

	var analysis bytes.Buffer
	if err := run([]string{"analyze"}, strings.NewReader(csv), &analysis); err != nil {
		t.Fatal(err)
	}
	out := analysis.String()
	for _, want := range []string{"points:    2048", "hurst R/S", "hurst GPH", "ljung-box"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis missing %q:\n%s", want, out)
		}
	}

	var fc bytes.Buffer
	if err := run([]string{"forecast"}, strings.NewReader(csv), &fc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fc.String(), "one-step-ahead MAE") {
		t.Fatalf("forecast output:\n%s", fc.String())
	}
}

func TestGenSimProfile(t *testing.T) {
	var trace bytes.Buffer
	if err := run([]string{"gen", "-profile", "gremlin", "-duration", "1200"},
		strings.NewReader(""), &trace); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(trace.String(), "t,value\n") {
		t.Fatalf("missing CSV header: %q", trace.String()[:20])
	}
}

func TestAnalyzeRejectsShortOrBadInput(t *testing.T) {
	if err := run([]string{"analyze"}, strings.NewReader("t,value\n1,0.5\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("short trace accepted")
	}
	if err := run([]string{"analyze"}, strings.NewReader("garbage"), &bytes.Buffer{}); err == nil {
		t.Fatal("bad CSV accepted")
	}
	if err := run([]string{"forecast"}, strings.NewReader("garbage"), &bytes.Buffer{}); err == nil {
		t.Fatal("bad CSV accepted by forecast")
	}
}

func TestReplayRoundTrip(t *testing.T) {
	var trace bytes.Buffer
	if err := run([]string{"gen", "-fgn", "0.7", "-n", "256", "-mean", "0.8", "-scale", "0.05"},
		strings.NewReader(""), &trace); err != nil {
		t.Fatal(err)
	}
	var replayed bytes.Buffer
	if err := run([]string{"replay"}, strings.NewReader(trace.String()), &replayed); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(replayed.String(), "t,value\n") {
		t.Fatal("replay output is not a CSV trace")
	}
	if strings.Count(replayed.String(), "\n") < 100 {
		t.Fatalf("replay output too short:\n%s", replayed.String()[:200])
	}
	if err := run([]string{"replay"}, strings.NewReader("garbage"), &bytes.Buffer{}); err == nil {
		t.Fatal("bad CSV accepted by replay")
	}
}
