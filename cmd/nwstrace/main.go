// Command nwstrace generates and analyzes CPU-availability traces in the
// repository's CSV format ("t,value" header; see package series).
//
//	nwstrace gen -profile thing2 -duration 86400 > trace.csv
//	nwstrace gen -fgn 0.7 -n 8640 -mean 0.7 -scale 0.1 > trace.csv
//	nwstrace analyze < trace.csv
//	nwstrace forecast < trace.csv
//	nwstrace replay  < trace.csv > remeasured.csv
//
// "gen" produces a trace either from the simulator under a paper workload
// profile or from exact fractional Gaussian noise. "analyze" prints summary
// statistics, autocorrelations, and three Hurst estimates (R/S, GPH
// log-periodogram, variance-time). "forecast" replays the trace through the
// NWS engine and reports per-method one-step-ahead accuracy. "replay" treats
// the input as an availability trace, drives the simulator with the load it
// implies, and emits the re-measured availability series.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"nwscpu/internal/fgn"
	"nwscpu/internal/forecast"
	"nwscpu/internal/sensors"
	"nwscpu/internal/series"
	"nwscpu/internal/simos"
	"nwscpu/internal/stats"
	"nwscpu/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwstrace:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: nwstrace gen|analyze|forecast [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], out)
	case "analyze":
		return runAnalyze(in, out)
	case "forecast":
		return runForecast(in, out)
	case "replay":
		return runReplay(in, out)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func runGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	profile := fs.String("profile", "", "simulate a paper host profile (thing1, thing2, ...)")
	duration := fs.Float64("duration", 86400, "simulated duration in seconds")
	period := fs.Float64("period", 10, "sampling period in seconds")
	hurst := fs.Float64("fgn", 0, "generate fractional Gaussian noise with this Hurst parameter instead")
	n := fs.Int("n", 8640, "fgn: number of samples")
	mean := fs.Float64("mean", 0.7, "fgn: availability mean")
	scale := fs.Float64("scale", 0.1, "fgn: noise scale")
	seed := fs.Int64("seed", 1, "fgn: random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var s *series.Series
	switch {
	case *hurst > 0:
		rng := rand.New(rand.NewSource(*seed))
		vals, err := fgn.AvailabilityTrace(rng, *hurst, *mean, *scale, *n)
		if err != nil {
			return err
		}
		s = series.FromValues("fgn", 0, *period, vals)
	case *profile != "":
		var p *workload.Profile
		for _, cand := range workload.Profiles(*duration) {
			if cand.Name == *profile {
				pp := cand
				p = &pp
				break
			}
		}
		if p == nil {
			return fmt.Errorf("unknown profile %q", *profile)
		}
		h := simos.New(simos.DefaultConfig())
		workload.Submit(h, p.Generate(*duration+60))
		sh := sensors.SimHost{H: h}
		la := sensors.NewLoadAvgSensor(sh)
		s = series.New(*profile, "fraction")
		for t := *period; t <= *duration; t += *period {
			h.RunUntil(t)
			if err := s.Append(t, la.Measure()); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("gen needs -profile or -fgn")
	}
	return s.WriteCSV(out)
}

func runAnalyze(in io.Reader, out io.Writer) error {
	s, err := series.ReadCSV(in, "trace")
	if err != nil {
		return err
	}
	vals := s.Values()
	if len(vals) < 64 {
		return fmt.Errorf("trace too short to analyze (%d points)", len(vals))
	}
	sum := stats.Summarize(vals)
	fmt.Fprintf(out, "points:    %d\n", sum.N)
	rng := rand.New(rand.NewSource(1))
	if lo, hi, err := stats.BootstrapCI(rng, vals, len(vals)/20+1, 200, 0.95, stats.Mean); err == nil {
		fmt.Fprintf(out, "mean:      %.4f  (95%% block-bootstrap CI %.4f..%.4f)\n", sum.Mean, lo, hi)
	} else {
		fmt.Fprintf(out, "mean:      %.4f\n", sum.Mean)
	}
	fmt.Fprintf(out, "stddev:    %.4f\n", sum.StdDev)
	fmt.Fprintf(out, "min/max:   %.4f / %.4f\n", sum.Min, sum.Max)
	fmt.Fprintf(out, "median:    %.4f (IQR %.4f..%.4f)\n", sum.Median, sum.Q25, sum.Q75)

	acf := stats.ACF(vals, 60)
	fmt.Fprintf(out, "acf:       lag1 %.3f  lag10 %.3f  lag60 %.3f\n", acf[1], acf[10], acf[60])
	fmt.Fprintf(out, "ljung-box: %.1f over 20 lags\n", stats.LjungBox(vals, 20))

	if h, fit, err := stats.HurstRS(vals, 16); err == nil {
		fmt.Fprintf(out, "hurst R/S:       %.3f (fit R2 %.3f)\n", h, fit.R2)
	} else {
		fmt.Fprintf(out, "hurst R/S:       unavailable (%v)\n", err)
	}
	if h, _, err := stats.HurstGPH(vals, 0.5); err == nil {
		fmt.Fprintf(out, "hurst GPH:       %.3f\n", h)
	} else {
		fmt.Fprintf(out, "hurst GPH:       unavailable (%v)\n", err)
	}
	if h, _, err := stats.HurstVarianceTime(vals, 8); err == nil {
		fmt.Fprintf(out, "hurst var-time:  %.3f\n", h)
	} else {
		fmt.Fprintf(out, "hurst var-time:  unavailable (%v)\n", err)
	}
	return nil
}

// runReplay drives the simulator with the load implied by an availability
// trace and writes back what the load-average sensor measures.
func runReplay(in io.Reader, out io.Writer) error {
	trace, err := series.ReadCSV(in, "trace")
	if err != nil {
		return err
	}
	arrivals, err := workload.FromAvailabilityTrace(trace)
	if err != nil {
		return err
	}
	h := simos.New(simos.DefaultConfig())
	workload.Submit(h, arrivals)
	sh := sensors.SimHost{H: h}
	la := sensors.NewLoadAvgSensor(sh)
	remeasured := series.New(trace.Name+"/replayed", "fraction")
	last, _ := trace.Last()
	first := trace.At(0)
	dt := 10.0
	if trace.Len() > 1 {
		dt = (last.T - first.T) / float64(trace.Len()-1)
	}
	for t := first.T + dt; t <= last.T; t += dt {
		h.RunUntil(t)
		if err := remeasured.Append(t, la.Measure()); err != nil {
			return err
		}
	}
	return remeasured.WriteCSV(out)
}

func runForecast(in io.Reader, out io.Writer) error {
	s, err := series.ReadCSV(in, "trace")
	if err != nil {
		return err
	}
	vals := s.Values()
	res, report, err := forecast.EvaluateEngine(forecast.NewDefaultEngine, vals)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "one-step-ahead MAE:  %.4f over %d forecasts\n", res.MAE, res.N)
	fmt.Fprintf(out, "one-step-ahead RMSE: %.4f\n", res.RMSE)
	fmt.Fprintln(out, "\nper-method MAE (best ten):")
	for i, m := range report {
		if i == 10 {
			break
		}
		fmt.Fprintf(out, "  %-16s %.4f\n", m.Name, m.MAE)
	}
	return nil
}
