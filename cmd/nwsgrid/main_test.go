package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nwscpu/internal/grid"
)

func runCLI(t *testing.T, args ...string) (stdout string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	if code != 0 && !strings.Contains(strings.Join(args, " "), "bogus") {
		t.Fatalf("run(%v) = %d, stderr: %s", args, code, errb.String())
	}
	return out.String(), code
}

// TestCLISameSeedByteIdentical drives the determinism guarantee end to end
// through the binary's code path: the same seed and flags twice must write
// byte-identical text and JSON artifacts; a different seed must not.
func TestCLISameSeedByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := func(seed, tag string) []string {
		return []string{
			"-seed", seed, "-hosts", "14", "-duration", "100",
			"-out", filepath.Join(dir, tag+".txt"),
			"-json", filepath.Join(dir, tag+".json"),
		}
	}
	out1, _ := runCLI(t, args("9", "a")...)
	out2, _ := runCLI(t, args("9", "b")...)
	if out1 != out2 {
		t.Fatalf("same seed, different stdout")
	}
	for _, ext := range []string{".txt", ".json"} {
		a, err := os.ReadFile(filepath.Join(dir, "a"+ext))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "b"+ext))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("same seed, different %s artifacts", ext)
		}
	}
	out3, _ := runCLI(t, args("10", "c")...)
	if out1 == out3 {
		t.Fatalf("different seeds, identical reports")
	}
}

// TestCLIJSONReport checks the JSON artifact: versioned schema, and at
// least one passing and one failing SLO verdict under the shipped default
// SLOs (the acceptance bar for the capacity report).
func TestCLIJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	runCLI(t, "-seed", "1", "-hosts", "14", "-duration", "100", "-json", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep grid.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if rep.Schema != grid.SchemaVersion {
		t.Fatalf("schema %q, want %q", rep.Schema, grid.SchemaVersion)
	}
	var pass, fail bool
	for _, v := range rep.Verdicts {
		if v.Pass {
			pass = true
		} else {
			fail = true
		}
	}
	if !pass || !fail {
		t.Fatalf("default run did not produce both PASS and FAIL verdicts: %+v", rep.Verdicts)
	}
}

// TestCLIFaultCampaign drives -faults end to end: byte-identical artifacts
// for the same seed, a parsing versioned JSON report, and every invariant
// verdict passing (a failing invariant exits non-zero, which is what
// make chaos-repair gates on).
func TestCLIFaultCampaign(t *testing.T) {
	dir := t.TempDir()
	args := func(tag string) []string {
		return []string{
			"-faults", "-seed", "3",
			"-out", filepath.Join(dir, tag+".txt"),
			"-json", filepath.Join(dir, tag+".json"),
		}
	}
	out1, _ := runCLI(t, args("a")...)
	out2, _ := runCLI(t, args("b")...)
	if out1 != out2 {
		t.Fatal("same seed, different fault-campaign stdout")
	}
	for _, ext := range []string{".txt", ".json"} {
		a, err := os.ReadFile(filepath.Join(dir, "a"+ext))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "b"+ext))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("same seed, different fault %s artifacts", ext)
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep grid.FaultReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON fault report does not parse: %v", err)
	}
	if rep.Schema != grid.FaultSchemaVersion {
		t.Fatalf("schema %q, want %q", rep.Schema, grid.FaultSchemaVersion)
	}
	if len(rep.Verdicts) == 0 {
		t.Fatal("fault report holds no verdicts")
	}
	for _, v := range rep.Verdicts {
		if !v.Pass {
			t.Errorf("fault invariant %s failed: value %g", v.Config, v.Value)
		}
	}
}

func TestCLIBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-factors", "1,bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad factors exited %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
}
