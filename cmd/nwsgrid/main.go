// Command nwsgrid runs the deterministic grid-scale scenario harness: a
// fleet of simulated time-shared Unix hosts under heterogeneous load
// regimes (diurnal cycles, flash crowds, batch storms, nice-19 hogs,
// long-runner evictors, hypervisor steal, chaotic load) driving the full
// in-process serving stack, reported as a capacity plan — per-scenario
// forecast-error tables, serving latency versus offered load, and SLO
// verdicts.
//
// The report is a pure function of -seed and the flags: the same
// invocation reproduces it byte for byte (text and JSON alike).
//
//	nwsgrid -seed 42                         # 1000 hosts, text to stdout
//	nwsgrid -smoke -json report.json         # CI-sized run + JSON artifact
//	nwsgrid -hosts 2000 -duration 1800 -factors 1,16,256
//
// -faults switches to the seeded fault-campaign mode: the same seed drives
// an identical schedule of replica crashes, stalls, asymmetric partitions,
// and sensor clock skews against the in-process replication stack, run once
// with the anti-entropy repair plane and once without, and the robustness
// report (schema nws/fault-report/v1) scores both arms against the
// campaign's invariants.
//
//	nwsgrid -faults -seed 42                 # robustness report to stdout
//	nwsgrid -faults -json fault.json         # + JSON artifact
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nwscpu/internal/grid"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nwsgrid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := grid.DefaultConfig()
	var (
		seed       = fs.Int64("seed", def.Seed, "run seed; same seed + flags => byte-identical report")
		hosts      = fs.Int("hosts", def.Hosts, "number of simulated hosts")
		duration   = fs.Float64("duration", def.Duration, "simulated seconds")
		cadence    = fs.Float64("cadence", def.Cadence, "measurement period, seconds")
		serveRate  = fs.Float64("serverate", def.ServeRate, "modelled serving capacity, memory ops/s")
		factors    = fs.String("factors", "1,8,64,512", "comma-separated offered-load multipliers")
		subEvery   = fs.Int("sub-every", def.SubEvery, "subscribe every Nth host's hybrid series (0 disables)")
		queryEvery = fs.Int("query-every", def.QueryEvery, "query every Nth series per round")
		sloP99     = fs.Float64("slo-p99ms", def.SLO.ServeP99Ms, "serving p99 latency budget, milliseconds")
		sloUtil    = fs.Float64("slo-util", def.SLO.MaxUtil, "serving utilization ceiling")
		sloMAE     = fs.Float64("slo-mae", def.SLO.EngineMAE, "forecast engine MAE budget")
		smoke      = fs.Bool("smoke", false, "CI-sized run (48 hosts, 300 s) unless -hosts/-duration are given")
		outPath    = fs.String("out", "", "also write the text report to this file")
		jsonPath   = fs.String("json", "", "write the JSON report (schema "+grid.SchemaVersion+") to this file")

		fdef          = grid.DefaultFaultConfig()
		faults        = fs.Bool("faults", false, "run the seeded fault campaign instead of the capacity harness")
		faultRounds   = fs.Int("fault-rounds", fdef.Rounds, "fault campaign length in measurement rounds")
		faultReplicas = fs.Int("fault-replicas", fdef.Replicas, "memory replica count in the fault campaign")
		faultBacklog  = fs.Int("fault-backlog", fdef.BacklogCap, "sensor backlog cap (the writer's self-healing window)")
		faultHints    = fs.Int("fault-hints", fdef.HintCap, "hinted-handoff queue cap per replica per series")
		faultRecovery = fs.Int("fault-recovery", fdef.RecoveryRounds, "rounds allowed for post-fault convergence")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	loadFactors, err := parseFactors(*factors)
	if err != nil {
		fmt.Fprintf(stderr, "nwsgrid: %v\n", err)
		return 2
	}

	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *faults {
		fcfg := fdef
		fcfg.Seed = *seed
		fcfg.Rounds = *faultRounds
		fcfg.Replicas = *faultReplicas
		fcfg.BacklogCap = *faultBacklog
		fcfg.HintCap = *faultHints
		fcfg.RecoveryRounds = *faultRecovery
		if set["hosts"] {
			fcfg.Hosts = *hosts
		}
		if set["cadence"] {
			fcfg.Cadence = *cadence
		}
		frep, err := grid.RunFaultCampaign(fcfg)
		if err != nil {
			fmt.Fprintf(stderr, "nwsgrid: %v\n", err)
			return 1
		}
		if err := frep.WriteText(stdout); err != nil {
			fmt.Fprintf(stderr, "nwsgrid: %v\n", err)
			return 1
		}
		if *outPath != "" {
			if err := writeReport(*outPath, frep.WriteText); err != nil {
				fmt.Fprintf(stderr, "nwsgrid: %v\n", err)
				return 1
			}
		}
		if *jsonPath != "" {
			if err := writeReport(*jsonPath, frep.WriteJSON); err != nil {
				fmt.Fprintf(stderr, "nwsgrid: %v\n", err)
				return 1
			}
		}
		for _, v := range frep.Verdicts {
			if !v.Pass {
				fmt.Fprintf(stderr, "nwsgrid: fault invariant failed: %s (%s) = %g\n", v.Config, v.SLO, v.Value)
				return 1
			}
		}
		return 0
	}
	cfg := grid.Config{
		Seed: *seed, Hosts: *hosts, Duration: *duration, Cadence: *cadence,
		ServeRate: *serveRate, LoadFactors: loadFactors,
		SubEvery: *subEvery, QueryEvery: *queryEvery,
		SLO: grid.SLO{ServeP99Ms: *sloP99, MaxUtil: *sloUtil, EngineMAE: *sloMAE},
	}
	if *smoke {
		sm := grid.SmokeConfig()
		if !set["hosts"] {
			cfg.Hosts = sm.Hosts
		}
		if !set["duration"] {
			cfg.Duration = sm.Duration
		}
	}

	rep, err := grid.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "nwsgrid: %v\n", err)
		return 1
	}
	if err := rep.WriteText(stdout); err != nil {
		fmt.Fprintf(stderr, "nwsgrid: %v\n", err)
		return 1
	}
	if *outPath != "" {
		if err := writeReport(*outPath, rep.WriteText); err != nil {
			fmt.Fprintf(stderr, "nwsgrid: %v\n", err)
			return 1
		}
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, rep.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "nwsgrid: %v\n", err)
			return 1
		}
	}
	return 0
}

func parseFactors(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad load factor %q", part)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no load factors in %q", s)
	}
	return out, nil
}

func writeReport(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
