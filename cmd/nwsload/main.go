// Command nwsload is a closed-loop load generator for the NWS memory
// serving path: N client workers hammer stores and fetches over a fixed set
// of series and the tool reports sustained throughput and latency quantiles
// per scenario, writing a machine-readable report (BENCH_memory.json by
// default).
//
// The report carries its own baseline: the seed implementation of the memory
// — one global mutex over append-slice series, with an O(capacity) copy
// evicting every point past the bound — is embedded here (lock-corrected so
// the tool itself is race-clean) and measured fresh each run next to the
// sharded ring-buffer implementation, so the speedup is regenerated from
// scratch by anyone running `make bench-memory` rather than trusted from a
// committed number.
//
// Two levels are measured:
//
//   - serve_store/* drive Memory.Handle directly, isolating the serving
//     path the shard/ring rework changed; this is the first acceptance pair.
//   - wire_* run the full closed loop over TCP loopback against a live
//     Server, in both wire codecs (see docs/PROTOCOL.md): */json is wire
//     protocol v1 (JSON lines, lockstep), */binary is v2 (length-prefixed
//     binary frames), and */binary-pipelined keeps -pipeline requests in
//     flight per worker, workers sharing multiplexed v2 connections eight
//     to a wire. The
//     json-vs-binary-pipelined store pair is the second acceptance pair —
//     the wire/in-process gap the binary codec exists to close.
//
// Usage:
//
//	nwsload [-clients 64] [-series 256] [-capacity 10000] [-duration 2s]
//	        [-codec both] [-pipeline 64] [-skew 1.2] [-out BENCH_memory.json]
//	        [-smoke] [-wire-only] [-cpuprofile prof.out]
//
// -smoke shrinks everything to a ~1 s run for the race-enabled CI pass;
// -wire-only skips the handler-level scenarios (make bench-wire-smoke).
//
// -skew s (s > 1) draws each worker's next series from a Zipf distribution
// with parameter s instead of rotating uniformly, concentrating load on a
// few hot series — the workload shape that stresses a partitioned cluster
// unevenly. Every measurement also reports shard_ops: how the scenario's
// operations would split across the shards of a 4-member consistent-hash
// ring (the cluster geometry of docs/ARCHITECTURE.md), so the skew's effect
// on shard balance is visible directly in BENCH_memory.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nwscpu/internal/nwsnet"
	"nwscpu/internal/nwsnet/cluster"
	"nwscpu/internal/resilience"
	"nwscpu/internal/series"
)

// seedMemory reproduces the seed memory server's cost shape: a single
// global mutex over every series, append-slice storage, and an O(capacity)
// copy per store once a series is at its bound. Unlike the real seed code it
// holds the lock across the whole fetch (the seed read the series tail
// outside it — the data race this PR fixed), so the generator itself stays
// race-clean while preserving the contention and eviction costs.
type seedMemory struct {
	capacity int
	mu       sync.Mutex
	store    map[string]*series.Series
}

func newSeedMemory(capacity int) *seedMemory {
	return &seedMemory{capacity: capacity, store: make(map[string]*series.Series)}
}

func (m *seedMemory) Handle(req nwsnet.Request) nwsnet.Response {
	switch req.Op {
	case nwsnet.OpStore:
		m.mu.Lock()
		defer m.mu.Unlock()
		s := m.store[req.Series]
		if s == nil {
			s = series.New(req.Series, "fraction")
			m.store[req.Series] = s
		}
		for _, tv := range req.Points {
			// The seed rejected t < last ("out-of-order append"); the
			// workload never sends that, so plain Append matches its cost.
			if err := s.Append(tv[0], tv[1]); err != nil {
				return nwsnet.Response{Error: err.Error()}
			}
		}
		// The seed's circular bound: a full reallocation and copy of the
		// retained window on every overflowing store.
		if extra := s.Len() - m.capacity; extra > 0 {
			s.Points = append(s.Points[:0:0], s.Points[extra:]...)
		}
		return nwsnet.Response{OK: true}
	case nwsnet.OpFetch:
		m.mu.Lock()
		defer m.mu.Unlock()
		s := m.store[req.Series]
		if s == nil {
			return nwsnet.Response{Error: "unknown series"}
		}
		to := req.To
		if to == 0 {
			if last, ok := s.Last(); ok {
				to = last.T + 1
			}
		}
		sub := s.Slice(req.From, to)
		pts := sub.Points
		if req.Max > 0 && len(pts) > req.Max {
			pts = pts[len(pts)-req.Max:]
		}
		out := make([][2]float64, len(pts))
		for i, p := range pts {
			out[i] = [2]float64{p.T, p.V}
		}
		return nwsnet.Response{OK: true, Points: out}
	default:
		return nwsnet.Response{Error: "unsupported"}
	}
}

// config is one run's workload shape.
type config struct {
	Clients  int     `json:"clients"`
	Series   int     `json:"series"`
	Capacity int     `json:"capacity"`
	Duration float64 `json:"duration_seconds"` // per scenario
	Codec    string  `json:"codec"`            // json | binary | both
	Pipeline int     `json:"pipeline"`         // in-flight requests per worker, pipelined scenarios
	Skew     float64 `json:"skew,omitempty"`   // Zipf s for key selection (0 = uniform rotation)
	WireOnly bool    `json:"wire_only,omitempty"`
	// Subscribers is the concurrent-subscription count of the
	// subscribe_push scenario (spread over Clients multiplexed
	// connections); SubOnly restricts the run to the read-plane rows
	// (make bench-subscribe-smoke).
	Subscribers int  `json:"subscribers,omitempty"`
	SubOnly     bool `json:"subscribe_only,omitempty"`
}

// Measurement is one scenario's sustained observed performance.
type Measurement struct {
	Ops          int64   `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	P50Micros    float64 `json:"p50_us"`
	P90Micros    float64 `json:"p90_us"`
	P99Micros    float64 `json:"p99_us"`
	// ShardOps is how the scenario's ops would split across the shards of a
	// 4-member consistent-hash ring — uniform rotation lands near 25% each,
	// while -skew concentrates ops on whichever shards own the hot keys.
	ShardOps map[string]int64 `json:"shard_ops,omitempty"`
	// Read-plane extras: Subscribers and CacheHitRate on the
	// subscribe_push row (ops there are received pushes, latency is
	// store-to-push including the refresher tick), Throttled on the
	// tenant_quota/contended row (the hog tenant's busy-shed ops).
	Subscribers  int     `json:"subscribers,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	Throttled    int64   `json:"throttled_ops,omitempty"`
}

// Result is one scenario's row in the report.
type Result struct {
	Name    string      `json:"name"`
	Current Measurement `json:"current"`
}

// Acceptance states the headline criteria in checkable form: the sharded
// serving path must sustain at least 5x the seed single-mutex store
// throughput, and the pipelined binary wire path at least 10x the v1 JSON
// lockstep store throughput, under the standard 64-writers/256-series
// workload. Fields for scenarios a restricted -codec / -wire-only run
// skipped are left zero.
type Acceptance struct {
	StoreOpsPerSecSeed     float64 `json:"store_ops_per_sec_seed"`
	StoreOpsPerSecSharded  float64 `json:"store_ops_per_sec_sharded"`
	StoreSpeedup           float64 `json:"store_speedup"`
	Meets5xStoreThroughput bool    `json:"meets_5x_store_throughput"`

	WireStoreOpsPerSecJSON      float64 `json:"wire_store_ops_per_sec_json"`
	WireStoreOpsPerSecBinary    float64 `json:"wire_store_ops_per_sec_binary"` // binary-pipelined
	WireSpeedup                 float64 `json:"wire_speedup"`
	Meets10xWireStoreThroughput bool    `json:"meets_10x_wire_store_throughput"`

	// Read plane: the subscribe_push scenario must hold a >=90% forecast
	// cache hit rate under its store/query mix, and the tenant_quota pair
	// must shed the hog tenant while the paced good tenants' store p99
	// stays within 2x of their uncontended baseline.
	SubscribePushP99Micros float64 `json:"subscribe_push_p99_us,omitempty"`
	ForecastCacheHitRate   float64 `json:"forecast_cache_hit_rate,omitempty"`
	Meets90PctCacheHitRate bool    `json:"meets_90pct_cache_hit_rate,omitempty"`
	TenantGoodP99Baseline  float64 `json:"tenant_good_p99_us_baseline,omitempty"`
	TenantGoodP99Contended float64 `json:"tenant_good_p99_us_contended,omitempty"`
	TenantP99Ratio         float64 `json:"tenant_p99_ratio,omitempty"`
	TenantThrottledOps     int64   `json:"tenant_throttled_ops,omitempty"`
	MeetsTenantIsolation   bool    `json:"meets_tenant_isolation,omitempty"`
}

// Report is the BENCH_memory.json document.
type Report struct {
	Schema         string     `json:"schema"`
	Package        string     `json:"package"`
	GoVersion      string     `json:"go_version"`
	GOOS           string     `json:"goos"`
	GOARCH         string     `json:"goarch"`
	NumCPU         int        `json:"num_cpu"`
	BaselineCommit string     `json:"baseline_commit"`
	BaselineSource string     `json:"baseline_source"`
	Config         config     `json:"config"`
	Acceptance     Acceptance `json:"acceptance"`
	Results        []Result   `json:"results"`
}

// latSampleEvery thins latency sampling so the timer calls do not dominate
// sub-microsecond operations; throughput counts every op regardless.
const latSampleEvery = 8

// worker owns a disjoint subset of the series (so per-series timestamps
// stay monotonic without coordination) and runs one closed loop.
type worker struct {
	keys   []string
	next   []float64 // next timestamp per owned series
	keyOps []int64   // ops per owned series, for the shard split
	zipf   *rand.Zipf

	ops  int64
	lats []float64 // sampled latencies, microseconds
}

// run loops body until the deadline, counting ops and sampling latency.
// body performs one operation on the i-th owned series — a uniform rotation
// by default, a Zipf draw over the owned set under -skew.
func (w *worker) run(deadline time.Time, body func(rot int)) {
	rot := 0
	for i := 0; ; i++ {
		if i%64 == 0 && time.Now().After(deadline) {
			return
		}
		idx := rot
		if w.zipf != nil {
			idx = int(w.zipf.Uint64())
		}
		if i%latSampleEvery == 0 {
			t0 := time.Now()
			body(idx)
			w.lats = append(w.lats, float64(time.Since(t0).Nanoseconds())/1e3)
		} else {
			body(idx)
		}
		w.ops++
		w.keyOps[idx]++
		rot = (rot + 1) % len(w.keys)
	}
}

// makeWorkers splits the series evenly across n workers, with per-series
// timestamp counters starting just past the prefill.
func makeWorkers(cfg config, prefill int) []*worker {
	ws := make([]*worker, cfg.Clients)
	for i := range ws {
		ws[i] = &worker{}
	}
	for s := 0; s < cfg.Series; s++ {
		w := ws[s%cfg.Clients]
		w.keys = append(w.keys, fmt.Sprintf("load/host%03d/cpu", s))
		w.next = append(w.next, float64(prefill+1))
	}
	for i, w := range ws {
		w.keyOps = make([]int64, len(w.keys))
		if cfg.Skew > 1 {
			// Deterministic per-worker source: runs are reproducible and the
			// hot keys differ across workers, like real uneven sensor fleets.
			w.zipf = rand.NewZipf(rand.New(rand.NewSource(int64(i)+1)), cfg.Skew, 1, uint64(len(w.keys)-1))
		}
	}
	return ws
}

// benchRing is the hypothetical 4-shard cluster ring every measurement's
// shard_ops split is computed against (default geometry: 64 vnodes, seed 0).
var benchRing = cluster.NewRing([]string{"shard-0", "shard-1", "shard-2", "shard-3"}, 0, 0)

// shardSplit folds per-key op counts into ops per hypothetical shard.
func shardSplit(ws []*worker) map[string]int64 {
	out := make(map[string]int64, 4)
	for _, w := range ws {
		for i, n := range w.keyOps {
			if n > 0 {
				out[benchRing.Owner(w.keys[i])] += n
			}
		}
	}
	return out
}

// prefill loads every series to capacity so store scenarios run at
// steady-state eviction — the regime where the seed implementation pays its
// O(capacity) copy on every single-point store.
func prefill(h nwsnet.Handler, cfg config) {
	pts := make([][2]float64, cfg.Capacity)
	for i := range pts {
		pts[i] = [2]float64{float64(i + 1), 0.5}
	}
	for s := 0; s < cfg.Series; s++ {
		key := fmt.Sprintf("load/host%03d/cpu", s)
		if resp := h.Handle(nwsnet.Request{Op: nwsnet.OpStore, Series: key, Points: pts}); resp.Error != "" {
			panic("nwsload: prefill: " + resp.Error)
		}
	}
}

// collect drives every worker concurrently and folds their counts into one
// Measurement. pointsPerOp scales the points/s figure (0 omits it).
func collect(cfg config, ws []*worker, pointsPerOp int, body func(w *worker, rot int)) Measurement {
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(time.Duration(cfg.Duration * float64(time.Second)))
	for _, w := range ws {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(deadline, func(rot int) { body(w, rot) })
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var m Measurement
	var lats []float64
	for _, w := range ws {
		m.Ops += w.ops
		lats = append(lats, w.lats...)
	}
	m.OpsPerSec = float64(m.Ops) / elapsed
	if pointsPerOp > 0 {
		m.PointsPerSec = m.OpsPerSec * float64(pointsPerOp)
	}
	sort.Float64s(lats)
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	m.P50Micros, m.P90Micros, m.P99Micros = q(0.50), q(0.90), q(0.99)
	m.ShardOps = shardSplit(ws)
	return m
}

// storeBody returns a closed-loop body storing one point per op through h.
func storeBody(h nwsnet.Handler) func(w *worker, rot int) {
	return func(w *worker, rot int) {
		t := w.next[rot]
		w.next[rot] = t + 1
		resp := h.Handle(nwsnet.Request{Op: nwsnet.OpStore, Series: w.keys[rot],
			Points: [][2]float64{{t, 0.5}}})
		if resp.Error != "" {
			panic("nwsload: store: " + resp.Error)
		}
	}
}

// serveScenario measures handler-level stores: the serving path in
// isolation, no wire in the way.
func serveScenario(cfg config, h nwsnet.Handler) Measurement {
	prefill(h, cfg)
	ws := makeWorkers(cfg, cfg.Capacity)
	return collect(cfg, ws, 1, storeBody(h))
}

// startServer brings up a protocol server over h and returns its address
// with a shutdown func.
func startServer(h nwsnet.Handler) (string, func()) {
	srv := nwsnet.NewServer(h, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic("nwsload: listen: " + err.Error())
	}
	return addr, func() { srv.Close() }
}

// newWireClients gives every worker its own pooled client so each keeps a
// live connection, the shape of a fleet of sensor daemons.
func newWireClients(n int, codec nwsnet.Codec) []*nwsnet.Client {
	cs := make([]*nwsnet.Client, n)
	for i := range cs {
		cs[i] = nwsnet.NewClientOptions(nwsnet.ClientOptions{
			Timeout:        10 * time.Second,
			MaxIdlePerAddr: 1,
			Codec:          codec,
		})
	}
	return cs
}

// wireStoreScenario is the full closed loop: one point per op per client
// over TCP, one request in flight per worker (the lockstep client).
func wireStoreScenario(cfg config, h nwsnet.Handler, codec nwsnet.Codec) Measurement {
	prefill(h, cfg)
	addr, stop := startServer(h)
	defer stop()
	ws := makeWorkers(cfg, cfg.Capacity)
	clients := newWireClients(cfg.Clients, codec)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	byWorker := make(map[*worker]*nwsnet.Client, len(ws))
	for i, w := range ws {
		byWorker[w] = clients[i]
	}
	return collect(cfg, ws, 1, func(w *worker, rot int) {
		t := w.next[rot]
		w.next[rot] = t + 1
		if err := byWorker[w].Store(addr, w.keys[rot], [][2]float64{{t, 0.5}}); err != nil {
			panic("nwsload: wire store: " + err.Error())
		}
	})
}

// pipeWorker is one pipelined worker's private state: its multiplexed
// connection and the window of in-flight calls. Only the owning goroutine
// touches it during a run.
type pipeWorker struct {
	mux *nwsnet.MuxConn
	q   []*nwsnet.MuxCall
}

// push issues one request, first completing the oldest call when the window
// is full. check validates each completed response.
func (p *pipeWorker) push(window int, req nwsnet.Request, check func(nwsnet.Response)) {
	if len(p.q) >= window {
		resp, err := p.q[0].Wait()
		if err != nil {
			panic("nwsload: pipelined call: " + err.Error())
		}
		check(resp)
		p.q = p.q[1:]
	}
	p.q = append(p.q, p.mux.Go(req))
}

// drain completes whatever is still in flight after the deadline.
func (p *pipeWorker) drain(check func(nwsnet.Response)) {
	for _, c := range p.q {
		resp, err := c.Wait()
		if err != nil {
			panic("nwsload: pipelined drain: " + err.Error())
		}
		check(resp)
	}
	p.q = nil
}

// pipelinedScenario is the shared harness for the binary-pipelined rows:
// every worker keeps cfg.Pipeline requests in flight, and workers share
// multiplexed connections eight to a MuxConn — the deployment shape the v2
// protocol is built for (many logical callers funneled over few wires), and
// what lets the client group-commit whole windows per write syscall. Sampled
// latencies measure the closed-loop issue slot (time to admit one more
// request, including waiting out the oldest), not a single request's RTT —
// under a full window that is the inter-completion time, which is the figure
// that matters for throughput.
func pipelinedScenario(cfg config, h nwsnet.Handler, pointsPerOp int,
	reqFor func(w *worker, rot int) nwsnet.Request, check func(nwsnet.Response)) Measurement {

	prefill(h, cfg)
	addr, stop := startServer(h)
	defer stop()
	ws := makeWorkers(cfg, cfg.Capacity)
	window := cfg.Pipeline
	if window < 1 {
		window = 1
	}
	nConns := (len(ws) + 7) / 8
	conns := make([]*nwsnet.MuxConn, nConns)
	for i := range conns {
		mux, err := nwsnet.DialMux(addr, 10*time.Second)
		if err != nil {
			panic("nwsload: dial mux: " + err.Error())
		}
		defer mux.Close()
		conns[i] = mux
	}
	pipes := make(map[*worker]*pipeWorker, len(ws))
	for i, w := range ws {
		pipes[w] = &pipeWorker{mux: conns[i%nConns]}
	}
	m := collect(cfg, ws, pointsPerOp, func(w *worker, rot int) {
		pipes[w].push(window, reqFor(w, rot), check)
	})
	for _, p := range pipes {
		p.drain(check)
	}
	return m
}

// wireStorePipelinedScenario stores one point per op with cfg.Pipeline
// requests in flight per worker.
func wireStorePipelinedScenario(cfg config, h nwsnet.Handler) Measurement {
	return pipelinedScenario(cfg, h, 1, func(w *worker, rot int) nwsnet.Request {
		t := w.next[rot]
		w.next[rot] = t + 1
		return nwsnet.Request{Op: nwsnet.OpStore, Series: w.keys[rot],
			Points: [][2]float64{{t, 0.5}}}
	}, func(resp nwsnet.Response) {
		if resp.Error != "" {
			panic("nwsload: pipelined store: " + resp.Error)
		}
	})
}

// wireFetchPipelinedScenario reads the latest 100 points per op with
// cfg.Pipeline requests in flight per worker.
func wireFetchPipelinedScenario(cfg config, h nwsnet.Handler) Measurement {
	return pipelinedScenario(cfg, h, 100, func(w *worker, rot int) nwsnet.Request {
		return nwsnet.Request{Op: nwsnet.OpFetch, Series: w.keys[rot], Max: 100}
	}, func(resp nwsnet.Response) {
		if resp.Error != "" {
			panic("nwsload: pipelined fetch: " + resp.Error)
		}
		if len(resp.Points) == 0 {
			panic("nwsload: pipelined fetch returned no points")
		}
	})
}

// wireStoreBatchScenario stores one point on every owned series per op
// through the batch envelope — the sensor daemon's per-tick shape.
func wireStoreBatchScenario(cfg config, h nwsnet.Handler, codec nwsnet.Codec) Measurement {
	prefill(h, cfg)
	addr, stop := startServer(h)
	defer stop()
	ws := makeWorkers(cfg, cfg.Capacity)
	clients := newWireClients(cfg.Clients, codec)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	byWorker := make(map[*worker]*nwsnet.Client, len(ws))
	for i, w := range ws {
		byWorker[w] = clients[i]
	}
	perOp := len(ws[0].keys)
	return collect(cfg, ws, perOp, func(w *worker, _ int) {
		stores := make([]nwsnet.BatchStore, len(w.keys))
		for i, k := range w.keys {
			stores[i] = nwsnet.BatchStore{Series: k, Points: [][2]float64{{w.next[i], 0.5}}}
			w.next[i]++
		}
		if _, err := byWorker[w].StoreBatch(addr, stores); err != nil {
			panic("nwsload: wire batch store: " + err.Error())
		}
	})
}

// wireFetchScenario reads the latest 100 points per op over TCP.
func wireFetchScenario(cfg config, h nwsnet.Handler, codec nwsnet.Codec) Measurement {
	prefill(h, cfg)
	addr, stop := startServer(h)
	defer stop()
	ws := makeWorkers(cfg, cfg.Capacity)
	clients := newWireClients(cfg.Clients, codec)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	byWorker := make(map[*worker]*nwsnet.Client, len(ws))
	for i, w := range ws {
		byWorker[w] = clients[i]
	}
	return collect(cfg, ws, 100, func(w *worker, rot int) {
		pts, err := byWorker[w].Fetch(addr, w.keys[rot], 0, 0, 100)
		if err != nil {
			panic("nwsload: wire fetch: " + err.Error())
		}
		if len(pts) == 0 {
			panic("nwsload: wire fetch returned no points")
		}
	})
}

// quantilesOf sorts lats in place and fills the measurement's latency
// quantiles.
func quantilesOf(m *Measurement, lats []float64) {
	sort.Float64s(lats)
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	m.P50Micros, m.P90Micros, m.P99Micros = q(0.50), q(0.90), q(0.99)
}

// subscribeScenario measures the multi-tenant read plane end to end: nSubs
// subscriptions spread over nConns multiplexed connections against a live
// forecaster (fed by a live memory server, refresher ticking), while a
// store driver changes a rotating batch of series each tick and query
// workers hammer OpForecast to exercise the forecast cache. Ops are
// received pushes; latency is store-to-push wall time, which includes
// waiting out the refresher tick — the figure a subscriber actually
// experiences. CacheHitRate is the forecaster's hits/(hits+misses) over
// the whole scenario.
func subscribeScenario(cfg config, nSubs, nConns int, tick time.Duration) Measurement {
	mem := nwsnet.NewMemory(cfg.Capacity)
	keys := make([]string, cfg.Series)
	next := make([]float64, cfg.Series)
	for i := range keys {
		keys[i] = fmt.Sprintf("sub/host%03d/cpu", i)
		pts := make([][2]float64, 16)
		for t := range pts {
			pts[t] = [2]float64{float64(t + 1), 0.5}
		}
		if resp := mem.Handle(nwsnet.Request{Op: nwsnet.OpStore, Series: keys[i], Points: pts}); resp.Error != "" {
			panic("nwsload: subscribe seed: " + resp.Error)
		}
		next[i] = float64(len(pts) + 1)
	}
	memAddr, stopMem := startServer(mem)
	defer stopMem()
	f := nwsnet.NewForecasterService(memAddr, 10*time.Second)
	f.StartRefresher(tick)
	defer f.StopRefresher()
	fcAddr, stopFc := startServer(f)
	defer stopFc()

	if max := nConns * cfg.Series; nSubs > max {
		nSubs = max // one subscription per (connection, series) pair
	}
	// stamps[i] is the wall time of the latest store on series i; a push
	// arriving before any timed store (the initial catch-up) is not counted.
	stamps := make([]atomic.Int64, cfg.Series)
	var pushed atomic.Int64
	var latMu sync.Mutex
	var lats []float64

	conns := make([]*nwsnet.MuxConn, nConns)
	for i := range conns {
		mux, err := nwsnet.DialMux(fcAddr, 10*time.Second)
		if err != nil {
			panic("nwsload: dial mux: " + err.Error())
		}
		defer mux.Close()
		conns[i] = mux
	}
	calls := make([]*nwsnet.MuxCall, 0, nSubs)
	for i := 0; i < nSubs; i++ {
		idx := (i / nConns) % cfg.Series
		calls = append(calls, conns[i%nConns].Subscribe(keys[idx], func(resp nwsnet.Response, err error) {
			if err != nil || resp.Forecast == nil {
				return
			}
			t0 := stamps[idx].Load()
			if t0 == 0 {
				return
			}
			lat := float64(time.Now().UnixNano()-t0) / 1e3
			pushed.Add(1)
			latMu.Lock()
			lats = append(lats, lat)
			latMu.Unlock()
		}))
	}
	for _, c := range calls {
		if _, err := c.Wait(); err != nil {
			panic("nwsload: subscribe: " + err.Error())
		}
	}

	// Query workers: cache reads riding on the same serving plane.
	queryStop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < 4; q++ {
		q := q
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			mux, err := nwsnet.DialMux(fcAddr, 10*time.Second)
			if err != nil {
				panic("nwsload: dial query mux: " + err.Error())
			}
			defer mux.Close()
			for i := q; ; i += 4 {
				select {
				case <-queryStop:
					return
				default:
				}
				if _, err := mux.Do(nwsnet.Request{Op: nwsnet.OpForecast, Series: keys[i%cfg.Series]}); err != nil {
					panic("nwsload: query forecast: " + err.Error())
				}
			}
		}()
	}

	// Store driver: one rotating batch of series changes per tick.
	batch := cfg.Series / 16
	if batch < 1 {
		batch = 1
	}
	start := time.Now()
	deadline := start.Add(time.Duration(cfg.Duration * float64(time.Second)))
	for round := 0; time.Now().Before(deadline); round++ {
		for b := 0; b < batch; b++ {
			idx := (round*batch + b) % cfg.Series
			stamps[idx].Store(time.Now().UnixNano())
			if resp := mem.Handle(nwsnet.Request{Op: nwsnet.OpStore, Series: keys[idx],
				Points: [][2]float64{{next[idx], 0.5}}}); resp.Error != "" {
				panic("nwsload: subscribe store: " + resp.Error)
			}
			next[idx]++
		}
		time.Sleep(tick)
	}
	// Let the final tick's pushes land before reading the counters.
	time.Sleep(2 * tick)
	elapsed := time.Since(start).Seconds()
	close(queryStop)
	qwg.Wait()

	hits, misses, _ := f.CacheStats()
	var m Measurement
	m.Ops = pushed.Load()
	m.OpsPerSec = float64(m.Ops) / elapsed
	m.Subscribers = nSubs
	if hits+misses > 0 {
		m.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	latMu.Lock()
	quantilesOf(&m, lats)
	latMu.Unlock()
	return m
}

// tenantScenario measures per-tenant quota isolation on the serving plane:
// paced "good" tenants (each its own quota bucket, issuing far under
// TenantRate) are measured alone for a baseline, then again while hog
// workers sharing one over-quota tenant hammer the same server, retrying
// each shed after a short breath. The hog must be shed with retryable busy
// errors, and the good tenants' store p99 must stay within 2x of baseline —
// quota pressure lands on the tenant that caused it.
func tenantScenario(cfg config) (baseline, contended Measurement) {
	// The read-plane scenario runs just before this one in the same process
	// and retires a large heap (10k+ subscriptions); flush it so its GC debt
	// isn't collected inside the baseline's latency window.
	runtime.GC()
	const (
		tenantRate  = 1000 // sustained req/s per tenant bucket
		tenantBurst = 100
		goodWorkers = 4
		hogWorkers  = 4
	)
	goodPace := 2 * time.Millisecond // 500 req/s per good tenant, half its quota
	mem := nwsnet.NewMemory(cfg.Capacity)
	srv := nwsnet.NewServerLimits(mem, nil, nwsnet.ServerLimits{
		TenantRate: tenantRate, TenantBurst: tenantBurst,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic("nwsload: listen: " + err.Error())
	}
	defer srv.Close()

	half := time.Duration(cfg.Duration * float64(time.Second) / 2)
	// The first few ops pay for the dial, the hello exchange, and warming
	// the server's stripe for the key; discard them so the p99 compares
	// steady-state phases instead of cold-start artifacts that dwarf the
	// quota's effect. Capped to a quarter of the window so a -smoke run
	// still records samples.
	warmupOps := 25
	if n := int(half/goodPace) / 4; n < warmupOps {
		warmupOps = n
	}
	runGood := func(deadline time.Time) (Measurement, []float64) {
		var wg sync.WaitGroup
		latCh := make([][]float64, goodWorkers)
		ops := make([]int64, goodWorkers)
		for g := 0; g < goodWorkers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := nwsnet.NewClientOptions(nwsnet.ClientOptions{
					Timeout: 10 * time.Second, MaxIdlePerAddr: 1,
					Codec: nwsnet.CodecBinary, Tenant: fmt.Sprintf("good-%d", g),
				})
				defer c.Close()
				key := fmt.Sprintf("tenant/good%d/cpu", g)
				for t := 1.0; time.Now().Before(deadline); t++ {
					t0 := time.Now()
					if err := c.Store(addr, key, [][2]float64{{t, 0.5}}); err != nil {
						panic("nwsload: good tenant store: " + err.Error())
					}
					if t > float64(warmupOps) {
						latCh[g] = append(latCh[g], float64(time.Since(t0).Nanoseconds())/1e3)
						ops[g]++
					}
					if d := goodPace - time.Since(t0); d > 0 {
						time.Sleep(d)
					}
				}
			}()
		}
		wg.Wait()
		var m Measurement
		var lats []float64
		for g := range latCh {
			m.Ops += ops[g]
			lats = append(lats, latCh[g]...)
		}
		m.OpsPerSec = float64(m.Ops) / half.Seconds()
		quantilesOf(&m, lats)
		return m, lats
	}

	// A single p99 over one ~1s window is at the mercy of whatever GC cycle
	// or scheduler burst lands inside it, so each phase runs three trials —
	// fresh connections, fresh warmup — and computes its quantiles over the
	// pooled samples, trading a longer run for a tail estimate stable enough
	// to compare across phases on small, shared machines.
	const trials = 3
	runPhase := func() Measurement {
		var m Measurement
		var all []float64
		for i := 0; i < trials; i++ {
			t, lats := runGood(time.Now().Add(half))
			m.Ops += t.Ops
			all = append(all, lats...)
		}
		m.OpsPerSec = float64(m.Ops) / (time.Duration(trials) * half).Seconds()
		quantilesOf(&m, all)
		return m
	}

	baseline = runPhase()

	// Contended phase: the hog shares one tenant bucket across its workers
	// and offers far more than its rate, so nearly everything past the
	// bucket rate is shed busy. Hog ops count only successes; sheds are
	// tallied separately.
	var hogOps, hogShed atomic.Int64
	// Slack past the last trial's deadline keeps every trial fully contended
	// despite the small gaps between them.
	hogDeadline := time.Now().Add(trials*half + 250*time.Millisecond)
	var hwg sync.WaitGroup
	for h := 0; h < hogWorkers; h++ {
		h := h
		hwg.Add(1)
		go func() {
			defer hwg.Done()
			c := nwsnet.NewClientOptions(nwsnet.ClientOptions{
				Timeout: 10 * time.Second, MaxIdlePerAddr: 1,
				Codec: nwsnet.CodecBinary, Tenant: "hog",
				// No retries: each quota shed surfaces immediately, so the
				// scenario counts sheds instead of retry backoff sleeps.
				Retry: resilience.Policy{MaxAttempts: 1},
			})
			defer c.Close()
			key := fmt.Sprintf("tenant/hog%d/cpu", h)
			for t := 1.0; time.Now().Before(hogDeadline); t++ {
				err := c.Store(addr, key, [][2]float64{{t, 0.5}})
				switch {
				case err == nil:
					hogOps.Add(1)
				case nwsnet.IsBusy(err):
					hogShed.Add(1)
					// An aggressive-but-sane client: retry hot after a short
					// breath rather than spinning through the shed path. On
					// small machines an unpaced busy-loop turns the benchmark
					// into a CPU-scheduling contest that drowns the good
					// tenants' p99 in noise the quota can't control.
					time.Sleep(5 * time.Millisecond)
				default:
					panic("nwsload: hog tenant store: " + err.Error())
				}
			}
		}()
	}
	contended = runPhase()
	hwg.Wait()
	contended.Throttled = hogShed.Load()
	return baseline, contended
}

// runAll executes every scenario the config selects and assembles the
// report. -codec restricts the wire rows to one codec; -wire-only skips the
// handler-level rows (and the JSON-codec seed-memory context rows with
// them). Acceptance ratios are computed only when both of their rows ran.
func runAll(cfg config) Report {
	rep := Report{
		Schema:         "nws/bench-memory/v2",
		Package:        "nwscpu/internal/nwsnet",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		BaselineCommit: "86fd0a6",
		BaselineSource: "embedded seed single-mutex memory (lock-corrected), measured fresh each run",
		Config:         cfg,
	}
	add := func(name string, m Measurement) Measurement {
		rep.Results = append(rep.Results, Result{Name: name, Current: m})
		return m
	}
	doJSON := (cfg.Codec == "json" || cfg.Codec == "both") && !cfg.SubOnly
	doBin := (cfg.Codec == "binary" || cfg.Codec == "both") && !cfg.SubOnly

	if !cfg.WireOnly && !cfg.SubOnly {
		seed := add("serve_store/seed", serveScenario(cfg, newSeedMemory(cfg.Capacity)))
		sharded := add("serve_store/sharded", serveScenario(cfg, nwsnet.NewMemory(cfg.Capacity)))
		rep.Acceptance.StoreOpsPerSecSeed = seed.OpsPerSec
		rep.Acceptance.StoreOpsPerSecSharded = sharded.OpsPerSec
		if seed.OpsPerSec > 0 {
			rep.Acceptance.StoreSpeedup = sharded.OpsPerSec / seed.OpsPerSec
		}
		rep.Acceptance.Meets5xStoreThroughput = rep.Acceptance.StoreSpeedup >= 5
		if doJSON {
			// Seed-memory wire context rows, v1 codec as they always were.
			add("wire_store/seed", wireStoreScenario(cfg, newSeedMemory(cfg.Capacity), nwsnet.CodecJSON))
			add("wire_fetch/seed", wireFetchScenario(cfg, newSeedMemory(cfg.Capacity), nwsnet.CodecJSON))
		}
	}

	var jsonStore, binPipeStore Measurement
	if doJSON {
		jsonStore = add("wire_store/json", wireStoreScenario(cfg, nwsnet.NewMemory(cfg.Capacity), nwsnet.CodecJSON))
		add("wire_store_batch/json", wireStoreBatchScenario(cfg, nwsnet.NewMemory(cfg.Capacity), nwsnet.CodecJSON))
		add("wire_fetch/json", wireFetchScenario(cfg, nwsnet.NewMemory(cfg.Capacity), nwsnet.CodecJSON))
	}
	if doBin {
		add("wire_store/binary", wireStoreScenario(cfg, nwsnet.NewMemory(cfg.Capacity), nwsnet.CodecBinary))
		binPipeStore = add("wire_store/binary-pipelined", wireStorePipelinedScenario(cfg, nwsnet.NewMemory(cfg.Capacity)))
		add("wire_store_batch/binary", wireStoreBatchScenario(cfg, nwsnet.NewMemory(cfg.Capacity), nwsnet.CodecBinary))
		add("wire_fetch/binary", wireFetchScenario(cfg, nwsnet.NewMemory(cfg.Capacity), nwsnet.CodecBinary))
		add("wire_fetch/binary-pipelined", wireFetchPipelinedScenario(cfg, nwsnet.NewMemory(cfg.Capacity)))
	}

	rep.Acceptance.WireStoreOpsPerSecJSON = jsonStore.OpsPerSec
	rep.Acceptance.WireStoreOpsPerSecBinary = binPipeStore.OpsPerSec
	if doJSON && doBin && jsonStore.OpsPerSec > 0 {
		rep.Acceptance.WireSpeedup = binPipeStore.OpsPerSec / jsonStore.OpsPerSec
		rep.Acceptance.Meets10xWireStoreThroughput = rep.Acceptance.WireSpeedup >= 10
	}

	// Read-plane rows (binary-only: subscriptions are a v2 construct).
	if cfg.Subscribers > 0 && cfg.Codec != "json" {
		sub := add("subscribe_push/binary", subscribeScenario(cfg, cfg.Subscribers, cfg.Clients, 20*time.Millisecond))
		rep.Acceptance.SubscribePushP99Micros = sub.P99Micros
		rep.Acceptance.ForecastCacheHitRate = sub.CacheHitRate
		rep.Acceptance.Meets90PctCacheHitRate = sub.CacheHitRate >= 0.90
		base, cont := tenantScenario(cfg)
		add("tenant_quota/baseline", base)
		add("tenant_quota/contended", cont)
		rep.Acceptance.TenantGoodP99Baseline = base.P99Micros
		rep.Acceptance.TenantGoodP99Contended = cont.P99Micros
		if base.P99Micros > 0 {
			rep.Acceptance.TenantP99Ratio = cont.P99Micros / base.P99Micros
		}
		rep.Acceptance.TenantThrottledOps = cont.Throttled
		rep.Acceptance.MeetsTenantIsolation = cont.Throttled > 0 && rep.Acceptance.TenantP99Ratio <= 2
	}
	return rep
}

func writeReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

func main() {
	clients := flag.Int("clients", 64, "concurrent client workers")
	nSeries := flag.Int("series", 256, "distinct series, split across clients")
	capacity := flag.Int("capacity", 10000, "per-series point bound (stores run at steady-state eviction)")
	duration := flag.Duration("duration", 2*time.Second, "closed-loop time per scenario")
	out := flag.String("out", "BENCH_memory.json", "report output path")
	smoke := flag.Bool("smoke", false, "tiny CI run: shrinks clients/series/capacity/duration")
	codec := flag.String("codec", "both", "wire codec(s) to measure: json, binary, or both")
	pipeline := flag.Int("pipeline", 64, "in-flight requests per worker in */binary-pipelined scenarios")
	skew := flag.Float64("skew", 0, "Zipf parameter s (> 1) for skewed key selection (0 = uniform rotation)")
	wireOnly := flag.Bool("wire-only", false, "skip the handler-level serve_store and seed-memory scenarios")
	subscribers := flag.Int("subscribers", 10000, "concurrent subscriptions in the subscribe_push scenario (0 skips the read-plane rows)")
	subOnly := flag.Bool("subscribe-only", false, "run only the read-plane rows: subscribe_push and tenant_quota (make bench-subscribe-smoke)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nwsload: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nwsload: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	switch *codec {
	case "json", "binary", "both":
	default:
		fmt.Fprintf(os.Stderr, "nwsload: -codec %q (want json, binary, or both)\n", *codec)
		os.Exit(2)
	}
	if *skew != 0 && *skew <= 1 {
		fmt.Fprintln(os.Stderr, "nwsload: -skew must be > 1 (or 0 for uniform)")
		os.Exit(2)
	}
	cfg := config{Clients: *clients, Series: *nSeries, Capacity: *capacity,
		Duration: duration.Seconds(), Codec: *codec, Pipeline: *pipeline, Skew: *skew,
		WireOnly: *wireOnly, Subscribers: *subscribers, SubOnly: *subOnly}
	if *smoke {
		cfg = config{Clients: 8, Series: 32, Capacity: 256, Duration: 0.1,
			Codec: *codec, Pipeline: min(*pipeline, 8), Skew: *skew,
			WireOnly: *wireOnly, Subscribers: min(*subscribers, 256), SubOnly: *subOnly}
	}
	if cfg.Series < cfg.Clients {
		fmt.Fprintln(os.Stderr, "nwsload: -series must be >= -clients")
		os.Exit(2)
	}
	if cfg.Pipeline < 1 {
		fmt.Fprintln(os.Stderr, "nwsload: -pipeline must be >= 1")
		os.Exit(2)
	}

	rep := runAll(cfg)
	if err := writeReport(*out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "nwsload: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		line := fmt.Sprintf("%-26s %12.0f ops/s  p50 %7.1fus  p99 %7.1fus",
			r.Name, r.Current.OpsPerSec, r.Current.P50Micros, r.Current.P99Micros)
		if r.Current.PointsPerSec > 0 && r.Current.PointsPerSec != r.Current.OpsPerSec {
			line += fmt.Sprintf("  (%.0f points/s)", r.Current.PointsPerSec)
		}
		fmt.Println(line)
	}
	if !cfg.WireOnly && !cfg.SubOnly {
		fmt.Printf("store serving path: %.0f -> %.0f ops/s (%.1fx, 5x met: %v)\n",
			rep.Acceptance.StoreOpsPerSecSeed, rep.Acceptance.StoreOpsPerSecSharded,
			rep.Acceptance.StoreSpeedup, rep.Acceptance.Meets5xStoreThroughput)
	}
	if cfg.Codec == "both" && !cfg.SubOnly {
		fmt.Printf("wire store path: json %.0f -> binary-pipelined %.0f ops/s (%.1fx, 10x met: %v)\n",
			rep.Acceptance.WireStoreOpsPerSecJSON, rep.Acceptance.WireStoreOpsPerSecBinary,
			rep.Acceptance.WireSpeedup, rep.Acceptance.Meets10xWireStoreThroughput)
	}
	if cfg.Subscribers > 0 && cfg.Codec != "json" {
		fmt.Printf("read plane: %d subscribers, push p99 %.0fus, cache hit rate %.1f%% (90%% met: %v)\n",
			cfg.Subscribers, rep.Acceptance.SubscribePushP99Micros,
			rep.Acceptance.ForecastCacheHitRate*100, rep.Acceptance.Meets90PctCacheHitRate)
		fmt.Printf("tenant quota: good p99 %.0f -> %.0fus (%.1fx, 2x met: %v), hog shed %d ops\n",
			rep.Acceptance.TenantGoodP99Baseline, rep.Acceptance.TenantGoodP99Contended,
			rep.Acceptance.TenantP99Ratio, rep.Acceptance.MeetsTenantIsolation,
			rep.Acceptance.TenantThrottledOps)
	}
	fmt.Printf("wrote %s\n", *out)
}
