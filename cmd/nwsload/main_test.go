package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nwscpu/internal/nwsnet"
)

// tiny is a sub-second workload for exercising the generator's plumbing.
var tiny = config{Clients: 2, Series: 4, Capacity: 64, Duration: 0.02,
	Codec: "both", Pipeline: 4}

func TestSeedMemoryMatchesShardedResults(t *testing.T) {
	// The embedded baseline must be semantically interchangeable with the
	// real memory on the generator's workload, or the comparison is
	// measuring different work.
	seed, sharded := newSeedMemory(16), nwsnet.NewMemory(16)
	for _, h := range []nwsnet.Handler{seed, sharded} {
		for i := 1; i <= 40; i++ {
			if resp := h.Handle(nwsnet.Request{Op: nwsnet.OpStore, Series: "k",
				Points: [][2]float64{{float64(i), float64(i)}}}); resp.Error != "" {
				t.Fatal(resp.Error)
			}
		}
	}
	a := seed.Handle(nwsnet.Request{Op: nwsnet.OpFetch, Series: "k", Max: 10})
	b := sharded.Handle(nwsnet.Request{Op: nwsnet.OpFetch, Series: "k", Max: 10})
	if a.Error != "" || b.Error != "" {
		t.Fatalf("fetch errors: %q / %q", a.Error, b.Error)
	}
	if len(a.Points) != 10 || len(b.Points) != 10 {
		t.Fatalf("lens = %d / %d, want 10", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d: seed %v vs sharded %v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestWorkersPartitionSeriesDisjointly(t *testing.T) {
	ws := makeWorkers(config{Clients: 4, Series: 10, Capacity: 8}, 8)
	seen := map[string]bool{}
	total := 0
	for _, w := range ws {
		if len(w.keys) != len(w.next) {
			t.Fatalf("keys/next mismatch: %d vs %d", len(w.keys), len(w.next))
		}
		for i, k := range w.keys {
			if seen[k] {
				t.Fatalf("series %q owned by two workers", k)
			}
			seen[k] = true
			if w.next[i] != 9 {
				t.Fatalf("next timestamp = %v, want prefill+1 = 9", w.next[i])
			}
		}
		total += len(w.keys)
	}
	if total != 10 {
		t.Fatalf("workers own %d series, want 10", total)
	}
}

func TestRunAllProducesEveryScenarioAndAcceptance(t *testing.T) {
	rep := runAll(tiny)
	want := []string{
		"serve_store/seed", "serve_store/sharded",
		"wire_store/seed", "wire_fetch/seed",
		"wire_store/json", "wire_store_batch/json", "wire_fetch/json",
		"wire_store/binary", "wire_store/binary-pipelined",
		"wire_store_batch/binary",
		"wire_fetch/binary", "wire_fetch/binary-pipelined",
	}
	if len(rep.Results) != len(want) {
		t.Fatalf("report has %d scenarios, want %d", len(rep.Results), len(want))
	}
	for i, name := range want {
		r := rep.Results[i]
		if r.Name != name {
			t.Fatalf("scenario %d = %q, want %q", i, r.Name, name)
		}
		if r.Current.Ops <= 0 || r.Current.OpsPerSec <= 0 {
			t.Fatalf("scenario %q measured nothing: %+v", name, r.Current)
		}
	}
	acc := rep.Acceptance
	if acc.StoreOpsPerSecSeed <= 0 || acc.StoreOpsPerSecSharded <= 0 {
		t.Fatalf("acceptance missing serve throughputs: %+v", acc)
	}
	if got := acc.StoreOpsPerSecSharded / acc.StoreOpsPerSecSeed; acc.StoreSpeedup != got {
		t.Fatalf("speedup = %v, want ratio %v", acc.StoreSpeedup, got)
	}
	if acc.Meets5xStoreThroughput != (acc.StoreSpeedup >= 5) {
		t.Fatalf("acceptance flag inconsistent with speedup %v", acc.StoreSpeedup)
	}
	if acc.WireStoreOpsPerSecJSON <= 0 || acc.WireStoreOpsPerSecBinary <= 0 {
		t.Fatalf("acceptance missing wire throughputs: %+v", acc)
	}
	if got := acc.WireStoreOpsPerSecBinary / acc.WireStoreOpsPerSecJSON; acc.WireSpeedup != got {
		t.Fatalf("wire speedup = %v, want ratio %v", acc.WireSpeedup, got)
	}
	if acc.Meets10xWireStoreThroughput != (acc.WireSpeedup >= 10) {
		t.Fatalf("wire acceptance flag inconsistent with speedup %v", acc.WireSpeedup)
	}
}

// TestRunAllCodecAndWireOnlyFilters checks -codec json and -wire-only prune
// the scenario matrix the way the flags document.
func TestRunAllCodecAndWireOnlyFilters(t *testing.T) {
	cfg := tiny
	cfg.Codec = "json"
	rep := runAll(cfg)
	for _, r := range rep.Results {
		if strings.Contains(r.Name, "binary") {
			t.Errorf("-codec json still ran %q", r.Name)
		}
	}
	if rep.Acceptance.WireSpeedup != 0 || rep.Acceptance.Meets10xWireStoreThroughput {
		t.Errorf("-codec json computed a wire speedup: %+v", rep.Acceptance)
	}

	cfg = tiny
	cfg.WireOnly = true
	rep = runAll(cfg)
	for _, r := range rep.Results {
		if strings.HasPrefix(r.Name, "serve_store/") || strings.HasSuffix(r.Name, "/seed") {
			t.Errorf("-wire-only still ran %q", r.Name)
		}
	}
	if rep.Acceptance.StoreSpeedup != 0 || rep.Acceptance.Meets5xStoreThroughput {
		t.Errorf("-wire-only computed a serve speedup: %+v", rep.Acceptance)
	}
	if rep.Acceptance.WireSpeedup <= 0 {
		t.Errorf("-wire-only lost the wire acceptance: %+v", rep.Acceptance)
	}
}

func TestWriteReportRoundTrips(t *testing.T) {
	rep := runAll(tiny)
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeReport(path, rep); err != nil {
		t.Fatalf("writeReport: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Schema != "nws/bench-memory/v2" || back.BaselineCommit == "" {
		t.Fatalf("round-tripped header = %q / %q", back.Schema, back.BaselineCommit)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round-tripped %d results, want %d", len(back.Results), len(rep.Results))
	}
}

func TestSkewDrawsAndShardSplit(t *testing.T) {
	// Uniform config: the rotation body spreads ops evenly, no Zipf source.
	// Workers run sequentially here (not through collect) so every one is
	// guaranteed CPU time before its deadline regardless of machine load.
	deadline := func() time.Time { return time.Now().Add(20 * time.Millisecond) }
	uni := makeWorkers(config{Clients: 2, Series: 8, Capacity: 8}, 8)
	for _, w := range uni {
		if w.zipf != nil {
			t.Fatal("uniform config built a Zipf source")
		}
		w.run(deadline(), func(rot int) {})
		if w.ops == 0 {
			t.Fatal("uniform worker recorded no ops")
		}
		min, max := w.keyOps[0], w.keyOps[0]
		for _, n := range w.keyOps {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("uniform rotation uneven: keyOps %v", w.keyOps)
		}
	}

	// -skew: each worker draws its series from a seeded Zipf, so runs are
	// reproducible and mass concentrates on each worker's head key.
	skewed := makeWorkers(config{Clients: 2, Series: 8, Capacity: 8, Skew: 1.5}, 8)
	for i, w := range skewed {
		if w.zipf == nil {
			t.Fatal("skewed config left the Zipf source nil")
		}
		w.run(deadline(), func(rot int) {})
		if w.ops == 0 {
			t.Fatal("skewed worker recorded no ops")
		}
		head, rest := w.keyOps[0], int64(0)
		for _, n := range w.keyOps[1:] {
			rest += n
		}
		if head <= rest {
			t.Fatalf("worker %d: head key holds %d of %d ops — not skewed", i, head, head+rest)
		}
	}

	// The measurement's shard split folds per-key counts onto the bench
	// ring and must account for every op, under both key distributions.
	for _, ws := range [][]*worker{uni, skewed} {
		m := collect(config{Duration: 0.01}, ws, 1, func(w *worker, rot int) {})
		var split int64
		for shard, n := range m.ShardOps {
			if !strings.HasPrefix(shard, "shard-") {
				t.Fatalf("shard split key %q not from the bench ring", shard)
			}
			split += n
		}
		if split != m.Ops {
			t.Fatalf("shard split sums to %d, want total ops %d", split, m.Ops)
		}
		if len(m.ShardOps) < 2 {
			t.Fatalf("8 series landed on %d shards: %v", len(m.ShardOps), m.ShardOps)
		}
	}
}
