package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"nwscpu/internal/nwsnet"
)

// tiny is a sub-second workload for exercising the generator's plumbing.
var tiny = config{Clients: 2, Series: 4, Capacity: 64, Duration: 0.02}

func TestSeedMemoryMatchesShardedResults(t *testing.T) {
	// The embedded baseline must be semantically interchangeable with the
	// real memory on the generator's workload, or the comparison is
	// measuring different work.
	seed, sharded := newSeedMemory(16), nwsnet.NewMemory(16)
	for _, h := range []nwsnet.Handler{seed, sharded} {
		for i := 1; i <= 40; i++ {
			if resp := h.Handle(nwsnet.Request{Op: nwsnet.OpStore, Series: "k",
				Points: [][2]float64{{float64(i), float64(i)}}}); resp.Error != "" {
				t.Fatal(resp.Error)
			}
		}
	}
	a := seed.Handle(nwsnet.Request{Op: nwsnet.OpFetch, Series: "k", Max: 10})
	b := sharded.Handle(nwsnet.Request{Op: nwsnet.OpFetch, Series: "k", Max: 10})
	if a.Error != "" || b.Error != "" {
		t.Fatalf("fetch errors: %q / %q", a.Error, b.Error)
	}
	if len(a.Points) != 10 || len(b.Points) != 10 {
		t.Fatalf("lens = %d / %d, want 10", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d: seed %v vs sharded %v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestWorkersPartitionSeriesDisjointly(t *testing.T) {
	ws := makeWorkers(config{Clients: 4, Series: 10, Capacity: 8}, 8)
	seen := map[string]bool{}
	total := 0
	for _, w := range ws {
		if len(w.keys) != len(w.next) {
			t.Fatalf("keys/next mismatch: %d vs %d", len(w.keys), len(w.next))
		}
		for i, k := range w.keys {
			if seen[k] {
				t.Fatalf("series %q owned by two workers", k)
			}
			seen[k] = true
			if w.next[i] != 9 {
				t.Fatalf("next timestamp = %v, want prefill+1 = 9", w.next[i])
			}
		}
		total += len(w.keys)
	}
	if total != 10 {
		t.Fatalf("workers own %d series, want 10", total)
	}
}

func TestRunAllProducesEveryScenarioAndAcceptance(t *testing.T) {
	rep := runAll(tiny)
	want := []string{
		"serve_store/seed", "serve_store/sharded",
		"wire_store/seed", "wire_store/sharded",
		"wire_store_batch/sharded",
		"wire_fetch/seed", "wire_fetch/sharded",
	}
	if len(rep.Results) != len(want) {
		t.Fatalf("report has %d scenarios, want %d", len(rep.Results), len(want))
	}
	for i, name := range want {
		r := rep.Results[i]
		if r.Name != name {
			t.Fatalf("scenario %d = %q, want %q", i, r.Name, name)
		}
		if r.Current.Ops <= 0 || r.Current.OpsPerSec <= 0 {
			t.Fatalf("scenario %q measured nothing: %+v", name, r.Current)
		}
	}
	acc := rep.Acceptance
	if acc.StoreOpsPerSecSeed <= 0 || acc.StoreOpsPerSecSharded <= 0 {
		t.Fatalf("acceptance missing throughputs: %+v", acc)
	}
	if got := acc.StoreOpsPerSecSharded / acc.StoreOpsPerSecSeed; acc.StoreSpeedup != got {
		t.Fatalf("speedup = %v, want ratio %v", acc.StoreSpeedup, got)
	}
	if acc.Meets5xStoreThroughput != (acc.StoreSpeedup >= 5) {
		t.Fatalf("acceptance flag inconsistent with speedup %v", acc.StoreSpeedup)
	}
}

func TestWriteReportRoundTrips(t *testing.T) {
	rep := runAll(tiny)
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeReport(path, rep); err != nil {
		t.Fatalf("writeReport: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Schema != "nws/bench-memory/v1" || back.BaselineCommit == "" {
		t.Fatalf("round-tripped header = %q / %q", back.Schema, back.BaselineCommit)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round-tripped %d results, want %d", len(back.Results), len(rep.Results))
	}
}
