package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nwscpu/internal/nwsnet"
)

func startBackends(t *testing.T) (memAddr, fcAddr string) {
	t.Helper()
	mem := nwsnet.NewMemory(0)
	memSrv := nwsnet.NewServer(mem, nil)
	memAddr, err := memSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { memSrv.Close() })

	fcSrv := nwsnet.NewServer(nwsnet.NewForecasterService(memAddr, time.Second), nil)
	fcAddr, err = fcSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fcSrv.Close() })

	c := nwsnet.NewClient(time.Second)
	pts := make([][2]float64, 40)
	for i := range pts {
		pts[i] = [2]float64{float64(i * 10), 0.5 + 0.01*float64(i%5)}
	}
	if err := c.Store(memAddr, "thing1/cpu/nws_hybrid", pts); err != nil {
		t.Fatal(err)
	}
	return memAddr, fcAddr
}

func TestDashboardIndex(t *testing.T) {
	memAddr, fcAddr := startBackends(t)
	d := newDashboard(memAddr, fcAddr, "")
	ts := httptest.NewServer(d)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	out := body.String()
	for _, want := range []string{"thing1/cpu/nws_hybrid", "<svg", "Forecast"} {
		if !strings.Contains(out, want) {
			t.Fatalf("index missing %q:\n%s", want, out)
		}
	}
}

func TestDashboardAPI(t *testing.T) {
	memAddr, fcAddr := startBackends(t)
	d := newDashboard(memAddr, fcAddr, "")
	ts := httptest.NewServer(d)
	defer ts.Close()

	// Series list.
	resp, err := http.Get(ts.URL + "/api/series")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(names) != 1 || names[0] != "thing1/cpu/nws_hybrid" {
		t.Fatalf("names = %v", names)
	}

	// Points with max.
	resp, err = http.Get(ts.URL + "/api/series/thing1/cpu/nws_hybrid?max=5")
	if err != nil {
		t.Fatal(err)
	}
	var pts [][2]float64
	if err := json.NewDecoder(resp.Body).Decode(&pts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}

	// Forecast.
	resp, err = http.Get(ts.URL + "/api/forecast/thing1/cpu/nws_hybrid")
	if err != nil {
		t.Fatal(err)
	}
	var fc nwsnet.ForecastResult
	if err := json.NewDecoder(resp.Body).Decode(&fc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fc.Value < 0.4 || fc.Value > 0.6 {
		t.Fatalf("forecast = %+v", fc)
	}
}

func TestDashboardErrors(t *testing.T) {
	memAddr, _ := startBackends(t)
	d := newDashboard(memAddr, "", "") // no forecaster
	ts := httptest.NewServer(d)
	defer ts.Close()

	cases := []struct {
		path string
		code int
	}{
		{"/api/series/unknown-key", http.StatusNotFound},
		{"/api/series/", http.StatusBadRequest},
		{"/api/series/k?max=zz", http.StatusBadRequest},
		{"/api/forecast/thing1/cpu/nws_hybrid", http.StatusNotImplemented},
		{"/nonsense", http.StatusNotFound},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.path, resp.StatusCode, c.code)
		}
	}
}

func TestDashboardDeadMemory(t *testing.T) {
	d := newDashboard("127.0.0.1:1", "", "")
	ts := httptest.NewServer(d)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/series")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
}

func TestDashboardMetricsEndpoints(t *testing.T) {
	memAddr, fcAddr := startBackends(t)
	d := newDashboard(memAddr, fcAddr, "")
	ts := httptest.NewServer(d)
	defer ts.Close()

	// Generate some traffic so the panel and exposition are non-empty.
	for _, p := range []string{"/", "/api/series"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	body := b.String()
	for _, want := range []string{
		`nwsweb_http_requests_total{route="/"}`,
		`nwsweb_http_requests_total{route="/api/series"}`,
		"nwsweb_http_request_seconds_bucket",
		`nws_client_calls_total{op="series"}`, // outbound backend calls
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var snap []map[string]any
	jr, err := http.Get(ts.URL + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(jr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if len(snap) == 0 {
		t.Error("/api/metrics snapshot is empty")
	}
}

func TestDashboardIndexMetricsPanel(t *testing.T) {
	memAddr, _ := startBackends(t)
	d := newDashboard(memAddr, "", "")
	ts := httptest.NewServer(d)
	defer ts.Close()

	// First request records metrics; second renders them into the panel.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			resp.Body.Close()
			continue
		}
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		out := b.String()
		for _, want := range []string{"Live metrics", "nwsweb_http_requests_total", `href="/metrics"`} {
			if !strings.Contains(out, want) {
				t.Errorf("index missing %q", want)
			}
		}
	}
}

func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/":                       "/",
		"/api/series":             "/api/series",
		"/api/series/a/cpu/x":     "/api/series/{key}",
		"/api/forecast/a/cpu/x":   "/api/forecast/{key}",
		"/metrics":                "/metrics",
		"/api/metrics":            "/api/metrics",
		"/favicon.ico":            "other",
		"/debug/anything/else/at": "other",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestSparklineSinglePoint(t *testing.T) {
	out := string(sparkline([][2]float64{{0, 1}}))
	if !strings.Contains(out, "<svg") {
		t.Fatalf("sparkline = %q", out)
	}
}
