// Command nwsweb serves a live dashboard over a running NWS deployment: it
// pulls series from a memory server and forecasts from a forecaster service
// and renders them as an HTML page with SVG sparkline charts, plus a JSON
// API for programmatic access.
//
//	nwsweb -listen :8080 -memory localhost:8091 [-forecaster localhost:8092]
//
// Endpoints:
//
//	GET /                    HTML dashboard of all series + live metrics panel
//	GET /api/series          JSON list of series keys
//	GET /api/series/{key}    JSON points of one series (?max=N)
//	GET /api/forecast/{key}  JSON forecast for one series
//	GET /metrics             Prometheus text metrics for this process
//	GET /api/metrics         JSON snapshot of the same metrics
//
// The metrics cover the dashboard's own HTTP traffic plus its outbound
// nwsnet client calls; each daemon exposes its own server-side metrics via
// nwsd -metrics (see docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
	memory := flag.String("memory", "", "memory server address (required)")
	forecaster := flag.String("forecaster", "", "forecaster service address (optional)")
	tenant := flag.String("tenant", "", "tenant ID to attribute backend calls to (optional; see nwsd -tenant-rate)")
	flag.Parse()

	logger := log.New(os.Stderr, "nwsweb: ", log.LstdFlags)
	if *memory == "" {
		logger.Fatal("-memory is required")
	}
	srv := newDashboard(*memory, *forecaster, *tenant)
	logger.Printf("dashboard on http://%s/ (memory %s)", *listen, *memory)
	logger.Fatal(http.ListenAndServe(*listen, srv))
}
