package main

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nwscpu/internal/metrics"
	"nwscpu/internal/nwsnet"
)

// The dashboard's own instrumentation, alongside the nwsnet client metrics
// its backend calls record. Routes are labeled by pattern, not raw path, to
// keep the label cardinality bounded.
var (
	webRequests = metrics.NewCounterVec(
		"nwsweb_http_requests_total",
		"Dashboard HTTP requests, by route pattern.", "route")
	webLatency = metrics.NewHistogramVec(
		"nwsweb_http_request_seconds",
		"Dashboard HTTP request latency in seconds (backend calls included), by route pattern.",
		nil, "route")
)

// dashboard is the HTTP handler pulling from the NWS backends per request.
type dashboard struct {
	memory     string
	forecaster string
	client     *nwsnet.Client
	mux        *http.ServeMux
}

// newDashboard builds the handler. tenant, when non-empty, attributes every
// outbound backend call to that tenant's quota bucket (nwsd -tenant-rate),
// so a dashboard's read traffic is throttled like any other tenant's
// instead of riding anonymously.
func newDashboard(memory, forecaster, tenant string) *dashboard {
	d := &dashboard{
		memory:     memory,
		forecaster: forecaster,
		client: nwsnet.NewClientOptions(nwsnet.ClientOptions{
			Timeout: 5 * time.Second,
			Tenant:  tenant,
		}),
		mux: http.NewServeMux(),
	}
	d.mux.HandleFunc("/", d.handleIndex)
	d.mux.HandleFunc("/api/series", d.handleSeriesList)
	d.mux.HandleFunc("/api/series/", d.handleSeriesGet)
	d.mux.HandleFunc("/api/forecast/", d.handleForecast)
	d.mux.Handle("/metrics", metrics.Handler(metrics.Default))
	d.mux.Handle("/api/metrics", metrics.JSONHandler(metrics.Default))
	return d
}

// ServeHTTP implements http.Handler, recording per-route request counts and
// latency around the mux dispatch.
func (d *dashboard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	route := routeLabel(r.URL.Path)
	d.mux.ServeHTTP(w, r)
	webRequests.With(route).Inc()
	webLatency.With(route).ObserveSince(t0)
}

// routeLabel collapses request paths onto their route patterns.
func routeLabel(path string) string {
	switch {
	case path == "/":
		return "/"
	case path == "/api/series":
		return "/api/series"
	case strings.HasPrefix(path, "/api/series/"):
		return "/api/series/{key}"
	case strings.HasPrefix(path, "/api/forecast/"):
		return "/api/forecast/{key}"
	case path == "/api/metrics":
		return "/api/metrics"
	case path == "/metrics":
		return "/metrics"
	}
	return "other"
}

func (d *dashboard) handleSeriesList(w http.ResponseWriter, r *http.Request) {
	names, err := d.client.Series(d.memory)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, names)
}

func (d *dashboard) handleSeriesGet(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/api/series/")
	if key == "" {
		http.Error(w, "missing series key", http.StatusBadRequest)
		return
	}
	max := 0
	if ms := r.URL.Query().Get("max"); ms != "" {
		var err error
		if max, err = strconv.Atoi(ms); err != nil || max < 0 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
	}
	pts, err := d.client.Fetch(d.memory, key, 0, 0, max)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, pts)
}

func (d *dashboard) handleForecast(w http.ResponseWriter, r *http.Request) {
	if d.forecaster == "" {
		http.Error(w, "no forecaster configured", http.StatusNotImplemented)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/api/forecast/")
	if key == "" {
		http.Error(w, "missing series key", http.StatusBadRequest)
		return
	}
	fc, err := d.client.Forecast(d.forecaster, key)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, fc)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		return
	}
}

// indexSeries is one dashboard row.
type indexSeries struct {
	Key      string
	Last     string
	N        int
	Spark    template.HTML
	Forecast string
}

// metricRow is one line of the live metrics panel.
type metricRow struct {
	Name   string
	Labels string
	Value  string
}

// indexData feeds the index template.
type indexData struct {
	Rows    []indexSeries
	Metrics []metricRow
}

func (d *dashboard) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	names, err := d.client.Series(d.memory)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	var rows []indexSeries
	for _, key := range names {
		pts, err := d.client.Fetch(d.memory, key, 0, 0, 120)
		if err != nil || len(pts) == 0 {
			continue
		}
		row := indexSeries{
			Key:   key,
			Last:  fmt.Sprintf("%.4g", pts[len(pts)-1][1]),
			N:     len(pts),
			Spark: sparkline(pts),
		}
		if d.forecaster != "" {
			if fc, err := d.client.Forecast(d.forecaster, key); err == nil {
				row.Forecast = fmt.Sprintf("%.4g (%s)", fc.Value, fc.Method)
			}
		}
		rows = append(rows, row)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTemplate.Execute(w, indexData{Rows: rows, Metrics: metricRows()}); err != nil {
		return
	}
}

// metricRows flattens the process's registry snapshot for the live panel:
// counters and gauges show their value, histograms their count and mean.
func metricRows() []metricRow {
	var out []metricRow
	for _, fam := range metrics.Default.Snapshot() {
		for _, m := range fam.Metrics {
			row := metricRow{Name: fam.Name}
			if len(m.LabelValues) > 0 {
				pairs := make([]string, len(m.LabelValues))
				for i, v := range m.LabelValues {
					pairs[i] = fam.Labels[i] + "=" + v
				}
				row.Labels = strings.Join(pairs, ", ")
			}
			if fam.Type == "histogram" {
				mean := 0.0
				if m.Count > 0 {
					mean = m.Sum / float64(m.Count)
				}
				row.Value = fmt.Sprintf("n=%d mean=%.3gs", m.Count, mean)
			} else {
				row.Value = strconv.FormatFloat(m.Value, 'g', 6, 64)
			}
			out = append(out, row)
		}
	}
	return out
}

// sparkline renders up to 120 recent points as a tiny inline SVG.
func sparkline(pts [][2]float64) template.HTML {
	const w, h = 240, 36
	lo, hi := pts[0][1], pts[0][1]
	for _, p := range pts {
		if p[1] < lo {
			lo = p[1]
		}
		if p[1] > hi {
			hi = p[1]
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d"><polyline fill="none" stroke="#1f77b4" stroke-width="1" points="`, w, h, w, h)
	for i, p := range pts {
		x := float64(i) / float64(len(pts)-1+min(1, len(pts)-1)) * (w - 2)
		if len(pts) == 1 {
			x = w / 2
		}
		y := (1-(p[1]-lo)/(hi-lo))*(h-4) + 2
		fmt.Fprintf(&b, "%.1f,%.1f ", x+1, y)
	}
	b.WriteString(`"/></svg>`)
	return template.HTML(b.String())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>NWS dashboard</title>
<meta http-equiv="refresh" content="10">
<style>
 body { font-family: sans-serif; max-width: 860px; margin: 2em auto; }
 table { border-collapse: collapse; width: 100%; }
 th, td { border-bottom: 1px solid #ddd; padding: 6px 10px; text-align: left; }
</style></head>
<body>
<h1>Network Weather Service</h1>
<table>
<tr><th>Series</th><th>Recent</th><th>Last</th><th>Forecast</th></tr>
{{range .Rows}}<tr><td><code>{{.Key}}</code> <small>({{.N}} pts)</small></td><td>{{.Spark}}</td><td>{{.Last}}</td><td>{{.Forecast}}</td></tr>
{{else}}<tr><td colspan="4">no series yet</td></tr>
{{end}}
</table>
<details open>
<summary><h2 style="display:inline">Live metrics</h2>
 <small>(this process; <a href="/metrics">Prometheus</a> · <a href="/api/metrics">JSON</a>)</small></summary>
<table>
<tr><th>Metric</th><th>Labels</th><th>Value</th></tr>
{{range .Metrics}}<tr><td><code>{{.Name}}</code></td><td><small>{{.Labels}}</small></td><td>{{.Value}}</td></tr>
{{else}}<tr><td colspan="3">no metrics yet</td></tr>
{{end}}
</table>
</details>
</body></html>
`))
