// Command nwsd runs one component of the distributed NWS:
//
//	nwsd -role nameserver -listen :8090
//	nwsd -role memory     -listen :8091 [-statedir /var/lib/nws] [-replicas 3]
//	nwsd -role forecaster -listen :8092 -memory localhost:8091
//	nwsd -role reflector  -listen :8093
//	nwsd -role sensor     -host mybox -memory localhost:8091 \
//	     -nameserver localhost:8090 -period 10s [-sim <profile>] \
//	     [-reflector otherbox:8093]
//
// The memory role can run a replica group: -replicas N starts N memory
// servers on consecutive ports (the -listen port and the N-1 after it) and,
// when -nameserver is given, registers the whole set under one logical name
// so clients can resolve every endpoint at once. Forecaster and sensor roles
// accept a comma-separated -memory list and treat it as a replica group:
// writes fan out and must reach a majority, reads fail over in health order
// — see the Resilience section of docs/ARCHITECTURE.md:
//
//	nwsd -role memory -listen :8091 -replicas 3 -nameserver localhost:8090
//	nwsd -role sensor -host mybox -memory localhost:8091,localhost:8092,localhost:8093
//
// Every role accepts -metrics addr to expose the daemon's observability
// surface over HTTP: Prometheus text metrics on /metrics, a JSON snapshot
// on /metrics.json, expvar on /debug/vars, and net/http/pprof profiling on
// /debug/pprof/ — see docs/OBSERVABILITY.md for the metric reference and a
// worked profiling example:
//
//	nwsd -role memory -listen :8091 -metrics :9100
//
// Client-side roles (forecaster, sensor) accept -codec {binary,json} to pick
// the wire codec they speak to the memory servers: binary (wire protocol v2,
// the default) pipelines length-prefixed frames, json (v1) is the lockstep
// line protocol kept for pre-v2 servers — see docs/PROTOCOL.md:
//
//	nwsd -role sensor -host mybox -memory oldbox:8091 -codec json
//
// Server roles accept overload-protection flags — -max-conns, -max-inflight,
// -queue-wait, -idle-timeout, -write-timeout — that bound what the daemon
// takes on before shedding excess load with a retryable busy error instead
// of collapsing; see the "Overload behavior" section of docs/ARCHITECTURE.md:
//
//	nwsd -role memory -listen :8091 -max-conns 512 -max-inflight 64
//
// Server roles also take -tenant-rate / -tenant-burst to layer per-tenant
// token-bucket quotas on those limits (clients name their tenant with the
// hello op; an over-quota tenant is answered with the same retryable busy).
// The forecaster role additionally accepts -push-refresh, the cadence at
// which it re-reads watched series and pushes changed forecasts to
// subscribers — see "Subscriptions and server push" in docs/PROTOCOL.md:
//
//	nwsd -role forecaster -listen :8093 -memory localhost:8091 \
//	     -push-refresh 5s -tenant-rate 100 -tenant-burst 200
//
// A partitioned cluster shards the series key space across many memory
// servers (see "The partitioned cluster" in docs/ARCHITECTURE.md). The
// nameserver role is the cluster registry; -replication and -vnodes set the
// ring geometry it publishes. Memory servers join with -cluster <registry>
// (naming themselves with -node; the bound address is the default), take
// epoch-numbered leases, guard their key ranges with ownership redirects,
// and pull reassigned history in via rebalancing handoff. Sensor and
// forecaster roles given -cluster route by key through the membership view
// instead of a static -memory list:
//
//	nwsd -role nameserver -listen :8090 -replication 2 -vnodes 64
//	nwsd -role memory     -listen :8091 -cluster localhost:8090 -node shard-a
//	nwsd -role memory     -listen :8092 -cluster localhost:8090 -node shard-b
//	nwsd -role sensor     -host mybox -cluster localhost:8090 -nameserver localhost:8090
//	nwsd -role forecaster -listen :8093 -cluster localhost:8090
//
// The sensor role measures either the live Linux machine (default) or a
// simulated host running one of the paper's workload profiles (-sim thing1,
// thing2, conundrum, beowulf, gremlin, kongo); in simulation mode virtual
// time is advanced at the measurement cadence so the daemon produces the
// same series the experiments use, but live over the network.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nwscpu/internal/metrics"
	"nwscpu/internal/netsensor"
	"nwscpu/internal/nwsnet"
	"nwscpu/internal/nwsnet/cluster"
	"nwscpu/internal/prochost"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

func main() {
	role := flag.String("role", "", "nameserver | memory | forecaster | reflector | sensor")
	listen := flag.String("listen", "127.0.0.1:0", "listen address for server roles")
	memory := flag.String("memory", "", "memory server address (forecaster, sensor)")
	nameserver := flag.String("nameserver", "", "name server address to register with (optional)")
	hostName := flag.String("host", "localhost", "host name for the sensor's series keys")
	period := flag.Duration("period", 10*time.Second, "sensor measurement period")
	simProfile := flag.String("sim", "", "simulate a paper host profile instead of reading /proc")
	capacity := flag.Int("capacity", 0, "memory: max points per series (0 = default)")
	replicas := flag.Int("replicas", 1, "memory: run this many replica servers on consecutive ports")
	stateDir := flag.String("statedir", "", "memory: directory for durable series logs (empty = in-memory only)")
	reflector := flag.String("reflector", "", "sensor: also probe network latency/bandwidth against this reflector")
	ttl := flag.Duration("ttl", 0, "nameserver: registration expiry (0 = never; sensors re-register each period)")
	clusterAddr := flag.String("cluster", "", "partitioned cluster: registry (nameserver) address; memory/forecaster roles join as shard members, client roles route by key")
	nodeID := flag.String("node", "", "cluster member ID for shard roles (default: the bound listen address)")
	replication := flag.Int("replication", 0, "nameserver: owners per series key in cluster views (0 = default 2)")
	vnodes := flag.Int("vnodes", 0, "nameserver: virtual nodes per member on the cluster ring (0 = default 64)")
	metricsAddr := flag.String("metrics", "", "HTTP address for /metrics, /metrics.json, /debug/vars, /debug/pprof (empty = disabled)")
	codec := flag.String("codec", "", "client roles: wire codec to the memory servers, binary (v2, default) or json (v1, for pre-v2 servers)")
	maxConns := flag.Int("max-conns", 0, "server roles: max concurrent connections; excess shed with a retryable busy error (0 = unlimited)")
	maxInFlight := flag.Int("max-inflight", 0, "server roles: max requests executing at once; excess queued up to -queue-wait then shed (0 = unlimited)")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "server roles: how long a request may wait for an in-flight slot before being shed (with -max-inflight)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "server roles: disconnect connections idle this long (0 = never)")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "server roles: disconnect clients that stall reading a response this long (0 = never)")
	tenantRate := flag.Float64("tenant-rate", 0, "server roles: per-tenant sustained requests/sec (tenants identify with a hello); over-quota requests shed with a retryable busy error (0 = no quotas)")
	tenantBurst := flag.Int("tenant-burst", 0, "server roles: per-tenant burst capacity above -tenant-rate (0 = max(1, rate))")
	pushRefresh := flag.Duration("push-refresh", 5*time.Second, "forecaster: poll memory and push changed forecasts to subscribers this often (0 = serve subscriptions but never push)")
	flag.Parse()

	logger := log.New(os.Stderr, "nwsd: ", log.LstdFlags)
	opts := daemonOpts{
		role: *role, listen: *listen, memory: *memory, nameserver: *nameserver,
		hostName: *hostName, period: *period, simProfile: *simProfile,
		capacity: *capacity, stateDir: *stateDir, ttl: *ttl, reflector: *reflector,
		metricsAddr: *metricsAddr, replicas: *replicas, codec: nwsnet.Codec(*codec),
		clusterAddr: *clusterAddr, nodeID: *nodeID,
		replication: *replication, vnodes: *vnodes,
		pushRefresh: *pushRefresh,
		limits: nwsnet.ServerLimits{
			MaxConns:     *maxConns,
			MaxInFlight:  *maxInFlight,
			QueueWait:    *queueWait,
			IdleTimeout:  *idleTimeout,
			WriteTimeout: *writeTimeout,
			TenantRate:   *tenantRate,
			TenantBurst:  *tenantBurst,
		},
	}
	if err := run(opts, logger); err != nil {
		logger.Fatal(err)
	}
}

// daemonOpts carries the parsed command-line configuration.
type daemonOpts struct {
	role, listen, memory, nameserver string
	hostName, simProfile, stateDir   string
	reflector                        string
	metricsAddr                      string
	period                           time.Duration
	ttl                              time.Duration
	capacity                         int
	replicas                         int
	// clusterAddr, when set, runs the partitioned-cluster deployment: server
	// shards join the registry there, client roles route by series key.
	clusterAddr string
	nodeID      string
	replication int
	vnodes      int
	// codec is the wire codec client roles speak to the memory servers; the
	// zero value selects the binary (v2) default.
	codec nwsnet.Codec
	// pushRefresh is the forecaster's subscription refresher interval: how
	// often it polls memory for new points and pushes changed forecasts to
	// subscribers. 0 disables pushing (subscriptions still acknowledge).
	pushRefresh time.Duration
	// limits is the server-role overload protection; the zero value (what
	// tests constructing daemonOpts directly get) imposes no limits.
	limits nwsnet.ServerLimits

	// Test hooks: stop (when non-nil) replaces signal delivery as the
	// shutdown trigger, and notify (when non-nil) reports each bound
	// listen address by component name.
	stop   <-chan struct{}
	notify func(component, addr string)
}

// note reports a bound address to the test hook, if any.
func (o daemonOpts) note(component, addr string) {
	if o.notify != nil {
		o.notify(component, addr)
	}
}

func run(o daemonOpts, logger *log.Logger) error {
	switch o.codec {
	case "", nwsnet.CodecBinary, nwsnet.CodecJSON:
	default:
		return fmt.Errorf("unknown -codec %q (want %q or %q)", o.codec, nwsnet.CodecBinary, nwsnet.CodecJSON)
	}
	if o.metricsAddr != "" {
		ds, err := metrics.ServeDebug(o.metricsAddr, metrics.Default)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ds.Close()
		logger.Printf("metrics on http://%s/metrics (pprof on /debug/pprof/)", ds.Addr())
		o.note("metrics", ds.Addr())
	}
	switch o.role {
	case "nameserver":
		return serve(o, nwsnet.NewNameServerCluster(o.ttl, cluster.Config{
			Replication: o.replication, VNodes: o.vnodes,
		}), logger)
	case "memory":
		return runMemory(o, logger)
	case "forecaster":
		if o.clusterAddr != "" {
			return runClusterForecaster(o, logger)
		}
		if o.memory == "" {
			return fmt.Errorf("forecaster needs -memory")
		}
		fs := nwsnet.NewForecasterServiceReplicasCodec(memoryAddrs(o), 0, o.codec)
		// Catch up on existing history in one batched round trip before
		// serving, so the first query per series is not the expensive one.
		// Best effort: an empty or unreachable memory just starts cold.
		warmCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		if n, err := fs.Warm(warmCtx, nil); err != nil {
			logger.Printf("forecaster warm-up skipped: %v", err)
		} else if n > 0 {
			logger.Printf("forecaster warmed with %d points", n)
		}
		cancel()
		if o.pushRefresh > 0 {
			fs.StartRefresher(o.pushRefresh)
			defer fs.StopRefresher()
		}
		return serve(o, fs, logger)
	case "reflector":
		r := netsensor.NewReflector()
		addr, err := r.Listen(o.listen)
		if err != nil {
			return err
		}
		logger.Printf("reflector on %s", addr)
		o.note("reflector", addr)
		waitForStop(o)
		return r.Close()
	case "sensor":
		if o.memory == "" && o.clusterAddr == "" {
			return fmt.Errorf("sensor needs -memory (or -cluster)")
		}
		return runSensor(o, logger)
	default:
		return fmt.Errorf("unknown -role %q", o.role)
	}
}

// memoryAddrs splits the -memory flag into a replica address list.
func memoryAddrs(o daemonOpts) []string {
	var addrs []string
	for _, a := range strings.Split(o.memory, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// replicaListen derives the listen address for replica i from the base
// -listen flag: an explicit port yields consecutive ports (:8091, :8092,
// ...); port 0 lets every replica bind an ephemeral port.
func replicaListen(base string, i int) (string, error) {
	if i == 0 {
		return base, nil
	}
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return "", fmt.Errorf("-listen %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("-listen %q: non-numeric port with -replicas: %w", base, err)
	}
	if port == 0 {
		return base, nil
	}
	return net.JoinHostPort(host, strconv.Itoa(port+i)), nil
}

// runMemory serves one or more memory replicas. With -replicas N > 1 each
// replica gets its own store (and, when durable, its own subdirectory of
// -statedir) and the whole set is registered with the name server under the
// single logical name "memory" so clients resolve every endpoint at once.
func runMemory(o daemonOpts, logger *log.Logger) error {
	n := o.replicas
	if n < 1 {
		n = 1
	}
	addrs := make([]string, 0, n)
	var srvs []*nwsnet.Server
	var stores []io.Closer
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
		for _, c := range stores {
			c.Close()
		}
	}()
	var nodes []*nwsnet.ClusterNode
	var agents []*nwsnet.ClusterAgent
	defer func() {
		for _, a := range agents {
			a.Stop()
			a.Close()
		}
	}()
	for i := 0; i < n; i++ {
		var h nwsnet.Handler
		var mem *nwsnet.Memory
		if o.stateDir != "" {
			dir := o.stateDir
			if n > 1 {
				dir = filepath.Join(o.stateDir, fmt.Sprintf("replica%d", i))
			}
			pm, err := nwsnet.NewPersistentMemory(o.capacity, dir)
			if err != nil {
				return err
			}
			stores = append(stores, pm)
			logger.Printf("durable memory in %s", dir)
			h, mem = pm, pm.Memory
		} else {
			m := nwsnet.NewMemory(o.capacity)
			h, mem = m, m
		}
		if o.clusterAddr != "" {
			// The member ID is fixed after the bind below (the bound address
			// is the default identity); the guard is inert until the agent
			// joins, so serving before that is safe.
			node := nwsnet.NewClusterNodeHandler("", h, mem)
			nodes = append(nodes, node)
			h = node
		}
		listen, err := replicaListen(o.listen, i)
		if err != nil {
			return err
		}
		srv := nwsnet.NewServerLimits(h, logger, o.limits)
		addr, err := srv.Listen(listen)
		if err != nil {
			return err
		}
		srvs = append(srvs, srv)
		addrs = append(addrs, addr)
		logger.Printf("memory replica %d/%d listening on %s", i+1, n, addr)
	}
	for i, node := range nodes {
		id := addrs[i]
		if o.nodeID != "" {
			id = o.nodeID
			if n > 1 {
				id = fmt.Sprintf("%s-%d", o.nodeID, i)
			}
		}
		node.SetID(id)
		agent := nwsnet.NewClusterAgent(nil, o.clusterAddr, cluster.Member{
			ID: id, Kind: string(nwsnet.KindMemory), Addr: addrs[i],
		}, node)
		agent.SetLogger(logger)
		interval := o.period / 3
		if interval <= 0 {
			interval = time.Second
		}
		if _, err := agent.Start(context.Background(), interval); err != nil {
			return fmt.Errorf("joining cluster at %s: %w", o.clusterAddr, err)
		}
		agents = append(agents, agent)
		logger.Printf("joined cluster %s as member %s (epoch %d)", o.clusterAddr, id, agent.Epoch())
	}
	o.note("memory", addrs[0])
	for i, addr := range addrs[1:] {
		o.note(fmt.Sprintf("memory%d", i+1), addr)
	}
	if o.nameserver != "" {
		c := nwsnet.NewClient(0)
		defer c.Close()
		reg := nwsnet.Registration{
			Name: "memory", Kind: nwsnet.KindMemory, Addr: addrs[0], Addrs: addrs,
		}
		if err := c.Register(o.nameserver, reg); err != nil {
			return fmt.Errorf("registering with name server: %w", err)
		}
		logger.Printf("registered %d-replica memory group with %s", n, o.nameserver)
		// Keep the registration alive against a TTL name server by
		// re-registering every -period, like the sensor heartbeat.
		period := o.period
		if period <= 0 {
			period = 10 * time.Second
		}
		heartbeatDone := make(chan struct{})
		defer close(heartbeatDone)
		go func() {
			ticker := time.NewTicker(period)
			defer ticker.Stop()
			for {
				select {
				case <-heartbeatDone:
					return
				case <-ticker.C:
					if err := c.Register(o.nameserver, reg); err != nil {
						logger.Printf("heartbeat failed: %v", err)
					}
				}
			}
		}()
	}
	waitForStop(o)
	var first error
	for _, s := range srvs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	srvs = nil
	return first
}

// runClusterForecaster serves a forecaster shard of the partitioned
// cluster: it pulls history through the ring-routed cluster client and
// holds a forecaster-kind membership lease, so cluster clients route each
// series' forecast queries to the shard owning it.
func runClusterForecaster(o daemonOpts, logger *log.Logger) error {
	fs := nwsnet.NewForecasterServiceCluster(o.clusterAddr, 0)
	warmCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	if n, err := fs.Warm(warmCtx, nil); err != nil {
		logger.Printf("forecaster warm-up skipped: %v", err)
	} else if n > 0 {
		logger.Printf("forecaster warmed with %d points", n)
	}
	cancel()
	srv := nwsnet.NewServerLimits(fs, logger, o.limits)
	addr, err := srv.Listen(o.listen)
	if err != nil {
		return err
	}
	id := o.nodeID
	if id == "" {
		id = addr
	}
	fs.SetClusterSelf(id)
	agent := nwsnet.NewClusterAgent(nil, o.clusterAddr, cluster.Member{
		ID: id, Kind: string(nwsnet.KindForecaster), Addr: addr,
	}, nil)
	agent.SetLogger(logger)
	// Terminate subscriptions for series this shard no longer owns on every
	// adopted view, redirecting subscribers with the authoritative view.
	agent.OnView(fs.AdoptView)
	if o.pushRefresh > 0 {
		fs.StartRefresher(o.pushRefresh)
		defer fs.StopRefresher()
	}
	interval := o.period / 3
	if interval <= 0 {
		interval = time.Second
	}
	if _, err := agent.Start(context.Background(), interval); err != nil {
		srv.Close()
		return fmt.Errorf("joining cluster at %s: %w", o.clusterAddr, err)
	}
	defer func() {
		agent.Stop()
		agent.Close()
	}()
	logger.Printf("forecaster listening on %s, member %s of cluster %s (epoch %d)",
		addr, id, o.clusterAddr, agent.Epoch())
	o.note(o.role, addr)
	waitForStop(o)
	return srv.Close()
}

func serve(o daemonOpts, h nwsnet.Handler, logger *log.Logger) error {
	srv := nwsnet.NewServerLimits(h, logger, o.limits)
	addr, err := srv.Listen(o.listen)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s", addr)
	o.note(o.role, addr)
	waitForStop(o)
	return srv.Close()
}

func runSensor(o daemonOpts, logger *log.Logger) error {
	memory, nameserver, hostName := o.memory, o.nameserver, o.hostName
	period, simProfile := o.period, o.simProfile

	var host sensors.Host
	var sim *simos.Host
	if simProfile != "" {
		var profile *workload.Profile
		const simHorizon = 30 * 86400 // a month of simulated load
		for _, p := range workload.Profiles(simHorizon) {
			if p.Name == simProfile {
				pp := p
				profile = &pp
				break
			}
		}
		if profile == nil {
			return fmt.Errorf("unknown -sim profile %q", simProfile)
		}
		sim = simos.New(simos.DefaultConfig())
		workload.Submit(sim, profile.Generate(simHorizon))
		host = sensors.SimHost{H: sim}
		logger.Printf("simulating profile %s", simProfile)
	} else {
		ph, err := prochost.New()
		if err != nil {
			return fmt.Errorf("live host unavailable (%v); use -sim <profile>", err)
		}
		host = ph
	}

	memAddrs := memoryAddrs(o)
	var daemon *nwsnet.SensorDaemon
	if o.clusterAddr != "" {
		daemon = nwsnet.NewSensorDaemonCluster(hostName, host, o.clusterAddr, sensors.HybridConfig{})
		if memory == "" {
			memory = "cluster " + o.clusterAddr
		}
	} else {
		daemon = nwsnet.NewSensorDaemonReplicasCodec(hostName, host, memAddrs, 0, sensors.HybridConfig{}, o.codec)
	}
	daemon.SetLogger(logger)
	defer daemon.Close()

	// Optional network probes against a reflector.
	var lat *netsensor.LatencySensor
	var bw *netsensor.BandwidthSensor
	var netConn *nwsnet.Conn
	if o.reflector != "" {
		if len(memAddrs) == 0 {
			return fmt.Errorf("-reflector needs an explicit -memory address for the probe series")
		}
		lat = netsensor.NewLatencySensor(o.reflector, 4, 0)
		defer lat.Close()
		bw = netsensor.NewBandwidthSensor(o.reflector, 0, 0)
		defer bw.Close()
		netConn = nwsnet.NewConnCodec(memAddrs[0], 0, o.codec)
		defer netConn.Close()
		logger.Printf("probing network against %s", o.reflector)
	}

	if nameserver != "" {
		if err := daemon.Register(nameserver, memory); err != nil {
			return fmt.Errorf("registering with name server: %w", err)
		}
		logger.Printf("registered %s/cpu with %s", hostName, nameserver)
	}

	logger.Printf("sensing %s every %v, pushing to %s", hostName, period, memory)
	o.note("sensor", hostName)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-o.stop:
			return nil
		case <-ticker.C:
			if sim != nil {
				sim.RunUntil(sim.Now() + period.Seconds())
			}
			if err := daemon.Step(); err != nil {
				logger.Printf("measurement push failed: %v", err)
			}
			if lat != nil {
				if err := pushNetProbes(netConn, hostName, host.Now(), lat, bw); err != nil {
					logger.Printf("network probe failed: %v", err)
				}
			}
			// Re-registration doubles as the name-server heartbeat.
			if nameserver != "" {
				if err := daemon.Register(nameserver, memory); err != nil {
					logger.Printf("heartbeat failed: %v", err)
				}
			}
		}
	}
}

// pushNetProbes takes one latency and one bandwidth sample and stores them.
func pushNetProbes(conn *nwsnet.Conn, hostName string, now float64,
	lat *netsensor.LatencySensor, bw *netsensor.BandwidthSensor) error {

	rtt, err := lat.Measure()
	if err != nil {
		return err
	}
	if err := conn.Store(hostName+"/net/latency", [][2]float64{{now, rtt}}); err != nil {
		return err
	}
	throughput, err := bw.Measure()
	if err != nil {
		return err
	}
	return conn.Store(hostName+"/net/bandwidth", [][2]float64{{now, throughput}})
}

// waitForStop blocks until shutdown is requested: the test stop channel
// when one is set, else an interrupt/terminate signal.
func waitForStop(o daemonOpts) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(ch)
	select {
	case <-ch:
	case <-o.stop: // nil when unset: blocks forever, signals still win
	}
}
