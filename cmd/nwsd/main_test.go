package main

import (
	"context"
	"io"
	"log"
	"testing"
	"time"

	"nwscpu/internal/netsensor"
	"nwscpu/internal/nwsnet"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func TestRunValidation(t *testing.T) {
	cases := []daemonOpts{
		{role: ""},
		{role: "bogus"},
		{role: "forecaster"}, // missing memory
		{role: "sensor"},     // missing memory
		{role: "sensor", memory: "x:1", simProfile: "bogus", period: time.Second},
	}
	for i, o := range cases {
		if err := run(o, quietLogger()); err == nil {
			t.Errorf("case %d (%+v) accepted", i, o)
		}
	}
}

func TestMemoryRoleBadStateDir(t *testing.T) {
	o := daemonOpts{role: "memory", stateDir: "/proc/definitely/not/writable", listen: "127.0.0.1:0"}
	if err := run(o, quietLogger()); err == nil {
		t.Fatal("unwritable state dir accepted")
	}
}

func TestReplicaListen(t *testing.T) {
	cases := []struct {
		base string
		i    int
		want string
	}{
		{"127.0.0.1:8091", 0, "127.0.0.1:8091"},
		{"127.0.0.1:8091", 2, "127.0.0.1:8093"},
		{":8091", 1, ":8092"},
		{"127.0.0.1:0", 3, "127.0.0.1:0"}, // ephemeral stays ephemeral
	}
	for _, c := range cases {
		got, err := replicaListen(c.base, c.i)
		if err != nil || got != c.want {
			t.Errorf("replicaListen(%q, %d) = %q, %v; want %q", c.base, c.i, got, err, c.want)
		}
	}
	if _, err := replicaListen("no-port", 1); err == nil {
		t.Error("portless base accepted for a second replica")
	}
}

func TestMemoryReplicasRole(t *testing.T) {
	ns := nwsnet.NewServer(nwsnet.NewNameServer(), nil)
	nsAddr, err := ns.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	stop := make(chan struct{})
	bound := make(chan string, 4)
	o := daemonOpts{
		role: "memory", listen: "127.0.0.1:0", replicas: 3, nameserver: nsAddr,
		stop:   stop,
		notify: func(component, addr string) { bound <- addr },
	}
	done := make(chan error, 1)
	go func() { done <- run(o, quietLogger()) }()

	addrs := make([]string, 3)
	for i := range addrs {
		select {
		case addrs[i] = <-bound:
		case <-time.After(5 * time.Second):
			t.Fatal("replica did not report a bound address")
		}
	}

	c := nwsnet.NewClient(time.Second)
	defer c.Close()
	for _, addr := range addrs {
		if err := c.Ping(addr); err != nil {
			t.Fatalf("replica %s: %v", addr, err)
		}
	}
	// The whole set must be resolvable as one logical endpoint. The daemon
	// registers after reporting its bound addresses, so give the
	// registration a moment to land.
	var reg nwsnet.Registration
	deadline := time.Now().Add(5 * time.Second)
	for {
		reg, err = c.Lookup(nsAddr, "memory")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reg.Kind != nwsnet.KindMemory || len(reg.Endpoints()) != 3 {
		t.Fatalf("registered group = %+v", reg)
	}
	// Writes through the resolved group reach every replica.
	g := nwsnet.NewReplicaGroup(c, reg.Endpoints(), 0)
	if err := g.Store(context.Background(), "k", [][2]float64{{1, 0.5}}); err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		pts, err := c.Fetch(addr, "k", 0, 0, 0)
		if err != nil || len(pts) != 1 {
			t.Fatalf("replica %s after group store: %v, %v", addr, pts, err)
		}
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPushNetProbes(t *testing.T) {
	refl := netsensor.NewReflector()
	reflAddr, err := refl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer refl.Close()

	mem := nwsnet.NewMemory(0)
	srv := nwsnet.NewServer(mem, nil)
	memAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	lat := netsensor.NewLatencySensor(reflAddr, 4, time.Second)
	defer lat.Close()
	bw := netsensor.NewBandwidthSensor(reflAddr, 0, 2*time.Second)
	defer bw.Close()
	conn := nwsnet.NewConn(memAddr, time.Second)
	defer conn.Close()

	for i := 0; i < 3; i++ {
		if err := pushNetProbes(conn, "box", float64(i*10), lat, bw); err != nil {
			t.Fatal(err)
		}
	}
	if mem.Len("box/net/latency") != 3 || mem.Len("box/net/bandwidth") != 3 {
		t.Fatalf("stored latency=%d bandwidth=%d, want 3 each",
			mem.Len("box/net/latency"), mem.Len("box/net/bandwidth"))
	}
}

func TestPushNetProbesDeadReflector(t *testing.T) {
	mem := nwsnet.NewMemory(0)
	srv := nwsnet.NewServer(mem, nil)
	memAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	lat := netsensor.NewLatencySensor("127.0.0.1:1", 4, 200*time.Millisecond)
	defer lat.Close()
	bw := netsensor.NewBandwidthSensor("127.0.0.1:1", 0, 200*time.Millisecond)
	defer bw.Close()
	conn := nwsnet.NewConn(memAddr, time.Second)
	defer conn.Close()
	if err := pushNetProbes(conn, "box", 0, lat, bw); err == nil {
		t.Fatal("dead reflector accepted")
	}
}
