package main

import (
	"io"
	"log"
	"testing"
	"time"

	"nwscpu/internal/netsensor"
	"nwscpu/internal/nwsnet"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func TestRunValidation(t *testing.T) {
	cases := []daemonOpts{
		{role: ""},
		{role: "bogus"},
		{role: "forecaster"}, // missing memory
		{role: "sensor"},     // missing memory
		{role: "sensor", memory: "x:1", simProfile: "bogus", period: time.Second},
	}
	for i, o := range cases {
		if err := run(o, quietLogger()); err == nil {
			t.Errorf("case %d (%+v) accepted", i, o)
		}
	}
}

func TestMemoryRoleBadStateDir(t *testing.T) {
	o := daemonOpts{role: "memory", stateDir: "/proc/definitely/not/writable", listen: "127.0.0.1:0"}
	if err := run(o, quietLogger()); err == nil {
		t.Fatal("unwritable state dir accepted")
	}
}

func TestPushNetProbes(t *testing.T) {
	refl := netsensor.NewReflector()
	reflAddr, err := refl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer refl.Close()

	mem := nwsnet.NewMemory(0)
	srv := nwsnet.NewServer(mem, nil)
	memAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	lat := netsensor.NewLatencySensor(reflAddr, 4, time.Second)
	defer lat.Close()
	bw := netsensor.NewBandwidthSensor(reflAddr, 0, 2*time.Second)
	defer bw.Close()
	conn := nwsnet.NewConn(memAddr, time.Second)
	defer conn.Close()

	for i := 0; i < 3; i++ {
		if err := pushNetProbes(conn, "box", float64(i*10), lat, bw); err != nil {
			t.Fatal(err)
		}
	}
	if mem.Len("box/net/latency") != 3 || mem.Len("box/net/bandwidth") != 3 {
		t.Fatalf("stored latency=%d bandwidth=%d, want 3 each",
			mem.Len("box/net/latency"), mem.Len("box/net/bandwidth"))
	}
}

func TestPushNetProbesDeadReflector(t *testing.T) {
	mem := nwsnet.NewMemory(0)
	srv := nwsnet.NewServer(mem, nil)
	memAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	lat := netsensor.NewLatencySensor("127.0.0.1:1", 4, 200*time.Millisecond)
	defer lat.Close()
	bw := netsensor.NewBandwidthSensor("127.0.0.1:1", 0, 200*time.Millisecond)
	defer bw.Close()
	conn := nwsnet.NewConn(memAddr, time.Second)
	defer conn.Close()
	if err := pushNetProbes(conn, "box", 0, lat, bw); err == nil {
		t.Fatal("dead reflector accepted")
	}
}
