package main

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"nwscpu/internal/nwsnet"
)

// TestMemoryRoleServesMetrics is the end-to-end observability check: a
// memory daemon started with -metrics must expose Prometheus text-format
// metrics that include the memory-server op counters and latency
// histograms after real protocol traffic.
func TestMemoryRoleServesMetrics(t *testing.T) {
	stop := make(chan struct{})
	var mu sync.Mutex
	addrs := make(map[string]string)
	ready := make(chan string, 8)
	o := daemonOpts{
		role:        "memory",
		listen:      "127.0.0.1:0",
		metricsAddr: "127.0.0.1:0",
		stop:        stop,
		notify: func(component, addr string) {
			mu.Lock()
			addrs[component] = addr
			mu.Unlock()
			ready <- component
		},
	}
	runErr := make(chan error, 1)
	go func() { runErr <- run(o, quietLogger()) }()
	defer func() {
		close(stop)
		if err := <-runErr; err != nil {
			t.Errorf("run: %v", err)
		}
	}()

	// Wait for both listeners.
	seen := map[string]bool{}
	for len(seen) < 2 {
		select {
		case c := <-ready:
			seen[c] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("daemon not ready; got %v", seen)
		}
	}
	mu.Lock()
	memAddr, metricsAddr := addrs["memory"], addrs["metrics"]
	mu.Unlock()

	// Drive real traffic through the memory server.
	c := nwsnet.NewClient(time.Second)
	if err := c.Store(memAddr, "box/cpu/nws_hybrid", [][2]float64{{0, 0.5}, {10, 0.6}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fetch(memAddr, "box/cpu/nws_hybrid", 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if len(body) == 0 {
		t.Fatal("/metrics is empty")
	}
	// Metric families are process-global and other tests in this package
	// also exercise nwsnet, so assert presence and non-zero values rather
	// than exact counts.
	for _, want := range []string{
		`nws_memory_requests_total{op="store"}`,
		`nws_memory_requests_total{op="fetch"}`,
		"nws_memory_points_stored_total",
		"nws_memory_points_fetched_total",
		`nws_memory_request_seconds_bucket{op="store",le="+Inf"}`,
		`nws_memory_request_seconds_count{op="store"}`,
		"nws_server_connections_total",
		"# TYPE nws_memory_request_seconds histogram",
		"# TYPE nws_memory_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, series := range []string{
		`nws_memory_requests_total{op="store"}`,
		"nws_memory_points_stored_total",
	} {
		if !seriesNonZero(body, series) {
			t.Errorf("series %q is missing or zero", series)
		}
	}

	// The JSON snapshot rides on the same server.
	jr, err := http.Get("http://" + metricsAddr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(jr.Body)
	jr.Body.Close()
	if jr.StatusCode != 200 || !strings.Contains(string(jbody), "nws_memory_points_stored_total") {
		t.Errorf("/metrics.json: status=%d", jr.StatusCode)
	}

	// pprof is mounted too.
	pr, err := http.Get("http://" + metricsAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != 200 {
		t.Errorf("/debug/pprof/: status=%d", pr.StatusCode)
	}
}

// seriesNonZero reports whether the exposition body has a sample line for
// the series with a value other than "0".
func seriesNonZero(body, series string) bool {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return rest != "0"
		}
	}
	return false
}

// TestMetricsBadAddr makes a bad -metrics address a startup error, not a
// silent no-op.
func TestMetricsBadAddr(t *testing.T) {
	o := daemonOpts{role: "memory", listen: "127.0.0.1:0", metricsAddr: "256.0.0.1:bad"}
	if err := run(o, quietLogger()); err == nil {
		t.Fatal("bad -metrics address accepted")
	}
}
