// Command nwsperf measures the forecasting hot path — the full NWS engine
// and every DefaultBank member — and writes a machine-readable report
// (BENCH_forecast.json by default) that carries the measured numbers next to
// the committed seed baseline, so a perf regression (or a claimed win) is a
// diff anyone can read without rerunning anything.
//
// Usage:
//
//	nwsperf [-out BENCH_forecast.json] [-scale 1.0]
//
// -scale multiplies every scenario's iteration count; CI smoke runs use a
// small scale to bound runtime, perf baselines use the default.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"nwscpu/internal/forecast"
)

// Measurement is one scenario's observed (or baseline) per-operation cost.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Result pairs a scenario's fresh measurement with the seed baseline.
type Result struct {
	Name     string       `json:"name"`
	Current  Measurement  `json:"current"`
	Baseline *Measurement `json:"baseline,omitempty"`
	// Speedup is baseline ns/op over current ns/op (>1 means faster than
	// the seed implementation).
	Speedup float64 `json:"speedup,omitempty"`
}

// Acceptance states the PR's headline perf criterion in checkable form:
// the full-engine Update must allocate at least 5x less than the seed.
type Acceptance struct {
	EngineUpdateAllocsBefore float64 `json:"engine_update_allocs_before"`
	EngineUpdateAllocsAfter  float64 `json:"engine_update_allocs_after"`
	MeetsAllocReduction5x    bool    `json:"meets_5x_alloc_reduction"`
}

// Report is the BENCH_forecast.json document.
type Report struct {
	Schema         string     `json:"schema"`
	Package        string     `json:"package"`
	GoVersion      string     `json:"go_version"`
	GOOS           string     `json:"goos"`
	GOARCH         string     `json:"goarch"`
	BaselineCommit string     `json:"baseline_commit"`
	BaselineSource string     `json:"baseline_source"`
	Acceptance     Acceptance `json:"acceptance"`
	Results        []Result   `json:"results"`
}

// seedBaseline holds the seed implementation's numbers, measured with
// `go test -bench 'BenchmarkEngine|BenchmarkBank' -benchmem` at the commit
// named in the report before the incremental hot path landed.
var seedBaseline = map[string]Measurement{
	"engine_update":             {10510, 2719, 12},
	"engine_update_windowed_50": {15263, 2718, 12},
	"engine_forecast":           {103.2, 0, 0},
	"engine_forecast_interval":  {9439, 5376, 3},
	"member/last_value":         {4.309, 0, 0},
	"member/run_mean":           {4.328, 0, 0},
	"member/sw_mean_5":          {11.41, 0, 0},
	"member/sw_mean_10":         {11.50, 0, 0},
	"member/sw_mean_20":         {11.21, 0, 0},
	"member/sw_mean_30":         {11.32, 0, 0},
	"member/sw_mean_50":         {11.25, 0, 0},
	"member/sw_median_5":        {95.48, 48, 1},
	"member/sw_median_10":       {240.8, 80, 1},
	"member/sw_median_20":       {717.0, 160, 1},
	"member/sw_median_30":       {1151, 240, 1},
	"member/sw_median_50":       {2336, 416, 1},
	"member/sw_trim_30_30":      {1234, 240, 1},
	"member/sw_trim_50_20":      {2317, 416, 1},
	"member/exp_05":             {5.586, 0, 0},
	"member/exp_10":             {5.630, 0, 0},
	"member/exp_20":             {5.496, 0, 0},
	"member/exp_30":             {5.449, 0, 0},
	"member/exp_50":             {5.592, 0, 0},
	"member/exp_75":             {5.629, 0, 0},
	"member/exp_90":             {5.441, 0, 0},
	"member/adapt_exp":          {15.56, 0, 0},
	"member/adapt_mean":         {728.5, 0, 0},
	"member/adapt_median":       {4633, 1120, 5},
	"member/trend":              {4.386, 0, 0},
}

// measurer runs fn(iters) and reports its per-operation cost. Injectable so
// the report plumbing is testable without timing noise.
type measurer func(iters int, fn func(n int)) Measurement

// realMeasure times fn and charges it the heap traffic observed between two
// runtime.MemStats reads (the loops under test are allocation-free in steady
// state, so GC noise is not a factor at these iteration counts).
func realMeasure(iters int, fn func(n int)) Measurement {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	fn(iters)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return Measurement{
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
	}
}

// perfValues is a deterministic availability-like series for the loops.
func perfValues(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, n)
	v := 0.7
	for i := range vals {
		v += 0.05 * (rng.Float64() - 0.5)
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		vals[i] = v
	}
	return vals
}

type scenario struct {
	name  string
	iters int
	setup func() func(n int) // returns the measured loop, post-warmup
}

func scenarios() []scenario {
	vals := perfValues(4096)
	warm := func(e *forecast.Engine) {
		for _, v := range vals[:512] {
			e.Update(v)
		}
	}
	scs := []scenario{
		{"engine_update", 100_000, func() func(int) {
			e := forecast.NewDefaultEngine()
			warm(e)
			return func(n int) {
				for i := 0; i < n; i++ {
					e.Update(vals[i%len(vals)])
				}
			}
		}},
		{"engine_update_windowed_50", 100_000, func() func(int) {
			e := forecast.NewWindowedEngine(forecast.ByMAE, 50, forecast.DefaultBank()...)
			warm(e)
			return func(n int) {
				for i := 0; i < n; i++ {
					e.Update(vals[i%len(vals)])
				}
			}
		}},
		{"engine_forecast", 2_000_000, func() func(int) {
			e := forecast.NewDefaultEngine()
			warm(e)
			return func(n int) {
				for i := 0; i < n; i++ {
					e.Forecast()
				}
			}
		}},
		{"engine_forecast_interval", 1_000_000, func() func(int) {
			e := forecast.NewDefaultEngine()
			warm(e)
			return func(n int) {
				for i := 0; i < n; i++ {
					e.ForecastInterval(0.9)
				}
			}
		}},
	}
	for _, f := range forecast.DefaultBank() {
		f := f
		scs = append(scs, scenario{"member/" + f.Name(), 500_000, func() func(int) {
			for _, v := range vals[:128] {
				f.Update(v)
			}
			return func(n int) {
				for i := 0; i < n; i++ {
					f.Update(vals[i%len(vals)])
					f.Forecast()
				}
			}
		}})
	}
	return scs
}

// collect measures every scenario and assembles the report.
func collect(measure measurer, scale float64) Report {
	rep := Report{
		Schema:         "nws/bench-forecast/v1",
		Package:        "nwscpu/internal/forecast",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		BaselineCommit: "78df1a0",
		BaselineSource: "go test -bench 'BenchmarkEngine|BenchmarkBank' -benchmem ./internal/forecast",
	}
	for _, sc := range scenarios() {
		iters := int(float64(sc.iters) * scale)
		if iters < 1 {
			iters = 1
		}
		loop := sc.setup()
		res := Result{Name: sc.name, Current: measure(iters, loop)}
		if base, ok := seedBaseline[sc.name]; ok {
			b := base
			res.Baseline = &b
			if res.Current.NsPerOp > 0 {
				res.Speedup = b.NsPerOp / res.Current.NsPerOp
			}
		}
		if sc.name == "engine_update" {
			before := seedBaseline[sc.name].AllocsPerOp
			after := res.Current.AllocsPerOp
			rep.Acceptance = Acceptance{
				EngineUpdateAllocsBefore: before,
				EngineUpdateAllocsAfter:  after,
				MeetsAllocReduction5x:    after*5 <= before,
			}
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

func writeReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

func main() {
	out := flag.String("out", "BENCH_forecast.json", "report output path")
	scale := flag.Float64("scale", 1.0, "iteration-count multiplier (CI smoke uses a small value)")
	flag.Parse()

	rep := collect(realMeasure, *scale)
	if err := writeReport(*out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "nwsperf: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		line := fmt.Sprintf("%-28s %10.1f ns/op %8.0f B/op %6.1f allocs/op", r.Name,
			r.Current.NsPerOp, r.Current.BytesPerOp, r.Current.AllocsPerOp)
		if r.Speedup > 0 {
			line += fmt.Sprintf("   %5.1fx vs seed", r.Speedup)
		}
		fmt.Println(line)
	}
	fmt.Printf("wrote %s (engine_update allocs/op: %.0f -> %.1f, 5x reduction met: %v)\n",
		*out, rep.Acceptance.EngineUpdateAllocsBefore, rep.Acceptance.EngineUpdateAllocsAfter,
		rep.Acceptance.MeetsAllocReduction5x)
}
