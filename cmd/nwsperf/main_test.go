package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"nwscpu/internal/forecast"
)

// stubMeasure returns fixed numbers without running the loop, so the report
// plumbing is tested free of timing noise.
func stubMeasure(m Measurement) measurer {
	return func(iters int, fn func(n int)) Measurement {
		fn(1) // the loop must at least be runnable
		return m
	}
}

func TestCollectCoversEngineAndEveryBankMember(t *testing.T) {
	rep := collect(stubMeasure(Measurement{NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0}), 0)

	got := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		got[r.Name] = r
	}
	want := []string{"engine_update", "engine_update_windowed_50", "engine_forecast", "engine_forecast_interval"}
	for _, f := range forecast.DefaultBank() {
		want = append(want, "member/"+f.Name())
	}
	for _, name := range want {
		r, ok := got[name]
		if !ok {
			t.Fatalf("report missing scenario %q", name)
		}
		if r.Baseline == nil {
			t.Fatalf("scenario %q has no seed baseline", name)
		}
		if wantSpeedup := r.Baseline.NsPerOp / 100; r.Speedup != wantSpeedup {
			t.Fatalf("scenario %q speedup = %v, want %v", name, r.Speedup, wantSpeedup)
		}
	}
	if len(rep.Results) != len(want) {
		t.Fatalf("report has %d scenarios, want %d", len(rep.Results), len(want))
	}
}

func TestCollectAcceptanceComparesEngineUpdateAllocs(t *testing.T) {
	rep := collect(stubMeasure(Measurement{NsPerOp: 1, AllocsPerOp: 0}), 0)
	acc := rep.Acceptance
	if acc.EngineUpdateAllocsBefore != 12 {
		t.Fatalf("baseline allocs = %v, want the seed's 12", acc.EngineUpdateAllocsBefore)
	}
	if acc.EngineUpdateAllocsAfter != 0 || !acc.MeetsAllocReduction5x {
		t.Fatalf("acceptance = %+v, want 0 allocs meeting the 5x bar", acc)
	}

	rep = collect(stubMeasure(Measurement{NsPerOp: 1, AllocsPerOp: 11}), 0)
	if rep.Acceptance.MeetsAllocReduction5x {
		t.Fatal("11 allocs/op against a baseline of 12 must not meet the 5x bar")
	}
}

func TestWriteReportRoundTrips(t *testing.T) {
	rep := collect(stubMeasure(Measurement{NsPerOp: 50}), 0)
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeReport(path, rep); err != nil {
		t.Fatalf("writeReport: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Schema != "nws/bench-forecast/v1" || back.BaselineCommit == "" {
		t.Fatalf("round-tripped header = %q / %q", back.Schema, back.BaselineCommit)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round-tripped %d results, want %d", len(back.Results), len(rep.Results))
	}
}

func TestRealMeasureObservesTimeAndAllocs(t *testing.T) {
	sink := make([][]byte, 0, 64)
	m := realMeasure(64, func(n int) {
		for i := 0; i < n; i++ {
			sink = append(sink, make([]byte, 128))
		}
	})
	if m.NsPerOp <= 0 {
		t.Fatalf("ns/op = %v, want > 0", m.NsPerOp)
	}
	if m.AllocsPerOp < 1 {
		t.Fatalf("allocs/op = %v for an allocating loop, want >= 1", m.AllocsPerOp)
	}
	_ = sink
}
