module nwscpu

go 1.22
