package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually stepped clock for breaker timing tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensAtFailureRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 4, FailureRate: 0.5, OpenFor: time.Second, Now: clk.Now})

	// Successes alone never trip it.
	for i := 0; i < 20; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.Record(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successes = %v, want closed", got)
	}

	// Fewer than MinSamples failures after a reset-worth of successes do not
	// trip it either (window still majority-success), but sustained failures do.
	b.Record(false)
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state at 3/8 failures = %v, want closed", got)
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state at 4/8 failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before OpenFor elapsed")
	}
}

func TestBreakerHalfOpenProbesAndCloses(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var transitions []BreakerState
	b := NewBreaker(BreakerConfig{
		Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: time.Second, Probes: 1,
		Now:          clk.Now,
		OnTransition: func(_, to BreakerState) { transitions = append(transitions, to) },
	})
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}

	clk.Advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed before OpenFor elapsed")
	}
	clk.Advance(600 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open denied the first probe")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", got)
	}
	// The probe budget is taken: a concurrent call is denied.
	if b.Allow() {
		t.Fatal("half-open admitted a second concurrent probe")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: time.Second, Now: clk.Now})
	b.Record(false)
	b.Record(false)
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The open timer restarted: still denied until another full OpenFor.
	clk.Advance(900 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed before the restarted OpenFor elapsed")
	}
	clk.Advance(200 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe denied after restarted OpenFor elapsed")
	}
}

// TestBreakerImmediateHalfOpen covers OpenFor < 0: a sequential caller is
// never delayed (every call while "open" is admitted as the probe), but
// concurrent callers beyond the probe budget are denied — the mode the
// sensor daemon uses so recovery happens on the very next tick.
func TestBreakerImmediateHalfOpen(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: -1, Probes: 1})
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if !b.Allow() {
		t.Fatal("sequential caller denied in immediate-half-open mode")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after recovery = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied")
	}
}

func TestBreakerSuccessWhileOpenClosesIt(t *testing.T) {
	// A call admitted just before the circuit opened may come back with a
	// success: that is live evidence the endpoint works, so it closes the
	// circuit instead of being dropped on the floor.
	b := NewBreaker(BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: time.Hour})
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after straggler success = %v, want closed", got)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	// Old failures fall out of the window: a burst followed by steady
	// successes must not leave the breaker on a hair trigger.
	b := NewBreaker(BreakerConfig{Window: 4, MinSamples: 4, FailureRate: 0.5, OpenFor: time.Hour})
	b.Record(false)
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	// Window now holds 4 successes; one failure is 1/4 < 0.5.
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (stale failure must have slid out)", got)
	}
}
