// Package resilience provides the fault-tolerance building blocks the
// distributed NWS daemons share: bounded retry policies with exponential
// backoff and jitter, health-checked connection pools, and — in the chaos
// subpackage — a deterministic fault-injection proxy for exercising the
// stack under network failure.
//
// The package is deliberately mechanism-only: it knows nothing about the
// nwsnet wire protocol. Policy decisions (what counts as retryable, how
// many replicas make a quorum) live with the callers.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Class partitions errors by whether another attempt could help.
type Class int

const (
	// Retryable errors are transient — a later attempt may succeed
	// (connection refused, timeout, a connection dying mid-exchange).
	Retryable Class = iota
	// Terminal errors are definitive — retrying cannot change the outcome
	// (a server that answered with a protocol error, a cancelled context).
	Terminal
)

// Classifier decides whether an error is worth retrying.
type Classifier func(error) Class

// terminalError marks an error as not worth retrying while preserving its
// message and unwrap chain.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// Permanent wraps err so DefaultClassifier reports it Terminal. The wrapped
// error keeps its message and remains visible to errors.Is/As. A nil err
// returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err: err}
}

// IsTerminal reports whether err (or anything it wraps) was marked with
// Permanent.
func IsTerminal(err error) bool {
	var te *terminalError
	return errors.As(err, &te)
}

// DefaultClassifier treats Permanent-wrapped errors and context
// cancellation as Terminal and everything else — transport failures of any
// shape — as Retryable.
func DefaultClassifier(err error) Class {
	if IsTerminal(err) || errors.Is(err, context.Canceled) {
		return Terminal
	}
	return Retryable
}

// Policy describes a bounded retry loop: up to MaxAttempts tries with
// exponential backoff between them. The zero value is usable and selects
// the defaults noted on each field.
type Policy struct {
	MaxAttempts int           // total attempts including the first (0 selects 3)
	BaseDelay   time.Duration // backoff before the first retry (0 selects 50 ms)
	MaxDelay    time.Duration // backoff cap (0 selects 2 s)
	Multiplier  float64       // backoff growth factor (0 selects 2)
	Jitter      float64       // ± fraction of each delay randomized (0 = none)
	Classify    Classifier    // nil selects DefaultClassifier

	// Rand yields values in [0, 1) for jitter; nil selects a process-global
	// locked source. Tests inject a seeded source to make backoff schedules
	// deterministic.
	Rand func() float64
	// Sleep waits for d or until ctx is done; nil selects the real clock.
	// Tests replace it to run retry schedules in virtual time.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes every retry that is about to happen:
	// attempt is the 1-based number of the attempt that just failed with
	// err, and delay is the backoff about to be taken.
	OnRetry func(attempt int, delay time.Duration, err error)
}

// globalRand backs Policy.Rand when none is injected.
var globalRand = struct {
	mu sync.Mutex
	r  *rand.Rand
}{r: rand.New(rand.NewSource(time.Now().UnixNano()))}

func lockedFloat64() float64 {
	globalRand.mu.Lock()
	defer globalRand.mu.Unlock()
	return globalRand.r.Float64()
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.Classify == nil {
		p.Classify = DefaultClassifier
	}
	if p.Rand == nil {
		p.Rand = lockedFloat64
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// Delay returns the backoff taken after the attempt-th failure (1-based),
// jitter included.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	return p.delay(attempt)
}

func (p Policy) delay(attempt int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*p.Rand()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, fails terminally, exhausts MaxAttempts, or
// ctx is done. The returned error is the one from the final attempt.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	for attempt := 1; ; attempt++ {
		err := op(ctx)
		if err == nil {
			return nil
		}
		if p.Classify(err) == Terminal || attempt >= p.MaxAttempts || ctx.Err() != nil {
			return err
		}
		d := p.delay(attempt)
		if p.OnRetry != nil {
			p.OnRetry(attempt, d, err)
		}
		if p.Sleep(ctx, d) != nil {
			return err // ctx done during backoff: report the attempt's error
		}
	}
}
