// Package chaos provides a deterministic fault-injection TCP proxy for
// testing the nwsnet stack under network failure. A Proxy sits in front of
// a real server and applies one fault per accepted connection — chosen by a
// Schedule, so a scripted or seeded run replays the exact same fault
// sequence every time:
//
//	pass      forward bytes untouched
//	refuse    close the client immediately (connection refused, in effect)
//	drop      consume the request, then close without replying
//	delay     pause before forwarding, then behave like pass
//	truncate  forward the request, return half of the first response, die
//	stall     forward the request but never read the response — a stalled
//	          reader from the server's point of view, holding its write
//	          path until the action's Delay (or proxy close)
//	partition a one-directional (asymmetric) partition: requests reach the
//	          server and take effect, but responses are read and discarded,
//	          so the client sees a dead connection while the write applied —
//	          the "applied but unacknowledged" ambiguity repair must absorb
//
// SetDown flaps the whole proxy: live connections are severed and new ones
// refused until SetDown(false) — a full host outage on demand, used by the
// failover tests to kill a memory replica mid-run.
package chaos

import (
	"errors"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"math/rand"

	"nwscpu/internal/metrics"
)

// Fault names one failure mode the proxy can inject.
type Fault string

// The injectable faults.
const (
	Pass      Fault = "pass"
	Refuse    Fault = "refuse"
	Drop      Fault = "drop"
	Delay     Fault = "delay"
	Truncate  Fault = "truncate"
	Stall     Fault = "stall"
	Partition Fault = "partition"
)

// Connection outcomes counted beyond the scheduled faults: "down" is a
// connection refused because the proxy was flapped down.
const outcomeDown = "down"

var mChaosConns = metrics.NewCounterVec(
	"nws_chaos_connections_total",
	"Connections handled by the fault-injection proxy, by injected fault (down = refused while flapped down).", "fault")

// Action is one scheduled decision: the fault to inject on the next
// connection, plus the pause length when the fault is Delay.
type Action struct {
	Fault Fault
	Delay time.Duration
}

// Schedule yields the action for each accepted connection, in accept order.
// Implementations must be safe for concurrent use.
type Schedule interface {
	Next() Action
}

// Script replays a fixed sequence of actions, then passes everything
// through — the fully explicit way to stage a failure.
type Script struct {
	mu      sync.Mutex
	actions []Action
	i       int
}

// NewScript returns a Schedule replaying actions in order.
func NewScript(actions ...Action) *Script {
	return &Script{actions: actions}
}

// Next implements Schedule.
func (s *Script) Next() Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.i >= len(s.actions) {
		return Action{Fault: Pass}
	}
	a := s.actions[s.i]
	s.i++
	return a
}

// Seeded draws faults proportionally to the given weights from a seeded
// generator: the same seed and weights produce the same fault sequence.
// Faults absent from weights are never drawn; if all weights are zero it
// always passes. delay is the pause applied when Delay is drawn.
type Seeded struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults []Fault
	cum    []float64
	total  float64
	delay  time.Duration
}

// NewSeeded builds a seeded schedule over the weighted faults.
func NewSeeded(seed int64, delay time.Duration, weights map[Fault]float64) *Seeded {
	s := &Seeded{rng: rand.New(rand.NewSource(seed)), delay: delay}
	// Map iteration order is random; sort for a reproducible draw table.
	for f := range weights {
		s.faults = append(s.faults, f)
	}
	sort.Slice(s.faults, func(i, j int) bool { return s.faults[i] < s.faults[j] })
	for _, f := range s.faults {
		if w := weights[f]; w > 0 {
			s.total += w
		}
		s.cum = append(s.cum, s.total)
	}
	return s
}

// Next implements Schedule.
func (s *Seeded) Next() Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total <= 0 {
		return Action{Fault: Pass}
	}
	x := s.rng.Float64() * s.total
	for i, c := range s.cum {
		if x < c {
			return Action{Fault: s.faults[i], Delay: s.delay}
		}
	}
	return Action{Fault: Pass}
}

// Proxy is the fault-injection TCP proxy. Create with NewProxy, start with
// Listen, point clients at Addr.
type Proxy struct {
	target string
	sched  Schedule

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	down   bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewProxy returns a proxy forwarding to target under sched (nil = always
// pass through).
func NewProxy(target string, sched Schedule) *Proxy {
	return &Proxy{
		target: target,
		sched:  sched,
		conns:  make(map[net.Conn]struct{}),
		stop:   make(chan struct{}),
	}
}

// Listen binds addr (":0" for ephemeral) and starts proxying in background
// goroutines, returning the bound address.
func (p *Proxy) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		l.Close()
		return "", errors.New("chaos: proxy already closed")
	}
	p.ln = l
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(l)
	return l.Addr().String(), nil
}

// Addr returns the bound address ("" before Listen).
func (p *Proxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// SetDown flaps the proxy: down severs every live connection and refuses
// new ones until SetDown(false).
func (p *Proxy) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	var kill []net.Conn
	if down {
		for c := range p.conns {
			kill = append(kill, c)
		}
	}
	p.mu.Unlock()
	for _, c := range kill {
		c.Close()
	}
}

// Down reports whether the proxy is currently flapped down.
func (p *Proxy) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// Close stops the proxy and severs everything. It is idempotent.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.stop)
	l := p.ln
	var kill []net.Conn
	for c := range p.conns {
		kill = append(kill, c)
	}
	p.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	for _, c := range kill {
		c.Close()
	}
	p.wg.Wait()
	return err
}

// track registers a connection for SetDown/Close severing; the returned
// func unregisters and closes it.
func (p *Proxy) track(c net.Conn) func() {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return func() {
		c.Close()
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}
}

func (p *Proxy) acceptLoop(l net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		down := p.down
		p.mu.Unlock()
		if down {
			mChaosConns.With(outcomeDown).Inc()
			conn.Close()
			continue
		}
		action := Action{Fault: Pass}
		if p.sched != nil {
			action = p.sched.Next()
		}
		mChaosConns.With(string(action.Fault)).Inc()
		p.wg.Add(1)
		go p.handle(conn, action)
	}
}

func (p *Proxy) handle(client net.Conn, action Action) {
	defer p.wg.Done()
	untrack := p.track(client)
	defer untrack()

	switch action.Fault {
	case Refuse:
		return // deferred close is the fault
	case Drop:
		// Consume one request line, then vanish without a response.
		buf := make([]byte, 4096)
		for {
			n, err := client.Read(buf)
			if err != nil || containsNewline(buf[:n]) {
				return
			}
		}
	case Delay:
		t := time.NewTimer(action.Delay)
		select {
		case <-t.C:
		case <-p.stop:
			t.Stop()
			return
		}
	}

	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return // behaves like a dead server
	}
	unTrackUp := p.track(upstream)
	defer unTrackUp()

	if action.Fault == Truncate {
		p.truncate(client, upstream)
		return
	}
	if action.Fault == Stall {
		p.stall(client, upstream, action.Delay)
		return
	}
	if action.Fault == Partition {
		p.partition(client, upstream)
		return
	}

	// Full duplex pass-through; either side closing tears down both.
	done := make(chan struct{}, 2)
	go func() { io.Copy(upstream, client); upstream.Close(); done <- struct{}{} }()
	go func() { io.Copy(client, upstream); client.Close(); done <- struct{}{} }()
	<-done
	<-done
}

// truncate forwards the client's bytes upstream but returns only half of
// the first response chunk before severing the connection.
func (p *Proxy) truncate(client, upstream net.Conn) {
	go func() { io.Copy(upstream, client); upstream.Close() }()
	buf := make([]byte, 64<<10)
	n, err := upstream.Read(buf)
	if err != nil || n == 0 {
		return
	}
	client.Write(buf[:n/2])
}

// stall forwards the client's bytes upstream but never reads the response:
// the server sees a reader that stopped draining and must rely on its write
// deadline to shake the connection off. The stall holds for d (forever when
// d <= 0) or until the proxy closes.
func (p *Proxy) stall(client, upstream net.Conn, d time.Duration) {
	go func() { io.Copy(upstream, client); upstream.Close() }()
	var expire <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-expire:
	case <-p.stop:
	}
}

// partition forwards the client's bytes upstream but consumes and discards
// every response byte: a one-directional partition. Unlike stall, the
// server's writes complete normally (it never blocks or notices), so the
// request is fully applied server-side while the client times out waiting —
// the asymmetric-split case where a writer cannot tell "lost" from
// "applied but unacknowledged".
func (p *Proxy) partition(client, upstream net.Conn) {
	go func() { io.Copy(upstream, client); upstream.Close() }()
	io.Copy(io.Discard, upstream)
	client.Close()
}

func containsNewline(b []byte) bool {
	for _, c := range b {
		if c == '\n' {
			return true
		}
	}
	return false
}
