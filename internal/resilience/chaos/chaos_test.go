package chaos

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

// startEcho runs a line-echo TCP server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					c.Write([]byte(sc.Text() + "\n"))
				}
			}(c)
		}
	}()
	return l.Addr().String()
}

// exchange sends one line through addr and returns the reply line.
func exchange(t *testing.T, addr, line string) (string, error) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return "", err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte(line + "\n")); err != nil {
		return "", err
	}
	reply, err := bufio.NewReader(c).ReadString('\n')
	return strings.TrimSuffix(reply, "\n"), err
}

func startProxy(t *testing.T, target string, sched Schedule) *Proxy {
	t.Helper()
	p := NewProxy(target, sched)
	if _, err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestProxyPassThrough(t *testing.T) {
	p := startProxy(t, startEcho(t), nil)
	got, err := exchange(t, p.Addr(), "hello")
	if err != nil || got != "hello" {
		t.Fatalf("exchange = %q, %v", got, err)
	}
}

func TestScriptedFaultsInOrder(t *testing.T) {
	passes0 := mChaosConns.With(string(Pass)).Value()
	drops0 := mChaosConns.With(string(Drop)).Value()

	sched := NewScript(
		Action{Fault: Refuse},
		Action{Fault: Drop},
		Action{Fault: Pass},
	)
	p := startProxy(t, startEcho(t), sched)

	// Connection 1: refused — no reply, connection dies.
	if _, err := exchange(t, p.Addr(), "a"); err == nil {
		t.Fatal("refused connection delivered a reply")
	}
	// Connection 2: dropped — request consumed, no reply.
	if _, err := exchange(t, p.Addr(), "b"); err == nil {
		t.Fatal("dropped connection delivered a reply")
	}
	// Connection 3: passes; the script is exhausted so later ones pass too.
	for _, want := range []string{"c", "d"} {
		got, err := exchange(t, p.Addr(), want)
		if err != nil || got != want {
			t.Fatalf("post-script exchange = %q, %v", got, err)
		}
	}
	if got := mChaosConns.With(string(Pass)).Value() - passes0; got != 2 {
		t.Errorf("pass connections delta = %d, want 2", got)
	}
	if got := mChaosConns.With(string(Drop)).Value() - drops0; got != 1 {
		t.Errorf("drop connections delta = %d, want 1", got)
	}
}

func TestDelayFault(t *testing.T) {
	sched := NewScript(Action{Fault: Delay, Delay: 120 * time.Millisecond})
	p := startProxy(t, startEcho(t), sched)
	t0 := time.Now()
	got, err := exchange(t, p.Addr(), "slow")
	if err != nil || got != "slow" {
		t.Fatalf("delayed exchange = %q, %v", got, err)
	}
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Fatalf("delay not applied: took %v", d)
	}
}

func TestTruncateFault(t *testing.T) {
	sched := NewScript(Action{Fault: Truncate})
	p := startProxy(t, startEcho(t), sched)
	c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	msg := "a-reasonably-long-line-to-truncate"
	if _, err := c.Write([]byte(msg + "\n")); err != nil {
		t.Fatal(err)
	}
	// The reply must be cut short: no newline ever arrives.
	if reply, err := bufio.NewReader(c).ReadString('\n'); err == nil {
		t.Fatalf("truncated connection delivered a full line %q", reply)
	} else if len(reply) >= len(msg)+1 {
		t.Fatalf("reply %q not truncated", reply)
	}
}

func TestSetDownFlap(t *testing.T) {
	down0 := mChaosConns.With(outcomeDown).Value()
	p := startProxy(t, startEcho(t), nil)

	if _, err := exchange(t, p.Addr(), "up"); err != nil {
		t.Fatal(err)
	}
	p.SetDown(true)
	if !p.Down() {
		t.Fatal("Down() = false after SetDown(true)")
	}
	if _, err := exchange(t, p.Addr(), "down"); err == nil {
		t.Fatal("exchange succeeded while down")
	}
	p.SetDown(false)
	got, err := exchange(t, p.Addr(), "back")
	if err != nil || got != "back" {
		t.Fatalf("exchange after recovery = %q, %v", got, err)
	}
	if got := mChaosConns.With(outcomeDown).Value() - down0; got != 1 {
		t.Errorf("down-refusal delta = %d, want 1", got)
	}
}

func TestSetDownSeversLiveConnections(t *testing.T) {
	p := startProxy(t, startEcho(t), nil)
	c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("one\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(c)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	p.SetDown(true)
	// The established connection is dead: the next exchange fails.
	c.Write([]byte("two\n"))
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("exchange on severed connection succeeded")
	}
}

func TestSeededScheduleDeterministic(t *testing.T) {
	weights := map[Fault]float64{Pass: 3, Drop: 1, Refuse: 1}
	a := NewSeeded(42, 0, weights)
	b := NewSeeded(42, 0, weights)
	counts := map[Fault]int{}
	for i := 0; i < 200; i++ {
		fa, fb := a.Next(), b.Next()
		if fa != fb {
			t.Fatalf("draw %d: %v != %v with same seed", i, fa, fb)
		}
		counts[fa.Fault]++
	}
	if counts[Pass] == 0 || counts[Drop] == 0 || counts[Refuse] == 0 {
		t.Fatalf("weighted draws missing a fault: %v", counts)
	}
	if counts[Truncate] != 0 {
		t.Fatalf("unweighted fault drawn: %v", counts)
	}
	// Zero weights always pass.
	z := NewSeeded(1, 0, nil)
	if z.Next().Fault != Pass {
		t.Fatal("empty weights did not pass")
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	p := NewProxy(startEcho(t), nil)
	if _, err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("Listen after Close succeeded")
	}
}

func TestStallForwardsRequestButNeverResponds(t *testing.T) {
	// The request must reach the upstream (a stalled reader, not a dead
	// connection), but the client never sees the reply and times out.
	received := make(chan string, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		sc := bufio.NewScanner(c)
		if sc.Scan() {
			received <- sc.Text()
			c.Write([]byte("reply\n")) // sent, but the proxy never forwards it
		}
		// Hold the upstream side open like a real server would.
		for sc.Scan() {
		}
	}()

	p := startProxy(t, l.Addr().String(), NewScript(Action{Fault: Stall}))
	if _, err := exchange(t, p.Addr(), "hello"); err == nil {
		t.Fatal("stalled exchange returned a reply")
	}
	select {
	case got := <-received:
		if got != "hello" {
			t.Fatalf("upstream received %q, want %q", got, "hello")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request never reached the upstream through the stall")
	}
}

func TestPartitionAppliesRequestDropsResponse(t *testing.T) {
	// The asymmetric split: the request reaches the upstream and is fully
	// processed (the server's write succeeds — it never notices anything
	// wrong), but the response is consumed by the proxy and the client sees
	// a dead connection.
	received := make(chan string, 1)
	wrote := make(chan error, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					select {
					case received <- sc.Text():
					default:
					}
					_, err := c.Write([]byte(sc.Text() + "\n"))
					select {
					// must succeed: partition drains, unlike stall
					case wrote <- err:
					default:
					}
				}
			}(c)
		}
	}()

	p := startProxy(t, l.Addr().String(), NewScript(Action{Fault: Partition}))
	if reply, err := exchange(t, p.Addr(), "hello"); err == nil {
		t.Fatalf("partitioned exchange returned %q", reply)
	}
	select {
	case got := <-received:
		if got != "hello" {
			t.Fatalf("upstream received %q, want %q", got, "hello")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request never crossed the partition")
	}
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("upstream write failed through the partition: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("upstream write never completed")
	}
	// The scripted fault spent, later connections pass.
	if got, err := exchange(t, p.Addr(), "after"); err != nil || got != "after" {
		t.Fatalf("post-partition exchange = %q, %v; want pass-through", got, err)
	}
}

func TestPartitionSeededScheduleDraws(t *testing.T) {
	// Partition participates in seeded schedules like any other fault, and
	// identical seeds replay identical sequences.
	weights := map[Fault]float64{Pass: 1, Partition: 2}
	a := NewSeeded(7, 0, weights)
	b := NewSeeded(7, 0, weights)
	counts := map[Fault]int{}
	for i := 0; i < 100; i++ {
		fa, fb := a.Next(), b.Next()
		if fa != fb {
			t.Fatalf("draw %d: %v != %v with same seed", i, fa, fb)
		}
		counts[fa.Fault]++
	}
	if counts[Partition] == 0 || counts[Pass] == 0 {
		t.Fatalf("weighted draws missing a fault: %v", counts)
	}
}

func TestStallReleasesAtDelay(t *testing.T) {
	// With a bounded Delay the stall ends on its own: the connection is torn
	// down and the proxy keeps serving later connections normally.
	addr := startEcho(t)
	p := startProxy(t, addr, NewScript(Action{Fault: Stall, Delay: 50 * time.Millisecond}))
	if _, err := exchange(t, p.Addr(), "a"); err == nil {
		t.Fatal("stalled exchange returned a reply")
	}
	if got, err := exchange(t, p.Addr(), "b"); err != nil || got != "b" {
		t.Fatalf("post-stall exchange = %q, %v; want pass-through", got, err)
	}
}
