package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// virtualSleep records requested delays without waiting.
func virtualSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 5, Sleep: virtualSleep(&delays)}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(delays) != 2 {
		t.Fatalf("calls = %d, backoffs = %d; want 3 and 2", calls, len(delays))
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 4, Sleep: virtualSleep(&delays)}
	calls := 0
	sentinel := errors.New("still down")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if calls != 4 || len(delays) != 3 {
		t.Fatalf("calls = %d, backoffs = %d; want 4 and 3", calls, len(delays))
	}
}

func TestDoStopsOnTerminal(t *testing.T) {
	p := Policy{MaxAttempts: 5, Sleep: virtualSleep(new([]time.Duration))}
	calls := 0
	inner := errors.New("bad request")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(inner)
	})
	if calls != 1 {
		t.Fatalf("terminal error retried: %d calls", calls)
	}
	if !errors.Is(err, inner) || err.Error() != "bad request" {
		t.Fatalf("terminal error mangled: %v", err)
	}
	if !IsTerminal(err) {
		t.Fatal("IsTerminal lost through Do")
	}
	if IsTerminal(inner) {
		t.Fatal("unwrapped error reported terminal")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestDoHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 100}
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("transient")
	})
	if err == nil {
		t.Fatal("Do succeeded after cancel")
	}
	if calls > 3 {
		t.Fatalf("kept retrying after cancel: %d calls", calls)
	}
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	// A seeded Rand makes the jittered schedule reproducible.
	mk := func() Policy {
		rng := rand.New(rand.NewSource(7))
		return Policy{
			BaseDelay:  100 * time.Millisecond,
			MaxDelay:   time.Second,
			Multiplier: 2,
			Jitter:     0.2,
			Rand:       rng.Float64,
		}
	}
	a, b := mk(), mk()
	for i := 1; i <= 6; i++ {
		da, db := a.Delay(i), b.Delay(i)
		if da != db {
			t.Fatalf("attempt %d: %v != %v with same seed", i, da, db)
		}
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 750 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{100, 200, 400, 750, 750} // ms, capped
	for i, w := range want {
		if got := p.Delay(i + 1); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Jitter stays within the ± band.
	pj := Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5, Rand: rand.New(rand.NewSource(1)).Float64}
	for i := 0; i < 50; i++ {
		d := pj.Delay(1)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 150ms]", d)
		}
	}
}

func TestOnRetryObservesEachRetry(t *testing.T) {
	var seen []string
	p := Policy{
		MaxAttempts: 3,
		Sleep:       virtualSleep(new([]time.Duration)),
		OnRetry: func(attempt int, d time.Duration, err error) {
			seen = append(seen, fmt.Sprintf("%d:%v", attempt, err))
		},
	}
	_ = p.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	if len(seen) != 2 || seen[0] != "1:x" || seen[1] != "2:x" {
		t.Fatalf("OnRetry saw %v", seen)
	}
}

func TestDefaultClassifier(t *testing.T) {
	if DefaultClassifier(errors.New("dial tcp: refused")) != Retryable {
		t.Error("transport error not retryable")
	}
	if DefaultClassifier(Permanent(errors.New("bad"))) != Terminal {
		t.Error("permanent error not terminal")
	}
	if DefaultClassifier(fmt.Errorf("wrapped: %w", context.Canceled)) != Terminal {
		t.Error("cancellation not terminal")
	}
}
