package resilience

import (
	"context"
	"errors"
	"io"
	"time"
)

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = errors.New("resilience: pool closed")

// PoolConfig configures a Pool. Dial is required; everything else has a
// usable zero value.
type PoolConfig struct {
	// Dial creates a new connection. It must honor ctx.
	Dial func(ctx context.Context) (io.Closer, error)
	// HealthCheck, when non-nil, vets an idle connection at checkout;
	// returning false closes and discards it.
	HealthCheck func(c io.Closer) bool
	// MaxIdle bounds the connections parked for reuse (0 selects 2;
	// negative disables reuse entirely — every Put closes).
	MaxIdle int
	// MaxActive bounds checked-out connections; Get blocks (honoring ctx)
	// while the pool is at the limit. 0 means unlimited.
	MaxActive int
	// IdleTimeout reaps connections parked longer than this (0 = never).
	IdleTimeout time.Duration
	// Now is the clock used for idle accounting; nil selects time.Now.
	Now func() time.Time
	// OnChange, when non-nil, observes every idle/active count change —
	// the hook the callers use to keep pool gauges current. It is called
	// without internal locks held.
	OnChange func(idle, active int)
}

// Pool keeps a bounded set of reusable connections to one endpoint: Get
// hands out a parked healthy connection or dials a fresh one, Put parks it
// back (or closes it when unhealthy or surplus). Idle connections older
// than IdleTimeout are reaped lazily on the next Get or Put.
type Pool struct {
	cfg PoolConfig
	sem chan struct{} // nil when MaxActive == 0

	mu     chan struct{} // 1-buffered mutex; lets lock acquisition stay simple
	idle   []idleConn    // LIFO: most recently used last
	active int
	closed bool
}

type idleConn struct {
	c      io.Closer
	parked time.Time
}

// NewPool returns a pool over cfg.Dial. It panics if Dial is nil.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Dial == nil {
		panic("resilience: PoolConfig.Dial is required")
	}
	if cfg.MaxIdle == 0 {
		cfg.MaxIdle = 2
	} else if cfg.MaxIdle < 0 {
		cfg.MaxIdle = 0
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	p := &Pool{cfg: cfg, mu: make(chan struct{}, 1)}
	if cfg.MaxActive > 0 {
		p.sem = make(chan struct{}, cfg.MaxActive)
	}
	return p
}

func (p *Pool) lock()   { p.mu <- struct{}{} }
func (p *Pool) unlock() { <-p.mu }

// notify reports the current counts to OnChange (lock-free snapshot taken
// by the caller while still holding the lock).
func (p *Pool) notify(idle, active int) {
	if p.cfg.OnChange != nil {
		p.cfg.OnChange(idle, active)
	}
}

// reapLocked closes idle connections past their idle timeout, returning
// them for closing outside the lock.
func (p *Pool) reapLocked() []io.Closer {
	if p.cfg.IdleTimeout <= 0 || len(p.idle) == 0 {
		return nil
	}
	cutoff := p.cfg.Now().Add(-p.cfg.IdleTimeout)
	var dead []io.Closer
	kept := p.idle[:0]
	for _, ic := range p.idle {
		if ic.parked.Before(cutoff) {
			dead = append(dead, ic.c)
		} else {
			kept = append(kept, ic)
		}
	}
	p.idle = kept
	return dead
}

// Get returns a connection: a parked healthy one if available, otherwise a
// freshly dialed one. With MaxActive set it first waits for an in-flight
// slot, honoring ctx.
func (p *Pool) Get(ctx context.Context) (io.Closer, error) {
	if p.sem != nil {
		select {
		case p.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c, err := p.get(ctx)
	if err != nil && p.sem != nil {
		<-p.sem
	}
	return c, err
}

func (p *Pool) get(ctx context.Context) (io.Closer, error) {
	for {
		p.lock()
		if p.closed {
			p.unlock()
			return nil, ErrPoolClosed
		}
		dead := p.reapLocked()
		var cand io.Closer
		if n := len(p.idle); n > 0 {
			cand = p.idle[n-1].c
			p.idle = p.idle[:n-1]
		}
		if cand != nil {
			p.active++
		}
		idle, active := len(p.idle), p.active
		p.unlock()
		for _, c := range dead {
			c.Close()
		}
		if cand == nil {
			break
		}
		if p.cfg.HealthCheck != nil && !p.cfg.HealthCheck(cand) {
			cand.Close()
			p.lock()
			p.active--
			idle, active = len(p.idle), p.active
			p.unlock()
			p.notify(idle, active)
			continue // try the next parked connection
		}
		p.notify(idle, active)
		return cand, nil
	}

	c, err := p.cfg.Dial(ctx)
	if err != nil {
		return nil, err
	}
	p.lock()
	if p.closed {
		p.unlock()
		c.Close()
		return nil, ErrPoolClosed
	}
	p.active++
	idle, active := len(p.idle), p.active
	p.unlock()
	p.notify(idle, active)
	return c, nil
}

// Put returns a connection obtained from Get. Healthy connections are
// parked for reuse (newest first); unhealthy or surplus ones are closed.
func (p *Pool) Put(c io.Closer, healthy bool) {
	if p.sem != nil {
		defer func() { <-p.sem }()
	}
	p.lock()
	p.active--
	park := healthy && !p.closed && len(p.idle) < p.cfg.MaxIdle
	if park {
		p.idle = append(p.idle, idleConn{c: c, parked: p.cfg.Now()})
	}
	dead := p.reapLocked()
	idle, active := len(p.idle), p.active
	p.unlock()
	if !park {
		c.Close()
	}
	for _, d := range dead {
		d.Close()
	}
	p.notify(idle, active)
}

// Stats reports the current idle and checked-out connection counts.
func (p *Pool) Stats() (idle, active int) {
	p.lock()
	defer p.unlock()
	return len(p.idle), p.active
}

// Close closes every parked connection and fails future Gets. Connections
// currently checked out are closed by their eventual Put.
func (p *Pool) Close() error {
	p.lock()
	if p.closed {
		p.unlock()
		return nil
	}
	p.closed = true
	idleConns := p.idle
	p.idle = nil
	active := p.active
	p.unlock()
	for _, ic := range idleConns {
		ic.c.Close()
	}
	p.notify(0, active)
	return nil
}
