package resilience

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is the position of a circuit breaker.
type BreakerState int

// The breaker states. Numeric values are stable and exported as gauge
// values (higher is worse), so reorder only with the dashboards.
const (
	BreakerClosed   BreakerState = 0 // normal operation; outcomes fill the window
	BreakerHalfOpen BreakerState = 1 // a bounded number of probes may test the endpoint
	BreakerOpen     BreakerState = 2 // calls are denied without touching the endpoint
)

// String returns the conventional lower-case state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// ErrBreakerOpen is wrapped into errors returned for calls a breaker denied
// without attempting. Callers distinguish it with errors.Is: a denial is not
// an observation of the endpoint, so health tracking should ignore it.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerConfig configures a Breaker. The zero value selects the defaults
// noted on each field.
type BreakerConfig struct {
	// Window is the rolling count of recent call outcomes the failure rate
	// is computed over (0 selects 16).
	Window int
	// MinSamples is the minimum number of outcomes in the window before the
	// failure rate can trip the breaker (0 selects 5) — a single failed call
	// after an idle period should not open the circuit.
	MinSamples int
	// FailureRate opens the breaker when failures/window >= this fraction
	// (0 selects 0.5).
	FailureRate float64
	// OpenFor is how long the breaker stays open before moving to half-open
	// and admitting probes (0 selects 1 s). Negative means the breaker is
	// immediately eligible for half-open: an open circuit never delays a
	// sequential caller, it only bounds how many concurrent callers may
	// probe a sick endpoint at once — the right mode for a low-cadence
	// writer that must recover on its very next attempt.
	OpenFor time.Duration
	// Probes bounds the concurrent half-open probe calls (0 selects 1).
	Probes int
	// SuccessesToClose is how many probe successes close the breaker again
	// (0 selects 1).
	SuccessesToClose int
	// Now is the clock; nil selects time.Now. Tests inject a fake to step
	// through open→half-open transitions without sleeping.
	Now func() time.Time
	// OnTransition, when non-nil, observes every state change. It is called
	// with the breaker's lock held, so it must be fast and must not call
	// back into the breaker.
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.OpenFor == 0 {
		c.OpenFor = time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker over one endpoint: closed while the endpoint
// behaves, open (denying calls) after the recent failure rate trips it, and
// half-open — admitting a bounded number of probes — once OpenFor has
// elapsed. A probe success closes the circuit; a probe failure reopens it
// and restarts the clock.
//
// The breaker only decides and records; the caller maps its own outcomes
// onto Record (for the nwsnet client: transport errors and server "busy"
// sheds are failures, any other answered response is a success, because an
// answering server is alive even when it rejects the request).
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	window   []bool // ring of outcomes; true = failure
	head     int
	count    int
	failures int
	openedAt time.Time
	probing  int // probes admitted and not yet recorded (half-open)
	closeRun int // consecutive probe successes
}

// NewBreaker returns a closed breaker configured by cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// State reports the current position. An open breaker whose OpenFor has
// elapsed still reports open until the next Allow moves it to half-open.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transition moves to state to, notifying OnTransition. Callers hold b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

// resetWindow clears the outcome ring. Callers hold b.mu.
func (b *Breaker) resetWindow() {
	b.head, b.count, b.failures = 0, 0, 0
}

// Allow reports whether a call may proceed. Closed always allows. Open
// denies until OpenFor has elapsed, then becomes half-open. Half-open
// admits up to Probes concurrent calls; each admission is paired with the
// next Record, which releases the probe slot.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.OpenFor > 0 && b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = 0
		b.closeRun = 0
	}
	if b.probing >= b.cfg.Probes {
		return false
	}
	b.probing++
	return true
}

// Record feeds one call outcome back. While closed it advances the rolling
// window and opens the circuit when the failure rate trips; while half-open
// (or for a straggler recorded after the circuit opened) a success counts
// toward closing and a failure reopens the circuit and restarts OpenFor.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if b.count == len(b.window) {
			if b.window[b.head] {
				b.failures--
			}
		} else {
			b.count++
		}
		b.window[b.head] = !success
		b.head = (b.head + 1) % len(b.window)
		if !success {
			b.failures++
		}
		if b.count >= b.cfg.MinSamples &&
			float64(b.failures) >= b.cfg.FailureRate*float64(b.count) {
			b.transition(BreakerOpen)
			b.openedAt = b.cfg.Now()
			b.resetWindow()
		}
	case BreakerHalfOpen, BreakerOpen:
		// In half-open this is a probe result; while open it is a straggler
		// from a call admitted before the circuit opened — either way a
		// success is evidence the endpoint recovered and a failure restarts
		// the open timer.
		if b.probing > 0 {
			b.probing--
		}
		if success {
			b.closeRun++
			if b.closeRun >= b.cfg.SuccessesToClose {
				b.transition(BreakerClosed)
				b.resetWindow()
				b.probing = 0
				b.closeRun = 0
			}
			return
		}
		b.closeRun = 0
		b.transition(BreakerOpen)
		b.openedAt = b.cfg.Now()
	}
}
