package resilience

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeConn counts closes; the pool only needs io.Closer.
type fakeConn struct {
	id     int
	closed atomic.Bool
}

func (f *fakeConn) Close() error {
	f.closed.Store(true)
	return nil
}

// newFakeDialer returns a Dial func minting numbered fakeConns.
func newFakeDialer(dials *atomic.Int64) func(context.Context) (io.Closer, error) {
	return func(context.Context) (io.Closer, error) {
		n := dials.Add(1)
		return &fakeConn{id: int(n)}, nil
	}
}

func TestPoolReusesConnections(t *testing.T) {
	var dials atomic.Int64
	p := NewPool(PoolConfig{Dial: newFakeDialer(&dials)})
	ctx := context.Background()

	c1, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c1, true)
	c2, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("healthy parked connection not reused")
	}
	if dials.Load() != 1 {
		t.Fatalf("dials = %d, want 1", dials.Load())
	}
	p.Put(c2, false) // unhealthy: discarded
	if !c2.(*fakeConn).closed.Load() {
		t.Fatal("unhealthy connection not closed")
	}
	c3, _ := p.Get(ctx)
	if c3 == c2 || dials.Load() != 2 {
		t.Fatalf("unhealthy connection reused (dials = %d)", dials.Load())
	}
}

func TestPoolMaxIdle(t *testing.T) {
	var dials atomic.Int64
	p := NewPool(PoolConfig{Dial: newFakeDialer(&dials), MaxIdle: 1})
	ctx := context.Background()
	c1, _ := p.Get(ctx)
	c2, _ := p.Get(ctx)
	p.Put(c1, true)
	p.Put(c2, true) // surplus: closed, not parked
	if idle, _ := p.Stats(); idle != 1 {
		t.Fatalf("idle = %d, want 1", idle)
	}
	if !c2.(*fakeConn).closed.Load() {
		t.Fatal("surplus connection not closed")
	}
}

func TestPoolMaxActiveBlocks(t *testing.T) {
	var dials atomic.Int64
	p := NewPool(PoolConfig{Dial: newFakeDialer(&dials), MaxActive: 1})
	ctx := context.Background()
	c1, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// A second Get with an expired context must fail without dialing.
	shortCtx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if _, err := p.Get(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get over the in-flight limit: %v", err)
	}

	// Releasing the slot unblocks a waiting Get.
	got := make(chan io.Closer, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := p.Get(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		got <- c
	}()
	p.Put(c1, true)
	wg.Wait()
	select {
	case c := <-got:
		p.Put(c, true)
	default:
		t.Fatal("waiting Get never completed")
	}
}

func TestPoolIdleReap(t *testing.T) {
	var dials atomic.Int64
	now := time.Unix(0, 0)
	p := NewPool(PoolConfig{
		Dial:        newFakeDialer(&dials),
		IdleTimeout: time.Minute,
		Now:         func() time.Time { return now },
	})
	ctx := context.Background()
	c1, _ := p.Get(ctx)
	p.Put(c1, true)

	now = now.Add(2 * time.Minute)
	c2, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("expired idle connection handed out")
	}
	if !c1.(*fakeConn).closed.Load() {
		t.Fatal("expired idle connection not closed")
	}
	if dials.Load() != 2 {
		t.Fatalf("dials = %d, want 2", dials.Load())
	}
}

func TestPoolHealthCheckEvicts(t *testing.T) {
	var dials atomic.Int64
	sick := make(map[io.Closer]bool)
	p := NewPool(PoolConfig{
		Dial:        newFakeDialer(&dials),
		HealthCheck: func(c io.Closer) bool { return !sick[c] },
		MaxIdle:     4,
	})
	ctx := context.Background()
	c1, _ := p.Get(ctx)
	c2, _ := p.Get(ctx)
	p.Put(c1, true)
	p.Put(c2, true)
	sick[c2] = true // c2 is on top of the LIFO stack
	got, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != c1 {
		t.Fatalf("health check did not skip the sick connection")
	}
	if !c2.(*fakeConn).closed.Load() {
		t.Fatal("sick connection not closed")
	}
}

func TestPoolCloseAndStats(t *testing.T) {
	var dials atomic.Int64
	var lastIdle, lastActive atomic.Int64
	p := NewPool(PoolConfig{
		Dial: newFakeDialer(&dials),
		OnChange: func(idle, active int) {
			lastIdle.Store(int64(idle))
			lastActive.Store(int64(active))
		},
	})
	ctx := context.Background()
	c1, _ := p.Get(ctx)
	c2, _ := p.Get(ctx)
	if idle, active := p.Stats(); idle != 0 || active != 2 {
		t.Fatalf("Stats = (%d, %d), want (0, 2)", idle, active)
	}
	if lastActive.Load() != 2 {
		t.Fatalf("OnChange active = %d, want 2", lastActive.Load())
	}
	p.Put(c1, true)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !c1.(*fakeConn).closed.Load() {
		t.Fatal("parked connection not closed on Close")
	}
	if _, err := p.Get(ctx); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Get after Close: %v", err)
	}
	p.Put(c2, true) // returning after Close must close, not park
	if !c2.(*fakeConn).closed.Load() {
		t.Fatal("connection returned after Close not closed")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

func TestPoolConcurrentGets(t *testing.T) {
	var dials atomic.Int64
	p := NewPool(PoolConfig{Dial: newFakeDialer(&dials), MaxIdle: 8, MaxActive: 8})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, err := p.Get(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				p.Put(c, i%5 != 0)
			}
		}()
	}
	wg.Wait()
	idle, active := p.Stats()
	if active != 0 {
		t.Fatalf("active = %d after all Puts", active)
	}
	if idle > 8 {
		t.Fatalf("idle = %d exceeds MaxIdle", idle)
	}
}
