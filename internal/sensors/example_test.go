package sensors_test

import (
	"fmt"
	"math"

	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
)

// Measuring a simulated host with the paper's Equation 1 sensor.
func ExampleLoadAvgSensor() {
	host := simos.New(simos.DefaultConfig())
	host.Spawn(simos.ProcSpec{Name: "hog", Demand: math.Inf(1), WallLimit: 7200})
	host.RunUntil(600) // let the load average converge

	la := sensors.NewLoadAvgSensor(sensors.SimHost{H: host})
	fmt.Printf("availability ~50%%: %v\n", math.Abs(la.Measure()-0.5) < 0.05)
	// Output: availability ~50%: true
}

// The ground-truth test process of Equation 3.
func ExampleRunTest() {
	host := simos.New(simos.DefaultConfig())
	sh := sensors.SimHost{H: host}
	frac := sensors.RunTest(sh, 10) // idle machine: the process gets it all
	fmt.Printf("%.0f%%\n", frac*100)
	// Output: 100%
}
