package sensors

import "math"

// HybridConfig configures the NWS hybrid sensor.
type HybridConfig struct {
	// ProbeEvery is the number of Measure calls between probe runs; with
	// the paper's 10-second measurement cadence, 6 gives one probe per
	// minute.
	ProbeEvery int
	// ProbeLen is the probe's wall duration in seconds (1.5 in the paper —
	// experimentally the shortest useful probe).
	ProbeLen float64
	// DisableBias turns off the probe-difference bias correction; used by
	// the ablation benchmarks. The method selection still happens.
	DisableBias bool
	// BiasGain smooths the bias across probes: bias += gain*(newBias -
	// bias). The paper's sensor uses the latest probe difference raw
	// (gain 1.0); a single 1.5-second probe is a high-variance sample, so
	// this implementation defaults to 0.3, which cuts the bias noise on
	// bursty hosts while converging within ~10 probes on hosts with a
	// persistent skew (conundrum). Set 1.0 for the paper's exact behaviour.
	// Zero selects the default.
	BiasGain float64
}

// DefaultHybridConfig returns the configuration evaluated in the paper.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{ProbeEvery: 6, ProbeLen: 1.5, BiasGain: 0.3}
}

// HybridSensor is the NWS CPU sensor: it computes the load-average and
// vmstat availability estimates at every measurement epoch and, once per
// ProbeEvery epochs, runs a short full-priority probe process. Whichever
// passive method lands closest to the probe is used until the next probe,
// and the probe-vs-method difference is applied as an additive bias — this
// is what lets the hybrid see through nice-19 background load that the
// passive methods mistake for real contention.
type HybridSensor struct {
	host Host
	cfg  HybridConfig
	la   *LoadAvgSensor
	vm   *VmstatSensor

	count      int
	useLoadAvg bool
	bias       float64
}

// NewHybridSensor returns a hybrid sensor for h. It panics if cfg.ProbeEvery
// < 1 or cfg.ProbeLen <= 0.
func NewHybridSensor(h Host, cfg HybridConfig) *HybridSensor {
	if cfg.ProbeEvery < 1 {
		panic("sensors: HybridConfig.ProbeEvery must be >= 1")
	}
	if cfg.ProbeLen <= 0 {
		panic("sensors: HybridConfig.ProbeLen must be positive")
	}
	if cfg.BiasGain == 0 {
		cfg.BiasGain = 0.3
	}
	if cfg.BiasGain < 0 || cfg.BiasGain > 1 {
		panic("sensors: HybridConfig.BiasGain must be in (0,1]")
	}
	return &HybridSensor{
		host: h,
		cfg:  cfg,
		la:   NewLoadAvgSensor(h),
		vm:   NewVmstatSensor(h, 0),
	}
}

// Name implements Sensor.
func (s *HybridSensor) Name() string { return "nws_hybrid" }

// Measure implements Sensor. On probe epochs it runs the probe process —
// which blocks for ProbeLen of host time, exactly as intrusively as the real
// NWS sensor — and returns the probe's own observation; on the remaining
// epochs it returns the currently selected passive method plus bias.
func (s *HybridSensor) Measure() float64 {
	laV := s.la.Measure()
	vmV := s.vm.Measure()
	probeEpoch := s.count%s.cfg.ProbeEvery == 0
	s.count++

	if probeEpoch {
		p := s.host.RunSpin(s.cfg.ProbeLen)
		var newBias float64
		if math.Abs(laV-p) <= math.Abs(vmV-p) {
			s.useLoadAvg = true
			newBias = p - laV
		} else {
			s.useLoadAvg = false
			newBias = p - vmV
		}
		s.bias += s.cfg.BiasGain * (newBias - s.bias)
		if s.cfg.DisableBias {
			s.bias = 0
		}
		return clamp01(p)
	}

	v := vmV
	if s.useLoadAvg {
		v = laV
	}
	return clamp01(v + s.bias)
}

// SelectedMethod reports which passive method the last probe chose
// ("load_average" or "vmstat").
func (s *HybridSensor) SelectedMethod() string {
	if s.useLoadAvg {
		return "load_average"
	}
	return "vmstat"
}

// Bias reports the current additive bias.
func (s *HybridSensor) Bias() float64 { return s.bias }

var (
	_ Sensor = (*LoadAvgSensor)(nil)
	_ Sensor = (*VmstatSensor)(nil)
	_ Sensor = (*HybridSensor)(nil)
)
