package sensors

import (
	"math"
	"testing"

	"nwscpu/internal/simos"
)

func simhost() (SimHost, *simos.Host) {
	h := simos.New(simos.DefaultConfig())
	return SimHost{H: h}, h
}

func spin(wall float64) simos.ProcSpec {
	return simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: wall}
}

func TestLoadAvgSensorIdle(t *testing.T) {
	sh, h := simhost()
	h.RunUntil(60)
	s := NewLoadAvgSensor(sh)
	if got := s.Measure(); got < 0.99 {
		t.Fatalf("idle availability = %v, want ~1", got)
	}
	if s.Name() != "load_average" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestLoadAvgSensorOneSpinner(t *testing.T) {
	sh, h := simhost()
	h.Spawn(spin(3600))
	h.RunUntil(600)
	s := NewLoadAvgSensor(sh)
	got := s.Measure()
	if math.Abs(got-0.5) > 0.03 {
		t.Fatalf("availability with one spinner = %v, want ~0.5 (Eq. 1)", got)
	}
}

func TestLoadAvgSensorTwoSpinners(t *testing.T) {
	sh, h := simhost()
	h.Spawn(spin(3600))
	h.Spawn(spin(3600))
	h.RunUntil(600)
	got := NewLoadAvgSensor(sh).Measure()
	if math.Abs(got-1.0/3.0) > 0.03 {
		t.Fatalf("availability with two spinners = %v, want ~1/3", got)
	}
}

func TestVmstatSensorIdle(t *testing.T) {
	sh, h := simhost()
	s := NewVmstatSensor(sh, 0)
	h.RunUntil(10)
	s.Measure() // prime
	h.RunUntil(20)
	if got := s.Measure(); got < 0.99 {
		t.Fatalf("idle vmstat availability = %v, want ~1", got)
	}
}

func TestVmstatSensorOneSpinner(t *testing.T) {
	sh, h := simhost()
	h.Spawn(spin(3600))
	s := NewVmstatSensor(sh, 0)
	// Let the run-queue EWMA converge over several measurement epochs.
	var got float64
	for tt := 10.0; tt <= 300; tt += 10 {
		h.RunUntil(tt)
		got = s.Measure()
	}
	// user = 1, idle = 0, rq -> 1: avail = 0 + 1/2 + w*0 = 0.5.
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("vmstat availability with one spinner = %v, want ~0.5 (Eq. 2)", got)
	}
}

func TestVmstatSensorFirstCallNoInterval(t *testing.T) {
	sh, h := simhost()
	h.Spawn(spin(3600))
	h.RunUntil(10)
	s := NewVmstatSensor(sh, 0)
	got := s.Measure()
	if got < 0 || got > 1 {
		t.Fatalf("first measurement out of range: %v", got)
	}
}

func TestVmstatSensorSysTimeWeighting(t *testing.T) {
	// A pure-system-time hog (network gateway) should yield low availability:
	// with user ~ 0, w ~ 0, so the sys share is not counted as available.
	sh, h := simhost()
	h.Spawn(simos.ProcSpec{Name: "gw", Demand: math.Inf(1), WallLimit: 3600, SysFrac: 1.0})
	s := NewVmstatSensor(sh, 0)
	var got float64
	for tt := 10.0; tt <= 300; tt += 10 {
		h.RunUntil(tt)
		got = s.Measure()
	}
	if got > 0.1 {
		t.Fatalf("vmstat availability with kernel-bound hog = %v, want ~0", got)
	}
}

func TestVmstatGainDefaulting(t *testing.T) {
	sh, _ := simhost()
	for _, g := range []float64{0, -1, 2} {
		s := NewVmstatSensor(sh, g)
		if s.rqGain != 0.25 {
			t.Fatalf("gain %v not defaulted: %v", g, s.rqGain)
		}
	}
	if s := NewVmstatSensor(sh, 0.5); s.rqGain != 0.5 {
		t.Fatal("valid gain overridden")
	}
}

func TestSensorsAreBlindToNice(t *testing.T) {
	// Both passive sensors must report ~50% availability under a nice-19
	// soaker even though a full-priority process would get ~100% — the
	// conundrum misreading.
	sh, h := simhost()
	h.Spawn(simos.ProcSpec{Name: "soak", Nice: 19, Demand: math.Inf(1), WallLimit: 7200})
	la := NewLoadAvgSensor(sh)
	vm := NewVmstatSensor(sh, 0)
	var laV, vmV float64
	for tt := 10.0; tt <= 600; tt += 10 {
		h.RunUntil(tt)
		laV = la.Measure()
		vmV = vm.Measure()
	}
	if laV > 0.6 || vmV > 0.6 {
		t.Fatalf("passive sensors saw through nice load: la=%v vm=%v", laV, vmV)
	}
	truth := RunTest(sh, 10)
	if truth < 0.9 {
		t.Fatalf("test process fraction = %v, want ~1", truth)
	}
}

func TestHybridCorrectsNiceBias(t *testing.T) {
	sh, h := simhost()
	h.Spawn(simos.ProcSpec{Name: "soak", Nice: 19, Demand: math.Inf(1), WallLimit: 7200})
	h.RunUntil(600)
	hy := NewHybridSensor(sh, DefaultHybridConfig())
	var last float64
	for i := 0; i < 62; i++ { // ten probe cycles: lets the bias EWMA converge
		h.RunUntil(h.Now() + 10)
		last = hy.Measure()
	}
	if last < 0.85 {
		t.Fatalf("hybrid availability under nice soaker = %v, want ~1 (bias corrected)", last)
	}
	if hy.Bias() < 0.3 {
		t.Fatalf("bias = %v, want large positive", hy.Bias())
	}
}

func TestHybridFooledByLongRunner(t *testing.T) {
	// The kongo misreading: the 1.5s probe evicts a long-running hog and
	// sees ~100%, so the hybrid over-reports availability relative to what
	// a 10s test process obtains.
	sh, h := simhost()
	h.Spawn(spin(7200))
	h.RunUntil(600)
	hy := NewHybridSensor(sh, DefaultHybridConfig())
	var last float64
	for i := 0; i < 62; i++ { // ten probe cycles for the bias EWMA
		h.RunUntil(h.Now() + 10)
		last = hy.Measure()
	}
	truth := RunTest(sh, 10)
	if last-truth < 0.2 {
		t.Fatalf("hybrid (%v) should substantially over-report vs test process (%v)", last, truth)
	}
}

func TestHybridProbeCadence(t *testing.T) {
	sh, h := simhost()
	hy := NewHybridSensor(sh, HybridConfig{ProbeEvery: 3, ProbeLen: 1.5})
	start := h.Now()
	for i := 0; i < 9; i++ {
		h.RunUntil(h.Now() + 10)
		hy.Measure()
	}
	// 9 epochs with probes at 0, 3, 6: 3 probes * 1.5s of blocking each.
	elapsed := h.Now() - start
	want := 90.0 + 3*1.5
	if math.Abs(elapsed-want) > 0.1 {
		t.Fatalf("elapsed = %v, want %v (probe intrusiveness)", elapsed, want)
	}
}

func TestHybridDisableBias(t *testing.T) {
	sh, h := simhost()
	h.Spawn(simos.ProcSpec{Name: "soak", Nice: 19, Demand: math.Inf(1), WallLimit: 7200})
	h.RunUntil(600)
	cfg := DefaultHybridConfig()
	cfg.DisableBias = true
	hy := NewHybridSensor(sh, cfg)
	var last float64
	for i := 0; i < 12; i++ {
		h.RunUntil(h.Now() + 10)
		last = hy.Measure()
	}
	if hy.Bias() != 0 {
		t.Fatalf("bias = %v with DisableBias", hy.Bias())
	}
	if last > 0.7 {
		t.Fatalf("bias-disabled hybrid = %v, should be fooled like the passive methods", last)
	}
}

func TestHybridConfigValidation(t *testing.T) {
	sh, _ := simhost()
	for _, cfg := range []HybridConfig{
		{ProbeEvery: 0, ProbeLen: 1},
		{ProbeEvery: 6, ProbeLen: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			NewHybridSensor(sh, cfg)
		}()
	}
}

func TestHybridSelectedMethodReported(t *testing.T) {
	sh, h := simhost()
	hy := NewHybridSensor(sh, DefaultHybridConfig())
	h.RunUntil(10)
	hy.Measure()
	m := hy.SelectedMethod()
	if m != "load_average" && m != "vmstat" {
		t.Fatalf("SelectedMethod = %q", m)
	}
	if hy.Name() != "nws_hybrid" {
		t.Fatalf("Name = %q", hy.Name())
	}
}

func TestMeasurementsAlwaysInRange(t *testing.T) {
	sh, h := simhost()
	h.Spawn(spin(1800))
	h.Spawn(simos.ProcSpec{Name: "n", Nice: 10, Demand: math.Inf(1), WallLimit: 1800})
	ss := []Sensor{
		NewLoadAvgSensor(sh),
		NewVmstatSensor(sh, 0),
		NewHybridSensor(sh, DefaultHybridConfig()),
	}
	for i := 0; i < 60; i++ {
		h.RunUntil(h.Now() + 10)
		for _, s := range ss {
			v := s.Measure()
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s measurement out of range: %v", s.Name(), v)
			}
		}
	}
}

func TestRunTestGroundTruth(t *testing.T) {
	sh, h := simhost()
	h.Spawn(spin(3600))
	h.RunUntil(60)
	got := RunTest(sh, 10)
	if got < 0.4 || got > 0.75 {
		t.Fatalf("test process vs one spinner = %v, want ~0.5-0.7", got)
	}
}

func TestVmstatWeightModes(t *testing.T) {
	// A network-gateway-style hog: all CPU time is system time. The paper's
	// user-fraction weighting and w=0 report low availability (the kernel
	// won't yield interrupt work); w=1 wrongly promises a fair share.
	measure := func(weight SysWeight) float64 {
		sh, h := simhost()
		h.Spawn(simos.ProcSpec{Name: "gw", Demand: math.Inf(1), WallLimit: 3600, SysFrac: 1.0})
		s := NewVmstatSensorWeight(sh, 0, weight)
		var got float64
		for tt := 10.0; tt <= 300; tt += 10 {
			h.RunUntil(tt)
			got = s.Measure()
		}
		return got
	}
	paper := measure(WeightUserFraction)
	full := measure(WeightFull)
	none := measure(WeightNone)
	if paper > 0.1 || none > 0.1 {
		t.Fatalf("paper %v / none %v should be ~0 on a kernel-bound host", paper, none)
	}
	if full < 0.4 {
		t.Fatalf("w=1 = %v, should over-credit (~0.5)", full)
	}
}

func TestVmstatWeightModesAgreeOnUserLoad(t *testing.T) {
	// With pure user-time load the three weightings coincide.
	vals := make([]float64, 3)
	for i, weight := range []SysWeight{WeightUserFraction, WeightFull, WeightNone} {
		sh, h := simhost()
		h.Spawn(spin(3600))
		s := NewVmstatSensorWeight(sh, 0, weight)
		for tt := 10.0; tt <= 300; tt += 10 {
			h.RunUntil(tt)
			vals[i] = s.Measure()
		}
	}
	if math.Abs(vals[0]-vals[1]) > 1e-9 || math.Abs(vals[0]-vals[2]) > 1e-9 {
		t.Fatalf("weightings differ on pure user load: %v", vals)
	}
}
