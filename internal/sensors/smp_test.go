package sensors

import (
	"math"
	"testing"

	"nwscpu/internal/simos"
)

func smpSimhost(n int) (SimHost, *simos.Host) {
	cfg := simos.DefaultConfig()
	cfg.NumCPUs = n
	h := simos.New(cfg)
	return SimHost{H: h}, h
}

func TestSMPSensorReducesToEq1OnUniprocessor(t *testing.T) {
	sh, h := simhost()
	h.Spawn(spin(3600))
	h.RunUntil(600)
	naive := NewLoadAvgSensor(sh).Measure()
	smp := NewSMPLoadAvgSensor(sh).Measure()
	if math.Abs(naive-smp) > 1e-12 {
		t.Fatalf("N=1: naive %v != smp %v", naive, smp)
	}
}

func TestSMPSensorSeesSpareCPUs(t *testing.T) {
	// 4 CPUs, 2 spinners: load ~2, a new process gets a whole CPU.
	sh, h := smpSimhost(4)
	h.Spawn(spin(7200))
	h.Spawn(spin(7200))
	h.RunUntil(600)

	naive := NewLoadAvgSensor(sh).Measure()
	smp := NewSMPLoadAvgSensor(sh).Measure()
	truth := RunTest(sh, 10)

	if truth < 0.95 {
		t.Fatalf("ground truth on spare CPU = %v, want ~1", truth)
	}
	if naive > 0.5 {
		t.Fatalf("naive Eq.1 = %v, should under-report (~1/3)", naive)
	}
	if smp < 0.9 {
		t.Fatalf("SMP-corrected = %v, want ~1", smp)
	}
}

func TestSMPSensorSaturated(t *testing.T) {
	// 2 CPUs, 5 spinners: load ~5, a new process gets ~2/6 of a CPU.
	sh, h := smpSimhost(2)
	for i := 0; i < 5; i++ {
		h.Spawn(spin(7200))
	}
	h.RunUntil(600)
	smp := NewSMPLoadAvgSensor(sh).Measure()
	// A long test process: short ones carry the fresh-process priority
	// bonus (the kongo ramp) that inflates their share above steady state.
	truth := RunTest(sh, 60)
	if math.Abs(smp-truth) > 0.12 {
		t.Fatalf("saturated SMP estimate %v vs truth %v", smp, truth)
	}
}

func TestSMPSensorName(t *testing.T) {
	sh, _ := smpSimhost(2)
	if got := NewSMPLoadAvgSensor(sh).Name(); got != "load_average_smp" {
		t.Fatalf("Name = %q", got)
	}
}
