// Package sensors implements the paper's three CPU-availability measurement
// methods against an abstract Host: the Unix load-average method
// (Equation 1), the vmstat method (Equation 2), and the NWS hybrid sensor
// that arbitrates between them with a short full-priority probe process and
// corrects their bias. It also provides the ground-truth "test process"
// runner used to compute measurement error (Equation 3).
//
// Hosts come in two flavors: the deterministic simulator adapter in this
// package (SimHost) and the live-Linux /proc adapter in package prochost.
package sensors

import (
	"math"

	"nwscpu/internal/simos"
)

// CPUTimes is a snapshot of cumulative CPU-time accounting, in seconds.
// Nice is kept separate so tests can see it, but the vmstat sensor folds it
// into user time exactly as the classic utility does — which is what blinds
// it to nice-19 background load.
type CPUTimes struct {
	User  float64
	Nice  float64
	Sys   float64
	Idle  float64
	Total float64
}

// Host is the machine being measured. Implementations: SimHost (simulator)
// and prochost.Host (live Linux).
type Host interface {
	// Now returns the host clock in seconds.
	Now() float64
	// LoadAvg returns the 1-minute load average, as uptime reports.
	LoadAvg() float64
	// CPUTimes returns cumulative CPU accounting since boot.
	CPUTimes() CPUTimes
	// RunQueue returns the instantaneous number of runnable processes,
	// excluding the caller.
	RunQueue() int
	// RunSpin runs a full-priority CPU-bound process for the given wall
	// time and returns the fraction of the CPU it obtained. The call blocks
	// (and, on a simulated host, advances virtual time).
	RunSpin(wall float64) float64
	// NumCPUs returns the host's processor count (1 on the paper's
	// uniprocessor testbed).
	NumCPUs() int
}

// SimHost adapts a *simos.Host to the Host interface.
type SimHost struct {
	H *simos.Host
}

// Now implements Host.
func (s SimHost) Now() float64 { return s.H.Now() }

// LoadAvg implements Host.
func (s SimHost) LoadAvg() float64 { return s.H.LoadAvg() }

// CPUTimes implements Host.
func (s SimHost) CPUTimes() CPUTimes {
	c := s.H.Counters()
	return CPUTimes{User: c.User, Nice: c.Nice, Sys: c.Sys, Idle: c.Idle, Total: c.Total}
}

// RunQueue implements Host.
func (s SimHost) RunQueue() int { return s.H.RunQueue() }

// NumCPUs implements Host.
func (s SimHost) NumCPUs() int { return s.H.NumCPUs() }

// RunSpin implements Host.
func (s SimHost) RunSpin(wall float64) float64 {
	res := s.H.RunProcess(simos.ProcSpec{
		Name:      "spin",
		Demand:    math.Inf(1),
		WallLimit: wall,
	})
	return res.Fraction
}

// clamp01 confines an availability estimate to [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Sensor measures the current CPU availability of a host as a fraction in
// [0, 1].
type Sensor interface {
	// Name identifies the method in reports ("load_average", "vmstat",
	// "nws_hybrid").
	Name() string
	// Measure produces the next availability measurement. Sensors are
	// stateful (smoothing, counter deltas, probe bias) and must be called
	// at the cadence they were configured for.
	Measure() float64
}

// LoadAvgSensor implements Equation 1:
//
//	avail = 1 / (loadavg + 1)
type LoadAvgSensor struct {
	host Host
}

// NewLoadAvgSensor returns the load-average sensor for h.
func NewLoadAvgSensor(h Host) *LoadAvgSensor { return &LoadAvgSensor{host: h} }

// Name implements Sensor.
func (s *LoadAvgSensor) Name() string { return "load_average" }

// Measure implements Sensor.
func (s *LoadAvgSensor) Measure() float64 {
	return clamp01(1 / (s.host.LoadAvg() + 1))
}

// VmstatSensor implements Equation 2:
//
//	avail = idle + user/(rq+1) + w*sys/(rq+1)
//
// where user/sys/idle are the fractions of CPU time over the interval since
// the previous measurement (nice time folded into user, as vmstat displays
// it), rq is an exponentially smoothed run-queue length, and the weight w is
// the user fraction — kernels busy with interrupt work (high system time,
// low user time) do not share system time fairly with new processes.
type VmstatSensor struct {
	host    Host
	prev    CPUTimes
	rq      float64
	rqGain  float64
	weight  SysWeight
	started bool
}

// SysWeight selects how Equation 2 weights kernel (system) time when
// crediting a new process's fair share.
type SysWeight int

const (
	// WeightUserFraction is the paper's choice: w equals the user-time
	// fraction, reflecting that kernels busy with interrupt work (network
	// gateways) do not share system time fairly.
	WeightUserFraction SysWeight = iota
	// WeightFull counts the full fair share of system time (w = 1).
	WeightFull
	// WeightNone ignores system time entirely (w = 0).
	WeightNone
)

// NewVmstatSensor returns the vmstat sensor for h with the paper's
// user-fraction system-time weighting. rqGain is the smoothing gain for the
// run-queue average (0.25 default when 0 is passed).
func NewVmstatSensor(h Host, rqGain float64) *VmstatSensor {
	return NewVmstatSensorWeight(h, rqGain, WeightUserFraction)
}

// NewVmstatSensorWeight is NewVmstatSensor with an explicit system-time
// weighting mode, for the ablation studies of the Equation 2 design choice.
func NewVmstatSensorWeight(h Host, rqGain float64, weight SysWeight) *VmstatSensor {
	if rqGain <= 0 || rqGain > 1 {
		rqGain = 0.25
	}
	return &VmstatSensor{host: h, rqGain: rqGain, weight: weight}
}

// Name implements Sensor.
func (s *VmstatSensor) Name() string { return "vmstat" }

// Measure implements Sensor.
func (s *VmstatSensor) Measure() float64 {
	cur := s.host.CPUTimes()
	rqNow := float64(s.host.RunQueue())
	if !s.started {
		s.started = true
		s.prev = cur
		s.rq = rqNow
		// No interval yet: report from the run queue alone, like a first
		// vmstat line.
		return clamp01(1 / (rqNow + 1))
	}
	dTotal := cur.Total - s.prev.Total
	if dTotal <= 0 {
		// Clock did not advance; repeat previous smoothing state.
		return clamp01(1 / (s.rq + 1))
	}
	user := (cur.User - s.prev.User + cur.Nice - s.prev.Nice) / dTotal
	sys := (cur.Sys - s.prev.Sys) / dTotal
	idle := (cur.Idle - s.prev.Idle) / dTotal
	s.prev = cur
	s.rq += s.rqGain * (rqNow - s.rq)

	var w float64
	switch s.weight {
	case WeightFull:
		w = 1
	case WeightNone:
		w = 0
	default:
		w = user // fairly shared system time tracks the user fraction
	}
	avail := idle + user/(s.rq+1) + w*sys/(s.rq+1)
	return clamp01(avail)
}

// SMPLoadAvgSensor generalizes Equation 1 to a shared-memory multiprocessor
// (the paper's stated future work): with N CPUs and load average L, a newly
// created full-priority process expects
//
//	avail = min(1, N / (L + 1))
//
// of one processor. On N = 1 this reduces exactly to Equation 1.
type SMPLoadAvgSensor struct {
	host Host
}

// NewSMPLoadAvgSensor returns the multiprocessor-corrected load-average
// sensor for h.
func NewSMPLoadAvgSensor(h Host) *SMPLoadAvgSensor { return &SMPLoadAvgSensor{host: h} }

// Name implements Sensor.
func (s *SMPLoadAvgSensor) Name() string { return "load_average_smp" }

// Measure implements Sensor.
func (s *SMPLoadAvgSensor) Measure() float64 {
	n := float64(s.host.NumCPUs())
	if n < 1 {
		n = 1
	}
	return clamp01(n / (s.host.LoadAvg() + 1))
}

var _ Sensor = (*SMPLoadAvgSensor)(nil)

// RunTest executes the paper's ground-truth test process: a full-priority
// CPU-bound process spinning for the given wall time, reporting the fraction
// of the CPU it obtained (getrusage over wall-clock). The paper uses 10 s
// for the short-term experiments and 5 minutes for the medium-term ones.
func RunTest(h Host, wall float64) float64 {
	return h.RunSpin(wall)
}
