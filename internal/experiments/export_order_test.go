package experiments

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"nwscpu/internal/series"
)

// TestExportWalksHostsInSortedOrder pins the emitter-determinism fix:
// Export must walk its host maps in sorted key order, not map-iteration
// order, so same-seed runs produce their artifacts in the same sequence.
// The observable is file creation time: with a dozen hosts inserted in
// scrambled order, creation times must be non-decreasing along the sorted
// names (ties allowed; a map-order walk violates the monotonicity with
// overwhelming probability).
func TestExportWalksHostsInSortedOrder(t *testing.T) {
	s := NewSuite(QuickConfig())
	hosts := []string{"mira", "zeus", "ada", "kilo", "quux", "brahe", "yarn", "echo", "nova", "lima", "xray", "gauss"}
	for _, h := range hosts {
		w := series.FromValues(h+" week", 0, 10, []float64{0.5, 0.6, 0.7})
		s.week[h] = w
	}
	dir := t.TempDir()
	n, err := s.Export(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(hosts) {
		t.Fatalf("exported %d files, want %d", n, len(hosts))
	}
	sorted := append([]string(nil), hosts...)
	sort.Strings(sorted)
	var last string
	for i := 1; i < len(sorted); i++ {
		prev, err := os.Stat(filepath.Join(dir, sorted[i-1]+"_week.csv"))
		if err != nil {
			t.Fatal(err)
		}
		cur, err := os.Stat(filepath.Join(dir, sorted[i]+"_week.csv"))
		if err != nil {
			t.Fatal(err)
		}
		if cur.ModTime().Before(prev.ModTime()) {
			t.Fatalf("%s_week.csv written before %s_week.csv: export order is not sorted (last ok: %q)",
				sorted[i], sorted[i-1], last)
		}
		last = sorted[i]
	}
}
