package experiments

import (
	"fmt"
	"strings"

	"nwscpu/internal/core"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

// CadenceRow reports the measurement and prediction quality of one sensing
// period on one host.
type CadenceRow struct {
	Host       string
	Period     float64 // sensing period in seconds
	MeasErr    float64 // load-average measurement error (Eq. 3)
	OneStepErr float64 // one-step prediction error (Eq. 5)
	Points     int     // measurements collected
	ProbeShare float64 // fraction of wall time consumed by hybrid probes
}

// ExtensionCadence sweeps the sensing period on one host: the paper fixes
// 10-second measurements, and this experiment shows the trade-off that
// choice sits on — slower cadences are cheaper (fewer probes) but each
// measurement is staler when the test process arrives, and the one-step
// horizon covers more change.
func (s *Suite) ExtensionCadence(host string, periods []float64) ([]CadenceRow, error) {
	rows := make([]CadenceRow, 0, len(periods))
	for _, period := range periods {
		if period <= 0 {
			return nil, fmt.Errorf("experiments: invalid sensing period %v", period)
		}
		p, err := profileFor(host, s.cfg.Duration)
		if err != nil {
			return nil, err
		}
		h := simos.New(simos.DefaultConfig())
		workload.Submit(h, p.Generate(s.cfg.Duration+600))

		mcfg := scaleMonitorCfg(core.ShortTermConfig(), s.cfg.Duration)
		mcfg.MeasurePeriod = period
		// Keep one probe per minute regardless of cadence, as the NWS does.
		probeEvery := int(60 / period)
		if probeEvery < 1 {
			probeEvery = 1
		}
		mcfg.Hybrid = sensors.DefaultHybridConfig()
		mcfg.Hybrid.ProbeEvery = probeEvery

		m := core.NewMonitor(sensors.SimHost{H: h}, mcfg)
		if err := m.Run(s.cfg.Duration); err != nil {
			return nil, err
		}
		meas := m.Measurements[core.MethodLoadAvg]
		me, err := core.MeasurementError(meas, m.Tests)
		if err != nil {
			return nil, err
		}
		ose, err := core.OneStepError(meas)
		if err != nil {
			return nil, err
		}
		probes := float64(meas.Len()) / float64(probeEvery)
		rows = append(rows, CadenceRow{
			Host:       host,
			Period:     period,
			MeasErr:    me,
			OneStepErr: ose,
			Points:     meas.Len(),
			ProbeShare: probes * mcfg.Hybrid.ProbeLen / s.cfg.Duration,
		})
	}
	return rows, nil
}

// FormatCadence renders the cadence sweep.
func FormatCadence(rows []CadenceRow) string {
	var b strings.Builder
	b.WriteString("Extension: sensing-period sweep (load-average method)\n")
	fmt.Fprintf(&b, "%-12s %-10s %-12s %-14s %-8s %-10s\n",
		"Host", "period", "meas err", "one-step err", "points", "probe cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-10s %-12s %-14s %-8d %.2f%%\n",
			r.Host,
			fmt.Sprintf("%.0fs", r.Period),
			fmt.Sprintf("%.1f%%", r.MeasErr*100),
			fmt.Sprintf("%.2f%%", r.OneStepErr*100),
			r.Points,
			r.ProbeShare*100)
	}
	return b.String()
}
