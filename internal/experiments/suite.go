// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated testbed: the six host profiles are run under
// their workloads while the NWS monitor measures them, and each experiment
// reduces the recorded series with the analyses of packages core and stats.
//
// A Suite caches the expensive monitored runs so that all tables derived
// from the same 24-hour traces (Tables 1, 2, 3, 5 and the variance half of
// Table 4) share one simulation per host, exactly as the paper derives its
// tables from one set of traces.
package experiments

import (
	"fmt"
	"sync"

	"nwscpu/internal/core"
	"nwscpu/internal/sensors"
	"nwscpu/internal/series"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

// Config scales the experiments. The paper's dimensions are the defaults;
// tests shrink them.
type Config struct {
	// Duration of the monitored runs in seconds (paper: 24 hours).
	Duration float64
	// WeekDuration of the unmonitored load-average traces used for Hurst
	// estimation (paper: one week).
	WeekDuration float64
	// Parallel runs host simulations concurrently (one goroutine per host).
	Parallel bool
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{Duration: 86400, WeekDuration: 7 * 86400, Parallel: true}
}

// QuickConfig returns a configuration small enough for unit tests while
// still exercising every code path (tests and probes included).
func QuickConfig() Config {
	return Config{Duration: 4000, WeekDuration: 20000, Parallel: true}
}

// HostNames lists the six hosts in the paper's table order.
var HostNames = []string{"thing2", "thing1", "conundrum", "beowulf", "gremlin", "kongo"}

// Suite owns the cached simulation runs for one Config.
type Suite struct {
	cfg Config

	mu     sync.Mutex
	short  map[string]*core.Monitor  // 10 s tests every 10 min
	medium map[string]*core.Monitor  // 5 min tests every hour
	week   map[string]*series.Series // load-average availability, 1 week
}

// NewSuite returns an empty suite for cfg.
func NewSuite(cfg Config) *Suite {
	if cfg.Duration <= 0 || cfg.WeekDuration <= 0 {
		panic("experiments: Config durations must be positive")
	}
	return &Suite{
		cfg:    cfg,
		short:  make(map[string]*core.Monitor),
		medium: make(map[string]*core.Monitor),
		week:   make(map[string]*series.Series),
	}
}

// profileFor returns the workload profile for a host name over a duration.
func profileFor(name string, duration float64) (workload.Profile, error) {
	for _, p := range workload.Profiles(duration) {
		if p.Name == name {
			return p, nil
		}
	}
	return workload.Profile{}, fmt.Errorf("experiments: unknown host %q", name)
}

// scaleMonitorCfg shrinks test cadence for very short runs so that even
// QuickConfig runs include several test processes.
func scaleMonitorCfg(base core.MonitorConfig, duration float64) core.MonitorConfig {
	for duration < 4*base.TestPeriod && base.TestPeriod > 60 && base.TestPeriod/2 >= 4*base.TestLen {
		base.TestPeriod /= 2
	}
	return base
}

// Short returns (running if needed) the short-term monitored run of a host.
func (s *Suite) Short(host string) (*core.Monitor, error) {
	return s.monitored(host, s.short, core.ShortTermConfig())
}

// Medium returns the medium-term monitored run (5-minute test processes).
func (s *Suite) Medium(host string) (*core.Monitor, error) {
	return s.monitored(host, s.medium, core.MediumTermConfig())
}

func (s *Suite) monitored(host string, cache map[string]*core.Monitor, mcfg core.MonitorConfig) (*core.Monitor, error) {
	s.mu.Lock()
	if m, ok := cache[host]; ok {
		s.mu.Unlock()
		return m, nil
	}
	s.mu.Unlock()

	p, err := profileFor(host, s.cfg.Duration)
	if err != nil {
		return nil, err
	}
	h := simos.New(simos.DefaultConfig())
	workload.Submit(h, p.Generate(s.cfg.Duration+600))
	m := core.NewMonitor(sensors.SimHost{H: h}, scaleMonitorCfg(mcfg, s.cfg.Duration))
	if err := m.Run(s.cfg.Duration); err != nil {
		return nil, fmt.Errorf("experiments: monitoring %s: %w", host, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := cache[host]; ok { // another goroutine won the race
		return prev, nil
	}
	cache[host] = m
	return m, nil
}

// Week returns the one-week load-average availability trace of a host,
// sampled every 10 seconds with no probes or test processes (the traces
// behind Figure 3 and Table 4's Hurst estimates).
func (s *Suite) Week(host string) (*series.Series, error) {
	s.mu.Lock()
	if w, ok := s.week[host]; ok {
		s.mu.Unlock()
		return w, nil
	}
	s.mu.Unlock()

	p, err := profileFor(host, s.cfg.WeekDuration)
	if err != nil {
		return nil, err
	}
	h := simos.New(simos.DefaultConfig())
	workload.Submit(h, p.Generate(s.cfg.WeekDuration+600))
	sh := sensors.SimHost{H: h}
	la := sensors.NewLoadAvgSensor(sh)
	trace := series.New(host+"/week/load_average", "fraction")
	for t := 10.0; t <= s.cfg.WeekDuration; t += 10 {
		h.RunUntil(t)
		if err := trace.Append(t, la.Measure()); err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.week[host]; ok {
		return prev, nil
	}
	s.week[host] = trace
	return trace, nil
}

// Prefetch runs all cached simulations for the named hosts up front,
// in parallel when the Config allows. kinds selects which runs: any
// combination of "short", "medium", "week".
func (s *Suite) Prefetch(hosts []string, kinds ...string) error {
	type job struct {
		host, kind string
	}
	var jobs []job
	for _, h := range hosts {
		for _, k := range kinds {
			jobs = append(jobs, job{h, k})
		}
	}
	run := func(j job) error {
		switch j.kind {
		case "short":
			_, err := s.Short(j.host)
			return err
		case "medium":
			_, err := s.Medium(j.host)
			return err
		case "week":
			_, err := s.Week(j.host)
			return err
		default:
			return fmt.Errorf("experiments: unknown prefetch kind %q", j.kind)
		}
	}
	if !s.cfg.Parallel {
		for _, j := range jobs {
			if err := run(j); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		go func(j job) { errs <- run(j) }(j)
	}
	var first error
	for range jobs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
