package experiments

import (
	"fmt"
	"strings"

	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

// SMPRow holds the measurement errors on one multiprocessor configuration:
// the naive Equation 1 (which assumes one CPU) versus the SMP-corrected
// variant avail = min(1, N/(load+1)).
type SMPRow struct {
	CPUs      int
	NaiveErr  float64 // Eq. 1 measurement error
	SMPErr    float64 // SMP-corrected measurement error
	MeanAvail float64 // mean availability the test processes observed
}

// ExtensionSMP runs the paper's stated future work: CPU availability
// measurement on shared-memory multiprocessors. One beowulf-class workload
// is scaled by the CPU count and run on 1-, 2- and 4-way hosts; a 10-second
// test process provides ground truth. On N = 1 the two sensors coincide;
// as N grows, naive Equation 1 increasingly under-reports availability
// (load 2 on a 4-way machine still leaves idle processors) while the
// corrected form stays accurate.
func (s *Suite) ExtensionSMP(cpuCounts []int) ([]SMPRow, error) {
	rows := make([]SMPRow, 0, len(cpuCounts))
	for _, n := range cpuCounts {
		if n < 1 {
			return nil, fmt.Errorf("experiments: invalid CPU count %d", n)
		}
		cfg := simos.DefaultConfig()
		cfg.NumCPUs = n
		h := simos.New(cfg)

		// Scale the job stream with the CPU count so utilization per CPU
		// stays comparable.
		p := workload.Beowulf()
		p.JobRate *= float64(n)
		workload.Submit(h, p.Generate(s.cfg.Duration+600))

		sh := sensors.SimHost{H: h}
		naive := sensors.NewLoadAvgSensor(sh)
		smp := sensors.NewSMPLoadAvgSensor(sh)

		var naiveSum, smpSum, availSum float64
		tests := 0
		testEvery := s.cfg.Duration / 40 // 40 ground-truth points per config
		if testEvery < 30 {
			testEvery = 30
		}
		for t := testEvery; t <= s.cfg.Duration; t += testEvery {
			h.RunUntil(t)
			nv := naive.Measure()
			sv := smp.Measure()
			truth := sensors.RunTest(sh, 10)
			naiveSum += abs(nv - truth)
			smpSum += abs(sv - truth)
			availSum += truth
			tests++
		}
		if tests == 0 {
			return nil, fmt.Errorf("experiments: SMP run too short for any tests")
		}
		rows = append(rows, SMPRow{
			CPUs:      n,
			NaiveErr:  naiveSum / float64(tests),
			SMPErr:    smpSum / float64(tests),
			MeanAvail: availSum / float64(tests),
		})
	}
	return rows, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FormatSMP renders the SMP extension table.
func FormatSMP(rows []SMPRow) string {
	var b strings.Builder
	b.WriteString("Extension: CPU availability measurement on shared-memory multiprocessors\n")
	fmt.Fprintf(&b, "%-6s %-18s %-18s %-12s\n", "CPUs", "Eq.1 (naive) err", "SMP-corrected err", "mean avail")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-18s %-18s %.1f%%\n",
			r.CPUs,
			fmt.Sprintf("%.1f%%", r.NaiveErr*100),
			fmt.Sprintf("%.1f%%", r.SMPErr*100),
			r.MeanAvail*100)
	}
	return b.String()
}
