package experiments

import (
	"fmt"
	"strings"

	"nwscpu/internal/forecast"
)

// ForecasterExtRow compares the paper's forecaster bank with the extended
// bank (AR fits plus a daily-cycle seasonal predictor) on one host's
// week-long availability trace.
type ForecasterExtRow struct {
	Host        string
	DefaultMAE  float64
	ExtendedMAE float64
	BestDefault string // best single member of the default bank
	BestExt     string // best single member of the extended bank
}

// ExtensionForecasters evaluates the beyond-the-paper forecaster bank over
// the week traces of the given hosts. The seasonal period is one day in
// samples when the trace spans at least three days, else a quarter of the
// trace (so the predictor still sees multiple periods at test scale).
func (s *Suite) ExtensionForecasters(hosts []string) ([]ForecasterExtRow, error) {
	const samplePeriod = 10.0
	day := int(86400 / samplePeriod)
	rows := make([]ForecasterExtRow, 0, len(hosts))
	for _, host := range hosts {
		week, err := s.Week(host)
		if err != nil {
			return nil, err
		}
		vals := week.Values()
		period := day
		if len(vals) < 3*day {
			period = len(vals) / 4
		}
		if period < 2 {
			return nil, fmt.Errorf("experiments: trace for %s too short for seasonal analysis", host)
		}

		defRes, defReport, err := forecast.EvaluateEngine(forecast.NewDefaultEngine, vals)
		if err != nil {
			return nil, err
		}
		extRes, extReport, err := forecast.EvaluateEngine(func() *forecast.Engine {
			return forecast.NewExtendedEngine(period)
		}, vals)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ForecasterExtRow{
			Host:        host,
			DefaultMAE:  defRes.MAE,
			ExtendedMAE: extRes.MAE,
			BestDefault: defReport[0].Name,
			BestExt:     extReport[0].Name,
		})
	}
	return rows, nil
}

// FormatForecasterExt renders the extension comparison.
func FormatForecasterExt(rows []ForecasterExtRow) string {
	var b strings.Builder
	b.WriteString("Extension: default vs extended (AR + seasonal) forecaster bank, week traces\n")
	fmt.Fprintf(&b, "%-12s %-14s %-14s %-16s %-16s\n",
		"Host", "default MAE", "extended MAE", "best (default)", "best (extended)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-14s %-14s %-16s %-16s\n",
			r.Host,
			fmt.Sprintf("%.2f%%", r.DefaultMAE*100),
			fmt.Sprintf("%.2f%%", r.ExtendedMAE*100),
			r.BestDefault, r.BestExt)
	}
	return b.String()
}
