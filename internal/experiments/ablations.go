package experiments

import (
	"fmt"
	"math"

	"nwscpu/internal/core"
	"nwscpu/internal/forecast"
	"nwscpu/internal/sched"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

// Ablation experiments for the design choices DESIGN.md calls out. Each
// returns a small report struct with a String method so the bench harness
// and the CLI can print them directly.

// MixtureAblation compares the dynamic NWS mixture against every individual
// forecaster on one host's hybrid measurement series.
type MixtureAblation struct {
	Host       string
	EngineMAE  float64
	BestMethod string
	BestMAE    float64
	Methods    []forecast.MethodError
}

// String summarizes the comparison.
func (a MixtureAblation) String() string {
	return fmt.Sprintf("mixture ablation on %s: engine MAE %.4f vs best single %q %.4f (of %d methods)",
		a.Host, a.EngineMAE, a.BestMethod, a.BestMAE, len(a.Methods))
}

// AblationMixture evaluates the mixture-vs-members claim on a host.
func (s *Suite) AblationMixture(host string) (MixtureAblation, error) {
	m, err := s.Short(host)
	if err != nil {
		return MixtureAblation{}, err
	}
	vals := m.Measurements[core.MethodHybrid].Values()
	res, report, err := forecast.EvaluateEngine(forecast.NewDefaultEngine, vals)
	if err != nil {
		return MixtureAblation{}, err
	}
	return MixtureAblation{
		Host:       host,
		EngineMAE:  res.MAE,
		BestMethod: report[0].Name,
		BestMAE:    report[0].MAE,
		Methods:    report,
	}, nil
}

// BiasAblation reports the hybrid sensor's measurement error with and
// without the probe bias correction on one host.
type BiasAblation struct {
	Host        string
	WithBias    float64
	WithoutBias float64
}

// String summarizes the comparison.
func (a BiasAblation) String() string {
	return fmt.Sprintf("bias ablation on %s: hybrid error %.1f%% with bias, %.1f%% without",
		a.Host, a.WithBias*100, a.WithoutBias*100)
}

// AblationBias runs the bias on/off comparison. The duration comes from the
// suite Config. It matters most on conundrum, where the bias is the whole
// trick.
func (s *Suite) AblationBias(host string) (BiasAblation, error) {
	with, err := s.hybridError(host, sensors.DefaultHybridConfig())
	if err != nil {
		return BiasAblation{}, err
	}
	cfg := sensors.DefaultHybridConfig()
	cfg.DisableBias = true
	without, err := s.hybridError(host, cfg)
	if err != nil {
		return BiasAblation{}, err
	}
	return BiasAblation{Host: host, WithBias: with, WithoutBias: without}, nil
}

// ProbeLenAblation reports the hybrid measurement error as a function of
// probe duration on one host. On kongo, longer probes contend long enough
// with the resident job to see its presence — the fix the paper sketches,
// bought with extra intrusiveness.
type ProbeLenAblation struct {
	Host   string
	Lens   []float64
	Errors []float64
}

// String summarizes the sweep.
func (a ProbeLenAblation) String() string {
	out := fmt.Sprintf("probe-length ablation on %s:", a.Host)
	for i, l := range a.Lens {
		out += fmt.Sprintf(" %.1fs->%.1f%%", l, a.Errors[i]*100)
	}
	return out
}

// AblationProbeLen sweeps probe durations on a host.
func (s *Suite) AblationProbeLen(host string, lens []float64) (ProbeLenAblation, error) {
	out := ProbeLenAblation{Host: host, Lens: lens}
	for _, l := range lens {
		cfg := sensors.DefaultHybridConfig()
		cfg.ProbeLen = l
		e, err := s.hybridError(host, cfg)
		if err != nil {
			return ProbeLenAblation{}, err
		}
		out.Errors = append(out.Errors, e)
	}
	return out, nil
}

// hybridError runs a fresh monitored simulation of host with the given
// hybrid configuration and returns the hybrid measurement error (Eq. 3).
func (s *Suite) hybridError(host string, hcfg sensors.HybridConfig) (float64, error) {
	p, err := profileFor(host, s.cfg.Duration)
	if err != nil {
		return 0, err
	}
	h := simos.New(simos.DefaultConfig())
	workload.Submit(h, p.Generate(s.cfg.Duration+600))
	mcfg := scaleMonitorCfg(core.ShortTermConfig(), s.cfg.Duration)
	mcfg.Hybrid = hcfg
	m := core.NewMonitor(sensors.SimHost{H: h}, mcfg)
	if err := m.Run(s.cfg.Duration); err != nil {
		return 0, err
	}
	return core.MeasurementError(m.Measurements[core.MethodHybrid], m.Tests)
}

// AggregationAblation reports one-step prediction error versus aggregation
// level m on one host's load-average series.
type AggregationAblation struct {
	Host   string
	Levels []int
	Errors []float64
}

// String summarizes the sweep.
func (a AggregationAblation) String() string {
	out := fmt.Sprintf("aggregation ablation on %s:", a.Host)
	for i, m := range a.Levels {
		out += fmt.Sprintf(" m=%d->%.2f%%", m, a.Errors[i]*100)
	}
	return out
}

// AblationAggregation sweeps aggregation levels (m = 1 means the raw
// series).
func (s *Suite) AblationAggregation(host string, levels []int) (AggregationAblation, error) {
	m, err := s.Short(host)
	if err != nil {
		return AggregationAblation{}, err
	}
	out := AggregationAblation{Host: host, Levels: levels}
	meas := m.Measurements[core.MethodLoadAvg]
	for _, lvl := range levels {
		var e float64
		if lvl <= 1 {
			e, err = core.OneStepError(meas)
		} else {
			e, err = core.AggregatedOneStepError(meas, lvl)
		}
		if err != nil {
			return AggregationAblation{}, fmt.Errorf("experiments: aggregation m=%d: %w", lvl, err)
		}
		out.Errors = append(out.Errors, e)
	}
	return out, nil
}

// Eq2WeightAblation compares the three Equation 2 system-time weightings on
// a network-gateway-style host (jobs with a high system-time fraction, as
// the UCSD department's gateway once was — the paper's stated rationale for
// the user-fraction weighting).
type Eq2WeightAblation struct {
	UserFraction float64 // measurement error, paper's w = user fraction
	Full         float64 // w = 1
	None         float64 // w = 0
}

// String summarizes the comparison.
func (a Eq2WeightAblation) String() string {
	return fmt.Sprintf("Eq.2 weighting ablation (gateway host): w=userFrac %.1f%%, w=1 %.1f%%, w=0 %.1f%%",
		a.UserFraction*100, a.Full*100, a.None*100)
}

// AblationEq2Weight measures the three weightings against test processes on
// a host whose jobs spend most of their time in the kernel.
func (s *Suite) AblationEq2Weight() (Eq2WeightAblation, error) {
	// Light user-level load plus a non-preemptible kernel interrupt load
	// with a ~35% duty cycle — the departmental-gateway situation the paper
	// describes.
	gateway := workload.Gremlin()
	gateway.Name = "gateway"
	gateway.Fixtures = append(gateway.Fixtures, workload.Fixture{
		At: 0,
		Spec: simos.ProcSpec{
			Name: "interrupts", Kernel: true, SysFrac: 1,
			Demand: math.Inf(1), WallLimit: s.cfg.Duration + 601,
			BurstCPU: 0.2, BurstSleep: 0.37,
		},
	})

	h := simos.New(simos.DefaultConfig())
	workload.Submit(h, gateway.Generate(s.cfg.Duration+600))
	sh := sensors.SimHost{H: h}
	ss := []*sensors.VmstatSensor{
		sensors.NewVmstatSensorWeight(sh, 0, sensors.WeightUserFraction),
		sensors.NewVmstatSensorWeight(sh, 0, sensors.WeightFull),
		sensors.NewVmstatSensorWeight(sh, 0, sensors.WeightNone),
	}
	sums := make([]float64, 3)
	lasts := make([]float64, 3)
	tests := 0
	testEvery := s.cfg.Duration / 40
	if testEvery < 30 {
		testEvery = 30
	}
	epoch := 10.0
	nextTest := testEvery
	for epoch <= s.cfg.Duration {
		h.RunUntil(epoch)
		for i, sensor := range ss {
			lasts[i] = sensor.Measure()
		}
		if epoch >= nextTest {
			truth := sensors.RunTest(sh, 10)
			for i := range ss {
				sums[i] += abs(lasts[i] - truth)
			}
			tests++
			nextTest += testEvery
		}
		epoch = h.Now() + 10
	}
	if tests == 0 {
		return Eq2WeightAblation{}, fmt.Errorf("experiments: gateway run too short")
	}
	return Eq2WeightAblation{
		UserFraction: sums[0] / float64(tests),
		Full:         sums[1] / float64(tests),
		None:         sums[2] / float64(tests),
	}, nil
}

// SelectWindowAblation reports the engine's one-step error as a function of
// the selection window (0 = cumulative, the rest recent-window sizes) on one
// host's hybrid series.
type SelectWindowAblation struct {
	Host    string
	Windows []int
	Errors  []float64
}

// String summarizes the sweep.
func (a SelectWindowAblation) String() string {
	out := fmt.Sprintf("selection-window ablation on %s:", a.Host)
	for i, w := range a.Windows {
		label := fmt.Sprintf("w=%d", w)
		if w == 0 {
			label = "cumulative"
		}
		out += fmt.Sprintf(" %s->%.3f%%", label, a.Errors[i]*100)
	}
	return out
}

// AblationSelectWindow sweeps the engine's selection window.
func (s *Suite) AblationSelectWindow(host string, windows []int) (SelectWindowAblation, error) {
	m, err := s.Short(host)
	if err != nil {
		return SelectWindowAblation{}, err
	}
	vals := m.Measurements[core.MethodHybrid].Values()
	out := SelectWindowAblation{Host: host, Windows: windows}
	for _, w := range windows {
		win := w
		res, _, err := forecast.EvaluateEngine(func() *forecast.Engine {
			return forecast.NewWindowedEngine(forecast.ByMAE, win, forecast.DefaultBank()...)
		}, vals)
		if err != nil {
			return SelectWindowAblation{}, err
		}
		out.Errors = append(out.Errors, res.MAE)
	}
	return out, nil
}

// PartitionAblation compares forecast-proportional data-parallel
// partitioning with the equal split (the AppLeS use case).
type PartitionAblation struct {
	ForecastMakespan float64
	EqualMakespan    float64
	Chunks           []float64
}

// String summarizes the comparison.
func (a PartitionAblation) String() string {
	return fmt.Sprintf("partition ablation: forecast-proportional makespan %.0fs vs equal split %.0fs (gain %.2fx)",
		a.ForecastMakespan, a.EqualMakespan, a.EqualMakespan/a.ForecastMakespan)
}

// AblationPartition runs the partitioning comparison over the six paper
// hosts with a divisible job of totalWork CPU-seconds.
func AblationPartition(totalWork, warmup float64, seed int64) PartitionAblation {
	horizon := warmup + 20*totalWork
	run := func(equal bool) ([]float64, float64) {
		c := sched.NewCluster(workload.Profiles(horizon), horizon)
		c.Warmup(warmup, 10)
		res := c.PartitionExperiment(totalWork, sched.PolicyForecast, equal, seed)
		return res.Chunks, res.Makespan
	}
	chunks, fm := run(false)
	_, em := run(true)
	return PartitionAblation{ForecastMakespan: fm, EqualMakespan: em, Chunks: chunks}
}

// SchedulerAblation compares scheduling policies on a small grid.
type SchedulerAblation struct {
	Results []sched.Result
}

// DynamicAblation compares static list placement with self-scheduling
// (dynamic work-queue) dispatch under the forecast policy.
type DynamicAblation struct {
	Static  sched.Result
	Dynamic sched.DynamicResult
}

// String summarizes the comparison.
func (a DynamicAblation) String() string {
	return fmt.Sprintf("dispatch ablation: static makespan %.0fs vs self-scheduling %.0fs (dispatches %v)",
		a.Static.Makespan, a.Dynamic.Makespan, a.Dynamic.Dispatches)
}

// AblationDynamic runs the static-vs-dynamic dispatch comparison over the
// six paper hosts.
func AblationDynamic(nTasks int, demand, warmup float64, seed int64) DynamicAblation {
	horizon := warmup + 20*float64(nTasks)*demand
	profiles := workload.Profiles(horizon)
	tasks := sched.MakeTasks(nTasks, demand)
	return DynamicAblation{
		Static:  sched.Experiment(profiles, tasks, sched.PolicyForecast, warmup, seed),
		Dynamic: sched.DynamicExperiment(profiles, tasks, sched.PolicyForecast, warmup, seed),
	}
}

// String summarizes the comparison.
func (a SchedulerAblation) String() string {
	out := "scheduler ablation:"
	for _, r := range a.Results {
		out += fmt.Sprintf(" %s makespan %.0fs;", r.Policy, r.Makespan)
	}
	return out
}

// AblationScheduler runs the three policies over a grid of the six paper
// hosts with the given task load.
func AblationScheduler(nTasks int, demand, warmup float64, seed int64) SchedulerAblation {
	var out SchedulerAblation
	// Profiles(duration) bakes fixture wall limits; use the same horizon
	// sched.Experiment derives (warm-up plus a generous execution window).
	horizon := warmup + 20*float64(nTasks)*demand
	profiles := workload.Profiles(horizon)
	for _, p := range []sched.Policy{sched.PolicyForecast, sched.PolicyLoadAvg, sched.PolicyRandom} {
		out.Results = append(out.Results, sched.Experiment(profiles, sched.MakeTasks(nTasks, demand), p, warmup, seed))
	}
	return out
}
