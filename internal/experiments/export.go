package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"nwscpu/internal/core"
	"nwscpu/internal/series"
)

// sortedKeys returns m's keys in sorted order, so exports walk hosts
// deterministically instead of in map-iteration order — same-seed runs
// must produce their artifacts in the same sequence, byte for byte.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Export writes every series the suite has cached so far to dir as CSV
// files (creating dir if needed), one file per series:
//
//	<host>_short_<method>.csv    monitored 10-second availability series
//	<host>_short_tests.csv       ground-truth test-process observations
//	<host>_medium_<method>.csv   medium-term run series
//	<host>_medium_tests.csv
//	<host>_week.csv              week-long load-average trace
//
// Only runs that have already been computed (via the table/figure methods
// or Prefetch) are written; Export never triggers new simulations. It
// returns the number of files written.
func (s *Suite) Export(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("experiments: export dir: %w", err)
	}
	written := 0
	write := func(name string, sr *series.Series) error {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sr.WriteCSV(f); err != nil {
			return err
		}
		written++
		return f.Close()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, kind := range []struct {
		label string
		runs  map[string]*core.Monitor
	}{
		{"short", s.short},
		{"medium", s.medium},
	} {
		for _, host := range sortedKeys(kind.runs) {
			m := kind.runs[host]
			for _, method := range core.Methods {
				if err := write(fmt.Sprintf("%s_%s_%s", host, kind.label, method),
					m.Measurements[method]); err != nil {
					return written, err
				}
			}
			if err := write(fmt.Sprintf("%s_%s_tests", host, kind.label), m.Tests); err != nil {
				return written, err
			}
		}
	}
	for _, host := range sortedKeys(s.week) {
		if err := write(host+"_week", s.week[host]); err != nil {
			return written, err
		}
	}
	return written, nil
}
