package experiments

import (
	"fmt"
	"strings"

	"nwscpu/internal/core"
	"nwscpu/internal/stats"
)

// MethodTriple holds one value per measurement method, in the paper's
// column order (load average, vmstat, NWS hybrid).
type MethodTriple struct {
	LoadAvg float64
	Vmstat  float64
	Hybrid  float64
}

// Get returns the value for a method name.
func (m MethodTriple) Get(method string) float64 {
	switch method {
	case core.MethodLoadAvg:
		return m.LoadAvg
	case core.MethodVmstat:
		return m.Vmstat
	case core.MethodHybrid:
		return m.Hybrid
	default:
		panic(fmt.Sprintf("experiments: unknown method %q", method))
	}
}

func (m *MethodTriple) set(method string, v float64) {
	switch method {
	case core.MethodLoadAvg:
		m.LoadAvg = v
	case core.MethodVmstat:
		m.Vmstat = v
	case core.MethodHybrid:
		m.Hybrid = v
	}
}

// ErrorTable is the shape shared by Tables 1, 2, 3, 5 and 6: one row per
// host, one error value per method, optionally a parenthesized reference
// value (Table 2 shows measurement error, Table 5 the unaggregated error).
type ErrorTable struct {
	Title string
	Hosts []string
	Main  map[string]MethodTriple // fractional errors, keyed by host
	Paren map[string]MethodTriple // optional reference values
}

// String renders the table in the paper's layout with percentages.
func (t *ErrorTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-12s %-18s %-18s %-18s\n", "Host", "Load Average", "vmstat", "NWS Hybrid")
	cell := func(host, method string) string {
		main := t.Main[host].Get(method)
		if t.Paren != nil {
			return fmt.Sprintf("%.1f%% (%.1f%%)", main*100, t.Paren[host].Get(method)*100)
		}
		return fmt.Sprintf("%.1f%%", main*100)
	}
	for _, host := range t.Hosts {
		fmt.Fprintf(&b, "%-12s %-18s %-18s %-18s\n",
			host, cell(host, core.MethodLoadAvg), cell(host, core.MethodVmstat), cell(host, core.MethodHybrid))
	}
	return b.String()
}

// errorTable runs fn for every host and method over the suite's runs.
func (s *Suite) errorTable(title string, kind string,
	fn func(m *core.Monitor, method string) (float64, error)) (*ErrorTable, error) {

	t := &ErrorTable{Title: title, Hosts: HostNames, Main: make(map[string]MethodTriple)}
	for _, host := range HostNames {
		var m *core.Monitor
		var err error
		if kind == "medium" {
			m, err = s.Medium(host)
		} else {
			m, err = s.Short(host)
		}
		if err != nil {
			return nil, err
		}
		var row MethodTriple
		for _, method := range core.Methods {
			v, err := fn(m, method)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s / %s / %s: %w", title, host, method, err)
			}
			row.set(method, v)
		}
		t.Main[host] = row
	}
	return t, nil
}

// Table1 reproduces "Mean Absolute Measurement Errors during a 24-hour,
// mid-week period" (Equation 3).
func (s *Suite) Table1() (*ErrorTable, error) {
	return s.errorTable(
		"Table 1: Mean absolute measurement error (|measurement - test process|)",
		"short",
		func(m *core.Monitor, method string) (float64, error) {
			return core.MeasurementError(m.Measurements[method], m.Tests)
		})
}

// Table2 reproduces "Mean True Forecasting Errors and Corresponding
// Measurement Errors" (Equation 4, with Equation 3 in parentheses).
func (s *Suite) Table2() (*ErrorTable, error) {
	t, err := s.errorTable(
		"Table 2: Mean true forecasting error (measurement error in parentheses)",
		"short",
		func(m *core.Monitor, method string) (float64, error) {
			return core.TrueForecastError(m.Measurements[method], m.Tests)
		})
	if err != nil {
		return nil, err
	}
	ref, err := s.Table1()
	if err != nil {
		return nil, err
	}
	t.Paren = ref.Main
	return t, nil
}

// Table3 reproduces "Mean Absolute One-step-ahead Prediction Errors"
// (Equation 5) for the raw 10-second series.
func (s *Suite) Table3() (*ErrorTable, error) {
	return s.errorTable(
		"Table 3: Mean absolute one-step-ahead prediction error",
		"short",
		func(m *core.Monitor, method string) (float64, error) {
			return core.OneStepError(m.Measurements[method])
		})
}

// Table4Row holds one host's self-similarity numbers: the R/S Hurst
// estimate from the one-week trace and, per method, the variance of the
// original 24-hour series and of its 5-minute aggregation.
type Table4Row struct {
	Host  string
	Hurst float64
	Orig  MethodTriple // variance of the 10-second series
	Agg   MethodTriple // variance of the 5-minute (m=30) aggregated series
}

// Table4 reproduces "Variance of Original Series and 5 Minute Averages"
// together with the Hurst parameter estimates.
func (s *Suite) Table4() ([]Table4Row, error) {
	rows := make([]Table4Row, 0, len(HostNames))
	for _, host := range HostNames {
		week, err := s.Week(host)
		if err != nil {
			return nil, err
		}
		hurst, _, err := stats.HurstRS(week.Values(), 16)
		if err != nil {
			return nil, fmt.Errorf("experiments: Hurst for %s: %w", host, err)
		}
		m, err := s.Short(host)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Host: host, Hurst: hurst}
		for _, method := range core.Methods {
			orig, agg, err := core.VarianceComparison(m.Measurements[method], core.AggregateBlocks)
			if err != nil {
				return nil, fmt.Errorf("experiments: variance for %s/%s: %w", host, method, err)
			}
			row.Orig.set(method, orig)
			row.Agg.set(method, agg)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders Table 4 in the paper's layout.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: Hurst estimate; variance of original series and 5-minute averages\n")
	fmt.Fprintf(&b, "%-12s %-6s %-19s %-19s %-19s\n", "Host", "H", "Load Avg (orig/300s)", "vmstat (orig/300s)", "Hybrid (orig/300s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-6.2f %.4f/%.4f      %.4f/%.4f      %.4f/%.4f\n",
			r.Host, r.Hurst,
			r.Orig.LoadAvg, r.Agg.LoadAvg,
			r.Orig.Vmstat, r.Agg.Vmstat,
			r.Orig.Hybrid, r.Agg.Hybrid)
	}
	return b.String()
}

// Table5 reproduces "Mean Absolute One-step-ahead Prediction Errors for 5
// Minutes Aggregated" (Equation 5 over X^(30), with the unaggregated error
// of Table 3 in parentheses).
func (s *Suite) Table5() (*ErrorTable, error) {
	t, err := s.errorTable(
		"Table 5: One-step-ahead prediction error of 5-minute aggregated series (unaggregated in parentheses)",
		"short",
		func(m *core.Monitor, method string) (float64, error) {
			return core.AggregatedOneStepError(m.Measurements[method], core.AggregateBlocks)
		})
	if err != nil {
		return nil, err
	}
	ref, err := s.Table3()
	if err != nil {
		return nil, err
	}
	t.Paren = ref.Main
	return t, nil
}

// Table6 reproduces "Mean True Forecasting Errors for 5 Minute Average CPU
// Availability": the engine forecasts the next 5-minute block average and is
// scored against the 5-minute test process run once per hour.
func (s *Suite) Table6() (*ErrorTable, error) {
	return s.errorTable(
		"Table 6: Mean true forecasting error for 5-minute average availability",
		"medium",
		func(m *core.Monitor, method string) (float64, error) {
			return core.AggregatedTrueForecastError(m.Measurements[method], m.Tests, core.AggregateBlocks)
		})
}
