package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nwscpu/internal/core"
)

// sharedSuite is built once: QuickConfig runs all six hosts in a few
// seconds, and every table test reuses the cached runs, as in production.
var (
	sharedOnce  sync.Once
	sharedSuite *Suite
)

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	sharedOnce.Do(func() {
		sharedSuite = NewSuite(QuickConfig())
	})
	return sharedSuite
}

func TestNewSuiteValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero config accepted")
		}
	}()
	NewSuite(Config{})
}

func TestUnknownHost(t *testing.T) {
	s := quickSuite(t)
	if _, err := s.Short("nonsense"); err == nil {
		t.Fatal("unknown host accepted")
	}
	if _, err := s.Week("nonsense"); err == nil {
		t.Fatal("unknown host accepted by Week")
	}
}

func TestShortRunCached(t *testing.T) {
	s := quickSuite(t)
	m1, err := s.Short("gremlin")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Short("gremlin")
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("Short did not cache")
	}
	if m1.Tests.Len() == 0 {
		t.Fatal("short run recorded no test processes")
	}
}

func TestPrefetch(t *testing.T) {
	s := quickSuite(t)
	if err := s.Prefetch([]string{"thing1", "thing2"}, "short", "week"); err != nil {
		t.Fatal(err)
	}
	if err := s.Prefetch([]string{"thing1"}, "bogus"); err == nil {
		t.Fatal("bogus prefetch kind accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	s := quickSuite(t)
	tab, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Hosts) != 6 || len(tab.Main) != 6 {
		t.Fatalf("table shape: %d hosts, %d rows", len(tab.Hosts), len(tab.Main))
	}
	for host, row := range tab.Main {
		for _, m := range core.Methods {
			v := row.Get(m)
			if v < 0 || v > 1 {
				t.Fatalf("%s/%s error out of range: %v", host, m, v)
			}
		}
	}
	// The two anomalies must appear even at quick scale: passive methods
	// fail on conundrum, the hybrid fails on kongo.
	con := tab.Main["conundrum"]
	if con.LoadAvg < 0.2 || con.Vmstat < 0.2 {
		t.Fatalf("conundrum passive errors too small: %+v", con)
	}
	if con.Hybrid > con.LoadAvg/2 {
		t.Fatalf("conundrum hybrid error %v not far below load average %v", con.Hybrid, con.LoadAvg)
	}
	kongo := tab.Main["kongo"]
	if kongo.Hybrid < kongo.LoadAvg {
		t.Fatalf("kongo hybrid error %v should exceed load average %v", kongo.Hybrid, kongo.LoadAvg)
	}
	out := tab.String()
	if !strings.Contains(out, "conundrum") || !strings.Contains(out, "%") {
		t.Fatalf("rendered table malformed:\n%s", out)
	}
}

func TestTable2IncludesMeasurementError(t *testing.T) {
	s := quickSuite(t)
	tab, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Paren == nil {
		t.Fatal("Table 2 missing parenthesized measurement errors")
	}
	// True forecasting error should be in the same ballpark as measurement
	// error (the paper's central observation).
	for _, host := range tab.Hosts {
		f := tab.Main[host].LoadAvg
		e := tab.Paren[host].LoadAvg
		if f > e+0.15 {
			t.Fatalf("%s: true forecast error %v much worse than measurement error %v", host, f, e)
		}
	}
	if !strings.Contains(tab.String(), "(") {
		t.Fatal("rendered Table 2 missing parentheses")
	}
}

func TestTable3SmallErrors(t *testing.T) {
	s := quickSuite(t)
	tab, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	// One-step-ahead prediction error is small on every host — under 10%
	// even at quick scale (the paper reports under 5% at full scale).
	for host, row := range tab.Main {
		for _, m := range core.Methods {
			if v := row.Get(m); v > 0.10 {
				t.Fatalf("%s/%s one-step error = %v, want < 0.10", host, m, v)
			}
		}
	}
}

func TestTable4HurstAndVariance(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Hurst < 0.3 || r.Hurst > 1.1 {
			t.Fatalf("%s Hurst = %v, outside plausible band", r.Host, r.Hurst)
		}
		for _, m := range core.Methods {
			if r.Orig.Get(m) < 0 || r.Agg.Get(m) < 0 {
				t.Fatalf("%s negative variance", r.Host)
			}
		}
	}
	if out := FormatTable4(rows); !strings.Contains(out, "Hurst") && !strings.Contains(out, "H") {
		t.Fatalf("rendered table malformed:\n%s", out)
	}
}

func TestTable5Aggregated(t *testing.T) {
	s := quickSuite(t)
	tab, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Paren == nil {
		t.Fatal("Table 5 missing unaggregated reference")
	}
}

func TestTable6MediumTerm(t *testing.T) {
	s := quickSuite(t)
	tab, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for host, row := range tab.Main {
		for _, m := range core.Methods {
			if v := row.Get(m); v < 0 || v > 1 {
				t.Fatalf("%s/%s out of range: %v", host, m, v)
			}
		}
	}
}

func TestFigures(t *testing.T) {
	s := quickSuite(t)
	f1, err := s.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for host, trace := range f1 {
		if trace.Len() < 100 {
			t.Fatalf("Figure 1 %s trace too short: %d", host, trace.Len())
		}
	}
	f2, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for host, acf := range f2 {
		if len(acf) != ACFLags+1 {
			t.Fatalf("Figure 2 %s has %d lags", host, len(acf))
		}
		if acf[0] != 1 {
			t.Fatalf("Figure 2 %s ACF(0) = %v", host, acf[0])
		}
		// The load series is strongly autocorrelated at short lags.
		if acf[1] < 0.5 {
			t.Fatalf("Figure 2 %s ACF(1) = %v, want high", host, acf[1])
		}
	}
	f3, err := s.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f3 {
		if len(r.Points) == 0 {
			t.Fatalf("Figure 3 %s has no pox points", r.Host)
		}
		if r.Hurst < 0.3 || r.Hurst > 1.1 {
			t.Fatalf("Figure 3 %s Hurst = %v", r.Host, r.Hurst)
		}
		if !strings.Contains(FormatPox(r), "pox plot") {
			t.Fatal("FormatPox malformed")
		}
	}
	f4, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	for host, agg := range f4 {
		if agg.Len() < 3 {
			t.Fatalf("Figure 4 %s aggregated trace too short: %d", host, agg.Len())
		}
	}
}

func TestAsciiPlot(t *testing.T) {
	s := quickSuite(t)
	f1, _ := s.Figure1()
	out := AsciiPlot(f1["thing1"], 60, 10, 0, 1)
	if !strings.Contains(out, "*") {
		t.Fatalf("plot has no points:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 11 {
		t.Fatalf("plot has %d lines, want 11", lines)
	}
	if got := AsciiPlot(f1["thing1"], 0, 10, 0, 1); !strings.Contains(got, "empty") {
		t.Fatal("degenerate plot parameters accepted")
	}
}

func TestFormatACF(t *testing.T) {
	out := FormatACF([]float64{1, 0.5, -0.2}, 1)
	if !strings.Contains(out, "lag    0") || !strings.Contains(out, "+1.000") {
		t.Fatalf("FormatACF malformed:\n%s", out)
	}
	if FormatACF([]float64{1}, 0) == "" {
		t.Fatal("stride 0 should be clamped, not crash")
	}
}

func TestAblationMixture(t *testing.T) {
	s := quickSuite(t)
	a, err := s.AblationMixture("thing1")
	if err != nil {
		t.Fatal(err)
	}
	if a.EngineMAE <= 0 || a.BestMAE <= 0 {
		t.Fatalf("degenerate ablation: %+v", a)
	}
	// The NWS claim: the mixture tracks the best single member.
	if a.EngineMAE > a.BestMAE*1.3 {
		t.Fatalf("engine MAE %v far above best member %v", a.EngineMAE, a.BestMAE)
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestAblationBias(t *testing.T) {
	s := quickSuite(t)
	a, err := s.AblationBias("conundrum")
	if err != nil {
		t.Fatal(err)
	}
	if a.WithBias > a.WithoutBias/2 {
		t.Fatalf("bias should cut the conundrum error sharply: %+v", a)
	}
}

func TestExtensionSMP(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.ExtensionSMP([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	one, four := rows[0], rows[1]
	if one.CPUs != 1 || four.CPUs != 4 {
		t.Fatalf("CPU counts wrong: %+v", rows)
	}
	// On a uniprocessor the two estimators coincide.
	if abs(one.NaiveErr-one.SMPErr) > 1e-9 {
		t.Fatalf("N=1 estimators differ: %+v", one)
	}
	// On 4 CPUs, naive Eq.1 must be far worse than the corrected form.
	if four.NaiveErr < 2*four.SMPErr {
		t.Fatalf("SMP correction ineffective: %+v", four)
	}
	if _, err := s.ExtensionSMP([]int{0}); err == nil {
		t.Fatal("CPU count 0 accepted")
	}
	if out := FormatSMP(rows); !strings.Contains(out, "CPUs") {
		t.Fatalf("FormatSMP malformed:\n%s", out)
	}
}

func TestExport(t *testing.T) {
	s := quickSuite(t)
	if _, err := s.Short("gremlin"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Week("thing1"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	n, err := s.Export(dir)
	if err != nil {
		t.Fatal(err)
	}
	// At least gremlin's 3 methods + tests and thing1's week trace; the
	// shared suite may hold more from other tests.
	if n < 5 {
		t.Fatalf("exported %d files, want >= 5", n)
	}
	for _, name := range []string{"gremlin_short_load_average.csv", "gremlin_short_tests.csv", "thing1_week.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(string(b), "t,value\n") {
			t.Fatalf("%s: bad header", name)
		}
	}
	if _, err := s.Export("/proc/not/writable"); err == nil {
		t.Fatal("unwritable export dir accepted")
	}
}

func TestAblationEq2Weight(t *testing.T) {
	s := quickSuite(t)
	a, err := s.AblationEq2Weight()
	if err != nil {
		t.Fatal(err)
	}
	// On a kernel-bound host the w=1 weighting must be the worst: it
	// promises system-time shares a new process cannot actually obtain.
	if a.Full <= a.UserFraction {
		t.Fatalf("w=1 error %v not worse than paper weighting %v", a.Full, a.UserFraction)
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestAblationSelectWindow(t *testing.T) {
	s := quickSuite(t)
	a, err := s.AblationSelectWindow("gremlin", []int{0, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Errors) != 2 {
		t.Fatalf("errors = %v", a.Errors)
	}
	for _, e := range a.Errors {
		if e <= 0 || e > 0.5 {
			t.Fatalf("implausible error: %v", a.Errors)
		}
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestAblationPartition(t *testing.T) {
	a := AblationPartition(120, 200, 9)
	if a.ForecastMakespan <= 0 || a.EqualMakespan <= 0 {
		t.Fatalf("degenerate: %+v", a)
	}
	if len(a.Chunks) != 6 {
		t.Fatalf("chunks = %v", a.Chunks)
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestPreloadRoundTrip(t *testing.T) {
	s := quickSuite(t)
	// Ensure at least one short run and one week trace exist, then export.
	if _, err := s.Short("gremlin"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Week("gremlin"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := s.Export(dir); err != nil {
		t.Fatal(err)
	}

	fresh := NewSuite(QuickConfig())
	n, err := fresh.Preload(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("preloaded %d runs, want >= 2", n)
	}
	// The preloaded run must produce identical analysis results.
	orig, err := s.Short("gremlin")
	if err != nil {
		t.Fatal(err)
	}
	imported, err := fresh.Short("gremlin")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range core.Methods {
		e1, err1 := core.MeasurementError(orig.Measurements[method], orig.Tests)
		e2, err2 := core.MeasurementError(imported.Measurements[method], imported.Tests)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v %v", err1, err2)
		}
		if e1 != e2 {
			t.Fatalf("%s: imported error %v != original %v", method, e2, e1)
		}
	}
	// Preload from an empty directory loads nothing but does not fail.
	if n, err := NewSuite(QuickConfig()).Preload(t.TempDir()); err != nil || n != 0 {
		t.Fatalf("empty preload: %d, %v", n, err)
	}
}

func TestAblationDynamic(t *testing.T) {
	a := AblationDynamic(4, 20, 200, 9)
	if a.Static.Makespan <= 0 || a.Dynamic.Makespan <= 0 {
		t.Fatalf("degenerate: %+v", a)
	}
	total := 0
	for _, d := range a.Dynamic.Dispatches {
		total += d
	}
	if total != 4 {
		t.Fatalf("dynamic dispatched %d tasks, want 4", total)
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestExtensionCadence(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.ExtensionCadence("gremlin", []float64{10, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Points <= rows[1].Points {
		t.Fatalf("faster cadence should collect more points: %+v", rows)
	}
	for _, r := range rows {
		if r.ProbeShare <= 0 || r.ProbeShare > 0.2 {
			t.Fatalf("implausible probe cost: %+v", r)
		}
	}
	for _, r := range rows {
		if r.MeasErr < 0 || r.MeasErr > 1 || r.OneStepErr < 0 || r.OneStepErr > 1 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	if _, err := s.ExtensionCadence("gremlin", []float64{0}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := s.ExtensionCadence("bogus", []float64{10}); err == nil {
		t.Fatal("unknown host accepted")
	}
	if !strings.Contains(FormatCadence(rows), "sensing-period") {
		t.Fatal("FormatCadence malformed")
	}
}

func TestExtensionResiduals(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.ExtensionResiduals()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 6 hosts x 3 methods
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	for _, r := range rows {
		if r.KS.D < 0 || r.KS.D > 1 || r.KS.P < 0 || r.KS.P > 1 {
			t.Fatalf("degenerate KS result: %+v", r)
		}
	}
	// The paper's claim: on most host/method pairs forecasting does not
	// change the error distribution. Require a clear majority.
	same := 0
	for _, r := range rows {
		if !r.Significant() {
			same++
		}
	}
	if same < 12 {
		t.Fatalf("only %d/18 pairs have indistinguishable residuals", same)
	}
	if !strings.Contains(FormatResiduals(rows), "KS comparison") {
		t.Fatal("FormatResiduals malformed")
	}
}

func TestExtensionForecasters(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.ExtensionForecasters([]string{"thing1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.DefaultMAE <= 0 || r.ExtendedMAE <= 0 {
		t.Fatalf("degenerate MAEs: %+v", r)
	}
	// The extended bank strictly contains the default bank, and the mixture
	// tracks its best member, so it should never be substantially worse.
	if r.ExtendedMAE > r.DefaultMAE*1.1 {
		t.Fatalf("extended bank much worse: %+v", r)
	}
	if !strings.Contains(FormatForecasterExt(rows), "extended MAE") {
		t.Fatal("FormatForecasterExt malformed")
	}
	if _, err := s.ExtensionForecasters([]string{"nonsense"}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestAblationAggregation(t *testing.T) {
	s := quickSuite(t)
	a, err := s.AblationAggregation("gremlin", []int{1, 6, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Errors) != 3 {
		t.Fatalf("errors = %v", a.Errors)
	}
	if _, err := s.AblationAggregation("gremlin", []int{100000}); err == nil {
		t.Fatal("absurd aggregation level accepted")
	}
}
