package experiments

import (
	"fmt"
	"strings"

	"nwscpu/internal/core"
	"nwscpu/internal/series"
	"nwscpu/internal/stats"
)

// FigureHosts are the two hosts whose traces the paper plots.
var FigureHosts = []string{"thing1", "thing2"}

// Figure1 returns the 24-hour CPU availability measurement series (Unix load
// average method) for thing1 and thing2 — the paper's Figure 1.
func (s *Suite) Figure1() (map[string]*series.Series, error) {
	out := make(map[string]*series.Series, len(FigureHosts))
	for _, host := range FigureHosts {
		m, err := s.Short(host)
		if err != nil {
			return nil, err
		}
		out[host] = m.Measurements[core.MethodLoadAvg]
	}
	return out, nil
}

// ACFLags is the number of autocorrelation lags Figure 2 plots (one hour of
// 10-second lags).
const ACFLags = 360

// Figure2 returns the first 360 autocorrelations of the Figure 1 series for
// thing1 and thing2 — the paper's Figure 2.
func (s *Suite) Figure2() (map[string][]float64, error) {
	f1, err := s.Figure1()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64, len(f1))
	for host, trace := range f1 {
		out[host] = stats.ACF(trace.Values(), ACFLags)
	}
	return out, nil
}

// PoxResult is one host's Figure 3 content: the pox-plot point cloud of the
// one-week load-average availability trace, plus the fitted Hurst line.
type PoxResult struct {
	Host   string
	Points []stats.PoxPoint
	Hurst  float64
	Fit    stats.LinFit
}

// Figure3 returns the pox plots and Hurst fits for thing1 and thing2 over
// their one-week traces — the paper's Figure 3.
func (s *Suite) Figure3() ([]PoxResult, error) {
	out := make([]PoxResult, 0, len(FigureHosts))
	for _, host := range FigureHosts {
		week, err := s.Week(host)
		if err != nil {
			return nil, err
		}
		vals := week.Values()
		h, fit, err := stats.HurstRS(vals, 16)
		if err != nil {
			return nil, fmt.Errorf("experiments: Figure 3 for %s: %w", host, err)
		}
		out = append(out, PoxResult{
			Host:   host,
			Points: stats.PoxPlot(vals, 16),
			Hurst:  h,
			Fit:    fit,
		})
	}
	return out, nil
}

// Figure4 returns the 5-minute aggregated availability series (load-average
// method) from the medium-term runs whose hourly 5-minute test processes
// stamp the periodic signature the paper remarks on — the paper's Figure 4.
func (s *Suite) Figure4() (map[string]*series.Series, error) {
	out := make(map[string]*series.Series, len(FigureHosts))
	for _, host := range FigureHosts {
		m, err := s.Medium(host)
		if err != nil {
			return nil, err
		}
		agg, err := m.Measurements[core.MethodLoadAvg].AggregateCount(core.AggregateBlocks)
		if err != nil {
			return nil, err
		}
		out[host] = agg
	}
	return out, nil
}

// AsciiPlot renders a series as a width x height ASCII chart with the value
// range [lo, hi]. Each column shows the mean of its time bucket.
func AsciiPlot(s *series.Series, width, height int, lo, hi float64) string {
	if s.Len() == 0 || width < 1 || height < 1 || hi <= lo {
		return "(empty)\n"
	}
	vals := s.Values()
	cols := make([]float64, width)
	for c := 0; c < width; c++ {
		a := c * len(vals) / width
		b := (c + 1) * len(vals) / width
		if b <= a {
			b = a + 1
		}
		if b > len(vals) {
			b = len(vals)
		}
		cols[c] = stats.Mean(vals[a:b])
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, v := range cols {
		r := int(float64(height-1) * (hi - v) / (hi - lo))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		grid[r][c] = '*'
	}
	var b strings.Builder
	for r, row := range grid {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%6.1f |%s|\n", yVal*100, string(row))
	}
	fmt.Fprintf(&b, "        %s\n", strings.Repeat("-", width))
	return b.String()
}

// FormatACF renders an autocorrelation function as one "lag value" pair per
// line, decimated by the given stride for readability.
func FormatACF(acf []float64, stride int) string {
	if stride < 1 {
		stride = 1
	}
	var b strings.Builder
	for k := 0; k < len(acf); k += stride {
		bar := int(acf[k] * 40)
		if bar < 0 {
			bar = 0
		}
		fmt.Fprintf(&b, "lag %4d  %+.3f |%s\n", k, acf[k], strings.Repeat("#", bar))
	}
	return b.String()
}

// FormatPox renders a pox plot result as data lines ("logd logrs") followed
// by the fitted Hurst summary, mirroring the figure's axes.
func FormatPox(r PoxResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# pox plot for %s: H = %.2f (fit R2 %.3f, %d points)\n",
		r.Host, r.Hurst, r.Fit.R2, len(r.Points))
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%.4f %.4f\n", p.LogD, p.LogRS)
	}
	return b.String()
}
