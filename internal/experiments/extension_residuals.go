package experiments

import (
	"fmt"
	"strings"

	"nwscpu/internal/core"
	"nwscpu/internal/stats"
)

// ResidualRow compares the distributions of measurement residuals (Eq. 3)
// and true-forecast residuals (Eq. 4) for one host and method with a
// two-sample Kolmogorov–Smirnov test. The paper observes the two error
// kinds are "approximately the same" but omits the residual analysis "in
// favor of brevity"; this experiment supplies it.
type ResidualRow struct {
	Host   string
	Method string
	KS     stats.KSResult
}

// Significant reports whether the residual distributions differ at the 5%
// level (i.e. forecasting changes the error distribution detectably).
func (r ResidualRow) Significant() bool { return r.KS.P < 0.05 }

// ExtensionResiduals runs the KS comparison for every host and method over
// the suite's short-term runs.
func (s *Suite) ExtensionResiduals() ([]ResidualRow, error) {
	var rows []ResidualRow
	for _, host := range HostNames {
		m, err := s.Short(host)
		if err != nil {
			return nil, err
		}
		for _, method := range core.Methods {
			meas := m.Measurements[method]
			mr, err := core.MeasurementResiduals(meas, m.Tests)
			if err != nil {
				return nil, fmt.Errorf("experiments: residuals %s/%s: %w", host, method, err)
			}
			fr, err := core.ForecastResiduals(meas, m.Tests)
			if err != nil {
				return nil, fmt.Errorf("experiments: forecast residuals %s/%s: %w", host, method, err)
			}
			ks, err := stats.KolmogorovSmirnov(mr, fr)
			if err != nil {
				return nil, fmt.Errorf("experiments: KS %s/%s: %w", host, method, err)
			}
			rows = append(rows, ResidualRow{Host: host, Method: method, KS: ks})
		}
	}
	return rows, nil
}

// FormatResiduals renders the residual-analysis table.
func FormatResiduals(rows []ResidualRow) string {
	var b strings.Builder
	b.WriteString("Extension: KS comparison of measurement vs true-forecast residuals\n")
	b.WriteString("(the analysis the paper omitted; small D / large p = forecasting does\n")
	b.WriteString(" not change the error distribution, the paper's claim)\n")
	fmt.Fprintf(&b, "%-12s %-14s %-8s %-8s %-6s\n", "Host", "Method", "D", "p", "diff?")
	for _, r := range rows {
		diff := ""
		if r.Significant() {
			diff = "yes"
		}
		fmt.Fprintf(&b, "%-12s %-14s %-8.3f %-8.3f %-6s\n", r.Host, r.Method, r.KS.D, r.KS.P, diff)
	}
	return b.String()
}
