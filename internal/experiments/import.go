package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"nwscpu/internal/core"
	"nwscpu/internal/series"
)

// Preload populates the suite's caches from a directory written by Export,
// so tables and figures can be regenerated from archived traces without
// re-running the simulations. Hosts with a complete set of files for a run
// kind (all three methods plus the tests series) are loaded; partial sets
// are skipped silently. Week traces load from <host>_week.csv. It returns
// the number of runs loaded.
func (s *Suite) Preload(dir string) (int, error) {
	loaded := 0
	readSeries := func(name string) (*series.Series, error) {
		f, err := os.Open(filepath.Join(dir, name+".csv"))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return series.ReadCSV(f, name)
	}

	for _, host := range HostNames {
		for _, kind := range []string{"short", "medium"} {
			meas := make(map[string]*series.Series, len(core.Methods))
			complete := true
			for _, method := range core.Methods {
				sr, err := readSeries(fmt.Sprintf("%s_%s_%s", host, kind, method))
				if err != nil {
					complete = false
					break
				}
				meas[method] = sr
			}
			if !complete {
				continue
			}
			tests, err := readSeries(fmt.Sprintf("%s_%s_tests", host, kind))
			if err != nil {
				continue
			}
			m := core.MonitorFromSeries(meas, tests)
			s.mu.Lock()
			if kind == "short" {
				s.short[host] = m
			} else {
				s.medium[host] = m
			}
			s.mu.Unlock()
			loaded++
		}
		if w, err := readSeries(host + "_week"); err == nil {
			s.mu.Lock()
			s.week[host] = w
			s.mu.Unlock()
			loaded++
		}
	}
	return loaded, nil
}
