package nwsnet

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"
)

// slowHandler answers every request after a fixed delay.
type slowHandler struct{ delay time.Duration }

func (h slowHandler) Handle(req Request) Response {
	time.Sleep(h.delay)
	return Response{}
}

func TestServerCloseDrainsInFlightRequests(t *testing.T) {
	srv := NewServer(slowHandler{delay: 200 * time.Millisecond}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// One raw connection with a request in flight: no client-side retry can
	// mask an aborted exchange.
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	bw := bufio.NewWriter(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	if err := writeMsg(bw, Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}

	// A second, idle connection must not hold the drain open.
	idle, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	time.Sleep(50 * time.Millisecond) // let the handler start
	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.Close() }()

	// The in-flight request must complete with a real response, not an
	// aborted connection.
	var resp Response
	if err := readMsg(br, &resp); err != nil {
		t.Fatalf("in-flight request aborted by Close: %v", err)
	}
	if !resp.OK {
		t.Fatalf("drained response = %+v", resp)
	}
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after draining")
	}
}

func TestClientContextCancelsCall(t *testing.T) {
	srv := NewServer(slowHandler{delay: time.Second}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(10 * time.Second) // the context, not the timeout, must cut this short
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	if err := c.PingCtx(ctx, addr); err == nil {
		t.Fatal("call outlived its context")
	}
	if d := time.Since(t0); d > 700*time.Millisecond {
		t.Fatalf("cancellation took %v", d)
	}
}

func TestClientDefaultTimeoutStillApplies(t *testing.T) {
	srv := NewServer(slowHandler{delay: time.Second}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// No context given: the constructor timeout is the only bound, as
	// before. With retries disabled the deadline error surfaces directly.
	c := NewClientOptions(ClientOptions{Timeout: 80 * time.Millisecond})
	t0 := time.Now()
	if err := c.Ping(addr); err == nil {
		t.Fatal("call outlived the configured timeout")
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("timeout took %v", d)
	}
}

func TestClientPoolsConnections(t *testing.T) {
	m := NewMemory(0)
	addr := startServer(t, m)
	conns0 := mServerConnsTotal.Value()
	c := NewClient(time.Second)
	defer c.Close()
	for i := 0; i < 20; i++ {
		if err := c.Store(addr, "p", [][2]float64{{float64(i), 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := mServerConnsTotal.Value() - conns0; got != 1 {
		t.Fatalf("20 sequential calls used %d connections, want 1 pooled", got)
	}
	if m.Len("p") != 20 {
		t.Fatalf("stored %d points, want 20", m.Len("p"))
	}
}
