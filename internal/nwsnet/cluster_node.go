package nwsnet

import (
	"sync"

	"nwscpu/internal/nwsnet/cluster"
)

// ClusterNode wraps a shard's Memory with the ownership guard of the
// partitioned deployment: requests for series keys the node does not own
// under its current membership view are answered with a CodeMoved redirect
// carrying that view, so a client holding a stale routing table refreshes
// and re-routes in one round trip instead of polling the registry.
//
// The guard is asymmetric on purpose:
//
//   - Stores of unowned keys always redirect. Accepting them would strand
//     points on a node clients will stop reading from.
//   - Fetches of unowned keys are still served when the node holds the
//     series locally. Rebalancing handoff depends on this: after an epoch
//     bump moves a range, the new owner backfills by fetching the history
//     from the previous owner — who by then no longer owns it. Serving what
//     the node has also keeps reads available during the transition window;
//     only a fetch of a key the node neither owns nor holds redirects.
//
// Ops without a series key (ping, series listing) pass through untouched,
// which is also what keeps pre-cluster v1 clients working against a
// cluster-enabled node. A node with no adopted view (single-node
// deployment, or an agent that has not joined yet) guards nothing.
type ClusterNode struct {
	id    string
	inner Handler
	mem   *Memory

	mu   sync.RWMutex
	view *cluster.View
	ring *cluster.Ring // memory-kind ring of view, cached
}

// NewClusterNode wraps mem as the shard owned by member id. The guard is
// inert until AdoptView installs a membership view.
func NewClusterNode(id string, mem *Memory) *ClusterNode {
	return &ClusterNode{id: id, inner: mem, mem: mem}
}

// NewClusterNodeHandler guards a handler that layers over mem (a
// PersistentMemory, say): owned requests dispatch through inner, while the
// guard's held-series checks and the handoff backfill go straight to mem.
func NewClusterNodeHandler(id string, inner Handler, mem *Memory) *ClusterNode {
	return &ClusterNode{id: id, inner: inner, mem: mem}
}

// Memory returns the wrapped store (the handoff path backfills through it).
func (n *ClusterNode) Memory() *Memory { return n.mem }

// ID returns the member ID this node guards for.
func (n *ClusterNode) ID() string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.id
}

// SetID renames the member this node guards for — for deployments that only
// learn their identity (an ephemeral bound address, say) after the handler
// is constructed. Must be called before the node's agent joins the cluster;
// the guard is inert until then, so serving traffic already is fine.
func (n *ClusterNode) SetID(id string) {
	n.mu.Lock()
	n.id = id
	n.mu.Unlock()
}

// AdoptView installs a membership view, replacing any older one. Stale
// views (an epoch at or below the one held) are ignored except as the first
// view, so racing adopters converge on the newest epoch.
func (n *ClusterNode) AdoptView(v cluster.View) {
	cp := v.Clone()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.view != nil && cp.Epoch <= n.view.Epoch {
		return
	}
	n.view = &cp
	n.ring = cp.Ring(string(KindMemory))
}

// View returns the node's current view (nil before the first AdoptView).
func (n *ClusterNode) View() *cluster.View {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.view
}

// owns reports whether this node is among the owners of key under the
// current view, returning the view for the redirect when it is not. With no
// view or no ring (no active members yet) everything is owned: the guard
// must never make a bootstrapping cluster reject its first writes.
func (n *ClusterNode) owns(key string) (bool, *cluster.View) {
	n.mu.RLock()
	self, view, ring := n.id, n.view, n.ring
	n.mu.RUnlock()
	if view == nil || ring == nil {
		return true, nil
	}
	for _, id := range ring.Owners(key, view.Config.Normalize().Replication) {
		if id == self {
			return true, nil
		}
	}
	return false, view
}

// redirects reports whether the guard answers req with an ownership
// redirect rather than forwarding it — a store of an unowned key, or a
// fetch of a key neither owned nor held locally (a held key is always
// served; see the type comment on why handoff requires that) — returning
// the view to embed in the redirect.
func (n *ClusterNode) redirects(req Request) (bool, *cluster.View) {
	if req.Series == "" {
		return false, nil
	}
	switch req.Op {
	case OpStore:
		ok, view := n.owns(req.Series)
		return !ok, view
	case OpFetch:
		if n.mem.Len(req.Series) > 0 {
			return false, nil
		}
		ok, view := n.owns(req.Series)
		return !ok, view
	}
	return false, nil
}

// Handle implements Handler: ownership-guarded dispatch into the Memory.
func (n *ClusterNode) Handle(req Request) Response {
	switch req.Op {
	case OpStore, OpFetch:
		if moved, view := n.redirects(req); moved {
			mClusterRedirects.Inc()
			return movedResp(view, "%s %q: not an owner under epoch %d", req.Op, req.Series, view.Epoch)
		}
		return n.inner.Handle(req)
	case OpBatch:
		return n.handleBatch(req)
	default:
		// Repair-plane ops (digest, backfill) pass through unguarded on
		// purpose: anti-entropy must be able to read and heal whatever a
		// node actually holds — including series stranded by a ring move —
		// mirroring how handoff fetches bypass the ownership check.
		return n.inner.Handle(req)
	}
}

// handleBatch guards a batch envelope. The common case — every sub-request
// owned — forwards the whole envelope so the Memory's batch concurrency and
// metrics apply; only an envelope with at least one misrouted sub falls back
// to per-sub dispatch, answering the misrouted subs with redirects while the
// owned ones still execute.
func (n *ClusterNode) handleBatch(req Request) Response {
	misrouted := false
	for _, sub := range req.Batch {
		if moved, _ := n.redirects(sub); moved {
			misrouted = true
			break
		}
	}
	if !misrouted {
		return n.inner.Handle(req)
	}
	out := make([]Response, len(req.Batch))
	for i, sub := range req.Batch {
		var r Response
		if sub.Op == OpBatch {
			r = errResp("batch: nested batch envelopes are not allowed")
		} else if moved, view := n.redirects(sub); moved {
			mClusterRedirects.Inc()
			r = movedResp(view, "%s %q: not an owner under epoch %d", sub.Op, sub.Series, view.Epoch)
		} else {
			r = n.inner.Handle(sub)
		}
		r.OK = r.Error == ""
		out[i] = r
	}
	return Response{Batch: out}
}

var _ Handler = (*ClusterNode)(nil)
