package nwsnet

import (
	"bufio"
	"net"
	"testing"
	"time"
)

// newStalledSink builds a binSink over a net.Pipe whose far end nobody
// reads — the wire picture of a subscriber that stopped draining its
// socket. The tiny write buffer makes every push hit the pipe directly.
func newStalledSink(t *testing.T, limits ServerLimits) (*binSink, net.Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	return &binSink{conn: c1, limits: limits, w: bufio.NewWriterSize(c1, 16)}, c2
}

func pushResult() Response {
	return Response{Forecast: &ForecastResult{Value: 0.5, Method: "mean", MAE: 0.01, N: 10}}
}

// TestPushNeverWedgesOnStalledSink is the slow-subscriber regression test:
// with no configured WriteTimeout (the default), a push into a stalled
// connection must not block its caller forever — the historical behavior
// wedged the refresher, and with it every other subscription on the
// service. A concurrent push while the first is still draining must be
// dropped immediately and counted in nws_forecast_pushes_dropped_total.
func TestPushNeverWedgesOnStalledSink(t *testing.T) {
	sink, _ := newStalledSink(t, ServerLimits{}) // WriteTimeout == 0: the buggy configuration
	drops0 := mFcPushesDropped.Value()

	// First push occupies the sink: it blocks on the unread pipe until the
	// push write budget expires and poisons the sink.
	firstErr := make(chan error, 1)
	go func() { firstErr <- sink.Push(1, pushResult()) }()

	// Give the first push time to enter the blocking write, then push
	// again: it must return (nil) promptly, dropping the frame.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if err := sink.Push(2, pushResult()); err != nil {
		t.Fatalf("concurrent push returned error: %v", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("concurrent push blocked %v behind a stalled sink", d)
	}
	if got := mFcPushesDropped.Value() - drops0; got != 1 {
		t.Fatalf("dropped-push counter after concurrent push = %d, want 1", got)
	}

	// The first push must come back too — bounded by pushWriteBudget, not
	// wedged forever — with a timeout error that poisons the sink.
	select {
	case err := <-firstErr:
		if err == nil {
			t.Fatal("stalled push reported success")
		}
	case <-time.After(2 * pushWriteBudget):
		t.Fatal("stalled push still wedged after twice the write budget")
	}
	if !sink.poisoned() {
		t.Fatal("sink not poisoned after push write budget expired")
	}
	if got := mFcPushesDropped.Value() - drops0; got != 2 {
		t.Fatalf("dropped-push counter after budget expiry = %d, want 2", got)
	}

	// Later pushes fail fast on the poisoned sink and count as drops.
	if err := sink.Push(3, pushResult()); err == nil {
		t.Fatal("push into poisoned sink succeeded")
	}
	if got := mFcPushesDropped.Value() - drops0; got != 3 {
		t.Fatalf("dropped-push counter after poisoned push = %d, want 3", got)
	}
}

// TestPushSeriesSurvivesStalledSubscriber checks the service-level
// consequence: one stalled subscriber must not starve a healthy one of its
// pushes, and the stalled subscription itself stays registered while its
// frames are dropped (teardown happens only once the sink is poisoned).
func TestPushSeriesSurvivesStalledSubscriber(t *testing.T) {
	mem := NewMemory(0)
	mem.Handle(Request{Op: OpStore, Series: "h/cpu/m", Points: [][2]float64{{1, 0.5}}})
	f := NewForecasterServiceBackend(NewLocalBackend(mem), 0)

	stalled, _ := newStalledSink(t, ServerLimits{})
	healthy, healthyPeer := newStalledSink(t, ServerLimits{})
	// Drain the healthy peer so its pushes always land.
	received := make(chan int, 64)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := healthyPeer.Read(buf)
			if n > 0 {
				received <- n
			}
			if err != nil {
				return
			}
		}
	}()

	for id, sink := range map[uint64]*binSink{1: stalled, 2: healthy} {
		if resp := f.Subscribe(Request{Op: OpSubscribe, Series: "h/cpu/m"}, id, sink); resp.Error != "" {
			t.Fatalf("subscribe: %v", resp.Error)
		}
	}
	if n := f.Subscriptions(); n != 2 {
		t.Fatalf("subscriptions = %d, want 2", n)
	}

	// Occupy the stalled sink so pushes to it drop instead of block.
	go occupySink(stalled)
	time.Sleep(50 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		f.pushSeries("h/cpu/m", ForecastResult{Value: 0.4, Method: "mean", N: 11})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(500 * time.Millisecond):
		t.Fatal("pushSeries wedged behind the stalled subscriber")
	}
	select {
	case <-received:
	case <-time.After(500 * time.Millisecond):
		t.Fatal("healthy subscriber never received its push")
	}
	// The stalled subscriber's frame was dropped, not its subscription.
	if n := f.Subscriptions(); n != 2 {
		t.Fatalf("subscriptions after drop = %d, want 2 (drop must not unsubscribe)", n)
	}
}

// occupySink parks a push in a sink's blocking write until the write
// budget expires; its result is irrelevant to the callers.
func occupySink(k *binSink) { _ = k.Push(1, pushResult()) }
