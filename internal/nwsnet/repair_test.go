package nwsnet

import (
	"context"
	"math"
	"testing"
	"time"

	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
)

// localReplicaSet builds n in-process memories behind a LocalTransport at
// addresses "mem-0".."mem-(n-1)".
func localReplicaSet(n int) (*LocalTransport, []*Memory, []string) {
	lt := NewLocalTransport()
	mems := make([]*Memory, n)
	addrs := make([]string, n)
	for i := range mems {
		mems[i] = NewMemory(0)
		addrs[i] = "mem-" + string(rune('0'+i))
		lt.Register(addrs[i], mems[i])
	}
	return lt, mems, addrs
}

// digestsEqual reports whether two memories hold bit-identical series sets.
func digestsEqual(a, b *Memory) bool {
	da, db := a.Digests(""), b.Digests("")
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

func TestSeriesDigestIdentity(t *testing.T) {
	a, b := NewMemory(0), NewMemory(0)
	pts := [][2]float64{{1, 0.1}, {2, 0.2}, {3, 0.3}}
	a.Handle(Request{Op: OpStore, Series: "k", Points: pts})
	b.Handle(Request{Op: OpStore, Series: "k", Points: pts})
	da, ok := a.Digest("k")
	if !ok {
		t.Fatal("digest of stored series missing")
	}
	db, _ := b.Digest("k")
	if da != db {
		t.Fatalf("identical series digest mismatch: %+v vs %+v", da, db)
	}
	if da.Count != 3 || da.Frontier != 3 {
		t.Fatalf("digest = %+v, want count 3 frontier 3", da)
	}

	// A single flipped value changes the checksum even with count and
	// frontier equal.
	c := NewMemory(0)
	c.Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{1, 0.1}, {2, 0.9}, {3, 0.3}}})
	if dc, _ := c.Digest("k"); dc.Sum == da.Sum {
		t.Fatal("value flip did not change the checksum")
	}

	// PrefixDigest over the whole series matches the full digest; a shorter
	// prefix matches a memory holding just that prefix.
	if p := a.PrefixDigest("k", 3); p != da {
		t.Fatalf("full prefix digest %+v != digest %+v", p, da)
	}
	short := NewMemory(0)
	short.Handle(Request{Op: OpStore, Series: "k", Points: pts[:2]})
	ds, _ := short.Digest("k")
	if p := a.PrefixDigest("k", 2); p.Count != ds.Count || p.Sum != ds.Sum {
		t.Fatalf("prefix digest %+v != short-series digest %+v", p, ds)
	}

	if _, ok := a.Digest("absent"); ok {
		t.Fatal("digest of unknown series reported ok")
	}
}

func TestLocalTransportFaultModes(t *testing.T) {
	lt, mems, addrs := localReplicaSet(1)
	ctx := context.Background()
	stores := []BatchStore{{Series: "k", Points: [][2]float64{{1, 0.5}}}}

	if _, err := lt.StoreBatchCtx(ctx, "nowhere", stores); err == nil {
		t.Fatal("store to unregistered address succeeded")
	}

	lt.SetDown(addrs[0], true)
	if err := lt.PingCtx(ctx, addrs[0]); err == nil {
		t.Fatal("ping of down node succeeded")
	}
	if _, err := lt.StoreBatchCtx(ctx, addrs[0], stores); err == nil {
		t.Fatal("store to down node succeeded")
	}
	if mems[0].Len("k") != 0 {
		t.Fatal("down node applied a store")
	}

	// Partitioned: the call fails but the write took effect.
	lt.SetDown(addrs[0], false)
	lt.SetPartitioned(addrs[0], true)
	if _, err := lt.StoreBatchCtx(ctx, addrs[0], stores); err == nil {
		t.Fatal("store through partition reported success")
	}
	if mems[0].Len("k") != 1 {
		t.Fatalf("partitioned node holds %d points, want applied write", mems[0].Len("k"))
	}

	lt.SetPartitioned(addrs[0], false)
	if errs, err := lt.StoreBatchCtx(ctx, addrs[0], stores); err != nil || errs[0] != nil {
		t.Fatalf("store after recovery = %v, %v", errs, err)
	}
	pts, err := lt.FetchCtx(ctx, addrs[0], "k", 0, 0, 0)
	if err != nil || len(pts) != 1 {
		t.Fatalf("fetch after recovery = %v, %v", pts, err)
	}
}

func TestHintedHandoffQueuesAndReplays(t *testing.T) {
	lt, mems, addrs := localReplicaSet(3)
	g := NewReplicaGroupTransport(lt, addrs, 2)
	ctx := context.Background()

	lt.SetDown(addrs[2], true)
	if err := g.Store(ctx, "k", [][2]float64{{1, 0.1}, {2, 0.2}}); err != nil {
		t.Fatalf("quorum store with one down replica: %v", err)
	}
	if hs := g.HintStats(); hs.Queued != 2 {
		t.Fatalf("hint stats after miss = %+v, want 2 queued", hs)
	}
	if mems[2].Len("k") != 0 {
		t.Fatal("down replica holds points")
	}

	// Recovery observation (a successful ping) replays the hints.
	lt.SetDown(addrs[2], false)
	g.CheckHealth(ctx)
	if mems[2].Len("k") != 2 {
		t.Fatalf("recovered replica holds %d points, want 2 from hint replay", mems[2].Len("k"))
	}
	if hs := g.HintStats(); hs.Replayed != 2 || hs.Dropped != 0 {
		t.Fatalf("hint stats after replay = %+v", hs)
	}
	if !digestsEqual(mems[0], mems[2]) {
		t.Fatal("replicas not bit-identical after hint replay")
	}
}

func TestHintedHandoffReplaysOnNextCleanStore(t *testing.T) {
	lt, mems, addrs := localReplicaSet(3)
	g := NewReplicaGroupTransport(lt, addrs, 2)
	ctx := context.Background()

	lt.SetDown(addrs[2], true)
	if err := g.Store(ctx, "k", [][2]float64{{1, 0.1}}); err != nil {
		t.Fatal(err)
	}
	lt.SetDown(addrs[2], false)
	// The next clean write doubles as the recovery observation: the hint
	// (older than the new point) merges in behind it via backfill.
	if err := g.Store(ctx, "k", [][2]float64{{2, 0.2}}); err != nil {
		t.Fatal(err)
	}
	if mems[2].Len("k") != 2 {
		t.Fatalf("replica holds %d points, want 2 (hint merged behind newer write)", mems[2].Len("k"))
	}
	if !digestsEqual(mems[0], mems[2]) {
		t.Fatal("replicas not bit-identical after in-band replay")
	}
}

func TestHintedHandoffPartitionedReplicaIdempotent(t *testing.T) {
	lt, mems, addrs := localReplicaSet(3)
	g := NewReplicaGroupTransport(lt, addrs, 2)
	ctx := context.Background()

	// Applied but unacknowledged: the write lands on the partitioned replica
	// yet the group cannot know, so it parks a hint anyway.
	lt.SetPartitioned(addrs[2], true)
	if err := g.Store(ctx, "k", [][2]float64{{1, 0.5}}); err != nil {
		t.Fatalf("quorum store through partition: %v", err)
	}
	if mems[2].Len("k") != 1 {
		t.Fatal("partitioned replica did not apply the write")
	}
	if hs := g.HintStats(); hs.Queued != 1 {
		t.Fatalf("hint stats = %+v, want 1 queued for the unacked write", hs)
	}

	// Replaying the hint after recovery is a duplicate delivery; backfill
	// dedups it.
	lt.SetPartitioned(addrs[2], false)
	g.CheckHealth(ctx)
	if mems[2].Len("k") != 1 {
		t.Fatalf("replica holds %d points after duplicate replay, want 1", mems[2].Len("k"))
	}
	if !digestsEqual(mems[0], mems[2]) {
		t.Fatal("replicas not bit-identical after idempotent replay")
	}
}

func TestHintCapDropsOldestAndRepairCloses(t *testing.T) {
	lt, mems, addrs := localReplicaSet(3)
	g := NewReplicaGroupTransport(lt, addrs, 2)
	g.SetHintCap(2)
	ctx := context.Background()

	lt.SetDown(addrs[2], true)
	if err := g.Store(ctx, "k", [][2]float64{{1, 0.1}, {2, 0.2}, {3, 0.3}}); err != nil {
		t.Fatal(err)
	}
	if hs := g.HintStats(); hs.Queued != 3 || hs.Dropped != 1 {
		t.Fatalf("hint stats = %+v, want 3 queued / 1 dropped at cap 2", hs)
	}
	lt.SetDown(addrs[2], false)
	g.CheckHealth(ctx)
	if mems[2].Len("k") != 2 {
		t.Fatalf("replica holds %d points, want 2 (oldest hint dropped)", mems[2].Len("k"))
	}

	// Anti-entropy closes what the bounded hints could not.
	rp := NewRepairer(lt, mems[2], addrs[:2])
	n, err := rp.RepairRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("repair recovered %d points, want the 1 dropped hint", n)
	}
	if st := rp.Stats(); st.Rounds != 1 || st.PointsRecovered != 1 {
		t.Fatalf("repair stats = %+v", st)
	}
	if !digestsEqual(mems[0], mems[2]) {
		t.Fatal("replicas not bit-identical after repair")
	}
}

func TestRepairerTailLagAndConvergence(t *testing.T) {
	lt, mems, addrs := localReplicaSet(2)
	ctx := context.Background()
	full := [][2]float64{{1, 0.1}, {2, 0.2}, {3, 0.3}}
	mems[0].Handle(Request{Op: OpStore, Series: "k", Points: full})
	mems[1].Handle(Request{Op: OpStore, Series: "k", Points: full[:2]})

	// Pure lag: the repairer pulls only the missing tail.
	rp := NewRepairer(lt, mems[1], addrs[:1])
	n, err := rp.RepairRound(ctx)
	if err != nil || n != 1 {
		t.Fatalf("tail repair = %d, %v; want 1 recovered", n, err)
	}
	if !digestsEqual(mems[0], mems[1]) {
		t.Fatal("replicas not bit-identical after tail repair")
	}

	// In sync: another round moves nothing.
	if n, err := rp.RepairRound(ctx); err != nil || n != 0 {
		t.Fatalf("steady-state repair = %d, %v; want 0 recovered", n, err)
	}

	// Locally ahead: the peer is behind us, so repairing FROM it is a no-op
	// (the peer's own repairer pulls our tail).
	mems[1].Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{4, 0.4}}})
	if n, err := rp.RepairRound(ctx); err != nil || n != 0 {
		t.Fatalf("ahead-of-peer repair = %d, %v; want 0 recovered", n, err)
	}
}

func TestRepairerMidSeriesHoleRefetches(t *testing.T) {
	lt, mems, addrs := localReplicaSet(2)
	ctx := context.Background()
	mems[0].Handle(Request{Op: OpStore, Series: "k",
		Points: [][2]float64{{1, 0.1}, {2, 0.2}, {3, 0.3}, {4, 0.4}}})
	// Same frontier, hole in the middle — the tail path cannot help; the
	// body mismatch forces a full refetch.
	mems[1].Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{1, 0.1}, {4, 0.4}}})

	rp := NewRepairer(lt, mems[1], addrs[:1])
	n, err := rp.RepairRound(ctx)
	if err != nil || n != 2 {
		t.Fatalf("hole repair = %d, %v; want 2 recovered", n, err)
	}
	if !digestsEqual(mems[0], mems[1]) {
		t.Fatal("replicas not bit-identical after hole repair")
	}
}

func TestRepairRoundSurvivesDownPeer(t *testing.T) {
	lt, mems, addrs := localReplicaSet(3)
	ctx := context.Background()
	pts := [][2]float64{{1, 0.1}, {2, 0.2}}
	mems[0].Handle(Request{Op: OpStore, Series: "k", Points: pts})
	mems[1].Handle(Request{Op: OpStore, Series: "k", Points: pts})
	lt.SetDown(addrs[0], true)

	rp := NewRepairer(lt, mems[2], addrs[:2])
	n, err := rp.RepairRound(ctx)
	if err == nil {
		t.Fatal("round with a down peer reported no error")
	}
	if n != 2 {
		t.Fatalf("round recovered %d points, want 2 from the live peer", n)
	}
	if !digestsEqual(mems[1], mems[2]) {
		t.Fatal("live peer's series not replicated")
	}
}

// TestReplicaDivergenceBeyondBacklogWindow pins the divergence bug the
// repair plane exists for, then flips it to a convergence assertion.
//
// A replica that stays down while writes keep meeting quorum is beyond the
// writer's help: sensord's store-and-forward backlog is cleared on every
// quorum success (and is bounded anyway), so once the outage outlasts the
// backlog window nothing upstream still holds the missed points. Without
// anti-entropy the revived replica is permanently missing the outage range —
// that divergence is asserted first, then one repair round converges the
// group bit-identically with zero measurement loss.
func TestReplicaDivergenceBeyondBacklogWindow(t *testing.T) {
	lt, mems, addrs := localReplicaSet(3)
	h := simos.New(simos.DefaultConfig())
	h.Spawn(simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: 3600})
	d := NewSensorDaemonReplicas("rhost", sensors.SimHost{H: h}, addrs, 2, sensors.HybridConfig{})
	defer d.Close()
	// Rewire the daemon onto the in-process replica set, hints disabled to
	// isolate the anti-entropy path (hints would cover a bounded slice of
	// the outage; the bug is about everything beyond them).
	g := NewReplicaGroupTransport(lt, addrs, 2)
	g.SetHintCap(0)
	d.group = g
	d.SetBacklogCap(4)

	var steps []float64
	step := func() {
		t.Helper()
		h.RunUntil(h.Now() + 10)
		// The measurement timestamp is the clock at Step entry (the hybrid
		// sensor's probe spin advances it during the step).
		ts := h.Now()
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		steps = append(steps, ts)
	}

	step()
	step()
	lt.SetDown(addrs[2], true)
	// Outage 3x the backlog window. Every step meets quorum (2/3 up), so
	// the writer forgets each batch immediately — the backlog never grows
	// and cannot heal this replica no matter how large it is.
	for i := 0; i < 3*d.BacklogCap(); i++ {
		step()
	}
	lt.SetDown(addrs[2], false)
	step()
	step()

	// The divergence, pinned: the revived replica took the post-outage
	// writes (same frontier as its peers) but is missing the whole outage.
	key := SeriesKey("rhost", "vmstat")
	d0, _ := mems[0].Digest(key)
	d2, _ := mems[2].Digest(key)
	if d2.Frontier != d0.Frontier {
		t.Fatalf("revived replica frontier %v, want %v (post-outage writes lost)", d2.Frontier, d0.Frontier)
	}
	if missed := int(d0.Count - d2.Count); missed != 3*d.BacklogCap() {
		t.Fatalf("revived replica missing %d points, want the full %d-step outage", missed, 3*d.BacklogCap())
	}
	if digestsEqual(mems[0], mems[2]) {
		t.Fatal("divergence not reproduced: replicas identical without repair")
	}

	// The fix: one anti-entropy round converges the replica bit-identically.
	rp := NewRepairer(lt, mems[2], addrs[:2])
	recovered, err := rp.RepairRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 3 * d.BacklogCap(); recovered != want {
		t.Fatalf("repair recovered %d points, want %d (3 series x outage)", recovered, want)
	}
	if !digestsEqual(mems[0], mems[2]) || !digestsEqual(mems[1], mems[2]) {
		t.Fatal("replicas not bit-identical after repair")
	}
	// Zero measurement loss: every step's timestamp is on every replica.
	for mi, m := range mems {
		resp := m.Handle(Request{Op: OpFetch, Series: key})
		if resp.Error != "" {
			t.Fatalf("replica %d: %s", mi, resp.Error)
		}
		seen := map[float64]bool{}
		for _, p := range resp.Points {
			seen[p[0]] = true
		}
		for _, ts := range steps {
			if !seen[ts] {
				t.Fatalf("replica %d missing measurement at t=%v", mi, ts)
			}
		}
	}
}

func TestRepairerStartStop(t *testing.T) {
	lt, mems, addrs := localReplicaSet(2)
	mems[0].Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{1, 0.1}}})
	rp := NewRepairer(lt, mems[1], addrs[:1])
	rp.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for mems[1].Len("k") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rp.Stop()
	rp.Stop() // idempotent
	if mems[1].Len("k") != 1 {
		t.Fatal("background repair loop never converged the replica")
	}
	rounds := rp.Stats().Rounds
	time.Sleep(5 * time.Millisecond)
	if got := rp.Stats().Rounds; got != rounds {
		t.Fatalf("repair loop still running after Stop: %d -> %d rounds", rounds, got)
	}
	rp.Start(time.Millisecond) // start-after-stop is a no-op
	time.Sleep(5 * time.Millisecond)
	if got := rp.Stats().Rounds; got != rounds {
		t.Fatal("Start after Stop relaunched the loop")
	}
}
