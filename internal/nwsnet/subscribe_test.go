package nwsnet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nwscpu/internal/nwsnet/cluster"
	"nwscpu/internal/resilience"
)

// startForecastPlane runs a memory server plus a forecaster over it with
// the refresher ticking, returning the memory handler (store points through
// it directly), the forecaster, and the forecaster's address.
func startForecastPlane(t *testing.T, tick time.Duration) (*Memory, *ForecasterService, string) {
	t.Helper()
	mem := NewMemory(0)
	_, memAddr := startServerLimits(t, mem, ServerLimits{})
	f := NewForecasterService(memAddr, 2*time.Second)
	f.StartRefresher(tick)
	t.Cleanup(f.StopRefresher)
	_, fcAddr := startServerLimits(t, f, ServerLimits{})
	return mem, f, fcAddr
}

// TestSubscribeAckAndPush walks the whole read-plane lifecycle on one
// connection: subscribe acks with the current forecast, a remote store is
// pushed within a refresh tick, and unsubscribe stops the pushes.
func TestSubscribeAckAndPush(t *testing.T) {
	mem, _, fcAddr := startForecastPlane(t, 20*time.Millisecond)
	if resp := mem.Handle(Request{Op: OpStore, Series: "s", Points: [][2]float64{{1, 0.5}, {2, 0.5}, {3, 0.5}}}); resp.Error != "" {
		t.Fatal(resp.Error)
	}

	mux, err := DialMux(fcAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	pushes := make(chan Response, 16)
	ack, err := mux.Subscribe("s", func(resp Response, err error) {
		if err == nil {
			pushes <- resp
		}
	}).Wait()
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if ack.Forecast == nil || ack.Forecast.N != 3 {
		t.Fatalf("ack forecast %+v, want one over 3 points", ack.Forecast)
	}
	if got := mux.Subscriptions(); got != 1 {
		t.Fatalf("client tracks %d subscriptions, want 1", got)
	}

	mem.Handle(Request{Op: OpStore, Series: "s", Points: [][2]float64{{4, 0.5}, {5, 0.5}}})
	select {
	case resp := <-pushes:
		if resp.Forecast == nil || resp.Forecast.N != 5 {
			t.Fatalf("push forecast %+v, want one over 5 points", resp.Forecast)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no push within 100 refresh ticks of the store")
	}

	if _, err := mux.Unsubscribe("s").Wait(); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	mem.Handle(Request{Op: OpStore, Series: "s", Points: [][2]float64{{6, 0.5}}})
	select {
	case resp := <-pushes:
		t.Fatalf("push %+v after unsubscribe", resp.Forecast)
	case <-time.After(150 * time.Millisecond):
	}
}

// TestSubscribeUnsupportedOnJSON pins the v1 story: a JSON-lines client
// asking to subscribe gets a terminal error, not a hang and not a busy.
func TestSubscribeUnsupportedOnJSON(t *testing.T) {
	_, f, fcAddr := startForecastPlane(t, 50*time.Millisecond)
	c := NewClientOptions(ClientOptions{Timeout: time.Second, Codec: CodecJSON})
	defer c.Close()
	_, err := c.do(context.Background(), fcAddr, Request{Op: OpSubscribe, Series: "s"})
	if err == nil || !resilience.IsTerminal(err) {
		t.Fatalf("v1 subscribe: %v, want terminal", err)
	}
	if n := f.Subscriptions(); n != 0 {
		t.Fatalf("v1 subscribe registered %d subscriptions", n)
	}
}

// TestManySubscribersOneTick races 32 subscribers against one store: every
// subscriber must see the resulting push exactly once — the hub may not
// drop a sink mid-registration, and a tick that consumed no new points may
// not push. Run under -race, it is also the lock-order check for the
// sink-write/hub/engine lock triangle.
func TestManySubscribersOneTick(t *testing.T) {
	mem, f, fcAddr := startForecastPlane(t, 25*time.Millisecond)

	const subscribers = 32
	var counts [subscribers]atomic.Int64
	conns := make([]*MuxConn, subscribers)
	var wg sync.WaitGroup
	errs := make(chan error, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mux, err := DialMux(fcAddr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			conns[i] = mux
			if _, err := mux.Subscribe("s", func(resp Response, err error) {
				if err == nil {
					counts[i].Add(1)
				}
			}).Wait(); err != nil {
				errs <- fmt.Errorf("subscriber %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	defer func() {
		for _, mux := range conns {
			if mux != nil {
				mux.Close()
			}
		}
	}()
	if n := f.Subscriptions(); n != subscribers {
		t.Fatalf("hub holds %d subscriptions, want %d", n, subscribers)
	}

	// One store; the next tick recomputes once and fans out once.
	mem.Handle(Request{Op: OpStore, Series: "s", Points: [][2]float64{{1, 0.25}, {2, 0.25}}})
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for i := range counts {
			if counts[i].Load() < 1 {
				all = false
				break
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("not every subscriber saw the push")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Several more ticks with no new points: counts must not move.
	time.Sleep(200 * time.Millisecond)
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("subscriber %d saw %d pushes for one store, want exactly 1", i, got)
		}
	}

	// Teardown drops every subscription server-side.
	for _, mux := range conns {
		mux.Close()
	}
	deadline = time.Now().Add(2 * time.Second)
	for f.Subscriptions() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hub still holds %d subscriptions after every connection closed", f.Subscriptions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubscribedConnectionSurvivesIdleTimeout checks the idle-reaper
// exemption: a connection whose only activity is inbound pushes must not be
// shed, while an unsubscribed idle connection on the same server still is.
func TestSubscribedConnectionSurvivesIdleTimeout(t *testing.T) {
	mem := NewMemory(0)
	_, memAddr := startServerLimits(t, mem, ServerLimits{})
	f := NewForecasterService(memAddr, 2*time.Second)
	f.StartRefresher(20 * time.Millisecond)
	t.Cleanup(f.StopRefresher)
	_, fcAddr := startServerLimits(t, f, ServerLimits{IdleTimeout: 120 * time.Millisecond})

	mux, err := DialMux(fcAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	var pushed atomic.Int64
	if _, err := mux.Subscribe("s", func(resp Response, err error) {
		if err == nil {
			pushed.Add(1)
		}
	}).Wait(); err != nil {
		t.Fatal(err)
	}

	time.Sleep(400 * time.Millisecond) // several idle-timeout laps, zero requests
	mem.Handle(Request{Op: OpStore, Series: "s", Points: [][2]float64{{1, 1}}})
	deadline := time.Now().Add(2 * time.Second)
	for pushed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscribed connection was idle-reaped: store never pushed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The connection is still serviceable for ordinary requests too.
	if _, err := mux.Do(Request{Op: OpPing}); err != nil {
		t.Fatalf("ping on long-idle subscribed connection: %v", err)
	}
}

// TestMuxRedialReplaysIdleCutWindow is the regression for the idle-poisoned
// burst: a server idle-closes a quiet MuxConn, the next pipelined window
// hits the dead transport, and the client must redial once and replay the
// window transparently — every call succeeds, nothing is dropped or
// doubled, and the gate re-arms for the next idle period.
func TestMuxRedialReplaysIdleCutWindow(t *testing.T) {
	mem := NewMemory(0)
	_, addr := startServerLimits(t, mem, ServerLimits{IdleTimeout: 100 * time.Millisecond})

	mux, err := DialMux(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	if _, err := mux.Do(Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}

	redials0 := mMuxRedials.Value()
	const rounds, per = 2, 40
	for round := 0; round < rounds; round++ {
		time.Sleep(300 * time.Millisecond) // server idle-reaps the connection
		calls := make([]*MuxCall, per)
		for i := 0; i < per; i++ {
			calls[i] = mux.Go(Request{Op: OpStore, Series: "k",
				Points: [][2]float64{{float64(round*per + i + 1), 1}}})
		}
		for i, c := range calls {
			if _, err := c.Wait(); err != nil {
				t.Fatalf("round %d call %d: %v", round, i, err)
			}
		}
	}
	resp, err := mux.Do(Request{Op: OpFetch, Series: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != rounds*per {
		t.Fatalf("stored %d points across redials, fetched %d", rounds*per, len(resp.Points))
	}
	if got := mMuxRedials.Value() - redials0; got != rounds {
		t.Fatalf("%d redials for %d idle-cut bursts", got, rounds)
	}
}

// TestMuxRedialIsOneShot checks the failure semantics stay explicit when
// the redial cannot help: a server that is gone stays gone, and the window
// fails with a transport error after exactly one replay attempt.
func TestMuxRedialIsOneShot(t *testing.T) {
	mem := NewMemory(0)
	srv, addr := startServerLimits(t, mem, ServerLimits{})
	mux, err := DialMux(addr, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	if _, err := mux.Do(Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	time.Sleep(50 * time.Millisecond)
	// The burst hits a closed server; the one redial fails to connect, so
	// every call completes with an error rather than retrying forever.
	calls := make([]*MuxCall, 8)
	for i := range calls {
		calls[i] = mux.Go(Request{Op: OpStore, Series: "k", Points: [][2]float64{{float64(i + 1), 1}}})
	}
	for i, c := range calls {
		if _, err := c.Wait(); err == nil {
			t.Fatalf("call %d succeeded against a closed server", i)
		}
	}
}

// TestWarmPartialFailure is the regression for half-primed warm-up: when
// priming fails for one series mid-batch, the others must land in their own
// engines (no positional cross-feeding), the failed series must stay
// cold — not marked warm — and the next Warm must re-prime it from its
// untouched frontier.
func TestWarmPartialFailure(t *testing.T) {
	mem := NewMemory(0)
	var failBad atomic.Bool
	// Chaos wrapper: truncate (fail) the "bad" sub-fetch inside a batch,
	// exactly what a mid-envelope cancellation does to one series.
	flaky := handlerFunc(func(req Request) Response {
		resp := mem.Handle(req)
		if failBad.Load() && req.Op == OpBatch {
			for i, sub := range req.Batch {
				if sub.Op == OpFetch && sub.Series == "bad" && i < len(resp.Batch) {
					resp.Batch[i] = errResp("chaos: truncated fetch")
				}
			}
		}
		return resp
	})
	_, addr := startServerLimits(t, flaky, ServerLimits{})

	const per = 50
	good := make([][2]float64, per)
	bad := make([][2]float64, per)
	for i := 0; i < per; i++ {
		good[i] = [2]float64{float64(i + 1), 1.0}
		bad[i] = [2]float64{float64(i + 1), 2.0}
	}
	mem.Handle(Request{Op: OpStore, Series: "good", Points: good})
	mem.Handle(Request{Op: OpStore, Series: "bad", Points: bad})

	f := NewForecasterService(addr, 2*time.Second)
	ctx := context.Background()

	failBad.Store(true)
	n, err := f.Warm(ctx, []string{"good", "bad"})
	if err != nil {
		t.Fatalf("warm with one failed series: %v", err)
	}
	if n != per {
		t.Fatalf("first warm consumed %d points, want %d (good only)", n, per)
	}

	failBad.Store(false)
	n, err = f.Warm(ctx, []string{"good", "bad"})
	if err != nil {
		t.Fatal(err)
	}
	if n != per {
		t.Fatalf("re-warm consumed %d points, want %d (bad, from its untouched frontier)", n, per)
	}

	// Both engines forecast over their own full history; a constant series
	// forecasts its constant, so a cross-fed point would move the value.
	for series, want := range map[string]float64{"good": 1.0, "bad": 2.0} {
		resp := f.Handle(Request{Op: OpForecast, Series: series})
		if resp.Error != "" {
			t.Fatalf("forecast %q: %s", series, resp.Error)
		}
		if resp.Forecast.N != per {
			t.Fatalf("forecast %q over %d points, want %d", series, resp.Forecast.N, per)
		}
		if resp.Forecast.Value != want {
			t.Fatalf("forecast %q = %g, want %g — engines cross-fed", series, resp.Forecast.Value, want)
		}
	}
}

// TestAdoptViewHandsOffSubscriptions checks the ownership-change path: when
// a view stops assigning a subscribed series to this forecaster, the
// subscriber gets one terminal moved push carrying the authoritative view,
// and the hub forgets the subscription. Series still owned keep flowing.
func TestAdoptViewHandsOffSubscriptions(t *testing.T) {
	_, f, fcAddr := startForecastPlane(t, 20*time.Millisecond)
	f.SetClusterSelf("fc-self")

	mux, err := DialMux(fcAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	type end struct {
		resp Response
		err  error
	}
	moved := make(chan end, 1)
	if _, err := mux.Subscribe("a", func(resp Response, err error) {
		if err != nil {
			moved <- end{resp, err}
		}
	}).Wait(); err != nil {
		t.Fatal(err)
	}

	// A view that still assigns everything here: nothing moves.
	keep := &cluster.View{
		Epoch:  3,
		Config: cluster.Config{Replication: 1, VNodes: 16},
		Members: []cluster.Member{
			{ID: "fc-self", Kind: string(KindForecaster), Addr: fcAddr, State: cluster.StateActive},
		},
	}
	f.AdoptView(keep)
	if n := f.Subscriptions(); n != 1 {
		t.Fatalf("owned subscription dropped by a view that kept it (%d left)", n)
	}

	// A view that moves every series to another member: one moved push.
	away := &cluster.View{
		Epoch:  4,
		Config: cluster.Config{Replication: 1, VNodes: 16},
		Members: []cluster.Member{
			{ID: "fc-other", Kind: string(KindForecaster), Addr: "127.0.0.1:9", State: cluster.StateActive},
		},
	}
	f.AdoptView(away)
	select {
	case got := <-moved:
		if _, ok := IsMoved(got.err); !ok {
			t.Fatalf("terminal push classified %v, want moved", got.err)
		}
		if got.resp.View == nil || got.resp.View.Epoch != 4 {
			t.Fatalf("moved push view %+v, want the epoch-4 view", got.resp.View)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no moved push after losing ownership")
	}
	if n := f.Subscriptions(); n != 0 {
		t.Fatalf("hub still holds %d subscriptions after handoff", n)
	}
}
