package nwsnet

import (
	"errors"
	"fmt"
	"time"
)

// observeCall records one outbound protocol call in the client metrics.
func observeCall(op Op, t0 time.Time, err error) {
	o := string(op)
	mClientCalls.With(o).Inc()
	mClientLatency.With(o).ObserveSince(t0)
	if err != nil {
		mClientErrors.With(o).Inc()
	}
}

// Client performs protocol calls against nwsnet servers. The zero value is
// not usable; create clients with NewClient.
type Client struct {
	timeout time.Duration
}

// NewClient returns a client whose calls time out after the given duration
// (0 selects 5 s).
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Client{timeout: timeout}
}

// do performs a call and converts protocol-level errors to Go errors.
func (c *Client) do(addr string, req Request) (resp Response, err error) {
	t0 := time.Now()
	defer func() { observeCall(req.Op, t0, err) }()
	resp, err = call(addr, c.timeout, req)
	if err != nil {
		return Response{}, err
	}
	if resp.Error != "" {
		return Response{}, errors.New(resp.Error)
	}
	return resp, nil
}

// Ping checks a component is alive.
func (c *Client) Ping(addr string) error {
	_, err := c.do(addr, Request{Op: OpPing})
	return err
}

// Register announces a component to the name server at nsAddr.
func (c *Client) Register(nsAddr string, reg Registration) error {
	_, err := c.do(nsAddr, Request{Op: OpRegister, Reg: reg})
	return err
}

// Lookup resolves a component name at the name server.
func (c *Client) Lookup(nsAddr, name string) (Registration, error) {
	resp, err := c.do(nsAddr, Request{Op: OpLookup, Reg: Registration{Name: name}})
	if err != nil {
		return Registration{}, err
	}
	if len(resp.Entries) != 1 {
		return Registration{}, fmt.Errorf("nwsnet: lookup %q returned %d entries", name, len(resp.Entries))
	}
	return resp.Entries[0], nil
}

// List enumerates components of the given kind ("" for all).
func (c *Client) List(nsAddr string, kind Kind) ([]Registration, error) {
	resp, err := c.do(nsAddr, Request{Op: OpList, Reg: Registration{Kind: kind}})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Store appends points ([t, v] pairs) to a series on the memory server.
func (c *Client) Store(memAddr, key string, points [][2]float64) error {
	_, err := c.do(memAddr, Request{Op: OpStore, Series: key, Points: points})
	return err
}

// Fetch reads back points of a series with t in [from, to) (to == 0 means
// "through the latest point"), limited to the most recent max points when
// max > 0.
func (c *Client) Fetch(memAddr, key string, from, to float64, max int) ([][2]float64, error) {
	resp, err := c.do(memAddr, Request{Op: OpFetch, Series: key, From: from, To: to, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// Series lists the series keys a memory server holds.
func (c *Client) Series(memAddr string) ([]string, error) {
	resp, err := c.do(memAddr, Request{Op: OpSeries})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Forecast asks a forecaster service for the one-step-ahead prediction of a
// series.
func (c *Client) Forecast(fcAddr, key string) (ForecastResult, error) {
	resp, err := c.do(fcAddr, Request{Op: OpForecast, Series: key})
	if err != nil {
		return ForecastResult{}, err
	}
	if resp.Forecast == nil {
		return ForecastResult{}, errors.New("nwsnet: forecaster returned no forecast")
	}
	return *resp.Forecast, nil
}
