package nwsnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"nwscpu/internal/nwsnet/cluster"
	"nwscpu/internal/resilience"
)

// observeCall records one outbound protocol call in the client metrics.
func observeCall(op Op, t0 time.Time, err error) {
	mClientCallsByOp.get(op).Inc()
	mClientLatencyByOp.get(op).ObserveSince(t0)
	if err != nil {
		mClientErrorsByOp.get(op).Inc()
	}
}

// ClientOptions configures a Client. The zero value selects the defaults
// noted on each field.
type ClientOptions struct {
	// Timeout bounds each call attempt — dial plus exchange (0 selects 5 s).
	// A context deadline tighter than this wins; see the *Ctx methods.
	Timeout time.Duration
	// Retry governs how transient failures are retried. The zero value
	// selects the resilience defaults: 3 attempts, 50 ms base backoff
	// doubling to a 2 s cap. Protocol-level errors — the server answered,
	// rejecting the request — are terminal and never retried.
	Retry resilience.Policy
	// MaxIdlePerAddr bounds pooled connections parked per server address
	// (0 selects 2; negative disables reuse — every call dials afresh).
	MaxIdlePerAddr int
	// MaxActivePerAddr bounds in-flight connections per server address;
	// calls beyond it wait (0 = unlimited).
	MaxActivePerAddr int
	// IdleTimeout reaps pooled connections parked longer than this
	// (0 selects 90 s; negative disables reaping).
	IdleTimeout time.Duration
	// Breaker, when non-nil, enables a per-endpoint circuit breaker with
	// this configuration (nil disables breaking entirely). Transport
	// failures and server "busy" sheds count against an endpoint; any other
	// answered response counts as a success, because a server rejecting a
	// request is still alive. A breaker denial surfaces as a terminal error
	// wrapping resilience.ErrBreakerOpen without touching the endpoint.
	Breaker *resilience.BreakerConfig
	// Codec selects the wire encoding (see docs/PROTOCOL.md): CodecBinary
	// (the default) negotiates protocol v2 on each connection; CodecJSON
	// forces the v1 JSON-line protocol, which every server version accepts.
	// A server that declines v2 fails the call with a terminal error naming
	// the accepted version, so misconfiguration surfaces instead of looping.
	Codec Codec
	// Tenant, when non-empty, names the tenant every connection announces
	// with an OpHello before its first request, so servers enforcing
	// per-tenant quotas (ServerLimits.TenantRate) attribute this client's
	// traffic correctly. Unattributed clients share the anonymous bucket.
	Tenant string
}

// Client performs protocol calls against nwsnet servers. Connections are
// pooled per address and reused across calls; transient failures (dial
// errors, connections dying mid-exchange) are retried under the client's
// retry policy. The zero value is not usable; create clients with NewClient
// or NewClientOptions.
type Client struct {
	timeout     time.Duration
	retry       resilience.Policy
	maxIdle     int
	maxActive   int
	idleTimeout time.Duration
	breakerCfg  *resilience.BreakerConfig
	codec       Codec
	tenant      string

	mu       sync.Mutex
	pools    map[string]*resilience.Pool
	breakers map[string]*resilience.Breaker
}

// NewClient returns a client whose call attempts time out after the given
// duration (0 selects 5 s), with default pooling and retry behavior.
func NewClient(timeout time.Duration) *Client {
	return NewClientOptions(ClientOptions{Timeout: timeout})
}

// NewClientOptions returns a client configured by o.
func NewClientOptions(o ClientOptions) *Client {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 90 * time.Second
	} else if o.IdleTimeout < 0 {
		o.IdleTimeout = 0
	}
	codec, err := normCodec(o.Codec)
	if err != nil {
		panic(err) // a codec not in the enum is a programming error
	}
	return &Client{
		timeout:     o.Timeout,
		retry:       o.Retry,
		maxIdle:     o.MaxIdlePerAddr,
		maxActive:   o.MaxActivePerAddr,
		idleTimeout: o.IdleTimeout,
		breakerCfg:  o.Breaker,
		codec:       codec,
		tenant:      o.Tenant,
		pools:       make(map[string]*resilience.Pool),
		breakers:    make(map[string]*resilience.Breaker),
	}
}

// poolConn is one pooled protocol connection.
type poolConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer

	// Binary-codec state: whether the server's accept byte has been read
	// (the preamble is written at dial, but its answer rides in front of the
	// first response), the next request ID, and the reusable decode buffer.
	negotiated bool
	nextID     uint64
	rbuf       []byte

	// helloDone records that the connection has announced its tenant.
	helloDone bool
}

func (pc *poolConn) Close() error { return pc.c.Close() }

// pool returns (creating on first use) the connection pool for addr.
func (c *Client) pool(addr string) *resilience.Pool {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pools[addr]
	if p == nil {
		p = resilience.NewPool(resilience.PoolConfig{
			Dial: func(ctx context.Context) (io.Closer, error) {
				d := net.Dialer{Timeout: c.timeout}
				nc, err := d.DialContext(ctx, "tcp", addr)
				if err != nil {
					return nil, fmt.Errorf("nwsnet: dial %s: %w", addr, err)
				}
				pc := &poolConn{c: nc, r: bufio.NewReaderSize(nc, 64<<10), w: bufio.NewWriter(nc)}
				if c.codec == CodecBinary {
					// Send the negotiation preamble eagerly so the server can
					// classify the connection the moment it peeks; the accept
					// byte is read before the first response, costing zero
					// extra round trips.
					nc.SetWriteDeadline(time.Now().Add(c.timeout))
					if _, err := nc.Write(wirePreamble[:]); err != nil {
						nc.Close()
						return nil, fmt.Errorf("nwsnet: negotiate with %s: %w", addr, err)
					}
					nc.SetWriteDeadline(time.Time{})
				}
				return pc, nil
			},
			MaxIdle:     c.maxIdle,
			MaxActive:   c.maxActive,
			IdleTimeout: c.idleTimeout,
			OnChange: func(idle, active int) {
				mPoolIdle.With(addr).Set(float64(idle))
				mPoolActive.With(addr).Set(float64(active))
			},
		})
		c.pools[addr] = p
	}
	return p
}

// breakerFor returns (creating on first use) the circuit breaker for addr,
// or nil when breaking is disabled. Breakers survive Close: breaker state is
// knowledge about the endpoint, not a held resource.
func (c *Client) breakerFor(addr string) *resilience.Breaker {
	if c.breakerCfg == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[addr]
	if b == nil {
		cfg := *c.breakerCfg
		cfg.OnTransition = func(_, to resilience.BreakerState) {
			mBreakerState.With(addr).Set(float64(to))
			mBreakerTransitions.With(addr, to.String()).Inc()
		}
		b = resilience.NewBreaker(cfg)
		c.breakers[addr] = b
	}
	return b
}

// BreakerState reports the circuit-breaker position for addr. It is
// BreakerClosed when breaking is disabled or addr has never been called.
func (c *Client) BreakerState(addr string) resilience.BreakerState {
	if c.breakerCfg == nil {
		return resilience.BreakerClosed
	}
	c.mu.Lock()
	b := c.breakers[addr]
	c.mu.Unlock()
	if b == nil {
		return resilience.BreakerClosed
	}
	return b.State()
}

// Close releases every pooled connection. The client remains usable; later
// calls dial fresh pools.
func (c *Client) Close() error {
	c.mu.Lock()
	pools := c.pools
	c.pools = make(map[string]*resilience.Pool)
	c.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
	return nil
}

// exchange performs one request/response attempt on a pooled connection.
// Transport failures discard the connection; a successful exchange parks it
// for reuse.
func (c *Client) exchange(ctx context.Context, addr string, req Request) (Response, error) {
	pl := c.pool(addr)
	got, err := pl.Get(ctx)
	if err != nil {
		return Response{}, err
	}
	pc := got.(*poolConn)
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := pc.c.SetDeadline(deadline); err != nil {
		pl.Put(pc, false)
		return Response{}, err
	}
	if c.tenant != "" && !pc.helloDone {
		if err := c.hello(pc, addr); err != nil {
			pl.Put(pc, false)
			return Response{}, err
		}
		pc.helloDone = true
	}
	if c.codec == CodecBinary {
		resp, err := exchangeBinary(pc, addr, req)
		if err == errShedConn {
			// The busy response is a valid answer (do() classifies it as
			// retryable); only the connection is dead.
			pl.Put(pc, false)
			return resp, nil
		}
		pl.Put(pc, err == nil)
		return resp, err
	}
	if err := writeMsg(pc.w, req); err != nil {
		pl.Put(pc, false)
		return Response{}, fmt.Errorf("nwsnet: send to %s: %w", addr, err)
	}
	var resp Response
	if err := readMsg(pc.r, &resp); err != nil {
		pl.Put(pc, false)
		return Response{}, fmt.Errorf("nwsnet: receive from %s: %w", addr, err)
	}
	pl.Put(pc, true)
	return resp, nil
}

// exchangeBinary performs one lockstep request/response attempt on the v2
// codec. The first exchange on a connection also consumes the server's
// accept byte. The only response IDs a lockstep connection can legally see
// are the one it just sent and the reserved connection-level ID 0 (a busy
// shed); anything else means the stream desynchronized, which poisons the
// connection.
func exchangeBinary(pc *poolConn, addr string, req Request) (Response, error) {
	pc.nextID++
	id := pc.nextID
	buf := getEncBuf()
	payload, err := encodeRequestPayload(*buf, id, req)
	if err != nil {
		putEncBuf(buf)
		return Response{}, resilience.Permanent(fmt.Errorf("nwsnet: encode for %s: %w", addr, err))
	}
	werr := writeFrame(pc.w, payload)
	*buf = payload
	putEncBuf(buf)
	if werr == nil {
		werr = pc.w.Flush()
	}
	if werr != nil {
		return Response{}, fmt.Errorf("nwsnet: send to %s: %w", addr, werr)
	}
	if !pc.negotiated {
		accept, err := pc.r.ReadByte()
		if err != nil {
			return Response{}, fmt.Errorf("nwsnet: negotiate with %s: %w", addr, err)
		}
		if accept != wireVersionBinary {
			return Response{}, resilience.Permanent(fmt.Errorf(
				"nwsnet: %s accepted wire version %d, not binary (%d); configure CodecJSON", addr, accept, wireVersionBinary))
		}
		pc.negotiated = true
	}
	rp, _, err := readFrame(pc.r, &pc.rbuf)
	if err != nil {
		return Response{}, fmt.Errorf("nwsnet: receive from %s: %w", addr, err)
	}
	respID, resp, err := decodeResponsePayload(rp)
	if err != nil {
		return Response{}, fmt.Errorf("nwsnet: receive from %s: %w", addr, err)
	}
	if respID != id {
		if respID == 0 && resp.Code == CodeBusy {
			// A connection-level shed: the server answered without reading
			// our request and is closing. Surface the busy response; the
			// error return discards the connection from the pool.
			return resp, errShedConn
		}
		return Response{}, fmt.Errorf("nwsnet: %s: response ID %d for request %d", addr, respID, id)
	}
	return resp, nil
}

// errShedConn marks a connection-level busy response (request ID 0): the
// response itself is valid, but the connection must not be reused.
var errShedConn = errors.New("nwsnet: connection shed by server")

// hello announces the client's tenant as a connection's first request, on
// whichever codec the connection speaks.
func (c *Client) hello(pc *poolConn, addr string) error {
	req := Request{Op: OpHello, Tenant: c.tenant}
	var resp Response
	var err error
	if c.codec == CodecBinary {
		resp, err = exchangeBinary(pc, addr, req)
	} else if err = writeMsg(pc.w, req); err == nil {
		err = readMsg(pc.r, &resp)
	}
	if err == nil {
		err = respError(addr, resp)
	}
	if err != nil {
		return fmt.Errorf("nwsnet: hello to %s: %w", addr, err)
	}
	return nil
}

// do performs a call under the retry policy and converts protocol-level
// errors to Go errors. Protocol errors (the server answered, rejecting the
// request) are terminal; transport errors and server "busy" sheds are
// retried with backoff until the policy or ctx gives up. With a breaker
// configured, every attempt asks the endpoint's breaker first and feeds its
// outcome back; a denial returns immediately (terminal, wrapping
// resilience.ErrBreakerOpen) without touching the endpoint.
func (c *Client) do(ctx context.Context, addr string, req Request) (resp Response, err error) {
	t0 := time.Now()
	defer func() { observeCall(req.Op, t0, err) }()
	brk := c.breakerFor(addr)
	policy := c.retry
	op := opLabel(req.Op)
	policy.OnRetry = func(int, time.Duration, error) { mClientRetries.With(op).Inc() }
	err = policy.Do(ctx, func(ctx context.Context) error {
		if brk != nil && !brk.Allow() {
			return resilience.Permanent(fmt.Errorf("nwsnet: %s: %w", addr, resilience.ErrBreakerOpen))
		}
		r, e := c.exchange(ctx, addr, req)
		if e != nil {
			if brk != nil {
				brk.Record(false)
			}
			return e
		}
		rerr := respError(addr, r)
		if brk != nil {
			// A busy shed is a failure for breaker purposes; any other
			// answered response — acceptance or rejection — is proof of
			// life for the endpoint.
			brk.Record(!IsBusy(rerr))
		}
		if rerr != nil {
			return rerr
		}
		resp = r
		return nil
	})
	if err != nil {
		return Response{}, err
	}
	return resp, nil
}

// respError converts an answered response into its caller-facing error: nil
// for success, a retryable busy-classified error for a load shed, and a
// terminal error for an ordinary protocol rejection (the server understood
// the request and said no — retrying it verbatim cannot help).
func respError(addr string, r Response) error {
	if r.Code == CodeBusy {
		return fmt.Errorf("nwsnet: %s: %s: %w", addr, r.Error, errBusySentinel)
	}
	if r.Code == CodeMoved {
		// An ownership redirect: terminal for this endpoint (it will keep
		// redirecting), but typed so the routing layer can adopt the
		// attached view and re-route instead of failing the call.
		return resilience.Permanent(&MovedError{Addr: addr, View: r.View, Msg: r.Error})
	}
	if r.Error != "" {
		return resilience.Permanent(errors.New(r.Error))
	}
	return nil
}

// Ping checks a component is alive.
func (c *Client) Ping(addr string) error { return c.PingCtx(context.Background(), addr) }

// PingCtx is Ping honoring a caller context for cancellation/deadline.
func (c *Client) PingCtx(ctx context.Context, addr string) error {
	_, err := c.do(ctx, addr, Request{Op: OpPing})
	return err
}

// Register announces a component to the name server at nsAddr.
func (c *Client) Register(nsAddr string, reg Registration) error {
	return c.RegisterCtx(context.Background(), nsAddr, reg)
}

// RegisterCtx is Register honoring a caller context.
func (c *Client) RegisterCtx(ctx context.Context, nsAddr string, reg Registration) error {
	_, err := c.do(ctx, nsAddr, Request{Op: OpRegister, Reg: reg})
	return err
}

// Lookup resolves a component name at the name server.
func (c *Client) Lookup(nsAddr, name string) (Registration, error) {
	return c.LookupCtx(context.Background(), nsAddr, name)
}

// LookupCtx is Lookup honoring a caller context.
func (c *Client) LookupCtx(ctx context.Context, nsAddr, name string) (Registration, error) {
	resp, err := c.do(ctx, nsAddr, Request{Op: OpLookup, Reg: Registration{Name: name}})
	if err != nil {
		return Registration{}, err
	}
	if len(resp.Entries) != 1 {
		return Registration{}, fmt.Errorf("nwsnet: lookup %q returned %d entries", name, len(resp.Entries))
	}
	return resp.Entries[0], nil
}

// List enumerates components of the given kind ("" for all).
func (c *Client) List(nsAddr string, kind Kind) ([]Registration, error) {
	return c.ListCtx(context.Background(), nsAddr, kind)
}

// ListCtx is List honoring a caller context.
func (c *Client) ListCtx(ctx context.Context, nsAddr string, kind Kind) ([]Registration, error) {
	resp, err := c.do(ctx, nsAddr, Request{Op: OpList, Reg: Registration{Kind: kind}})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Store appends points ([t, v] pairs) to a series on the memory server.
func (c *Client) Store(memAddr, key string, points [][2]float64) error {
	return c.StoreCtx(context.Background(), memAddr, key, points)
}

// StoreCtx is Store honoring a caller context.
func (c *Client) StoreCtx(ctx context.Context, memAddr, key string, points [][2]float64) error {
	_, err := c.do(ctx, memAddr, Request{Op: OpStore, Series: key, Points: points})
	return err
}

// BatchStore is one store sub-request of a batched memory call.
type BatchStore struct {
	Series string
	Points [][2]float64 // [t, v] pairs
}

// BatchFetch is one fetch sub-request of a batched memory call. The range
// semantics match Fetch: [From, To) with To == 0 meaning "through the
// latest point", keeping only the most recent Max points when Max > 0.
type BatchFetch struct {
	Series   string
	From, To float64
	Max      int
}

// FetchResult is one sub-result of a batched fetch: the points, or the
// protocol-level rejection for that sub-request alone.
type FetchResult struct {
	Points [][2]float64
	Err    error
}

// StoreBatch stores several series in one round trip via the batch
// envelope. The returned slice has one entry per input — nil on success,
// the server's rejection otherwise; the second return value reports
// envelope-level failures (transport errors, a malformed batch), in which
// case the per-sub slice is nil.
func (c *Client) StoreBatch(memAddr string, stores []BatchStore) ([]error, error) {
	return c.StoreBatchCtx(context.Background(), memAddr, stores)
}

// StoreBatchCtx is StoreBatch honoring a caller context.
func (c *Client) StoreBatchCtx(ctx context.Context, memAddr string, stores []BatchStore) ([]error, error) {
	if len(stores) == 0 {
		return nil, nil
	}
	subs := make([]Request, len(stores))
	for i, s := range stores {
		subs[i] = Request{Op: OpStore, Series: s.Series, Points: s.Points}
	}
	resp, err := c.do(ctx, memAddr, Request{Op: OpBatch, Batch: subs})
	if err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(subs) {
		return nil, fmt.Errorf("nwsnet: batch store returned %d sub-responses, want %d", len(resp.Batch), len(subs))
	}
	errs := make([]error, len(subs))
	for i, r := range resp.Batch {
		// Classify sub-responses like top-level ones, so per-sub busy sheds
		// stay retryable and per-sub ownership redirects stay typed.
		errs[i] = respError(memAddr, r)
	}
	return errs, nil
}

// FetchBatch reads several series ranges in one round trip via the batch
// envelope. The returned slice has one entry per input; per-sub rejections
// (an unknown series, say) land in that entry's Err without failing the
// others. The second return value reports envelope-level failures.
func (c *Client) FetchBatch(memAddr string, fetches []BatchFetch) ([]FetchResult, error) {
	return c.FetchBatchCtx(context.Background(), memAddr, fetches)
}

// FetchBatchCtx is FetchBatch honoring a caller context.
func (c *Client) FetchBatchCtx(ctx context.Context, memAddr string, fetches []BatchFetch) ([]FetchResult, error) {
	if len(fetches) == 0 {
		return nil, nil
	}
	subs := make([]Request, len(fetches))
	for i, f := range fetches {
		subs[i] = Request{Op: OpFetch, Series: f.Series, From: f.From, To: f.To, Max: f.Max}
	}
	resp, err := c.do(ctx, memAddr, Request{Op: OpBatch, Batch: subs})
	if err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(subs) {
		return nil, fmt.Errorf("nwsnet: batch fetch returned %d sub-responses, want %d", len(resp.Batch), len(subs))
	}
	out := make([]FetchResult, len(subs))
	for i, r := range resp.Batch {
		if err := respError(memAddr, r); err != nil {
			out[i].Err = err
			continue
		}
		out[i].Points = r.Points
	}
	return out, nil
}

// Fetch reads back points of a series with t in [from, to) (to == 0 means
// "through the latest point"), limited to the most recent max points when
// max > 0.
func (c *Client) Fetch(memAddr, key string, from, to float64, max int) ([][2]float64, error) {
	return c.FetchCtx(context.Background(), memAddr, key, from, to, max)
}

// FetchCtx is Fetch honoring a caller context.
func (c *Client) FetchCtx(ctx context.Context, memAddr, key string, from, to float64, max int) ([][2]float64, error) {
	resp, err := c.do(ctx, memAddr, Request{Op: OpFetch, Series: key, From: from, To: to, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// Digests asks a memory server for anti-entropy series digests: all series
// when key is "", else just that series (see docs/PROTOCOL.md §9).
func (c *Client) Digests(memAddr, key string) ([]SeriesDigest, error) {
	return c.DigestsCtx(context.Background(), memAddr, key)
}

// DigestsCtx is Digests honoring a caller context.
func (c *Client) DigestsCtx(ctx context.Context, memAddr, key string) ([]SeriesDigest, error) {
	resp, err := c.do(ctx, memAddr, Request{Op: OpDigest, Series: key})
	if err != nil {
		return nil, err
	}
	return resp.Digests, nil
}

// Backfill merge-inserts points behind a series' frontier on a memory
// server — the delivery path for hinted handoff and repair pushes, where
// the ordinary store path would dedup old timestamps away.
func (c *Client) Backfill(memAddr, key string, points [][2]float64) error {
	return c.BackfillCtx(context.Background(), memAddr, key, points)
}

// BackfillCtx is Backfill honoring a caller context.
func (c *Client) BackfillCtx(ctx context.Context, memAddr, key string, points [][2]float64) error {
	_, err := c.do(ctx, memAddr, Request{Op: OpBackfill, Series: key, Points: points})
	return err
}

// Series lists the series keys a memory server holds.
func (c *Client) Series(memAddr string) ([]string, error) {
	return c.SeriesCtx(context.Background(), memAddr)
}

// SeriesCtx is Series honoring a caller context.
func (c *Client) SeriesCtx(ctx context.Context, memAddr string) ([]string, error) {
	resp, err := c.do(ctx, memAddr, Request{Op: OpSeries})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Forecast asks a forecaster service for the one-step-ahead prediction of a
// series.
func (c *Client) Forecast(fcAddr, key string) (ForecastResult, error) {
	return c.ForecastCtx(context.Background(), fcAddr, key)
}

// ForecastCtx is Forecast honoring a caller context.
func (c *Client) ForecastCtx(ctx context.Context, fcAddr, key string) (ForecastResult, error) {
	resp, err := c.do(ctx, fcAddr, Request{Op: OpForecast, Series: key})
	if err != nil {
		return ForecastResult{}, err
	}
	if resp.Forecast == nil {
		return ForecastResult{}, errors.New("nwsnet: forecaster returned no forecast")
	}
	return *resp.Forecast, nil
}

// JoinCluster announces a member to the cluster registry at nsAddr and
// returns the resulting membership view. Joining with State left empty (or
// StateJoining) takes a lease without entering the routing ring; re-joining
// with StateActive activates the member, bumping the view epoch.
func (c *Client) JoinCluster(nsAddr string, m cluster.Member) (cluster.View, error) {
	return c.JoinClusterCtx(context.Background(), nsAddr, m)
}

// JoinClusterCtx is JoinCluster honoring a caller context.
func (c *Client) JoinClusterCtx(ctx context.Context, nsAddr string, m cluster.Member) (cluster.View, error) {
	resp, err := c.do(ctx, nsAddr, Request{Op: OpJoin, Member: &m})
	if err != nil {
		return cluster.View{}, err
	}
	if resp.View == nil {
		return cluster.View{}, errors.New("nwsnet: join returned no view")
	}
	return *resp.View, nil
}

// RenewLease refreshes a member's registry lease. epoch is the view epoch
// the member currently holds; when the registry has moved past it the
// returned view is non-nil and should be adopted. A terminal "unknown
// member" error means the lease already expired (or the registry
// restarted) and the member must re-join.
func (c *Client) RenewLease(nsAddr, memberID string, epoch uint64) (*cluster.View, error) {
	return c.RenewLeaseCtx(context.Background(), nsAddr, memberID, epoch)
}

// RenewLeaseCtx is RenewLease honoring a caller context.
func (c *Client) RenewLeaseCtx(ctx context.Context, nsAddr, memberID string, epoch uint64) (*cluster.View, error) {
	resp, err := c.do(ctx, nsAddr, Request{Op: OpLease, Member: &cluster.Member{ID: memberID}, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	return resp.View, nil
}

// FetchView fetches the registry's membership view. epoch is the view the
// caller already holds: when it is still current the registry answers "not
// modified" and FetchView returns (nil, nil). Pass 0 to always fetch.
func (c *Client) FetchView(nsAddr string, epoch uint64) (*cluster.View, error) {
	return c.FetchViewCtx(context.Background(), nsAddr, epoch)
}

// FetchViewCtx is FetchView honoring a caller context.
func (c *Client) FetchViewCtx(ctx context.Context, nsAddr string, epoch uint64) (*cluster.View, error) {
	resp, err := c.do(ctx, nsAddr, Request{Op: OpView, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	return resp.View, nil
}
