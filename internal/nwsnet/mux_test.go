package nwsnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestMuxPipelinesManyInFlight issues a window of requests without waiting
// and checks every response routes back to its own call, in issue order for
// a single goroutine.
func TestMuxPipelinesManyInFlight(t *testing.T) {
	mem := NewMemory(1000)
	srv, addr := startServerLimits(t, mem, ServerLimits{})
	defer srv.Close()

	mux, err := DialMux(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	const n = 200
	calls := make([]*MuxCall, n)
	for i := 0; i < n; i++ {
		calls[i] = mux.Go(Request{Op: OpStore, Series: "k", Points: [][2]float64{{float64(i), 1}}})
	}
	for i, c := range calls {
		if _, err := c.Wait(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Pipelined stores on one series applied in issue order: with the
	// monotonic-frontier dedup, out-of-order execution would have dropped
	// points. All n must have landed.
	pts, err := mux.Do(Request{Op: OpFetch, Series: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts.Points) != n {
		t.Fatalf("stored %d points, fetched %d — pipelined execution reordered", n, len(pts.Points))
	}
}

// TestMuxConcurrentCallers hammers one MuxConn from many goroutines,
// checking every call gets its own answer (the group-commit flush must not
// lose or cross wires).
func TestMuxConcurrentCallers(t *testing.T) {
	mem := NewMemory(1000)
	srv, addr := startServerLimits(t, mem, ServerLimits{})
	defer srv.Close()

	mux, err := DialMux(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	const workers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			series := fmt.Sprintf("s%d", w)
			for i := 0; i < per; i++ {
				if _, err := mux.Do(Request{Op: OpStore, Series: series, Points: [][2]float64{{float64(i), 1}}}); err != nil {
					errs <- fmt.Errorf("worker %d call %d: %w", w, i, err)
					return
				}
			}
			resp, err := mux.Do(Request{Op: OpFetch, Series: series})
			if err != nil {
				errs <- err
				return
			}
			if len(resp.Points) != per {
				errs <- fmt.Errorf("worker %d: %d points, want %d", w, len(resp.Points), per)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxBusyClassification checks a queue shed surfaces on the pipelined
// path exactly as on lockstep: an IsBusy, non-terminal error on the shed
// call only.
func TestMuxBusyClassification(t *testing.T) {
	block := make(chan struct{})
	h := handlerFunc(func(req Request) Response {
		if req.Op == OpStore {
			<-block
		}
		return Response{}
	})
	srv, addr := startServerLimits(t, h, ServerLimits{MaxInFlight: 1, QueueWait: 50 * time.Millisecond})
	defer srv.Close()

	mux, err := DialMux(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	// Occupy the single handler slot from a separate connection: a binary
	// connection executes its own requests serially, so the blocker must
	// come from elsewhere for the mux's request to reach the shed path.
	blocker := NewConn(addr, 5*time.Second)
	defer blocker.Close()
	blockerDone := make(chan error, 1)
	go func() { blockerDone <- blocker.Store("a", [][2]float64{{1, 1}}) }()
	// Wait until the blocker's handler is actually holding the slot.
	deadline := time.Now().Add(2 * time.Second)
	for mServerInFlight.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}

	c2 := mux.Go(Request{Op: OpStore, Series: "b"})
	_, err2 := c2.Wait()
	if err2 == nil || !IsBusy(err2) {
		t.Fatalf("shed call classified %v, want busy", err2)
	}
	close(block)
	if err := <-blockerDone; err != nil {
		t.Fatalf("admitted call failed: %v", err)
	}
	// The connection survives a request-level shed; later calls work.
	if _, err := mux.Do(Request{Op: OpPing}); err != nil {
		t.Fatalf("ping after shed: %v", err)
	}
}

// TestMuxConnectionShedFailsAllPending checks the connection-level busy
// (request ID 0, sent by a server past MaxConns) fails every pending call
// with a busy-classified error.
func TestMuxConnectionShedFailsAllPending(t *testing.T) {
	h := handlerFunc(func(Request) Response { return Response{} })
	srv, addr := startServerLimits(t, h, ServerLimits{MaxConns: 1})
	defer srv.Close()

	// Hold the only connection slot.
	holder, err := DialMux(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if _, err := holder.Do(Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}

	shed, err := DialMux(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer shed.Close()
	c1 := shed.Go(Request{Op: OpPing})
	c2 := shed.Go(Request{Op: OpPing})
	for i, c := range []*MuxCall{c1, c2} {
		if _, err := c.Wait(); err == nil || !IsBusy(err) {
			t.Fatalf("pending call %d on shed connection classified %v, want busy", i, err)
		}
	}
}

// TestMuxCloseFailsPending checks Close completes pending calls with
// ErrMuxClosed and later calls fail immediately.
func TestMuxCloseFailsPending(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	h := handlerFunc(func(req Request) Response {
		if req.Op == OpStore {
			<-block
		}
		return Response{}
	})
	srv, addr := startServerLimits(t, h, ServerLimits{})
	defer srv.Close()

	mux, err := DialMux(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := mux.Go(Request{Op: OpStore, Series: "a"})
	mux.Close()
	if _, err := c.Wait(); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("pending call after Close: %v, want ErrMuxClosed", err)
	}
	if _, err := mux.Do(Request{Op: OpPing}); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("call on closed mux: %v, want ErrMuxClosed", err)
	}
}

// TestMuxIdleConnectionSurvivesTimeout checks an idle MuxConn (nothing
// pending) is not killed by its own read deadline.
func TestMuxIdleConnectionSurvivesTimeout(t *testing.T) {
	mem := NewMemory(10)
	srv, addr := startServerLimits(t, mem, ServerLimits{})
	defer srv.Close()

	mux, err := DialMux(addr, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	if _, err := mux.Do(Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(700 * time.Millisecond) // two timeout laps, idle
	if _, err := mux.Do(Request{Op: OpPing}); err != nil {
		t.Fatalf("ping after idle period: %v", err)
	}
}
