package nwsnet

import (
	"context"
	"math"
	"testing"

	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
)

// TestLocalBackendRoundTrip drives the full in-process stack the grid
// harness uses — sensord Step → LocalBackend → Memory → LocalBackend →
// forecaster — without a socket anywhere, and checks the read plane
// (RefreshNow + SetCacheServing) serves cached forecasts deterministically.
func TestLocalBackendRoundTrip(t *testing.T) {
	mem := NewMemory(0)
	backend := NewLocalBackend(mem)

	h := simos.New(simos.DefaultConfig())
	h.Spawn(simos.ProcSpec{Name: "spin", Demand: math.Inf(1), WallLimit: 3600})
	d := NewSensorDaemonBackend("simhost", sensors.SimHost{H: h}, backend, sensors.HybridConfig{})
	defer d.Close()

	const cadence = 10.0
	for k := 1; k <= 30; k++ {
		h.RunUntil(float64(k) * cadence)
		if err := d.Step(); err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
	}

	key := SeriesKey("simhost", "nws_hybrid")
	pts, err := backend.Fetch(context.Background(), key, 0, 0, 0)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if len(pts) != 30 {
		t.Fatalf("stored %d hybrid points, want 30", len(pts))
	}

	f := NewForecasterServiceBackend(backend, 0)
	f.SetCacheServing(true)
	f.RefreshNow()
	resp := f.Handle(Request{Op: OpForecast, Series: key})
	if resp.Error != "" || resp.Forecast == nil {
		t.Fatalf("forecast: %+v", resp)
	}
	hits0, misses0, _ := f.CacheStats()
	// With the cache authoritative and no new stores, repeat queries are
	// pure cache hits.
	for i := 0; i < 5; i++ {
		if r := f.Handle(Request{Op: OpForecast, Series: key}); r.Error != "" {
			t.Fatalf("cached forecast: %+v", r)
		}
	}
	hits1, misses1, _ := f.CacheStats()
	if hits1-hits0 != 5 || misses1 != misses0 {
		t.Fatalf("cache stats moved hits %d->%d misses %d->%d, want +5 hits",
			hits0, hits1, misses0, misses1)
	}

	// A new store invalidates via the next RefreshNow and the forecast
	// frontier advances.
	n0 := resp.Forecast.N
	h.RunUntil(31 * cadence)
	if err := d.Step(); err != nil {
		t.Fatalf("late step: %v", err)
	}
	f.RefreshNow()
	resp2 := f.Handle(Request{Op: OpForecast, Series: key})
	if resp2.Forecast == nil || resp2.Forecast.N != n0+1 {
		t.Fatalf("refresh did not advance frontier: %+v after N=%d", resp2.Forecast, n0)
	}

	// Series listing flows through the same envelope.
	names, err := backend.Series(context.Background())
	if err != nil || len(names) != 3 {
		t.Fatalf("series: %v %v", names, err)
	}
}
