package nwsnet

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"nwscpu/internal/nwsnet/cluster"
	"nwscpu/internal/resilience"
)

// chaosNode is one live shard of the chaos cluster: the guarded memory, its
// server, and the lease-renewing agent.
type chaosNode struct {
	id    string
	node  *ClusterNode
	srv   *Server
	addr  string
	agent *ClusterAgent
}

// startChaosNode brings up a shard server and runs the full agent lifecycle
// (two-phase join plus background lease renewal at interval).
func startChaosNode(t *testing.T, nsAddr, id string, interval time.Duration) *chaosNode {
	t.Helper()
	n := &chaosNode{id: id, node: NewClusterNode(id, NewMemory(0))}
	n.srv = NewServer(n.node, nil)
	addr, err := n.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.addr = addr
	n.agent = NewClusterAgent(nil, nsAddr, cluster.Member{ID: id, Kind: string(KindMemory), Addr: addr}, n.node)
	if _, err := n.agent.Start(context.Background(), interval); err != nil {
		n.srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { n.kill() })
	return n
}

// kill tears the shard down hard: the agent stops renewing (so the lease
// lapses) and the server drops off the network. Idempotent.
func (n *chaosNode) kill() {
	n.agent.Stop()
	n.agent.Close()
	n.srv.Close()
}

// TestChaosClusterShardFailover is the partitioned cluster's acceptance
// scenario: writers stream measurements through the routing table while one
// shard owner is killed mid-run; its lease lapses, the epoch moves the dead
// node's ranges to the survivors, and a joining replacement takes them over
// via rebalancing handoff. The run must lose zero measurements — every
// series converges bit-identical to a single-node reference fed the same
// points — and unavailability must stay bounded: every write eventually
// lands, and no write fails with a terminal error that is neither a busy
// shed nor an ownership redirect.
func TestChaosClusterShardFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenario needs real lease expiry time")
	}
	const (
		ttl       = 900 * time.Millisecond
		heartbeat = 150 * time.Millisecond
		nKeys     = 12
	)
	ns := NewNameServerCluster(ttl, cluster.Config{Replication: 2, VNodes: 32})
	nsSrv := NewServer(ns, nil)
	nsAddr, err := nsSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nsSrv.Close()

	nodes := make([]*chaosNode, 3)
	for i := range nodes {
		nodes[i] = startChaosNode(t, nsAddr, fmt.Sprintf("node-%d", i), heartbeat)
	}

	ctx := context.Background()
	cc := NewClusterClient(nil, nsAddr)
	defer cc.Close()

	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("host%02d/cpu/nws_hybrid", i)
	}

	// The single-node reference: the same points in the same order, so the
	// zero-loss check is a bit-identical series comparison at the end.
	reference := NewMemory(0)

	// The writer streams one point per key per round through the cluster,
	// retrying each point until an owner quorum acknowledges it. It records
	// any terminal error that is neither busy nor moved — the unavailability
	// bound the scenario must hold.
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var (
		mu        sync.Mutex
		rounds    int
		retries   int
		violation error
	)
	go func() {
		defer close(writerDone)
		for seq := 1; ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			for ki, key := range keys {
				pt := [2]float64{float64(seq), 0.5 + 0.4*math.Sin(float64(seq*31+ki*7))}
				for attempt := 0; ; attempt++ {
					err := cc.Store(ctx, key, [][2]float64{pt})
					if err == nil {
						break
					}
					if resilience.IsTerminal(err) && !IsBusy(err) {
						if _, moved := IsMoved(err); !moved {
							mu.Lock()
							if violation == nil {
								violation = fmt.Errorf("store %s seq %d: terminal non-redirect error: %w", key, seq, err)
							}
							mu.Unlock()
						}
					}
					if attempt > 600 {
						mu.Lock()
						if violation == nil {
							violation = fmt.Errorf("store %s seq %d: never acknowledged: %w", key, seq, err)
						}
						mu.Unlock()
						return
					}
					mu.Lock()
					retries++
					mu.Unlock()
					time.Sleep(20 * time.Millisecond)
				}
				// Acknowledged by a quorum: the measurement is durable.
				reference.Handle(Request{Op: OpStore, Series: key, Points: [][2]float64{pt}})
			}
			mu.Lock()
			rounds++
			mu.Unlock()
		}
	}()

	waitRounds := func(n int, why string) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			r, v := rounds, violation
			mu.Unlock()
			if v != nil {
				t.Fatal(v)
			}
			if r >= n {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("writer stalled waiting for %s", why)
	}
	waitView := func(wantActive int, why string) cluster.View {
		t.Helper()
		probe := NewClient(0)
		defer probe.Close()
		deadline := time.Now().Add(3*ttl + 10*time.Second)
		for time.Now().Before(deadline) {
			if v, err := probe.FetchView(nsAddr, 0); err == nil && v != nil {
				if len(v.Active(string(KindMemory))) == wantActive {
					return *v
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("view never reached %d active members (%s)", wantActive, why)
		return cluster.View{}
	}

	// Phase 1: healthy baseline.
	waitRounds(3, "healthy baseline")

	// Phase 2: kill one shard owner mid-run. Its lease lapses a TTL later,
	// the epoch bumps, and the survivors' renewal-driven re-sync takes over
	// its ranges from the surviving replica of each series.
	nodes[1].kill()
	killedAt := time.Now()
	v := waitView(2, "lease expiry after kill")
	if got := time.Since(killedAt); got > ttl+10*time.Second {
		t.Fatalf("lease expiry took %v", got)
	}
	for _, m := range v.Active(string(KindMemory)) {
		if m.ID == "node-1" {
			t.Fatal("killed node still active in the view")
		}
	}
	mu.Lock()
	afterKill := rounds
	mu.Unlock()
	waitRounds(afterKill+3, "writes resuming after the kill")

	// Phase 3: a fresh replacement joins and takes the reassigned ranges
	// over via the two-phase handoff, while writes keep flowing.
	replacement := startChaosNode(t, nsAddr, "node-3", heartbeat)
	waitView(3, "replacement activation")
	mu.Lock()
	afterJoin := rounds
	mu.Unlock()
	waitRounds(afterJoin+3, "writes continuing through the join")

	close(stop)
	<-writerDone
	mu.Lock()
	finalRounds, finalRetries, v2 := rounds, retries, violation
	mu.Unlock()
	if v2 != nil {
		t.Fatal(v2)
	}
	t.Logf("chaos run: %d rounds × %d keys, %d retries during the outage window", finalRounds, nKeys, finalRetries)

	// Give the survivors one heartbeat to finish any in-flight takeover
	// sync, then verify convergence: every series read through the routing
	// table must be bit-identical to the single-node reference.
	time.Sleep(2 * heartbeat)
	for _, key := range keys {
		want := reference.Handle(Request{Op: OpFetch, Series: key})
		if want.Error != "" {
			t.Fatalf("reference fetch %s: %s", key, want.Error)
		}
		var got [][2]float64
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			got, err = cc.Fetch(ctx, key, 0, 0, 0)
			if err == nil {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("cluster fetch %s: %v", key, err)
		}
		if len(got) != len(want.Points) {
			t.Fatalf("%s: cluster holds %d points, reference %d — measurements lost or duplicated",
				key, len(got), len(want.Points))
		}
		for i := range got {
			if got[i] != want.Points[i] {
				t.Fatalf("%s point %d: cluster %v != reference %v", key, i, got[i], want.Points[i])
			}
		}
	}

	// The killed node's ranges must live on the replacement now: the new
	// ring's owners for every key exclude node-1, and each owner serves the
	// key's full history locally.
	final := waitView(3, "final view")
	ring := final.Ring(string(KindMemory))
	byID := map[string]*chaosNode{"node-0": nodes[0], "node-2": nodes[2], "node-3": replacement}
	replacementOwns := 0
	for _, key := range keys {
		for _, owner := range ring.Owners(key, final.Config.Normalize().Replication) {
			if owner == "node-1" {
				t.Fatalf("dead node still owns %s", key)
			}
			if owner == "node-3" {
				replacementOwns++
			}
			if n := byID[owner]; n != nil && n.node.Memory().Len(key) == 0 {
				t.Fatalf("owner %s holds no points of %s", owner, key)
			}
		}
	}
	if replacementOwns == 0 {
		t.Fatal("replacement owns no key ranges — handoff never moved anything")
	}
}
