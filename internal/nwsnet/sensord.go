package nwsnet

import (
	"fmt"
	"sync"
	"time"

	"nwscpu/internal/sensors"
)

// SeriesKey builds the memory key for a host's availability series measured
// by one method, e.g. "thing1/cpu/nws_hybrid".
func SeriesKey(host, method string) string {
	return fmt.Sprintf("%s/cpu/%s", host, method)
}

// SensorDaemon measures one host with the three sensors and pushes every
// measurement to a memory server — the persistent NWS CPU sensor process.
//
// For simulated hosts the caller advances virtual time and calls Step; for
// live hosts Start runs a wall-clock loop.
type SensorDaemon struct {
	hostName string
	host     sensors.Host
	memAddr  string
	client   *Client
	conn     *Conn
	sensors  []sensors.Sensor

	// Store-and-forward: measurements that could not be delivered are
	// buffered per series (bounded) and retried on the next Step, so a
	// memory-server outage loses no data shorter than the buffer.
	backlog    map[string][][2]float64
	backlogCap int

	mu     sync.Mutex
	stopCh chan struct{}
	doneCh chan struct{}
}

// backlogDefaultCap bounds the per-series store-and-forward buffer
// (an hour of 10-second measurements).
const backlogDefaultCap = 360

// NewSensorDaemon builds a daemon for the named host, pushing to the memory
// server at memAddr.
func NewSensorDaemon(hostName string, h sensors.Host, memAddr string, hybrid sensors.HybridConfig) *SensorDaemon {
	if hybrid.ProbeEvery == 0 {
		hybrid = sensors.DefaultHybridConfig()
	}
	return &SensorDaemon{
		hostName:   hostName,
		host:       h,
		memAddr:    memAddr,
		client:     NewClient(0),
		conn:       NewConn(memAddr, 0),
		backlog:    make(map[string][][2]float64),
		backlogCap: backlogDefaultCap,
		sensors: []sensors.Sensor{
			sensors.NewLoadAvgSensor(h),
			sensors.NewVmstatSensor(h, 0),
			sensors.NewHybridSensor(h, hybrid),
		},
	}
}

// Register announces this sensor to a name server. addr is where queries
// about this daemon should go (informational; the daemon itself only pushes).
func (d *SensorDaemon) Register(nsAddr, addr string) error {
	return d.client.Register(nsAddr, Registration{
		Name: d.hostName + "/cpu",
		Kind: KindSensor,
		Addr: addr,
	})
}

// Step takes one measurement with every sensor and stores the results,
// together with any backlog from previous failed deliveries. Undeliverable
// measurements are buffered (bounded; oldest dropped first) and the error
// reported — the daemon keeps measuring through memory-server outages and
// backfills when the server returns.
func (d *SensorDaemon) Step() error {
	t := d.host.Now()
	var firstErr error
	for _, s := range d.sensors {
		v := s.Measure()
		key := SeriesKey(d.hostName, s.Name())
		batch := append(d.backlog[key], [2]float64{t, v})
		if err := d.conn.Store(key, batch); err != nil {
			if len(batch) > d.backlogCap {
				batch = batch[len(batch)-d.backlogCap:]
			}
			d.backlog[key] = batch
			if firstErr == nil {
				firstErr = fmt.Errorf("nwsnet: sensor %s: %w", key, err)
			}
			continue
		}
		delete(d.backlog, key)
	}
	return firstErr
}

// Backlogged reports how many undelivered measurements are buffered.
func (d *SensorDaemon) Backlogged() int {
	n := 0
	for _, b := range d.backlog {
		n += len(b)
	}
	return n
}

// Start launches a background wall-clock measurement loop with the given
// period. Errors are delivered on the returned channel (buffered; the loop
// keeps running after errors). Stop terminates the loop.
func (d *SensorDaemon) Start(period time.Duration) <-chan error {
	errs := make(chan error, 16)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopCh != nil {
		errs <- fmt.Errorf("nwsnet: sensor daemon already started")
		close(errs)
		return errs
	}
	d.stopCh = make(chan struct{})
	d.doneCh = make(chan struct{})
	stop, done := d.stopCh, d.doneCh
	go func() {
		defer close(done)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if err := d.Step(); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}
	}()
	return errs
}

// Close releases the daemon's persistent memory connection. Call after the
// final Step or Stop.
func (d *SensorDaemon) Close() error { return d.conn.Close() }

// Stop terminates a Start loop and waits for it to exit. It is safe to call
// without a prior Start.
func (d *SensorDaemon) Stop() {
	d.mu.Lock()
	stop, done := d.stopCh, d.doneCh
	d.stopCh, d.doneCh = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
