package nwsnet

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"nwscpu/internal/resilience"
	"nwscpu/internal/sensors"
)

// SeriesKey builds the memory key for a host's availability series measured
// by one method, e.g. "thing1/cpu/nws_hybrid".
func SeriesKey(host, method string) string {
	return fmt.Sprintf("%s/cpu/%s", host, method)
}

// SensorDaemon measures one host with the three sensors and pushes every
// measurement to a memory server — the persistent NWS CPU sensor process.
//
// For simulated hosts the caller advances virtual time and calls Step; for
// live hosts Start runs a wall-clock loop.
// StoreBackend is the delivery-plane contract a SensorDaemon pushes
// through: a ReplicaGroup (fixed replica set, full fan-out) and a
// ClusterClient (partitioned cluster, ring-routed with redirect-driven
// rebalancing) both satisfy it, so the daemon's store-and-forward logic is
// identical across deployments.
type StoreBackend interface {
	StoreBatch(ctx context.Context, stores []BatchStore) ([]error, error)
	Health() []ReplicaHealth
}

type SensorDaemon struct {
	hostName string
	host     sensors.Host
	client   *Client
	group    StoreBackend
	sensors  []sensors.Sensor

	// Store-and-forward: measurements that could not be delivered are
	// buffered per series (bounded) and retried on the next Step, so a
	// memory-server outage loses no data shorter than the buffer.
	backlog    map[string][][2]float64
	backlogCap int

	// Outage accounting (accessed only from the Step caller): logger may
	// be nil; drops are always counted in nws_sensor_backlog_dropped_total
	// and logged once per outage rather than once per trimmed batch.
	logger        *log.Logger
	inOutage      bool
	outageDrops   int
	outageDropLog bool

	mu     sync.Mutex
	stopCh chan struct{}
	doneCh chan struct{}
}

// backlogDefaultCap bounds the per-series store-and-forward buffer
// (an hour of 10-second measurements).
const backlogDefaultCap = 360

// NewSensorDaemon builds a daemon for the named host, pushing to the memory
// server at memAddr.
func NewSensorDaemon(hostName string, h sensors.Host, memAddr string, hybrid sensors.HybridConfig) *SensorDaemon {
	return NewSensorDaemonReplicas(hostName, h, []string{memAddr}, 0, hybrid)
}

// NewSensorDaemonReplicas builds a daemon pushing to a replicated memory
// group: every measurement fans out to all of memAddrs and is delivered
// once quorum replicas acknowledge (quorum <= 0 selects a majority). With a
// single address it behaves exactly like NewSensorDaemon. It speaks the
// default binary codec; NewSensorDaemonReplicasCodec selects.
func NewSensorDaemonReplicas(hostName string, h sensors.Host, memAddrs []string, quorum int, hybrid sensors.HybridConfig) *SensorDaemon {
	return NewSensorDaemonReplicasCodec(hostName, h, memAddrs, quorum, hybrid, CodecBinary)
}

// NewSensorDaemonReplicasCodec is NewSensorDaemonReplicas with an explicit
// wire codec for the daemon's memory deliveries — the escape hatch for
// pushing to a pre-v2 memory server that only speaks JSON lines.
func NewSensorDaemonReplicasCodec(hostName string, h sensors.Host, memAddrs []string, quorum int, hybrid sensors.HybridConfig, codec Codec) *SensorDaemon {
	if hybrid.ProbeEvery == 0 {
		hybrid = sensors.DefaultHybridConfig()
	}
	// Short per-attempt retries: the store-and-forward backlog is the
	// durable recovery path, so the in-call policy only smooths blips
	// (a connection dying mid-exchange, a server restart).
	client := NewClientOptions(ClientOptions{
		Retry: resilience.Policy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond},
		// OpenFor < 0 keeps the breaker in probe-limiter mode: the daemon's
		// single delivery loop is never delayed by an open circuit (its next
		// tick is always admitted as the probe, so recovery happens on the
		// first tick after the replica returns), while any concurrent
		// callers sharing this client stop piling onto a sick replica.
		Breaker: &resilience.BreakerConfig{OpenFor: -1},
		Codec:   codec,
	})
	return &SensorDaemon{
		hostName:   hostName,
		host:       h,
		client:     client,
		group:      NewReplicaGroup(client, memAddrs, quorum),
		backlog:    make(map[string][][2]float64),
		backlogCap: backlogDefaultCap,
		sensors: []sensors.Sensor{
			sensors.NewLoadAvgSensor(h),
			sensors.NewVmstatSensor(h, 0),
			sensors.NewHybridSensor(h, hybrid),
		},
	}
}

// NewSensorDaemonCluster builds a daemon pushing into a partitioned
// cluster: measurements are routed by series key to the ring owners under
// the membership view served by the registry at nsAddr, and each delivery
// succeeds once a majority of a key's owners acknowledges. Ownership
// redirects refresh the daemon's routing table in-band, so rebalancing
// costs one extra round trip, not an outage — and anything still
// undeliverable rides the same store-and-forward backlog as the replicated
// path.
func NewSensorDaemonCluster(hostName string, h sensors.Host, nsAddr string, hybrid sensors.HybridConfig) *SensorDaemon {
	d := NewSensorDaemonReplicasCodec(hostName, h, nil, 0, hybrid, CodecBinary)
	d.group = NewClusterClient(d.client, nsAddr)
	return d
}

// SetLogger directs the daemon's outage diagnostics (backlog overflow,
// recovery) to l. nil (the default) silences them; drop counts are still
// recorded in the metrics either way.
func (d *SensorDaemon) SetLogger(l *log.Logger) { d.logger = l }

// SetBacklogCap bounds the per-series store-and-forward backlog (n <= 0
// restores the default). Fault harnesses shrink it to make the backlog
// window — the outage length the writer alone can heal — small enough to
// overrun on purpose.
func (d *SensorDaemon) SetBacklogCap(n int) {
	if n <= 0 {
		n = backlogDefaultCap
	}
	d.backlogCap = n
}

// BacklogCap reports the per-series store-and-forward backlog bound.
func (d *SensorDaemon) BacklogCap() int { return d.backlogCap }

// Group returns the store backend the daemon delivers through (a
// *ReplicaGroup on the replicated path), letting harnesses and operators
// reach replication-layer knobs like SetHintCap.
func (d *SensorDaemon) Group() StoreBackend { return d.group }

// Register announces this sensor to a name server. addr is where queries
// about this daemon should go (informational; the daemon itself only pushes).
func (d *SensorDaemon) Register(nsAddr, addr string) error {
	if d.client == nil {
		return fmt.Errorf("nwsnet: sensor %s: no wire client (backend-wired daemon)", d.hostName)
	}
	return d.client.Register(nsAddr, Registration{
		Name: d.hostName + "/cpu",
		Kind: KindSensor,
		Addr: addr,
	})
}

// Step takes one measurement with every sensor and stores the results —
// every series plus its backlog from previous failed deliveries in ONE
// batched round trip per replica. Undeliverable measurements are buffered
// per series (bounded; oldest dropped first, each drop counted in
// nws_sensor_backlog_dropped_total) and the error reported — the daemon
// keeps measuring through memory-server outages and backfills when the
// server returns; server-side dedup makes the redelivered batches
// idempotent.
func (d *SensorDaemon) Step() error {
	t := d.host.Now()
	stores := make([]BatchStore, len(d.sensors))
	for i, s := range d.sensors {
		v := s.Measure()
		mSensorMeasurements.With(s.Name()).Inc()
		key := SeriesKey(d.hostName, s.Name())
		stores[i] = BatchStore{Series: key, Points: append(d.backlog[key], [2]float64{t, v})}
	}
	subErrs, err := d.group.StoreBatch(context.Background(), stores)
	var firstErr error
	for i, st := range stores {
		serr := err
		if subErrs != nil {
			serr = subErrs[i]
		}
		if serr == nil {
			mSensorDeliveries.Inc()
			delete(d.backlog, st.Series)
			continue
		}
		mSensorDeliveryFailures.Inc()
		batch := st.Points
		if dropped := len(batch) - d.backlogCap; dropped > 0 {
			batch = batch[dropped:]
			d.noteDropped(dropped)
		}
		d.backlog[st.Series] = batch
		if firstErr == nil {
			firstErr = fmt.Errorf("nwsnet: sensor %s: %w", st.Series, serr)
		}
	}
	d.noteOutcome(firstErr)
	mSensorBacklog.With(d.hostName).Set(float64(d.Backlogged()))
	return firstErr
}

// noteDropped counts backlog-cap drops and logs the first of an outage.
func (d *SensorDaemon) noteDropped(n int) {
	mSensorBacklogDropped.Add(uint64(n))
	d.outageDrops += n
	if !d.outageDropLog {
		d.outageDropLog = true
		if d.logger != nil {
			d.logger.Printf("nwsnet: sensor %s: backlog full (cap %d points/series); dropping oldest measurements until delivery recovers",
				d.hostName, d.backlogCap)
		}
	}
}

// noteOutcome tracks outage transitions: entering an outage bumps
// nws_sensor_outages_total; leaving one reports how much was lost.
func (d *SensorDaemon) noteOutcome(err error) {
	if err != nil {
		if !d.inOutage {
			d.inOutage = true
			mSensorOutages.Inc()
		}
		return
	}
	if d.inOutage {
		if d.logger != nil && d.outageDrops > 0 {
			d.logger.Printf("nwsnet: sensor %s: delivery recovered; %d measurements were dropped during the outage",
				d.hostName, d.outageDrops)
		}
		d.inOutage = false
		d.outageDrops = 0
		d.outageDropLog = false
	}
}

// Backlogged reports how many undelivered measurements are buffered.
func (d *SensorDaemon) Backlogged() int {
	n := 0
	for _, b := range d.backlog {
		n += len(b)
	}
	return n
}

// Start launches a background wall-clock measurement loop with the given
// period. Errors are delivered on the returned channel (buffered; the loop
// keeps running after errors). Stop terminates the loop.
func (d *SensorDaemon) Start(period time.Duration) <-chan error {
	errs := make(chan error, 16)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopCh != nil {
		errs <- fmt.Errorf("nwsnet: sensor daemon already started")
		close(errs)
		return errs
	}
	d.stopCh = make(chan struct{})
	d.doneCh = make(chan struct{})
	stop, done := d.stopCh, d.doneCh
	go func() {
		defer close(done)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if err := d.Step(); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}
	}()
	return errs
}

// Close releases the daemon's pooled memory connections. Call after the
// final Step or Stop. A backend-wired daemon owns no connections.
func (d *SensorDaemon) Close() error {
	if d.client == nil {
		return nil
	}
	return d.client.Close()
}

// Replicas reports the health of the daemon's memory replica group.
func (d *SensorDaemon) Replicas() []ReplicaHealth { return d.group.Health() }

// Stop terminates a Start loop and waits for it to exit. It is safe to call
// without a prior Start.
func (d *SensorDaemon) Stop() {
	d.mu.Lock()
	stop, done := d.stopCh, d.doneCh
	d.stopCh, d.doneCh = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
