package nwsnet

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"nwscpu/internal/resilience"
	"nwscpu/internal/resilience/chaos"
)

// codecClient builds a fast test client pinned to one codec.
func codecClient(codec Codec) *Client {
	return NewClientOptions(ClientOptions{
		Timeout: 2 * time.Second,
		Retry:   resilience.Policy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond},
		Codec:   codec,
	})
}

// TestV1ClientAgainstV2DefaultServer is the downgrade regression: a JSON
// (v1) client — and below it, a raw netcat-style connection — against
// today's binary-default server must work exactly as before the v2 codec
// existed. The server may never assume the preamble.
func TestV1ClientAgainstV2DefaultServer(t *testing.T) {
	mem := NewMemory(100)
	srv, addr := startServerLimits(t, mem, ServerLimits{})
	defer srv.Close()

	c := codecClient(CodecJSON)
	defer c.Close()
	if err := c.Ping(addr); err != nil {
		t.Fatalf("v1 ping: %v", err)
	}
	pts := [][2]float64{{1, 0.5}, {2, 0.6}}
	if err := c.Store(addr, "k", pts); err != nil {
		t.Fatalf("v1 store: %v", err)
	}
	got, err := c.Fetch(addr, "k", 0, 0, 0)
	if err != nil {
		t.Fatalf("v1 fetch: %v", err)
	}
	if !reflect.DeepEqual(got, pts) {
		t.Fatalf("v1 fetch returned %v, want %v", got, pts)
	}

	// Rawest possible v1 peer: a hand-written JSON line, no client library.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Write([]byte(`{"op":"fetch","series":"k"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readMsg(bufio.NewReader(nc), &resp); err != nil {
		t.Fatalf("raw JSON line: %v", err)
	}
	if !resp.OK || len(resp.Points) != 2 {
		t.Fatalf("raw JSON line answered %+v", resp)
	}
}

// TestCodecsAnswerIdentically sweeps every op through both codecs against
// identically-prepared servers and requires identical answers — the
// bit-for-bit semantic-preservation contract of the v2 codec.
func TestCodecsAnswerIdentically(t *testing.T) {
	reqs := []Request{
		{Op: OpPing},
		{Op: OpStore, Series: "k", Points: [][2]float64{{1, 0.5}, {2, 0.6}}},
		{Op: OpStore, Series: "k", Points: [][2]float64{{2, 0.9}, {3, 0.7}}}, // dedup overlap
		{Op: OpStore, Series: ""}, // rejection
		{Op: OpFetch, Series: "k"},
		{Op: OpFetch, Series: "k", From: 5, To: 2},
		{Op: OpFetch, Series: "k", From: 2, To: 5, Max: 1},
		{Op: OpFetch, Series: "missing"},
		{Op: OpSeries},
		{Op: OpBatch, Batch: []Request{
			{Op: OpStore, Series: "b", Points: [][2]float64{{1, 1}}},
			{Op: OpFetch, Series: "b"},
			{Op: OpStore},
		}},
		{Op: OpBatch, Batch: []Request{{Op: OpBatch, Batch: []Request{{Op: OpPing}}}}},
	}
	answers := func(codec Codec) []Response {
		mem := NewMemory(100)
		srv, addr := startServerLimits(t, mem, ServerLimits{})
		defer srv.Close()
		conn := NewConnCodec(addr, 2*time.Second, codec)
		defer conn.Close()
		out := make([]Response, len(reqs))
		for i, req := range reqs {
			// Conn.Do converts rejections to errors; go through the raw
			// exchange instead so error responses compare too.
			conn.mu.Lock()
			resp, err := conn.doLocked(req)
			conn.mu.Unlock()
			if err != nil {
				t.Fatalf("%s op %s: %v", codec, req.Op, err)
			}
			out[i] = resp
		}
		return out
	}
	j := answers(CodecJSON)
	b := answers(CodecBinary)
	for i := range reqs {
		// JSON decodes absent points as nil, binary too; both must agree
		// structurally on every field.
		if !reflect.DeepEqual(j[i], b[i]) {
			t.Errorf("op %s (case %d):\n json %+v\nbinary %+v", reqs[i].Op, i, j[i], b[i])
		}
	}
}

// TestMixedCodecReplicaQuorumConvergesUnderChaos is the mixed-version
// deployment scenario: one writer still on v1 (JSON) and one on v2 (binary)
// both write to the same 2-replica group at quorum 2, with one replica
// behind a chaos proxy that truncates each writer's first connection
// mid-exchange (applied but unacknowledged). Retries plus server-side
// idempotent dedup must converge both replicas to exactly one copy of every
// point, regardless of codec.
func TestMixedCodecReplicaQuorumConvergesUnderChaos(t *testing.T) {
	chaosMem, _, chaosAddr := chaosFront(t, chaos.NewScript(
		chaos.Action{Fault: chaos.Truncate}, // json writer's first connection
		chaos.Action{Fault: chaos.Truncate}, // binary writer's first connection
	))
	mems, _, addrs := startReplicaSet(t, 1)
	group := []string{chaosAddr, addrs[0]}

	newWriter := func(codec Codec) *ReplicaGroup {
		c := NewClientOptions(ClientOptions{
			Timeout: time.Second,
			Retry:   resilience.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond},
			// Faults are drawn per connection: a fresh connection per
			// attempt keeps the schedule aligned (truncate once, then pass).
			MaxIdlePerAddr: -1,
			Codec:          codec,
		})
		return NewReplicaGroup(c, group, 2)
	}
	jw := newWriter(CodecJSON)
	defer jw.Close()
	bw := newWriter(CodecBinary)
	defer bw.Close()

	// Interleave quorum writes from both writers on both series.
	const rounds = 6
	for i := 0; i < rounds; i++ {
		w := jw
		if i%2 == 1 {
			w = bw
		}
		stores := []BatchStore{
			{Series: "mixed/a", Points: [][2]float64{{float64(i), 0.5}}},
			{Series: "mixed/b", Points: [][2]float64{{float64(i), 0.9}}},
		}
		if _, err := w.StoreBatch(context.Background(), stores); err != nil {
			t.Fatalf("round %d (%T): %v", i, w, err)
		}
	}

	for _, series := range []string{"mixed/a", "mixed/b"} {
		for ri, m := range []*Memory{chaosMem, mems[0]} {
			if n := m.Len(series); n != rounds {
				t.Errorf("replica %d holds %d points of %s, want %d (duplicate or lost under mixed codecs)",
					ri, n, series, rounds)
			}
		}
	}
	if mems[0].Len("mixed/a") == 0 {
		t.Fatal("sanity: no writes landed at all")
	}
}

// TestServerCountsNegotiatedCodecs pins the nws_wire_connections_total
// accounting: one JSON and one binary connection, one count each.
func TestServerCountsNegotiatedCodecs(t *testing.T) {
	j0 := mWireConns.With(string(CodecJSON)).Value()
	b0 := mWireConns.With(string(CodecBinary)).Value()
	mem := NewMemory(10)
	srv, addr := startServerLimits(t, mem, ServerLimits{})
	defer srv.Close()

	jc := NewConnCodec(addr, time.Second, CodecJSON)
	if err := jc.Ping(); err != nil {
		t.Fatal(err)
	}
	jc.Close()
	bc := NewConnCodec(addr, time.Second, CodecBinary)
	if err := bc.Ping(); err != nil {
		t.Fatal(err)
	}
	bc.Close()

	if got := mWireConns.With(string(CodecJSON)).Value() - j0; got != 1 {
		t.Errorf("json connections counted %d, want 1", got)
	}
	if got := mWireConns.With(string(CodecBinary)).Value() - b0; got != 1 {
		t.Errorf("binary connections counted %d, want 1", got)
	}
}

// TestLegacyPreambleVersionFallsBackToJSON covers the version-negotiation
// downgrade the spec promises: a client that sends the preamble with a
// version below 2 gets the JSON accept byte and a working JSON-line
// conversation on the same connection.
func TestLegacyPreambleVersionFallsBackToJSON(t *testing.T) {
	mem := NewMemory(10)
	srv, addr := startServerLimits(t, mem, ServerLimits{})
	defer srv.Close()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	pre := wirePreamble
	pre[4] = 1 // ask for wire version 1
	if _, err := nc.Write(pre[:]); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	accept, err := br.ReadByte()
	if err != nil {
		t.Fatal(err)
	}
	if accept != wireVersionJSON {
		t.Fatalf("accept byte %d, want %d (JSON fallback)", accept, wireVersionJSON)
	}
	if _, err := fmt.Fprintf(nc, `{"op":"ping"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readMsg(br, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("ping after downgrade answered %+v", resp)
	}
}
