package nwsnet

import (
	"sync"
	"time"
)

// This file holds the server-side contracts of the forecast read plane:
// the push sink a subscribing connection exposes to its handler, the
// handler interface that serves subscribe/unsubscribe, and the per-tenant
// token bucket behind ServerLimits.TenantRate. The wire semantics are
// docs/PROTOCOL.md §8; the forecaster's implementation is forecaster.go.

// PushSink is the write half of one subscribing connection, handed to a
// SubscriptionHandler at subscribe time. Push writes a server-initiated
// response frame tagged with the subscription's original request ID; the
// serve loop serializes pushes against ordinary responses, and a subscribe
// acknowledgement is always written before the first push for its ID.
//
// Push must not be called while holding any lock a Subscribe or Unsubscribe
// call can take: the serve loop holds the sink's write lock across
// registration and its acknowledgement.
type PushSink interface {
	Push(id uint64, resp Response) error
}

// SubscriptionHandler is implemented by handlers that serve the v2
// subscribe/push read plane. The binary serve loop routes OpSubscribe and
// OpUnsubscribe here instead of Handle; on the v1 JSON codec the ops reach
// Handle unrouted, whose default arm answers with a terminal "unsupported
// op" error — push frames cannot be expressed in request/response lockstep.
type SubscriptionHandler interface {
	Handler
	// Subscribe registers sink for pushes on the series named by req,
	// keyed by the request ID id, and returns the acknowledgement
	// response (carrying the current forecast when one is computable).
	Subscribe(req Request, id uint64, sink PushSink) Response
	// Unsubscribe removes the sink's subscription on the series named by
	// req. Unsubscribing a series that was never subscribed is not an
	// error (the acknowledgement is idempotent).
	Unsubscribe(req Request, sink PushSink) Response
	// DropSink removes every subscription registered for sink — the
	// connection teardown path.
	DropSink(sink PushSink)
}

// subCounter is implemented by sinks that track their active-subscription
// count; the binary serve loop reads it to keep the idle deadline from
// disconnecting a connection that is quiet only because it is subscribed.
type subCounter interface{ addSubs(delta int64) }

// tokenBucket is one tenant's request budget: tokens refill continuously at
// rate per second up to burst, and each admitted request spends one.
type tokenBucket struct {
	rate  float64
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if b <= 0 {
		b = max(1, rate)
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: time.Now()}
}

// allow spends one token when available, reporting whether the request is
// within quota.
func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// maxTenantBuckets bounds the per-tenant bucket registry. Tenant IDs arrive
// off the wire, so an unbounded map would let a hostile client grow server
// memory one bucket per invented tenant; past the cap, unseen tenants share
// one overflow bucket (they throttle each other, never the registered set).
const maxTenantBuckets = 1024

// tenantBucket returns (creating on first use) the bucket for tenant.
func (s *Server) tenantBucket(tenant string) *tokenBucket {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if b := s.tenants[tenant]; b != nil {
		return b
	}
	if len(s.tenants) >= maxTenantBuckets {
		if s.tenantOverflow == nil {
			s.tenantOverflow = newTokenBucket(s.limits.TenantRate, s.limits.TenantBurst)
		}
		return s.tenantOverflow
	}
	if s.tenants == nil {
		s.tenants = make(map[string]*tokenBucket)
	}
	b := newTokenBucket(s.limits.TenantRate, s.limits.TenantBurst)
	s.tenants[tenant] = b
	return b
}

// allowTenant reports whether a request attributed to tenant is within its
// quota. With no quota configured every request passes; OpHello itself is
// always admitted (it is how the tenant is attributed in the first place).
func (s *Server) allowTenant(tenant string) bool {
	if s.limits.TenantRate <= 0 {
		return true
	}
	return s.tenantBucket(tenant).allow()
}

// tenantBusy builds the over-quota shed response: the existing retryable
// busy code, so client breakers and retry policies compose unchanged.
func (s *Server) tenantBusy(tenant string) Response {
	mTenantThrottled.Inc()
	mServerShed.With(shedTenant).Inc()
	return busyResp("tenant %q over quota (%g req/s sustained); retry", tenant, s.limits.TenantRate)
}
