package nwsnet

import (
	"bufio"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nwscpu/internal/resilience"
)

// handlerFunc adapts a function to the Handler interface for test stubs.
type handlerFunc func(Request) Response

func (f handlerFunc) Handle(req Request) Response { return f(req) }

// startServerLimits runs a limited server over h and returns its address.
func startServerLimits(t *testing.T, h Handler, limits ServerLimits) (*Server, string) {
	t.Helper()
	srv := NewServerLimits(h, nil, limits)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// waitForGoroutines polls until the goroutine count drops back to at most
// want, failing the test after a generous deadline. Goroutine counts are
// noisy (the runtime and other tests run their own), so callers pass a
// baseline captured before the load plus slack.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines = %d, want <= %d (leaked serving goroutines?)", runtime.NumGoroutine(), want)
}

func TestServerShedsConnectionsOverCap(t *testing.T) {
	_, addr := startServerLimits(t, NewMemory(0), ServerLimits{MaxConns: 2})

	// Fill the connection budget with two parked clients.
	var held []net.Conn
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		held = append(held, c)
	}
	// Give the accept loop a moment to register both.
	deadline := time.Now().Add(2 * time.Second)
	for mServerConnsActive.Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	shed0 := mServerShed.With(shedConns).Value()
	// A third connection must be answered with a retryable busy response,
	// not silently dropped and not left hanging.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp Response
	if err := readMsg(bufio.NewReader(c), &resp); err != nil {
		t.Fatalf("shed connection got no response: %v", err)
	}
	if resp.OK || resp.Code != CodeBusy {
		t.Fatalf("shed response = %+v, want busy", resp)
	}
	if got := mServerShed.With(shedConns).Value() - shed0; got != 1 {
		t.Fatalf("shed(connections) delta = %d, want 1", got)
	}

	// Releasing a held connection frees capacity for new clients.
	held[0].Close()
	cl := NewClient(time.Second)
	var ok bool
	for i := 0; i < 100 && !ok; i++ {
		ok = cl.Ping(addr) == nil
		if !ok {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatal("server did not recover capacity after a connection closed")
	}
}

func TestServerIdleDeadlineFreesGoroutine(t *testing.T) {
	srv, addr := startServerLimits(t, NewMemory(0), ServerLimits{IdleTimeout: 100 * time.Millisecond})
	baseline := runtime.NumGoroutine()
	shed0 := mServerShed.With(shedIdle).Value()

	// Clients that connect and never send a byte: without the idle deadline
	// each would pin a serving goroutine forever.
	const n = 8
	conns := make([]net.Conn, n)
	for i := range conns {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}

	waitForGoroutines(t, baseline+1)
	if got := mServerShed.With(shedIdle).Value() - shed0; got != n {
		t.Errorf("shed(idle) delta = %d, want %d", got, n)
	}
	// The server itself must still be live for well-behaved clients.
	if err := NewClient(time.Second).Ping(addr); err != nil {
		t.Fatalf("server dead after shedding idle connections: %v", err)
	}
	srv.Close()
}

func TestServerWriteDeadlineFreesStalledReader(t *testing.T) {
	// A handler whose response is far larger than the kernel socket buffers,
	// so writing it blocks until the client reads — which this client never
	// does. Without the write deadline the serving goroutine would be stuck
	// in the write for as long as the client cares to stall.
	big := make([][2]float64, 500_000)
	for i := range big {
		big[i] = [2]float64{float64(i), 0.5}
	}
	h := handlerFunc(func(req Request) Response { return Response{Points: big} })
	srv, addr := startServerLimits(t, h, ServerLimits{WriteTimeout: 200 * time.Millisecond})
	baseline := runtime.NumGoroutine()
	shed0 := mServerShed.With(shedWrite).Value()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Shrink the receive window so the server's write jams quickly.
	c.(*net.TCPConn).SetReadBuffer(4 << 10)
	if err := writeMsg(bufio.NewWriter(c), Request{Op: OpFetch, Series: "x"}); err != nil {
		t.Fatal(err)
	}
	// Never read. The server must cut the connection at the write deadline.
	deadline := time.Now().Add(5 * time.Second)
	for mServerShed.With(shedWrite).Value() == shed0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := mServerShed.With(shedWrite).Value() - shed0; got != 1 {
		t.Fatalf("shed(write) delta = %d, want 1", got)
	}
	waitForGoroutines(t, baseline+1)
	srv.Close()
}

func TestServerQueueShedsWithinBudget(t *testing.T) {
	// One in-flight slot, held by a blocked request; the next request must be
	// shed with a busy answer in roughly QueueWait, not the client timeout.
	release := make(chan struct{})
	h := handlerFunc(func(req Request) Response {
		if req.Op == OpStore {
			<-release
		}
		return Response{}
	})
	const queueWait = 50 * time.Millisecond
	_, addr := startServerLimits(t, h, ServerLimits{MaxInFlight: 1, QueueWait: queueWait})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		NewClient(5*time.Second).Store(addr, "k", [][2]float64{{1, 1}})
	}()
	// Wait until the blocker holds the slot.
	deadline := time.Now().Add(2 * time.Second)
	for mServerInFlight.Value() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if mServerInFlight.Value() < 1 {
		t.Fatal("blocking request never took the in-flight slot")
	}

	shed0 := mServerShed.With(shedQueue).Value()
	// No retries: one attempt measures the shed latency directly.
	c := NewClientOptions(ClientOptions{Timeout: 5 * time.Second, Retry: resilience.Policy{MaxAttempts: 1}})
	t0 := time.Now()
	err := c.Ping(addr)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("request got a slot despite a saturated server")
	}
	if !IsBusy(err) {
		t.Fatalf("shed error = %v, want busy-classified", err)
	}
	if resilience.IsTerminal(err) {
		t.Fatalf("busy shed classified terminal (not retryable): %v", err)
	}
	if elapsed > 10*queueWait {
		t.Fatalf("shed took %v, want well under the client timeout (budget %v)", elapsed, queueWait)
	}
	if got := mServerShed.With(shedQueue).Value() - shed0; got != 1 {
		t.Errorf("shed(queue) delta = %d, want 1", got)
	}

	close(release)
	wg.Wait()
}

func TestServerInFlightBoundHolds(t *testing.T) {
	// Load test for the acceptance criterion: under far more concurrency
	// than MaxInFlight, the handler-observed high-water mark and the
	// exported gauge must never exceed the bound.
	const bound = 4
	var inHandler, highWater int64
	h := handlerFunc(func(req Request) Response {
		n := atomic.AddInt64(&inHandler, 1)
		for {
			hw := atomic.LoadInt64(&highWater)
			if n <= hw || atomic.CompareAndSwapInt64(&highWater, hw, n) {
				break
			}
		}
		if g := int64(mServerInFlight.Value()); g > bound {
			atomic.StoreInt64(&highWater, g+bound) // force the failure below
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&inHandler, -1)
		return Response{}
	})
	_, addr := startServerLimits(t, h, ServerLimits{MaxInFlight: bound, QueueWait: 2 * time.Second})

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(5 * time.Second)
			for j := 0; j < 5; j++ {
				if err := c.Ping(addr); err != nil {
					t.Errorf("ping under load: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if hw := atomic.LoadInt64(&highWater); hw > bound {
		t.Fatalf("in-flight high-water = %d, want <= %d", hw, bound)
	}
}

func TestClientRetriesBusyWithBackoff(t *testing.T) {
	// A server that sheds the first request and accepts the second: the
	// retry policy must classify busy as retryable and succeed transparently.
	var calls int64
	h := handlerFunc(func(req Request) Response {
		if atomic.AddInt64(&calls, 1) == 1 {
			return busyResp("synthetic shed")
		}
		return Response{}
	})
	addr := startServer(t, h)
	c := NewClientOptions(ClientOptions{
		Timeout: time.Second,
		Retry:   resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})
	if err := c.Ping(addr); err != nil {
		t.Fatalf("busy was not retried: %v", err)
	}
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Fatalf("server handled %d calls, want 2 (shed + retry)", got)
	}
}

func TestClientBreakerOpensDeniesAndRecovers(t *testing.T) {
	// A server shedding every request trips the client breaker; once open,
	// calls are denied without touching the server. After OpenFor, a probe
	// goes through, and a recovered server closes the circuit.
	var busy atomic.Bool
	busy.Store(true)
	var calls int64
	h := handlerFunc(func(req Request) Response {
		atomic.AddInt64(&calls, 1)
		if busy.Load() {
			return busyResp("synthetic shed")
		}
		return Response{}
	})
	addr := startServer(t, h)
	const openFor = 50 * time.Millisecond
	c := NewClientOptions(ClientOptions{
		Timeout: time.Second,
		Retry:   resilience.Policy{MaxAttempts: 1},
		Breaker: &resilience.BreakerConfig{Window: 4, MinSamples: 2, OpenFor: openFor},
	})

	for i := 0; i < 2; i++ {
		if err := c.Ping(addr); err == nil {
			t.Fatal("busy server answered a ping successfully")
		}
	}
	if got := c.BreakerState(addr); got != resilience.BreakerOpen {
		t.Fatalf("breaker state after sheds = %v, want open", got)
	}

	// Denied without a server round trip.
	before := atomic.LoadInt64(&calls)
	err := c.Ping(addr)
	if err == nil {
		t.Fatal("open breaker allowed a call")
	}
	if !resilience.IsTerminal(err) {
		t.Fatalf("breaker denial should be terminal, got %v", err)
	}
	if got := atomic.LoadInt64(&calls); got != before {
		t.Fatalf("denied call still reached the server (%d -> %d calls)", before, got)
	}

	// Server recovers; after OpenFor the probe closes the circuit.
	busy.Store(false)
	time.Sleep(openFor + 20*time.Millisecond)
	if err := c.Ping(addr); err != nil {
		t.Fatalf("post-recovery probe failed: %v", err)
	}
	if got := c.BreakerState(addr); got != resilience.BreakerClosed {
		t.Fatalf("breaker state after probe success = %v, want closed", got)
	}
}
