package nwsnet

import (
	"context"
	"fmt"
	"sync"

	"nwscpu/internal/resilience"
)

// ReplicaGroup presents N memory servers as one logical endpoint, the
// fault-tolerance unit of the distributed NWS:
//
//   - Writes fan out to every replica in configuration order; the write
//     succeeds once at least Quorum replicas acknowledge it (default: a
//     majority). Replicas that missed a quorum write are marked unhealthy,
//     which demotes them in the read order until they acknowledge again.
//   - Reads try replicas healthy-first (configuration order breaks ties)
//     and fail over to the next on transport failure, so a dead replica
//     costs one extra attempt, not an outage.
//
// There is no read repair or anti-entropy: a replica that misses writes
// diverges until the writer (sensord's store-and-forward backlog) re-stores
// through it or it falls off the healthy list. Health is per-process
// observation, exported through nws_replica_healthy.
//
// A group of one behaves exactly like a direct client, so every caller
// takes the replicated path unconditionally.
type ReplicaGroup struct {
	client *Client
	quorum int

	mu       sync.Mutex
	replicas []*replicaState
}

type replicaState struct {
	addr    string
	healthy bool
}

// ReplicaHealth is one replica's last observed state.
type ReplicaHealth struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
}

// NewReplicaGroup groups the memory servers at addrs behind client (nil
// selects a default client). quorum <= 0 selects a majority; quorums larger
// than the group clamp to all replicas. Replicas start healthy.
func NewReplicaGroup(client *Client, addrs []string, quorum int) *ReplicaGroup {
	if client == nil {
		client = NewClient(0)
	}
	g := &ReplicaGroup{client: client}
	for _, a := range addrs {
		g.replicas = append(g.replicas, &replicaState{addr: a, healthy: true})
		mReplicaHealthy.With(a).Set(1)
	}
	if quorum <= 0 {
		quorum = len(addrs)/2 + 1
	}
	if quorum > len(addrs) {
		quorum = len(addrs)
	}
	g.quorum = quorum
	return g
}

// Addrs returns the replica addresses in configuration order.
func (g *ReplicaGroup) Addrs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.replicas))
	for i, r := range g.replicas {
		out[i] = r.addr
	}
	return out
}

// Quorum returns the write quorum.
func (g *ReplicaGroup) Quorum() int { return g.quorum }

// Client returns the protocol client the group calls through.
func (g *ReplicaGroup) Client() *Client { return g.client }

// mark records one observation of a replica's health.
func (g *ReplicaGroup) mark(r *replicaState, ok bool) {
	g.mu.Lock()
	r.healthy = ok
	g.mu.Unlock()
	v := 0.0
	if ok {
		v = 1
	}
	mReplicaHealthy.With(r.addr).Set(v)
}

// snapshot returns the replicas in configuration order.
func (g *ReplicaGroup) snapshot() []*replicaState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*replicaState(nil), g.replicas...)
}

// ordered returns the replicas healthy-first, preserving configuration
// order within each class — the read failover order.
func (g *ReplicaGroup) ordered() []*replicaState {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*replicaState, 0, len(g.replicas))
	for _, r := range g.replicas {
		if r.healthy {
			out = append(out, r)
		}
	}
	for _, r := range g.replicas {
		if !r.healthy {
			out = append(out, r)
		}
	}
	return out
}

// Health reports the last observed state of every replica, in
// configuration order.
func (g *ReplicaGroup) Health() []ReplicaHealth {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ReplicaHealth, len(g.replicas))
	for i, r := range g.replicas {
		out[i] = ReplicaHealth{Addr: r.addr, Healthy: r.healthy}
	}
	return out
}

// CheckHealth pings every replica, refreshing the health states it returns.
func (g *ReplicaGroup) CheckHealth(ctx context.Context) []ReplicaHealth {
	for _, r := range g.snapshot() {
		g.mark(r, g.client.PingCtx(ctx, r.addr) == nil)
	}
	return g.Health()
}

// Store fans the points out to every replica and succeeds once the quorum
// acknowledges. Replicas are written in configuration order so failure
// sequences are deterministic under test schedules.
//
// Store is idempotent under redelivery: batches retried from a sensor
// backlog overlap points a replica already accepted during the failed
// round, which the memory rejects as out-of-order. Those rejections are
// resolved per replica by trimming the batch to the replica's current
// frontier (see storeOne) — without this, one quorum failure would wedge
// the group forever, every replica slightly ahead of every retried batch.
func (g *ReplicaGroup) Store(ctx context.Context, key string, points [][2]float64) error {
	acks := 0
	var firstErr error
	replicas := g.snapshot()
	for _, r := range replicas {
		err := g.storeOne(ctx, r.addr, key, points)
		g.mark(r, err == nil)
		if err == nil {
			acks++
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if acks >= g.quorum {
		return nil
	}
	mReplicaQuorumFailures.Inc()
	return fmt.Errorf("nwsnet: replicated store %q: %d/%d acks, quorum %d: %w",
		key, acks, len(replicas), g.quorum, firstErr)
}

// storeOne writes one batch to one replica, converging on redelivery: if
// the replica rejects the batch at the protocol level (typically
// "out-of-order append" because it already holds a prefix from an earlier
// partial round), the batch is trimmed to the points past the replica's
// last stored timestamp and retried once. An empty remainder means the
// replica already has everything and counts as an acknowledgement.
func (g *ReplicaGroup) storeOne(ctx context.Context, addr, key string, points [][2]float64) error {
	err := g.client.StoreCtx(ctx, addr, key, points)
	if err == nil || !isProtocolError(err) {
		return err
	}
	last, ferr := g.client.FetchCtx(ctx, addr, key, 0, 0, 1)
	if ferr != nil || len(last) == 0 {
		return err
	}
	frontier := last[len(last)-1][0]
	fresh := points
	for len(fresh) > 0 && fresh[0][0] <= frontier {
		fresh = fresh[1:]
	}
	overlap := points[:len(points)-len(fresh)]
	if len(overlap) == 0 {
		return err // nothing overlapped; the rejection was genuine
	}
	// Only trim a true redelivery: every overlapped point must already be
	// stored verbatim. A batch that is merely older than the frontier (a
	// misbehaving writer, not a retry) keeps its rejection.
	stored, ferr := g.client.FetchCtx(ctx, addr, key, overlap[0][0], 0, 0)
	if ferr != nil {
		return err
	}
	have := make(map[[2]float64]bool, len(stored))
	for _, p := range stored {
		have[p] = true
	}
	for _, p := range overlap {
		if !have[p] {
			return err
		}
	}
	if len(fresh) == 0 {
		return nil // the replica already holds the whole batch
	}
	return g.client.StoreCtx(ctx, addr, key, fresh)
}

// read runs op against replicas in health order until one succeeds.
// Transport failures demote the replica and fail over to the next;
// protocol-level rejections (the replica answered) leave it healthy but
// still fall through, because a diverged replica may simply not hold the
// series yet. Failovers past the preferred replica are counted.
func (g *ReplicaGroup) read(op func(addr string) error) error {
	var firstErr error
	for i, r := range g.ordered() {
		err := op(r.addr)
		if err == nil {
			g.mark(r, true)
			if i > 0 {
				mReplicaFailovers.Inc()
			}
			return nil
		}
		// A replica that answered with a rejection is alive.
		g.mark(r, isProtocolError(err))
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// isProtocolError reports whether err came back as a server response
// rather than a transport failure. Protocol errors are marked terminal by
// Client.do, so this is exactly the terminal class.
func isProtocolError(err error) bool {
	return resilience.IsTerminal(err)
}

// Fetch reads a series range with failover (see Client.Fetch for the
// range semantics).
func (g *ReplicaGroup) Fetch(ctx context.Context, key string, from, to float64, max int) ([][2]float64, error) {
	var pts [][2]float64
	err := g.read(func(addr string) error {
		p, e := g.client.FetchCtx(ctx, addr, key, from, to, max)
		if e == nil {
			pts = p
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// Series lists stored series keys with failover.
func (g *ReplicaGroup) Series(ctx context.Context) ([]string, error) {
	var names []string
	err := g.read(func(addr string) error {
		n, e := g.client.SeriesCtx(ctx, addr)
		if e == nil {
			names = n
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	return names, nil
}

// Close releases the group's pooled connections.
func (g *ReplicaGroup) Close() error { return g.client.Close() }
