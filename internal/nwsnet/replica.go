package nwsnet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"nwscpu/internal/resilience"
)

// ReplicaGroup presents N memory servers as one logical endpoint, the
// fault-tolerance unit of the distributed NWS:
//
//   - Writes fan out to every replica in configuration order; the write
//     succeeds once at least Quorum replicas acknowledge it (default: a
//     majority). Replicas that missed a quorum write are marked unhealthy,
//     which demotes them in the read order until they acknowledge again.
//   - Reads try replicas healthy-first (configuration order breaks ties)
//     and fail over to the next on transport failure, so a dead replica
//     costs one extra attempt, not an outage.
//
// Two mechanisms close the divergence window a missed write opens (see
// docs/ARCHITECTURE.md, "Repair plane"):
//
//   - Hinted handoff: when a sub-store meets quorum but a replica misses
//     it, the writer parks the points in a bounded per-replica, per-series
//     hint queue (capacity-metered through nws_hints_*) and redelivers
//     them via OpBackfill the next time the replica answers.
//   - Anti-entropy: a Repairer beside each replica exchanges per-series
//     digests with its peers and pulls whatever ranges the hints did not
//     cover (dropped hints, a writer that died with hints parked).
//
// Health is per-process observation, exported through nws_replica_healthy.
//
// A group of one behaves exactly like a direct client, so every caller
// takes the replicated path unconditionally.
type ReplicaGroup struct {
	tr     Transport
	client *Client // nil when the group was built over a bare Transport
	quorum int

	mu       sync.Mutex
	replicas []*replicaState
	hintCap  int                                // max hinted points per replica per series; 0 disables
	hints    map[string]map[string][][2]float64 // addr -> series -> parked points
	hstats   HintStats
}

// HintStats counts this group's hinted-handoff activity (the per-process
// totals are also exported as nws_hints_queued/replayed/dropped_total).
type HintStats struct {
	Queued   uint64 `json:"queued"`
	Replayed uint64 `json:"replayed"`
	Dropped  uint64 `json:"dropped"`
}

// hintCapDefault bounds each replica's per-series hint queue: at sensord's
// 10-second cadence it covers over an hour of missed points per series
// before hints start dropping and anti-entropy has to close the rest.
const hintCapDefault = 512

type replicaState struct {
	addr    string
	healthy bool
}

// ReplicaHealth is one replica's last observed state.
type ReplicaHealth struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
}

// NewReplicaGroup groups the memory servers at addrs behind client (nil
// selects a default client). quorum <= 0 selects a majority; quorums larger
// than the group clamp to all replicas. Replicas start healthy.
func NewReplicaGroup(client *Client, addrs []string, quorum int) *ReplicaGroup {
	if client == nil {
		client = NewClient(0)
	}
	g := NewReplicaGroupTransport(client, addrs, quorum)
	g.client = client
	return g
}

// NewReplicaGroupTransport is NewReplicaGroup over any Transport — the
// production TCP client or an in-process LocalTransport under a fault
// harness. Close is a no-op for groups built this way; the transport's
// owner manages its lifetime.
func NewReplicaGroupTransport(tr Transport, addrs []string, quorum int) *ReplicaGroup {
	g := &ReplicaGroup{
		tr:      tr,
		hintCap: hintCapDefault,
		hints:   make(map[string]map[string][][2]float64),
	}
	for _, a := range addrs {
		g.replicas = append(g.replicas, &replicaState{addr: a, healthy: true})
		mReplicaHealthy.With(a).Set(1)
	}
	if quorum <= 0 {
		quorum = len(addrs)/2 + 1
	}
	if quorum > len(addrs) {
		quorum = len(addrs)
	}
	g.quorum = quorum
	return g
}

// Addrs returns the replica addresses in configuration order.
func (g *ReplicaGroup) Addrs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.replicas))
	for i, r := range g.replicas {
		out[i] = r.addr
	}
	return out
}

// Quorum returns the write quorum.
func (g *ReplicaGroup) Quorum() int { return g.quorum }

// Client returns the protocol client the group calls through, nil when the
// group was built over a bare Transport.
func (g *ReplicaGroup) Client() *Client { return g.client }

// SetHintCap bounds the hinted-handoff queue: at most n points per replica
// per series (oldest dropped first past it). n == 0 disables hints.
func (g *ReplicaGroup) SetHintCap(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n < 0 {
		n = 0
	}
	g.hintCap = n
}

// HintStats reports this group's hinted-handoff counters.
func (g *ReplicaGroup) HintStats() HintStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hstats
}

// mark records one observation of a replica's health.
func (g *ReplicaGroup) mark(r *replicaState, ok bool) {
	g.mu.Lock()
	r.healthy = ok
	g.mu.Unlock()
	v := 0.0
	if ok {
		v = 1
	}
	mReplicaHealthy.With(r.addr).Set(v)
}

// snapshot returns the replicas in configuration order.
func (g *ReplicaGroup) snapshot() []*replicaState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*replicaState(nil), g.replicas...)
}

// ordered returns the replicas in read-failover order: replicas whose
// circuit breaker is open come last (the client has fresh evidence they are
// down or overloaded, and trying them first would spend the failover budget
// on denials), then healthy before unhealthy, preserving configuration order
// within each class.
func (g *ReplicaGroup) ordered() []*replicaState {
	g.mu.Lock()
	out := make([]*replicaState, 0, len(g.replicas))
	out = append(out, g.replicas...)
	class := make(map[*replicaState]int, len(out))
	for _, r := range out {
		c := 0
		if !r.healthy {
			c = 1
		}
		if g.tr.BreakerState(r.addr) == resilience.BreakerOpen {
			c = 2
		}
		class[r] = c
	}
	g.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return class[out[i]] < class[out[j]] })
	return out
}

// Health reports the last observed state of every replica, in
// configuration order.
func (g *ReplicaGroup) Health() []ReplicaHealth {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ReplicaHealth, len(g.replicas))
	for i, r := range g.replicas {
		out[i] = ReplicaHealth{Addr: r.addr, Healthy: r.healthy}
	}
	return out
}

// isBreakerDenial reports whether err is a call the client's circuit
// breaker refused without attempting. A denial carries no new information
// about the replica, so health tracking must ignore it — otherwise an open
// breaker would keep re-confirming the unhealthy mark it caused.
func isBreakerDenial(err error) bool {
	return errors.Is(err, resilience.ErrBreakerOpen)
}

// CheckHealth pings every replica, refreshing the health states it returns.
// A replica that answers gets any parked hints replayed to it.
func (g *ReplicaGroup) CheckHealth(ctx context.Context) []ReplicaHealth {
	for _, r := range g.snapshot() {
		err := g.tr.PingCtx(ctx, r.addr)
		if isBreakerDenial(err) {
			continue
		}
		g.mark(r, err == nil)
		if err == nil {
			g.replayHints(ctx, r.addr)
		}
	}
	return g.Health()
}

// queueHint parks points a replica missed from a quorum-successful write,
// bounded to hintCap points per series with oldest-first eviction.
func (g *ReplicaGroup) queueHint(addr, series string, pts [][2]float64) {
	if len(pts) == 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.hintCap <= 0 {
		return
	}
	bySeries := g.hints[addr]
	if bySeries == nil {
		bySeries = make(map[string][][2]float64)
		g.hints[addr] = bySeries
	}
	q := append(bySeries[series], pts...)
	g.hstats.Queued += uint64(len(pts))
	mHintsQueued.Add(uint64(len(pts)))
	if over := len(q) - g.hintCap; over > 0 {
		q = append([][2]float64(nil), q[over:]...)
		g.hstats.Dropped += uint64(over)
		mHintsDropped.Add(uint64(over))
	}
	bySeries[series] = q
}

// replayHints redelivers everything parked for a replica via backfill
// (idempotent on the receiver, so replaying after an applied-but-unacked
// write is harmless). Series replay in sorted order for deterministic
// fault-harness schedules; delivery failure keeps the remaining hints
// parked for the next recovery observation.
func (g *ReplicaGroup) replayHints(ctx context.Context, addr string) {
	g.mu.Lock()
	bySeries := g.hints[addr]
	if len(bySeries) == 0 {
		g.mu.Unlock()
		return
	}
	keys := make([]string, 0, len(bySeries))
	for k := range bySeries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	g.mu.Unlock()
	for _, series := range keys {
		g.mu.Lock()
		pts := bySeries[series]
		delete(bySeries, series)
		g.mu.Unlock()
		if len(pts) == 0 {
			continue
		}
		if err := g.tr.BackfillCtx(ctx, addr, series, pts); err != nil {
			// Park them again and stop: the replica just stopped answering.
			g.mu.Lock()
			bySeries[series] = append(pts, bySeries[series]...)
			g.mu.Unlock()
			return
		}
		g.mu.Lock()
		g.hstats.Replayed += uint64(len(pts))
		g.mu.Unlock()
		mHintsReplayed.Add(uint64(len(pts)))
	}
	g.mu.Lock()
	if len(g.hints[addr]) == 0 {
		delete(g.hints, addr)
	}
	g.mu.Unlock()
}

// Store fans the points out to every replica and succeeds once the quorum
// acknowledges — a batch of one; see StoreBatch for the semantics.
func (g *ReplicaGroup) Store(ctx context.Context, key string, points [][2]float64) error {
	errs, err := g.StoreBatch(ctx, []BatchStore{{Series: key, Points: points}})
	if len(errs) == 1 && errs[0] != nil {
		return errs[0]
	}
	return err
}

// StoreBatch fans a batch envelope of sub-stores out to every replica in
// configuration order (so failure sequences are deterministic under test
// schedules); each sub-store succeeds once at least Quorum replicas
// acknowledge it. The returned slice has one entry per input — nil when
// that sub-store met its quorum, an error otherwise; the overall error is
// non-nil when any sub-store missed quorum.
//
// Redelivery is safe end to end: the memory server skips points at or
// before each series' stored frontier, so a batch retried after a
// timed-out-but-applied round converges to exactly one copy of each point
// on every replica instead of wedging on "out-of-order append".
func (g *ReplicaGroup) StoreBatch(ctx context.Context, stores []BatchStore) ([]error, error) {
	if len(stores) == 0 {
		return nil, nil
	}
	acks := make([]int, len(stores))
	subErr := make([]error, len(stores))
	var firstErr error
	replicas := g.snapshot()
	acked := make([][]bool, len(replicas))
	for ri, r := range replicas {
		acked[ri] = make([]bool, len(stores))
		errs, err := g.tr.StoreBatchCtx(ctx, r.addr, stores)
		if err != nil {
			if !isBreakerDenial(err) {
				g.mark(r, false)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		clean := true
		for i, e := range errs {
			if e == nil {
				acks[i]++
				acked[ri][i] = true
				continue
			}
			clean = false
			if subErr[i] == nil {
				subErr[i] = e
			}
		}
		g.mark(r, clean)
		if clean {
			g.replayHints(ctx, r.addr)
		}
	}
	out := make([]error, len(stores))
	failed := 0
	for i := range stores {
		if acks[i] >= g.quorum {
			// The write is durable at quorum; the writer's own backlog will
			// forget it. Park hints for every replica that missed it so
			// recovery redelivers instead of leaving an anti-entropy hole.
			for ri, r := range replicas {
				if !acked[ri][i] {
					g.queueHint(r.addr, stores[i].Series, stores[i].Points)
				}
			}
			continue
		}
		failed++
		mReplicaQuorumFailures.Inc()
		cause := subErr[i]
		if cause == nil {
			cause = firstErr
		}
		out[i] = fmt.Errorf("nwsnet: replicated store %q: %d/%d acks, quorum %d: %w",
			stores[i].Series, acks[i], len(replicas), g.quorum, cause)
	}
	if failed > 0 {
		return out, fmt.Errorf("nwsnet: replicated batch store: %d/%d sub-stores missed quorum", failed, len(stores))
	}
	return out, nil
}

// read runs op against replicas in health order until one succeeds.
// Transport failures demote the replica and fail over to the next;
// protocol-level rejections (the replica answered) leave it healthy but
// still fall through, because a diverged replica may simply not hold the
// series yet. Failovers past the preferred replica are counted.
func (g *ReplicaGroup) read(op func(addr string) error) error {
	var firstErr, deniedErr error
	for i, r := range g.ordered() {
		err := op(r.addr)
		if err == nil {
			g.mark(r, true)
			if i > 0 {
				mReplicaFailovers.Inc()
			}
			return nil
		}
		if isBreakerDenial(err) {
			// Not an observation of the replica; keep its health and prefer
			// reporting a real failure from another replica.
			if deniedErr == nil {
				deniedErr = err
			}
			continue
		}
		// A replica that answered with a rejection is alive.
		g.mark(r, isProtocolError(err))
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = deniedErr
	}
	return firstErr
}

// isProtocolError reports whether err came back as a server response
// rather than a transport failure. Protocol errors are marked terminal by
// Client.do, so this is exactly the terminal class.
func isProtocolError(err error) bool {
	return resilience.IsTerminal(err)
}

// Fetch reads a series range with failover (see Client.Fetch for the
// range semantics).
func (g *ReplicaGroup) Fetch(ctx context.Context, key string, from, to float64, max int) ([][2]float64, error) {
	var pts [][2]float64
	err := g.read(func(addr string) error {
		p, e := g.tr.FetchCtx(ctx, addr, key, from, to, max)
		if e == nil {
			pts = p
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// FetchBatch reads several series ranges in one round trip per replica
// attempt, failing over per sub-request: a replica's transport failure
// demotes it and moves every still-pending sub to the next replica, while a
// per-sub rejection (a diverged replica missing one series, say) retries
// just that sub downstream. The returned slice has one entry per input; the
// overall error is non-nil only when no replica answered at all.
func (g *ReplicaGroup) FetchBatch(ctx context.Context, fetches []BatchFetch) ([]FetchResult, error) {
	if len(fetches) == 0 {
		return nil, nil
	}
	out := make([]FetchResult, len(fetches))
	pending := make([]int, len(fetches))
	for i := range pending {
		pending[i] = i
	}
	answered := false
	var firstErr error
	for ri, r := range g.ordered() {
		subset := make([]BatchFetch, len(pending))
		for j, i := range pending {
			subset[j] = fetches[i]
		}
		results, err := g.tr.FetchBatchCtx(ctx, r.addr, subset)
		if err != nil {
			if !isBreakerDenial(err) {
				g.mark(r, isProtocolError(err))
				if firstErr == nil {
					firstErr = err
				}
			} else if firstErr == nil {
				firstErr = err
			}
			continue
		}
		g.mark(r, true)
		if !answered && ri > 0 {
			mReplicaFailovers.Inc()
		}
		answered = true
		var still []int
		for j, res := range results {
			i := pending[j]
			if res.Err != nil {
				if out[i].Err == nil {
					out[i].Err = res.Err
				}
				still = append(still, i)
				continue
			}
			out[i] = res
		}
		pending = still
		if len(pending) == 0 {
			break
		}
	}
	if !answered {
		return nil, firstErr
	}
	return out, nil
}

// Series lists stored series keys with failover.
func (g *ReplicaGroup) Series(ctx context.Context) ([]string, error) {
	var names []string
	err := g.read(func(addr string) error {
		n, e := g.tr.SeriesCtx(ctx, addr)
		if e == nil {
			names = n
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	return names, nil
}

// Close releases the group's pooled connections; a no-op for groups built
// over a bare Transport (the transport's owner manages its lifetime).
func (g *ReplicaGroup) Close() error {
	if g.client == nil {
		return nil
	}
	return g.client.Close()
}
