package nwsnet

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"nwscpu/internal/nwsnet/cluster"
	"nwscpu/internal/resilience"
)

// handoffChunk bounds how many series one handoff batch round trip carries.
const handoffChunk = 64

// ClusterAgent runs a shard server's membership lifecycle against the
// cluster registry:
//
//  1. Join in the joining state — takes a lease without entering the ring.
//  2. Sync — pull the history of every series this node will own from the
//     current owners (batched fetches, merged in behind the write frontier
//     by Memory.Backfill), while writes keep flowing to the old owners.
//  3. Activate — re-join in the active state, which bumps the view epoch
//     and atomically moves the node's key ranges to it.
//  4. Sync again — catch the writes that landed on the old owners between
//     the first sync and the activation redirect reaching clients.
//
// After that a renewal loop heartbeats the lease. A renewal answer carrying
// a view means the epoch moved (some member activated or a lease expired):
// the agent adopts it and re-syncs, which is exactly the death-takeover
// path — when an owner dies, its ranges fall to the ring successors, and
// the successors' re-sync pulls the history from the surviving replicas. A
// terminal "unknown member" renewal means the lease already lapsed (or the
// registry restarted); the agent re-runs the join lifecycle from scratch.
type ClusterAgent struct {
	client *Client
	nsAddr string
	node   *ClusterNode
	self   cluster.Member
	logger *log.Logger

	mu        sync.Mutex
	epoch     uint64
	viewHooks []func(*cluster.View)
	stopCh    chan struct{}
	doneCh    chan struct{}
}

// NewClusterAgent builds the lifecycle agent for the node guarding member
// self (self.State is overwritten by the lifecycle), registering with the
// registry at nsAddr through client (nil selects a default client). node
// may be nil for members that hold no partitioned store (forecaster
// shards): they run the same lease lifecycle but skip the handoff sync.
func NewClusterAgent(client *Client, nsAddr string, self cluster.Member, node *ClusterNode) *ClusterAgent {
	if client == nil {
		client = NewClient(0)
	}
	return &ClusterAgent{client: client, nsAddr: nsAddr, node: node, self: self}
}

// SetLogger directs the agent's lifecycle diagnostics to l (nil silences
// them, the default).
func (a *ClusterAgent) SetLogger(l *log.Logger) { a.logger = l }

func (a *ClusterAgent) logf(format string, args ...any) {
	if a.logger != nil {
		a.logger.Printf("nwsnet: cluster %s: "+format, append([]any{a.self.ID}, args...)...)
	}
}

// Epoch returns the view epoch the agent last adopted.
func (a *ClusterAgent) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// OnView registers fn to run after every view the agent adopts (join,
// renew, rebalance). Hooks run outside the agent's lock, in registration
// order, on the lifecycle goroutine; members with no partitioned store use
// this to react to ownership moves (e.g. a forecaster handing off
// subscriptions). Register before Start.
func (a *ClusterAgent) OnView(fn func(*cluster.View)) {
	if fn == nil {
		return
	}
	a.mu.Lock()
	a.viewHooks = append(a.viewHooks, fn)
	a.mu.Unlock()
}

// adopt installs a view into the node's guard and the agent's epoch, then
// runs the registered view hooks.
func (a *ClusterAgent) adopt(v *cluster.View) {
	if v == nil {
		return
	}
	if a.node != nil {
		a.node.AdoptView(*v)
	}
	a.mu.Lock()
	if v.Epoch > a.epoch {
		a.epoch = v.Epoch
	}
	hooks := a.viewHooks
	a.mu.Unlock()
	for _, fn := range hooks {
		fn(v)
	}
}

// Join runs the two-phase join: lease in the joining state, sync the
// history this node will own, activate (epoch bump), and sync once more to
// drain the activation window.
func (a *ClusterAgent) Join(ctx context.Context) error {
	m := a.self
	m.State = cluster.StateJoining
	v, err := a.client.JoinClusterCtx(ctx, a.nsAddr, m)
	if err != nil {
		return fmt.Errorf("nwsnet: cluster join %s: %w", a.self.ID, err)
	}
	a.adopt(&v)
	a.logf("joined (epoch %d, %d members); syncing owned history", v.Epoch, len(v.Members))
	if err := a.sync(ctx, v); err != nil {
		a.logf("pre-activation sync incomplete: %v", err)
	}
	m.State = cluster.StateActive
	av, err := a.client.JoinClusterCtx(ctx, a.nsAddr, m)
	if err != nil {
		return fmt.Errorf("nwsnet: cluster activate %s: %w", a.self.ID, err)
	}
	a.adopt(&av)
	a.logf("active (epoch %d); draining activation window", av.Epoch)
	if err := a.sync(ctx, av); err != nil {
		a.logf("post-activation sync incomplete: %v", err)
	}
	return nil
}

// Renew heartbeats the lease once. It reports whether the member must
// re-join (the registry no longer knows it) and any transport error; on an
// epoch change it adopts the new view and re-syncs.
func (a *ClusterAgent) Renew(ctx context.Context) (rejoin bool, err error) {
	v, err := a.client.RenewLeaseCtx(ctx, a.nsAddr, a.self.ID, a.Epoch())
	if err != nil {
		if resilience.IsTerminal(err) && !IsBusy(err) {
			// The registry answered and does not know us: the lease lapsed
			// or the registry restarted. Only a fresh join can recover.
			return true, err
		}
		return false, err
	}
	if v == nil {
		return false, nil // epoch unchanged, lease refreshed
	}
	a.adopt(v)
	a.logf("epoch moved to %d; re-syncing owned ranges", v.Epoch)
	if err := a.sync(ctx, *v); err != nil {
		a.logf("takeover sync incomplete: %v", err)
	}
	return false, nil
}

// sync pulls the history of every series this node owns (or will own once
// active) from the other members that hold it, backfilling the local memory
// behind the live write frontier. Peers that are down are skipped — with
// replicated ownership the surviving replica of each range serves the
// history, which is what makes the death-takeover path converge.
func (a *ClusterAgent) sync(ctx context.Context, v cluster.View) error {
	if a.node == nil || a.self.Kind != string(KindMemory) {
		return nil
	}
	target := a.projectActive(v)
	ring := target.Ring(string(KindMemory))
	if ring == nil {
		return nil
	}
	rf := target.Config.Normalize().Replication
	var firstErr error
	points, bytes := 0, 0
	for _, peer := range v.Members {
		if peer.ID == a.self.ID || peer.Kind != string(KindMemory) || len(peer.Endpoints()) == 0 {
			continue
		}
		addr := peer.Endpoints()[0]
		names, err := a.client.SeriesCtx(ctx, addr)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("nwsnet: sync from %s: %w", peer.ID, err)
			}
			continue
		}
		var owned []string
		for _, key := range names {
			for _, id := range ring.Owners(key, rf) {
				if id == a.self.ID {
					owned = append(owned, key)
					break
				}
			}
		}
		for lo := 0; lo < len(owned); lo += handoffChunk {
			hi := lo + handoffChunk
			if hi > len(owned) {
				hi = len(owned)
			}
			fetches := make([]BatchFetch, hi-lo)
			for j, key := range owned[lo:hi] {
				fetches[j] = BatchFetch{Series: key}
			}
			results, err := a.client.FetchBatchCtx(ctx, addr, fetches)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("nwsnet: sync from %s: %w", peer.ID, err)
				}
				break
			}
			for j, res := range results {
				if res.Err != nil || len(res.Points) == 0 {
					continue
				}
				added := a.node.Memory().Backfill(owned[lo+j], res.Points)
				points += added
				bytes += added * 16 // one wire point is two packed float64s
			}
		}
	}
	if points > 0 {
		mClusterHandoffPoints.Add(uint64(points))
		mClusterHandoffBytes.Add(uint64(bytes))
		a.logf("handoff backfilled %d points", points)
	}
	return firstErr
}

// projectActive returns v with this agent's member forced active, so the
// pre-activation sync computes the ownership the activation is about to
// create.
func (a *ClusterAgent) projectActive(v cluster.View) cluster.View {
	out := v.Clone()
	for i := range out.Members {
		if out.Members[i].ID == a.self.ID {
			out.Members[i].State = cluster.StateActive
			return out
		}
	}
	m := a.self
	m.State = cluster.StateActive
	out.Members = append(out.Members, m)
	return out
}

// Start joins the cluster and launches the background renewal loop,
// heartbeating every interval (a third of the registry TTL is the
// conventional choice). Errors are delivered on the returned channel
// (buffered; the loop keeps running — and re-joins — after errors). Stop
// terminates the loop.
func (a *ClusterAgent) Start(ctx context.Context, interval time.Duration) (<-chan error, error) {
	if interval <= 0 {
		interval = time.Second
	}
	errs := make(chan error, 16)
	if err := a.Join(ctx); err != nil {
		return nil, err
	}
	a.mu.Lock()
	if a.stopCh != nil {
		a.mu.Unlock()
		return nil, fmt.Errorf("nwsnet: cluster agent %s already started", a.self.ID)
	}
	a.stopCh = make(chan struct{})
	a.doneCh = make(chan struct{})
	stop, done := a.stopCh, a.doneCh
	a.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				rejoin, err := a.Renew(ctx)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
				}
				if rejoin {
					a.logf("lease lost; re-joining")
					if err := a.Join(ctx); err != nil {
						select {
						case errs <- err:
						default:
						}
					}
				}
			}
		}
	}()
	return errs, nil
}

// Stop terminates a Start loop and waits for it to exit. Safe without a
// prior Start.
func (a *ClusterAgent) Stop() {
	a.mu.Lock()
	stop, done := a.stopCh, a.doneCh
	a.stopCh, a.doneCh = nil, nil
	a.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Close releases the agent's pooled connections.
func (a *ClusterAgent) Close() error { return a.client.Close() }
