package nwsnet

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"math"
	"reflect"
	"strings"
	"testing"

	"nwscpu/internal/nwsnet/cluster"
)

// mustHex decodes a spaced hex dump ("01 05 ...") into bytes.
func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.ReplaceAll(strings.Join(strings.Fields(s), ""), "\n", ""))
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// Golden payloads: the worked examples of docs/PROTOCOL.md, byte for byte.
// If an encoder change breaks these, the spec must be updated in the same
// commit (TestProtocolDocHexExamples checks the doc side).
const (
	goldenStoreReqHex    = "01 05 05 61 2f 63 70 75 02 c0 b2 01 bf c0 03 80 84 80 04 00"
	goldenFetchReqHex    = "02 06 05 61 2f 63 70 75 00 00 02"
	goldenStoreRespHex   = "01 01"
	goldenFetchRespHex   = "02 09 02 c0 b2 01 bf c0 03 80 84 80 04 00"
	goldenDigestReqHex   = "03 10 05 61 2f 63 70 75"
	goldenDigestRespHex  = "03 81 04 01 05 61 2f 63 70 75 02 c0 b6 81 04 e3 9b ff f0 f9 d9 86 d6 ee 01"
	goldenBackfillReqHex = "04 11 05 61 2f 63 70 75 02 c0 b2 01 bf c0 03 80 84 80 04 00"
)

var (
	goldenStoreReq    = Request{Op: OpStore, Series: "a/cpu", Points: [][2]float64{{100, 0.5}, {110, 0.5}}}
	goldenFetchReq    = Request{Op: OpFetch, Series: "a/cpu", Max: 2}
	goldenStoreResp   = Response{OK: true}
	goldenFetchResp   = Response{OK: true, Points: [][2]float64{{100, 0.5}, {110, 0.5}}}
	goldenDigestReq   = Request{Op: OpDigest, Series: "a/cpu"}
	goldenBackfillReq = Request{Op: OpBackfill, Series: "a/cpu", Points: goldenStoreReq.Points}

	// The digest response is computed by the live digest algorithm over the
	// golden store's points, so a checksum change breaks the golden hex (and
	// with it the spec's worked example) rather than drifting silently.
	goldenDigestResp = func() Response {
		m := NewMemory(16)
		m.Handle(goldenStoreReq)
		return Response{OK: true, Digests: m.Digests(goldenStoreReq.Series)}
	}()
)

func TestBinaryGoldenEncodings(t *testing.T) {
	cases := []struct {
		name string
		hex  string
		enc  func() ([]byte, error)
	}{
		{"store request", goldenStoreReqHex, func() ([]byte, error) { return encodeRequestPayload(nil, 1, goldenStoreReq) }},
		{"fetch request", goldenFetchReqHex, func() ([]byte, error) { return encodeRequestPayload(nil, 2, goldenFetchReq) }},
		{"store response", goldenStoreRespHex, func() ([]byte, error) { return encodeResponsePayload(nil, 1, goldenStoreResp) }},
		{"fetch response", goldenFetchRespHex, func() ([]byte, error) { return encodeResponsePayload(nil, 2, goldenFetchResp) }},
		{"digest request", goldenDigestReqHex, func() ([]byte, error) { return encodeRequestPayload(nil, 3, goldenDigestReq) }},
		{"digest response", goldenDigestRespHex, func() ([]byte, error) { return encodeResponsePayload(nil, 3, goldenDigestResp) }},
		{"backfill request", goldenBackfillReqHex, func() ([]byte, error) { return encodeRequestPayload(nil, 4, goldenBackfillReq) }},
	}
	for _, c := range cases {
		got, err := c.enc()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if want := mustHex(t, c.hex); !bytes.Equal(got, want) {
			t.Errorf("%s:\n got % x\nwant % x", c.name, got, want)
		}
	}
}

// TestBinaryRequestRoundTrip round-trips every op through encode/decode.
func TestBinaryRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpPing},
		{Op: OpRegister, Reg: Registration{Name: "h/cpu", Kind: KindSensor, Addr: "a:1", Addrs: []string{"a:1", "b:2"}}},
		{Op: OpLookup, Reg: Registration{Name: "h/cpu"}},
		{Op: OpList, Reg: Registration{Kind: KindMemory}},
		{Op: OpList},
		{Op: OpStore, Series: "k", Points: [][2]float64{{1, 0.5}, {2, -0.5}, {2, -0.5}, {math.Inf(1), 1e-300}}},
		{Op: OpStore, Series: ""},
		{Op: OpFetch, Series: "k", From: -3.5, To: 1e308, Max: 10},
		{Op: OpSeries},
		{Op: OpForecast, Series: "k"},
		{Op: OpBatch, Batch: []Request{
			{Op: OpStore, Series: "a", Points: [][2]float64{{1, 1}}},
			{Op: OpFetch, Series: "a", From: 1, To: 2, Max: 3},
			{Op: OpPing},
		}},
		{Op: OpBatch},
		{Op: OpJoin, Member: &cluster.Member{ID: "mem-a", Kind: "memory", Addr: "a:1",
			Addrs: []string{"a:1", "a:2"}, State: cluster.StateJoining}},
		{Op: OpJoin, Member: &cluster.Member{ID: "mem-a", Kind: "memory", Addr: "a:1", State: cluster.StateActive},
			Epoch: 7},
		{Op: OpLease, Member: &cluster.Member{ID: "mem-a"}, Epoch: 12},
		{Op: OpView},
		{Op: OpView, Epoch: 1 << 40},
		{Op: OpDigest},
		{Op: OpDigest, Series: "k"},
		{Op: OpBackfill, Series: "k", Points: [][2]float64{{1, 0.5}, {2, 0.6}}},
		{Op: OpBackfill, Series: "k"},
	}
	for i, req := range reqs {
		b, err := encodeRequestPayload(nil, uint64(i)+100, req)
		if err != nil {
			t.Fatalf("req %d: encode: %v", i, err)
		}
		id, got, err := decodeRequestPayload(b)
		if err != nil {
			t.Fatalf("req %d: decode: %v", i, err)
		}
		if id != uint64(i)+100 {
			t.Fatalf("req %d: id %d, want %d", i, id, uint64(i)+100)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("req %d: round trip\n got %+v\nwant %+v", i, got, req)
		}
	}
}

// TestBinaryResponseRoundTrip round-trips every response shape.
func TestBinaryResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{OK: true},
		{Error: "no such series"},
		{Error: "busy busy", Code: CodeBusy},
		{OK: true, Points: [][2]float64{{1, 0.5}, {1, 0.5}, {-2, math.NaN()}}},
		{OK: true, Names: []string{"a", "", "c"}},
		{OK: true, Entries: []Registration{
			{Name: "h", Kind: KindSensor, Addr: "a:1"},
			{Name: "m", Kind: KindMemory, Addr: "a:1", Addrs: []string{"a:1", "b:2"}},
		}},
		{OK: true, Forecast: &ForecastResult{Value: 0.42, Method: "sw_avg", MAE: 0.01, N: 64}},
		{OK: true, Forecast: &ForecastResult{}},
		{OK: true, Batch: []Response{{Error: "x", Code: CodeBusy}, {OK: true, Points: [][2]float64{{1, 2}}}}},
		{OK: true, View: &cluster.View{Epoch: 3,
			Config: cluster.Config{Replication: 2, VNodes: 64, Seed: 9},
			Members: []cluster.Member{
				{ID: "mem-a", Kind: "memory", Addr: "a:1", State: cluster.StateActive},
				{ID: "mem-b", Kind: "memory", Addr: "b:1", Addrs: []string{"b:1", "b:2"}, State: cluster.StateJoining},
			}}},
		{OK: true, View: &cluster.View{}},
		{Error: `store "k": not an owner under epoch 4`, Code: CodeMoved,
			View: &cluster.View{Epoch: 4, Members: []cluster.Member{{ID: "m", Kind: "memory", Addr: "a:1", State: cluster.StateActive}}}},
		{OK: true, Digests: []SeriesDigest{{Series: "k", Count: 2, Frontier: 2, Sum: 123456789}}},
		{OK: true, Digests: []SeriesDigest{
			{Series: "a"},
			{Series: "b", Count: 1<<64 - 1, Frontier: -1e308, Sum: 1<<64 - 1},
		}},
	}
	for i, resp := range resps {
		b, err := encodeResponsePayload(nil, uint64(i)+1, resp)
		if err != nil {
			t.Fatalf("resp %d: encode: %v", i, err)
		}
		id, got, err := decodeResponsePayload(b)
		if err != nil {
			t.Fatalf("resp %d: decode: %v", i, err)
		}
		if id != uint64(i)+1 {
			t.Fatalf("resp %d: id %d", i, id)
		}
		// NaN breaks DeepEqual; compare via a second encoding instead.
		b2, err := encodeResponsePayload(nil, uint64(i)+1, got)
		if err != nil || !bytes.Equal(b, b2) {
			t.Errorf("resp %d: round trip not byte-stable (%v)\n first % x\nsecond % x", i, err, b, b2)
		}
	}
}

// TestBinaryPointPackingIsCompact checks the XOR-chain actually compresses:
// a flat series (the common case for availability near 1.0) must cost a few
// bytes per point, not sixteen.
func TestBinaryPointPackingIsCompact(t *testing.T) {
	pts := make([][2]float64, 100)
	for i := range pts {
		pts[i] = [2]float64{float64(10 * i), 0.97}
	}
	b, err := encodeRequestPayload(nil, 1, Request{Op: OpStore, Series: "h/cpu/nws_hybrid", Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	// 100 points raw = 1600 bytes; the value stream repeats (1 byte after
	// the first) and timestamps differ in few bits. Allow generous slack.
	if len(b) > 800 {
		t.Errorf("flat series of 100 points encoded to %d bytes; want well under 800", len(b))
	}
}

// TestBinaryDecodeRejectsMalformed checks the decoder fails cleanly (no
// panic, error returned) on the malformed-frame classes the spec calls out.
func TestBinaryDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":                     {},
		"id only":                   {0x01},
		"unknown opcode":            {0x01, 0xAB},
		"truncated varint":          {0x01, 0x05, 0xFF},
		"store count past payload":  mustHex(t, "01 05 01 6b ff ff ff 7f"),
		"trailing garbage":          append(mustHex(t, goldenStoreReqHex), 0xEE),
		"batch nesting past cap":    mustHex(t, "01 08 01 08 01 08 01 08 01 08 01 01"),
		"fetch missing max":         mustHex(t, "02 06 05 61 2f 63 70 75 00 00"),
		"register truncated addrs":  mustHex(t, "01 02 01 68 00 00 05"),
		"string length past buffer": mustHex(t, "01 03 7f 61"),
	}
	for name, payload := range cases {
		if _, _, err := decodeRequestPayload(payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	respCases := map[string][]byte{
		"empty":                  {},
		"error flag no string":   {0x01, 0x02},
		"error flag empty":       {0x01, 0x02, 0x00},
		"code flag empty":        {0x01, 0x04, 0x00},
		"points flag zero count": {0x01, 0x08, 0x00},
		"names flag zero count":  {0x01, 0x10, 0x00},
		// 0x80 0x01 is uvarint 128 = the batch flag bit; zero sub-count after
		// it is the malformed case (a bare 0x80 is now a truncated uvarint).
		"batch flag zero count": {0x01, 0x80, 0x01, 0x00},
		"batch flag truncated":  {0x01, 0x80},
		// 0x80 0x08 is uvarint 1024 = 1 << 10, the lowest unassigned flag bit.
		"unknown flag bit":         {0x01, 0x80, 0x08},
		"view flag no body":        {0x01, 0x80, 0x02},
		"digests flag zero count":  {0x01, 0x80, 0x04, 0x00},
		"digests flag no body":     {0x01, 0x80, 0x04},
		"digests count past frame": {0x01, 0x80, 0x04, 0x7f, 0x01, 0x6b},
		"trailing garbage":         append(mustHex(t, goldenStoreRespHex), 0x00),
	}
	for name, payload := range respCases {
		if _, _, err := decodeResponsePayload(payload); err == nil {
			t.Errorf("response %s: decoded without error", name)
		}
	}
}

// TestFrameRoundTrip exercises the length-prefixed framing, including the
// oversize rejection both ways.
func TestFrameRoundTrip(t *testing.T) {
	var netBuf bytes.Buffer
	w := bufio.NewWriter(&netBuf)
	payloads := [][]byte{{0x01}, bytes.Repeat([]byte{0xAB}, 100000), {0x02, 0x03}}
	for _, p := range payloads {
		if err := writeFrame(w, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&netBuf)
	var buf []byte
	for i, want := range payloads {
		got, n, err := readFrame(r, &buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != len(want)+4 {
			t.Fatalf("frame %d: consumed %d bytes, want %d", i, n, len(want)+4)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if err := writeFrame(bufio.NewWriter(&netBuf), make([]byte, maxFrameBytes+1)); err == nil {
		t.Error("oversize frame written without error")
	}
	// A forged oversize header must be rejected before allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr)), &buf); err == nil {
		t.Error("oversize header accepted")
	}
	// A zero-length frame is invalid.
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader([]byte{0, 0, 0, 0})), &buf); err == nil {
		t.Error("zero-length frame accepted")
	}
}

// TestWireOpsCoverAllOps pins the opcode registry to the protocol Op set:
// adding an Op without a binary opcode (or vice versa) must not compile
// silently into a codec that cannot carry it.
func TestWireOpsCoverAllOps(t *testing.T) {
	all := []Op{OpPing, OpRegister, OpLookup, OpList, OpStore, OpFetch, OpSeries, OpBatch, OpForecast,
		OpJoin, OpLease, OpView, OpSubscribe, OpUnsubscribe, OpHello, OpDigest, OpBackfill}
	if len(wireOps) != len(all) {
		t.Errorf("wireOps has %d entries, protocol has %d ops", len(wireOps), len(all))
	}
	seen := map[byte]Op{}
	for _, op := range all {
		code, ok := wireOps[op]
		if !ok {
			t.Errorf("op %q has no binary opcode", op)
			continue
		}
		if prev, dup := seen[code]; dup {
			t.Errorf("opcode 0x%02x assigned to both %q and %q", code, prev, op)
		}
		seen[code] = op
	}
}
