package nwsnet

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// These tests keep docs/PROTOCOL.md — the normative wire spec — mechanically
// in sync with the codec. `make docs-check` runs them; a codec change that
// breaks them must update the spec in the same commit.

func protocolDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("reading spec: %v", err)
	}
	return string(b)
}

// TestProtocolDocOpTables compares the spec's opcode table rows — lines of
// the form "| `store` | `0x05` | ..." — against the wireOps registry, both
// directions: every registered op must be documented with its exact opcode,
// and the spec must not document an op the wire does not register.
func TestProtocolDocOpTables(t *testing.T) {
	doc := protocolDoc(t)
	rowRe := regexp.MustCompile("(?m)^\\|\\s*`([a-z]+)`\\s*\\|\\s*`0x([0-9a-fA-F]{2})`\\s*\\|")
	documented := map[Op]byte{}
	for _, m := range rowRe.FindAllStringSubmatch(doc, -1) {
		var code byte
		if _, err := fmt.Sscanf(m[2], "%02x", &code); err != nil {
			t.Fatalf("row %q: bad opcode: %v", m[0], err)
		}
		if prev, dup := documented[Op(m[1])]; dup && prev != code {
			t.Errorf("spec documents op %q twice with different opcodes (0x%02x, 0x%02x)", m[1], prev, code)
		}
		documented[Op(m[1])] = code
	}
	if len(documented) == 0 {
		t.Fatal("no opcode table rows found in docs/PROTOCOL.md — format drift?")
	}
	for op, code := range wireOps {
		doced, ok := documented[op]
		if !ok {
			t.Errorf("op %q (0x%02x) is registered on the wire but missing from the spec's opcode table", op, code)
			continue
		}
		if doced != code {
			t.Errorf("op %q: spec says 0x%02x, wire says 0x%02x", op, doced, code)
		}
	}
	for op := range documented {
		if _, ok := wireOps[op]; !ok {
			t.Errorf("spec's opcode table documents op %q, which the wire does not register", op)
		}
	}
}

// docBlock extracts the fenced code block following the given HTML marker
// comment, e.g. <!-- wire-example: store-request-v2 -->.
func docBlock(t *testing.T, doc, kind, name string) string {
	t.Helper()
	marker := fmt.Sprintf("<!-- %s: %s -->", kind, name)
	i := strings.Index(doc, marker)
	if i < 0 {
		t.Fatalf("marker %q not found in docs/PROTOCOL.md", marker)
	}
	rest := doc[i+len(marker):]
	open := strings.Index(rest, "```")
	if open < 0 {
		t.Fatalf("marker %q: no code fence follows", marker)
	}
	rest = rest[open+3:]
	if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
		rest = rest[nl+1:] // drop the fence's language tag line
	}
	close := strings.Index(rest, "```")
	if close < 0 {
		t.Fatalf("marker %q: unterminated code fence", marker)
	}
	return rest[:close]
}

// docHex parses an annotated hex block: per line, everything after '#' is a
// comment; the rest is whitespace-separated hex bytes.
func docHex(t *testing.T, block string) []byte {
	t.Helper()
	var sb strings.Builder
	for _, line := range strings.Split(block, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(strings.Join(strings.Fields(line), ""))
	}
	b, err := hex.DecodeString(sb.String())
	if err != nil {
		t.Fatalf("bad hex in spec block: %v\n%s", err, block)
	}
	return b
}

// TestProtocolDocHexExamples re-encodes the worked examples of the spec from
// the same values and compares byte-for-byte, v2 binary and v1 JSON both.
func TestProtocolDocHexExamples(t *testing.T) {
	doc := protocolDoc(t)

	binCases := []struct {
		name string
		enc  func() ([]byte, error)
	}{
		{"store-request-v2", func() ([]byte, error) { return encodeRequestPayload(nil, 1, goldenStoreReq) }},
		{"fetch-request-v2", func() ([]byte, error) { return encodeRequestPayload(nil, 2, goldenFetchReq) }},
		{"store-response-v2", func() ([]byte, error) { return encodeResponsePayload(nil, 1, goldenStoreResp) }},
		{"fetch-response-v2", func() ([]byte, error) { return encodeResponsePayload(nil, 2, goldenFetchResp) }},
		{"digest-request-v2", func() ([]byte, error) { return encodeRequestPayload(nil, 3, goldenDigestReq) }},
		{"digest-response-v2", func() ([]byte, error) { return encodeResponsePayload(nil, 3, goldenDigestResp) }},
		{"backfill-request-v2", func() ([]byte, error) { return encodeRequestPayload(nil, 4, goldenBackfillReq) }},
	}
	for _, c := range binCases {
		want, err := c.enc()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := docHex(t, docBlock(t, doc, "wire-example", c.name)); !bytes.Equal(got, want) {
			t.Errorf("%s: spec bytes differ from encoder\nspec    % x\nencoder % x", c.name, got, want)
		}
	}

	jsonCases := []struct {
		name string
		v    any
	}{
		{"store-request-v1", goldenStoreReq},
		{"fetch-request-v1", goldenFetchReq},
		{"store-response-v1", goldenStoreResp},
		{"fetch-response-v1", goldenFetchResp},
		{"digest-request-v1", goldenDigestReq},
		{"digest-response-v1", goldenDigestResp},
		{"backfill-request-v1", goldenBackfillReq},
	}
	for _, c := range jsonCases {
		want, err := json.Marshal(c.v)
		if err != nil {
			t.Fatal(err)
		}
		got := strings.TrimSpace(docBlock(t, doc, "wire-json", c.name))
		if got != string(want) {
			t.Errorf("%s: spec line differs from encoder\nspec    %s\nencoder %s", c.name, got, want)
		}
	}

	// The preamble shown in §1 must match the real one.
	if got := docHex(t, docBlock(t, doc, "wire-example", "preamble")); !bytes.Equal(got, wirePreamble[:]) {
		t.Errorf("preamble: spec % x, wire % x", got, wirePreamble[:])
	}
}
