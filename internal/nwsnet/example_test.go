package nwsnet_test

import (
	"fmt"

	"nwscpu/internal/nwsnet"
)

// A minimal in-process NWS: memory plus forecaster, one series, one query.
func Example() {
	memSrv := nwsnet.NewServer(nwsnet.NewMemory(0), nil)
	memAddr, err := memSrv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer memSrv.Close()

	fcSrv := nwsnet.NewServer(nwsnet.NewForecasterService(memAddr, 0), nil)
	fcAddr, err := fcSrv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer fcSrv.Close()

	c := nwsnet.NewClient(0)
	points := [][2]float64{{0, 0.9}, {10, 0.9}, {20, 0.9}}
	if err := c.Store(memAddr, "box/cpu/nws_hybrid", points); err != nil {
		fmt.Println(err)
		return
	}
	fc, err := c.Forecast(fcAddr, "box/cpu/nws_hybrid")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("next availability: %.0f%%\n", fc.Value*100)
	// Output: next availability: 90%
}
