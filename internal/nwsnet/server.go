package nwsnet

import (
	"bufio"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"time"
)

// Handler processes one protocol request.
type Handler interface {
	Handle(req Request) Response
}

// Server accepts JSON-line connections and dispatches them to a Handler.
// A connection may carry any number of request/response exchanges.
type Server struct {
	handler Handler
	logger  *log.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps handler. logger may be nil to disable logging.
func NewServer(handler Handler, logger *log.Logger) *Server {
	return &Server{
		handler: handler,
		logger:  logger,
		conns:   make(map[net.Conn]struct{}),
	}
}

// Listen binds addr ("host:port"; ":0" for an ephemeral port) and starts
// serving in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return "", errors.New("nwsnet: server already closed")
	}
	s.listener = l
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	mServerConnsTotal.Inc()
	mServerConnsActive.Inc()
	defer func() {
		mServerConnsActive.Dec()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	reader := bufio.NewReaderSize(conn, 64<<10)
	writer := bufio.NewWriter(conn)
	for {
		var req Request
		if err := readMsg(reader, &req); err != nil {
			if err != io.EOF && s.logger != nil && !s.isClosed() {
				s.logger.Printf("nwsnet: read: %v", err)
			}
			return
		}
		mServerRequests.With(opLabel(req.Op)).Inc()
		resp := s.handler.Handle(req)
		resp.OK = resp.Error == ""
		if err := writeMsg(writer, resp); err != nil {
			if s.logger != nil {
				s.logger.Printf("nwsnet: write: %v", err)
			}
			return
		}
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops the listener and drains live connections: requests already
// in flight run to completion and their responses are written before the
// connections close — only the idle wait for the next request is cut
// short (by an expired read deadline). Close blocks until every serving
// goroutine has exited. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	past := time.Now().Add(-time.Second)
	for c := range s.conns {
		// Expiring the read deadline unblocks connections parked between
		// requests; a handler mid-request still writes its response (writes
		// are unaffected), then its serve loop observes the dead read and
		// exits, closing the connection.
		c.SetReadDeadline(past)
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}
