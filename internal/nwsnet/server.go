package nwsnet

import (
	"bufio"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handler processes one protocol request.
type Handler interface {
	Handle(req Request) Response
}

// Shed reasons, the label values of nws_server_shed_total.
const (
	shedConns  = "connections" // accepted past MaxConns
	shedQueue  = "queue"       // no in-flight slot within QueueWait
	shedIdle   = "idle"        // connection silent past IdleTimeout
	shedWrite  = "write"       // response write blocked past WriteTimeout
	shedTenant = "tenant"      // request over its tenant's token-bucket quota
)

// ServerLimits bounds what a Server will take on before it starts shedding
// load. The zero value imposes no limits — exactly the pre-limits behavior.
// Shedding is always explicit on the wire: a shed request or connection is
// answered with a response carrying CodeBusy, which clients classify as
// retryable ("overloaded, back off"), never silently dropped. Every shed is
// counted in nws_server_shed_total by reason; see docs/ARCHITECTURE.md,
// "Overload behavior".
type ServerLimits struct {
	// MaxConns caps concurrent connections. A connection accepted past the
	// cap is immediately answered with a busy response and closed (reason
	// "connections"). 0 = unlimited.
	MaxConns int
	// MaxInFlight caps requests executing in handlers at once. A request
	// that cannot get a slot within QueueWait is answered with a busy
	// response on its own connection (reason "queue"); the connection
	// stays open for retries. 0 = unlimited.
	MaxInFlight int
	// QueueWait bounds how long a request may wait for an in-flight slot
	// before being shed — the knee between queueing and collapsing. Only
	// meaningful with MaxInFlight > 0 (then 0 selects 100 ms). Shedding
	// answers within this budget instead of letting the client time out.
	QueueWait time.Duration
	// IdleTimeout disconnects a connection that sends no request for this
	// long (reason "idle") — the defense against clients that connect and
	// never send, which would otherwise pin a goroutine forever. 0 = no
	// idle deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response (reason "write") — the
	// defense against stalled readers that stop draining their socket
	// while the server blocks mid-write. 0 = no write deadline.
	WriteTimeout time.Duration
	// TenantRate enables per-tenant token-bucket quotas: each tenant (the
	// ID negotiated by OpHello; connections that never send one share the
	// anonymous "" tenant) may issue this many requests per second
	// sustained. A request over quota is answered with the retryable busy
	// code (reason "tenant") and counted in nws_tenant_throttled_total, so
	// one hot tenant backs off instead of starving the rest. 0 = no
	// quotas.
	TenantRate float64
	// TenantBurst is each tenant bucket's capacity — how far a tenant may
	// burst above the sustained rate. 0 selects max(1, TenantRate).
	TenantBurst int
}

// Server accepts JSON-line connections and dispatches them to a Handler.
// A connection may carry any number of request/response exchanges.
type Server struct {
	handler  Handler
	logger   *log.Logger
	limits   ServerLimits
	inflight chan struct{} // in-flight request slots; nil when unlimited

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	// Tenant quota state, under its own lock so the per-request quota
	// check never contends with connection bookkeeping.
	tenantMu       sync.Mutex
	tenants        map[string]*tokenBucket
	tenantOverflow *tokenBucket
}

// NewServer wraps handler with no limits. logger may be nil to disable
// logging.
func NewServer(handler Handler, logger *log.Logger) *Server {
	return NewServerLimits(handler, logger, ServerLimits{})
}

// NewServerLimits wraps handler with overload protection per limits.
func NewServerLimits(handler Handler, logger *log.Logger, limits ServerLimits) *Server {
	if limits.MaxInFlight > 0 && limits.QueueWait <= 0 {
		limits.QueueWait = 100 * time.Millisecond
	}
	s := &Server{
		handler: handler,
		logger:  logger,
		limits:  limits,
		conns:   make(map[net.Conn]struct{}),
	}
	if limits.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, limits.MaxInFlight)
	}
	return s
}

// Listen binds addr ("host:port"; ":0" for an ephemeral port) and starts
// serving in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return "", errors.New("nwsnet: server already closed")
	}
	s.listener = l
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.limits.MaxConns > 0 && len(s.conns) >= s.limits.MaxConns {
			s.mu.Unlock()
			mServerShed.With(shedConns).Inc()
			s.wg.Add(1)
			go s.shedConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// shedConn answers a connection accepted past MaxConns with a retryable
// busy response and closes it. The response is written before the close and
// the inbound side is drained briefly so an in-flight request line does not
// turn the close into a reset that loses the response.
//
// The shed must speak the codec the client expects, so it briefly sniffs for
// the binary preamble (which v2 clients send eagerly at dial). A client that
// has sent nothing within the sniff budget gets the JSON shed — the only
// answer a codec-unknown peer might understand.
func (s *Server) shedConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(time.Second))
	r := bufio.NewReaderSize(conn, 16)
	w := bufio.NewWriter(conn)
	resp := busyResp("server at connection capacity; retry")
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	first, err := r.Peek(1)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if err == nil && first[0] == wirePreamble[0] {
		var pre [wirePreambleLen]byte
		if _, err := io.ReadFull(r, pre[:]); err == nil && pre[1] == 'N' && pre[2] == 'W' && pre[3] == 'S' {
			w.WriteByte(wireVersionBinary)
			// Request ID 0 is reserved for exactly this: a connection-level
			// response to requests the server never read.
			buf := getEncBuf()
			if payload, perr := encodeResponsePayload(*buf, 0, resp); perr == nil {
				writeFrame(w, payload)
			}
			putEncBuf(buf)
			w.Flush()
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			io.Copy(io.Discard, conn)
			return
		}
	}
	writeMsg(w, resp)
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	io.Copy(io.Discard, conn)
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	mServerConnsTotal.Inc()
	mServerConnsActive.Inc()
	defer func() {
		mServerConnsActive.Dec()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	reader := bufio.NewReaderSize(conn, 64<<10)
	writer := bufio.NewWriter(conn)

	// Codec negotiation: a v2 client opens with a NUL-led preamble, which can
	// never begin a JSON line, so peeking one byte classifies the connection
	// without consuming anything a v1 client sent. The peek waits under the
	// same idle deadline a request read would.
	if s.limits.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.limits.IdleTimeout))
	}
	first, err := reader.Peek(1)
	if err != nil {
		if err != io.EOF && !s.isClosed() {
			if isTimeout(err) {
				mServerShed.With(shedIdle).Inc()
			} else if s.logger != nil {
				s.logger.Printf("nwsnet: read: %v", err)
			}
		}
		return
	}
	if first[0] == wirePreamble[0] {
		if !s.negotiateBinary(conn, reader, writer) {
			return
		}
		mWireConns.With(string(CodecBinary)).Inc()
		s.serveBinary(conn, reader, writer)
		return
	}
	mWireConns.With(string(CodecJSON)).Inc()
	s.serveJSON(conn, reader, writer)
}

// negotiateBinary consumes a binary preamble and answers with the accept
// byte. It reports whether the connection should proceed on the binary
// codec; a malformed preamble closes the connection, and a version below
// binary is answered with the JSON accept byte and downgraded in place
// (the JSON loop takes over — nothing of the old protocol is lost).
func (s *Server) negotiateBinary(conn net.Conn, reader *bufio.Reader, writer *bufio.Writer) bool {
	var pre [wirePreambleLen]byte
	if _, err := io.ReadFull(reader, pre[:]); err != nil {
		mWireDecodeErrors.Inc()
		return false
	}
	if pre[1] != 'N' || pre[2] != 'W' || pre[3] != 'S' {
		mWireDecodeErrors.Inc()
		if s.logger != nil {
			s.logger.Printf("nwsnet: bad negotiation preamble % x", pre)
		}
		return false
	}
	if pre[4] < wireVersionBinary {
		// The client asked for a version this server no longer frames
		// natively; fall back to the JSON codec both sides speak.
		writer.WriteByte(wireVersionJSON)
		if writer.Flush() != nil {
			return false
		}
		mWireConns.With(string(CodecJSON)).Inc()
		s.serveJSON(conn, reader, writer)
		return false
	}
	// The accept byte is buffered, not flushed: it rides in front of the
	// first response, so negotiation costs a pipelining client zero round
	// trips.
	writer.WriteByte(wireVersionBinary)
	return true
}

// serveJSON is the v1 serve loop: newline-framed JSON, strict
// request/response lockstep.
func (s *Server) serveJSON(conn net.Conn, reader *bufio.Reader, writer *bufio.Writer) {
	var tenant string
	for {
		if s.limits.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.limits.IdleTimeout))
		}
		var req Request
		if err := readMsg(reader, &req); err != nil {
			if err != io.EOF && !s.isClosed() {
				if isTimeout(err) {
					// The idle deadline fired with no request in flight:
					// disconnect the silent client instead of pinning this
					// goroutine forever.
					mServerShed.With(shedIdle).Inc()
				} else if s.logger != nil {
					s.logger.Printf("nwsnet: read: %v", err)
				}
			}
			return
		}
		mServerRequestsByOp.get(req.Op).Inc()
		var resp Response
		switch {
		case req.Op == OpHello:
			// Connection-level: attribute the rest of the connection to
			// the named tenant. Handled by the server, not the handler,
			// so quotas work identically on every role.
			tenant = req.Tenant
		case !s.allowTenant(tenant):
			resp = s.tenantBusy(tenant)
		default:
			resp = s.dispatch(req)
		}
		resp.OK = resp.Error == ""
		if s.limits.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.limits.WriteTimeout))
		}
		if err := writeMsg(writer, resp); err != nil {
			if isTimeout(err) {
				// A stalled reader: the client stopped draining its socket
				// while we were mid-response. Cut the connection rather
				// than block the handler goroutine on its buffer.
				mServerShed.With(shedWrite).Inc()
			} else if s.logger != nil {
				s.logger.Printf("nwsnet: write: %v", err)
			}
			return
		}
	}
}

// wireInbound is one decoded binary request queued between the frame reader
// and the executor.
type wireInbound struct {
	id  uint64
	req Request
}

// binSink is the serialized write half of one binary connection: every
// outbound frame — ordinary responses from the executor and server-initiated
// pushes from a SubscriptionHandler — goes through its lock, so pushes
// interleave with responses at frame granularity and never corrupt the
// stream. It implements PushSink.
type binSink struct {
	conn   net.Conn
	limits ServerLimits
	subs   atomic.Int64 // active subscriptions on this connection

	mu  sync.Mutex
	w   *bufio.Writer
	err error // first write failure; poisons all later writes
}

func (k *binSink) addSubs(delta int64) { k.subs.Add(delta) }

// poisoned reports whether a write failure (or teardown) has killed the
// sink; the frame reader checks it before excusing a read timeout on a
// subscribed connection.
func (k *binSink) poisoned() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.err != nil
}

// close poisons the sink so no further push lands and no read timeout is
// excused; the serve loop calls it on its way out.
func (k *binSink) close() {
	k.mu.Lock()
	if k.err == nil {
		k.err = net.ErrClosed
	}
	k.mu.Unlock()
}

// writeLocked frames payload and optionally flushes; callers hold k.mu. A
// failure poisons the sink and expires the connection's read deadline so
// the serve loop tears the connection down promptly.
func (k *binSink) writeLocked(payload []byte, flush bool) error {
	if k.err != nil {
		return k.err
	}
	// Arm the write deadline once per flush batch (the buffer is empty
	// exactly when a batch starts): it still bounds how long a stalled
	// peer can pin the connection, without a deadline call per frame.
	if k.limits.WriteTimeout > 0 && k.w.Buffered() == 0 {
		k.conn.SetWriteDeadline(time.Now().Add(k.limits.WriteTimeout))
	}
	err := writeFrame(k.w, payload)
	if err == nil {
		mWireFramesOut.Inc()
		mWireBytesOut.Add(uint64(len(payload)))
		if flush {
			err = k.w.Flush()
		}
	}
	if err != nil {
		if isTimeout(err) {
			mServerShed.With(shedWrite).Inc()
		}
		k.err = err
		k.conn.SetReadDeadline(time.Now().Add(-time.Second))
	}
	return err
}

// send encodes and writes one response frame tagged with id.
func (k *binSink) send(id uint64, resp Response, flush bool) error {
	buf := getEncBuf()
	payload, err := encodeResponsePayload(*buf, id, resp)
	if err != nil {
		putEncBuf(buf)
		return err
	}
	k.mu.Lock()
	err = k.writeLocked(payload, flush)
	k.mu.Unlock()
	*buf = payload
	putEncBuf(buf)
	return err
}

// pushWriteBudget bounds how long one push may occupy a socket whose
// server has no configured WriteTimeout. The response path may block
// indefinitely there — the client is waiting for its answer — but a push
// blocking means the subscriber stopped draining, and the refresher behind
// the push serves every other subscriber too.
const pushWriteBudget = time.Second

// Push implements PushSink: a server-initiated frame reusing the
// subscription's request ID, flushed immediately (push latency is the point
// of the read plane; there is no pipelined burst to coalesce with).
//
// Slow-subscriber protection: a push never waits on a stalled connection.
// If the sink's write lock is held — the previous write is still draining
// into a peer that stopped reading — the frame is dropped and counted in
// nws_forecast_pushes_dropped_total instead of queueing behind it; the
// subscription stays live and the next refresh tick supersedes the dropped
// forecast. When the lock is free, the flush runs under a write deadline
// even on servers with no WriteTimeout, so the first write into a dead
// socket poisons the sink (tearing the connection down via DropSink)
// rather than wedging the caller.
func (k *binSink) Push(id uint64, resp Response) error {
	resp.OK = resp.Error == ""
	if !k.mu.TryLock() {
		mFcPushesDropped.Inc()
		return nil
	}
	defer k.mu.Unlock()
	buf := getEncBuf()
	payload, err := encodeResponsePayload(*buf, id, resp)
	if err != nil {
		putEncBuf(buf)
		return err
	}
	armed := false
	if k.limits.WriteTimeout <= 0 && k.err == nil {
		k.conn.SetWriteDeadline(time.Now().Add(pushWriteBudget))
		armed = true
	}
	err = k.writeLocked(payload, true)
	if err == nil && armed {
		// A write deadline persists on the connection; clear it so later
		// responses on this deadline-free server are not spuriously timed
		// out by this push's budget.
		k.conn.SetWriteDeadline(time.Time{})
	}
	*buf = payload
	putEncBuf(buf)
	if err != nil {
		mFcPushesDropped.Inc()
	}
	return err
}

// subscribe runs the registration and writes its acknowledgement under the
// sink lock, so a push for the new subscription — which needs the same lock
// — cannot overtake the ack on the wire.
func (k *binSink) subscribe(h SubscriptionHandler, in wireInbound, flush bool) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	resp := h.Subscribe(in.req, in.id, k)
	resp.OK = resp.Error == ""
	buf := getEncBuf()
	payload, err := encodeResponsePayload(*buf, in.id, resp)
	if err != nil {
		putEncBuf(buf)
		return err
	}
	err = k.writeLocked(payload, flush)
	*buf = payload
	putEncBuf(buf)
	return err
}

// serveBinary is the v2 serve loop. A reader goroutine decodes frames ahead
// of execution into a bounded queue — the server half of pipelining — while
// this goroutine executes them strictly in arrival order (order matters: the
// memory server's idempotent-store dedup relies on a connection's stores
// applying in the sequence they were sent) and writes responses back tagged
// with the request ID, coalescing flushes while more work is queued. All
// writes go through a binSink so subscription pushes (server-initiated
// frames from a SubscriptionHandler) serialize cleanly with responses.
func (s *Server) serveBinary(conn net.Conn, reader *bufio.Reader, writer *bufio.Writer) {
	sink := &binSink{conn: conn, limits: s.limits, w: writer}
	subHandler, _ := s.handler.(SubscriptionHandler)
	queue := make(chan wireInbound, wireReadAhead)
	go func() {
		defer close(queue)
		var buf []byte
		for {
			// Arm the idle deadline only when the next frame has to touch the
			// socket; frames already buffered (pipelined bursts) mean the
			// connection is anything but idle. A connection with active
			// subscriptions is never idle-disconnected: it is quiet because
			// it is listening, not because it is gone.
			if s.limits.IdleTimeout > 0 && reader.Buffered() == 0 && sink.subs.Load() == 0 {
				conn.SetReadDeadline(time.Now().Add(s.limits.IdleTimeout))
			}
			payload, n, err := readFrame(reader, &buf)
			if err != nil {
				if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) || s.isClosed() {
					return
				}
				if isTimeout(err) {
					if n == 0 && sink.subs.Load() > 0 && !sink.poisoned() {
						// The deadline was armed before the executor
						// registered a subscription; clear it and keep
						// listening.
						conn.SetReadDeadline(time.Time{})
						continue
					}
					mServerShed.With(shedIdle).Inc()
					return
				}
				mWireDecodeErrors.Inc()
				if s.logger != nil {
					s.logger.Printf("nwsnet: read frame: %v", err)
				}
				return
			}
			mWireFramesIn.Inc()
			mWireBytesIn.Add(uint64(len(payload)))
			id, req, err := decodeRequestPayload(payload)
			if err != nil {
				// Binary framing cannot resynchronize after garbage; close
				// instead of guessing where the next frame starts.
				mWireDecodeErrors.Inc()
				if s.logger != nil {
					s.logger.Printf("nwsnet: decode frame: %v", err)
				}
				return
			}
			queue <- wireInbound{id: id, req: req}
		}
	}()
	// On exit, poison the sink (so no read timeout is excused and no push
	// lands mid-teardown), unblock the reader (it may be parked on a read
	// or a queue send), and drain until it closes the channel, so
	// serveConn's deferred conn.Close never races a goroutine still using
	// the bufio.Reader.
	defer func() {
		sink.close()
		conn.SetReadDeadline(time.Now().Add(-time.Second))
		for range queue {
		}
	}()
	// Drop this connection's subscriptions first (LIFO), before the reader
	// is reaped, so the handler stops pushing to a connection on its way out.
	if subHandler != nil {
		defer subHandler.DropSink(sink)
	}
	var tenant string
	for in := range queue {
		mServerRequestsByOp.get(in.req.Op).Inc()
		mWirePipelineDepth.Observe(float64(len(queue)))
		// Flush only when no further request is queued: under pipelining
		// many responses share one syscall.
		flush := len(queue) == 0
		var resp Response
		switch {
		case in.req.Op == OpHello:
			// Connection-level: attribute the rest of the connection to
			// the named tenant.
			tenant = in.req.Tenant
		case !s.allowTenant(tenant):
			resp = s.tenantBusy(tenant)
		case in.req.Op == OpSubscribe && subHandler != nil:
			if err := sink.subscribe(subHandler, in, flush); err != nil {
				if s.logger != nil && !isTimeout(err) {
					s.logger.Printf("nwsnet: subscribe: %v", err)
				}
				return
			}
			continue
		case in.req.Op == OpUnsubscribe && subHandler != nil:
			resp = subHandler.Unsubscribe(in.req, sink)
		default:
			resp = s.dispatch(in.req)
		}
		resp.OK = resp.Error == ""
		if err := sink.send(in.id, resp, flush); err != nil {
			if s.logger != nil && !isTimeout(err) {
				s.logger.Printf("nwsnet: write frame: %v", err)
			}
			return
		}
	}
	sink.mu.Lock()
	writer.Flush()
	sink.mu.Unlock()
}

// dispatch runs one request through the handler, bounded by the in-flight
// budget when one is configured: a request that cannot get a slot within
// QueueWait is shed with a retryable busy response instead of queueing
// without bound.
func (s *Server) dispatch(req Request) Response {
	if s.inflight == nil {
		return s.handler.Handle(req)
	}
	select {
	case s.inflight <- struct{}{}:
	default:
		mServerQueueDepth.Inc()
		t := time.NewTimer(s.limits.QueueWait)
		select {
		case s.inflight <- struct{}{}:
			t.Stop()
			mServerQueueDepth.Dec()
		case <-t.C:
			mServerQueueDepth.Dec()
			mServerShed.With(shedQueue).Inc()
			return busyResp("server overloaded: no in-flight slot within %v; retry", s.limits.QueueWait)
		}
	}
	mServerInFlight.Inc()
	defer func() {
		mServerInFlight.Dec()
		<-s.inflight
	}()
	return s.handler.Handle(req)
}

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops the listener and drains live connections: requests already
// in flight run to completion and their responses are written before the
// connections close — only the idle wait for the next request is cut
// short (by an expired read deadline). Close blocks until every serving
// goroutine has exited. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	past := time.Now().Add(-time.Second)
	for c := range s.conns {
		// Expiring the read deadline unblocks connections parked between
		// requests; a handler mid-request still writes its response (writes
		// are unaffected), then its serve loop observes the dead read and
		// exits, closing the connection.
		c.SetReadDeadline(past)
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}
