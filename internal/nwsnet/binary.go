package nwsnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"

	"nwscpu/internal/nwsnet/cluster"
)

// This file implements wire protocol v2: the length-prefixed binary codec
// negotiated by a version preamble on connect. The normative specification —
// frame layout, negotiation, varint float packing, request-ID multiplexing
// rules, and worked hex dumps — is docs/PROTOCOL.md; keep the two in sync
// (TestProtocolDocOpTables and TestProtocolDocHexExamples enforce it).
//
// Design constraints, in order:
//
//   - Exactly the Request/Response semantics of the JSON codec: the same
//     busy/error classification, the same idempotent-store behavior, the
//     same batch envelope. A server negotiates per connection, so v1 and v2
//     clients coexist against one listener.
//   - Cheap on the hot path: no reflection, no per-field allocation, pooled
//     encode buffers, and varint-packed point arrays (XOR-chained
//     byte-reversed float bits, so repeated values cost one byte).
//   - Safe against hostile bytes: every count is sanity-checked against the
//     remaining frame before anything is allocated, slices grow
//     incrementally, and a malformed frame closes the connection instead of
//     desynchronizing it.

// Codec selects the wire encoding a client speaks; servers accept both on
// one listener by sniffing the negotiation preamble.
type Codec string

// The wire codecs. The zero value of a Codec option selects CodecBinary.
const (
	// CodecJSON is wire protocol v1: one JSON object per line, strict
	// request/response lockstep. Debuggable with netcat; kept for
	// compatibility with v1-only clients.
	CodecJSON Codec = "json"
	// CodecBinary is wire protocol v2: length-prefixed binary frames with
	// tagged request IDs, pipelined over one multiplexed connection.
	CodecBinary Codec = "binary"
)

// normCodec maps the zero value to the default codec and rejects junk.
func normCodec(c Codec) (Codec, error) {
	switch c {
	case "", CodecBinary:
		return CodecBinary, nil
	case CodecJSON:
		return CodecJSON, nil
	}
	return "", fmt.Errorf("nwsnet: unknown codec %q (want %q or %q)", c, CodecJSON, CodecBinary)
}

// Wire protocol versions carried in the negotiation preamble and the
// server's accept byte.
const (
	wireVersionJSON   = 1 // v1: JSON lines (the implicit version when no preamble is sent)
	wireVersionBinary = 2 // v2: binary frames
)

// wirePreamble is the 5-byte connect preamble a binary client sends first:
// a NUL (which can never begin a JSON line, so v1 sniffing is unambiguous),
// the ASCII magic "NWS", and the requested protocol version. The server
// answers with a single accept byte: the version the connection will speak.
var wirePreamble = [wirePreambleLen]byte{0x00, 'N', 'W', 'S', wireVersionBinary}

// wirePreambleLen is the preamble's size on the wire.
const wirePreambleLen = 5

// maxFrameBytes bounds one binary frame's payload, matching maxLineBytes so
// neither codec can make the peer buffer more than the other.
const maxFrameBytes = maxLineBytes

// wireReadAhead is how many decoded requests a binary server connection
// buffers between its frame reader and its executor — the server half of
// pipelining. Past it the reader blocks, which backpressures the client
// through TCP instead of queueing without bound.
const wireReadAhead = 256

// maxBatchDepth caps batch-envelope nesting the binary codec will encode or
// decode. Execution rejects any nesting (see Memory.handleBatch); the codec
// cap merely keeps hostile frames from recursing the decoder.
const maxBatchDepth = 4

// Binary opcodes, one per protocol Op. The table is mirrored in the
// "Operations" table of docs/PROTOCOL.md (enforced by docs-check).
const (
	binOpPing        byte = 0x01
	binOpRegister    byte = 0x02
	binOpLookup      byte = 0x03
	binOpList        byte = 0x04
	binOpStore       byte = 0x05
	binOpFetch       byte = 0x06
	binOpSeries      byte = 0x07
	binOpBatch       byte = 0x08
	binOpForecast    byte = 0x09
	binOpJoin        byte = 0x0A
	binOpLease       byte = 0x0B
	binOpView        byte = 0x0C
	binOpSubscribe   byte = 0x0D
	binOpUnsubscribe byte = 0x0E
	binOpHello       byte = 0x0F
	binOpDigest      byte = 0x10
	binOpBackfill    byte = 0x11
)

// wireOps is the canonical Op ↔ opcode registry: the ops the wire speaks, in
// both codecs. docs-check compares the PROTOCOL.md op tables against it.
var wireOps = map[Op]byte{
	OpPing:        binOpPing,
	OpRegister:    binOpRegister,
	OpLookup:      binOpLookup,
	OpList:        binOpList,
	OpStore:       binOpStore,
	OpFetch:       binOpFetch,
	OpSeries:      binOpSeries,
	OpBatch:       binOpBatch,
	OpForecast:    binOpForecast,
	OpJoin:        binOpJoin,
	OpLease:       binOpLease,
	OpView:        binOpView,
	OpSubscribe:   binOpSubscribe,
	OpUnsubscribe: binOpUnsubscribe,
	OpHello:       binOpHello,
	OpDigest:      binOpDigest,
	OpBackfill:    binOpBackfill,
}

// binOpToOp is the reverse mapping, built once at init.
var binOpToOp = func() map[byte]Op {
	m := make(map[byte]Op, len(wireOps))
	for op, c := range wireOps {
		m[c] = op
	}
	return m
}()

// Response flag bits, carried as one uvarint. A presence bit may be set
// only when its section is non-empty, which makes encoding canonical:
// decode ∘ encode is the identity on decoded values. Responses using only
// the low seven bits — every pre-cluster response — encode to the same
// single byte the original fixed flags byte was, so the v2 golden examples
// are unchanged; the view bit (and any future section) costs a second
// flags byte only on the responses that carry it.
const (
	respFlagOK       uint64 = 1 << 0
	respFlagError    uint64 = 1 << 1
	respFlagCode     uint64 = 1 << 2
	respFlagPoints   uint64 = 1 << 3
	respFlagNames    uint64 = 1 << 4
	respFlagEntries  uint64 = 1 << 5
	respFlagForecast uint64 = 1 << 6
	respFlagBatch    uint64 = 1 << 7
	respFlagView     uint64 = 1 << 8
	respFlagDigests  uint64 = 1 << 9

	// respFlagsKnown masks every assigned bit; a decoder rejecting the
	// rest keeps unknown-section frames from silently losing data.
	respFlagsKnown = respFlagOK | respFlagError | respFlagCode | respFlagPoints |
		respFlagNames | respFlagEntries | respFlagForecast | respFlagBatch | respFlagView |
		respFlagDigests
)

// errBinMalformed is the generic decode failure; connections are closed on
// it because binary framing cannot resynchronize after garbage.
var errBinMalformed = errors.New("nwsnet: malformed binary frame")

// encBufPool recycles encode buffers across calls and goroutines; encoding
// on the hot path allocates nothing once the pool is warm.
var encBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

func getEncBuf() *[]byte  { return encBufPool.Get().(*[]byte) }
func putEncBuf(b *[]byte) { *b = (*b)[:0]; encBufPool.Put(b) }

// --- primitive encoders ---

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendF64 appends one float64 as the uvarint of its byte-reversed IEEE 754
// bits. Reversal moves the mantissa's trailing zero bytes (ubiquitous in
// measurement values like 0.5 or integral timestamps) to the top of the
// word, so the uvarint drops them: 10000.0 costs 4 bytes instead of 8.
func appendF64(b []byte, f float64) []byte {
	return binary.AppendUvarint(b, bits.ReverseBytes64(math.Float64bits(f)))
}

// appendPoints appends a [t, v] array: a count, then per point the uvarint
// of ReverseBytes64(bits XOR previous-bits), chained separately for the t
// and v streams. Identical consecutive values (a flat series) cost one byte,
// and slowly-moving ones a few, without any lossy quantization.
func appendPoints(b []byte, pts [][2]float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(pts)))
	var pt, pv uint64
	for _, p := range pts {
		tb, vb := math.Float64bits(p[0]), math.Float64bits(p[1])
		b = binary.AppendUvarint(b, bits.ReverseBytes64(tb^pt))
		b = binary.AppendUvarint(b, bits.ReverseBytes64(vb^pv))
		pt, pv = tb, vb
	}
	return b
}

// appendRegistration appends a Registration.
func appendRegistration(b []byte, reg Registration) []byte {
	b = appendString(b, reg.Name)
	b = appendString(b, string(reg.Kind))
	b = appendString(b, reg.Addr)
	b = binary.AppendUvarint(b, uint64(len(reg.Addrs)))
	for _, a := range reg.Addrs {
		b = appendString(b, a)
	}
	return b
}

// appendMember appends a cluster member. A nil member encodes as the
// all-empty member, which the decoder normalizes back to nil, so absent
// and zero members are one wire value.
func appendMember(b []byte, m *cluster.Member) []byte {
	var v cluster.Member
	if m != nil {
		v = *m
	}
	b = appendString(b, v.ID)
	b = appendString(b, v.Kind)
	b = appendString(b, v.Addr)
	b = binary.AppendUvarint(b, uint64(len(v.Addrs)))
	for _, a := range v.Addrs {
		b = appendString(b, a)
	}
	return appendString(b, string(v.State))
}

// appendView appends a membership view: epoch, ring config, then the
// member list.
func appendView(b []byte, v *cluster.View) []byte {
	b = binary.AppendUvarint(b, v.Epoch)
	b = binary.AppendUvarint(b, uint64(max(v.Config.Replication, 0)))
	b = binary.AppendUvarint(b, uint64(max(v.Config.VNodes, 0)))
	b = binary.AppendUvarint(b, v.Config.Seed)
	b = binary.AppendUvarint(b, uint64(len(v.Members)))
	for i := range v.Members {
		b = appendMember(b, &v.Members[i])
	}
	return b
}

// --- primitive decoder ---

// binReader walks one frame payload. Every method fails cleanly on
// truncation; nothing panics on hostile input.
type binReader struct {
	b   []byte
	off int
}

func (r *binReader) rem() int { return len(r.b) - r.off }

func (r *binReader) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errBinMalformed
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errBinMalformed
	}
	r.off += n
	return v, nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.rem()) {
		return "", errBinMalformed
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *binReader) f64() (float64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits.ReverseBytes64(u)), nil
}

// points decodes a point array. The count is sanity-checked against the
// remaining payload (a point costs at least two bytes) before anything is
// allocated, and the slice grows incrementally, so a forged count cannot
// make the decoder allocate beyond the frame it was sent in.
func (r *binReader) points() ([][2]float64, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, errBinMalformed // presence implies content; see respFlag docs
	}
	if n > uint64(r.rem())/2 {
		return nil, errBinMalformed
	}
	out := make([][2]float64, 0, min(n, 4096))
	var pt, pv uint64
	for i := uint64(0); i < n; i++ {
		dt, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		dv, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		pt ^= bits.ReverseBytes64(dt)
		pv ^= bits.ReverseBytes64(dv)
		out = append(out, [2]float64{math.Float64frombits(pt), math.Float64frombits(pv)})
	}
	return out, nil
}

func (r *binReader) registration() (Registration, error) {
	var reg Registration
	var err error
	if reg.Name, err = r.str(); err != nil {
		return reg, err
	}
	var kind string
	if kind, err = r.str(); err != nil {
		return reg, err
	}
	reg.Kind = Kind(kind)
	if reg.Addr, err = r.str(); err != nil {
		return reg, err
	}
	n, err := r.uvarint()
	if err != nil {
		return reg, err
	}
	if n > uint64(r.rem()) {
		return reg, errBinMalformed
	}
	if n > 0 {
		reg.Addrs = make([]string, 0, min(n, 1024))
		for i := uint64(0); i < n; i++ {
			a, err := r.str()
			if err != nil {
				return reg, err
			}
			reg.Addrs = append(reg.Addrs, a)
		}
	}
	return reg, nil
}

// member decodes a cluster member, normalizing the all-empty member to nil
// so decode ∘ encode is the identity whether or not a member was present.
func (r *binReader) member() (*cluster.Member, error) {
	var m cluster.Member
	var err error
	if m.ID, err = r.str(); err != nil {
		return nil, err
	}
	if m.Kind, err = r.str(); err != nil {
		return nil, err
	}
	if m.Addr, err = r.str(); err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.rem()) {
		return nil, errBinMalformed
	}
	if n > 0 {
		m.Addrs = make([]string, 0, min(n, 1024))
		for i := uint64(0); i < n; i++ {
			a, err := r.str()
			if err != nil {
				return nil, err
			}
			m.Addrs = append(m.Addrs, a)
		}
	}
	var state string
	if state, err = r.str(); err != nil {
		return nil, err
	}
	m.State = cluster.State(state)
	if m.IsZero() {
		return nil, nil
	}
	return &m, nil
}

// view decodes a membership view.
func (r *binReader) view() (*cluster.View, error) {
	var v cluster.View
	var err error
	if v.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	rep, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	vn, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if rep > uint64(maxFrameBytes) || vn > uint64(maxFrameBytes) {
		return nil, errBinMalformed
	}
	v.Config.Replication = int(rep)
	v.Config.VNodes = int(vn)
	if v.Config.Seed, err = r.uvarint(); err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// A member costs at least five bytes (five length/count prefixes), so
	// the count check below keeps forged counts from allocating beyond the
	// frame.
	if n > uint64(r.rem()) {
		return nil, errBinMalformed
	}
	if n > 0 {
		v.Members = make([]cluster.Member, 0, min(n, 1024))
		for i := uint64(0); i < n; i++ {
			m, err := r.member()
			if err != nil {
				return nil, err
			}
			if m == nil {
				m = &cluster.Member{}
			}
			v.Members = append(v.Members, *m)
		}
	}
	return &v, nil
}

// --- request codec ---

// encodeRequestPayload appends the v2 payload for req tagged with id:
// uvarint request ID, opcode byte, then the op's fields. It fails on ops the
// wire does not register and on batch nesting past maxBatchDepth.
func encodeRequestPayload(b []byte, id uint64, req Request) ([]byte, error) {
	b = binary.AppendUvarint(b, id)
	return encodeRequestBody(b, req, 0)
}

func encodeRequestBody(b []byte, req Request, depth int) ([]byte, error) {
	code, ok := wireOps[req.Op]
	if !ok {
		return nil, fmt.Errorf("nwsnet: op %q has no binary opcode", req.Op)
	}
	b = append(b, code)
	switch req.Op {
	case OpPing, OpSeries:
		// No fields.
	case OpRegister:
		b = appendRegistration(b, req.Reg)
	case OpLookup:
		b = appendString(b, req.Reg.Name)
	case OpList:
		b = appendString(b, string(req.Reg.Kind))
	case OpStore:
		b = appendString(b, req.Series)
		b = appendPoints2(b, req.Points)
	case OpFetch:
		b = appendString(b, req.Series)
		b = appendF64(b, req.From)
		b = appendF64(b, req.To)
		b = binary.AppendUvarint(b, uint64(max(req.Max, 0)))
	case OpForecast, OpSubscribe, OpUnsubscribe, OpDigest:
		b = appendString(b, req.Series)
	case OpBackfill:
		b = appendString(b, req.Series)
		b = appendPoints2(b, req.Points)
	case OpHello:
		b = appendString(b, req.Tenant)
	case OpJoin, OpLease:
		b = appendMember(b, req.Member)
		b = binary.AppendUvarint(b, req.Epoch)
	case OpView:
		b = binary.AppendUvarint(b, req.Epoch)
	case OpBatch:
		if depth >= maxBatchDepth {
			return nil, fmt.Errorf("nwsnet: batch nesting exceeds depth %d", maxBatchDepth)
		}
		b = binary.AppendUvarint(b, uint64(len(req.Batch)))
		var err error
		for _, sub := range req.Batch {
			if b, err = encodeRequestBody(b, sub, depth+1); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// appendPoints2 is appendPoints permitting the empty array requests carry
// (a store with no points is rejected by the handler, not the codec, to
// match the JSON codec's behavior bit for bit).
func appendPoints2(b []byte, pts [][2]float64) []byte {
	if len(pts) == 0 {
		return binary.AppendUvarint(b, 0)
	}
	return appendPoints(b, pts)
}

// decodeRequestPayload decodes one v2 request payload, requiring the whole
// payload be consumed (trailing garbage is a protocol error).
func decodeRequestPayload(b []byte) (uint64, Request, error) {
	r := binReader{b: b}
	id, err := r.uvarint()
	if err != nil {
		return 0, Request{}, err
	}
	req, err := decodeRequestBody(&r, 0)
	if err != nil {
		return 0, Request{}, err
	}
	if r.rem() != 0 {
		return 0, Request{}, errBinMalformed
	}
	return id, req, nil
}

func decodeRequestBody(r *binReader, depth int) (Request, error) {
	var req Request
	code, err := r.u8()
	if err != nil {
		return req, err
	}
	op, ok := binOpToOp[code]
	if !ok {
		return req, fmt.Errorf("nwsnet: unknown binary opcode 0x%02x", code)
	}
	req.Op = op
	switch op {
	case OpPing, OpSeries:
	case OpRegister:
		if req.Reg, err = r.registration(); err != nil {
			return req, err
		}
	case OpLookup:
		if req.Reg.Name, err = r.str(); err != nil {
			return req, err
		}
	case OpList:
		var kind string
		if kind, err = r.str(); err != nil {
			return req, err
		}
		req.Reg.Kind = Kind(kind)
	case OpStore:
		if req.Series, err = r.str(); err != nil {
			return req, err
		}
		if req.Points, err = requestPoints(r); err != nil {
			return req, err
		}
	case OpFetch:
		if req.Series, err = r.str(); err != nil {
			return req, err
		}
		if req.From, err = r.f64(); err != nil {
			return req, err
		}
		if req.To, err = r.f64(); err != nil {
			return req, err
		}
		var m uint64
		if m, err = r.uvarint(); err != nil {
			return req, err
		}
		if m > uint64(maxFrameBytes) {
			return req, errBinMalformed
		}
		req.Max = int(m)
	case OpForecast, OpSubscribe, OpUnsubscribe, OpDigest:
		if req.Series, err = r.str(); err != nil {
			return req, err
		}
	case OpBackfill:
		if req.Series, err = r.str(); err != nil {
			return req, err
		}
		if req.Points, err = requestPoints(r); err != nil {
			return req, err
		}
	case OpHello:
		if req.Tenant, err = r.str(); err != nil {
			return req, err
		}
	case OpJoin, OpLease:
		if req.Member, err = r.member(); err != nil {
			return req, err
		}
		if req.Epoch, err = r.uvarint(); err != nil {
			return req, err
		}
	case OpView:
		if req.Epoch, err = r.uvarint(); err != nil {
			return req, err
		}
	case OpBatch:
		if depth >= maxBatchDepth {
			return req, errBinMalformed
		}
		n, err := r.uvarint()
		if err != nil {
			return req, err
		}
		if n > uint64(r.rem()) {
			return req, errBinMalformed
		}
		if n > 0 {
			req.Batch = make([]Request, 0, min(n, 1024))
			for i := uint64(0); i < n; i++ {
				sub, err := decodeRequestBody(r, depth+1)
				if err != nil {
					return req, err
				}
				req.Batch = append(req.Batch, sub)
			}
		}
	}
	return req, nil
}

// requestPoints decodes a request point array, where — unlike response
// sections — an empty array is legal (the handler rejects it, as with JSON).
func requestPoints(r *binReader) ([][2]float64, error) {
	save := *r
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	*r = save
	return r.points()
}

// --- response codec ---

// encodeResponsePayload appends the v2 payload for resp tagged with id:
// uvarint ID, a flags byte (presence bits set only for non-empty sections),
// then the present sections in flag-bit order.
func encodeResponsePayload(b []byte, id uint64, resp Response) ([]byte, error) {
	b = binary.AppendUvarint(b, id)
	return encodeResponseBody(b, resp, 0)
}

func encodeResponseBody(b []byte, resp Response, depth int) ([]byte, error) {
	var flags uint64
	if resp.OK {
		flags |= respFlagOK
	}
	if resp.Error != "" {
		flags |= respFlagError
	}
	if resp.Code != "" {
		flags |= respFlagCode
	}
	if len(resp.Points) > 0 {
		flags |= respFlagPoints
	}
	if len(resp.Names) > 0 {
		flags |= respFlagNames
	}
	if len(resp.Entries) > 0 {
		flags |= respFlagEntries
	}
	if resp.Forecast != nil {
		flags |= respFlagForecast
	}
	if len(resp.Batch) > 0 {
		flags |= respFlagBatch
	}
	if resp.View != nil {
		flags |= respFlagView
	}
	if len(resp.Digests) > 0 {
		flags |= respFlagDigests
	}
	b = binary.AppendUvarint(b, flags)
	if flags&respFlagError != 0 {
		b = appendString(b, resp.Error)
	}
	if flags&respFlagCode != 0 {
		b = appendString(b, resp.Code)
	}
	if flags&respFlagPoints != 0 {
		b = appendPoints(b, resp.Points)
	}
	if flags&respFlagNames != 0 {
		b = binary.AppendUvarint(b, uint64(len(resp.Names)))
		for _, n := range resp.Names {
			b = appendString(b, n)
		}
	}
	if flags&respFlagEntries != 0 {
		b = binary.AppendUvarint(b, uint64(len(resp.Entries)))
		for _, e := range resp.Entries {
			b = appendRegistration(b, e)
		}
	}
	if flags&respFlagForecast != 0 {
		f := resp.Forecast
		b = appendF64(b, f.Value)
		b = appendString(b, f.Method)
		b = appendF64(b, f.MAE)
		b = binary.AppendUvarint(b, uint64(max(f.N, 0)))
	}
	if flags&respFlagBatch != 0 {
		if depth >= maxBatchDepth {
			return nil, fmt.Errorf("nwsnet: batch nesting exceeds depth %d", maxBatchDepth)
		}
		b = binary.AppendUvarint(b, uint64(len(resp.Batch)))
		var err error
		for _, sub := range resp.Batch {
			if b, err = encodeResponseBody(b, sub, depth+1); err != nil {
				return nil, err
			}
		}
	}
	if flags&respFlagView != 0 {
		b = appendView(b, resp.View)
	}
	if flags&respFlagDigests != 0 {
		b = binary.AppendUvarint(b, uint64(len(resp.Digests)))
		for _, d := range resp.Digests {
			b = appendString(b, d.Series)
			b = binary.AppendUvarint(b, d.Count)
			b = appendF64(b, d.Frontier)
			b = binary.AppendUvarint(b, d.Sum)
		}
	}
	return b, nil
}

// decodeResponsePayload decodes one v2 response payload, requiring full
// consumption and canonical presence bits (a set bit with an empty section
// is malformed), so decode ∘ encode is the identity.
func decodeResponsePayload(b []byte) (uint64, Response, error) {
	r := binReader{b: b}
	id, err := r.uvarint()
	if err != nil {
		return 0, Response{}, err
	}
	resp, err := decodeResponseBody(&r, 0)
	if err != nil {
		return 0, Response{}, err
	}
	if r.rem() != 0 {
		return 0, Response{}, errBinMalformed
	}
	return id, resp, nil
}

func decodeResponseBody(r *binReader, depth int) (Response, error) {
	var resp Response
	flags, err := r.uvarint()
	if err != nil {
		return resp, err
	}
	if flags&^respFlagsKnown != 0 {
		// An unassigned presence bit would mean a section this decoder
		// cannot parse (and would silently drop on re-encode): malformed.
		return resp, errBinMalformed
	}
	resp.OK = flags&respFlagOK != 0
	if flags&respFlagError != 0 {
		if resp.Error, err = r.str(); err != nil {
			return resp, err
		}
		if resp.Error == "" {
			return resp, errBinMalformed
		}
	}
	if flags&respFlagCode != 0 {
		if resp.Code, err = r.str(); err != nil {
			return resp, err
		}
		if resp.Code == "" {
			return resp, errBinMalformed
		}
	}
	if flags&respFlagPoints != 0 {
		if resp.Points, err = r.points(); err != nil {
			return resp, err
		}
	}
	if flags&respFlagNames != 0 {
		n, err := r.uvarint()
		if err != nil {
			return resp, err
		}
		if n == 0 || n > uint64(r.rem()) {
			return resp, errBinMalformed
		}
		resp.Names = make([]string, 0, min(n, 1024))
		for i := uint64(0); i < n; i++ {
			s, err := r.str()
			if err != nil {
				return resp, err
			}
			resp.Names = append(resp.Names, s)
		}
	}
	if flags&respFlagEntries != 0 {
		n, err := r.uvarint()
		if err != nil {
			return resp, err
		}
		if n == 0 || n > uint64(r.rem()) {
			return resp, errBinMalformed
		}
		resp.Entries = make([]Registration, 0, min(n, 1024))
		for i := uint64(0); i < n; i++ {
			reg, err := r.registration()
			if err != nil {
				return resp, err
			}
			resp.Entries = append(resp.Entries, reg)
		}
	}
	if flags&respFlagForecast != 0 {
		var f ForecastResult
		if f.Value, err = r.f64(); err != nil {
			return resp, err
		}
		if f.Method, err = r.str(); err != nil {
			return resp, err
		}
		if f.MAE, err = r.f64(); err != nil {
			return resp, err
		}
		n, err := r.uvarint()
		if err != nil {
			return resp, err
		}
		if n > uint64(maxFrameBytes) {
			return resp, errBinMalformed
		}
		f.N = int(n)
		resp.Forecast = &f
	}
	if flags&respFlagBatch != 0 {
		if depth >= maxBatchDepth {
			return resp, errBinMalformed
		}
		n, err := r.uvarint()
		if err != nil {
			return resp, err
		}
		if n == 0 || n > uint64(r.rem()) {
			return resp, errBinMalformed
		}
		resp.Batch = make([]Response, 0, min(n, 1024))
		for i := uint64(0); i < n; i++ {
			sub, err := decodeResponseBody(r, depth+1)
			if err != nil {
				return resp, err
			}
			resp.Batch = append(resp.Batch, sub)
		}
	}
	if flags&respFlagView != 0 {
		if resp.View, err = r.view(); err != nil {
			return resp, err
		}
	}
	if flags&respFlagDigests != 0 {
		n, err := r.uvarint()
		if err != nil {
			return resp, err
		}
		// A digest costs at least four bytes (length prefix plus three
		// varints), so the count check keeps forged counts from allocating
		// beyond the frame.
		if n == 0 || n > uint64(r.rem()) {
			return resp, errBinMalformed
		}
		resp.Digests = make([]SeriesDigest, 0, min(n, 1024))
		for i := uint64(0); i < n; i++ {
			var d SeriesDigest
			if d.Series, err = r.str(); err != nil {
				return resp, err
			}
			if d.Count, err = r.uvarint(); err != nil {
				return resp, err
			}
			if d.Frontier, err = r.f64(); err != nil {
				return resp, err
			}
			if d.Sum, err = r.uvarint(); err != nil {
				return resp, err
			}
			resp.Digests = append(resp.Digests, d)
		}
	}
	return resp, nil
}

// --- framing ---

// writeFrame writes one length-prefixed frame (4-byte big-endian payload
// length, then the payload) without flushing; callers coalesce flushes
// across pipelined frames.
func writeFrame(w *bufio.Writer, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("nwsnet: frame payload %d bytes exceeds %d", len(payload), maxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into *buf (grown as needed and reused across
// calls) and returns the payload plus how many bytes were consumed before
// the error, letting callers distinguish a clean idle timeout (zero bytes)
// from one that cut a frame in half.
func readFrame(r *bufio.Reader, buf *[]byte) ([]byte, int, error) {
	var hdr [4]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		return nil, n, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > maxFrameBytes {
		return nil, n, fmt.Errorf("nwsnet: frame length %d out of range (1..%d)", size, maxFrameBytes)
	}
	if cap(*buf) < int(size) {
		*buf = make([]byte, size)
	}
	payload := (*buf)[:size]
	m, err := io.ReadFull(r, payload)
	if err != nil {
		return nil, n + m, err
	}
	return payload, n + int(size), nil
}
