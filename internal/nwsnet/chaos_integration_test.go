package nwsnet

import (
	"context"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nwscpu/internal/resilience"
	"nwscpu/internal/resilience/chaos"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
)

// chaosFront puts a fault-injection proxy in front of a fresh memory server
// and returns the memory, the proxy, and the proxy's address.
func chaosFront(t *testing.T, sched chaos.Schedule) (*Memory, *chaos.Proxy, string) {
	t.Helper()
	m := NewMemory(0)
	srv := NewServer(m, nil)
	target, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	p := chaos.NewProxy(target, sched)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return m, p, addr
}

// TestChaosPrimaryReplicaKilledMidRun is the headline resilience scenario:
// a sensor daemon streams into a 3-replica memory group whose primary sits
// behind a fault proxy. The primary is killed mid-run; the write quorum and
// read failover must carry the stream with zero measurement loss, and the
// retry and health metrics must report the event.
func TestChaosPrimaryReplicaKilledMidRun(t *testing.T) {
	retries0 := mClientRetries.With(string(OpBatch)).Value()
	fo0 := mReplicaFailovers.Value()

	_, proxy, primaryAddr := chaosFront(t, nil)
	mems, _, addrs := startReplicaSet(t, 2)
	group := []string{primaryAddr, addrs[0], addrs[1]}

	h := simos.New(simos.DefaultConfig())
	h.Spawn(simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: 3600})
	d := NewSensorDaemonReplicas("chaoshost", sensors.SimHost{H: h}, group, 0, sensors.HybridConfig{})
	defer d.Close()

	step := func() {
		t.Helper()
		h.RunUntil(h.Now() + 10)
		if err := d.Step(); err != nil {
			t.Fatalf("step with quorum available: %v", err)
		}
	}

	const before, during, after = 4, 4, 2
	for i := 0; i < before; i++ {
		step()
	}

	// Kill the primary mid-run: writes must keep meeting quorum on the two
	// survivors without buffering anything.
	proxy.SetDown(true)
	for i := 0; i < during; i++ {
		step()
	}
	if n := d.Backlogged(); n != 0 {
		t.Fatalf("backlog grew to %d during a quorum-preserving outage", n)
	}
	if got := mReplicaHealthy.With(primaryAddr).Value(); got != 0 {
		t.Fatalf("nws_replica_healthy{%s} = %g during outage, want 0", primaryAddr, got)
	}
	if got := mClientRetries.With(string(OpBatch)).Value() - retries0; got == 0 {
		t.Fatal("nws_client_retries_total{batch} did not report the outage")
	}

	// A reader whose preferred replica is the dead primary must fail over
	// within one retry budget.
	reader := NewReplicaGroup(fastClient(), group, 0)
	defer reader.Close()
	key := SeriesKey("chaoshost", "vmstat")
	pts, err := reader.Fetch(context.Background(), key, 0, 0, 0)
	if err != nil {
		t.Fatalf("read during primary outage: %v", err)
	}
	if len(pts) != before+during {
		t.Fatalf("failover read returned %d points, want %d", len(pts), before+during)
	}
	if got := mReplicaFailovers.Value() - fo0; got == 0 {
		t.Fatal("nws_replica_failovers_total did not report the failover")
	}

	// Revive the primary and finish the run: the stream never blinked.
	proxy.SetDown(false)
	for i := 0; i < after; i++ {
		step()
	}
	for _, method := range []string{"load_average", "vmstat", "nws_hybrid"} {
		for i := 0; i < 2; i++ {
			if n := mems[i].Len(SeriesKey("chaoshost", method)); n != before+during+after {
				t.Fatalf("survivor %d holds %d %s points, want %d (measurements lost)",
					i, n, method, before+during+after)
			}
		}
	}
	if h := d.Replicas(); !h[0].Healthy {
		// The primary was marked unhealthy during the outage; once it
		// answers writes again the group restores it.
		t.Fatalf("revived primary still unhealthy: %+v", h)
	}
}

// TestChaosFullOutageBacklogDrainsLossless covers the other half of the
// resilience story: when the whole group is unreachable (here a group of
// one), the sensor's store-and-forward backlog buffers every measurement and
// backfills on recovery — nothing is lost across the outage.
func TestChaosFullOutageBacklogDrainsLossless(t *testing.T) {
	m, proxy, addr := chaosFront(t, nil)

	h := simos.New(simos.DefaultConfig())
	h.Spawn(simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: 3600})
	d := NewSensorDaemonReplicas("outagehost", sensors.SimHost{H: h}, []string{addr}, 0, sensors.HybridConfig{})
	defer d.Close()

	const before, during = 3, 4
	for i := 0; i < before; i++ {
		h.RunUntil(h.Now() + 10)
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}

	proxy.SetDown(true)
	for i := 0; i < during; i++ {
		h.RunUntil(h.Now() + 10)
		if err := d.Step(); err == nil {
			t.Fatal("step succeeded with the only replica down")
		}
	}
	if n := d.Backlogged(); n != during*3 {
		t.Fatalf("backlog = %d measurements, want %d", n, during*3)
	}
	if d.Replicas()[0].Healthy {
		t.Fatal("downed replica still marked healthy")
	}

	// Recovery: the next step delivers its own measurement plus the whole
	// backlog in one batch per series.
	proxy.SetDown(false)
	h.RunUntil(h.Now() + 10)
	if err := d.Step(); err != nil {
		t.Fatalf("step after recovery: %v", err)
	}
	if n := d.Backlogged(); n != 0 {
		t.Fatalf("backlog not drained: %d left", n)
	}
	for _, method := range []string{"load_average", "vmstat", "nws_hybrid"} {
		key := SeriesKey("outagehost", method)
		want := before + during + 1
		if n := m.Len(key); n != want {
			t.Fatalf("%s: %d points after recovery, want %d (measurements lost)", method, n, want)
		}
	}
	if got := mReplicaHealthy.With(addr).Value(); got != 1 {
		t.Fatalf("nws_replica_healthy{%s} = %g after recovery, want 1", addr, got)
	}
}

// chaosRunOutcomes drives a fixed sequence of stores through a seeded fault
// schedule and records each call's success. Retry jitter is seeded too, so
// the whole failure/recovery path is a pure function of the seeds.
func chaosRunOutcomes(t *testing.T, seed int64) []bool {
	t.Helper()
	sched := chaos.NewSeeded(seed, 0, map[chaos.Fault]float64{
		chaos.Pass:   0.5,
		chaos.Refuse: 0.3,
		chaos.Drop:   0.2,
	})
	_, _, addr := chaosFront(t, sched)
	c := NewClientOptions(ClientOptions{
		Timeout: time.Second,
		Retry: resilience.Policy{
			MaxAttempts: 2,
			BaseDelay:   time.Millisecond,
			Jitter:      0.5,
			Rand:        rand.New(rand.NewSource(seed)).Float64,
		},
		// Faults are drawn per connection, so the schedule only stays
		// aligned across runs if every attempt dials exactly one fresh
		// connection: disable idle pooling.
		MaxIdlePerAddr: -1,
	})
	defer c.Close()

	outcomes := make([]bool, 12)
	for i := range outcomes {
		err := c.Store(addr, "s", [][2]float64{{float64(i), 0.5}})
		outcomes[i] = err == nil
	}
	return outcomes
}

// TestChaosSeededScheduleIsDeterministic replays the same seeded fault
// schedule twice and requires identical call-by-call outcomes: the retry and
// failover paths must be reproducible for debugging, as the harness promises.
func TestChaosSeededScheduleIsDeterministic(t *testing.T) {
	a := chaosRunOutcomes(t, 42)
	b := chaosRunOutcomes(t, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at call %d: %v vs %v", i, a, b)
		}
	}
	// Sanity: the schedule actually injected both outcomes.
	var ok, fail bool
	for _, v := range a {
		if v {
			ok = true
		} else {
			fail = true
		}
	}
	if !ok || !fail {
		t.Fatalf("seeded schedule produced a degenerate run: %v", a)
	}
}

// TestChaosReplicaTimeoutMidBatchIdempotentRetry is the end-to-end
// idempotency scenario behind the memory server's store dedup: a replica
// applies a batched store but the client never sees the ack (the proxy
// truncates the response mid-exchange), so the retry redelivers the whole
// envelope. The group call must succeed, and every replica must end up with
// exactly one copy of each point — no duplicated tails, no wedged
// "out-of-order append".
func TestChaosReplicaTimeoutMidBatchIdempotentRetry(t *testing.T) {
	deduped0 := mMemoryPointsDeduped.Value()

	// Replica 0's first connection is truncated AFTER the request reaches
	// the server: applied, but unacknowledged. Later connections pass.
	chaosMem, _, chaosAddr := chaosFront(t, chaos.NewScript(chaos.Action{Fault: chaos.Truncate}))
	mems, _, addrs := startReplicaSet(t, 1)
	group := []string{chaosAddr, addrs[0]}

	c := NewClientOptions(ClientOptions{
		Timeout: time.Second,
		Retry:   resilience.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond},
		// Faults are drawn per connection: fresh connection per attempt
		// keeps the schedule aligned (truncate first, pass after).
		MaxIdlePerAddr: -1,
	})
	defer c.Close()
	g := NewReplicaGroup(c, group, 2) // both replicas must ack

	stores := []BatchStore{
		{Series: "chaos/a", Points: [][2]float64{{1, 0.1}, {2, 0.2}}},
		{Series: "chaos/b", Points: [][2]float64{{1, 0.5}}},
		{Series: "chaos/c", Points: [][2]float64{{1, 0.7}, {2, 0.8}, {3, 0.9}}},
	}
	subErrs, err := g.StoreBatch(context.Background(), stores)
	if err != nil {
		t.Fatalf("batch store through truncating replica: %v (subs %v)", err, subErrs)
	}
	for i, e := range subErrs {
		if e != nil {
			t.Fatalf("sub %d: %v", i, e)
		}
	}

	// Exactly one copy of each point on every replica.
	for name, m := range map[string]*Memory{"chaos-fronted": chaosMem, "clean": mems[0]} {
		for _, st := range stores {
			if n := m.Len(st.Series); n != len(st.Points) {
				t.Fatalf("%s replica holds %d points of %s, want exactly %d",
					name, n, st.Series, len(st.Points))
			}
		}
	}
	// The redelivered envelope's points were absorbed by the dedup.
	if got := mMemoryPointsDeduped.Value() - deduped0; got != 6 {
		t.Fatalf("nws_memory_points_deduped_total grew by %d, want 6 (full redelivered batch)", got)
	}
}

// TestChaosOverloadFloodShedsKeepsSensorQuorum is the overload-protection
// headline: one replica of a quorum-2 pair runs with tight ServerLimits and
// is hit with a connection flood plus stalled readers (the chaos stall
// fault) while a sensor daemon keeps storing through it and greedy fetchers
// pile on. The server must shed the excess with retryable busy errors (never
// silently), the fetch client's breaker must open against the drowning
// replica, and once the flood stops the sensor backlog must drain to zero
// measurement loss on BOTH replicas while the breaker recovers through
// half-open back to closed.
func TestChaosOverloadFloodShedsKeepsSensorQuorum(t *testing.T) {
	const (
		maxConns    = 10
		maxInFlight = 1
		queueWait   = 10 * time.Millisecond
	)
	m0 := NewMemory(0)
	// Handler time above the queue-wait budget: with one in-flight slot, any
	// two concurrent requests push the loser past QueueWait into a shed.
	slow := handlerFunc(func(req Request) Response {
		time.Sleep(3 * queueWait)
		return m0.Handle(req)
	})
	srv0 := NewServerLimits(slow, nil, ServerLimits{
		MaxConns:     maxConns,
		MaxInFlight:  maxInFlight,
		QueueWait:    queueWait,
		IdleTimeout:  250 * time.Millisecond,
		WriteTimeout: 250 * time.Millisecond,
	})
	addr0, err := srv0.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv0.Close()
	m1 := NewMemory(0)
	srv1 := NewServer(m1, nil)
	addr1, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()

	// Quorum 2 of 2: every measurement must eventually land on both
	// replicas, including the one being flooded.
	h := simos.New(simos.DefaultConfig())
	h.Spawn(simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: 7200})
	d := NewSensorDaemonReplicas("floodhost", sensors.SimHost{H: h}, []string{addr0, addr1}, 2, sensors.HybridConfig{})
	defer d.Close()

	steps := 0
	step := func() error {
		h.RunUntil(h.Now() + 10)
		err := d.Step()
		steps++
		return err
	}

	// Pre-flood: the healthy path must work.
	for i := 0; i < 3; i++ {
		if err := step(); err != nil {
			t.Fatalf("pre-flood step: %v", err)
		}
	}

	shedConns0 := mServerShed.With(shedConns).Value()
	shedQueue0 := mServerShed.With(shedQueue).Value()
	openT0 := mBreakerTransitions.With(addr0, "open").Value()
	closedT0 := mBreakerTransitions.With(addr0, "closed").Value()

	// Greedy fetchers warmed before the flood so their pooled connections
	// hold seats inside the connection cap and exercise the in-flight queue.
	fetchClient := NewClientOptions(ClientOptions{
		Timeout:        500 * time.Millisecond,
		Retry:          resilience.Policy{MaxAttempts: 1},
		MaxIdlePerAddr: 4, // keep several seats inside the connection cap
	})
	defer fetchClient.Close()
	key := SeriesKey("floodhost", "vmstat")
	if _, err := fetchClient.Fetch(addr0, key, 0, 0, 0); err != nil {
		t.Fatalf("pre-flood fetch: %v", err)
	}

	stopFlood := make(chan struct{})
	var flood sync.WaitGroup
	var busySeen int64
	// Connection flood: holders that dial, park, and redial when cut.
	for i := 0; i < 24; i++ {
		flood.Add(1)
		go func() {
			defer flood.Done()
			for {
				select {
				case <-stopFlood:
					return
				default:
				}
				c, err := net.Dial("tcp", addr0)
				if err == nil {
					c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
					io.Copy(io.Discard, c) // park until the server sheds or idles us out
					c.Close()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	// Fetch pressure through the pooled client: overflows the in-flight
	// queue and must be answered with retryable busy errors.
	for i := 0; i < 8; i++ {
		flood.Add(1)
		go func() {
			defer flood.Done()
			for {
				select {
				case <-stopFlood:
					return
				default:
				}
				if _, err := fetchClient.Fetch(addr0, key, 0, 0, 0); err != nil {
					if IsBusy(err) {
						atomic.AddInt64(&busySeen, 1)
						if resilience.IsTerminal(err) {
							t.Error("busy shed classified terminal (not retryable)")
							return
						}
					}
				}
			}
		}()
	}
	// Stalled readers: requests forwarded, responses never drained.
	stallSched := chaos.NewScript(
		chaos.Action{Fault: chaos.Stall},
		chaos.Action{Fault: chaos.Stall},
		chaos.Action{Fault: chaos.Stall},
	)
	stallProxy := chaos.NewProxy(addr0, stallSched)
	stallAddr, err := stallProxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stallProxy.Close()
	for i := 0; i < 3; i++ {
		flood.Add(1)
		go func() {
			defer flood.Done()
			c := NewClientOptions(ClientOptions{Timeout: 300 * time.Millisecond, Retry: resilience.Policy{MaxAttempts: 1}})
			defer c.Close()
			c.Fetch(stallAddr, key, 0, 0, 0) // times out: the proxy never reads the reply
		}()
	}

	// A separate client with a breaker watches the flooded replica: the
	// sheds and timeouts must trip it open.
	const openFor = 150 * time.Millisecond
	brkClient := NewClientOptions(ClientOptions{
		Timeout: 300 * time.Millisecond,
		Retry:   resilience.Policy{MaxAttempts: 1},
		Breaker: &resilience.BreakerConfig{Window: 6, MinSamples: 3, OpenFor: openFor},
	})
	defer brkClient.Close()

	// Under the flood: keep the sensor storing (failures are buffered by
	// store-and-forward and are acceptable here) until the breaker opens.
	deadline := time.Now().Add(15 * time.Second)
	for brkClient.BreakerState(addr0) != resilience.BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened under the flood")
		}
		step() // errors tolerated: the backlog buffers them
		brkClient.Fetch(addr0, key, 0, 0, 0)
		time.Sleep(5 * time.Millisecond)
	}

	close(stopFlood)
	flood.Wait()
	stallProxy.Close()

	if got := mServerShed.With(shedConns).Value() - shedConns0; got == 0 {
		t.Error("flood produced no connection sheds")
	}
	if got := mServerShed.With(shedQueue).Value() - shedQueue0; got == 0 {
		t.Error("fetch pressure produced no queue sheds")
	}
	if atomic.LoadInt64(&busySeen) == 0 {
		t.Error("no fetcher ever observed a retryable busy error")
	}
	if got := mBreakerTransitions.With(addr0, "open").Value() - openT0; got == 0 {
		t.Error("nws_client_breaker_transitions_total{open} did not grow")
	}

	// Drain: with the flood gone, the backlog must flush and every
	// measurement must land on both replicas — zero loss, exactly once.
	drained := false
	for i := 0; i < 100; i++ {
		err := step()
		if err == nil && d.Backlogged() == 0 {
			drained = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !drained {
		t.Fatalf("backlog never drained after the flood: %d points still buffered", d.Backlogged())
	}
	for _, method := range []string{"load_average", "vmstat", "nws_hybrid"} {
		k := SeriesKey("floodhost", method)
		if n := m0.Len(k); n != steps {
			t.Errorf("flooded replica holds %d %s points, want %d (measurement loss)", n, method, steps)
		}
		if n := m1.Len(k); n != steps {
			t.Errorf("healthy replica holds %d %s points, want %d (measurement loss)", n, method, steps)
		}
	}

	// Breaker recovery: after OpenFor a probe is admitted (half-open) and a
	// now-healthy replica closes the circuit.
	time.Sleep(openFor + 20*time.Millisecond)
	recovered := false
	recoverDeadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(recoverDeadline) {
		if _, err := brkClient.Fetch(addr0, key, 0, 0, 0); err == nil {
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("breaker client never recovered after the flood cleared")
	}
	if got := brkClient.BreakerState(addr0); got != resilience.BreakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", got)
	}
	if got := mBreakerTransitions.With(addr0, "closed").Value() - closedT0; got == 0 {
		t.Error("nws_client_breaker_transitions_total{closed} did not grow")
	}
}
