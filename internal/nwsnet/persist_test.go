package nwsnet

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestPersistentMemoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pm, err := NewPersistentMemory(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, pm)
	c := NewClient(time.Second)
	pts := [][2]float64{{10, 0.9}, {20, 0.85}, {30, 0.8}}
	if err := c.Store(addr, "thing1/cpu/nws_hybrid", pts); err != nil {
		t.Fatal(err)
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the series must come back from the log.
	pm2, err := NewPersistentMemory(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer pm2.Close()
	addr2 := startServer(t, pm2)
	got, err := c.Fetch(addr2, "thing1/cpu/nws_hybrid", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != pts[0] || got[2] != pts[2] {
		t.Fatalf("replayed points = %v", got)
	}
	// Appending after replay must continue the series.
	if err := c.Store(addr2, "thing1/cpu/nws_hybrid", [][2]float64{{40, 0.7}}); err != nil {
		t.Fatal(err)
	}
	got, err = c.Fetch(addr2, "thing1/cpu/nws_hybrid", 0, 0, 0)
	if err != nil || len(got) != 4 {
		t.Fatalf("after append: %v, %v", got, err)
	}
}

func TestPersistentMemoryValidationStillApplies(t *testing.T) {
	pm, err := NewPersistentMemory(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pm.Close()
	resp := pm.Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{5, 1}}})
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	resp = pm.Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{1, 1}}})
	if resp.Error != "" {
		t.Fatalf("stale store errored instead of deduping: %v", resp.Error)
	}
	// The deduped point may land in the log (replay dedups it again), but it
	// must not survive into the replayed series.
	pm.Close()
	pm2, err := NewPersistentMemory(0, pm.dir)
	if err != nil {
		t.Fatal(err)
	}
	defer pm2.Close()
	if pm2.Len("k") != 1 {
		t.Fatalf("log contains %d points, want 1", pm2.Len("k"))
	}
}

func TestPersistentMemoryCorruptTrailingLineRecovers(t *testing.T) {
	// A corrupt trailing line (whatever the flavor of corruption) must not
	// keep the memory from starting: replay truncates back to the last valid
	// line, counts the truncation, and keeps serving.
	for _, tail := range []string{"garbage\n", "x,1\n", "1,x\n"} {
		dir := t.TempDir()
		content := "10,0.9\n20,0.8\n" + tail
		if err := os.WriteFile(filepath.Join(dir, "k.log"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		trunc0 := mMemoryLogTruncations.Value()
		pm, err := NewPersistentMemory(0, dir)
		if err != nil {
			t.Fatalf("tail %q: replay failed: %v", tail, err)
		}
		if got := pm.Len("k"); got != 2 {
			t.Fatalf("tail %q: replayed %d points, want 2", tail, got)
		}
		if got := mMemoryLogTruncations.Value() - trunc0; got != 1 {
			t.Fatalf("tail %q: truncations delta = %d, want 1", tail, got)
		}
		data, err := os.ReadFile(filepath.Join(dir, "k.log"))
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != "10,0.9\n20,0.8\n" {
			t.Fatalf("tail %q: log after recovery = %q, want the valid prefix", tail, data)
		}
		pm.Close()
	}
}

func TestPersistentMemoryTornTrailingLineRecovers(t *testing.T) {
	// Crash mid-append: the final line is missing its newline. Even when the
	// torn prefix happens to parse (the writer always terminates records, so
	// an unterminated line cannot be trusted), replay must cut it and restart
	// cleanly — and the restarted memory must keep accepting appends.
	dir := t.TempDir()
	pm, err := NewPersistentMemory(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	resp := pm.Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{10, 0.9}, {20, 0.8}}})
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(pm.logPath("k"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("30,0.7"); err != nil { // half-line: no newline
		t.Fatal(err)
	}
	f.Close()

	trunc0 := mMemoryLogTruncations.Value()
	pm2, err := NewPersistentMemory(0, dir)
	if err != nil {
		t.Fatalf("replay after torn append failed: %v", err)
	}
	defer pm2.Close()
	if got := pm2.Len("k"); got != 2 {
		t.Fatalf("replayed %d points, want 2 (torn line dropped)", got)
	}
	if got := mMemoryLogTruncations.Value() - trunc0; got != 1 {
		t.Fatalf("truncations delta = %d, want 1", got)
	}
	resp = pm2.Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{30, 0.7}}})
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	pm2.Close()
	pm3, err := NewPersistentMemory(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer pm3.Close()
	if got := pm3.Len("k"); got != 3 {
		t.Fatalf("after re-append and restart: %d points, want 3", got)
	}
}

func TestPersistentMemoryCleanLogNotTruncated(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "k.log"), []byte("10,0.9\n20,0.8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	trunc0 := mMemoryLogTruncations.Value()
	pm, err := NewPersistentMemory(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer pm.Close()
	if got := mMemoryLogTruncations.Value() - trunc0; got != 0 {
		t.Fatalf("clean log counted %d truncations", got)
	}
}

func TestPersistentMemoryCompact(t *testing.T) {
	dir := t.TempDir()
	pm, err := NewPersistentMemory(3, dir) // keep only 3 points
	if err != nil {
		t.Fatal(err)
	}
	defer pm.Close()
	for i := 0; i < 10; i++ {
		resp := pm.Handle(Request{Op: OpStore, Series: "k",
			Points: [][2]float64{{float64(i), float64(i)}}})
		if resp.Error != "" {
			t.Fatal(resp.Error)
		}
	}
	if err := pm.Compact("k"); err != nil {
		t.Fatal(err)
	}
	pts, trunc, err := readLog(pm.logPath("k"))
	if err != nil {
		t.Fatal(err)
	}
	if trunc >= 0 {
		t.Fatalf("compacted log reported damage at offset %d", trunc)
	}
	if len(pts) != 3 || pts[0][0] != 7 {
		t.Fatalf("compacted log = %v, want the last 3 points", pts)
	}
	if err := pm.Compact("missing"); err == nil {
		t.Fatal("compact of unknown series accepted")
	}
	// The memory must still serve and append after compaction.
	resp := pm.Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{10, 10}}})
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
}

func TestPersistentMemoryAutoCompaction(t *testing.T) {
	comp0 := mMemoryCompactions.Value()
	dir := t.TempDir()
	const capacity = 10
	pm, err := NewPersistentMemory(capacity, dir)
	if err != nil {
		t.Fatal(err)
	}

	// 25 single-point appends: the log would hold 25 lines, which exceeds
	// 2 x capacity = 20, so compaction must have fired along the way.
	for i := 0; i < 25; i++ {
		resp := pm.Handle(Request{Op: OpStore, Series: "k",
			Points: [][2]float64{{float64(i), float64(i) / 25}}})
		if resp.Error != "" {
			t.Fatal(resp.Error)
		}
	}
	if got := mMemoryCompactions.Value() - comp0; got != 1 {
		t.Errorf("compactions delta = %d, want 1", got)
	}
	logPts, _, err := readLog(pm.logPath("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(logPts) > 2*capacity {
		t.Fatalf("log holds %d points after auto-compaction, want <= %d", len(logPts), 2*capacity)
	}

	// A restart after compaction must replay exactly the retained window.
	want := pm.Handle(Request{Op: OpFetch, Series: "k"}).Points
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}
	pm2, err := NewPersistentMemory(capacity, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer pm2.Close()
	got := pm2.Handle(Request{Op: OpFetch, Series: "k"}).Points
	if len(got) != len(want) {
		t.Fatalf("replayed %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed point %d = %v, want %v", i, got[i], want[i])
		}
	}
	// And appending on the restarted memory keeps working and counting
	// toward the next compaction.
	resp := pm2.Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{100, 1}}})
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
}

func TestPersistentMemoryKeyEscaping(t *testing.T) {
	dir := t.TempDir()
	pm, err := NewPersistentMemory(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "host.with/weird:chars/cpu/vmstat"
	resp := pm.Handle(Request{Op: OpStore, Series: key, Points: [][2]float64{{1, 0.5}}})
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	pm.Close()
	pm2, err := NewPersistentMemory(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer pm2.Close()
	if pm2.Len(key) != 1 {
		t.Fatalf("escaped key not replayed: %d points", pm2.Len(key))
	}
}

func TestNameServerTTLExpiry(t *testing.T) {
	ns := NewNameServerTTL(time.Minute)
	now := time.Unix(1000, 0)
	ns.now = func() time.Time { return now }

	reg := Registration{Name: "s1", Kind: KindSensor, Addr: "a:1"}
	if resp := ns.Handle(Request{Op: OpRegister, Reg: reg}); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if resp := ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: "s1"}}); resp.Error != "" {
		t.Fatalf("fresh entry not found: %s", resp.Error)
	}

	now = now.Add(2 * time.Minute)
	if resp := ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: "s1"}}); resp.Error == "" {
		t.Fatal("stale entry still resolvable")
	}
	if resp := ns.Handle(Request{Op: OpList}); len(resp.Entries) != 0 {
		t.Fatalf("stale entry listed: %v", resp.Entries)
	}

	// Re-registration (the heartbeat) revives it.
	if resp := ns.Handle(Request{Op: OpRegister, Reg: reg}); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if resp := ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: "s1"}}); resp.Error != "" {
		t.Fatal("heartbeat did not revive entry")
	}
}

func TestNameServerZeroTTLNeverExpires(t *testing.T) {
	ns := NewNameServer()
	now := time.Unix(0, 0)
	ns.now = func() time.Time { return now }
	ns.Handle(Request{Op: OpRegister, Reg: Registration{Name: "x", Kind: KindMemory, Addr: "a:1"}})
	now = now.Add(1000 * time.Hour)
	if resp := ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: "x"}}); resp.Error != "" {
		t.Fatal("entry expired with zero TTL")
	}
}
