package nwsnet

import (
	"context"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"nwscpu/internal/resilience"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
)

// fastClient returns a client with snappy retries for failure-path tests.
func fastClient() *Client {
	return NewClientOptions(ClientOptions{
		Timeout: time.Second,
		Retry:   resilience.Policy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond},
	})
}

// startReplicaSet runs n memory servers and returns them with their
// addresses. The servers are NOT auto-cleaned so tests can kill them.
func startReplicaSet(t *testing.T, n int) ([]*Memory, []*Server, []string) {
	t.Helper()
	mems := make([]*Memory, n)
	srvs := make([]*Server, n)
	addrs := make([]string, n)
	for i := range mems {
		mems[i] = NewMemory(0)
		srvs[i] = NewServer(mems[i], nil)
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		s := srvs[i]
		t.Cleanup(func() { s.Close() })
	}
	return mems, srvs, addrs
}

func TestReplicaGroupQuorumDefaults(t *testing.T) {
	g := NewReplicaGroup(fastClient(), []string{"a:1", "b:1", "c:1"}, 0)
	if g.Quorum() != 2 {
		t.Fatalf("majority of 3 = %d, want 2", g.Quorum())
	}
	if q := NewReplicaGroup(fastClient(), []string{"a:1"}, 0).Quorum(); q != 1 {
		t.Fatalf("majority of 1 = %d, want 1", q)
	}
	if q := NewReplicaGroup(fastClient(), []string{"a:1", "b:1"}, 99).Quorum(); q != 2 {
		t.Fatalf("oversized quorum = %d, want clamped to 2", q)
	}
	if got := g.Addrs(); len(got) != 3 || got[0] != "a:1" {
		t.Fatalf("Addrs = %v", got)
	}
}

func TestReplicaGroupWritesFanOut(t *testing.T) {
	mems, _, addrs := startReplicaSet(t, 3)
	g := NewReplicaGroup(fastClient(), addrs, 0)
	ctx := context.Background()

	if err := g.Store(ctx, "k", [][2]float64{{1, 0.5}, {2, 0.6}}); err != nil {
		t.Fatal(err)
	}
	for i, m := range mems {
		if m.Len("k") != 2 {
			t.Fatalf("replica %d holds %d points, want 2", i, m.Len("k"))
		}
	}
	for _, h := range g.Health() {
		if !h.Healthy {
			t.Fatalf("replica %s unhealthy after clean write", h.Addr)
		}
	}
}

func TestReplicaGroupQuorumSurvivesOneDeadReplica(t *testing.T) {
	mems, srvs, addrs := startReplicaSet(t, 3)
	g := NewReplicaGroup(fastClient(), addrs, 0)
	ctx := context.Background()

	if err := srvs[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Store(ctx, "k", [][2]float64{{1, 0.5}}); err != nil {
		t.Fatalf("store with 2/3 replicas up: %v", err)
	}
	if mems[1].Len("k") != 1 || mems[2].Len("k") != 1 {
		t.Fatal("surviving replicas missed the write")
	}
	h := g.Health()
	if h[0].Healthy || !h[1].Healthy || !h[2].Healthy {
		t.Fatalf("health after dead primary = %+v", h)
	}
	if got := mReplicaHealthy.With(addrs[0]).Value(); got != 0 {
		t.Fatalf("nws_replica_healthy{%s} = %g, want 0", addrs[0], got)
	}
}

func TestReplicaGroupQuorumFailure(t *testing.T) {
	qf0 := mReplicaQuorumFailures.Value()
	_, srvs, addrs := startReplicaSet(t, 3)
	g := NewReplicaGroup(fastClient(), addrs, 0)
	ctx := context.Background()

	srvs[0].Close()
	srvs[1].Close()
	if err := g.Store(ctx, "k", [][2]float64{{1, 0.5}}); err == nil {
		t.Fatal("store with 1/3 replicas met a quorum of 2")
	}
	if got := mReplicaQuorumFailures.Value() - qf0; got != 1 {
		t.Fatalf("quorum failure delta = %d, want 1", got)
	}
}

func TestReplicaGroupReadFailover(t *testing.T) {
	fo0 := mReplicaFailovers.Value()
	_, srvs, addrs := startReplicaSet(t, 3)
	g := NewReplicaGroup(fastClient(), addrs, 0)
	ctx := context.Background()

	if err := g.Store(ctx, "k", [][2]float64{{1, 0.5}}); err != nil {
		t.Fatal(err)
	}
	// Kill the preferred replica: the read must fail over.
	srvs[0].Close()
	pts, err := g.Fetch(ctx, "k", 0, 0, 0)
	if err != nil || len(pts) != 1 {
		t.Fatalf("failover fetch = %v, %v", pts, err)
	}
	if got := mReplicaFailovers.Value() - fo0; got != 1 {
		t.Fatalf("failover delta = %d, want 1", got)
	}
	// The failed replica is demoted: the next read goes straight to a
	// healthy one and does not count another failover.
	if _, err := g.Fetch(ctx, "k", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := mReplicaFailovers.Value() - fo0; got != 1 {
		t.Fatalf("failover delta after demotion = %d, want still 1", got)
	}
	names, err := g.Series(ctx)
	if err != nil || len(names) != 1 || names[0] != "k" {
		t.Fatalf("Series through failover = %v, %v", names, err)
	}
}

func TestReplicaGroupProtocolErrorStaysHealthy(t *testing.T) {
	_, _, addrs := startReplicaSet(t, 2)
	g := NewReplicaGroup(fastClient(), addrs, 0)
	ctx := context.Background()

	if _, err := g.Fetch(ctx, "missing", 0, 0, 0); err == nil {
		t.Fatal("fetch of unknown series succeeded")
	}
	for _, h := range g.Health() {
		if !h.Healthy {
			t.Fatalf("protocol rejection marked %s unhealthy", h.Addr)
		}
	}
}

func TestReplicaGroupDivergedReplicaFallsThrough(t *testing.T) {
	// A replica that missed a write answers "unknown series"; the read must
	// fall through to one that has it.
	mems, _, addrs := startReplicaSet(t, 2)
	g := NewReplicaGroup(fastClient(), addrs, 0)
	ctx := context.Background()

	// Write directly to replica 1 only, simulating divergence.
	if resp := mems[1].Handle(Request{Op: OpStore, Series: "d", Points: [][2]float64{{1, 1}}}); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	pts, err := g.Fetch(ctx, "d", 0, 0, 0)
	if err != nil || len(pts) != 1 {
		t.Fatalf("diverged fetch = %v, %v", pts, err)
	}
}

func TestReplicaGroupRedeliveryConverges(t *testing.T) {
	// Redelivering a backlog batch must converge on a replica that already
	// holds a prefix of it (it acked during a failed quorum round): the
	// memory server dedups points at or before its frontier instead of
	// wedging every future store on "out-of-order append".
	mems, _, addrs := startReplicaSet(t, 2)
	g := NewReplicaGroup(fastClient(), addrs, 2) // both replicas must ack
	ctx := context.Background()

	// Replica 0 is ahead: it accepted [1, 2] during a round that missed
	// quorum, so the writer still has those points in its backlog.
	if resp := mems[0].Handle(Request{Op: OpStore, Series: "k",
		Points: [][2]float64{{1, 0.1}, {2, 0.2}}}); resp.Error != "" {
		t.Fatal(resp.Error)
	}

	// The redelivered batch overlaps replica 0 and is new to replica 1.
	batch := [][2]float64{{1, 0.1}, {2, 0.2}, {3, 0.3}}
	if err := g.Store(ctx, "k", batch); err != nil {
		t.Fatalf("redelivered store did not converge: %v", err)
	}
	for i, m := range mems {
		if m.Len("k") != 3 {
			t.Fatalf("replica %d holds %d points, want 3", i, m.Len("k"))
		}
	}

	// A fully stale batch (older than every replica) is absorbed by the
	// server-side dedup: no error, and no replica's series changes.
	if err := g.Store(ctx, "k", [][2]float64{{0, 0.9}}); err != nil {
		t.Fatalf("stale batch errored instead of deduping: %v", err)
	}
	for i, m := range mems {
		if m.Len("k") != 3 {
			t.Fatalf("replica %d holds %d points after stale batch, want 3", i, m.Len("k"))
		}
	}
}

func TestSensorBacklogDrainsAfterQuorumLoss(t *testing.T) {
	// The end-to-end wedge: quorum lost with one survivor, the survivor
	// accepts early backlog rounds and gets ahead of the retried batch;
	// when a second replica returns, the drain must converge everywhere.
	mems, srvs, addrs := startReplicaSet(t, 3)

	h := simos.New(simos.DefaultConfig())
	h.Spawn(simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: 3600})
	d := NewSensorDaemonReplicas("qhost", sensors.SimHost{H: h}, addrs, 0, sensors.HybridConfig{})
	defer d.Close()

	step := func(wantErr bool) {
		t.Helper()
		h.RunUntil(h.Now() + 10)
		err := d.Step()
		if wantErr && err == nil {
			t.Fatal("step met quorum with 1/3 replicas up")
		}
		if !wantErr && err != nil {
			t.Fatal(err)
		}
	}

	step(false)
	step(false)
	srvs[1].Close()
	srvs[2].Close()
	for i := 0; i < 3; i++ {
		step(true) // survivor 0 accepts what it can; quorum still fails
	}
	if d.Backlogged() == 0 {
		t.Fatal("no backlog accumulated during quorum loss")
	}

	// One replica returns on its old address.
	srv1b := NewServer(mems[1], nil)
	if _, err := srv1b.Listen(addrs[1]); err != nil {
		t.Skipf("could not rebind %s: %v", addrs[1], err)
	}
	defer srv1b.Close()

	step(false) // backlog + fresh measurement must reach quorum again
	if n := d.Backlogged(); n != 0 {
		t.Fatalf("backlog not drained after quorum recovery: %d left", n)
	}
	// Both quorum members hold the complete series through the final step.
	key := SeriesKey("qhost", "vmstat")
	for _, i := range []int{0, 1} {
		pts, err := fastClient().Fetch(addrs[i], key, 0, 0, 0)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		if last := pts[len(pts)-1][0]; last != h.Now() {
			t.Fatalf("replica %d ends at t=%v, want %v (measurements lost)", i, last, h.Now())
		}
		// Every measurement timestamp must be present (duplicates from
		// redelivery are fine; gaps are not).
		seen := map[float64]bool{}
		for _, p := range pts {
			seen[p[0]] = true
		}
		if len(seen) != 6 {
			t.Fatalf("replica %d holds %d distinct timestamps, want 6", i, len(seen))
		}
	}
}

func TestReplicaGroupCheckHealthRecovers(t *testing.T) {
	m := NewMemory(0)
	srv := NewServer(m, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g := NewReplicaGroup(fastClient(), []string{addr}, 0)
	ctx := context.Background()

	srv.Close()
	if err := g.Store(ctx, "k", [][2]float64{{1, 1}}); err == nil {
		t.Fatal("store to dead replica succeeded")
	}
	if g.Health()[0].Healthy {
		t.Fatal("dead replica still healthy")
	}

	srv2 := NewServer(m, nil)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	h := g.CheckHealth(ctx)
	if !h[0].Healthy {
		t.Fatal("CheckHealth did not restore the revived replica")
	}
	if got := mReplicaHealthy.With(addr).Value(); got != 1 {
		t.Fatalf("nws_replica_healthy{%s} = %g, want 1", addr, got)
	}
}

func TestReplicaOrderingConsultsBreakerBeforeHealth(t *testing.T) {
	// Replica A is preferred by configuration and still marked healthy, but
	// its circuit breaker is open: failover must order it last and serve
	// reads from B without spending an attempt on A — and a breaker denial
	// must not flip A's health mark (it is not an observation of A).
	var dials int64
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			atomic.AddInt64(&dials, 1)
			c.Close()
		}
	}()
	deadAddr := l.Addr().String()

	mems, _, addrs := startReplicaSet(t, 1)
	liveAddr := addrs[0]
	mems[0].Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{1, 0.5}}})

	c := NewClientOptions(ClientOptions{
		Timeout: 500 * time.Millisecond,
		Retry:   resilience.Policy{MaxAttempts: 1},
		Breaker: &resilience.BreakerConfig{Window: 2, MinSamples: 2, OpenFor: time.Hour},
	})
	g := NewReplicaGroup(c, []string{deadAddr, liveAddr}, 1)

	// Trip A's breaker directly (two observed failures) while its health
	// mark still says healthy from initialization.
	for i := 0; i < 2; i++ {
		c.breakerFor(deadAddr).Record(false)
	}
	if got := c.BreakerState(deadAddr); got != resilience.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}
	if !g.Health()[0].Healthy {
		t.Fatal("test setup: A should still be marked healthy")
	}

	ord := g.ordered()
	if ord[0].addr != liveAddr {
		t.Fatalf("read order starts with %s, want the live replica %s (open breaker must sort last)", ord[0].addr, liveAddr)
	}

	before := atomic.LoadInt64(&dials)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		pts, err := g.Fetch(ctx, "k", 0, 0, 0)
		if err != nil || len(pts) != 1 {
			t.Fatalf("fetch %d = %v, %v; want the stored point", i, pts, err)
		}
	}
	if got := atomic.LoadInt64(&dials); got != before {
		t.Fatalf("fetches dialed the open-breaker replica %d times", got-before)
	}
	if !g.Health()[0].Healthy {
		t.Fatal("breaker denial flipped A's health mark")
	}
}
