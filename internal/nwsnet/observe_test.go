package nwsnet

import (
	"bufio"
	"bytes"
	"log"
	"net"
	"strings"
	"testing"
	"time"

	"nwscpu/internal/metrics"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
)

// Metric families are package-level and shared across tests, so every
// assertion here is on deltas, not absolute values.

func TestMemoryMetrics(t *testing.T) {
	stored0 := mMemoryPointsStored.Value()
	fetched0 := mMemoryPointsFetched.Value()
	evicted0 := mMemoryPointsEvicted.Value()
	storeReqs0 := mMemoryRequests.With("store").Value()
	errs0 := mMemoryErrors.With("fetch").Value()

	m := NewMemory(5)
	pts := make([][2]float64, 8)
	for i := range pts {
		pts[i] = [2]float64{float64(i), 0.5}
	}
	if resp := m.Handle(Request{Op: OpStore, Series: "k", Points: pts}); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if got := mMemoryPointsStored.Value() - stored0; got != 8 {
		t.Errorf("points stored delta = %d, want 8", got)
	}
	if got := mMemoryPointsEvicted.Value() - evicted0; got != 3 { // capacity 5
		t.Errorf("points evicted delta = %d, want 3", got)
	}
	if got := mMemoryRequests.With("store").Value() - storeReqs0; got != 1 {
		t.Errorf("store requests delta = %d, want 1", got)
	}

	if resp := m.Handle(Request{Op: OpFetch, Series: "k"}); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if got := mMemoryPointsFetched.Value() - fetched0; got != 5 {
		t.Errorf("points fetched delta = %d, want 5", got)
	}

	if resp := m.Handle(Request{Op: OpFetch, Series: "nope"}); resp.Error == "" {
		t.Fatal("fetch of unknown series succeeded")
	}
	if got := mMemoryErrors.With("fetch").Value() - errs0; got != 1 {
		t.Errorf("fetch errors delta = %d, want 1", got)
	}

	if got := mMemoryLatency.With("store").Count(); got == 0 {
		t.Error("store latency histogram has no observations")
	}
}

// Op strings come straight off the wire: a NUL byte must not crash the
// server (it used to panic in the metrics layer — a remote DoS), and
// arbitrary ops must land in the single "other" label instead of minting
// one time series each.
func TestServerWireOpsBoundedAndNULSafe(t *testing.T) {
	srv := NewServer(NewMemory(0), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	other0 := mServerRequests.With("other").Value()
	memOther0 := mMemoryRequests.With("other").Value()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	bogus := []Op{"a\x00b", "bogus-op-1", "bogus-op-2"}
	for _, op := range bogus {
		if err := writeMsg(bw, Request{Op: op}); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := readMsg(br, &resp); err != nil {
			t.Fatalf("op %q killed the connection: %v", op, err)
		}
		if resp.Error == "" {
			t.Errorf("op %q unexpectedly succeeded", op)
		}
	}
	// The server survived; a known op on the same connection still works.
	if err := writeMsg(bw, Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var pong Response
	if err := readMsg(br, &pong); err != nil || pong.Error != "" {
		t.Fatalf("ping after malformed ops failed: %v %q", err, pong.Error)
	}

	if got := mServerRequests.With("other").Value() - other0; got != uint64(len(bogus)) {
		t.Errorf("server other-op delta = %d, want %d", got, len(bogus))
	}
	if got := mMemoryRequests.With("other").Value() - memOther0; got != uint64(len(bogus)) {
		t.Errorf("memory other-op delta = %d, want %d", got, len(bogus))
	}
	var sb strings.Builder
	if err := metrics.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "bogus-op-1") {
		t.Error("unknown op minted its own time series")
	}
}

func TestSensorDaemonDropAccountingAndOutageLog(t *testing.T) {
	m := NewMemory(0)
	srv := NewServer(m, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	h := simos.New(simos.DefaultConfig())
	d := NewSensorDaemon("drophost", sensors.SimHost{H: h}, addr, sensors.HybridConfig{})
	defer d.Close()
	d.backlogCap = 4
	var buf bytes.Buffer
	d.SetLogger(log.New(&buf, "", 0))

	dropped0 := mSensorBacklogDropped.Value()
	outages0 := mSensorOutages.Value()
	failures0 := mSensorDeliveryFailures.Value()

	// One healthy delivery, then an outage long enough to overflow the cap.
	h.RunUntil(h.Now() + 10)
	if err := d.Step(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	const failedSteps = 7
	for i := 0; i < failedSteps; i++ {
		h.RunUntil(h.Now() + 10)
		if d.Step() == nil {
			t.Fatal("step with dead memory reported success")
		}
	}

	// Cap 4, 7 buffered epochs: 3 drops per sensor across 3 sensors.
	if got := mSensorBacklogDropped.Value() - dropped0; got != 9 {
		t.Errorf("dropped delta = %d, want 9", got)
	}
	if got := mSensorOutages.Value() - outages0; got != 1 {
		t.Errorf("outages delta = %d, want 1 (one outage, not one per step)", got)
	}
	if got := mSensorDeliveryFailures.Value() - failures0; got != 3*failedSteps {
		t.Errorf("delivery failures delta = %d, want %d", got, 3*failedSteps)
	}
	if got := strings.Count(buf.String(), "backlog full"); got != 1 {
		t.Errorf("backlog-full logged %d times, want exactly once per outage:\n%s", got, buf.String())
	}
	if got := mSensorBacklog.With("drophost").Value(); got != 12 { // cap 4 x 3 sensors
		t.Errorf("backlog gauge = %g, want 12", got)
	}

	// Recovery: backfill succeeds, and the outage summary reports the loss.
	srv2 := NewServer(m, nil)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	h.RunUntil(h.Now() + 10)
	if err := d.Step(); err != nil {
		t.Fatalf("step after recovery: %v", err)
	}
	if !strings.Contains(buf.String(), "delivery recovered; 9 measurements were dropped") {
		t.Errorf("missing recovery summary:\n%s", buf.String())
	}
	if got := mSensorBacklog.With("drophost").Value(); got != 0 {
		t.Errorf("backlog gauge after recovery = %g, want 0", got)
	}

	// A second outage logs again (the once-per-outage flag reset).
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		h.RunUntil(h.Now() + 10)
		_ = d.Step()
	}
	if got := mSensorOutages.Value() - outages0; got != 2 {
		t.Errorf("outages after second outage = %d, want 2", got)
	}
	if got := strings.Count(buf.String(), "backlog full"); got != 2 {
		t.Errorf("backlog-full logged %d times across two outages, want 2:\n%s", got, buf.String())
	}
}

func TestNameServerMetrics(t *testing.T) {
	regs0 := mNSRegistrations.Value()
	hits0 := mNSLookups.With("hit").Value()
	misses0 := mNSLookups.With("miss").Value()
	expiries0 := mNSExpiries.Value()

	base := time.Now()
	cur := base
	ns := NewNameServerTTL(100 * time.Millisecond)
	ns.now = func() time.Time { return cur }

	reg := Registration{Name: "a/cpu", Kind: KindSensor, Addr: "x:1"}
	if resp := ns.Handle(Request{Op: OpRegister, Reg: reg}); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if got := mNSRegistrations.Value() - regs0; got != 1 {
		t.Errorf("registrations delta = %d, want 1", got)
	}
	if resp := ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: "a/cpu"}}); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if got := mNSLookups.With("hit").Value() - hits0; got != 1 {
		t.Errorf("hit delta = %d, want 1", got)
	}

	// Let the TTL lapse: the next lookup reaps and misses.
	cur = base.Add(200 * time.Millisecond)
	if resp := ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: "a/cpu"}}); resp.Error == "" {
		t.Fatal("expired entry still resolves")
	}
	if got := mNSLookups.With("miss").Value() - misses0; got != 1 {
		t.Errorf("miss delta = %d, want 1", got)
	}
	if got := mNSExpiries.Value() - expiries0; got != 1 {
		t.Errorf("expiries delta = %d, want 1", got)
	}
	// Looking up again must not double-count the same expiry.
	_ = ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: "a/cpu"}})
	if got := mNSExpiries.Value() - expiries0; got != 1 {
		t.Errorf("expiries after repeat lookup = %d, want still 1", got)
	}
}
