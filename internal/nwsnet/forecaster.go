package nwsnet

import (
	"context"
	"sync"
	"time"

	"nwscpu/internal/forecast"
	"nwscpu/internal/resilience"
)

// ForecasterService answers forecast queries: for each requested series it
// keeps an incremental forecasting engine fed from the memory server, so
// repeated queries only transfer the new points. With a replicated memory
// group, fetches fail over to the next healthy replica, so one dead memory
// server costs a query at most one extra attempt.
// FetchBackend is the read-plane contract a ForecasterService pulls
// history through: satisfied by both a ReplicaGroup (fixed replica set with
// health-ordered failover) and a ClusterClient (ring-routed reads across a
// partitioned cluster), so the incremental-engine logic is identical across
// deployments.
type FetchBackend interface {
	Fetch(ctx context.Context, key string, from, to float64, max int) ([][2]float64, error)
	FetchBatch(ctx context.Context, fetches []BatchFetch) ([]FetchResult, error)
	Series(ctx context.Context) ([]string, error)
	Health() []ReplicaHealth
}

type ForecasterService struct {
	group   FetchBackend
	timeout time.Duration

	mu      sync.Mutex
	engines map[string]*engineState
}

type engineState struct {
	eng   *forecast.Engine
	lastT float64
}

// NewForecasterService returns a forecaster pulling from the memory server
// at memoryAddr. timeout bounds each memory call (0 selects 5 s).
func NewForecasterService(memoryAddr string, timeout time.Duration) *ForecasterService {
	return NewForecasterServiceReplicas([]string{memoryAddr}, timeout)
}

// NewForecasterServiceReplicas returns a forecaster pulling from a
// replicated memory group, reads failing over in replica-health order.
// timeout bounds each memory call attempt (0 selects 5 s). It speaks the
// default binary codec; NewForecasterServiceReplicasCodec selects.
func NewForecasterServiceReplicas(memAddrs []string, timeout time.Duration) *ForecasterService {
	return NewForecasterServiceReplicasCodec(memAddrs, timeout, CodecBinary)
}

// NewForecasterServiceReplicasCodec is NewForecasterServiceReplicas with an
// explicit wire codec for the forecaster's memory fetches — the escape
// hatch for pulling from a pre-v2 memory server that only speaks JSON lines.
func NewForecasterServiceReplicasCodec(memAddrs []string, timeout time.Duration, codec Codec) *ForecasterService {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	client := NewClientOptions(ClientOptions{
		Timeout: timeout,
		Codec:   codec,
		// One in-call retry per replica; replica failover is the main
		// recovery path for reads.
		Retry: resilience.Policy{MaxAttempts: 2, BaseDelay: 25 * time.Millisecond},
		// Probe-limiter mode (see NewSensorDaemonReplicas): never delays a
		// sequential caller, but bounds concurrent hammering of a replica
		// that keeps failing, and lets ReplicaGroup order open-breaker
		// replicas last.
		Breaker: &resilience.BreakerConfig{OpenFor: -1},
	})
	return &ForecasterService{
		group:   NewReplicaGroup(client, memAddrs, 0),
		timeout: timeout,
		engines: make(map[string]*engineState),
	}
}

// NewForecasterServiceCluster returns a forecaster pulling from a
// partitioned memory cluster: fetches route by series key to the ring
// owners under the membership view served by the registry at nsAddr,
// failing over across a key's owners and refreshing the routing table from
// ownership redirects. timeout bounds each memory call attempt (0 selects
// 5 s).
func NewForecasterServiceCluster(nsAddr string, timeout time.Duration) *ForecasterService {
	f := NewForecasterServiceReplicasCodec(nil, timeout, CodecBinary)
	rg, _ := f.group.(*ReplicaGroup)
	f.group = NewClusterClient(rg.Client(), nsAddr)
	return f
}

// Replicas reports the health of the forecaster's memory replica group.
func (f *ForecasterService) Replicas() []ReplicaHealth { return f.group.Health() }

// Warm primes per-series engines by batch-fetching every series' unseen
// history in one round trip per replica attempt instead of one fetch per
// series — the history catch-up a restarted forecaster owes for each series
// before its first query. keys == nil warms every series the memory
// currently holds. It returns the number of points consumed; per-series
// rejections are skipped, and the error is non-nil only when the memory
// group was unreachable.
func (f *ForecasterService) Warm(ctx context.Context, keys []string) (int, error) {
	if keys == nil {
		var err error
		keys, err = f.group.Series(ctx)
		if err != nil {
			return 0, err
		}
	}
	if len(keys) == 0 {
		return 0, nil
	}
	fetches := make([]BatchFetch, len(keys))
	states := make([]*engineState, len(keys))
	f.mu.Lock()
	for i, k := range keys {
		states[i] = f.engine(k)
		fetches[i] = BatchFetch{Series: k, From: nextAfter(states[i].lastT)}
	}
	f.mu.Unlock()

	results, err := f.group.FetchBatch(ctx, fetches)
	if err != nil {
		return 0, err
	}
	total := 0
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, res := range results {
		if res.Err != nil {
			continue
		}
		st := states[i]
		for _, tv := range res.Points {
			if tv[0] <= st.lastT {
				continue
			}
			st.eng.Update(tv[1])
			st.lastT = tv[0]
			total++
		}
	}
	mFcPointsPulled.Add(uint64(total))
	return total, nil
}

// engine returns (creating on first use) the state for key. Callers must
// hold f.mu.
func (f *ForecasterService) engine(key string) *engineState {
	st := f.engines[key]
	if st == nil {
		st = &engineState{eng: forecast.NewDefaultEngine(), lastT: -1}
		f.engines[key] = st
		mFcEngines.Set(float64(len(f.engines)))
	}
	return st
}

// Handle implements Handler.
func (f *ForecasterService) Handle(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{}
	case OpForecast:
		mFcRequests.Inc()
		if req.Series == "" {
			mFcErrors.Inc()
			return errResp("forecast requires a series key")
		}
		t0 := time.Now()
		resp := f.handleForecast(req.Series)
		mFcLatency.ObserveSince(t0)
		if resp.Error != "" {
			mFcErrors.Inc()
		} else if resp.Forecast != nil {
			mFcMethodSelected.With(resp.Forecast.Method).Inc()
		}
		return resp
	default:
		return errResp("forecaster: unsupported op %q", req.Op)
	}
}

func (f *ForecasterService) handleForecast(key string) Response {
	f.mu.Lock()
	st := f.engine(key)
	f.mu.Unlock()

	// Pull only points newer than what the engine has consumed. The group
	// fails over across replicas; the deadline bounds the whole read.
	ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
	defer cancel()
	points, err := f.group.Fetch(ctx, key, nextAfter(st.lastT), 0, 0)
	if err != nil {
		return errResp("forecast: memory fetch: %v", err)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	tEng := time.Now()
	pulled := 0
	for _, tv := range points {
		if tv[0] <= st.lastT {
			continue
		}
		st.eng.Update(tv[1])
		st.lastT = tv[0]
		pulled++
	}
	mFcPointsPulled.Add(uint64(pulled))
	pred, ok := st.eng.Forecast()
	mFcEngineLatency.ObserveSince(tEng)
	if !ok {
		return errResp("forecast: no measurements for %q", key)
	}
	return Response{Forecast: &ForecastResult{
		Value:  pred.Value,
		Method: pred.Method,
		MAE:    pred.MAE,
		N:      st.eng.N(),
	}}
}

// nextAfter returns the smallest fetch lower bound excluding t. Memory range
// queries are [from, to), so any value strictly greater than t works; the
// measurement cadence is seconds, so a microsecond is far below it.
func nextAfter(t float64) float64 {
	if t < 0 {
		return 0
	}
	return t + 1e-6
}

var _ Handler = (*ForecasterService)(nil)
