package nwsnet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nwscpu/internal/forecast"
	"nwscpu/internal/nwsnet/cluster"
	"nwscpu/internal/resilience"
)

// ForecasterService answers forecast queries: for each requested series it
// keeps an incremental forecasting engine fed from the memory server, so
// repeated queries only transfer the new points. With a replicated memory
// group, fetches fail over to the next healthy replica, so one dead memory
// server costs a query at most one extra attempt.
// FetchBackend is the read-plane contract a ForecasterService pulls
// history through: satisfied by both a ReplicaGroup (fixed replica set with
// health-ordered failover) and a ClusterClient (ring-routed reads across a
// partitioned cluster), so the incremental-engine logic is identical across
// deployments.
type FetchBackend interface {
	Fetch(ctx context.Context, key string, from, to float64, max int) ([][2]float64, error)
	FetchBatch(ctx context.Context, fetches []BatchFetch) ([]FetchResult, error)
	Series(ctx context.Context) ([]string, error)
	Health() []ReplicaHealth
}

type ForecasterService struct {
	group   FetchBackend
	timeout time.Duration

	mu      sync.Mutex
	engines map[string]*engineState

	// Subscription hub (docs/PROTOCOL.md §8): which push sinks watch which
	// series. Guarded by hubMu, which is never held across a Push — the
	// serve loop holds a sink's write lock while registering, so pushing
	// under hubMu would invert that order and deadlock.
	hubMu  sync.Mutex
	subs   map[string]map[PushSink]uint64 // series → sink → subscription request ID
	bySink map[PushSink]map[string]struct{}

	// refreshing is set while the background refresher runs; the per-series
	// forecast cache is authoritative only then (without the refresher
	// nothing would ever invalidate a stale entry on behalf of remote
	// stores).
	refreshing  atomic.Bool
	stopRefresh chan struct{}
	refreshDone chan struct{}

	// selfID is this forecaster's cluster member ID, when it serves a slice
	// of a partitioned deployment; AdoptView uses it to hand off
	// subscriptions for series the forecaster ring no longer assigns here.
	selfID atomic.Pointer[string]

	cacheHits, cacheMisses, cacheInvals atomic.Uint64 // mirrors of the global counters, for in-process harnesses
}

type engineState struct {
	eng   *forecast.Engine
	lastT float64
	// cached is the memoized forecast at the current frontier, nil after
	// any update touched the engine. Served to queries only while the
	// refresher runs (it bounds staleness to one tick).
	cached *ForecastResult
}

// NewForecasterService returns a forecaster pulling from the memory server
// at memoryAddr. timeout bounds each memory call (0 selects 5 s).
func NewForecasterService(memoryAddr string, timeout time.Duration) *ForecasterService {
	return NewForecasterServiceReplicas([]string{memoryAddr}, timeout)
}

// NewForecasterServiceReplicas returns a forecaster pulling from a
// replicated memory group, reads failing over in replica-health order.
// timeout bounds each memory call attempt (0 selects 5 s). It speaks the
// default binary codec; NewForecasterServiceReplicasCodec selects.
func NewForecasterServiceReplicas(memAddrs []string, timeout time.Duration) *ForecasterService {
	return NewForecasterServiceReplicasCodec(memAddrs, timeout, CodecBinary)
}

// NewForecasterServiceReplicasCodec is NewForecasterServiceReplicas with an
// explicit wire codec for the forecaster's memory fetches — the escape
// hatch for pulling from a pre-v2 memory server that only speaks JSON lines.
func NewForecasterServiceReplicasCodec(memAddrs []string, timeout time.Duration, codec Codec) *ForecasterService {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	client := NewClientOptions(ClientOptions{
		Timeout: timeout,
		Codec:   codec,
		// One in-call retry per replica; replica failover is the main
		// recovery path for reads.
		Retry: resilience.Policy{MaxAttempts: 2, BaseDelay: 25 * time.Millisecond},
		// Probe-limiter mode (see NewSensorDaemonReplicas): never delays a
		// sequential caller, but bounds concurrent hammering of a replica
		// that keeps failing, and lets ReplicaGroup order open-breaker
		// replicas last.
		Breaker: &resilience.BreakerConfig{OpenFor: -1},
	})
	return &ForecasterService{
		group:   NewReplicaGroup(client, memAddrs, 0),
		timeout: timeout,
		engines: make(map[string]*engineState),
		subs:    make(map[string]map[PushSink]uint64),
		bySink:  make(map[PushSink]map[string]struct{}),
	}
}

// NewForecasterServiceCluster returns a forecaster pulling from a
// partitioned memory cluster: fetches route by series key to the ring
// owners under the membership view served by the registry at nsAddr,
// failing over across a key's owners and refreshing the routing table from
// ownership redirects. timeout bounds each memory call attempt (0 selects
// 5 s).
func NewForecasterServiceCluster(nsAddr string, timeout time.Duration) *ForecasterService {
	f := NewForecasterServiceReplicasCodec(nil, timeout, CodecBinary)
	rg, _ := f.group.(*ReplicaGroup)
	f.group = NewClusterClient(rg.Client(), nsAddr)
	return f
}

// Replicas reports the health of the forecaster's memory replica group.
func (f *ForecasterService) Replicas() []ReplicaHealth { return f.group.Health() }

// Warm primes per-series engines by batch-fetching every series' unseen
// history in one round trip per replica attempt instead of one fetch per
// series — the history catch-up a restarted forecaster owes for each series
// before its first query. keys == nil warms every series the memory
// currently holds. It returns the number of points consumed; per-series
// rejections are skipped, and the error is non-nil only when the memory
// group was unreachable.
func (f *ForecasterService) Warm(ctx context.Context, keys []string) (int, error) {
	if keys == nil {
		var err error
		keys, err = f.group.Series(ctx)
		if err != nil {
			return 0, err
		}
	}
	if len(keys) == 0 {
		return 0, nil
	}
	fetches := make([]BatchFetch, len(keys))
	states := make([]*engineState, len(keys))
	f.mu.Lock()
	for i, k := range keys {
		states[i] = f.engine(k)
		fetches[i] = BatchFetch{Series: k, From: nextAfter(states[i].lastT)}
	}
	f.mu.Unlock()

	results, err := f.group.FetchBatch(ctx, fetches)
	if err != nil {
		return 0, err
	}
	// Batch results align with the fetches by position only (FetchResult
	// carries no series echo). A backend returning a short or long slice —
	// a cancelled batch cut mid-envelope, say — would silently feed series
	// A's points into series B's engine from here on; refuse instead. The
	// skipped series keep their frontier, so the next Warm or Forecast
	// re-primes them from where priming actually stopped.
	if len(results) != len(fetches) {
		return 0, fmt.Errorf("nwsnet: warm batch returned %d results for %d fetches", len(results), len(fetches))
	}
	total := 0
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, res := range results {
		if res.Err != nil {
			// Priming this series failed; its frontier is untouched, so it
			// is not marked warm in any sense — no cached forecast exists
			// for it until a later Warm or Forecast succeeds.
			continue
		}
		total += f.applyLocked(states[i], res.Points)
	}
	mFcPointsPulled.Add(uint64(total))
	return total, nil
}

// applyLocked feeds every point newer than the frontier into st, dropping
// any cached forecast the moment the engine changes. Returns the number of
// points consumed. Callers hold f.mu.
func (f *ForecasterService) applyLocked(st *engineState, points [][2]float64) int {
	n := 0
	for _, tv := range points {
		if tv[0] <= st.lastT {
			continue
		}
		st.eng.Update(tv[1])
		st.lastT = tv[0]
		n++
	}
	if n > 0 && st.cached != nil {
		st.cached = nil
		f.cacheInvals.Add(1)
		mFcCacheInvalidations.Inc()
	}
	return n
}

// engine returns (creating on first use) the state for key. Callers must
// hold f.mu.
func (f *ForecasterService) engine(key string) *engineState {
	st := f.engines[key]
	if st == nil {
		st = &engineState{eng: forecast.NewDefaultEngine(), lastT: -1}
		f.engines[key] = st
		mFcEngines.Set(float64(len(f.engines)))
	}
	return st
}

// Handle implements Handler.
func (f *ForecasterService) Handle(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{}
	case OpForecast:
		mFcRequests.Inc()
		if req.Series == "" {
			mFcErrors.Inc()
			return errResp("forecast requires a series key")
		}
		t0 := time.Now()
		resp := f.handleForecast(req.Series)
		mFcLatency.ObserveSince(t0)
		if resp.Error != "" {
			mFcErrors.Inc()
		} else if resp.Forecast != nil {
			mFcMethodSelected.With(resp.Forecast.Method).Inc()
		}
		return resp
	default:
		return errResp("forecaster: unsupported op %q", req.Op)
	}
}

func (f *ForecasterService) handleForecast(key string) Response {
	f.mu.Lock()
	st := f.engine(key)
	// The cached result is the answer at the current frontier; it is
	// authoritative only while the refresher runs, because only the
	// refresher observes stores made by other clients and invalidates.
	if st.cached != nil && f.refreshing.Load() {
		res := *st.cached
		f.mu.Unlock()
		f.cacheHits.Add(1)
		mFcCacheHits.Inc()
		return Response{Forecast: &res}
	}
	f.mu.Unlock()
	f.cacheMisses.Add(1)
	mFcCacheMisses.Inc()

	// Pull only points newer than what the engine has consumed. The group
	// fails over across replicas; the deadline bounds the whole read.
	ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
	defer cancel()
	points, err := f.group.Fetch(ctx, key, nextAfter(st.lastT), 0, 0)
	if err != nil {
		return errResp("forecast: memory fetch: %v", err)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	tEng := time.Now()
	mFcPointsPulled.Add(uint64(f.applyLocked(st, points)))
	res, ok := f.forecastLocked(st)
	mFcEngineLatency.ObserveSince(tEng)
	if !ok {
		return errResp("forecast: no measurements for %q", key)
	}
	return Response{Forecast: res}
}

// forecastLocked computes the forecast at st's current frontier and caches
// it. Callers hold f.mu.
func (f *ForecasterService) forecastLocked(st *engineState) (*ForecastResult, bool) {
	pred, ok := st.eng.Forecast()
	if !ok {
		return nil, false
	}
	res := &ForecastResult{
		Value:  pred.Value,
		Method: pred.Method,
		MAE:    pred.MAE,
		N:      st.eng.N(),
	}
	st.cached = res
	return res, true
}

// CacheStats reports the forecast cache's hit/miss/invalidation counts —
// the same values the nws_forecast_cache_* metrics export, readable
// per-instance by in-process harnesses (nwsload's acceptance run).
func (f *ForecasterService) CacheStats() (hits, misses, invalidations uint64) {
	return f.cacheHits.Load(), f.cacheMisses.Load(), f.cacheInvals.Load()
}

// nextAfter returns the smallest fetch lower bound excluding t. Memory range
// queries are [from, to), so any value strictly greater than t works; the
// measurement cadence is seconds, so a microsecond is far below it.
func nextAfter(t float64) float64 {
	if t < 0 {
		return 0
	}
	return t + 1e-6
}

// --- subscription hub (SubscriptionHandler implementation) ---

// Subscribe implements SubscriptionHandler: it registers the sink for
// pushes on req.Series before computing the acknowledgement, so a refresh
// tick racing the registration can only add a push behind the ack (the
// serve loop holds the sink's write lock across this call), never lose one.
// The ack carries the current forecast when one is computable; a series
// with no measurements yet is still a valid subscription — its first push
// arrives with its first points.
func (f *ForecasterService) Subscribe(req Request, id uint64, sink PushSink) Response {
	if req.Series == "" {
		return errResp("subscribe requires a series key")
	}
	f.hubMu.Lock()
	sinks := f.subs[req.Series]
	if sinks == nil {
		sinks = make(map[PushSink]uint64)
		f.subs[req.Series] = sinks
	}
	_, existed := sinks[sink]
	sinks[sink] = id
	watched := f.bySink[sink]
	if watched == nil {
		watched = make(map[string]struct{})
		f.bySink[sink] = watched
	}
	watched[req.Series] = struct{}{}
	f.hubMu.Unlock()
	if !existed {
		mSubscriptionsActive.Inc()
		if c, ok := sink.(subCounter); ok {
			c.addSubs(1)
		}
	}
	ack := Response{}
	if resp := f.handleForecast(req.Series); resp.Error == "" {
		ack.Forecast = resp.Forecast
	}
	return ack
}

// Unsubscribe implements SubscriptionHandler. Unsubscribing a series that
// was never subscribed acknowledges cleanly (idempotent).
func (f *ForecasterService) Unsubscribe(req Request, sink PushSink) Response {
	if req.Series == "" {
		return errResp("unsubscribe requires a series key")
	}
	f.hubMu.Lock()
	f.removeSubLocked(req.Series, sink)
	f.hubMu.Unlock()
	return Response{}
}

// DropSink implements SubscriptionHandler: connection teardown.
func (f *ForecasterService) DropSink(sink PushSink) {
	f.hubMu.Lock()
	for series := range f.bySink[sink] {
		f.removeSubLocked(series, sink)
	}
	f.hubMu.Unlock()
}

// removeSubLocked removes one (series, sink) subscription, reporting
// whether it existed. Callers hold hubMu.
func (f *ForecasterService) removeSubLocked(series string, sink PushSink) bool {
	sinks := f.subs[series]
	if _, ok := sinks[sink]; !ok {
		return false
	}
	delete(sinks, sink)
	if len(sinks) == 0 {
		delete(f.subs, series)
	}
	if watched := f.bySink[sink]; watched != nil {
		delete(watched, series)
		if len(watched) == 0 {
			delete(f.bySink, sink)
		}
	}
	mSubscriptionsActive.Dec()
	if c, ok := sink.(subCounter); ok {
		c.addSubs(-1)
	}
	return true
}

// Subscriptions reports how many (series, connection) subscriptions are
// currently registered.
func (f *ForecasterService) Subscriptions() int {
	f.hubMu.Lock()
	defer f.hubMu.Unlock()
	n := 0
	for _, sinks := range f.subs {
		n += len(sinks)
	}
	return n
}

// --- background refresher ---

// StartRefresher launches the read plane's maintenance loop: every interval
// it batch-fetches the unseen points of every tracked series in one round
// trip, feeds the engines, recomputes and re-caches changed forecasts, and
// pushes them to each changed series' subscribers. While it runs, forecast
// queries are served from the cache, so a poll costs no memory round trip
// and staleness is bounded by one tick. interval <= 0 selects 1 s.
// Idempotent while running; StopRefresher ends it.
func (f *ForecasterService) StartRefresher(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	if !f.refreshing.CompareAndSwap(false, true) {
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	f.stopRefresh, f.refreshDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			f.refreshTick()
		}
	}()
}

// StopRefresher ends the maintenance loop and waits for it; forecast
// queries go back to fetching per query. Safe without a prior
// StartRefresher.
func (f *ForecasterService) StopRefresher() {
	if !f.refreshing.CompareAndSwap(true, false) {
		return
	}
	close(f.stopRefresh)
	<-f.refreshDone
}

// RefreshNow runs one maintenance pass synchronously: batch-fetch every
// tracked series' unseen points, feed the engines, re-cache changed
// forecasts and push them to subscribers. It is the simulated-clock
// counterpart of the wall-clock refresher: a deterministic harness
// (cmd/nwsgrid) calls it once per virtual cadence tick instead of racing a
// ticker goroutine against the simulation. Combine with SetCacheServing so
// queries between passes are answered from the cache, exactly as they
// would be under StartRefresher.
func (f *ForecasterService) RefreshNow() { f.refreshTick() }

// SetCacheServing marks the per-series forecast cache authoritative (or
// not) without launching the background refresher. The cache is only safe
// to serve while *something* invalidates stale entries on behalf of remote
// stores; StartRefresher is that something in wall-clock deployments, and
// a harness driving RefreshNow every virtual tick is the equivalent under
// a simulated clock. Do not mix with StartRefresher/StopRefresher, which
// own the same flag.
func (f *ForecasterService) SetCacheServing(on bool) { f.refreshing.Store(on) }

// refreshTick is one maintenance pass. It holds no lock across the batch
// fetch or any push (pushing under hubMu or f.mu would deadlock against a
// subscribe in progress).
func (f *ForecasterService) refreshTick() {
	f.mu.Lock()
	keys := make([]string, 0, len(f.engines))
	states := make([]*engineState, 0, len(f.engines))
	fetches := make([]BatchFetch, 0, len(f.engines))
	for k, st := range f.engines {
		keys = append(keys, k)
		states = append(states, st)
		fetches = append(fetches, BatchFetch{Series: k, From: nextAfter(st.lastT)})
	}
	f.mu.Unlock()
	if len(fetches) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
	results, err := f.group.FetchBatch(ctx, fetches)
	cancel()
	if err != nil || len(results) != len(fetches) {
		return // transient; the next tick retries from the same frontiers
	}
	type update struct {
		series string
		res    ForecastResult
	}
	var changed []update
	total := 0
	f.mu.Lock()
	for i, res := range results {
		if res.Err != nil || len(res.Points) == 0 {
			continue
		}
		st := states[i]
		n := f.applyLocked(st, res.Points)
		total += n
		if n == 0 {
			continue
		}
		if r, ok := f.forecastLocked(st); ok {
			changed = append(changed, update{series: keys[i], res: *r})
		}
	}
	f.mu.Unlock()
	mFcPointsPulled.Add(uint64(total))
	for _, u := range changed {
		f.pushSeries(u.series, u.res)
	}
}

// pushSeries delivers one updated forecast to every subscriber of series.
func (f *ForecasterService) pushSeries(series string, res ForecastResult) {
	type target struct {
		sink PushSink
		id   uint64
	}
	f.hubMu.Lock()
	targets := make([]target, 0, len(f.subs[series]))
	for sink, id := range f.subs[series] {
		targets = append(targets, target{sink, id})
	}
	f.hubMu.Unlock()
	for _, t := range targets {
		r := res
		if t.sink.Push(t.id, Response{Forecast: &r}) != nil {
			// The connection is on its way down and its serve loop will
			// DropSink; dropping here too keeps this tick from hammering
			// a dead sink once per series it watched.
			f.DropSink(t.sink)
			continue
		}
		mFcPushes.Inc()
	}
}

// --- subscription handoff (partitioned deployments) ---

// SetClusterSelf names this forecaster's member ID in a partitioned
// deployment; AdoptView then hands off subscriptions the forecaster ring
// moves away from this member.
func (f *ForecasterService) SetClusterSelf(id string) { f.selfID.Store(&id) }

// AdoptView reacts to a membership view change (rebalance, join, lease
// expiry): every subscribed series the forecaster ring no longer assigns
// to this member is terminated with a moved push carrying the
// authoritative view, so the subscriber re-routes to the new owner instead
// of listening to a node that would otherwise just go quiet for it.
func (f *ForecasterService) AdoptView(v *cluster.View) {
	self := f.selfID.Load()
	if v == nil || self == nil || *self == "" {
		return
	}
	ring := v.Ring(string(KindForecaster))
	if ring == nil {
		return
	}
	rf := v.Config.Normalize().Replication
	type target struct {
		sink   PushSink
		id     uint64
		series string
	}
	var lost []target
	f.hubMu.Lock()
	for series, sinks := range f.subs {
		owners := ring.Owners(series, rf)
		if len(owners) == 0 {
			continue // empty forecaster ring: nowhere to redirect
		}
		owned := false
		for _, id := range owners {
			if id == *self {
				owned = true
				break
			}
		}
		if owned {
			continue
		}
		for sink, id := range sinks {
			lost = append(lost, target{sink, id, series})
		}
	}
	for _, t := range lost {
		f.removeSubLocked(t.series, t.sink)
	}
	f.hubMu.Unlock()
	for _, t := range lost {
		t.sink.Push(t.id, movedResp(v, "forecast %q: not an owner under epoch %d", t.series, v.Epoch))
		mFcPushes.Inc()
	}
}

var (
	_ Handler             = (*ForecasterService)(nil)
	_ SubscriptionHandler = (*ForecasterService)(nil)
)
