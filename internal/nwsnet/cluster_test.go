package nwsnet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"nwscpu/internal/nwsnet/cluster"
)

// startCluster spins up a registry server plus n memory shard servers, each
// wrapped in a ClusterNode and joined through the full agent lifecycle.
// Returns the registry address, the nodes, and their addresses.
func startCluster(t *testing.T, n int, cfg cluster.Config, ttl time.Duration) (nsAddr string, nodes []*ClusterNode, addrs []string) {
	t.Helper()
	ns := NewNameServerCluster(ttl, cfg)
	nsSrv := NewServer(ns, nil)
	var err error
	nsAddr, err = nsSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nsSrv.Close() })
	for i := 0; i < n; i++ {
		nodes = append(nodes, nil)
		addrs = append(addrs, "")
		nodes[i], addrs[i] = startClusterNode(t, nsAddr, fmt.Sprintf("node-%d", i))
	}
	return nsAddr, nodes, addrs
}

// startClusterNode starts one guarded memory shard and joins it to the
// cluster behind nsAddr, returning its node and address.
func startClusterNode(t *testing.T, nsAddr, id string) (*ClusterNode, string) {
	t.Helper()
	node := NewClusterNode(id, NewMemory(0))
	srv := NewServer(node, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	agent := NewClusterAgent(nil, nsAddr, cluster.Member{ID: id, Kind: string(KindMemory), Addr: addr}, node)
	if err := agent.Join(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agent.Close() })
	return node, addr
}

// TestClusterRegistryLifecycle drives join / lease / view against a real
// registry server over both codecs: the two-phase join bumps the epoch only
// on activation, renewals carry a view only when the caller is stale, and
// the view fetch supports not-modified.
func TestClusterRegistryLifecycle(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		t.Run(string(codec), func(t *testing.T) {
			ns := NewNameServerCluster(time.Minute, cluster.Config{Replication: 2, VNodes: 16})
			srv := NewServer(ns, nil)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			c := NewClientOptions(ClientOptions{Codec: codec})
			defer c.Close()

			// Joining state: lease taken, no epoch movement.
			v, err := c.JoinCluster(addr, cluster.Member{ID: "m0", Kind: string(KindMemory), Addr: "a:1", State: cluster.StateJoining})
			if err != nil {
				t.Fatal(err)
			}
			if v.Epoch != 0 || len(v.Members) != 1 || v.Members[0].State != cluster.StateJoining {
				t.Fatalf("joining view = %+v, want epoch 0 with one joining member", v)
			}
			// Activation bumps the epoch exactly once; re-activating the same
			// member does not.
			v, err = c.JoinCluster(addr, cluster.Member{ID: "m0", Kind: string(KindMemory), Addr: "a:1", State: cluster.StateActive})
			if err != nil {
				t.Fatal(err)
			}
			if v.Epoch != 1 {
				t.Fatalf("activation epoch = %d, want 1", v.Epoch)
			}
			v, err = c.JoinCluster(addr, cluster.Member{ID: "m0", Kind: string(KindMemory), Addr: "a:1", State: cluster.StateActive})
			if err != nil {
				t.Fatal(err)
			}
			if v.Epoch != 1 {
				t.Fatalf("idempotent re-join epoch = %d, want 1", v.Epoch)
			}

			// A current renewal carries no view; a stale one does.
			nv, err := c.RenewLease(addr, "m0", 1)
			if err != nil {
				t.Fatal(err)
			}
			if nv != nil {
				t.Fatalf("current-epoch renewal returned a view: %+v", nv)
			}
			nv, err = c.RenewLease(addr, "m0", 0)
			if err != nil {
				t.Fatal(err)
			}
			if nv == nil || nv.Epoch != 1 {
				t.Fatalf("stale renewal view = %+v, want epoch 1", nv)
			}
			// An unknown member's renewal is terminal: only a re-join recovers.
			if _, err := c.RenewLease(addr, "ghost", 1); err == nil {
				t.Fatal("renewal of unknown member succeeded")
			}

			// View fetch: epoch 0 always fetches, current epoch is not-modified.
			fv, err := c.FetchView(addr, 0)
			if err != nil {
				t.Fatal(err)
			}
			if fv == nil || fv.Epoch != 1 {
				t.Fatalf("fetched view = %+v, want epoch 1", fv)
			}
			fv, err = c.FetchView(addr, 1)
			if err != nil {
				t.Fatal(err)
			}
			if fv != nil {
				t.Fatalf("not-modified fetch returned a view: %+v", fv)
			}
		})
	}
}

// TestClusterV1ClientCompat proves a pre-cluster v1 JSON client still works
// against a cluster-enabled deployment: plain store/fetch/series round trips
// through a guarded node it happens to own series on, and the registry still
// answers the v1 directory ops.
func TestClusterV1ClientCompat(t *testing.T) {
	nsAddr, nodes, addrs := startCluster(t, 1, cluster.Config{Replication: 1, VNodes: 16}, time.Minute)
	c := NewClientOptions(ClientOptions{Codec: CodecJSON})
	defer c.Close()

	// v1 directory ops against the cluster registry.
	if err := c.Register(nsAddr, Registration{Name: "h/cpu", Kind: KindSensor, Addr: "a:1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(nsAddr, "h/cpu"); err != nil {
		t.Fatal(err)
	}

	// With a single active member every key is owned: the guard must be
	// invisible to the v1 client.
	if err := c.Store(addrs[0], "h/cpu/nws_hybrid", [][2]float64{{1, 0.5}, {2, 0.6}}); err != nil {
		t.Fatal(err)
	}
	pts, err := c.Fetch(addrs[0], "h/cpu/nws_hybrid", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("fetched %d points, want 2", len(pts))
	}
	names, err := c.Series(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("series = %v, want one", names)
	}
	if v := nodes[0].View(); v == nil || v.Epoch == 0 {
		t.Fatalf("node never adopted a view: %+v", v)
	}
}

// TestClusterNodeGuard exercises the ownership guard's asymmetry: stores of
// unowned keys redirect with the view attached, fetches of held keys are
// served regardless of ownership, and series-less ops pass through.
func TestClusterNodeGuard(t *testing.T) {
	node := NewClusterNode("me", NewMemory(0))

	// Inert before any view: everything is owned.
	if r := node.Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{1, 1}}}); r.Error != "" {
		t.Fatalf("guard rejected a store with no view: %s", r.Error)
	}

	// Install a view whose only active member is someone else: nothing is
	// owned by this node anymore.
	view := cluster.View{
		Epoch:  3,
		Config: cluster.Config{Replication: 1, VNodes: 16},
		Members: []cluster.Member{
			{ID: "other", Kind: string(KindMemory), Addr: "b:2", State: cluster.StateActive},
		},
	}
	node.AdoptView(view)

	r := node.Handle(Request{Op: OpStore, Series: "k2", Points: [][2]float64{{2, 1}}})
	if r.Code != CodeMoved || r.View == nil || r.View.Epoch != 3 {
		t.Fatalf("unowned store = %+v, want moved redirect carrying epoch 3", r)
	}
	// The held series from before the view is still served — handoff and
	// read availability depend on it.
	if r := node.Handle(Request{Op: OpFetch, Series: "k"}); r.Error != "" || len(r.Points) != 1 {
		t.Fatalf("held fetch = %+v, want the stored point", r)
	}
	// A fetch of a key neither owned nor held redirects.
	if r := node.Handle(Request{Op: OpFetch, Series: "k2"}); r.Code != CodeMoved {
		t.Fatalf("unheld unowned fetch = %+v, want moved", r)
	}
	// Series-less ops pass through untouched.
	if r := node.Handle(Request{Op: OpSeries}); r.Error != "" || len(r.Names) != 1 {
		t.Fatalf("series listing = %+v", r)
	}

	// Batch envelope: owned subs execute, misrouted subs redirect in place.
	br := node.Handle(Request{Op: OpBatch, Batch: []Request{
		{Op: OpFetch, Series: "k"},
		{Op: OpStore, Series: "k3", Points: [][2]float64{{3, 1}}},
	}})
	if len(br.Batch) != 2 {
		t.Fatalf("batch = %+v, want 2 subs", br)
	}
	if br.Batch[0].Error != "" || len(br.Batch[0].Points) != 1 {
		t.Fatalf("owned batch sub = %+v", br.Batch[0])
	}
	if br.Batch[1].Code != CodeMoved {
		t.Fatalf("misrouted batch sub = %+v, want moved", br.Batch[1])
	}

	// A stale view (epoch at or below the held one) is ignored.
	node.AdoptView(cluster.View{Epoch: 2})
	if v := node.View(); v.Epoch != 3 {
		t.Fatalf("stale view adopted: epoch %d", v.Epoch)
	}
}

// TestClusterClientRouting stores and fetches through the routing table
// against a live 2-node rf=1 cluster: every key lands on its ring owner,
// a client bootstrapped with a deliberately wrong view recovers via the
// redirect it gets from the misrouted call, and reads fail over.
func TestClusterClientRouting(t *testing.T) {
	nsAddr, nodes, addrs := startCluster(t, 2, cluster.Config{Replication: 1, VNodes: 32}, time.Minute)
	ctx := context.Background()

	cc := NewClusterClient(nil, nsAddr)
	defer cc.Close()

	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("host%02d/cpu/nws_hybrid", i)
		if err := cc.Store(ctx, keys[i], [][2]float64{{1, 0.25}, {2, 0.75}}); err != nil {
			t.Fatalf("store %s: %v", keys[i], err)
		}
	}
	v := cc.View()
	if v == nil {
		t.Fatal("router never bootstrapped a view")
	}
	ring := v.Ring(string(KindMemory))
	split := map[string]int{}
	for _, key := range keys {
		owner := ring.Owner(key)
		split[owner]++
		// The point must live on exactly the owner the ring names.
		ownerIdx := 0
		if owner == "node-1" {
			ownerIdx = 1
		}
		if got := nodes[ownerIdx].Memory().Len(key); got != 2 {
			t.Fatalf("owner %s holds %d points of %s, want 2", owner, got, key)
		}
		if got := nodes[1-ownerIdx].Memory().Len(key); got != 0 {
			t.Fatalf("non-owner holds %d points of %s", got, key)
		}
	}
	if len(split) != 2 {
		t.Fatalf("all %d keys landed on one shard: %v", len(keys), split)
	}

	for _, key := range keys {
		pts, err := cc.Fetch(ctx, key, 0, 0, 0)
		if err != nil {
			t.Fatalf("fetch %s: %v", key, err)
		}
		if len(pts) != 2 {
			t.Fatalf("fetch %s = %d points, want 2", key, len(pts))
		}
	}
	res, err := cc.FetchBatch(ctx, []BatchFetch{{Series: keys[0]}, {Series: keys[7]}, {Series: "absent/cpu"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].Err != nil || res[1].Err != nil || res[2].Err == nil {
		t.Fatalf("batch fetch = %+v", res)
	}
	names, err := cc.Series(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(keys) {
		t.Fatalf("series union = %d names, want %d", len(names), len(keys))
	}

	// A router poisoned with a wrong view — both keys' owner swapped — must
	// recover from the CodeMoved redirect without consulting the registry.
	stale := NewClusterClient(nil, "127.0.0.1:1") // unreachable registry
	defer stale.Close()
	wrong := v.Clone()
	wrong.Members[0].Addr, wrong.Members[1].Addr = wrong.Members[1].Endpoints()[0], wrong.Members[0].Endpoints()[0]
	wrong.Members[0].Addrs, wrong.Members[1].Addrs = nil, nil
	wrong.Epoch = v.Epoch - 1 // genuinely stale, so the redirect's view supersedes it
	stale.AdoptView(&wrong)
	before := mClusterRefreshRedirect.Value()
	if err := stale.Store(ctx, keys[0], [][2]float64{{3, 0.5}}); err != nil {
		t.Fatalf("store through stale view: %v", err)
	}
	if mClusterRefreshRedirect.Value() == before {
		t.Fatal("stale store recovered without a redirect refresh")
	}

	// Health reports every active member through the breaker state.
	h := cc.Health()
	if len(h) != 2 || !h[0].Healthy || !h[1].Healthy {
		t.Fatalf("health = %+v", h)
	}
	_ = addrs
}

// TestClusterHandoffOnJoin grows a 1-node cluster to 2 nodes and verifies
// the joiner backfilled the full history of every series it now owns while
// the old owner still serves what it holds.
func TestClusterHandoffOnJoin(t *testing.T) {
	nsAddr, nodes, _ := startCluster(t, 1, cluster.Config{Replication: 1, VNodes: 32}, time.Minute)
	ctx := context.Background()
	cc := NewClusterClient(nil, nsAddr)
	defer cc.Close()

	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("host%02d/cpu/nws_hybrid", i)
		pts := [][2]float64{{1, 0.1}, {2, 0.2}, {3, 0.3}}
		if err := cc.Store(ctx, keys[i], pts); err != nil {
			t.Fatal(err)
		}
	}

	// A second node joins: its two-phase join must pull the history of every
	// series the new ring assigns it.
	node1, _ := startClusterNode(t, nsAddr, "node-1")
	v := node1.View()
	if v == nil || len(v.Active(string(KindMemory))) != 2 {
		t.Fatalf("joiner's view = %+v, want 2 active members", v)
	}
	ring := v.Ring(string(KindMemory))
	moved := 0
	for _, key := range keys {
		if ring.Owner(key) != "node-1" {
			continue
		}
		moved++
		if got := node1.Memory().Len(key); got != 3 {
			t.Fatalf("joiner holds %d points of owned key %s, want 3", got, key)
		}
	}
	if moved == 0 {
		t.Fatal("ring moved no keys to the joiner")
	}
	// The old owner still holds everything (handoff copies, it does not
	// delete) so reads stay available through the transition.
	for _, key := range keys {
		if nodes[0].Memory().Len(key) != 3 {
			t.Fatalf("old owner lost %s during handoff", key)
		}
	}
	// The routed read path serves every key under the new view.
	for _, key := range keys {
		pts, err := cc.Fetch(ctx, key, 0, 0, 0)
		if err != nil || len(pts) != 3 {
			t.Fatalf("fetch %s after handoff = %d points, %v", key, len(pts), err)
		}
	}
}

// TestMemoryBackfill verifies the handoff merge path: history lands behind
// the write frontier, duplicate timestamps are skipped, and capacity keeps
// the newest points.
func TestMemoryBackfill(t *testing.T) {
	m := NewMemory(0)
	if r := m.Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{10, 1}, {11, 1}}}); r.Error != "" {
		t.Fatal(r.Error)
	}
	// Backfill older history plus one duplicate: only the history counts.
	added := m.Backfill("k", [][2]float64{{1, 0.1}, {2, 0.2}, {10, 9}})
	if added != 2 {
		t.Fatalf("backfill added %d, want 2", added)
	}
	r := m.Handle(Request{Op: OpFetch, Series: "k"})
	want := [][2]float64{{1, 0.1}, {2, 0.2}, {10, 1}, {11, 1}}
	if len(r.Points) != len(want) {
		t.Fatalf("after backfill: %v", r.Points)
	}
	for i, p := range want {
		if r.Points[i] != p {
			t.Fatalf("point %d = %v, want %v (duplicate must keep the stored value)", i, r.Points[i], p)
		}
	}
	// Idempotent: replaying the same backfill inserts nothing.
	if added := m.Backfill("k", [][2]float64{{1, 0.1}, {2, 0.2}}); added != 0 {
		t.Fatalf("replayed backfill added %d", added)
	}
	// A backfill into an absent series creates it.
	if added := m.Backfill("fresh", [][2]float64{{5, 0.5}}); added != 1 || m.Len("fresh") != 1 {
		t.Fatalf("fresh backfill added %d, len %d", added, m.Len("fresh"))
	}

	// Capacity: merging history into a full ring keeps the newest points.
	small := NewMemory(3)
	small.Handle(Request{Op: OpStore, Series: "s", Points: [][2]float64{{10, 1}, {11, 1}, {12, 1}}})
	small.Backfill("s", [][2]float64{{1, 0.1}, {2, 0.2}})
	r = small.Handle(Request{Op: OpFetch, Series: "s"})
	if len(r.Points) != 3 || r.Points[0][0] != 10 {
		t.Fatalf("capacity merge = %v, want the newest 3", r.Points)
	}
}

// TestNameServerLeaseExpiry drives the registry clock forward: a lapsed
// active lease bumps the epoch and leaves the view, a lapsed joining lease
// disappears without moving keys.
func TestNameServerLeaseExpiry(t *testing.T) {
	ns := NewNameServerCluster(time.Second, cluster.Config{Replication: 2})
	now := time.Unix(1000, 0)
	ns.now = func() time.Time { return now }
	ns.lastSweep = now

	join := func(id string, state cluster.State) Response {
		return ns.Handle(Request{Op: OpJoin, Member: &cluster.Member{ID: id, Kind: string(KindMemory), Addr: id + ":1", State: state}})
	}
	if r := join("a", cluster.StateActive); r.Error != "" || r.View.Epoch != 1 {
		t.Fatalf("join a = %+v", r)
	}
	if r := join("b", cluster.StateJoining); r.Error != "" || r.View.Epoch != 1 {
		t.Fatalf("join b = %+v", r)
	}

	// b (joining) lapses: no epoch movement, member gone.
	now = now.Add(1100 * time.Millisecond)
	ns.Handle(Request{Op: OpLease, Member: &cluster.Member{ID: "a"}, Epoch: 1}) // keeps a alive? no — a lapsed too
	v := ns.View()
	if len(v.Members) != 0 {
		t.Fatalf("members after lapse = %+v", v.Members)
	}
	if v.Epoch != 2 {
		t.Fatalf("epoch after active lapse = %d, want 2 (a was active)", v.Epoch)
	}

	// Rebuild: an active member that keeps renewing survives, a joining one
	// that lapses moves no keys.
	if r := join("a", cluster.StateActive); r.Error != "" {
		t.Fatal(r.Error)
	}
	epoch := ns.View().Epoch
	if r := join("j", cluster.StateJoining); r.Error != "" {
		t.Fatal(r.Error)
	}
	for i := 0; i < 3; i++ {
		now = now.Add(600 * time.Millisecond)
		if r := ns.Handle(Request{Op: OpLease, Member: &cluster.Member{ID: "a"}, Epoch: epoch}); r.Error != "" {
			t.Fatalf("renewal %d: %s", i, r.Error)
		}
	}
	v = ns.View()
	if len(v.Members) != 1 || v.Members[0].ID != "a" {
		t.Fatalf("survivors = %+v, want only a", v.Members)
	}
	if v.Epoch != epoch {
		t.Fatalf("joining lapse moved the epoch: %d → %d", epoch, v.Epoch)
	}
}

// TestNameServerAmortizedReap is the regression guard for the O(n)
// reap-on-every-lookup bug: with thousands of live entries, a burst of
// lookups inside one TTL window runs at most one full sweep, and an expired
// entry observed by a lookup is reaped individually without sweeping.
func TestNameServerAmortizedReap(t *testing.T) {
	ns := NewNameServerTTL(time.Second)
	now := time.Unix(2000, 0)
	ns.now = func() time.Time { return now }
	ns.lastSweep = now

	const n = 5000
	for i := 0; i < n; i++ {
		r := ns.Handle(Request{Op: OpRegister, Reg: Registration{
			Name: fmt.Sprintf("h%04d/cpu", i), Kind: KindSensor, Addr: "a:1",
		}})
		if r.Error != "" {
			t.Fatal(r.Error)
		}
	}
	if got := ns.Sweeps(); got != 0 {
		t.Fatalf("registrations inside the TTL swept %d times", got)
	}

	// A burst of lookups within the TTL window: zero sweeps.
	now = now.Add(500 * time.Millisecond)
	for i := 0; i < n; i++ {
		r := ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: fmt.Sprintf("h%04d/cpu", i%n)}})
		if r.Error != "" {
			t.Fatal(r.Error)
		}
	}
	if got := ns.Sweeps(); got != 0 {
		t.Fatalf("lookup burst inside TTL swept %d times, want 0", got)
	}

	// Crossing the TTL boundary: the whole burst triggers exactly one sweep.
	now = now.Add(600 * time.Millisecond)
	for i := 0; i < n; i++ {
		ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: fmt.Sprintf("h%04d/cpu", i)}})
	}
	if got := ns.Sweeps(); got != 1 {
		t.Fatalf("lookup burst across TTL swept %d times, want exactly 1", got)
	}

	// An expired entry hit by a lookup is reaped individually, without a
	// full sweep: register an entry young enough to survive the next sweep,
	// then look it up once it has lapsed but before the sweep after that.
	now = now.Add(500 * time.Millisecond)
	ns.Handle(Request{Op: OpRegister, Reg: Registration{Name: "lapsing/cpu", Kind: KindSensor, Addr: "a:1"}})
	now = now.Add(600 * time.Millisecond) // crosses the boundary: next request sweeps
	ns.Handle(Request{Op: OpRegister, Reg: Registration{Name: "fresh/cpu", Kind: KindSensor, Addr: "a:1"}})
	sweeps := ns.Sweeps() // lapsing/cpu (0.6s old) survived that sweep
	now = now.Add(600 * time.Millisecond)
	if r := ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: "lapsing/cpu"}}); r.Error == "" {
		t.Fatal("expired entry still resolvable")
	}
	if got := ns.Sweeps(); got != sweeps {
		t.Fatalf("individual reap ran a full sweep (%d → %d)", sweeps, got)
	}
	if r := ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: "fresh/cpu"}}); r.Error != "" {
		t.Fatalf("fresh entry lost: %s", r.Error)
	}
}

// BenchmarkNameServerLookup pins the amortized-reap win: per-lookup cost on
// a directory of thousands must be O(1), not O(n) map sweeps.
func BenchmarkNameServerLookup(b *testing.B) {
	ns := NewNameServerTTL(time.Hour)
	const n = 10000
	for i := 0; i < n; i++ {
		ns.Handle(Request{Op: OpRegister, Reg: Registration{
			Name: fmt.Sprintf("h%05d/cpu", i), Kind: KindSensor, Addr: "a:1",
		}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ns.Handle(Request{Op: OpLookup, Reg: Registration{Name: fmt.Sprintf("h%05d/cpu", i%n)}})
		if r.Error != "" {
			b.Fatal(r.Error)
		}
	}
}
