package nwsnet

import (
	"sync"
	"testing"
	"time"
)

func TestConnPipelinesRequests(t *testing.T) {
	m := NewMemory(0)
	addr := startServer(t, m)
	pc := NewConn(addr, time.Second)
	defer pc.Close()

	for i := 0; i < 50; i++ {
		if err := pc.Store("k", [][2]float64{{float64(i), 0.5}}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len("k") != 50 {
		t.Fatalf("stored %d points, want 50", m.Len("k"))
	}
	if err := pc.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestConnProtocolErrorKeepsConnection(t *testing.T) {
	addr := startServer(t, NewMemory(0))
	pc := NewConn(addr, time.Second)
	defer pc.Close()
	if err := pc.Store("", nil); err == nil {
		t.Fatal("invalid store accepted")
	}
	// The connection must still work after a protocol-level error.
	if err := pc.Store("k", [][2]float64{{1, 1}}); err != nil {
		t.Fatalf("connection poisoned by protocol error: %v", err)
	}
}

func TestConnRedialsAfterServerRestart(t *testing.T) {
	m := NewMemory(0)
	srv := NewServer(m, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pc := NewConn(addr, time.Second)
	defer pc.Close()
	if err := pc.Store("k", [][2]float64{{1, 1}}); err != nil {
		t.Fatal(err)
	}

	// Restart the server on the same address.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(m, nil)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	// The old connection is dead; Do must transparently redial.
	if err := pc.Store("k", [][2]float64{{2, 1}}); err != nil {
		t.Fatalf("redial failed: %v", err)
	}
	if m.Len("k") != 2 {
		t.Fatalf("points = %d, want 2", m.Len("k"))
	}
}

func TestConnUnreachable(t *testing.T) {
	pc := NewConn("127.0.0.1:1", 200*time.Millisecond)
	defer pc.Close()
	if err := pc.Ping(); err == nil {
		t.Fatal("ping to nowhere succeeded")
	}
}

func TestConnConcurrentUse(t *testing.T) {
	m := NewMemory(0)
	addr := startServer(t, m)
	pc := NewConn(addr, 2*time.Second)
	defer pc.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Distinct series per goroutine to avoid ordering conflicts.
			key := SeriesKey("host", string(rune('a'+g)))
			for i := 0; i < 20; i++ {
				if err := pc.Store(key, [][2]float64{{float64(i), 0.1}}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g := 0; g < 20; g++ {
		key := SeriesKey("host", string(rune('a'+g)))
		if m.Len(key) != 20 {
			t.Fatalf("series %s has %d points, want 20", key, m.Len(key))
		}
	}
}

func TestConnCloseThenReuse(t *testing.T) {
	addr := startServer(t, NewMemory(0))
	pc := NewConn(addr, time.Second)
	if err := pc.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is not terminal: the next call redials.
	if err := pc.Ping(); err != nil {
		t.Fatalf("reuse after Close failed: %v", err)
	}
	pc.Close()
	if err := pc.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestServerHandlesManyConcurrentClients(t *testing.T) {
	m := NewMemory(0)
	addr := startServer(t, m)
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for g := 0; g < 30; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewClient(2 * time.Second)
			key := SeriesKey("stress", string(rune('a'+g)))
			for i := 0; i < 10; i++ {
				if err := c.Store(addr, key, [][2]float64{{float64(i), 1}}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
