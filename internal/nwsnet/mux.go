package nwsnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrMuxClosed reports a call issued on (or pending in) a MuxConn that was
// closed by Close.
var ErrMuxClosed = errors.New("nwsnet: mux connection closed")

// MuxConn is one binary-codec connection carrying many requests in flight
// at once — the pipelining client of wire protocol v2. Where Conn and
// Client run in lockstep (one request, wait, one response), a MuxConn tags
// every request with an ID, keeps sending, and routes responses back as
// they arrive, so wire throughput is bounded by bandwidth and server
// capacity instead of round-trip latency.
//
// Concurrency: Go and Do are safe from any number of goroutines. Requests
// from a single goroutine reach the server in call order (the server
// executes a connection's requests strictly in arrival order, which is what
// makes pipelined stores on one series safe under the memory server's
// monotonic-frontier dedup); requests racing from different goroutines are
// ordered by an internal lock.
//
// Failure: with one exception, any transport error, decode error, or read
// silence past the timeout fails every pending call with the same error and
// poisons the connection; callers reconnect with DialMux. That keeps the
// failure semantics explicit — a pipeline's worth of calls can never be
// half-retried behind the caller's back. The exception is the idle-server
// cut: when the transport dies cleanly (EOF or reset at a frame boundary)
// before ANY response to the pending window has arrived — the signature of
// a server that idle-closed the connection before reading the burst — the
// MuxConn redials once and replays the window verbatim, same IDs and order,
// so an idle connection's next burst is not poisoned by a shed that
// happened before it was sent. The replay guarantee is as safe as the
// burst itself: the server provably executed none of the window (it
// answers strictly in order, and nothing came back). One redial is allowed
// per window; it re-arms only after a frame arrives on the new transport.
type MuxConn struct {
	addr    string
	timeout time.Duration
	conn    net.Conn

	// Writer side: writeMu serializes frame appends into w; flushing is
	// delegated to a dedicated flusher goroutine woken through flushCh
	// (group commit — Go never issues the write syscall itself, so frames
	// appended while a flush is pending or in progress share the next one.
	// A single pipelining goroutine batches its whole in-flight window per
	// syscall, because the flusher only runs once the issuer blocks).
	writeMu sync.Mutex
	w       *bufio.Writer
	flushCh chan struct{}

	// In-flight calls, oldest first. The server answers a connection's
	// requests strictly in arrival order (docs/PROTOCOL.md §3.5), so a FIFO
	// replaces a pending-ID map: matching a response is one comparison at the
	// head instead of a hash and two map operations per request, and the
	// oldest call (the read-timeout reference) is simply the front. Entries
	// removed out of order (encode failures, or a server answering out of
	// spec) are nil'd in place and skipped. head is the index of the front;
	// the slice is compacted as it drains.
	mu     sync.Mutex
	calls  []*MuxCall
	head   int
	nextID uint64
	err    error
	quit   chan struct{} // closed by the first fail; stops the flusher

	// Subscription routing (guarded by mu): server pushes carry the
	// subscription's original request ID, which the FIFO no longer holds
	// once the acknowledgement drained it, so pushes route through this map.
	subs        map[uint64]*muxSub
	subBySeries map[string]uint64

	// Redial-and-replay state (guarded by mu): when the last frame on the
	// current transport predates the oldest pending call, none of the
	// pending window has been answered. cut marks a transport that died
	// cleanly while completely idle — the reader parks on wake until the
	// next call, which then redials and replays through the window path
	// instead of poisoning an idle connection.
	lastFrame time.Time
	redialed  bool
	cut       bool
	wake      chan struct{}

	readerDone  chan struct{}
	flusherDone chan struct{}
}

// muxSub is one client-side subscription: the handler that receives the
// series' push frames.
type muxSub struct {
	series string
	onPush func(Response, error)
}

// MuxCall is one in-flight request on a MuxConn. Wait blocks until the call
// completes with either Resp or Err set.
type MuxCall struct {
	Req  Request
	Resp Response
	Err  error

	id   uint64
	t0   time.Time
	done sync.WaitGroup
}

// deliver completes the call. Every completion site first removes the call
// from the connection's FIFO under mu, so it runs exactly once per call.
func (c *MuxCall) deliver() { c.done.Done() }

// Wait blocks until the call completes and returns its outcome. It may be
// called any number of times, from any goroutine.
func (c *MuxCall) Wait() (Response, error) {
	c.done.Wait()
	return c.Resp, c.Err
}

// DialMux connects to addr and negotiates the binary codec. timeout bounds
// the dial and, after it, how long the connection may go without receiving
// anything while responses are pending (0 selects 5 s).
func DialMux(addr string, timeout time.Duration) (*MuxConn, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("nwsnet: dial %s: %w", addr, err)
	}
	nc.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := nc.Write(wirePreamble[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("nwsnet: negotiate with %s: %w", addr, err)
	}
	nc.SetWriteDeadline(time.Time{})
	m := &MuxConn{
		addr:        addr,
		timeout:     timeout,
		conn:        nc,
		w:           bufio.NewWriterSize(nc, 64<<10),
		flushCh:     make(chan struct{}, 1),
		quit:        make(chan struct{}),
		readerDone:  make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	go m.reader()
	go m.flusher()
	return m, nil
}

// DialMuxTenant is DialMux plus tenant attribution: it sends an OpHello
// naming tenant as the connection's first request and waits for the
// acknowledgement, so every later request lands in that tenant's quota
// bucket (ServerLimits.TenantRate). An empty tenant skips the hello.
func DialMuxTenant(addr, tenant string, timeout time.Duration) (*MuxConn, error) {
	m, err := DialMux(addr, timeout)
	if err != nil {
		return nil, err
	}
	if tenant == "" {
		return m, nil
	}
	if _, err := m.Do(Request{Op: OpHello, Tenant: tenant}); err != nil {
		m.Close()
		return nil, fmt.Errorf("nwsnet: hello to %s: %w", addr, err)
	}
	return m, nil
}

// Addr returns the dialed server address.
func (m *MuxConn) Addr() string { return m.addr }

// InFlight reports how many calls are awaiting responses.
func (m *MuxConn) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.calls[m.head:] {
		if c != nil {
			n++
		}
	}
	return n
}

// Go sends req without waiting and returns the in-flight call; wait on
// call.Wait. The returned call may already be complete (with
// Err set) if the connection is poisoned or the request unencodable.
func (m *MuxConn) Go(req Request) *MuxCall {
	return m.goWith(req, nil)
}

// goWith is Go with an optional hook run under mu right after the request
// ID is allocated — the subscribe path registers its push routing there, so
// no acknowledgement (and hence no push) can arrive unrouted.
func (m *MuxConn) goWith(req Request, onID func(id uint64)) *MuxCall {
	call := &MuxCall{Req: req, t0: time.Now()}
	call.done.Add(1)
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		call.Err = err
		call.deliver()
		return call
	}
	m.nextID++
	id := m.nextID
	call.id = id
	if onID != nil {
		onID(id)
	}
	// Compact the drained prefix before it can grow without bound under a
	// long-lived pipeline.
	if m.head > 1024 {
		m.calls = m.calls[:copy(m.calls, m.calls[m.head:])]
		m.head = 0
	}
	m.calls = append(m.calls, call)
	if m.cut {
		// The transport died while idle and the reader is parked: do not
		// touch the dead writer — wake the reader, which redials and
		// replays this call (and any racing with it) on the fresh
		// transport, in FIFO order.
		select {
		case m.wake <- struct{}{}:
		default:
		}
		m.mu.Unlock()
		return call
	}
	m.mu.Unlock()

	buf := getEncBuf()
	payload, err := encodeRequestPayload(*buf, id, req)
	if err != nil {
		putEncBuf(buf)
		if m.forget(id) {
			call.Err = fmt.Errorf("nwsnet: encode for %s: %w", m.addr, err)
			observeCall(req.Op, call.t0, call.Err)
			call.deliver()
		}
		return call
	}
	m.writeMu.Lock()
	// Arm the write deadline once per flush batch (the buffer is empty
	// exactly when a batch starts); it bounds a stalled server without a
	// deadline syscall per request.
	if m.w.Buffered() == 0 {
		m.conn.SetWriteDeadline(time.Now().Add(m.timeout))
	}
	werr := writeFrame(m.w, payload)
	m.writeMu.Unlock()
	*buf = payload
	putEncBuf(buf)
	if werr != nil {
		m.fail(fmt.Errorf("nwsnet: send to %s: %w", m.addr, werr))
		return call
	}
	// Wake the flusher; if a wakeup is already queued the pending flush
	// covers this frame too (group commit).
	select {
	case m.flushCh <- struct{}{}:
	default:
	}
	return call
}

// flusher issues the write syscalls for every frame Go appends. Keeping the
// flush off the caller's goroutine is what makes the group commit work: a
// pipelining caller appends its whole window before the flusher is
// scheduled, so the window ships in one syscall instead of one per frame.
func (m *MuxConn) flusher() {
	defer close(m.flusherDone)
	for {
		select {
		case <-m.quit:
			return
		case <-m.flushCh:
		}
		m.writeMu.Lock()
		var werr error
		if m.w.Buffered() > 0 {
			m.conn.SetWriteDeadline(time.Now().Add(m.timeout))
			werr = m.w.Flush()
		}
		m.writeMu.Unlock()
		if werr != nil {
			m.fail(fmt.Errorf("nwsnet: send to %s: %w", m.addr, werr))
			return
		}
	}
}

// Do sends req and waits for its response — Go plus Wait.
func (m *MuxConn) Do(req Request) (Response, error) {
	return m.Go(req).Wait()
}

// Subscribe registers onPush for server-initiated forecast pushes on series
// and issues the subscribe request; the returned call's Wait yields the
// acknowledgement (carrying the current forecast when one is computable).
// onPush runs on the connection's reader goroutine, so it must not block.
// It receives (resp, nil) for every push, and exactly one terminal call
// (resp, err) when the subscription ends without Unsubscribe: a moved push
// during a cluster rebalance (err wraps *MovedError and resp carries the
// authoritative view — redial the new owner), a lost transport, or Close.
// A connection holds at most one subscription per series; re-subscribing
// replaces the handler.
func (m *MuxConn) Subscribe(series string, onPush func(Response, error)) *MuxCall {
	if onPush == nil {
		onPush = func(Response, error) {}
	}
	return m.goWith(Request{Op: OpSubscribe, Series: series}, func(id uint64) {
		if m.subs == nil {
			m.subs = make(map[uint64]*muxSub)
			m.subBySeries = make(map[string]uint64)
		}
		if old, ok := m.subBySeries[series]; ok {
			delete(m.subs, old)
		}
		m.subs[id] = &muxSub{series: series, onPush: onPush}
		m.subBySeries[series] = id
	})
}

// Unsubscribe stops pushes for series and issues the unsubscribe request.
// The push handler gets no terminal call (the caller asked), and
// unsubscribing a series that was never subscribed is not an error.
func (m *MuxConn) Unsubscribe(series string) *MuxCall {
	m.mu.Lock()
	if id, ok := m.subBySeries[series]; ok {
		delete(m.subBySeries, series)
		delete(m.subs, id)
	}
	m.mu.Unlock()
	return m.Go(Request{Op: OpUnsubscribe, Series: series})
}

// Subscriptions reports how many subscriptions are active on the
// connection.
func (m *MuxConn) Subscriptions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.subs)
}

// dropSub removes the push routing for id, reporting the subscription if
// one was registered.
func (m *MuxConn) dropSub(id uint64) *muxSub {
	m.mu.Lock()
	defer m.mu.Unlock()
	sub := m.subs[id]
	if sub != nil {
		delete(m.subs, id)
		if m.subBySeries[sub.series] == id {
			delete(m.subBySeries, sub.series)
		}
	}
	return sub
}

// oldestPending returns the issue time of the longest-waiting pending call,
// or the zero time when nothing is pending. Calls are issued in t0 order, so
// it is the front of the FIFO.
func (m *MuxConn) oldestPending() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.calls[m.head:] {
		if c != nil {
			return c.t0
		}
	}
	return time.Time{}
}

// forget drops a pending call that never made it onto the wire, reporting
// whether it was still pending (false means a concurrent fail completed it).
// Any push routing registered for the ID goes with it.
func (m *MuxConn) forget(id uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sub := m.subs[id]; sub != nil {
		delete(m.subs, id)
		if m.subBySeries[sub.series] == id {
			delete(m.subBySeries, sub.series)
		}
	}
	for i := len(m.calls) - 1; i >= m.head; i-- {
		if c := m.calls[i]; c != nil && c.id == id {
			m.calls[i] = nil
			return true
		}
	}
	return false
}

// take removes and returns the pending call with the given response ID, or
// nil when no such call is in flight. The fast path is one comparison: the
// server answers in request order, so the match is at the front.
func (m *MuxConn) take(id uint64) *MuxCall {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head < len(m.calls) && m.calls[m.head] == nil {
		m.head++
	}
	if m.head == len(m.calls) {
		m.calls = m.calls[:0]
		m.head = 0
		return nil
	}
	if c := m.calls[m.head]; c.id == id {
		m.calls[m.head] = nil
		m.head++
		if m.head == len(m.calls) {
			m.calls = m.calls[:0]
			m.head = 0
		}
		return c
	}
	// A server answering out of arrival order is out of spec but harmless
	// to tolerate: find the call wherever it is.
	for i := m.head; i < len(m.calls); i++ {
		if c := m.calls[i]; c != nil && c.id == id {
			m.calls[i] = nil
			return c
		}
	}
	return nil
}

// fail poisons the connection: every pending call (and every later Go)
// completes with err, and every subscription gets its terminal push.
// Idempotent — the first failure wins.
func (m *MuxConn) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
		close(m.quit)
	} else {
		err = m.err
	}
	pending := m.calls[m.head:]
	m.calls = nil
	m.head = 0
	subs := m.subs
	m.subs = nil
	m.subBySeries = nil
	m.mu.Unlock()
	// The conn pointer swaps under writeMu during a redial; close under it.
	m.writeMu.Lock()
	m.conn.Close()
	m.writeMu.Unlock()
	for _, call := range pending {
		if call == nil {
			continue
		}
		call.Err = err
		observeCall(call.Req.Op, call.t0, call.Err)
		call.deliver()
	}
	for _, sub := range subs {
		sub.onPush(Response{}, err)
	}
}

// Close poisons the connection and releases it. Pending calls complete with
// ErrMuxClosed.
func (m *MuxConn) Close() error {
	m.fail(ErrMuxClosed)
	<-m.readerDone
	<-m.flusherDone
	return nil
}

// reader consumes the accept byte and then routes response frames to their
// pending calls until the connection dies.
func (m *MuxConn) reader() {
	defer close(m.readerDone)
	br := bufio.NewReaderSize(m.conn, 256<<10)
	m.conn.SetReadDeadline(time.Now().Add(m.timeout))
	accept, err := br.ReadByte()
	if err != nil {
		m.fail(fmt.Errorf("nwsnet: negotiate with %s: %w", m.addr, err))
		return
	}
	if accept != wireVersionBinary {
		m.fail(fmt.Errorf("nwsnet: %s accepted wire version %d, not binary (%d)", m.addr, accept, wireVersionBinary))
		return
	}
	var buf []byte
	for {
		// Re-arm the read deadline only when the next frame has to touch the
		// socket; frames already sitting in the read buffer (the common case
		// under pipelining — responses arrive in flush batches) decode
		// without a deadline syscall.
		if br.Buffered() == 0 {
			m.conn.SetReadDeadline(time.Now().Add(m.timeout))
		}
		payload, n, err := readFrame(br, &buf)
		if err != nil {
			// A timeout that consumed nothing is fatal only when some call
			// has actually waited out the full timeout — the deadline was
			// armed before those calls were issued, so a young pipeline gets
			// the next lap. A timeout that cut a frame in half is always
			// fatal, because binary framing cannot resynchronize.
			if isTimeout(err) && n == 0 {
				oldest := m.oldestPending()
				if oldest.IsZero() || time.Since(oldest) < m.timeout {
					continue
				}
			} else if n == 0 {
				// A clean cut at a frame boundary. Completely idle (nothing
				// pending, no subscriptions): park until the next call needs
				// a transport. Then — parked or not — if nothing in the
				// pending window has been answered, the server closed before
				// reading it: redial once and replay.
				m.parkOnCut()
				if nbr, ok := m.tryRedial(); ok {
					br = nbr
					continue
				}
			}
			m.fail(fmt.Errorf("nwsnet: receive from %s: %w", m.addr, err))
			return
		}
		m.noteFrame()
		id, resp, err := decodeResponsePayload(payload)
		if err != nil {
			m.fail(fmt.Errorf("nwsnet: receive from %s: %w", m.addr, err))
			return
		}
		if id == 0 {
			// Connection-level response: the server shed this connection
			// without reading anything; it answers every pending call.
			if resp.Code == CodeBusy {
				m.fail(fmt.Errorf("nwsnet: %s: %s: %w", m.addr, resp.Error, errBusySentinel))
				return
			}
			continue // unknown connection-level frame: ignore
		}
		rerr := respError(m.addr, resp)
		call := m.take(id)
		if call == nil {
			// Not a pending call: a push frame for a subscription (or a
			// duplicate/unsolicited ID, which drops here too). An error push
			// is terminal — a moved push during a rebalance means the server
			// already discarded the subscription.
			if sub := m.routeSub(id, rerr != nil); sub != nil {
				sub.onPush(resp, rerr)
			}
			continue
		}
		if rerr != nil {
			call.Err = rerr
			if call.Req.Op == OpSubscribe {
				m.dropSub(id) // refused: nothing registered server-side
			}
		} else {
			call.Resp = resp
		}
		observeCall(call.Req.Op, call.t0, call.Err)
		call.deliver()
	}
}

// noteFrame records a successful frame receipt on the current transport:
// the redial gate re-arms, and the pending window is marked answered.
func (m *MuxConn) noteFrame() {
	m.mu.Lock()
	m.lastFrame = time.Now()
	m.redialed = false
	m.mu.Unlock()
}

// routeSub resolves a push frame's subscription; terminal removes it.
func (m *MuxConn) routeSub(id uint64, terminal bool) *muxSub {
	if terminal {
		return m.dropSub(id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.subs[id]
}

// parkOnCut handles a clean transport cut with nothing in flight and no
// subscriptions: poisoning would make the connection's very idleness fatal
// (a server idle-timeout reaps quiet transports), and reconnecting eagerly
// would race the same reaper in a dial loop. Instead the reader closes the
// dead transport and parks until the next call arrives; that call is
// appended unsent and the reader replays it through the normal redial
// window. No-op when the cut has in-flight state to deal with.
func (m *MuxConn) parkOnCut() {
	m.mu.Lock()
	pending := false
	for _, c := range m.calls[m.head:] {
		if c != nil {
			pending = true
			break
		}
	}
	if m.err != nil || pending || len(m.subs) > 0 {
		m.mu.Unlock()
		return
	}
	if m.wake == nil {
		m.wake = make(chan struct{}, 1)
	}
	// Drain any stale wake left from a previous burst (extra calls signal
	// into the buffer after the reader is already up). goWith only signals
	// while cut is set, and cut is set under this same lock, so anything
	// in the buffer here predates this park.
	select {
	case <-m.wake:
	default:
	}
	m.cut = true
	wake := m.wake
	m.mu.Unlock()
	m.writeMu.Lock()
	m.conn.Close() // dead transport; release it while parked
	m.writeMu.Unlock()
	select {
	case <-wake:
	case <-m.quit:
	}
}

// tryRedial is the one-shot transparent reconnect: called by the reader on
// a clean transport cut, it checks that the pending window is entirely
// unanswered (the server answers strictly in order, so no frame since the
// oldest pending call means none of the window executed), dials a fresh
// connection, and replays the window verbatim — same IDs, same order. It
// returns the new transport's reader on success. Subscriptions that were
// already acknowledged lived on the dead connection's server state and do
// not survive: they get a terminal push telling the caller to re-subscribe.
// Un-acked subscribes in the window replay and re-register normally.
func (m *MuxConn) tryRedial() (*bufio.Reader, bool) {
	m.writeMu.Lock()
	m.mu.Lock()
	m.cut = false // calls append-and-write normally from here on
	if m.err != nil || m.redialed {
		m.mu.Unlock()
		m.writeMu.Unlock()
		return nil, false
	}
	var window []*MuxCall
	pendingIDs := make(map[uint64]struct{})
	for _, c := range m.calls[m.head:] {
		if c != nil {
			window = append(window, c)
			pendingIDs[c.id] = struct{}{}
		}
	}
	if len(window) == 0 || !m.lastFrame.Before(window[0].t0) {
		m.mu.Unlock()
		m.writeMu.Unlock()
		return nil, false
	}
	m.redialed = true
	var ended []*muxSub
	for id, sub := range m.subs {
		if _, pending := pendingIDs[id]; pending {
			continue
		}
		delete(m.subs, id)
		if m.subBySeries[sub.series] == id {
			delete(m.subBySeries, sub.series)
		}
		ended = append(ended, sub)
	}
	m.mu.Unlock()
	br, ok := m.replayWindow(window)
	m.writeMu.Unlock()
	if len(ended) > 0 {
		err := fmt.Errorf("nwsnet: %s: subscription lost to reconnect; re-subscribe", m.addr)
		for _, sub := range ended {
			sub.onPush(Response{}, err)
		}
	}
	return br, ok
}

// replayWindow dials, negotiates, swaps the transport in, and re-sends the
// window. Callers hold writeMu (no frame can interleave with the replay).
// On failure the caller poisons the connection with the original error.
func (m *MuxConn) replayWindow(window []*MuxCall) (*bufio.Reader, bool) {
	nc, err := net.DialTimeout("tcp", m.addr, m.timeout)
	if err != nil {
		return nil, false
	}
	nc.SetWriteDeadline(time.Now().Add(m.timeout))
	if _, err := nc.Write(wirePreamble[:]); err != nil {
		nc.Close()
		return nil, false
	}
	old := m.conn
	m.conn = nc
	m.w.Reset(nc) // unflushed frames are pending calls; they replay below
	old.Close()
	for _, c := range window {
		buf := getEncBuf()
		payload, perr := encodeRequestPayload(*buf, c.id, c.Req)
		if perr == nil {
			perr = writeFrame(m.w, payload)
			*buf = payload
		}
		putEncBuf(buf)
		if perr != nil {
			return nil, false
		}
	}
	if m.w.Flush() != nil {
		return nil, false
	}
	nc.SetWriteDeadline(time.Time{})
	// The server buffers its accept byte in front of the first response
	// (negotiation costs zero round trips), so it can be read only after
	// the window is on the wire — waiting for it before sending would
	// deadlock against a server waiting out its idle deadline for a frame.
	nc.SetReadDeadline(time.Now().Add(m.timeout))
	br := bufio.NewReaderSize(nc, 256<<10)
	accept, err := br.ReadByte()
	if err != nil || accept != wireVersionBinary {
		return nil, false
	}
	nc.SetReadDeadline(time.Time{})
	mMuxRedials.Inc()
	return br, true
}
