package nwsnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrMuxClosed reports a call issued on (or pending in) a MuxConn that was
// closed by Close.
var ErrMuxClosed = errors.New("nwsnet: mux connection closed")

// MuxConn is one binary-codec connection carrying many requests in flight
// at once — the pipelining client of wire protocol v2. Where Conn and
// Client run in lockstep (one request, wait, one response), a MuxConn tags
// every request with an ID, keeps sending, and routes responses back as
// they arrive, so wire throughput is bounded by bandwidth and server
// capacity instead of round-trip latency.
//
// Concurrency: Go and Do are safe from any number of goroutines. Requests
// from a single goroutine reach the server in call order (the server
// executes a connection's requests strictly in arrival order, which is what
// makes pipelined stores on one series safe under the memory server's
// monotonic-frontier dedup); requests racing from different goroutines are
// ordered by an internal lock.
//
// Failure: a MuxConn does not redial. Any transport error, decode error, or
// read silence past the timeout fails every pending call with the same
// error and poisons the connection; callers reconnect with DialMux. That
// keeps the failure semantics explicit — a pipeline's worth of calls can
// never be half-retried behind the caller's back. The read timeout spans
// pending responses, so an idle MuxConn (nothing in flight) is not
// disturbed, but an idle connection's next burst redials only on error.
type MuxConn struct {
	addr    string
	timeout time.Duration
	conn    net.Conn

	// Writer side: writeMu serializes frame appends into w; flushing is
	// delegated to a dedicated flusher goroutine woken through flushCh
	// (group commit — Go never issues the write syscall itself, so frames
	// appended while a flush is pending or in progress share the next one.
	// A single pipelining goroutine batches its whole in-flight window per
	// syscall, because the flusher only runs once the issuer blocks).
	writeMu sync.Mutex
	w       *bufio.Writer
	flushCh chan struct{}

	// In-flight calls, oldest first. The server answers a connection's
	// requests strictly in arrival order (docs/PROTOCOL.md §3.5), so a FIFO
	// replaces a pending-ID map: matching a response is one comparison at the
	// head instead of a hash and two map operations per request, and the
	// oldest call (the read-timeout reference) is simply the front. Entries
	// removed out of order (encode failures, or a server answering out of
	// spec) are nil'd in place and skipped. head is the index of the front;
	// the slice is compacted as it drains.
	mu     sync.Mutex
	calls  []*MuxCall
	head   int
	nextID uint64
	err    error
	quit   chan struct{} // closed by the first fail; stops the flusher

	readerDone  chan struct{}
	flusherDone chan struct{}
}

// MuxCall is one in-flight request on a MuxConn. Wait blocks until the call
// completes with either Resp or Err set.
type MuxCall struct {
	Req  Request
	Resp Response
	Err  error

	id   uint64
	t0   time.Time
	done sync.WaitGroup
}

// deliver completes the call. Every completion site first removes the call
// from the connection's FIFO under mu, so it runs exactly once per call.
func (c *MuxCall) deliver() { c.done.Done() }

// Wait blocks until the call completes and returns its outcome. It may be
// called any number of times, from any goroutine.
func (c *MuxCall) Wait() (Response, error) {
	c.done.Wait()
	return c.Resp, c.Err
}

// DialMux connects to addr and negotiates the binary codec. timeout bounds
// the dial and, after it, how long the connection may go without receiving
// anything while responses are pending (0 selects 5 s).
func DialMux(addr string, timeout time.Duration) (*MuxConn, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("nwsnet: dial %s: %w", addr, err)
	}
	nc.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := nc.Write(wirePreamble[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("nwsnet: negotiate with %s: %w", addr, err)
	}
	nc.SetWriteDeadline(time.Time{})
	m := &MuxConn{
		addr:        addr,
		timeout:     timeout,
		conn:        nc,
		w:           bufio.NewWriterSize(nc, 64<<10),
		flushCh:     make(chan struct{}, 1),
		quit:        make(chan struct{}),
		readerDone:  make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	go m.reader()
	go m.flusher()
	return m, nil
}

// Addr returns the dialed server address.
func (m *MuxConn) Addr() string { return m.addr }

// InFlight reports how many calls are awaiting responses.
func (m *MuxConn) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.calls[m.head:] {
		if c != nil {
			n++
		}
	}
	return n
}

// Go sends req without waiting and returns the in-flight call; wait on
// call.Wait. The returned call may already be complete (with
// Err set) if the connection is poisoned or the request unencodable.
func (m *MuxConn) Go(req Request) *MuxCall {
	call := &MuxCall{Req: req, t0: time.Now()}
	call.done.Add(1)
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		call.Err = err
		call.deliver()
		return call
	}
	m.nextID++
	id := m.nextID
	call.id = id
	// Compact the drained prefix before it can grow without bound under a
	// long-lived pipeline.
	if m.head > 1024 {
		m.calls = m.calls[:copy(m.calls, m.calls[m.head:])]
		m.head = 0
	}
	m.calls = append(m.calls, call)
	m.mu.Unlock()

	buf := getEncBuf()
	payload, err := encodeRequestPayload(*buf, id, req)
	if err != nil {
		putEncBuf(buf)
		if m.forget(id) {
			call.Err = fmt.Errorf("nwsnet: encode for %s: %w", m.addr, err)
			observeCall(req.Op, call.t0, call.Err)
			call.deliver()
		}
		return call
	}
	m.writeMu.Lock()
	// Arm the write deadline once per flush batch (the buffer is empty
	// exactly when a batch starts); it bounds a stalled server without a
	// deadline syscall per request.
	if m.w.Buffered() == 0 {
		m.conn.SetWriteDeadline(time.Now().Add(m.timeout))
	}
	werr := writeFrame(m.w, payload)
	m.writeMu.Unlock()
	*buf = payload
	putEncBuf(buf)
	if werr != nil {
		m.fail(fmt.Errorf("nwsnet: send to %s: %w", m.addr, werr))
		return call
	}
	// Wake the flusher; if a wakeup is already queued the pending flush
	// covers this frame too (group commit).
	select {
	case m.flushCh <- struct{}{}:
	default:
	}
	return call
}

// flusher issues the write syscalls for every frame Go appends. Keeping the
// flush off the caller's goroutine is what makes the group commit work: a
// pipelining caller appends its whole window before the flusher is
// scheduled, so the window ships in one syscall instead of one per frame.
func (m *MuxConn) flusher() {
	defer close(m.flusherDone)
	for {
		select {
		case <-m.quit:
			return
		case <-m.flushCh:
		}
		m.writeMu.Lock()
		var werr error
		if m.w.Buffered() > 0 {
			m.conn.SetWriteDeadline(time.Now().Add(m.timeout))
			werr = m.w.Flush()
		}
		m.writeMu.Unlock()
		if werr != nil {
			m.fail(fmt.Errorf("nwsnet: send to %s: %w", m.addr, werr))
			return
		}
	}
}

// Do sends req and waits for its response — Go plus Wait.
func (m *MuxConn) Do(req Request) (Response, error) {
	return m.Go(req).Wait()
}

// oldestPending returns the issue time of the longest-waiting pending call,
// or the zero time when nothing is pending. Calls are issued in t0 order, so
// it is the front of the FIFO.
func (m *MuxConn) oldestPending() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.calls[m.head:] {
		if c != nil {
			return c.t0
		}
	}
	return time.Time{}
}

// forget drops a pending call that never made it onto the wire, reporting
// whether it was still pending (false means a concurrent fail completed it).
func (m *MuxConn) forget(id uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.calls) - 1; i >= m.head; i-- {
		if c := m.calls[i]; c != nil && c.id == id {
			m.calls[i] = nil
			return true
		}
	}
	return false
}

// take removes and returns the pending call with the given response ID, or
// nil when no such call is in flight. The fast path is one comparison: the
// server answers in request order, so the match is at the front.
func (m *MuxConn) take(id uint64) *MuxCall {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head < len(m.calls) && m.calls[m.head] == nil {
		m.head++
	}
	if m.head == len(m.calls) {
		m.calls = m.calls[:0]
		m.head = 0
		return nil
	}
	if c := m.calls[m.head]; c.id == id {
		m.calls[m.head] = nil
		m.head++
		if m.head == len(m.calls) {
			m.calls = m.calls[:0]
			m.head = 0
		}
		return c
	}
	// A server answering out of arrival order is out of spec but harmless
	// to tolerate: find the call wherever it is.
	for i := m.head; i < len(m.calls); i++ {
		if c := m.calls[i]; c != nil && c.id == id {
			m.calls[i] = nil
			return c
		}
	}
	return nil
}

// fail poisons the connection: every pending call (and every later Go)
// completes with err. Idempotent — the first failure wins.
func (m *MuxConn) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
		close(m.quit)
	} else {
		err = m.err
	}
	pending := m.calls[m.head:]
	m.calls = nil
	m.head = 0
	m.mu.Unlock()
	m.conn.Close()
	for _, call := range pending {
		if call == nil {
			continue
		}
		call.Err = err
		observeCall(call.Req.Op, call.t0, call.Err)
		call.deliver()
	}
}

// Close poisons the connection and releases it. Pending calls complete with
// ErrMuxClosed.
func (m *MuxConn) Close() error {
	m.fail(ErrMuxClosed)
	<-m.readerDone
	<-m.flusherDone
	return nil
}

// reader consumes the accept byte and then routes response frames to their
// pending calls until the connection dies.
func (m *MuxConn) reader() {
	defer close(m.readerDone)
	br := bufio.NewReaderSize(m.conn, 256<<10)
	m.conn.SetReadDeadline(time.Now().Add(m.timeout))
	accept, err := br.ReadByte()
	if err != nil {
		m.fail(fmt.Errorf("nwsnet: negotiate with %s: %w", m.addr, err))
		return
	}
	if accept != wireVersionBinary {
		m.fail(fmt.Errorf("nwsnet: %s accepted wire version %d, not binary (%d)", m.addr, accept, wireVersionBinary))
		return
	}
	var buf []byte
	for {
		// Re-arm the read deadline only when the next frame has to touch the
		// socket; frames already sitting in the read buffer (the common case
		// under pipelining — responses arrive in flush batches) decode
		// without a deadline syscall.
		if br.Buffered() == 0 {
			m.conn.SetReadDeadline(time.Now().Add(m.timeout))
		}
		payload, n, err := readFrame(br, &buf)
		if err != nil {
			// A timeout that consumed nothing is fatal only when some call
			// has actually waited out the full timeout — the deadline was
			// armed before those calls were issued, so a young pipeline gets
			// the next lap. A timeout that cut a frame in half is always
			// fatal, because binary framing cannot resynchronize.
			if isTimeout(err) && n == 0 {
				oldest := m.oldestPending()
				if oldest.IsZero() || time.Since(oldest) < m.timeout {
					continue
				}
			}
			m.fail(fmt.Errorf("nwsnet: receive from %s: %w", m.addr, err))
			return
		}
		id, resp, err := decodeResponsePayload(payload)
		if err != nil {
			m.fail(fmt.Errorf("nwsnet: receive from %s: %w", m.addr, err))
			return
		}
		if id == 0 {
			// Connection-level response: the server shed this connection
			// without reading anything; it answers every pending call.
			if resp.Code == CodeBusy {
				m.fail(fmt.Errorf("nwsnet: %s: %s: %w", m.addr, resp.Error, errBusySentinel))
				return
			}
			continue // unknown connection-level frame: ignore
		}
		call := m.take(id)
		if call == nil {
			continue // duplicate or unsolicited ID: ignore
		}
		if rerr := respError(m.addr, resp); rerr != nil {
			call.Err = rerr
		} else {
			call.Resp = resp
		}
		observeCall(call.Req.Op, call.t0, call.Err)
		call.deliver()
	}
}
