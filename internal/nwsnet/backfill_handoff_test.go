package nwsnet

import (
	"context"
	"testing"

	"nwscpu/internal/nwsnet/cluster"
)

// handoffView builds a two-member active view whose ring (replication 1)
// assigns key to wantOwner, searching ring seeds deterministically.
func handoffView(t *testing.T, key, wantOwner string) cluster.View {
	t.Helper()
	for seed := uint64(0); seed < 256; seed++ {
		v := cluster.View{
			Epoch:  2,
			Config: cluster.Config{Replication: 1, VNodes: 16, Seed: seed},
			Members: []cluster.Member{
				{ID: "node-a", Kind: string(KindMemory), Addr: "a:1", State: cluster.StateActive},
				{ID: "node-b", Kind: string(KindMemory), Addr: "b:1", State: cluster.StateActive},
			},
		}
		ring := v.Ring(string(KindMemory))
		owners := ring.Owners(key, 1)
		if len(owners) == 1 && owners[0] == wantOwner {
			return v
		}
	}
	t.Fatalf("no ring seed assigns %q to %s", key, wantOwner)
	return cluster.View{}
}

func storeSeq(t *testing.T, h Handler, key string, from, to int) {
	t.Helper()
	var pts [][2]float64
	for i := from; i <= to; i++ {
		pts = append(pts, [2]float64{float64(i), float64(i) / 100})
	}
	if resp := h.Handle(Request{Op: OpStore, Series: key, Points: pts}); resp.Error != "" {
		t.Fatalf("store: %v", resp.Error)
	}
}

// TestHandoffBatchFetchSemantics replays the ClusterAgent.sync handoff —
// batch fetches against the previous owner, Backfill into the new owner —
// through the exact batch envelope the agent uses, pinning the fetch range
// semantics on that path: To == 0 is open-ended, an inverted [from, to)
// yields empty without an error, and a held-but-no-longer-owned series is
// still served by the old owner. PR 4 pinned these on the server fetch
// path; this is the batch-backfill twin.
func TestHandoffBatchFetchSemantics(t *testing.T) {
	const key = "handoff-host/cpu/nws_hybrid"
	view := handoffView(t, key, "node-b") // key moves to node-b

	memA := NewMemory(0)
	nodeA := NewClusterNode("node-a", memA)
	storeSeq(t, memA, key, 1, 10) // history landed before the epoch bump
	nodeA.AdoptView(view)

	memB := NewMemory(0)
	nodeB := NewClusterNode("node-b", memB)
	nodeB.AdoptView(view)

	ctx := context.Background()
	old := NewLocalBackend(nodeA)

	// A fetch of a key node-a neither owns nor holds redirects with the
	// view; the batch envelope must carry that per-sub, not fail whole.
	res, err := NewLocalBackend(nodeA).FetchBatch(ctx, []BatchFetch{{Series: "other/cpu/m"}})
	if err != nil || len(res) != 1 {
		t.Fatalf("probe batch: %v %v", res, err)
	}
	if _, moved := IsMoved(res[0].Err); !moved &&
		view.Ring(string(KindMemory)).Owners("other/cpu/m", 1)[0] == "node-b" {
		t.Fatalf("unowned unheld fetch did not redirect: %v", res[0].Err)
	}

	// Phase 1 of sync: open-ended batch fetch (From 0, To 0) against the
	// held-but-unowned old owner, backfilled into the new owner.
	results, err := old.FetchBatch(ctx, []BatchFetch{{Series: key}})
	if err != nil || len(results) != 1 || results[0].Err != nil {
		t.Fatalf("open-ended handoff fetch: %+v %v", results, err)
	}
	if len(results[0].Points) != 10 {
		t.Fatalf("open-ended fetch returned %d points, want all 10", len(results[0].Points))
	}
	if n := memB.Backfill(key, results[0].Points); n != 10 {
		t.Fatalf("backfill inserted %d, want 10", n)
	}

	// Writes keep landing on the old owner during the window; phase 2
	// drains them with an incremental open-ended fetch from the frontier.
	storeSeq(t, memA, key, 11, 13)
	results, err = old.FetchBatch(ctx, []BatchFetch{{Series: key, From: nextAfter(10)}})
	if err != nil || results[0].Err != nil {
		t.Fatalf("incremental handoff fetch: %+v %v", results, err)
	}
	if len(results[0].Points) != 3 {
		t.Fatalf("incremental fetch returned %d points, want 3", len(results[0].Points))
	}
	if n := memB.Backfill(key, results[0].Points); n != 3 {
		t.Fatalf("incremental backfill inserted %d, want 3", n)
	}
	// Redelivering the full history is idempotent on the backfill path.
	full, _ := old.FetchBatch(ctx, []BatchFetch{{Series: key}})
	if n := memB.Backfill(key, full[0].Points); n != 0 {
		t.Fatalf("redelivered backfill inserted %d, want 0", n)
	}
	if memB.Len(key) != 13 {
		t.Fatalf("new owner holds %d points, want 13", memB.Len(key))
	}

	// Range edge cases through the cluster batch path, inline (<=4 subs)
	// and concurrent (>4 subs) envelopes alike: inverted ranges are empty,
	// not errors; To == 0 with a mid frontier returns the tail.
	for _, width := range []int{3, 6} {
		fetches := make([]BatchFetch, width)
		fetches[0] = BatchFetch{Series: key, From: 8, To: 3} // inverted
		fetches[1] = BatchFetch{Series: key, From: 12}       // open-ended tail
		for i := 2; i < width; i++ {
			fetches[i] = BatchFetch{Series: key, From: 1, To: 4}
		}
		results, err := NewLocalBackend(nodeB).FetchBatch(ctx, fetches)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if results[0].Err != nil || len(results[0].Points) != 0 {
			t.Fatalf("width %d: inverted range: %+v", width, results[0])
		}
		if results[1].Err != nil || len(results[1].Points) != 2 {
			t.Fatalf("width %d: open-ended tail: %+v", width, results[1])
		}
		for i := 2; i < width; i++ {
			if results[i].Err != nil || len(results[i].Points) != 3 {
				t.Fatalf("width %d sub %d: %+v", width, i, results[i])
			}
		}
	}
}

// TestBackfillCountSurvivesCapacityTrim pins the Backfill return value
// against the capacity trim: history merged in behind the frontier and
// immediately evicted by the ring bound was never observably inserted, so
// it must not be counted (the agent reports these counts as handoff
// progress and meters nws_cluster_handoff_bytes from them).
func TestBackfillCountSurvivesCapacityTrim(t *testing.T) {
	mem := NewMemory(5)
	storeSeq(t, mem, "k", 6, 10) // ring full of the newest five
	old := [][2]float64{{1, 0.01}, {2, 0.02}, {3, 0.03}, {4, 0.04}, {5, 0.05}}
	if n := mem.Backfill("k", old); n != 0 {
		t.Fatalf("fully trimmed backfill reported %d insertions, want 0", n)
	}
	if mem.Len("k") != 5 {
		t.Fatalf("capacity overflow: %d points", mem.Len("k"))
	}

	mem2 := NewMemory(8)
	storeSeq(t, mem2, "k", 6, 10)
	if n := mem2.Backfill("k", old); n != 3 {
		t.Fatalf("partially trimmed backfill reported %d insertions, want 3 (t=3,4,5)", n)
	}
	resp := mem2.Handle(Request{Op: OpFetch, Series: "k"})
	if len(resp.Points) != 8 || resp.Points[0][0] != 3 {
		t.Fatalf("after trim: %v", resp.Points)
	}
}

// TestBackfillKeepsStoredValuesOnEqualTimestamps pins the merge rules: a
// stored point wins over an incoming point at the same timestamp, and
// duplicate timestamps within the incoming stream collapse to one.
func TestBackfillKeepsStoredValuesOnEqualTimestamps(t *testing.T) {
	mem := NewMemory(0)
	mem.Handle(Request{Op: OpStore, Series: "k", Points: [][2]float64{{5, 0.5}}})
	n := mem.Backfill("k", [][2]float64{{5, 9.9}, {4, 0.4}, {4, 0.4}})
	if n != 1 {
		t.Fatalf("backfill inserted %d, want 1 (t=4 once)", n)
	}
	resp := mem.Handle(Request{Op: OpFetch, Series: "k"})
	want := [][2]float64{{4, 0.4}, {5, 0.5}}
	if len(resp.Points) != 2 || resp.Points[0] != want[0] || resp.Points[1] != want[1] {
		t.Fatalf("merged series = %v, want %v", resp.Points, want)
	}
}
