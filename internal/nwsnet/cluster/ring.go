package cluster

import (
	"sort"
	"strconv"
)

// Ring is a deterministic consistent-hash ring: each node contributes
// vnodes virtual points placed by a seeded FNV-1a hash, and a key is owned
// by the node whose point first follows the key's hash clockwise. The same
// (nodes, vnodes, seed) triple always yields the same ring regardless of
// input order, so every client and server that shares a view routes
// identically without coordination; when one node joins or leaves, only the
// key ranges adjacent to its points move (~1/n of the keyspace), which is
// what bounds rebalancing handoff traffic.
type Ring struct {
	vnodes int
	seed   uint64
	nodes  []string    // sorted, distinct
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring over the given node IDs. Duplicate IDs collapse to
// one node; nil is returned for an empty node set. vnodes <= 0 selects 64.
func NewRing(nodeIDs []string, vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(nodeIDs))
	nodes := make([]string, 0, len(nodeIDs))
	for _, id := range nodeIDs {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		nodes = append(nodes, id)
	}
	if len(nodes) == 0 {
		return nil
	}
	sort.Strings(nodes)
	r := &Ring{vnodes: vnodes, seed: seed, nodes: nodes}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	var buf []byte
	for ni, id := range nodes {
		for v := 0; v < vnodes; v++ {
			buf = append(buf[:0], id...)
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(v), 10)
			r.points = append(r.points, ringPoint{hash: r.hash(buf), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node ID so construction
		// stays order-independent.
		return r.nodes[r.points[i].node] < r.nodes[r.points[j].node]
	})
	return r
}

// hash is FNV-1a over the seed bytes then the key bytes, so distinct seeds
// yield independent ring layouts.
func (r *Ring) hash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	s := r.seed
	for i := 0; i < 8; i++ {
		h ^= s & 0xff
		h *= prime64
		s >>= 8
	}
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	// FNV alone clusters on near-identical inputs (vnode labels differ in a
	// suffix digit); a murmur-style finalizer avalanches the bits so ring
	// points spread evenly.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Nodes returns the ring's node IDs in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// succ returns the index of the first ring point at or after h, wrapping.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the node owning key — the first owner in preference order.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.succ(r.hash([]byte(key)))].node]
}

// Owners returns up to n distinct nodes owning key, in ring preference
// order: the successor point's node first, then the next points' nodes
// skipping repeats. With n >= len(nodes) every node appears exactly once.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	start := r.succ(r.hash([]byte(key)))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// Shares counts how many of the given keys each node primarily owns —
// the balance diagnostic behind `nwsctl ring` and the nwsload per-shard
// split.
func (r *Ring) Shares(keys []string) map[string]int {
	out := make(map[string]int, len(r.nodes))
	for _, id := range r.nodes {
		out[id] = 0
	}
	for _, k := range keys {
		out[r.Owner(k)]++
	}
	return out
}
