package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("host%04d/cpu/nws_hybrid", i)
	}
	return keys
}

func nodeIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("mem-%c", 'a'+i)
	}
	return ids
}

// The ring is a pure function of (nodes, vnodes, seed): input order must
// not matter, and rebuilding must reproduce every assignment exactly.
func TestRingDeterministic(t *testing.T) {
	keys := testKeys(2000)
	for seed := uint64(0); seed < 5; seed++ {
		a := NewRing([]string{"mem-a", "mem-b", "mem-c"}, 64, seed)
		b := NewRing([]string{"mem-c", "mem-a", "mem-b", "mem-a"}, 64, seed)
		for _, k := range keys {
			if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
				t.Fatalf("seed %d key %q: owner %q vs %q across construction orders", seed, k, ao, bo)
			}
			if ao, bo := a.Owners(k, 2), b.Owners(k, 2); !reflect.DeepEqual(ao, bo) {
				t.Fatalf("seed %d key %q: owners %v vs %v", seed, k, ao, bo)
			}
		}
	}
}

// Distinct seeds must yield genuinely different layouts, or the seed is
// decorative.
func TestRingSeedsIndependent(t *testing.T) {
	keys := testKeys(2000)
	a := NewRing(nodeIDs(4), 64, 1)
	b := NewRing(nodeIDs(4), 64, 2)
	same := 0
	for _, k := range keys {
		if a.Owner(k) == b.Owner(k) {
			same++
		}
	}
	// 4 nodes: random layouts agree ~25% of the time. 60% is far outside
	// that for 2000 keys while immune to seed-to-seed noise.
	if same > len(keys)*60/100 {
		t.Fatalf("seeds 1 and 2 agree on %d/%d keys — layouts not independent", same, len(keys))
	}
}

// Every key is owned at every membership size, and Owners returns distinct
// nodes capped at the node count.
func TestRingNoKeyUnowned(t *testing.T) {
	keys := testKeys(1000)
	for n := 1; n <= 6; n++ {
		r := NewRing(nodeIDs(n), 32, 7)
		for _, k := range keys {
			owners := r.Owners(k, 2)
			want := 2
			if n < 2 {
				want = n
			}
			if len(owners) != want {
				t.Fatalf("%d nodes, key %q: got %d owners, want %d", n, k, len(owners), want)
			}
			seen := map[string]bool{}
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("%d nodes, key %q: duplicate owner %q", n, k, o)
				}
				seen[o] = true
			}
			if owners[0] != r.Owner(k) {
				t.Fatalf("key %q: Owner %q != Owners[0] %q", k, r.Owner(k), owners[0])
			}
		}
	}
}

// Consistent hashing's defining property: one node joining or leaving moves
// only the keys adjacent to its points — about 1/n of the keyspace — not a
// wholesale reshuffle.
func TestRingBoundedMovementOnJoinLeave(t *testing.T) {
	keys := testKeys(4000)
	for _, n := range []int{3, 5, 8} {
		before := NewRing(nodeIDs(n), 64, 11)
		after := NewRing(nodeIDs(n+1), 64, 11) // nodeIDs(n+1) = nodeIDs(n) + one more
		moved := 0
		for _, k := range keys {
			ob, oa := before.Owner(k), after.Owner(k)
			if ob != oa {
				moved++
				// Keys that move must move TO the joiner; a key hopping
				// between survivors would be gratuitous churn.
				if oa != nodeIDs(n + 1)[n] {
					t.Fatalf("%d nodes: key %q moved %q -> %q, not to the joiner", n, k, ob, oa)
				}
			}
		}
		// Expect ~1/(n+1) moved; allow 2x slack for hash variance.
		limit := 2 * len(keys) / (n + 1)
		if moved > limit {
			t.Fatalf("%d -> %d nodes: %d/%d keys moved, limit %d", n, n+1, moved, len(keys), limit)
		}
		if moved == 0 {
			t.Fatalf("%d -> %d nodes: no key moved to the joiner", n, n+1)
		}
	}
}

// Shares spreads keys roughly evenly — the vnode count's purpose.
func TestRingSharesBalanced(t *testing.T) {
	keys := testKeys(8000)
	r := NewRing(nodeIDs(4), 64, 3)
	shares := r.Shares(keys)
	if len(shares) != 4 {
		t.Fatalf("shares for %d nodes: %v", len(shares), shares)
	}
	total := 0
	for id, c := range shares {
		total += c
		if c < len(keys)/4/3 {
			t.Fatalf("node %q owns only %d of %d keys — badly unbalanced: %v", id, c, len(keys), shares)
		}
	}
	if total != len(keys) {
		t.Fatalf("shares sum %d != %d keys", total, len(keys))
	}
}

func TestRingEdgeCases(t *testing.T) {
	if r := NewRing(nil, 64, 0); r != nil {
		t.Fatal("empty node set should yield nil ring")
	}
	if r := NewRing([]string{"", ""}, 64, 0); r != nil {
		t.Fatal("all-empty node IDs should yield nil ring")
	}
	r := NewRing([]string{"solo"}, 16, 0)
	if got := r.Owners("any/key", 5); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("single-node owners = %v", got)
	}
}

func TestViewRingAndOwners(t *testing.T) {
	v := View{
		Epoch:  3,
		Config: Config{Replication: 2, VNodes: 32, Seed: 9},
		Members: []Member{
			{ID: "mem-a", Kind: "memory", Addr: "a:1", State: StateActive},
			{ID: "mem-b", Kind: "memory", Addr: "b:1", State: StateActive},
			{ID: "mem-c", Kind: "memory", Addr: "c:1", State: StateJoining},
			{ID: "fc-a", Kind: "forecaster", Addr: "f:1", State: StateActive},
		},
	}
	active := v.Active("memory")
	if len(active) != 2 || active[0].ID != "mem-a" || active[1].ID != "mem-b" {
		t.Fatalf("Active(memory) = %+v", active)
	}
	owners := v.Owners("memory", "host1/cpu")
	if len(owners) != 2 {
		t.Fatalf("owners = %+v", owners)
	}
	for _, m := range owners {
		if m.State != StateActive || m.Kind != "memory" {
			t.Fatalf("owner %+v not an active memory", m)
		}
	}
	if r := v.Ring("sensor"); r != nil {
		t.Fatal("ring over absent kind should be nil")
	}
	// The joining member must not appear in any owner set.
	for i := 0; i < 500; i++ {
		for _, m := range v.Owners("memory", fmt.Sprintf("k%d", i)) {
			if m.ID == "mem-c" {
				t.Fatal("joining member routed as owner")
			}
		}
	}
}

func TestViewClone(t *testing.T) {
	v := View{Epoch: 1, Members: []Member{{ID: "a", Addrs: []string{"x:1"}}}}
	c := v.Clone()
	c.Members[0].ID = "changed"
	c.Members[0].Addrs[0] = "y:1"
	if v.Members[0].ID != "a" || v.Members[0].Addrs[0] != "x:1" {
		t.Fatalf("clone aliases original: %+v", v.Members[0])
	}
}

func BenchmarkRingOwners(b *testing.B) {
	r := NewRing(nodeIDs(8), 64, 1)
	keys := testKeys(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owners(keys[i%len(keys)], 2)
	}
}
