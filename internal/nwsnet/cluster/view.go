// Package cluster holds the pure data structures of the partitioned NWS
// deployment: membership views (who is in the cluster, under which lease
// state, as of which epoch) and the deterministic consistent-hash ring that
// assigns series keys to shard owners. The package has no wire or I/O
// dependencies — nwsnet embeds these types in its protocol messages and
// routes with them, and tests exercise them directly.
package cluster

import "sort"

// State is a member's lifecycle position within the view.
type State string

// Member lifecycle states. A joining member holds a lease and is fetching
// the history it will own, but is not yet in the routing ring; activation
// bumps the view epoch and moves ownership atomically.
const (
	StateJoining State = "joining"
	StateActive  State = "active"
)

// Member is one node of the partitioned cluster: a shard server (memory or
// forecaster kind) holding a lease in the registry.
type Member struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // "memory" | "forecaster"
	Addr string `json:"addr"`
	// Addrs, when non-empty, lists every replica endpoint behind this
	// member (Addr repeats the first entry, like Registration.Addrs).
	Addrs []string `json:"addrs,omitempty"`
	State State    `json:"state,omitempty"`
}

// Endpoints returns the addresses behind the member: the replica set when
// one was announced, else the single Addr.
func (m Member) Endpoints() []string {
	if len(m.Addrs) > 0 {
		return m.Addrs
	}
	if m.Addr == "" {
		return nil
	}
	return []string{m.Addr}
}

// IsZero reports whether every field is empty — the canonical "no member"
// encoding on the wire (a zero member and an absent member are the same
// value in both codecs).
func (m Member) IsZero() bool {
	return m.ID == "" && m.Kind == "" && m.Addr == "" && len(m.Addrs) == 0 && m.State == ""
}

// Config fixes the ring geometry for a cluster. Every node and client must
// agree on it, so the registry owns it and serves it inside every view.
type Config struct {
	// Replication is how many distinct members own each series key
	// (writes land on all owners; reads fail over across them).
	Replication int `json:"replication"`
	// VNodes is the virtual-node count per member on the ring.
	VNodes int `json:"vnodes"`
	// Seed parameterizes the ring hash, so tests can exercise many
	// independent ring layouts deterministically.
	Seed uint64 `json:"seed,omitempty"`
}

// Normalize fills unset geometry with the defaults (replication 2,
// 64 vnodes).
func (c Config) Normalize() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	return c
}

// View is one epoch's membership snapshot. Epochs increase by exactly the
// events that change key ownership: a member activating, or a lease
// expiring. Joins in the joining state and lease renewals do not bump the
// epoch, so routing tables stay valid across heartbeats.
type View struct {
	Epoch   uint64   `json:"epoch"`
	Config  Config   `json:"config"`
	Members []Member `json:"members,omitempty"`
}

// Member returns the member with the given ID.
func (v View) Member(id string) (Member, bool) {
	for _, m := range v.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// Active returns the active members of a kind, sorted by ID — the node set
// the routing ring is built over. Joining members are excluded: they are
// still pulling the history they will own.
func (v View) Active(kind string) []Member {
	var out []Member
	for _, m := range v.Members {
		if m.State == StateActive && (kind == "" || m.Kind == kind) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Ring builds the routing ring over the view's active members of a kind.
// It returns nil when no member of that kind is active.
func (v View) Ring(kind string) *Ring {
	active := v.Active(kind)
	if len(active) == 0 {
		return nil
	}
	ids := make([]string, len(active))
	for i, m := range active {
		ids[i] = m.ID
	}
	cfg := v.Config.Normalize()
	return NewRing(ids, cfg.VNodes, cfg.Seed)
}

// Owners resolves the members owning a series key among the active members
// of a kind, in ring (preference) order, at most Config.Replication of
// them. An empty result means no member of that kind is active.
func (v View) Owners(kind, key string) []Member {
	r := v.Ring(kind)
	if r == nil {
		return nil
	}
	ids := r.Owners(key, v.Config.Normalize().Replication)
	out := make([]Member, 0, len(ids))
	for _, id := range ids {
		if m, ok := v.Member(id); ok {
			out = append(out, m)
		}
	}
	return out
}

// Clone deep-copies the view so callers can hold it without aliasing the
// registry's state.
func (v View) Clone() View {
	out := v
	out.Members = make([]Member, len(v.Members))
	copy(out.Members, v.Members)
	for i := range out.Members {
		if len(out.Members[i].Addrs) > 0 {
			out.Members[i].Addrs = append([]string(nil), out.Members[i].Addrs...)
		}
	}
	return out
}
