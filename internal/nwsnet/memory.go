package nwsnet

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nwscpu/internal/series"
)

// memShardCount is the number of lock stripes a Memory spreads its series
// over. A power of two so the key hash maps to a shard with a mask. 32
// stripes keep contention negligible well past the core counts this serves
// on while costing ~a map header each.
const memShardCount = 32

// batchMaxWorkers bounds the goroutines executing one batch envelope's
// sub-requests; small batches below batchInlineLimit run inline on the
// connection goroutine instead.
const (
	batchMaxWorkers  = 8
	batchInlineLimit = 4
)

// Memory is the NWS persistent-state server: it stores bounded measurement
// series by key and serves range queries over them. Each series keeps at
// most its configured capacity of most-recent points in a ring buffer, like
// the circular files of the real NWS memory, so steady-state eviction is
// O(1) per point rather than a copy of the whole series.
//
// The store is sharded: series keys hash onto memShardCount independent
// lock stripes (a sync.RWMutex over a map each), so concurrent stores and
// fetches of different series proceed in parallel and fetches of the same
// series only share a read lock.
//
// Stores are idempotent under redelivery: points at or before a series'
// last stored timestamp are skipped (counted in
// nws_memory_points_deduped_total), so a timed-out-but-applied batch that a
// retry policy redelivers leaves exactly one copy of each point instead of
// duplicating the tail or wedging the writer on "out-of-order append".
type Memory struct {
	capacity int
	nSeries  atomic.Int64
	shards   [memShardCount]memShard
}

type memShard struct {
	mu    sync.RWMutex
	store map[string]*series.PointRing
}

// NewMemory returns a Memory keeping up to capacity points per series
// (<= 0 selects the default of 100000, about 11 days at 10-second cadence).
func NewMemory(capacity int) *Memory {
	if capacity <= 0 {
		capacity = 100000
	}
	m := &Memory{capacity: capacity}
	for i := range m.shards {
		m.shards[i].store = make(map[string]*series.PointRing)
	}
	return m
}

// shard returns the lock stripe owning key (FNV-1a over the key bytes).
func (m *Memory) shard(key string) *memShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &m.shards[h&(memShardCount-1)]
}

// Handle implements Handler.
func (m *Memory) Handle(req Request) Response {
	t0 := time.Now()
	mMemoryRequestsByOp.get(req.Op).Inc()
	defer mMemoryLatencyByOp.get(req.Op).ObserveSince(t0)
	resp := m.handle(req)
	if resp.Error != "" {
		mMemoryErrorsByOp.get(req.Op).Inc()
	}
	return resp
}

func (m *Memory) handle(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{}
	case OpStore:
		return m.handleStore(req)
	case OpFetch:
		return m.handleFetch(req)
	case OpSeries:
		return m.handleSeries()
	case OpBatch:
		return m.handleBatch(req)
	case OpDigest:
		return m.handleDigest(req)
	case OpBackfill:
		return m.handleBackfill(req)
	default:
		return errResp("memory: unsupported op %q", req.Op)
	}
}

func (m *Memory) handleStore(req Request) Response {
	if req.Series == "" {
		return errResp("store requires a series key")
	}
	if len(req.Points) == 0 {
		return errResp("store requires points")
	}
	sh := m.shard(req.Series)
	sh.mu.Lock()
	r := sh.store[req.Series]
	created := false
	if r == nil {
		r = series.NewPointRing(m.capacity)
		sh.store[req.Series] = r
		created = true
	}
	var appended, deduped, evicted uint64
	for _, tv := range req.Points {
		// Idempotent under redelivery: a point at or before the stored
		// frontier was already applied (or is stale) — skip it rather than
		// duplicating the tail or rejecting the whole batch.
		if last, ok := r.Last(); ok && tv[0] <= last.T {
			deduped++
			continue
		}
		if r.Push(series.Point{T: tv[0], V: tv[1]}) {
			evicted++
		}
		appended++
	}
	sh.mu.Unlock()
	if created {
		mMemorySeries.Set(float64(m.nSeries.Add(1)))
	}
	mMemoryPointsStored.Add(appended)
	mMemoryPointsDeduped.Add(deduped)
	mMemoryPointsEvicted.Add(evicted)
	return Response{}
}

func (m *Memory) handleFetch(req Request) Response {
	if req.Series == "" {
		return errResp("fetch requires a series key")
	}
	sh := m.shard(req.Series)
	sh.mu.RLock()
	r := sh.store[req.Series]
	if r == nil {
		sh.mu.RUnlock()
		return errResp("unknown series %q", req.Series)
	}
	// Range [from, to): to == 0 means "through the latest point". An
	// inverted range (to < from) yields an empty result instead of a slice
	// panic.
	lo := r.SearchT(req.From)
	hi := r.Len()
	if req.To != 0 {
		hi = r.SearchT(req.To)
	}
	if hi < lo {
		hi = lo
	}
	if req.Max > 0 && hi-lo > req.Max {
		lo = hi - req.Max
	}
	out := make([][2]float64, hi-lo)
	for i := lo; i < hi; i++ {
		p := r.At(i)
		out[i-lo] = [2]float64{p.T, p.V}
	}
	sh.mu.RUnlock()
	mMemoryPointsFetched.Add(uint64(len(out)))
	return Response{Points: out}
}

func (m *Memory) handleSeries() Response {
	names := make([]string, 0, m.nSeries.Load())
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for k := range sh.store {
			names = append(names, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return Response{Names: names}
}

// handleBatch executes the envelope's sub-requests — with bounded
// concurrency for large batches, inline for small ones — and returns their
// responses in request order. The shards make concurrent sub-execution
// safe; ordering across sub-requests of one envelope is only guaranteed to
// the extent their series differ, which is how callers use it (one
// sub-store per series).
func (m *Memory) handleBatch(req Request) Response {
	if len(req.Batch) == 0 {
		return errResp("batch requires sub-requests")
	}
	mMemoryBatchSize.Observe(float64(len(req.Batch)))
	out := make([]Response, len(req.Batch))
	run := func(i int) {
		sub := req.Batch[i]
		op := opLabel(sub.Op)
		mMemoryBatchSubs.With(op).Inc()
		var r Response
		if sub.Op == OpBatch {
			r = errResp("batch: nested batch envelopes are not allowed")
		} else {
			r = m.handle(sub)
		}
		if r.Error != "" {
			mMemoryBatchSubErrors.With(op).Inc()
		}
		r.OK = r.Error == ""
		out[i] = r
	}
	if len(req.Batch) <= batchInlineLimit {
		for i := range req.Batch {
			run(i)
		}
		return Response{Batch: out}
	}
	workers := batchMaxWorkers
	if workers > len(req.Batch) {
		workers = len(req.Batch)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Batch) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return Response{Batch: out}
}

// digestOf summarizes a ring under its shard lock: point count, frontier
// (newest timestamp), and an FNV-1a checksum over the 16-byte little-endian
// (t, v) bit patterns in time order. The sum covers full content, so equal
// digests mean bit-identical series — the anti-entropy comparison the
// repair plane is built on (docs/PROTOCOL.md §9).
func digestOf(key string, r *series.PointRing) SeriesDigest {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(u uint64) {
		for i := 0; i < 8; i++ {
			h ^= (u >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	n := r.Len()
	for i := 0; i < n; i++ {
		p := r.At(i)
		mix(math.Float64bits(p.T))
		mix(math.Float64bits(p.V))
	}
	d := SeriesDigest{Series: key, Count: uint64(n), Sum: h}
	if last, ok := r.Last(); ok {
		d.Frontier = last.T
	}
	return d
}

// Digest returns the anti-entropy summary of one series; ok is false when
// the series is absent or empty.
func (m *Memory) Digest(key string) (SeriesDigest, bool) {
	sh := m.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r := sh.store[key]
	if r == nil || r.Len() == 0 {
		return SeriesDigest{}, false
	}
	return digestOf(key, r), true
}

// PrefixDigest summarizes the stored prefix of a series with t <= through.
// The repairer compares it against a peer's digest snapshot: live writes
// keep moving the local frontier past the snapshot, so only the prefix up
// to the peer's frontier can be expected to match.
func (m *Memory) PrefixDigest(key string, through float64) SeriesDigest {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	sh := m.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d := SeriesDigest{Series: key}
	r := sh.store[key]
	if r == nil {
		return d
	}
	h := uint64(offset64)
	mix := func(u uint64) {
		for i := 0; i < 8; i++ {
			h ^= (u >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	n := r.Len()
	for i := 0; i < n; i++ {
		p := r.At(i)
		if p.T > through {
			break
		}
		mix(math.Float64bits(p.T))
		mix(math.Float64bits(p.V))
		d.Count++
		d.Frontier = p.T
	}
	d.Sum = h
	return d
}

// Digests returns summaries of stored series sorted by key: all non-empty
// series when key is "", else just that series (empty slice if absent).
func (m *Memory) Digests(key string) []SeriesDigest {
	if key != "" {
		if d, ok := m.Digest(key); ok {
			return []SeriesDigest{d}
		}
		return nil
	}
	out := make([]SeriesDigest, 0, m.nSeries.Load())
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for k, r := range sh.store {
			if r.Len() > 0 {
				out = append(out, digestOf(k, r))
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Series < out[j].Series })
	return out
}

// handleDigest answers OpDigest: per-series digests, all series when the
// request names none. An unknown series is not an error — it answers with
// no digests, which peers read as "nothing stored here yet".
func (m *Memory) handleDigest(req Request) Response {
	return Response{Digests: m.Digests(req.Series)}
}

// handleBackfill answers OpBackfill: a merge-insert behind the frontier
// (hinted-handoff redelivery and repair pulls land here; the store path
// would dedup anything at or before the frontier away).
func (m *Memory) handleBackfill(req Request) Response {
	if req.Series == "" {
		return errResp("backfill requires a series key")
	}
	if len(req.Points) == 0 {
		return errResp("backfill requires points")
	}
	m.Backfill(req.Series, req.Points)
	return Response{}
}

// Backfill merge-inserts historical points into a series, bypassing the
// store path's frontier dedup: rebalancing handoff streams a series' past
// while new writes keep landing on its head, so history must be accepted
// behind the frontier without reopening the door to redelivery duplicates
// (points whose timestamps are already present are still skipped). The
// merged series keeps its newest capacity points. Returns how many points
// were actually inserted.
func (m *Memory) Backfill(key string, pts [][2]float64) int {
	if key == "" || len(pts) == 0 {
		return 0
	}
	incoming := append([][2]float64(nil), pts...)
	sort.Slice(incoming, func(i, j int) bool { return incoming[i][0] < incoming[j][0] })
	sh := m.shard(key)
	sh.mu.Lock()
	r := sh.store[key]
	created := false
	if r == nil {
		r = series.NewPointRing(m.capacity)
		sh.store[key] = r
		created = true
	}
	existing := make([]series.Point, r.Len())
	for i := range existing {
		existing[i] = r.At(i)
	}
	merged := make([]series.Point, 0, len(existing)+len(incoming))
	added := 0
	i, j := 0, 0
	for i < len(existing) || j < len(incoming) {
		switch {
		case j >= len(incoming):
			merged = append(merged, existing[i])
			i++
		case i >= len(existing) || incoming[j][0] < existing[i].T:
			p := series.Point{T: incoming[j][0], V: incoming[j][1]}
			// Collapse duplicate timestamps within the incoming stream too.
			if len(merged) == 0 || merged[len(merged)-1].T < p.T {
				merged = append(merged, p)
				added++
			}
			j++
		case incoming[j][0] == existing[i].T:
			merged = append(merged, existing[i]) // already stored: keep ours
			i++
			j++
		default:
			merged = append(merged, existing[i])
			i++
		}
	}
	if len(merged) > m.capacity {
		merged = merged[len(merged)-m.capacity:]
		// History the trim just evicted was never observably inserted;
		// recount so the reported insertions are the ones that survived
		// (merged minus the surviving pre-existing points).
		cut := merged[0].T
		kept := len(existing) - sort.Search(len(existing), func(i int) bool { return existing[i].T >= cut })
		added = len(merged) - kept
	}
	r.Reset()
	for _, p := range merged {
		r.Push(p)
	}
	sh.mu.Unlock()
	if created {
		mMemorySeries.Set(float64(m.nSeries.Add(1)))
	}
	return added
}

// Len reports the number of stored points for a series key (0 if absent).
func (m *Memory) Len(key string) int {
	sh := m.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if r := sh.store[key]; r != nil {
		return r.Len()
	}
	return 0
}

var _ Handler = (*Memory)(nil)
