package nwsnet

import (
	"sort"
	"sync"
	"time"

	"nwscpu/internal/series"
)

// Memory is the NWS persistent-state server: it stores bounded measurement
// series by key and serves range queries over them. Each series keeps at
// most its configured capacity of most-recent points, like the circular
// files of the real NWS memory.
type Memory struct {
	capacity int
	mu       sync.Mutex
	store    map[string]*series.Series
}

// NewMemory returns a Memory keeping up to capacity points per series
// (<= 0 selects the default of 100000, about 11 days at 10-second cadence).
func NewMemory(capacity int) *Memory {
	if capacity <= 0 {
		capacity = 100000
	}
	return &Memory{capacity: capacity, store: make(map[string]*series.Series)}
}

// Handle implements Handler.
func (m *Memory) Handle(req Request) Response {
	op := opLabel(req.Op)
	t0 := time.Now()
	mMemoryRequests.With(op).Inc()
	defer mMemoryLatency.With(op).ObserveSince(t0)
	resp := m.handle(req)
	if resp.Error != "" {
		mMemoryErrors.With(op).Inc()
	}
	return resp
}

func (m *Memory) handle(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{}
	case OpStore:
		return m.handleStore(req)
	case OpFetch:
		return m.handleFetch(req)
	case OpSeries:
		m.mu.Lock()
		names := make([]string, 0, len(m.store))
		for k := range m.store {
			names = append(names, k)
		}
		m.mu.Unlock()
		sort.Strings(names)
		return Response{Names: names}
	default:
		return errResp("memory: unsupported op %q", req.Op)
	}
}

func (m *Memory) handleStore(req Request) Response {
	if req.Series == "" {
		return errResp("store requires a series key")
	}
	if len(req.Points) == 0 {
		return errResp("store requires points")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.store[req.Series]
	if s == nil {
		s = series.New(req.Series, "fraction")
		m.store[req.Series] = s
		mMemorySeries.Set(float64(len(m.store)))
	}
	appended := 0
	for _, tv := range req.Points {
		if err := s.Append(tv[0], tv[1]); err != nil {
			mMemoryPointsStored.Add(uint64(appended))
			return errResp("store: %v", err)
		}
		appended++
	}
	mMemoryPointsStored.Add(uint64(appended))
	// Enforce the circular bound.
	if extra := s.Len() - m.capacity; extra > 0 {
		s.Points = append(s.Points[:0:0], s.Points[extra:]...)
		mMemoryPointsEvicted.Add(uint64(extra))
	}
	return Response{}
}

func (m *Memory) handleFetch(req Request) Response {
	if req.Series == "" {
		return errResp("fetch requires a series key")
	}
	m.mu.Lock()
	s := m.store[req.Series]
	m.mu.Unlock()
	if s == nil {
		return errResp("unknown series %q", req.Series)
	}
	to := req.To
	if to == 0 {
		if last, ok := s.Last(); ok {
			to = last.T + 1
		}
	}
	m.mu.Lock()
	sub := s.Slice(req.From, to)
	m.mu.Unlock()
	pts := sub.Points
	if req.Max > 0 && len(pts) > req.Max {
		pts = pts[len(pts)-req.Max:]
	}
	out := make([][2]float64, len(pts))
	for i, p := range pts {
		out[i] = [2]float64{p.T, p.V}
	}
	mMemoryPointsFetched.Add(uint64(len(out)))
	return Response{Points: out}
}

// Len reports the number of stored points for a series key (0 if absent).
func (m *Memory) Len(key string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.store[key]; s != nil {
		return s.Len()
	}
	return 0
}

var _ Handler = (*Memory)(nil)
