package nwsnet

import (
	"context"
	"sync"
	"time"
)

// Repairer is the anti-entropy half of the repair plane: it runs beside one
// memory replica, periodically pulls per-series digests from its peer
// replicas, and merges whatever the local store is missing through
// Memory.Backfill. Pulls ride the existing batch-fetch path; merges are
// idempotent; every replica repairing against every peer makes the group
// convergent — once writes stop, a bounded number of rounds leaves all
// replicas bit-identical (equal digests imply identical content, see
// SeriesDigest).
//
// The comparison is frontier-aware so live traffic stays cheap: a local
// series whose prefix up to the peer's frontier matches the peer's digest
// is in sync (the local store merely has newer points the peer will pull
// from us), a series that is only behind pulls just the missing tail, and
// only a genuine body mismatch (dropped hints, a trimmed ring) refetches
// the series.
type Repairer struct {
	tr    Transport
	mem   *Memory
	peers []string

	mu    sync.Mutex
	stats RepairStats

	loopMu   sync.Mutex
	started  bool
	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// RepairStats counts one repairer's activity (the per-process totals are
// also exported as nws_repair_rounds_total / nws_repair_points_recovered_total).
type RepairStats struct {
	Rounds          uint64 `json:"rounds"`
	PointsRecovered uint64 `json:"points_recovered"`
}

// repairFetchChunk bounds how many series one repair pull batches into a
// single round trip.
const repairFetchChunk = 64

// NewRepairer builds a repairer that heals mem against the replica peers
// (the local replica's own address must not be listed).
func NewRepairer(tr Transport, mem *Memory, peers []string) *Repairer {
	return &Repairer{
		tr:     tr,
		mem:    mem,
		peers:  append([]string(nil), peers...),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

// Stats reports this repairer's counters.
func (rp *Repairer) Stats() RepairStats {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.stats
}

// RepairRound runs one full anti-entropy round: digests from every peer in
// configuration order, then the pulls they imply. It returns how many
// points were recovered and the first peer error (a peer being down fails
// that peer's leg, not the round — the others still repair).
func (rp *Repairer) RepairRound(ctx context.Context) (int, error) {
	recovered := 0
	var firstErr error
	for _, peer := range rp.peers {
		n, err := rp.repairFromPeer(ctx, peer)
		recovered += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	rp.mu.Lock()
	rp.stats.Rounds++
	rp.stats.PointsRecovered += uint64(recovered)
	rp.mu.Unlock()
	mRepairRounds.Inc()
	mRepairPointsRecovered.Add(uint64(recovered))
	return recovered, firstErr
}

// inSyncWith reports whether the local series already covers a peer digest:
// the stored prefix up to the peer's frontier has the same count and
// checksum.
func (rp *Repairer) inSyncWith(d SeriesDigest) bool {
	p := rp.mem.PrefixDigest(d.Series, d.Frontier)
	return p.Count == d.Count && p.Sum == d.Sum
}

// repairFromPeer diffs one peer's digests against the local store and pulls
// what is missing: first the tails of series that are merely behind, then a
// full refetch of any series whose body still mismatches.
func (rp *Repairer) repairFromPeer(ctx context.Context, peer string) (int, error) {
	digs, err := rp.tr.DigestsCtx(ctx, peer, "")
	if err != nil {
		return 0, err
	}
	var tails, fulls []BatchFetch
	var tailDigests []SeriesDigest
	for _, d := range digs {
		if rp.inSyncWith(d) {
			continue
		}
		local, ok := rp.mem.Digest(d.Series)
		if ok && local.Frontier < d.Frontier {
			// Behind but possibly a clean prefix: pull just [frontier, ∞)
			// first (the fetch includes the frontier point itself; Backfill
			// skips the duplicate).
			tails = append(tails, BatchFetch{Series: d.Series, From: local.Frontier})
			tailDigests = append(tailDigests, d)
			continue
		}
		fulls = append(fulls, BatchFetch{Series: d.Series})
	}
	recovered, err := rp.pull(ctx, peer, tails)
	if err != nil {
		return recovered, err
	}
	// A tail pull closes a pure lag; anything still mismatched diverged in
	// the body (dropped hints mid-history, capacity trims) and needs the
	// whole series.
	for _, d := range tailDigests {
		if !rp.inSyncWith(d) {
			fulls = append(fulls, BatchFetch{Series: d.Series})
		}
	}
	n, err := rp.pull(ctx, peer, fulls)
	recovered += n
	return recovered, err
}

// pull batch-fetches the given ranges from a peer and merges them locally,
// returning how many points were actually inserted.
func (rp *Repairer) pull(ctx context.Context, peer string, fetches []BatchFetch) (int, error) {
	recovered := 0
	for len(fetches) > 0 {
		chunk := fetches
		if len(chunk) > repairFetchChunk {
			chunk = chunk[:repairFetchChunk]
		}
		fetches = fetches[len(chunk):]
		results, err := rp.tr.FetchBatchCtx(ctx, peer, chunk)
		if err != nil {
			return recovered, err
		}
		for i, res := range results {
			if res.Err != nil || len(res.Points) == 0 {
				// A per-sub rejection (the peer trimmed the series away
				// between digest and fetch, say) just skips this series
				// until the next round.
				continue
			}
			recovered += rp.mem.Backfill(chunk[i].Series, res.Points)
		}
	}
	return recovered, nil
}

// Start launches the background RepairLoop at the given cadence; Stop ends
// it. Starting an already-started (or stopped) repairer is a no-op.
func (rp *Repairer) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Minute
	}
	rp.loopMu.Lock()
	defer rp.loopMu.Unlock()
	if rp.started {
		return
	}
	select {
	case <-rp.stopCh:
		return // already stopped
	default:
	}
	rp.started = true
	go rp.repairLoop(interval)
}

// repairLoop is the background anti-entropy driver.
func (rp *Repairer) repairLoop(interval time.Duration) {
	defer close(rp.doneCh)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rp.stopCh:
			return
		case <-t.C:
			rp.RepairRound(context.Background())
		}
	}
}

// Stop ends the background loop (if Start ran) and waits for it to exit.
func (rp *Repairer) Stop() {
	rp.loopMu.Lock()
	started := rp.started
	rp.loopMu.Unlock()
	rp.stopOnce.Do(func() { close(rp.stopCh) })
	if started {
		<-rp.doneCh
	}
}
