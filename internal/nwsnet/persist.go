package nwsnet

import (
	"bufio"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// PersistentMemory is a Memory whose series survive restarts: every stored
// point is appended to a per-series log file under a directory, and the logs
// are replayed on startup — the role of the circular state files in the real
// NWS memory process.
type PersistentMemory struct {
	*Memory
	dir string

	mu     sync.Mutex
	files  map[string]*bufio.Writer
	fds    map[string]*os.File
	counts map[string]int // log lines per series, to trigger compaction
}

// NewPersistentMemory opens (creating if needed) a memory rooted at dir with
// the given per-series capacity, replaying any existing logs.
func NewPersistentMemory(capacity int, dir string) (*PersistentMemory, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("nwsnet: memory dir: %w", err)
	}
	pm := &PersistentMemory{
		Memory: NewMemory(capacity),
		dir:    dir,
		files:  make(map[string]*bufio.Writer),
		fds:    make(map[string]*os.File),
		counts: make(map[string]int),
	}
	if err := pm.replay(); err != nil {
		return nil, err
	}
	return pm, nil
}

// logPath maps a series key (which contains slashes) to its log file.
func (pm *PersistentMemory) logPath(key string) string {
	return filepath.Join(pm.dir, url.PathEscape(key)+".log")
}

func (pm *PersistentMemory) replay() error {
	entries, err := os.ReadDir(pm.dir)
	if err != nil {
		return fmt.Errorf("nwsnet: reading memory dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".log") {
			continue
		}
		key, err := url.PathUnescape(strings.TrimSuffix(name, ".log"))
		if err != nil {
			return fmt.Errorf("nwsnet: undecodable log name %q: %w", name, err)
		}
		pts, err := readLog(filepath.Join(pm.dir, name))
		if err != nil {
			return err
		}
		if len(pts) == 0 {
			continue
		}
		resp := pm.Memory.Handle(Request{Op: OpStore, Series: key, Points: pts})
		if resp.Error != "" {
			return fmt.Errorf("nwsnet: replaying %q: %s", key, resp.Error)
		}
		pm.counts[key] = len(pts)
	}
	return nil
}

func readLog(path string) ([][2]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nwsnet: opening log: %w", err)
	}
	defer f.Close()
	var pts [][2]float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, ",", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("nwsnet: malformed log line %q in %s", line, path)
		}
		t, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("nwsnet: bad log timestamp in %s: %w", path, err)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("nwsnet: bad log value in %s: %w", path, err)
		}
		pts = append(pts, [2]float64{t, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("nwsnet: reading log %s: %w", path, err)
	}
	return pts, nil
}

// Handle implements Handler: stores are applied to the in-memory series
// first (validating them) and then appended to the log. Batch envelopes are
// unwrapped so every accepted sub-store is logged too; points the memory
// deduped are still logged (replay dedups them again), which only costs log
// bytes until the next compaction.
func (pm *PersistentMemory) Handle(req Request) Response {
	resp := pm.Memory.Handle(req)
	switch req.Op {
	case OpStore:
		if resp.Error != "" {
			return resp
		}
		if err := pm.append(req.Series, req.Points); err != nil {
			return errResp("store: persistence: %v", err)
		}
	case OpBatch:
		for i, sub := range req.Batch {
			if sub.Op != OpStore || i >= len(resp.Batch) || resp.Batch[i].Error != "" {
				continue
			}
			if err := pm.append(sub.Series, sub.Points); err != nil {
				resp.Batch[i] = errResp("store: persistence: %v", err)
			}
		}
	}
	return resp
}

func (pm *PersistentMemory) append(key string, pts [][2]float64) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	w := pm.files[key]
	if w == nil {
		f, err := os.OpenFile(pm.logPath(key), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		pm.fds[key] = f
		w = bufio.NewWriter(f)
		pm.files[key] = w
	}
	for _, tv := range pts {
		if _, err := fmt.Fprintf(w, "%s,%s\n",
			strconv.FormatFloat(tv[0], 'g', -1, 64),
			strconv.FormatFloat(tv[1], 'g', -1, 64)); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// Compaction: the in-memory series is capped at capacity points, but
	// the append log would otherwise grow forever. Once a log holds more
	// than twice the retained points, rewrite it to just the live window.
	pm.counts[key] += len(pts)
	if pm.counts[key] > 2*pm.capacity {
		return pm.compactLocked(key)
	}
	return nil
}

// Close flushes and closes all log files.
func (pm *PersistentMemory) Close() error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	var first error
	for key, w := range pm.files {
		if err := w.Flush(); err != nil && first == nil {
			first = err
		}
		if err := pm.fds[key].Close(); err != nil && first == nil {
			first = err
		}
	}
	pm.files = make(map[string]*bufio.Writer)
	pm.fds = make(map[string]*os.File)
	return first
}

// Compact rewrites a series' log to contain only the currently retained
// points (the in-memory circular bound discards old ones; the log otherwise
// grows without limit). Appends trigger it automatically once a log exceeds
// twice the series capacity; calling it directly is also safe.
func (pm *PersistentMemory) Compact(key string) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.compactLocked(key)
}

func (pm *PersistentMemory) compactLocked(key string) error {
	resp := pm.Memory.Handle(Request{Op: OpFetch, Series: key})
	if resp.Error != "" {
		return fmt.Errorf("nwsnet: compact: %s", resp.Error)
	}
	if w := pm.files[key]; w != nil {
		w.Flush()
		pm.fds[key].Close()
		delete(pm.files, key)
		delete(pm.fds, key)
	}
	tmp := pm.logPath(key) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, tv := range resp.Points {
		fmt.Fprintf(w, "%s,%s\n",
			strconv.FormatFloat(tv[0], 'g', -1, 64),
			strconv.FormatFloat(tv[1], 'g', -1, 64))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, pm.logPath(key)); err != nil {
		return err
	}
	pm.counts[key] = len(resp.Points)
	mMemoryCompactions.Inc()
	return nil
}

var _ Handler = (*PersistentMemory)(nil)
