package nwsnet

import (
	"bufio"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// PersistentMemory is a Memory whose series survive restarts: every stored
// point is appended to a per-series log file under a directory, and the logs
// are replayed on startup — the role of the circular state files in the real
// NWS memory process.
type PersistentMemory struct {
	*Memory
	dir string

	mu     sync.Mutex
	files  map[string]*bufio.Writer
	fds    map[string]*os.File
	counts map[string]int // log lines per series, to trigger compaction
}

// NewPersistentMemory opens (creating if needed) a memory rooted at dir with
// the given per-series capacity, replaying any existing logs.
func NewPersistentMemory(capacity int, dir string) (*PersistentMemory, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("nwsnet: memory dir: %w", err)
	}
	pm := &PersistentMemory{
		Memory: NewMemory(capacity),
		dir:    dir,
		files:  make(map[string]*bufio.Writer),
		fds:    make(map[string]*os.File),
		counts: make(map[string]int),
	}
	if err := pm.replay(); err != nil {
		return nil, err
	}
	return pm, nil
}

// logPath maps a series key (which contains slashes) to its log file.
func (pm *PersistentMemory) logPath(key string) string {
	return filepath.Join(pm.dir, url.PathEscape(key)+".log")
}

func (pm *PersistentMemory) replay() error {
	entries, err := os.ReadDir(pm.dir)
	if err != nil {
		return fmt.Errorf("nwsnet: reading memory dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".log") {
			continue
		}
		key, err := url.PathUnescape(strings.TrimSuffix(name, ".log"))
		if err != nil {
			return fmt.Errorf("nwsnet: undecodable log name %q: %w", name, err)
		}
		path := filepath.Join(pm.dir, name)
		pts, trunc, err := readLog(path)
		if err != nil {
			return err
		}
		if trunc >= 0 {
			// The log ends in a corrupt or torn line — a crash mid-append.
			// Everything before it replayed cleanly, so cut the tail and
			// keep serving rather than refuse to start.
			if err := os.Truncate(path, trunc); err != nil {
				return fmt.Errorf("nwsnet: truncating torn log %s: %w", path, err)
			}
			mMemoryLogTruncations.Inc()
		}
		if len(pts) == 0 {
			continue
		}
		resp := pm.Memory.Handle(Request{Op: OpStore, Series: key, Points: pts})
		if resp.Error != "" {
			return fmt.Errorf("nwsnet: replaying %q: %s", key, resp.Error)
		}
		pm.counts[key] = len(pts)
	}
	return nil
}

// readLog parses a per-series append log. It tolerates a damaged tail — the
// signature of a crash mid-append: a line that does not parse, or a final
// line without its terminating newline (the writer always appends whole
// "t,v\n" records, so an unterminated line is torn even if its prefix
// happens to parse). On damage it returns the points read so far plus the
// byte offset the caller should truncate the file to; truncateAt is -1 when
// the log is clean. Damage is only forgiven at the tail: a malformed line
// with valid lines after it means the rest of the log is unreachable, and
// the truncation silently discards those later points.
func readLog(path string) (pts [][2]float64, truncateAt int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, -1, fmt.Errorf("nwsnet: opening log: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var offset int64 // byte offset of the start of the current line
	for {
		line, rerr := r.ReadString('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, -1, fmt.Errorf("nwsnet: reading log %s: %w", path, rerr)
		}
		if line == "" && rerr == io.EOF {
			return pts, -1, nil
		}
		terminated := strings.HasSuffix(line, "\n")
		if !terminated {
			return pts, offset, nil
		}
		if s := strings.TrimSpace(line); s != "" {
			t, v, perr := parseLogLine(s)
			if perr != nil {
				return pts, offset, nil
			}
			pts = append(pts, [2]float64{t, v})
		}
		offset += int64(len(line))
		if rerr == io.EOF {
			return pts, -1, nil
		}
	}
}

// parseLogLine parses one trimmed, non-empty "t,v" log record.
func parseLogLine(s string) (t, v float64, err error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("nwsnet: malformed log line %q", s)
	}
	t, err = strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("nwsnet: bad log timestamp: %w", err)
	}
	v, err = strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("nwsnet: bad log value: %w", err)
	}
	return t, v, nil
}

// Handle implements Handler: stores are applied to the in-memory series
// first (validating them) and then appended to the log. Batch envelopes are
// unwrapped so every accepted sub-store is logged too; points the memory
// deduped are still logged (replay dedups them again), which only costs log
// bytes until the next compaction.
func (pm *PersistentMemory) Handle(req Request) Response {
	resp := pm.Memory.Handle(req)
	switch req.Op {
	case OpStore:
		if resp.Error != "" {
			return resp
		}
		if err := pm.append(req.Series, req.Points); err != nil {
			return errResp("store: persistence: %v", err)
		}
	case OpBatch:
		for i, sub := range req.Batch {
			if sub.Op != OpStore || i >= len(resp.Batch) || resp.Batch[i].Error != "" {
				continue
			}
			if err := pm.append(sub.Series, sub.Points); err != nil {
				resp.Batch[i] = errResp("store: persistence: %v", err)
			}
		}
	}
	return resp
}

func (pm *PersistentMemory) append(key string, pts [][2]float64) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	w := pm.files[key]
	if w == nil {
		f, err := os.OpenFile(pm.logPath(key), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		pm.fds[key] = f
		w = bufio.NewWriter(f)
		pm.files[key] = w
	}
	for _, tv := range pts {
		if _, err := fmt.Fprintf(w, "%s,%s\n",
			strconv.FormatFloat(tv[0], 'g', -1, 64),
			strconv.FormatFloat(tv[1], 'g', -1, 64)); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// Compaction: the in-memory series is capped at capacity points, but
	// the append log would otherwise grow forever. Once a log holds more
	// than twice the retained points, rewrite it to just the live window.
	pm.counts[key] += len(pts)
	if pm.counts[key] > 2*pm.capacity {
		return pm.compactLocked(key)
	}
	return nil
}

// Close flushes and closes all log files.
func (pm *PersistentMemory) Close() error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	var first error
	for key, w := range pm.files {
		if err := w.Flush(); err != nil && first == nil {
			first = err
		}
		if err := pm.fds[key].Close(); err != nil && first == nil {
			first = err
		}
	}
	pm.files = make(map[string]*bufio.Writer)
	pm.fds = make(map[string]*os.File)
	return first
}

// Compact rewrites a series' log to contain only the currently retained
// points (the in-memory circular bound discards old ones; the log otherwise
// grows without limit). Appends trigger it automatically once a log exceeds
// twice the series capacity; calling it directly is also safe.
func (pm *PersistentMemory) Compact(key string) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.compactLocked(key)
}

func (pm *PersistentMemory) compactLocked(key string) error {
	resp := pm.Memory.Handle(Request{Op: OpFetch, Series: key})
	if resp.Error != "" {
		return fmt.Errorf("nwsnet: compact: %s", resp.Error)
	}
	if w := pm.files[key]; w != nil {
		w.Flush()
		pm.fds[key].Close()
		delete(pm.files, key)
		delete(pm.fds, key)
	}
	tmp := pm.logPath(key) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, tv := range resp.Points {
		fmt.Fprintf(w, "%s,%s\n",
			strconv.FormatFloat(tv[0], 'g', -1, 64),
			strconv.FormatFloat(tv[1], 'g', -1, 64))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	// Sync the temp file before the rename and the directory after it:
	// without the first, a crash right after the rename can leave the new
	// name pointing at unwritten data (losing the retained window); without
	// the second, the rename itself may not survive the crash.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, pm.logPath(key)); err != nil {
		return err
	}
	if err := syncDir(pm.dir); err != nil {
		return err
	}
	pm.counts[key] = len(resp.Points)
	mMemoryCompactions.Inc()
	return nil
}

// syncDir fsyncs a directory, making renames inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

var _ Handler = (*PersistentMemory)(nil)
