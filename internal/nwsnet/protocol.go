// Package nwsnet implements the distributed architecture of the Network
// Weather Service that served the paper's forecasts: persistent sensors push
// measurements to a memory server, a name server tracks where everything
// runs, and a forecaster service answers prediction queries by pulling
// recent history from the memory and running the forecasting engine.
//
// The wire protocol has two codecs behind one negotiated listener (the
// normative spec is docs/PROTOCOL.md): v1 is one JSON object per line over
// TCP — deliberately simple and debuggable with netcat — and v2 is a
// length-prefixed binary codec with varint-packed point arrays and tagged
// request IDs, letting clients pipeline many requests over one multiplexed
// connection (see MuxConn) instead of running in lockstep. Both are
// implemented entirely with the standard library; servers sniff the v2
// preamble on connect, so v1 and v2 clients coexist transparently.
//
// Every component is instrumented through internal/metrics: the protocol
// server counts connections and per-op requests, the memory server tracks
// stores/fetches/evictions and per-op latency histograms, the name server
// tracks registrations and TTL expiries, the forecaster tracks queries,
// engine latency, and per-method selections, and the sensor daemon tracks
// measurements, delivery outages, and backlog drops. cmd/nwsd exposes all
// of it over HTTP with -metrics; the full metric reference is in
// docs/OBSERVABILITY.md.
package nwsnet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"nwscpu/internal/nwsnet/cluster"
)

// Kind labels a registered component.
type Kind string

// Component kinds known to the name server.
const (
	KindSensor     Kind = "sensor"
	KindMemory     Kind = "memory"
	KindForecaster Kind = "forecaster"
)

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	OpPing     Op = "ping"
	OpRegister Op = "register" // name server: announce a component
	OpLookup   Op = "lookup"   // name server: find a component by name
	OpList     Op = "list"     // name server: enumerate components
	OpStore    Op = "store"    // memory: append points to a series
	OpFetch    Op = "fetch"    // memory: read back a series range
	OpSeries   Op = "series"   // memory: list stored series keys
	OpBatch    Op = "batch"    // memory: execute sub-requests in one round trip
	OpForecast Op = "forecast" // forecaster: predict the next measurement
	OpJoin     Op = "join"     // registry: enter the cluster (joining, then active)
	OpLease    Op = "lease"    // registry: renew a member's lease
	OpView     Op = "view"     // registry: fetch the membership view

	// Read-plane operations (wire protocol v2 only; a v1 JSON client asking
	// for them gets a terminal "unsupported op" error from the handler).
	OpSubscribe   Op = "subscribe"   // forecaster: watch a series for forecast pushes
	OpUnsubscribe Op = "unsubscribe" // forecaster: stop watching a series
	OpHello       Op = "hello"       // any server: negotiate connection metadata (tenant ID)

	// Repair-plane operations (docs/PROTOCOL.md §9): anti-entropy digests
	// and behind-the-frontier merges, used by replica repair and hinted
	// handoff. Unlike OpStore, OpBackfill inserts points older than the
	// series frontier instead of deduplicating them away.
	OpDigest   Op = "digest"   // memory: per-series frontier/count/checksum digests
	OpBackfill Op = "backfill" // memory: merge points behind the frontier
)

// opLabel maps a wire operation to a bounded metric label: known ops map to
// their own name, anything else to "other". Ops arrive straight off the wire,
// so labeling them verbatim would let a remote client mint one time series
// per arbitrary op string and grow registry memory without bound.
func opLabel(op Op) string {
	switch op {
	case OpPing, OpRegister, OpLookup, OpList, OpStore, OpFetch, OpSeries, OpBatch, OpForecast,
		OpJoin, OpLease, OpView, OpSubscribe, OpUnsubscribe, OpHello, OpDigest, OpBackfill:
		return string(op)
	}
	return "other"
}

// Registration describes one component known to the name server.
type Registration struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	Addr string `json:"addr"`
	// Addrs, when non-empty, lists every replica behind this logical
	// component (by convention Addr repeats the first entry so old clients
	// keep working). Clients turn a replicated registration into a
	// ReplicaGroup; see docs/ARCHITECTURE.md, "Resilience".
	Addrs []string `json:"addrs,omitempty"`
}

// Endpoints returns the addresses behind the registration: the replica set
// when one was registered, else the single Addr.
func (r Registration) Endpoints() []string {
	if len(r.Addrs) > 0 {
		return r.Addrs
	}
	if r.Addr == "" {
		return nil
	}
	return []string{r.Addr}
}

// Request is the client-to-server message.
type Request struct {
	Op Op `json:"op"`

	// Register / Lookup fields.
	Reg Registration `json:"reg,omitempty"`

	// Series operations.
	Series string       `json:"series,omitempty"`
	Points [][2]float64 `json:"points,omitempty"` // [t, v] pairs
	From   float64      `json:"from,omitempty"`
	To     float64      `json:"to,omitempty"`  // fetch: exclusive upper bound (0 = open-ended)
	Max    int          `json:"max,omitempty"` // fetch: most recent N (0 = all in range)

	// Batch envelope: the sub-requests an OpBatch executes server-side in
	// one round trip. Nesting is rejected. Responses come back in the same
	// order in Response.Batch.
	Batch []Request `json:"batch,omitempty"`

	// Cluster membership fields (see docs/PROTOCOL.md, "Cluster
	// operations"). Member carries the joining/renewing node on OpJoin and
	// OpLease (lease needs only Member.ID). Epoch is the view epoch the
	// caller already holds: OpView answers "not modified" (no view) when it
	// matches the current epoch, and OpLease uses it to decide whether the
	// renewal response must carry a fresh view.
	Member *cluster.Member `json:"member,omitempty"`
	Epoch  uint64          `json:"epoch,omitempty"`

	// Tenant is the client's tenant ID, carried by OpHello: the server
	// attributes every later request on the connection to it when per-tenant
	// quotas are configured (see ServerLimits.TenantRate).
	Tenant string `json:"tenant,omitempty"`
}

// SeriesDigest summarizes one stored series for anti-entropy comparison:
// the point count, the frontier (timestamp of the newest point), and an
// FNV-1a checksum over the full point content in time order. Two replicas
// whose digests for a series are equal hold bit-identical copies of it;
// any difference tells the repairer what to pull (see internal/nwsnet
// Repairer and docs/PROTOCOL.md §9).
type SeriesDigest struct {
	Series   string  `json:"series"`
	Count    uint64  `json:"count"`
	Frontier float64 `json:"frontier"`
	Sum      uint64  `json:"sum"`
}

// ForecastResult carries a forecaster answer.
type ForecastResult struct {
	Value  float64 `json:"value"`
	Method string  `json:"method"`
	MAE    float64 `json:"mae"`
	N      int     `json:"n"` // measurements behind the forecast
}

// Response codes carried in Response.Code beside the human-readable Error.
// CodeBusy distinguishes "overloaded, back off and retry" from "bad
// request": the client retry policy treats busy responses as retryable
// (with backoff) where ordinary protocol errors are terminal, and the
// client circuit breaker counts them as failures of the endpoint.
const CodeBusy = "busy"

// CodeMoved marks a request routed to a node that does not own its series
// key under the current membership view. The response carries the server's
// view so the client refreshes its routing table and re-routes without a
// registry round trip; the redirect is terminal for the attempt against
// this endpoint (retrying the same node cannot help) but the routing layer
// retries against the proper owner.
const CodeMoved = "moved"

// MovedError is the typed form of a CodeMoved response: the contacted node
// is not an owner of the key under View (the server's current view, when it
// attached one).
type MovedError struct {
	Addr   string        // the endpoint that redirected
	Series string        // the misrouted series key, when the server echoed it
	View   *cluster.View // the server's membership view, nil if absent
	Msg    string        // the server's human-readable error text
}

func (e *MovedError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("nwsnet: %s: %s", e.Addr, e.Msg)
	}
	return fmt.Sprintf("nwsnet: %s: moved under current view", e.Addr)
}

// IsMoved extracts the MovedError from an error chain, reporting whether
// err is an ownership redirect.
func IsMoved(err error) (*MovedError, bool) {
	var me *MovedError
	if errors.As(err, &me) {
		return me, true
	}
	return nil, false
}

// movedResp builds an ownership redirect carrying the current view.
func movedResp(view *cluster.View, format string, args ...any) Response {
	return Response{Error: fmt.Sprintf(format, args...), Code: CodeMoved, View: view}
}

// errBusySentinel is wrapped into errors built from responses carrying
// CodeBusy so IsBusy can recognize them across wrapping.
var errBusySentinel = errors.New("nwsnet: server overloaded")

// IsBusy reports whether err came from a server shedding load (a response
// with code "busy"): the request was refused to protect the server, not
// because it was invalid, so retrying after backoff is expected to work.
func IsBusy(err error) bool { return errors.Is(err, errBusySentinel) }

// busyResp builds a load-shedding response: a protocol-level error carrying
// the retryable busy code.
func busyResp(format string, args ...any) Response {
	return Response{Error: fmt.Sprintf(format, args...), Code: CodeBusy}
}

// Response is the server-to-client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code distinguishes machine-readable error classes; today the only
	// code is CodeBusy ("overloaded, retry after backoff"). Empty on
	// success and on ordinary (terminal) protocol errors.
	Code     string          `json:"code,omitempty"`
	Entries  []Registration  `json:"entries,omitempty"`
	Points   [][2]float64    `json:"points,omitempty"`
	Names    []string        `json:"names,omitempty"`
	Forecast *ForecastResult `json:"forecast,omitempty"`

	// Batch holds one response per sub-request of an OpBatch envelope, in
	// request order. The envelope's own Error is empty unless the envelope
	// itself was malformed; per-sub failures live in Batch[i].Error.
	Batch []Response `json:"batch,omitempty"`

	// View is the cluster membership snapshot: the answer to OpView and
	// OpJoin, attached to OpLease renewals when the caller's epoch is
	// stale, and attached to CodeMoved redirects so misrouted clients
	// refresh without polling the registry.
	View *cluster.View `json:"view,omitempty"`

	// Digests answers OpDigest: one summary per non-empty stored series,
	// sorted by series key (or just the requested series when the request
	// named one).
	Digests []SeriesDigest `json:"digests,omitempty"`
}

// errResp builds an error response.
func errResp(format string, args ...any) Response {
	return Response{Error: fmt.Sprintf(format, args...)}
}

// maxLineBytes bounds a single protocol line; a fetch of 100k points fits
// comfortably.
const maxLineBytes = 8 << 20

// writeMsg writes one JSON value and a newline.
func writeMsg(w *bufio.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}
	return w.Flush()
}

// readMsg reads one newline-terminated JSON value of at most maxLineBytes.
func readMsg(r *bufio.Reader, v any) error {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			return err
		}
		if len(line) > maxLineBytes {
			return fmt.Errorf("nwsnet: protocol line exceeds %d bytes", maxLineBytes)
		}
	}
	return json.Unmarshal(line, v)
}

// call performs one request/response round trip on a fresh connection.
func call(addr string, timeout time.Duration, req Request) (Response, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return Response{}, fmt.Errorf("nwsnet: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return Response{}, err
	}
	bw := bufio.NewWriter(conn)
	if err := writeMsg(bw, req); err != nil {
		return Response{}, fmt.Errorf("nwsnet: send to %s: %w", addr, err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	var resp Response
	if err := readMsg(br, &resp); err != nil {
		return Response{}, fmt.Errorf("nwsnet: receive from %s: %w", addr, err)
	}
	return resp, nil
}
