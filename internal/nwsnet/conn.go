package nwsnet

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is a persistent protocol connection: unlike Client, which dials a
// fresh TCP connection per call, a Conn keeps one connection open and
// pipelines request/response pairs over it — what a sensor daemon pushing a
// measurement every ten seconds for weeks should use.
//
// Conn is safe for concurrent use; calls are serialized. A transport error
// poisons the connection: subsequent calls redial transparently.
//
// Conn speaks the binary codec by default; NewConnCodec selects. For many
// concurrent in-flight requests over one connection, see MuxConn.
type Conn struct {
	addr    string
	timeout time.Duration
	codec   Codec

	mu         sync.Mutex
	c          net.Conn
	r          *bufio.Reader
	w          *bufio.Writer
	negotiated bool
	nextID     uint64
	rbuf       []byte
}

// NewConn returns a lazy persistent connection to addr (dialed on first
// use) speaking the default binary codec. timeout bounds each round trip
// (0 selects 5 s).
func NewConn(addr string, timeout time.Duration) *Conn {
	return NewConnCodec(addr, timeout, CodecBinary)
}

// NewConnCodec is NewConn with an explicit wire codec.
func NewConnCodec(addr string, timeout time.Duration, codec Codec) *Conn {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := normCodec(codec)
	if err != nil {
		panic(err) // a codec not in the enum is a programming error
	}
	return &Conn{addr: addr, timeout: timeout, codec: c}
}

func (pc *Conn) ensureLocked() error {
	if pc.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", pc.addr, pc.timeout)
	if err != nil {
		return fmt.Errorf("nwsnet: dial %s: %w", pc.addr, err)
	}
	pc.c = c
	pc.r = bufio.NewReaderSize(c, 64<<10)
	pc.w = bufio.NewWriter(c)
	pc.negotiated = false
	if pc.codec == CodecBinary {
		c.SetWriteDeadline(time.Now().Add(pc.timeout))
		if _, err := c.Write(wirePreamble[:]); err != nil {
			pc.resetLocked()
			return fmt.Errorf("nwsnet: negotiate with %s: %w", pc.addr, err)
		}
		c.SetWriteDeadline(time.Time{})
	}
	return nil
}

func (pc *Conn) resetLocked() {
	if pc.c != nil {
		pc.c.Close()
	}
	pc.c, pc.r, pc.w = nil, nil, nil
	pc.negotiated = false
}

// Do performs one request/response exchange. On a transport error the
// connection is dropped and one transparent retry on a fresh connection is
// attempted before reporting failure. Protocol-level errors (Response.Error)
// are returned without killing the connection.
func (pc *Conn) Do(req Request) (Response, error) {
	t0 := time.Now()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	resp, err := pc.doLocked(req)
	if err != nil {
		pc.resetLocked()
		resp, err = pc.doLocked(req)
		if err != nil {
			pc.resetLocked()
			observeCall(req.Op, t0, err)
			return Response{}, err
		}
	}
	if resp.Error != "" {
		err := fmt.Errorf("nwsnet: %s: %s", pc.addr, resp.Error)
		if resp.Code == CodeBusy {
			// Keep the shed recognizable (IsBusy) so callers can back off
			// and retry instead of treating it as a bad request.
			err = fmt.Errorf("nwsnet: %s: %s: %w", pc.addr, resp.Error, errBusySentinel)
		}
		observeCall(req.Op, t0, err)
		return Response{}, err
	}
	observeCall(req.Op, t0, nil)
	return resp, nil
}

func (pc *Conn) doLocked(req Request) (Response, error) {
	if err := pc.ensureLocked(); err != nil {
		return Response{}, err
	}
	if err := pc.c.SetDeadline(time.Now().Add(pc.timeout)); err != nil {
		return Response{}, err
	}
	if pc.codec == CodecBinary {
		return pc.doBinaryLocked(req)
	}
	if err := writeMsg(pc.w, req); err != nil {
		return Response{}, fmt.Errorf("nwsnet: send to %s: %w", pc.addr, err)
	}
	var resp Response
	if err := readMsg(pc.r, &resp); err != nil {
		return Response{}, fmt.Errorf("nwsnet: receive from %s: %w", pc.addr, err)
	}
	return resp, nil
}

// doBinaryLocked is one lockstep v2 exchange; see exchangeBinary for the
// ID-matching rules it shares.
func (pc *Conn) doBinaryLocked(req Request) (Response, error) {
	pc.nextID++
	id := pc.nextID
	buf := getEncBuf()
	payload, err := encodeRequestPayload(*buf, id, req)
	if err != nil {
		putEncBuf(buf)
		return Response{}, fmt.Errorf("nwsnet: encode for %s: %w", pc.addr, err)
	}
	werr := writeFrame(pc.w, payload)
	*buf = payload
	putEncBuf(buf)
	if werr == nil {
		werr = pc.w.Flush()
	}
	if werr != nil {
		return Response{}, fmt.Errorf("nwsnet: send to %s: %w", pc.addr, werr)
	}
	if !pc.negotiated {
		accept, err := pc.r.ReadByte()
		if err != nil {
			return Response{}, fmt.Errorf("nwsnet: negotiate with %s: %w", pc.addr, err)
		}
		if accept != wireVersionBinary {
			return Response{}, fmt.Errorf("nwsnet: %s accepted wire version %d, not binary (%d)", pc.addr, accept, wireVersionBinary)
		}
		pc.negotiated = true
	}
	rp, _, err := readFrame(pc.r, &pc.rbuf)
	if err != nil {
		return Response{}, fmt.Errorf("nwsnet: receive from %s: %w", pc.addr, err)
	}
	respID, resp, err := decodeResponsePayload(rp)
	if err != nil {
		return Response{}, fmt.Errorf("nwsnet: receive from %s: %w", pc.addr, err)
	}
	if respID != id && !(respID == 0 && resp.Code == CodeBusy) {
		return Response{}, fmt.Errorf("nwsnet: %s: response ID %d for request %d", pc.addr, respID, id)
	}
	return resp, nil
}

// Store appends points to a series over the persistent connection.
func (pc *Conn) Store(key string, points [][2]float64) error {
	_, err := pc.Do(Request{Op: OpStore, Series: key, Points: points})
	return err
}

// Ping checks liveness over the persistent connection.
func (pc *Conn) Ping() error {
	_, err := pc.Do(Request{Op: OpPing})
	return err
}

// Close shuts the underlying connection; the Conn may be reused afterwards
// (it will redial).
func (pc *Conn) Close() error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var err error
	if pc.c != nil {
		err = pc.c.Close()
	}
	pc.c, pc.r, pc.w = nil, nil, nil
	return err
}
