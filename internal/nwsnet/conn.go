package nwsnet

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is a persistent protocol connection: unlike Client, which dials a
// fresh TCP connection per call, a Conn keeps one connection open and
// pipelines request/response pairs over it — what a sensor daemon pushing a
// measurement every ten seconds for weeks should use.
//
// Conn is safe for concurrent use; calls are serialized. A transport error
// poisons the connection: subsequent calls redial transparently.
type Conn struct {
	addr    string
	timeout time.Duration

	mu sync.Mutex
	c  net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

// NewConn returns a lazy persistent connection to addr (dialed on first
// use). timeout bounds each round trip (0 selects 5 s).
func NewConn(addr string, timeout time.Duration) *Conn {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Conn{addr: addr, timeout: timeout}
}

func (pc *Conn) ensureLocked() error {
	if pc.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", pc.addr, pc.timeout)
	if err != nil {
		return fmt.Errorf("nwsnet: dial %s: %w", pc.addr, err)
	}
	pc.c = c
	pc.r = bufio.NewReaderSize(c, 64<<10)
	pc.w = bufio.NewWriter(c)
	return nil
}

func (pc *Conn) resetLocked() {
	if pc.c != nil {
		pc.c.Close()
	}
	pc.c, pc.r, pc.w = nil, nil, nil
}

// Do performs one request/response exchange. On a transport error the
// connection is dropped and one transparent retry on a fresh connection is
// attempted before reporting failure. Protocol-level errors (Response.Error)
// are returned without killing the connection.
func (pc *Conn) Do(req Request) (Response, error) {
	t0 := time.Now()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	resp, err := pc.doLocked(req)
	if err != nil {
		pc.resetLocked()
		resp, err = pc.doLocked(req)
		if err != nil {
			pc.resetLocked()
			observeCall(req.Op, t0, err)
			return Response{}, err
		}
	}
	if resp.Error != "" {
		err := fmt.Errorf("nwsnet: %s: %s", pc.addr, resp.Error)
		if resp.Code == CodeBusy {
			// Keep the shed recognizable (IsBusy) so callers can back off
			// and retry instead of treating it as a bad request.
			err = fmt.Errorf("nwsnet: %s: %s: %w", pc.addr, resp.Error, errBusySentinel)
		}
		observeCall(req.Op, t0, err)
		return Response{}, err
	}
	observeCall(req.Op, t0, nil)
	return resp, nil
}

func (pc *Conn) doLocked(req Request) (Response, error) {
	if err := pc.ensureLocked(); err != nil {
		return Response{}, err
	}
	if err := pc.c.SetDeadline(time.Now().Add(pc.timeout)); err != nil {
		return Response{}, err
	}
	if err := writeMsg(pc.w, req); err != nil {
		return Response{}, fmt.Errorf("nwsnet: send to %s: %w", pc.addr, err)
	}
	var resp Response
	if err := readMsg(pc.r, &resp); err != nil {
		return Response{}, fmt.Errorf("nwsnet: receive from %s: %w", pc.addr, err)
	}
	return resp, nil
}

// Store appends points to a series over the persistent connection.
func (pc *Conn) Store(key string, points [][2]float64) error {
	_, err := pc.Do(Request{Op: OpStore, Series: key, Points: points})
	return err
}

// Ping checks liveness over the persistent connection.
func (pc *Conn) Ping() error {
	_, err := pc.Do(Request{Op: OpPing})
	return err
}

// Close shuts the underlying connection; the Conn may be reused afterwards
// (it will redial).
func (pc *Conn) Close() error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var err error
	if pc.c != nil {
		err = pc.c.Close()
	}
	pc.c, pc.r, pc.w = nil, nil, nil
	return err
}
