package nwsnet

import (
	"context"
	"fmt"
	"sync"

	"nwscpu/internal/resilience"
)

// Transport is the client surface the replication layer runs over: the
// calls ReplicaGroup needs to fan writes out and fail reads over, plus the
// digest/backfill pair the repair plane adds. *Client implements it against
// real TCP endpoints; LocalTransport implements it against in-process
// handlers with deterministic fault injection, which is how the grid fault
// campaign drives the production ReplicaGroup and Repairer code without
// sockets, goroutine races, or wall-clock timeouts.
type Transport interface {
	PingCtx(ctx context.Context, addr string) error
	StoreBatchCtx(ctx context.Context, addr string, stores []BatchStore) ([]error, error)
	FetchCtx(ctx context.Context, addr, key string, from, to float64, max int) ([][2]float64, error)
	FetchBatchCtx(ctx context.Context, addr string, fetches []BatchFetch) ([]FetchResult, error)
	SeriesCtx(ctx context.Context, addr string) ([]string, error)
	DigestsCtx(ctx context.Context, addr, key string) ([]SeriesDigest, error)
	BackfillCtx(ctx context.Context, addr, key string, points [][2]float64) error
	// BreakerState reports the client-side circuit breaker position for an
	// endpoint; transports without breakers answer BreakerClosed.
	BreakerState(addr string) resilience.BreakerState
}

var _ Transport = (*Client)(nil)

// LocalTransport routes Transport calls to in-process Handlers by address,
// with two injectable fault modes per address:
//
//   - down: every call fails without reaching the handler — a crashed or
//     stalled process (the state is flipped back on "restart"; the handler
//     keeps its memory, like a process restarting over a durable store).
//   - partitioned: the request reaches the handler and takes effect, but
//     the response is lost and the caller sees a transport error — the
//     in-process analog of the chaos proxy's one-directional partition
//     fault, exercising every "applied but unacknowledged" ambiguity.
//
// Calls execute synchronously on the caller's goroutine in call order, so a
// single-threaded harness over a LocalTransport is fully deterministic.
type LocalTransport struct {
	mu    sync.Mutex
	nodes map[string]*localTransportNode
}

type localTransportNode struct {
	h           Handler
	down        bool
	partitioned bool
}

// NewLocalTransport returns an empty transport; Register adds endpoints.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{nodes: make(map[string]*localTransportNode)}
}

// Register binds an address to a handler (replacing any previous binding).
func (t *LocalTransport) Register(addr string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[addr] = &localTransportNode{h: h}
}

// SetDown marks an address crashed (true) or restarted (false).
func (t *LocalTransport) SetDown(addr string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := t.nodes[addr]; n != nil {
		n.down = down
	}
}

// SetPartitioned puts an address behind an asymmetric partition: requests
// are applied, responses are lost.
func (t *LocalTransport) SetPartitioned(addr string, v bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := t.nodes[addr]; n != nil {
		n.partitioned = v
	}
}

// exchange runs one request against an address, applying its fault mode.
func (t *LocalTransport) exchange(addr string, req Request) (Response, error) {
	t.mu.Lock()
	n := t.nodes[addr]
	var down, partitioned bool
	var h Handler
	if n != nil {
		h, down, partitioned = n.h, n.down, n.partitioned
	}
	t.mu.Unlock()
	if n == nil {
		return Response{}, fmt.Errorf("nwsnet: local transport: no handler for %q", addr)
	}
	if down {
		return Response{}, fmt.Errorf("nwsnet: local transport: %s is down", addr)
	}
	resp := h.Handle(req)
	if partitioned {
		// The handler ran — the write (if any) is applied — but the caller
		// never learns it.
		return Response{}, fmt.Errorf("nwsnet: local transport: %s partitioned: response lost", addr)
	}
	return resp, nil
}

// PingCtx implements Transport.
func (t *LocalTransport) PingCtx(_ context.Context, addr string) error {
	resp, err := t.exchange(addr, Request{Op: OpPing})
	if err != nil {
		return err
	}
	return respError(addr, resp)
}

// StoreBatchCtx implements Transport with Client.StoreBatchCtx semantics.
func (t *LocalTransport) StoreBatchCtx(_ context.Context, addr string, stores []BatchStore) ([]error, error) {
	if len(stores) == 0 {
		return nil, nil
	}
	subs := make([]Request, len(stores))
	for i, s := range stores {
		subs[i] = Request{Op: OpStore, Series: s.Series, Points: s.Points}
	}
	resp, err := t.exchange(addr, Request{Op: OpBatch, Batch: subs})
	if err != nil {
		return nil, err
	}
	if err := respError(addr, resp); err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(subs) {
		return nil, fmt.Errorf("nwsnet: batch store returned %d sub-responses, want %d", len(resp.Batch), len(subs))
	}
	errs := make([]error, len(subs))
	for i, r := range resp.Batch {
		errs[i] = respError(addr, r)
	}
	return errs, nil
}

// FetchCtx implements Transport.
func (t *LocalTransport) FetchCtx(_ context.Context, addr, key string, from, to float64, max int) ([][2]float64, error) {
	resp, err := t.exchange(addr, Request{Op: OpFetch, Series: key, From: from, To: to, Max: max})
	if err != nil {
		return nil, err
	}
	if err := respError(addr, resp); err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// FetchBatchCtx implements Transport with Client.FetchBatchCtx semantics.
func (t *LocalTransport) FetchBatchCtx(_ context.Context, addr string, fetches []BatchFetch) ([]FetchResult, error) {
	if len(fetches) == 0 {
		return nil, nil
	}
	subs := make([]Request, len(fetches))
	for i, f := range fetches {
		subs[i] = Request{Op: OpFetch, Series: f.Series, From: f.From, To: f.To, Max: f.Max}
	}
	resp, err := t.exchange(addr, Request{Op: OpBatch, Batch: subs})
	if err != nil {
		return nil, err
	}
	if err := respError(addr, resp); err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(subs) {
		return nil, fmt.Errorf("nwsnet: batch fetch returned %d sub-responses, want %d", len(resp.Batch), len(subs))
	}
	out := make([]FetchResult, len(subs))
	for i, r := range resp.Batch {
		if err := respError(addr, r); err != nil {
			out[i].Err = err
			continue
		}
		out[i].Points = r.Points
	}
	return out, nil
}

// SeriesCtx implements Transport.
func (t *LocalTransport) SeriesCtx(_ context.Context, addr string) ([]string, error) {
	resp, err := t.exchange(addr, Request{Op: OpSeries})
	if err != nil {
		return nil, err
	}
	if err := respError(addr, resp); err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// DigestsCtx implements Transport.
func (t *LocalTransport) DigestsCtx(_ context.Context, addr, key string) ([]SeriesDigest, error) {
	resp, err := t.exchange(addr, Request{Op: OpDigest, Series: key})
	if err != nil {
		return nil, err
	}
	if err := respError(addr, resp); err != nil {
		return nil, err
	}
	return resp.Digests, nil
}

// BackfillCtx implements Transport.
func (t *LocalTransport) BackfillCtx(_ context.Context, addr, key string, points [][2]float64) error {
	resp, err := t.exchange(addr, Request{Op: OpBackfill, Series: key, Points: points})
	if err != nil {
		return err
	}
	return respError(addr, resp)
}

// BreakerState implements Transport; the local transport has no breakers.
func (t *LocalTransport) BreakerState(string) resilience.BreakerState {
	return resilience.BreakerClosed
}

var _ Transport = (*LocalTransport)(nil)
