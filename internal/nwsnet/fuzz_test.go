package nwsnet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"nwscpu/internal/resilience"
)

// FuzzDecodeRequest feeds arbitrary wire lines through the same decode path
// the server uses and executes whatever decodes against a live Memory. The
// handler must never panic, whatever the envelope contains — the seed code
// failed this for a plain fetch with From > To (a remotely triggerable slice
// bounds panic), which is exactly the class of bug this guards. The batch
// envelope is in the corpus so sub-request execution (including nesting and
// mixed invalid subs) is fuzzed too.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"op":"ping"}`,
		`{"op":"store","series":"k","points":[[1,0.5],[2,0.6]]}`,
		`{"op":"fetch","series":"k"}`,
		`{"op":"fetch","series":"k","from":5,"to":2}`, // inverted range: panicked in the seed code
		`{"op":"fetch","series":"k","from":2,"to":5,"max":1}`,
		`{"op":"series"}`,
		`{"op":"batch","batch":[{"op":"store","series":"a","points":[[1,1]]},{"op":"fetch","series":"a"}]}`,
		`{"op":"batch","batch":[{"op":"batch","batch":[{"op":"ping"}]}]}`,
		`{"op":"batch","batch":[]}`,
		`{"op":"batch","batch":[{"op":"store"},{"op":"fetch","series":"k","from":9,"to":-3,"max":-1}]}`,
		`{"op":"nonsense"}`,
		`{"op":"store","series":"k","points":[[2,1],[1,1],[2,2]]}`,
		`not json at all`,
		`{"op":"fetch","series":"k","from":1e308,"to":-1e308}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s + "\n"))
	}
	m := NewMemory(16)
	f.Fuzz(func(t *testing.T, line []byte) {
		var req Request
		if err := readMsg(bufio.NewReader(bytes.NewReader(line)), &req); err != nil {
			return // undecodable input never reaches the handler
		}
		resp := m.Handle(req)
		// Whatever came back must survive the encode half of the wire.
		if _, err := json.Marshal(resp); err != nil {
			t.Fatalf("unmarshalable response %+v: %v", resp, err)
		}
	})
}

// FuzzDecodeResponse feeds arbitrary wire lines through the client-side
// decode and error-classification path — the half of the protocol a
// malicious or confused *server* controls. Whatever comes back, the client
// must neither panic nor misclassify: a response carrying the busy code is
// always a retryable, busy-recognizable error (never terminal, so retry
// policies back off instead of giving up), an ordinary rejection is always
// terminal, and a clean response classifies as no error at all.
func FuzzDecodeResponse(f *testing.F) {
	seeds := []string{
		`{"ok":true}`,
		`{"ok":false,"error":"no such series"}`,
		`{"ok":false,"error":"server at connection capacity; retry","code":"busy"}`,
		`{"ok":false,"error":"","code":"busy"}`,
		`{"ok":true,"error":"","code":"nonsense"}`,
		`{"ok":true,"points":[[1,0.5],[2,0.6]]}`,
		`{"ok":true,"batch":[{"ok":false,"error":"x","code":"busy"},{"ok":true}]}`,
		`{"ok":true,"forecast":{"value":0.5,"method":"sw_avg","mae":0.01,"n":64}}`,
		`{"code":"busy"}`,
		`not json at all`,
		`{"ok":true,"points":[[1e308,-1e308]]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s + "\n"))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var resp Response
		if err := readMsg(bufio.NewReader(bytes.NewReader(line)), &resp); err != nil {
			return // undecodable responses surface as transport errors
		}
		err := respError("fuzz:0", resp)
		switch {
		case resp.Code == CodeBusy:
			if err == nil || !IsBusy(err) {
				t.Fatalf("busy response classified %v, want busy", err)
			}
			if resilience.IsTerminal(err) {
				t.Fatalf("busy response classified terminal: %v", err)
			}
		case resp.Error != "":
			if err == nil || !resilience.IsTerminal(err) {
				t.Fatalf("protocol rejection classified %v, want terminal", err)
			}
			if IsBusy(err) {
				t.Fatalf("plain rejection classified busy: %v", err)
			}
		default:
			if err != nil {
				t.Fatalf("clean response classified as error: %v", err)
			}
		}
	})
}
