package nwsnet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"nwscpu/internal/nwsnet/cluster"
	"nwscpu/internal/resilience"
)

// FuzzDecodeRequest feeds arbitrary wire lines through the same decode path
// the server uses and executes whatever decodes against a live Memory. The
// handler must never panic, whatever the envelope contains — the seed code
// failed this for a plain fetch with From > To (a remotely triggerable slice
// bounds panic), which is exactly the class of bug this guards. The batch
// envelope is in the corpus so sub-request execution (including nesting and
// mixed invalid subs) is fuzzed too.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"op":"ping"}`,
		`{"op":"store","series":"k","points":[[1,0.5],[2,0.6]]}`,
		`{"op":"fetch","series":"k"}`,
		`{"op":"fetch","series":"k","from":5,"to":2}`, // inverted range: panicked in the seed code
		`{"op":"fetch","series":"k","from":2,"to":5,"max":1}`,
		`{"op":"series"}`,
		`{"op":"batch","batch":[{"op":"store","series":"a","points":[[1,1]]},{"op":"fetch","series":"a"}]}`,
		`{"op":"batch","batch":[{"op":"batch","batch":[{"op":"ping"}]}]}`,
		`{"op":"batch","batch":[]}`,
		`{"op":"batch","batch":[{"op":"store"},{"op":"fetch","series":"k","from":9,"to":-3,"max":-1}]}`,
		`{"op":"nonsense"}`,
		`{"op":"store","series":"k","points":[[2,1],[1,1],[2,2]]}`,
		`not json at all`,
		`{"op":"fetch","series":"k","from":1e308,"to":-1e308}`,
		`{"op":"join","member":{"id":"m1","kind":"memory","addr":"a:1","state":"joining"}}`,
		`{"op":"join","member":{"id":"m1","kind":"memory","addrs":["a:1","b:2"],"state":"active"},"epoch":7}`,
		`{"op":"lease","member":{"id":"m1"},"epoch":12}`,
		`{"op":"view"}`,
		`{"op":"view","epoch":3}`,
		`{"op":"subscribe","series":"k"}`,
		`{"op":"unsubscribe","series":"k"}`,
		`{"op":"hello","tenant":"team-a"}`,
		`{"op":"digest"}`,
		`{"op":"digest","series":"k"}`,
		`{"op":"backfill","series":"k","points":[[1,0.5],[2,0.6]]}`,
		`{"op":"backfill","series":"k","points":[[2,1],[1,1],[2,2]]}`,
		`{"op":"backfill","series":"k"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s + "\n"))
	}
	m := NewMemory(16)
	f.Fuzz(func(t *testing.T, line []byte) {
		var req Request
		if err := readMsg(bufio.NewReader(bytes.NewReader(line)), &req); err != nil {
			return // undecodable input never reaches the handler
		}
		resp := m.Handle(req)
		// Whatever came back must survive the encode half of the wire.
		if _, err := json.Marshal(resp); err != nil {
			t.Fatalf("unmarshalable response %+v: %v", resp, err)
		}
		// Cross-codec: anything the JSON codec accepts must round-trip
		// losslessly through the binary codec (encode → decode → re-encode
		// must reproduce the first encoding byte for byte). Requests only
		// the JSON codec can express — unknown ops, absurd nesting — are
		// legitimately unencodable and skipped.
		b1, err := encodeRequestPayload(nil, 7, req)
		if err != nil {
			return
		}
		id, req2, err := decodeRequestPayload(b1)
		if err != nil {
			t.Fatalf("binary decode of own encoding failed: %v\npayload % x", err, b1)
		}
		if id != 7 {
			t.Fatalf("request ID %d survived as %d", 7, id)
		}
		b2, err := encodeRequestPayload(nil, 7, req2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("binary round trip not stable:\n first % x\nsecond % x", b1, b2)
		}
	})
}

// FuzzDecodeResponse feeds arbitrary wire lines through the client-side
// decode and error-classification path — the half of the protocol a
// malicious or confused *server* controls. Whatever comes back, the client
// must neither panic nor misclassify: a response carrying the busy code is
// always a retryable, busy-recognizable error (never terminal, so retry
// policies back off instead of giving up), an ordinary rejection is always
// terminal, and a clean response classifies as no error at all.
func FuzzDecodeResponse(f *testing.F) {
	seeds := []string{
		`{"ok":true}`,
		`{"ok":false,"error":"no such series"}`,
		`{"ok":false,"error":"server at connection capacity; retry","code":"busy"}`,
		`{"ok":false,"error":"","code":"busy"}`,
		`{"ok":true,"error":"","code":"nonsense"}`,
		`{"ok":true,"points":[[1,0.5],[2,0.6]]}`,
		`{"ok":true,"batch":[{"ok":false,"error":"x","code":"busy"},{"ok":true}]}`,
		`{"ok":true,"forecast":{"value":0.5,"method":"sw_avg","mae":0.01,"n":64}}`,
		`{"code":"busy"}`,
		`not json at all`,
		`{"ok":true,"points":[[1e308,-1e308]]}`,
		`{"ok":false,"error":"store \"k\": not an owner under epoch 4","code":"moved","view":{"epoch":4,"config":{"replication":2,"vnodes":64},"members":[{"id":"m1","kind":"memory","addr":"a:1","state":"active"}]}}`,
		`{"ok":false,"code":"moved"}`,
		`{"ok":true,"view":{"epoch":9,"members":[{"id":"m1","kind":"memory","addr":"a:1","state":"active"},{"id":"f1","kind":"forecaster","addr":"c:3","state":"joining"}]}}`,
		`{"ok":true,"digests":[{"series":"k","count":2,"frontier":2,"sum":123456789}]}`,
		`{"ok":true,"digests":[{"series":"a","count":0,"frontier":0,"sum":0},{"series":"b","count":18446744073709551615,"frontier":-1e308,"sum":18446744073709551615}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s + "\n"))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var resp Response
		if err := readMsg(bufio.NewReader(bytes.NewReader(line)), &resp); err != nil {
			return // undecodable responses surface as transport errors
		}
		err := respError("fuzz:0", resp)
		switch {
		case resp.Code == CodeBusy:
			if err == nil || !IsBusy(err) {
				t.Fatalf("busy response classified %v, want busy", err)
			}
			if resilience.IsTerminal(err) {
				t.Fatalf("busy response classified terminal: %v", err)
			}
		case resp.Code == CodeMoved:
			// An ownership redirect is terminal for the answering endpoint
			// but must stay typed so routing layers can extract the view.
			if err == nil || !resilience.IsTerminal(err) || IsBusy(err) {
				t.Fatalf("moved response misclassified: %v", err)
			}
			if _, ok := IsMoved(err); !ok {
				t.Fatalf("moved response lost its MovedError type: %v", err)
			}
		case resp.Error != "":
			if err == nil || !resilience.IsTerminal(err) {
				t.Fatalf("protocol rejection classified %v, want terminal", err)
			}
			if IsBusy(err) {
				t.Fatalf("plain rejection classified busy: %v", err)
			}
		default:
			if err != nil {
				t.Fatalf("clean response classified as error: %v", err)
			}
		}
		// Cross-codec: see FuzzDecodeRequest. Deeply nested batches are the
		// only JSON responses the binary codec refuses; skip those.
		b1, eerr := encodeResponsePayload(nil, 9, resp)
		if eerr != nil {
			return
		}
		id, resp2, derr := decodeResponsePayload(b1)
		if derr != nil {
			t.Fatalf("binary decode of own encoding failed: %v\npayload % x", derr, b1)
		}
		if id != 9 {
			t.Fatalf("response ID %d survived as %d", 9, id)
		}
		b2, eerr := encodeResponsePayload(nil, 9, resp2)
		if eerr != nil {
			t.Fatalf("re-encode failed: %v", eerr)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("binary round trip not stable:\n first % x\nsecond % x", b1, b2)
		}
	})
}

// binaryRequestSeeds returns encoded v2 request payloads covering every op,
// for seeding the binary fuzzers with well-formed frames to mutate.
func binaryRequestSeeds() [][]byte {
	reqs := []Request{
		{Op: OpPing},
		{Op: OpRegister, Reg: Registration{Name: "h/cpu", Kind: KindSensor, Addr: "a:1", Addrs: []string{"a:1", "b:2"}}},
		{Op: OpLookup, Reg: Registration{Name: "h/cpu"}},
		{Op: OpList, Reg: Registration{Kind: KindMemory}},
		{Op: OpStore, Series: "k", Points: [][2]float64{{1, 0.5}, {2, 0.5}}},
		{Op: OpStore, Series: "k"},
		{Op: OpFetch, Series: "k", From: 5, To: 2, Max: 1},
		{Op: OpFetch, Series: "k", From: 1e308, To: -1e308},
		{Op: OpSeries},
		{Op: OpForecast, Series: "k"},
		{Op: OpBatch, Batch: []Request{
			{Op: OpStore, Series: "a", Points: [][2]float64{{1, 1}}},
			{Op: OpFetch, Series: "a"},
		}},
		{Op: OpBatch, Batch: []Request{{Op: OpBatch, Batch: []Request{{Op: OpPing}}}}},
		{Op: OpBatch},
		{Op: OpJoin, Member: &cluster.Member{ID: "m1", Kind: "memory", Addr: "a:1", State: cluster.StateJoining}},
		{Op: OpJoin, Member: &cluster.Member{ID: "m1", Kind: "memory", Addrs: []string{"a:1", "b:2"}, State: cluster.StateActive}, Epoch: 7},
		{Op: OpLease, Member: &cluster.Member{ID: "m1"}, Epoch: 12},
		{Op: OpView},
		{Op: OpView, Epoch: 1 << 40},
		{Op: OpSubscribe, Series: "k"},
		{Op: OpUnsubscribe, Series: "k"},
		{Op: OpHello, Tenant: "team-a"},
		{Op: OpHello},
		{Op: OpDigest},
		{Op: OpDigest, Series: "k"},
		{Op: OpBackfill, Series: "k", Points: [][2]float64{{1, 0.5}, {2, 0.6}}},
		{Op: OpBackfill, Series: "k"},
	}
	var out [][]byte
	for _, r := range reqs {
		if b, err := encodeRequestPayload(nil, 1, r); err == nil {
			out = append(out, b)
		}
	}
	return out
}

// requestElems counts the decoded container elements of a request —
// points, addresses, sub-requests — to bound allocation against input size.
func requestElems(req Request) int {
	n := len(req.Points) + len(req.Reg.Addrs)
	if req.Member != nil {
		n += 1 + len(req.Member.Addrs)
	}
	for _, sub := range req.Batch {
		n += 1 + requestElems(sub)
	}
	return n
}

// responseElems is requestElems for responses.
func responseElems(resp Response) int {
	n := len(resp.Points) + len(resp.Names) + len(resp.Entries) + len(resp.Digests)
	for _, e := range resp.Entries {
		n += len(e.Addrs)
	}
	if resp.View != nil {
		n += 1 + len(resp.View.Members)
		for _, m := range resp.View.Members {
			n += len(m.Addrs)
		}
	}
	for _, sub := range resp.Batch {
		n += 1 + responseElems(sub)
	}
	return n
}

// FuzzDecodeBinaryRequest is FuzzDecodeRequest for the v2 codec: arbitrary
// frame payloads — malformed frames, truncated varints, forged counts —
// must never panic the decoder or make it allocate beyond the input's size,
// and whatever decodes must execute safely and round-trip canonically.
func FuzzDecodeBinaryRequest(f *testing.F) {
	for _, b := range binaryRequestSeeds() {
		f.Add(b)
	}
	f.Add([]byte{0x01, 0x05})             // truncated store
	f.Add([]byte{0x01, 0xff})             // unknown opcode
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // truncated varint ID
	m := NewMemory(16)
	f.Fuzz(func(t *testing.T, payload []byte) {
		id, req, err := decodeRequestPayload(payload)
		if err != nil {
			return // undecodable frames close the connection before the handler
		}
		if n := requestElems(req); n > len(payload) {
			t.Fatalf("decoded %d elements from %d bytes: over-allocation", n, len(payload))
		}
		resp := m.Handle(req)
		resp.OK = resp.Error == ""
		// The response the server would send must encode and round-trip.
		rb1, err := encodeResponsePayload(nil, id, resp)
		if err != nil {
			t.Fatalf("handler response unencodable: %v (%+v)", err, resp)
		}
		rid, resp2, err := decodeResponsePayload(rb1)
		if err != nil || rid != id {
			t.Fatalf("response round trip failed: id %d→%d, %v", id, rid, err)
		}
		rb2, err := encodeResponsePayload(nil, id, resp2)
		if err != nil || !bytes.Equal(rb1, rb2) {
			t.Fatalf("response re-encode not stable: %v", err)
		}
		// The decoded request must round-trip canonically too.
		b1, err := encodeRequestPayload(nil, id, req)
		if err != nil {
			t.Fatalf("decoded request unencodable: %v (%+v)", err, req)
		}
		id2, req2, err := decodeRequestPayload(b1)
		if err != nil || id2 != id {
			t.Fatalf("request round trip failed: id %d→%d, %v", id, id2, err)
		}
		b2, err := encodeRequestPayload(nil, id, req2)
		if err != nil || !bytes.Equal(b1, b2) {
			t.Fatalf("request re-encode not stable: %v\n first % x\nsecond % x", err, b1, b2)
		}
	})
}

// FuzzDecodeBinaryResponse is FuzzDecodeResponse for the v2 codec: the
// decoder must never panic or over-allocate on server-controlled bytes, and
// the busy/terminal classification invariants must hold for whatever
// decodes, exactly as on the JSON codec.
func FuzzDecodeBinaryResponse(f *testing.F) {
	resps := []Response{
		{OK: true},
		{Error: "no such series"},
		{Error: "server at connection capacity; retry", Code: CodeBusy},
		{OK: true, Code: "nonsense"},
		{OK: true, Points: [][2]float64{{1, 0.5}, {2, 0.6}}},
		{OK: true, Names: []string{"a", "b"}},
		{OK: true, Entries: []Registration{{Name: "h", Kind: KindSensor, Addr: "a:1"}}},
		{OK: true, Forecast: &ForecastResult{Value: 0.5, Method: "sw_avg", MAE: 0.01, N: 64}},
		{OK: true, Batch: []Response{{Error: "x", Code: CodeBusy}, {OK: true}}},
		{OK: true, View: &cluster.View{Epoch: 4, Config: cluster.Config{Replication: 2, VNodes: 64}, Members: []cluster.Member{
			{ID: "m1", Kind: "memory", Addr: "a:1", State: cluster.StateActive},
			{ID: "m2", Kind: "memory", Addrs: []string{"b:2", "c:3"}, State: cluster.StateJoining},
		}}},
		{OK: true, View: &cluster.View{}},
		{Error: `store "k": not an owner under epoch 4`, Code: CodeMoved, View: &cluster.View{Epoch: 4, Members: []cluster.Member{
			{ID: "m1", Kind: "memory", Addr: "a:1", State: cluster.StateActive},
		}}},
		{OK: true, Digests: []SeriesDigest{{Series: "k", Count: 2, Frontier: 2, Sum: 123456789}}},
		{OK: true, Digests: []SeriesDigest{
			{Series: "a"},
			{Series: "b", Count: 1<<64 - 1, Frontier: -1e308, Sum: 1<<64 - 1},
		}},
	}
	for _, r := range resps {
		if b, err := encodeResponsePayload(nil, 1, r); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{0x00, 0x08})       // ID 0, batch flag, truncated
	f.Add([]byte{0x01, 0xff, 0x00}) // all flags, empty sections
	f.Fuzz(func(t *testing.T, payload []byte) {
		_, resp, err := decodeResponsePayload(payload)
		if err != nil {
			return // undecodable responses surface as transport errors
		}
		if n := responseElems(resp); n > len(payload) {
			t.Fatalf("decoded %d elements from %d bytes: over-allocation", n, len(payload))
		}
		rerr := respError("fuzz:0", resp)
		switch {
		case resp.Code == CodeBusy:
			if rerr == nil || !IsBusy(rerr) || resilience.IsTerminal(rerr) {
				t.Fatalf("busy response misclassified: %v", rerr)
			}
		case resp.Code == CodeMoved:
			if rerr == nil || !resilience.IsTerminal(rerr) || IsBusy(rerr) {
				t.Fatalf("moved response misclassified: %v", rerr)
			}
			if _, ok := IsMoved(rerr); !ok {
				t.Fatalf("moved response lost its MovedError type: %v", rerr)
			}
		case resp.Error != "":
			if rerr == nil || !resilience.IsTerminal(rerr) || IsBusy(rerr) {
				t.Fatalf("rejection misclassified: %v", rerr)
			}
		default:
			if rerr != nil {
				t.Fatalf("clean response classified as error: %v", rerr)
			}
		}
		b1, err := encodeResponsePayload(nil, 3, resp)
		if err != nil {
			t.Fatalf("decoded response unencodable: %v (%+v)", err, resp)
		}
		_, resp2, err := decodeResponsePayload(b1)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		b2, err := encodeResponsePayload(nil, 3, resp2)
		if err != nil || !bytes.Equal(b1, b2) {
			t.Fatalf("re-encode not stable: %v\n first % x\nsecond % x", err, b1, b2)
		}
	})
}
