package nwsnet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary wire lines through the same decode path
// the server uses and executes whatever decodes against a live Memory. The
// handler must never panic, whatever the envelope contains — the seed code
// failed this for a plain fetch with From > To (a remotely triggerable slice
// bounds panic), which is exactly the class of bug this guards. The batch
// envelope is in the corpus so sub-request execution (including nesting and
// mixed invalid subs) is fuzzed too.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"op":"ping"}`,
		`{"op":"store","series":"k","points":[[1,0.5],[2,0.6]]}`,
		`{"op":"fetch","series":"k"}`,
		`{"op":"fetch","series":"k","from":5,"to":2}`, // inverted range: panicked in the seed code
		`{"op":"fetch","series":"k","from":2,"to":5,"max":1}`,
		`{"op":"series"}`,
		`{"op":"batch","batch":[{"op":"store","series":"a","points":[[1,1]]},{"op":"fetch","series":"a"}]}`,
		`{"op":"batch","batch":[{"op":"batch","batch":[{"op":"ping"}]}]}`,
		`{"op":"batch","batch":[]}`,
		`{"op":"batch","batch":[{"op":"store"},{"op":"fetch","series":"k","from":9,"to":-3,"max":-1}]}`,
		`{"op":"nonsense"}`,
		`{"op":"store","series":"k","points":[[2,1],[1,1],[2,2]]}`,
		`not json at all`,
		`{"op":"fetch","series":"k","from":1e308,"to":-1e308}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s + "\n"))
	}
	m := NewMemory(16)
	f.Fuzz(func(t *testing.T, line []byte) {
		var req Request
		if err := readMsg(bufio.NewReader(bytes.NewReader(line)), &req); err != nil {
			return // undecodable input never reaches the handler
		}
		resp := m.Handle(req)
		// Whatever came back must survive the encode half of the wire.
		if _, err := json.Marshal(resp); err != nil {
			t.Fatalf("unmarshalable response %+v: %v", resp, err)
		}
	})
}
