package nwsnet

import (
	"context"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
)

// startServer runs a handler on an ephemeral port and registers cleanup.
func startServer(t *testing.T, h Handler) string {
	t.Helper()
	srv := NewServer(h, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestPingAllComponents(t *testing.T) {
	c := NewClient(time.Second)
	for name, h := range map[string]Handler{
		"nameserver": NewNameServer(),
		"memory":     NewMemory(0),
		"forecaster": NewForecasterService("127.0.0.1:1", time.Second),
	} {
		addr := startServer(t, h)
		if err := c.Ping(addr); err != nil {
			t.Errorf("%s ping: %v", name, err)
		}
	}
}

func TestNameServerRegisterLookupList(t *testing.T) {
	addr := startServer(t, NewNameServer())
	c := NewClient(time.Second)

	reg := Registration{Name: "thing1/cpu", Kind: KindSensor, Addr: "10.0.0.1:9000"}
	if err := c.Register(addr, reg); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(addr, Registration{Name: "mem0", Kind: KindMemory, Addr: "10.0.0.2:9001"}); err != nil {
		t.Fatal(err)
	}

	got, err := c.Lookup(addr, "thing1/cpu")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reg) {
		t.Fatalf("Lookup = %+v, want %+v", got, reg)
	}

	if _, err := c.Lookup(addr, "nonexistent"); err == nil {
		t.Fatal("lookup of unknown name succeeded")
	}

	all, err := c.List(addr, "")
	if err != nil || len(all) != 2 {
		t.Fatalf("List all = %v, %v", all, err)
	}
	sensorsOnly, err := c.List(addr, KindSensor)
	if err != nil || len(sensorsOnly) != 1 || sensorsOnly[0].Name != "thing1/cpu" {
		t.Fatalf("List sensors = %v, %v", sensorsOnly, err)
	}

	// Re-registration overwrites.
	reg.Addr = "10.0.0.9:9999"
	if err := c.Register(addr, reg); err != nil {
		t.Fatal(err)
	}
	got, err = c.Lookup(addr, "thing1/cpu")
	if err != nil || got.Addr != "10.0.0.9:9999" {
		t.Fatalf("re-register not applied: %+v, %v", got, err)
	}
}

func TestNameServerValidation(t *testing.T) {
	addr := startServer(t, NewNameServer())
	c := NewClient(time.Second)
	if err := c.Register(addr, Registration{Name: "x"}); err == nil {
		t.Fatal("incomplete registration accepted")
	}
	ctx := context.Background()
	if _, err := c.do(ctx, addr, Request{Op: OpLookup}); err == nil {
		t.Fatal("empty lookup accepted")
	}
	if _, err := c.do(ctx, addr, Request{Op: OpStore}); err == nil {
		t.Fatal("wrong op accepted by name server")
	}
}

func TestMemoryStoreFetch(t *testing.T) {
	addr := startServer(t, NewMemory(0))
	c := NewClient(time.Second)

	pts := [][2]float64{{10, 0.9}, {20, 0.8}, {30, 0.7}}
	if err := c.Store(addr, "h/cpu/load_average", pts); err != nil {
		t.Fatal(err)
	}
	got, err := c.Fetch(addr, "h/cpu/load_average", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != pts[0] || got[2] != pts[2] {
		t.Fatalf("Fetch = %v", got)
	}

	// Range query [15, 25).
	got, err = c.Fetch(addr, "h/cpu/load_average", 15, 25, 0)
	if err != nil || len(got) != 1 || got[0][0] != 20 {
		t.Fatalf("range fetch = %v, %v", got, err)
	}

	// Max-points truncation keeps the most recent.
	got, err = c.Fetch(addr, "h/cpu/load_average", 0, 0, 2)
	if err != nil || len(got) != 2 || got[0][0] != 20 {
		t.Fatalf("max fetch = %v, %v", got, err)
	}

	if _, err := c.Fetch(addr, "nope", 0, 0, 0); err == nil {
		t.Fatal("fetch of unknown series succeeded")
	}

	names, err := c.Series(addr)
	if err != nil || len(names) != 1 || names[0] != "h/cpu/load_average" {
		t.Fatalf("Series = %v, %v", names, err)
	}
}

func TestMemoryValidation(t *testing.T) {
	addr := startServer(t, NewMemory(0))
	c := NewClient(time.Second)
	if err := c.Store(addr, "", [][2]float64{{1, 1}}); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := c.Store(addr, "k", nil); err == nil {
		t.Fatal("empty points accepted")
	}
	if err := c.Store(addr, "k", [][2]float64{{5, 1}}); err != nil {
		t.Fatal(err)
	}
	// Stores are idempotent: points at or before the stored frontier are
	// absorbed silently (a retried delivery must not error or duplicate).
	if err := c.Store(addr, "k", [][2]float64{{1, 1}}); err != nil {
		t.Fatalf("stale store errored instead of deduping: %v", err)
	}
	got, err := c.Fetch(addr, "k", 0, 0, 0)
	if err != nil || len(got) != 1 || got[0][0] != 5 {
		t.Fatalf("after stale store: %v, %v (want only {5,1})", got, err)
	}
}

func TestMemoryCapacityBound(t *testing.T) {
	m := NewMemory(5)
	addr := startServer(t, m)
	c := NewClient(time.Second)
	for i := 0; i < 12; i++ {
		if err := c.Store(addr, "k", [][2]float64{{float64(i), float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len("k") != 5 {
		t.Fatalf("Len = %d, want 5", m.Len("k"))
	}
	got, err := c.Fetch(addr, "k", 0, 0, 0)
	if err != nil || len(got) != 5 || got[0][0] != 7 {
		t.Fatalf("bounded fetch = %v, %v", got, err)
	}
}

func TestForecasterEndToEnd(t *testing.T) {
	memAddr := startServer(t, NewMemory(0))
	fcAddr := startServer(t, NewForecasterService(memAddr, time.Second))
	c := NewClient(time.Second)

	// Constant series: forecast must be the constant with ~0 MAE.
	pts := make([][2]float64, 50)
	for i := range pts {
		pts[i] = [2]float64{float64(i * 10), 0.75}
	}
	if err := c.Store(memAddr, "h/cpu/vmstat", pts); err != nil {
		t.Fatal(err)
	}
	fc, err := c.Forecast(fcAddr, "h/cpu/vmstat")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fc.Value-0.75) > 1e-9 {
		t.Fatalf("forecast = %+v, want 0.75", fc)
	}
	if fc.N != 50 {
		t.Fatalf("N = %d, want 50", fc.N)
	}

	// Incremental: add new points, re-query; engine must only consume the
	// new ones (N grows by exactly the new count).
	if err := c.Store(memAddr, "h/cpu/vmstat", [][2]float64{{500, 0.8}, {510, 0.8}}); err != nil {
		t.Fatal(err)
	}
	fc2, err := c.Forecast(fcAddr, "h/cpu/vmstat")
	if err != nil {
		t.Fatal(err)
	}
	if fc2.N != 52 {
		t.Fatalf("incremental N = %d, want 52", fc2.N)
	}

	if _, err := c.Forecast(fcAddr, "unknown"); err == nil {
		t.Fatal("forecast of unknown series succeeded")
	}
}

func TestForecasterMemoryDown(t *testing.T) {
	fcAddr := startServer(t, NewForecasterService("127.0.0.1:1", 200*time.Millisecond))
	c := NewClient(time.Second)
	if _, err := c.Forecast(fcAddr, "h/cpu/vmstat"); err == nil {
		t.Fatal("forecast with unreachable memory succeeded")
	}
}

func TestSensorDaemonSimulated(t *testing.T) {
	memAddr := startServer(t, NewMemory(0))
	nsAddr := startServer(t, NewNameServer())

	h := simos.New(simos.DefaultConfig())
	h.Spawn(simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: 3600})
	d := NewSensorDaemon("simhost", sensors.SimHost{H: h}, memAddr, sensors.HybridConfig{})
	if err := d.Register(nsAddr, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 12; i++ {
		h.RunUntil(h.Now() + 10)
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}

	c := NewClient(time.Second)
	for _, method := range []string{"load_average", "vmstat", "nws_hybrid"} {
		pts, err := c.Fetch(memAddr, SeriesKey("simhost", method), 0, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(pts) != 12 {
			t.Fatalf("%s: %d points, want 12", method, len(pts))
		}
	}

	regs, err := c.List(nsAddr, KindSensor)
	if err != nil || len(regs) != 1 || regs[0].Name != "simhost/cpu" {
		t.Fatalf("registration = %v, %v", regs, err)
	}
}

func TestSensorDaemonLiveLoop(t *testing.T) {
	memAddr := startServer(t, NewMemory(0))
	h := simos.New(simos.DefaultConfig())
	h.RunUntil(1) // fixed virtual clock; loop pushes same-timestamp points
	d := NewSensorDaemon("live", sensors.SimHost{H: h}, memAddr, sensors.HybridConfig{})
	errs := d.Start(5 * time.Millisecond)
	time.Sleep(40 * time.Millisecond)
	d.Stop()
	d.Stop() // idempotent
	select {
	case err := <-errs:
		t.Fatalf("daemon error: %v", err)
	default:
	}
	m := NewClient(time.Second)
	pts, err := m.Fetch(memAddr, SeriesKey("live", "load_average"), 0, 0, 0)
	if err != nil || len(pts) == 0 {
		t.Fatalf("live loop stored nothing: %v, %v", pts, err)
	}
	// Double Start must fail through the error channel.
	errs2 := d.Start(time.Hour)
	d2 := d.Start(time.Hour)
	if err := <-d2; err == nil {
		t.Fatal("second Start accepted")
	}
	d.Stop()
	select {
	case <-errs2:
	default:
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	addr := startServer(t, NewNameServer())
	// A malformed request closes the connection without a response; the
	// next fresh connection must still work.
	c := NewClient(time.Second)
	if _, err := call(addr, time.Second, Request{Op: "nonsense"}); err != nil {
		t.Fatalf("transport-level failure: %v", err)
	}
	if err := c.Ping(addr); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(NewNameServer(), nil)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("Listen after Close succeeded")
	}
}

// Property: request encode/decode round-trips through the wire format.
func TestRequestRoundTrip(t *testing.T) {
	memAddr := startServer(t, NewMemory(0))
	c := NewClient(time.Second)
	prop := func(key string, ts []uint16, vs []uint16) bool {
		if key == "" {
			key = "k"
		}
		n := len(ts)
		if len(vs) < n {
			n = len(vs)
		}
		if n == 0 {
			return true
		}
		if n > 64 {
			n = 64
		}
		pts := make([][2]float64, n)
		for i := 0; i < n; i++ {
			pts[i] = [2]float64{float64(i), float64(vs[i]) / 65536}
		}
		// Fresh series per call to avoid ordering conflicts.
		k := key + string(rune('a'+n%26))
		if err := c.Store(memAddr, "p/"+k, pts); err != nil {
			// Ordering conflicts with an earlier iteration using the same
			// key are acceptable; transport errors are not.
			return true
		}
		back, err := c.Fetch(memAddr, "p/"+k, 0, 0, 0)
		if err != nil {
			return false
		}
		if len(back) < n {
			return false
		}
		for i := 0; i < n; i++ {
			if back[len(back)-n+i][1] != pts[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSensorDaemonStoreAndForward(t *testing.T) {
	m := NewMemory(0)
	srv := NewServer(m, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	h := simos.New(simos.DefaultConfig())
	d := NewSensorDaemon("safhost", sensors.SimHost{H: h}, addr, sensors.HybridConfig{})
	defer d.Close()

	// Deliver a couple of measurements, then take the memory down.
	for i := 0; i < 2; i++ {
		h.RunUntil(h.Now() + 10)
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		h.RunUntil(h.Now() + 10)
		if err := d.Step(); err == nil {
			t.Fatal("step with dead memory reported success")
		}
	}
	if got := d.Backlogged(); got != 9 { // 3 epochs x 3 sensors
		t.Fatalf("backlog = %d, want 9", got)
	}

	// Bring the memory back on the same address and confirm backfill.
	srv2 := NewServer(m, nil)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	h.RunUntil(h.Now() + 10)
	if err := d.Step(); err != nil {
		t.Fatalf("step after recovery: %v", err)
	}
	if got := d.Backlogged(); got != 0 {
		t.Fatalf("backlog after recovery = %d, want 0", got)
	}
	// 2 pre-outage + 3 buffered + 1 post-recovery per sensor.
	if got := m.Len(SeriesKey("safhost", "load_average")); got != 6 {
		t.Fatalf("delivered points = %d, want 6", got)
	}
}

func TestSensorDaemonBacklogBounded(t *testing.T) {
	h := simos.New(simos.DefaultConfig())
	d := NewSensorDaemon("bh", sensors.SimHost{H: h}, "127.0.0.1:1", sensors.HybridConfig{})
	defer d.Close()
	d.backlogCap = 5
	for i := 0; i < 10; i++ {
		h.RunUntil(h.Now() + 10)
		_ = d.Step()
	}
	if got := d.Backlogged(); got != 15 { // 5 per sensor x 3 sensors
		t.Fatalf("bounded backlog = %d, want 15", got)
	}
}
