package nwsnet

import "nwscpu/internal/metrics"

// Direction label values of the nws_wire_* counters.
const (
	dirIn  = "in"
	dirOut = "out"
)

// The package's metric families, registered once in metrics.Default and
// shared by every component instance in the process. A daemon normally runs
// one role, so each series describes that single instance. When several
// instances share a process (tests, examples/gridlab), counters and
// histograms aggregate across them, but the set-style gauges
// (nws_memory_series, nws_nameserver_entries, nws_forecaster_engines)
// reflect only the most recently updated instance. Every name here is
// documented in docs/OBSERVABILITY.md — keep the two in sync.
var (
	// Protocol server (all roles).
	mServerConnsTotal = metrics.NewCounter(
		"nws_server_connections_total",
		"TCP connections accepted by the protocol server.")
	mServerConnsActive = metrics.NewGauge(
		"nws_server_active_connections",
		"Protocol connections currently open.")
	mServerRequests = metrics.NewCounterVec(
		"nws_server_requests_total",
		"Protocol requests handled, by operation.", "op")
	mServerShed = metrics.NewCounterVec(
		"nws_server_shed_total",
		"Load shed by the protocol server, by reason: connections (accepted past MaxConns), queue (no in-flight slot within the queue-wait budget), idle (connection idle past IdleTimeout), write (response write past WriteTimeout).", "reason")
	mServerInFlight = metrics.NewGauge(
		"nws_server_inflight_requests",
		"Requests currently executing in handlers (bounded by MaxInFlight when configured).")
	mServerQueueDepth = metrics.NewGauge(
		"nws_server_queue_depth",
		"Requests waiting for an in-flight slot within the queue-wait budget.")

	// Wire codec (server side of the v1/v2 protocol split; frame/byte
	// counters cover the binary codec only — JSON traffic predates framing).
	mWireConns = metrics.NewCounterVec(
		"nws_wire_connections_total",
		"Protocol connections by negotiated codec (the version-handshake outcome): json or binary.", "codec")
	mWireFrames = metrics.NewCounterVec(
		"nws_wire_frames_total",
		"Binary-codec frames moved by the server, by direction (in/out).", "dir")
	mWireBytes = metrics.NewCounterVec(
		"nws_wire_bytes_total",
		"Binary-codec payload bytes moved by the server, by direction (in/out); excludes the 4-byte frame headers.", "dir")
	mWireDecodeErrors = metrics.NewCounter(
		"nws_wire_decode_errors_total",
		"Malformed binary frames or preambles received; each closes its connection (binary framing cannot resynchronize).")
	mWirePipelineDepth = metrics.NewHistogram(
		"nws_wire_pipeline_depth",
		"Requests already decoded and waiting behind the one being dispatched on a binary connection — how deep clients actually pipeline.",
		[]float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256})

	// Protocol clients (Client and Conn outbound calls).
	mClientCalls = metrics.NewCounterVec(
		"nws_client_calls_total",
		"Outbound protocol calls, by operation.", "op")
	mClientErrors = metrics.NewCounterVec(
		"nws_client_errors_total",
		"Outbound protocol calls that failed (transport or protocol error), by operation.", "op")
	mClientLatency = metrics.NewHistogramVec(
		"nws_client_call_seconds",
		"Outbound protocol call latency in seconds, by operation.", nil, "op")
	mClientRetries = metrics.NewCounterVec(
		"nws_client_retries_total",
		"Outbound protocol call attempts retried after a transient failure, by operation.", "op")
	mBreakerState = metrics.NewGaugeVec(
		"nws_client_breaker_state",
		"Client circuit-breaker position per endpoint: 0 closed, 1 half-open, 2 open.", "addr")
	mBreakerTransitions = metrics.NewCounterVec(
		"nws_client_breaker_transitions_total",
		"Client circuit-breaker state changes, by endpoint and destination state.", "addr", "to")

	// Connection pools (one per dialed server address; addresses come from
	// local configuration, so the label set is bounded).
	mPoolIdle = metrics.NewGaugeVec(
		"nws_client_pool_idle_connections",
		"Pooled protocol connections parked for reuse, by server address.", "addr")
	mPoolActive = metrics.NewGaugeVec(
		"nws_client_pool_active_connections",
		"Pooled protocol connections currently checked out, by server address.", "addr")

	// Replica groups.
	mReplicaHealthy = metrics.NewGaugeVec(
		"nws_replica_healthy",
		"Replica health as observed by this process (1 healthy, 0 failed), by replica address.", "addr")
	mReplicaFailovers = metrics.NewCounter(
		"nws_replica_failovers_total",
		"Replicated reads served by a lower-preference replica after an earlier one failed.")
	mReplicaQuorumFailures = metrics.NewCounter(
		"nws_replica_quorum_failures_total",
		"Replicated writes that did not reach their quorum.")

	// Repair plane: anti-entropy rounds and hinted handoff (see
	// docs/ARCHITECTURE.md, "Repair plane").
	mRepairRounds = metrics.NewCounter(
		"nws_repair_rounds_total",
		"Anti-entropy repair rounds completed (digest exchange plus any pulls).")
	mRepairPointsRecovered = metrics.NewCounter(
		"nws_repair_points_recovered_total",
		"Measurement points merged behind the frontier by anti-entropy repair.")
	mHintsQueued = metrics.NewCounter(
		"nws_hints_queued_total",
		"Points parked in hinted-handoff queues for replicas that missed a quorum write.")
	mHintsReplayed = metrics.NewCounter(
		"nws_hints_replayed_total",
		"Hinted points redelivered to a recovered replica via backfill.")
	mHintsDropped = metrics.NewCounter(
		"nws_hints_dropped_total",
		"Hinted points evicted (oldest first) when a replica's hint queue hit its capacity.")

	// Memory server.
	mMemoryRequests = metrics.NewCounterVec(
		"nws_memory_requests_total",
		"Memory-server requests handled, by operation.", "op")
	mMemoryErrors = metrics.NewCounterVec(
		"nws_memory_errors_total",
		"Memory-server requests answered with an error, by operation.", "op")
	mMemoryLatency = metrics.NewHistogramVec(
		"nws_memory_request_seconds",
		"Memory-server request handling latency in seconds, by operation.", nil, "op")
	mMemoryPointsStored = metrics.NewCounter(
		"nws_memory_points_stored_total",
		"Measurement points appended to series.")
	mMemoryPointsFetched = metrics.NewCounter(
		"nws_memory_points_fetched_total",
		"Measurement points returned by fetches.")
	mMemoryPointsEvicted = metrics.NewCounter(
		"nws_memory_points_evicted_total",
		"Points dropped to enforce the per-series circular capacity.")
	mMemoryPointsDeduped = metrics.NewCounter(
		"nws_memory_points_deduped_total",
		"Stored points skipped because their timestamp was at or before the series frontier (idempotent redelivery absorption).")
	mMemoryBatchSubs = metrics.NewCounterVec(
		"nws_memory_batch_subrequests_total",
		"Sub-requests executed inside batch envelopes, by operation.", "op")
	mMemoryBatchSubErrors = metrics.NewCounterVec(
		"nws_memory_batch_suberrors_total",
		"Batch sub-requests answered with an error, by operation.", "op")
	mMemoryBatchSize = metrics.NewHistogram(
		"nws_memory_batch_size",
		"Sub-requests per batch envelope.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	mMemorySeries = metrics.NewGauge(
		"nws_memory_series",
		"Series currently stored.")
	mMemoryCompactions = metrics.NewCounter(
		"nws_memory_log_compactions_total",
		"Durable per-series logs rewritten to drop points beyond the circular capacity.")
	mMemoryLogTruncations = metrics.NewCounter(
		"nws_memory_log_truncations_total",
		"Durable logs truncated at startup to drop a corrupt or torn trailing line (crash mid-append recovery).")

	// Name server.
	mNSRegistrations = metrics.NewCounter(
		"nws_nameserver_registrations_total",
		"Registrations accepted (re-registration heartbeats included).")
	mNSLookups = metrics.NewCounterVec(
		"nws_nameserver_lookups_total",
		"Lookups served, by result (hit or miss).", "result")
	mNSExpiries = metrics.NewCounter(
		"nws_nameserver_expiries_total",
		"Registrations reaped after their TTL lapsed.")
	mNSEntries = metrics.NewGauge(
		"nws_nameserver_entries",
		"Registrations currently held (live and not yet reaped).")

	// Forecaster service.
	mFcRequests = metrics.NewCounter(
		"nws_forecaster_requests_total",
		"Forecast queries received.")
	mFcErrors = metrics.NewCounter(
		"nws_forecaster_errors_total",
		"Forecast queries answered with an error.")
	mFcLatency = metrics.NewHistogram(
		"nws_forecaster_request_seconds",
		"Forecast query latency in seconds, memory fetch included.", nil)
	mFcEngineLatency = metrics.NewHistogram(
		"nws_forecaster_engine_seconds",
		"Time spent feeding the forecasting engine and forecasting, per query.", nil)
	mFcPointsPulled = metrics.NewCounter(
		"nws_forecaster_points_pulled_total",
		"New measurement points pulled from the memory server.")
	mFcMethodSelected = metrics.NewCounterVec(
		"nws_forecaster_method_selected_total",
		"Forecasts served, by the bank method whose prediction was forwarded.", "method")
	mFcEngines = metrics.NewGauge(
		"nws_forecaster_engines",
		"Per-series forecasting engines instantiated.")

	// Forecast read plane (cache, subscriptions, per-tenant quotas).
	mFcCacheHits = metrics.NewCounter(
		"nws_forecast_cache_hits_total",
		"Forecast queries answered from the per-series result cache without a memory fetch.")
	mFcCacheMisses = metrics.NewCounter(
		"nws_forecast_cache_misses_total",
		"Forecast queries that had to fetch from memory and recompute (cold, invalidated, or refresher not running).")
	mFcCacheInvalidations = metrics.NewCounter(
		"nws_forecast_cache_invalidations_total",
		"Cached forecast results discarded because their series consumed new measurements.")
	mSubscriptionsActive = metrics.NewGauge(
		"nws_subscriptions_active",
		"Forecast subscriptions currently registered across all connections.")
	mFcPushes = metrics.NewCounter(
		"nws_forecast_pushes_total",
		"Forecast results pushed to subscribers (moved terminations included).")
	mFcPushesDropped = metrics.NewCounter(
		"nws_forecast_pushes_dropped_total",
		"Push frames dropped instead of delivered: the subscriber's connection was stalled (write in progress or write budget expired). The subscription itself stays live; the next refresh tick supersedes the dropped forecast.")
	mTenantThrottled = metrics.NewCounter(
		"nws_tenant_throttled_total",
		"Requests shed with a busy response because the connection's tenant was over its token-bucket quota.")
	mMuxRedials = metrics.NewCounter(
		"nws_client_mux_redials_total",
		"MuxConn transports transparently redialed and their unanswered in-flight window replayed after an idle server cut the connection.")

	// Sensor daemon.
	mSensorMeasurements = metrics.NewCounterVec(
		"nws_sensor_measurements_total",
		"Measurements taken, by sensor method.", "sensor")
	mSensorDeliveries = metrics.NewCounter(
		"nws_sensor_deliveries_total",
		"Store batches delivered to the memory server.")
	mSensorDeliveryFailures = metrics.NewCounter(
		"nws_sensor_delivery_failures_total",
		"Store batches that could not be delivered and were buffered.")
	mSensorBacklog = metrics.NewGaugeVec(
		"nws_sensor_backlog_points",
		"Undelivered measurements buffered for retry, by host.", "host")
	mSensorBacklogDropped = metrics.NewCounter(
		"nws_sensor_backlog_dropped_total",
		"Buffered measurements dropped (oldest first) because the backlog cap was hit.")
	mSensorOutages = metrics.NewCounter(
		"nws_sensor_outages_total",
		"Delivery outages entered (first failed store after a healthy period).")

	// Cluster (partitioned deployment: registry, routing, handoff).
	mClusterEpoch = metrics.NewGauge(
		"nws_cluster_epoch",
		"Current membership-view epoch of the cluster registry (bumps on member activation and lease expiry).")
	mClusterMembers = metrics.NewGaugeVec(
		"nws_cluster_members",
		"Cluster members currently holding a lease, by lifecycle state (joining, active).", "state")
	mClusterLeaseExpiries = metrics.NewCounter(
		"nws_cluster_lease_expiries_total",
		"Cluster members evicted from the view after their lease lapsed.")
	mClusterRedirects = metrics.NewCounter(
		"nws_cluster_redirects_total",
		"Requests answered with an ownership redirect (code moved) because the contacted node does not own the series key under the current view.")
	mClusterViewRefreshes = metrics.NewCounterVec(
		"nws_cluster_view_refreshes_total",
		"Routing-view refreshes adopted by cluster clients, by trigger: redirect (a moved response carried a newer view) or registry (a view fetch after routing failures).", "trigger")
	mClusterHandoffPoints = metrics.NewCounter(
		"nws_cluster_handoff_points_total",
		"Measurement points streamed between shard owners by rebalancing handoff (joins and takeovers).")
	mClusterHandoffBytes = metrics.NewCounter(
		"nws_cluster_handoff_bytes_total",
		"Approximate wire bytes of rebalancing handoff traffic (16 bytes per point before varint packing).")
)

// otherOp is the bounded fallback label for ops arriving off the wire that
// opLabel does not recognize.
const otherOp Op = "other"

// opCounters resolves a CounterVec's bounded per-op label set once, so the
// per-request path is a switch on the op instead of the vec's With (an
// RWMutex acquisition plus a map lookup each call).
type opCounters struct {
	ping, register, lookup, list, store, fetch, series, batch, forecast *metrics.Counter
	join, lease, view, subscribe, unsubscribe, hello, other             *metrics.Counter
	digest, backfill                                                    *metrics.Counter
}

func perOpCounters(v *metrics.CounterVec) *opCounters {
	return &opCounters{
		ping:        v.With(string(OpPing)),
		register:    v.With(string(OpRegister)),
		lookup:      v.With(string(OpLookup)),
		list:        v.With(string(OpList)),
		store:       v.With(string(OpStore)),
		fetch:       v.With(string(OpFetch)),
		series:      v.With(string(OpSeries)),
		batch:       v.With(string(OpBatch)),
		forecast:    v.With(string(OpForecast)),
		join:        v.With(string(OpJoin)),
		lease:       v.With(string(OpLease)),
		view:        v.With(string(OpView)),
		subscribe:   v.With(string(OpSubscribe)),
		unsubscribe: v.With(string(OpUnsubscribe)),
		hello:       v.With(string(OpHello)),
		digest:      v.With(string(OpDigest)),
		backfill:    v.With(string(OpBackfill)),
		other:       v.With(string(otherOp)),
	}
}

// get collapses unknown ops onto the other entry exactly as opLabel would.
func (c *opCounters) get(op Op) *metrics.Counter {
	switch op {
	case OpStore:
		return c.store
	case OpFetch:
		return c.fetch
	case OpBatch:
		return c.batch
	case OpForecast:
		return c.forecast
	case OpPing:
		return c.ping
	case OpRegister:
		return c.register
	case OpLookup:
		return c.lookup
	case OpList:
		return c.list
	case OpSeries:
		return c.series
	case OpJoin:
		return c.join
	case OpLease:
		return c.lease
	case OpView:
		return c.view
	case OpSubscribe:
		return c.subscribe
	case OpUnsubscribe:
		return c.unsubscribe
	case OpHello:
		return c.hello
	case OpDigest:
		return c.digest
	case OpBackfill:
		return c.backfill
	}
	return c.other
}

// opHistograms is the same resolution for a HistogramVec.
type opHistograms struct {
	ping, register, lookup, list, store, fetch, series, batch, forecast *metrics.Histogram
	join, lease, view, subscribe, unsubscribe, hello, other             *metrics.Histogram
	digest, backfill                                                    *metrics.Histogram
}

func perOpHistograms(v *metrics.HistogramVec) *opHistograms {
	return &opHistograms{
		ping:        v.With(string(OpPing)),
		register:    v.With(string(OpRegister)),
		lookup:      v.With(string(OpLookup)),
		list:        v.With(string(OpList)),
		store:       v.With(string(OpStore)),
		fetch:       v.With(string(OpFetch)),
		series:      v.With(string(OpSeries)),
		batch:       v.With(string(OpBatch)),
		forecast:    v.With(string(OpForecast)),
		join:        v.With(string(OpJoin)),
		lease:       v.With(string(OpLease)),
		view:        v.With(string(OpView)),
		subscribe:   v.With(string(OpSubscribe)),
		unsubscribe: v.With(string(OpUnsubscribe)),
		hello:       v.With(string(OpHello)),
		digest:      v.With(string(OpDigest)),
		backfill:    v.With(string(OpBackfill)),
		other:       v.With(string(otherOp)),
	}
}

func (h *opHistograms) get(op Op) *metrics.Histogram {
	switch op {
	case OpStore:
		return h.store
	case OpFetch:
		return h.fetch
	case OpBatch:
		return h.batch
	case OpForecast:
		return h.forecast
	case OpPing:
		return h.ping
	case OpRegister:
		return h.register
	case OpLookup:
		return h.lookup
	case OpList:
		return h.list
	case OpSeries:
		return h.series
	case OpJoin:
		return h.join
	case OpLease:
		return h.lease
	case OpView:
		return h.view
	case OpSubscribe:
		return h.subscribe
	case OpUnsubscribe:
		return h.unsubscribe
	case OpHello:
		return h.hello
	case OpDigest:
		return h.digest
	case OpBackfill:
		return h.backfill
	}
	return h.other
}

// Hot-path metric handles. The serve loops, the memory handler, and the
// client exchange paths touch these families on every request; the bounded
// label sets are resolved once here, before any traffic (safe without locks).
var (
	mWireFramesIn  = mWireFrames.With(dirIn)
	mWireFramesOut = mWireFrames.With(dirOut)
	mWireBytesIn   = mWireBytes.With(dirIn)
	mWireBytesOut  = mWireBytes.With(dirOut)

	mServerRequestsByOp = perOpCounters(mServerRequests)
	mClientCallsByOp    = perOpCounters(mClientCalls)
	mClientErrorsByOp   = perOpCounters(mClientErrors)
	mClientLatencyByOp  = perOpHistograms(mClientLatency)
	mMemoryRequestsByOp = perOpCounters(mMemoryRequests)
	mMemoryErrorsByOp   = perOpCounters(mMemoryErrors)
	mMemoryLatencyByOp  = perOpHistograms(mMemoryLatency)

	mClusterRefreshRedirect = mClusterViewRefreshes.With("redirect")
	mClusterRefreshRegistry = mClusterViewRefreshes.With("registry")
)
