package nwsnet

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestMemoryConcurrentStoreFetch is the regression test for the fetch race:
// the seed handleFetch read the series tail outside the memory lock, so a
// concurrent store's append could move the backing array under the reader.
// This fails under -race on the seed code and must stay silent now that
// fetches copy out under the shard read lock.
func TestMemoryConcurrentStoreFetch(t *testing.T) {
	m := NewMemory(64) // small capacity so eviction churns the buffer
	const (
		writers = 2
		readers = 6
		rounds  = 5000
	)
	var wg sync.WaitGroup
	// All goroutines hammer ONE series, the shape that reliably trips the
	// seed race within a few thousand rounds.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp := m.Handle(Request{Op: OpStore, Series: "race",
					Points: [][2]float64{{float64(writers*i + w), float64(i)}}})
				if resp.Error != "" {
					t.Errorf("store: %s", resp.Error)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// To == 0 is the open-ended range that took the racy
				// tail-read path in the seed code.
				m.Handle(Request{Op: OpFetch, Series: "race"})
				m.Handle(Request{Op: OpFetch, Series: "race", From: float64(i / 2), Max: 10})
			}
		}()
	}
	wg.Wait()
}

// TestMemoryIdempotentRedelivery is the regression test for non-idempotent
// stores: redelivering a batch whose prefix was already applied (the
// timed-out-but-applied case every at-least-once retry produces) must leave
// exactly one copy of each point. The seed code rejected the whole batch
// with "out-of-order append", wedging the writer's backlog forever.
func TestMemoryIdempotentRedelivery(t *testing.T) {
	m := NewMemory(0)
	deduped0 := mMemoryPointsDeduped.Value()

	first := [][2]float64{{1, 0.1}, {2, 0.2}}
	if resp := m.Handle(Request{Op: OpStore, Series: "k", Points: first}); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	// The retry redelivers the applied points plus one new one.
	redelivered := [][2]float64{{1, 0.1}, {2, 0.2}, {3, 0.3}}
	if resp := m.Handle(Request{Op: OpStore, Series: "k", Points: redelivered}); resp.Error != "" {
		t.Fatalf("redelivery rejected: %s", resp.Error)
	}
	resp := m.Handle(Request{Op: OpFetch, Series: "k"})
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	want := [][2]float64{{1, 0.1}, {2, 0.2}, {3, 0.3}}
	if len(resp.Points) != len(want) {
		t.Fatalf("series holds %v, want %v", resp.Points, want)
	}
	for i, tv := range want {
		if resp.Points[i] != tv {
			t.Fatalf("point %d = %v, want %v", i, resp.Points[i], tv)
		}
	}
	if got := mMemoryPointsDeduped.Value() - deduped0; got != 2 {
		t.Fatalf("nws_memory_points_deduped_total grew by %d, want 2", got)
	}
}

// TestMemoryFetchRangeSemantics pins the documented range contract:
// [from, to) with to == 0 open-ended, Max keeping the most recent, and an
// inverted range answering empty instead of panicking (the seed code sliced
// points[lo:hi] with lo > hi — a remotely triggerable crash).
func TestMemoryFetchRangeSemantics(t *testing.T) {
	m := NewMemory(0)
	for i := 1; i <= 5; i++ {
		if resp := m.Handle(Request{Op: OpStore, Series: "k",
			Points: [][2]float64{{float64(i), float64(i)}}}); resp.Error != "" {
			t.Fatal(resp.Error)
		}
	}
	cases := []struct {
		name     string
		from, to float64
		max      int
		want     []float64 // expected timestamps
	}{
		{"open-ended", 0, 0, 0, []float64{1, 2, 3, 4, 5}},
		{"half-open upper", 2, 4, 0, []float64{2, 3}},
		{"from only", 3, 0, 0, []float64{3, 4, 5}},
		{"max keeps latest", 0, 0, 2, []float64{4, 5}},
		{"max within range", 1, 5, 2, []float64{3, 4}},
		{"inverted range", 5, 2, 0, nil},
		{"empty range", 2.5, 2.5, 0, nil},
		{"past the end", 99, 0, 0, nil},
	}
	for _, tc := range cases {
		resp := m.Handle(Request{Op: OpFetch, Series: "k", From: tc.from, To: tc.to, Max: tc.max})
		if resp.Error != "" {
			t.Fatalf("%s: %s", tc.name, resp.Error)
		}
		if len(resp.Points) != len(tc.want) {
			t.Fatalf("%s: got %v, want timestamps %v", tc.name, resp.Points, tc.want)
		}
		for i, ts := range tc.want {
			if resp.Points[i][0] != ts {
				t.Fatalf("%s: point %d = %v, want t=%g", tc.name, i, resp.Points[i], ts)
			}
		}
	}
}

// TestMemoryBatchEnvelope exercises OpBatch directly against the handler:
// mixed sub-ops, per-sub errors with per-sub OK flags, request-order
// responses, and rejection of nesting and empty envelopes.
func TestMemoryBatchEnvelope(t *testing.T) {
	m := NewMemory(0)
	resp := m.Handle(Request{Op: OpBatch, Batch: []Request{
		{Op: OpStore, Series: "a", Points: [][2]float64{{1, 0.5}}},
		{Op: OpStore, Series: "b", Points: [][2]float64{{1, 0.6}, {2, 0.7}}},
		{Op: OpStore, Series: ""}, // invalid: no key
		{Op: OpFetch, Series: "missing"},
	}})
	if resp.Error != "" {
		t.Fatalf("envelope error: %s", resp.Error)
	}
	if len(resp.Batch) != 4 {
		t.Fatalf("got %d sub-responses, want 4", len(resp.Batch))
	}
	if resp.Batch[0].Error != "" || !resp.Batch[0].OK {
		t.Fatalf("sub 0 = %+v, want ok", resp.Batch[0])
	}
	if resp.Batch[1].Error != "" || !resp.Batch[1].OK {
		t.Fatalf("sub 1 = %+v, want ok", resp.Batch[1])
	}
	if resp.Batch[2].Error == "" || resp.Batch[2].OK {
		t.Fatalf("sub 2 = %+v, want per-sub error", resp.Batch[2])
	}
	if resp.Batch[3].Error == "" {
		t.Fatalf("sub 3 = %+v, want unknown-series error", resp.Batch[3])
	}
	if m.Len("a") != 1 || m.Len("b") != 2 {
		t.Fatalf("stored lens a=%d b=%d, want 1 and 2", m.Len("a"), m.Len("b"))
	}

	// A fetch sub must return its series' points in order.
	resp = m.Handle(Request{Op: OpBatch, Batch: []Request{
		{Op: OpFetch, Series: "b"},
		{Op: OpFetch, Series: "a"},
	}})
	if len(resp.Batch) != 2 || len(resp.Batch[0].Points) != 2 || len(resp.Batch[1].Points) != 1 {
		t.Fatalf("batch fetch = %+v", resp.Batch)
	}

	if resp := m.Handle(Request{Op: OpBatch}); resp.Error == "" {
		t.Fatal("empty batch accepted")
	}
	resp = m.Handle(Request{Op: OpBatch, Batch: []Request{
		{Op: OpBatch, Batch: []Request{{Op: OpPing}}},
	}})
	if resp.Error != "" || len(resp.Batch) != 1 || resp.Batch[0].Error == "" {
		t.Fatalf("nested batch = %+v, want per-sub rejection", resp)
	}
}

// TestMemoryBatchConcurrentExecution pushes a batch well past the inline
// limit so the worker pool runs it, across enough distinct series to hit
// many shards at once. Run with -race this also guards the pool itself.
func TestMemoryBatchConcurrentExecution(t *testing.T) {
	m := NewMemory(0)
	const n = 100
	subs := make([]Request, n)
	for i := range subs {
		subs[i] = Request{Op: OpStore, Series: fmt.Sprintf("wide/%d", i),
			Points: [][2]float64{{1, float64(i)}}}
	}
	resp := m.Handle(Request{Op: OpBatch, Batch: subs})
	if resp.Error != "" || len(resp.Batch) != n {
		t.Fatalf("wide batch = %+v", resp.Error)
	}
	for i, r := range resp.Batch {
		if r.Error != "" {
			t.Fatalf("sub %d: %s", i, r.Error)
		}
	}
	for i := 0; i < n; i++ {
		if m.Len(fmt.Sprintf("wide/%d", i)) != 1 {
			t.Fatalf("series %d not stored", i)
		}
	}
}

// TestClientBatchRoundTrip drives StoreBatch and FetchBatch through a real
// server: per-sub results must line up with the inputs on both paths.
func TestClientBatchRoundTrip(t *testing.T) {
	m := NewMemory(0)
	addr := startServer(t, m)
	c := NewClient(time.Second)
	defer c.Close()

	errs, err := c.StoreBatch(addr, []BatchStore{
		{Series: "x", Points: [][2]float64{{1, 10}, {2, 20}}},
		{Series: "", Points: [][2]float64{{1, 1}}}, // invalid
		{Series: "y", Points: [][2]float64{{5, 50}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 3 || errs[0] != nil || errs[1] == nil || errs[2] != nil {
		t.Fatalf("per-sub errors = %v", errs)
	}

	results, err := c.FetchBatch(addr, []BatchFetch{
		{Series: "x"},
		{Series: "nope"},
		{Series: "x", From: 2},
		{Series: "y", Max: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || len(results[0].Points) != 2 {
		t.Fatalf("result 0 = %+v", results[0])
	}
	if results[1].Err == nil {
		t.Fatal("fetch of unknown series succeeded in batch")
	}
	if results[2].Err != nil || len(results[2].Points) != 1 || results[2].Points[0][0] != 2 {
		t.Fatalf("result 2 = %+v", results[2])
	}
	if results[3].Err != nil || len(results[3].Points) != 1 || results[3].Points[0][0] != 5 {
		t.Fatalf("result 3 = %+v", results[3])
	}

	// Empty inputs are a no-op, not a wire call.
	if errs, err := c.StoreBatch(addr, nil); errs != nil || err != nil {
		t.Fatalf("empty StoreBatch = %v, %v", errs, err)
	}
	if res, err := c.FetchBatch(addr, nil); res != nil || err != nil {
		t.Fatalf("empty FetchBatch = %v, %v", res, err)
	}
}

// TestPersistentMemoryBatchSurvivesRestart stores through a batch envelope
// and verifies the sub-stores were logged durably.
func TestPersistentMemoryBatchSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	pm, err := NewPersistentMemory(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	resp := pm.Handle(Request{Op: OpBatch, Batch: []Request{
		{Op: OpStore, Series: "p/one", Points: [][2]float64{{1, 0.1}, {2, 0.2}}},
		{Op: OpStore, Series: "p/two", Points: [][2]float64{{1, 0.9}}},
		{Op: OpFetch, Series: "p/one"}, // reads must not end up in the log
	}})
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	for i := 0; i < 2; i++ {
		if resp.Batch[i].Error != "" {
			t.Fatalf("sub %d: %s", i, resp.Batch[i].Error)
		}
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}

	pm2, err := NewPersistentMemory(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer pm2.Close()
	if pm2.Len("p/one") != 2 || pm2.Len("p/two") != 1 {
		t.Fatalf("after restart: one=%d two=%d, want 2 and 1", pm2.Len("p/one"), pm2.Len("p/two"))
	}
}

// TestForecasterWarm preloads history through the batched catch-up and
// verifies the first query after warming needs no further points.
func TestForecasterWarm(t *testing.T) {
	m := NewMemory(0)
	memAddr := startServer(t, m)
	for i := 1; i <= 30; i++ {
		if resp := m.Handle(Request{Op: OpStore, Series: "w/cpu/h",
			Points: [][2]float64{{float64(i), 0.5}}}); resp.Error != "" {
			t.Fatal(resp.Error)
		}
	}
	f := NewForecasterService(memAddr, time.Second)
	n, err := f.Warm(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("Warm consumed %d points, want 30", n)
	}
	// Warming again is a no-op: everything is already behind the frontier.
	n, err = f.Warm(context.Background(), []string{"w/cpu/h"})
	if err != nil || n != 0 {
		t.Fatalf("second Warm = %d, %v, want 0 points", n, err)
	}
	resp := f.Handle(Request{Op: OpForecast, Series: "w/cpu/h"})
	if resp.Error != "" || resp.Forecast == nil || resp.Forecast.N != 30 {
		t.Fatalf("forecast after warm = %+v", resp)
	}
}
