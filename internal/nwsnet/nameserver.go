package nwsnet

import (
	"sort"
	"sync"
	"time"
)

// NameServer is the NWS directory: components register (name, kind, addr)
// triples; clients look them up. Registrations are overwritten on re-register
// so restarting components self-heal; with a TTL configured, entries that
// have not re-registered recently expire from lookups and listings (periodic
// re-registration doubles as the heartbeat, as in the real NWS).
type NameServer struct {
	ttl time.Duration    // 0 = entries never expire
	now func() time.Time // injected for tests

	mu      sync.Mutex
	entries map[string]nsEntry
}

type nsEntry struct {
	reg  Registration
	seen time.Time
}

// NewNameServer returns a registry whose entries never expire.
func NewNameServer() *NameServer {
	return NewNameServerTTL(0)
}

// NewNameServerTTL returns a registry whose entries expire ttl after their
// most recent registration (0 disables expiry).
func NewNameServerTTL(ttl time.Duration) *NameServer {
	return &NameServer{ttl: ttl, now: time.Now, entries: make(map[string]nsEntry)}
}

// alive reports whether e is still fresh.
func (ns *NameServer) alive(e nsEntry) bool {
	return ns.ttl <= 0 || ns.now().Sub(e.seen) < ns.ttl
}

// reapLocked deletes every expired entry, counting each reap once. Expiry
// is lazy — entries die when a request next observes them — so the expiries
// metric advances on the requests that notice, not on a background timer.
func (ns *NameServer) reapLocked() {
	if ns.ttl <= 0 {
		return
	}
	for name, e := range ns.entries {
		if !ns.alive(e) {
			delete(ns.entries, name)
			mNSExpiries.Inc()
		}
	}
	mNSEntries.Set(float64(len(ns.entries)))
}

// Handle implements Handler.
func (ns *NameServer) Handle(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{}
	case OpRegister:
		if req.Reg.Name == "" || req.Reg.Kind == "" || len(req.Reg.Endpoints()) == 0 {
			return errResp("register requires name, kind and addr (or addrs)")
		}
		ns.mu.Lock()
		ns.entries[req.Reg.Name] = nsEntry{reg: req.Reg, seen: ns.now()}
		mNSRegistrations.Inc()
		mNSEntries.Set(float64(len(ns.entries)))
		ns.mu.Unlock()
		return Response{}
	case OpLookup:
		if req.Reg.Name == "" {
			return errResp("lookup requires a name")
		}
		ns.mu.Lock()
		ns.reapLocked()
		e, ok := ns.entries[req.Reg.Name]
		ns.mu.Unlock()
		if !ok {
			mNSLookups.With("miss").Inc()
			return errResp("unknown component %q", req.Reg.Name)
		}
		mNSLookups.With("hit").Inc()
		return Response{Entries: []Registration{e.reg}}
	case OpList:
		ns.mu.Lock()
		ns.reapLocked()
		out := make([]Registration, 0, len(ns.entries))
		for _, e := range ns.entries {
			if req.Reg.Kind == "" || e.reg.Kind == req.Reg.Kind {
				out = append(out, e.reg)
			}
		}
		ns.mu.Unlock()
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		return Response{Entries: out}
	default:
		return errResp("name server: unsupported op %q", req.Op)
	}
}

var _ Handler = (*NameServer)(nil)
