package nwsnet

import (
	"sort"
	"sync"
	"time"

	"nwscpu/internal/nwsnet/cluster"
)

// NameServer is the NWS directory and cluster registry: components register
// (name, kind, addr) triples and clients look them up, while shard servers
// of the partitioned deployment hold epoch-numbered membership leases (see
// docs/ARCHITECTURE.md, "The partitioned cluster"). Registrations are
// overwritten on re-register so restarting components self-heal; with a TTL
// configured, entries that have not re-registered recently expire from
// lookups and listings (periodic re-registration doubles as the heartbeat,
// as in the real NWS), and cluster leases expire the same way — except a
// lease lapsing also bumps the view epoch, because key ownership moved.
//
// Expiry is lazy and amortized: a lookup checks only the entry it hit, and
// a full sweep of the map runs at most once per TTL (triggered by whichever
// request crosses the boundary), so per-request cost stays O(1) regardless
// of directory size.
type NameServer struct {
	ttl time.Duration    // 0 = entries never expire
	now func() time.Time // injected for tests

	mu        sync.Mutex
	entries   map[string]nsEntry
	lastSweep time.Time
	sweeps    int // full sweeps performed (test visibility)

	// Cluster registry state. members holds every live lease; epoch
	// advances exactly when key ownership changes (a member activates or
	// an active member's lease expires).
	ccfg    cluster.Config
	epoch   uint64
	members map[string]*memberEntry
}

type nsEntry struct {
	reg  Registration
	seen time.Time
}

type memberEntry struct {
	m    cluster.Member
	seen time.Time
}

// NewNameServer returns a registry whose entries never expire.
func NewNameServer() *NameServer {
	return NewNameServerTTL(0)
}

// NewNameServerTTL returns a registry whose entries expire ttl after their
// most recent registration (0 disables expiry). Cluster membership uses the
// same TTL for leases and the default ring geometry; use
// NewNameServerCluster to set the geometry explicitly.
func NewNameServerTTL(ttl time.Duration) *NameServer {
	return NewNameServerCluster(ttl, cluster.Config{})
}

// NewNameServerCluster returns a registry serving cluster membership with
// the given ring geometry (zero fields select the defaults: replication 2,
// 64 vnodes). ttl bounds both directory entries and membership leases.
func NewNameServerCluster(ttl time.Duration, cfg cluster.Config) *NameServer {
	ns := &NameServer{
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[string]nsEntry),
		ccfg:    cfg.Normalize(),
		members: make(map[string]*memberEntry),
	}
	ns.lastSweep = ns.now()
	return ns
}

// alive reports whether e is still fresh.
func (ns *NameServer) alive(seen time.Time) bool {
	return ns.ttl <= 0 || ns.now().Sub(seen) < ns.ttl
}

// reapLocked deletes every expired entry and lease, counting each reap
// once. An expired active member bumps the epoch: its key ranges belong to
// the surviving owners now.
func (ns *NameServer) reapLocked() {
	if ns.ttl <= 0 {
		return
	}
	for name, e := range ns.entries {
		if !ns.alive(e.seen) {
			delete(ns.entries, name)
			mNSExpiries.Inc()
		}
	}
	mNSEntries.Set(float64(len(ns.entries)))
	ns.reapMembersLocked()
}

// maybeSweepLocked runs the full-map reap at most once per TTL — the
// amortization that keeps Lookup and Register O(1) on a directory of
// thousands while still guaranteeing expired state is eventually dropped
// (and the nws_nameserver_entries gauge corrected) without any request
// observing it.
func (ns *NameServer) maybeSweepLocked() {
	if ns.ttl <= 0 {
		return
	}
	if now := ns.now(); now.Sub(ns.lastSweep) >= ns.ttl {
		ns.lastSweep = now
		ns.sweeps++
		ns.reapLocked()
	}
}

// Sweeps reports how many full expiry sweeps have run (test visibility for
// the amortization guarantee).
func (ns *NameServer) Sweeps() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.sweeps
}

// reapMembersLocked expires lapsed leases. Only an active member's expiry
// bumps the epoch — a joining member was never in the routing ring, so its
// disappearance moves no keys.
func (ns *NameServer) reapMembersLocked() {
	if ns.ttl <= 0 {
		return
	}
	bumped := false
	for id, me := range ns.members {
		if ns.alive(me.seen) {
			continue
		}
		if me.m.State == cluster.StateActive {
			bumped = true
		}
		delete(ns.members, id)
		mClusterLeaseExpiries.Inc()
	}
	if bumped {
		ns.epoch++
		mClusterEpoch.Set(float64(ns.epoch))
	}
	ns.setMemberGaugesLocked()
}

func (ns *NameServer) setMemberGaugesLocked() {
	var joining, active float64
	for _, me := range ns.members {
		if me.m.State == cluster.StateActive {
			active++
		} else {
			joining++
		}
	}
	mClusterMembers.With(string(cluster.StateJoining)).Set(joining)
	mClusterMembers.With(string(cluster.StateActive)).Set(active)
}

// viewLocked snapshots the current membership view (members sorted by ID
// so the encoding is deterministic).
func (ns *NameServer) viewLocked() *cluster.View {
	v := &cluster.View{Epoch: ns.epoch, Config: ns.ccfg}
	v.Members = make([]cluster.Member, 0, len(ns.members))
	for _, me := range ns.members {
		v.Members = append(v.Members, me.m)
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].ID < v.Members[j].ID })
	return v
}

// View returns the registry's current membership view.
func (ns *NameServer) View() cluster.View {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.reapMembersLocked()
	return *ns.viewLocked()
}

// Handle implements Handler.
func (ns *NameServer) Handle(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{}
	case OpRegister:
		if req.Reg.Name == "" || req.Reg.Kind == "" || len(req.Reg.Endpoints()) == 0 {
			return errResp("register requires name, kind and addr (or addrs)")
		}
		ns.mu.Lock()
		ns.maybeSweepLocked()
		ns.entries[req.Reg.Name] = nsEntry{reg: req.Reg, seen: ns.now()}
		mNSRegistrations.Inc()
		mNSEntries.Set(float64(len(ns.entries)))
		ns.mu.Unlock()
		return Response{}
	case OpLookup:
		if req.Reg.Name == "" {
			return errResp("lookup requires a name")
		}
		ns.mu.Lock()
		ns.maybeSweepLocked()
		e, ok := ns.entries[req.Reg.Name]
		if ok && !ns.alive(e.seen) {
			// Reap exactly the entry this lookup observed expired; the
			// rest of the map is untouched (the amortized sweep covers it).
			delete(ns.entries, req.Reg.Name)
			mNSExpiries.Inc()
			mNSEntries.Set(float64(len(ns.entries)))
			ok = false
		}
		ns.mu.Unlock()
		if !ok {
			mNSLookups.With("miss").Inc()
			return errResp("unknown component %q", req.Reg.Name)
		}
		mNSLookups.With("hit").Inc()
		return Response{Entries: []Registration{e.reg}}
	case OpList:
		ns.mu.Lock()
		ns.maybeSweepLocked()
		out := make([]Registration, 0, len(ns.entries))
		for _, e := range ns.entries {
			// Filter expired entries the sweep has not deleted yet: a
			// listing never reports a dead component, whatever the sweep
			// schedule.
			if !ns.alive(e.seen) {
				continue
			}
			if req.Reg.Kind == "" || e.reg.Kind == req.Reg.Kind {
				out = append(out, e.reg)
			}
		}
		ns.mu.Unlock()
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		return Response{Entries: out}
	case OpJoin:
		return ns.handleJoin(req)
	case OpLease:
		return ns.handleLease(req)
	case OpView:
		return ns.handleView(req)
	default:
		return errResp("name server: unsupported op %q", req.Op)
	}
}

// handleJoin enters (or re-announces) a member. A join in the joining
// state takes a lease without moving any keys; re-joining with the active
// state is the activation step of the two-phase join and bumps the epoch,
// atomically moving the member's key ranges to it. Joins are idempotent:
// re-announcing an unchanged member only refreshes its lease.
func (ns *NameServer) handleJoin(req Request) Response {
	m := req.Member
	if m == nil || m.ID == "" || m.Kind == "" || len(m.Endpoints()) == 0 {
		return errResp("join requires member id, kind and addr (or addrs)")
	}
	state := m.State
	if state == "" {
		state = cluster.StateJoining
	}
	if state != cluster.StateJoining && state != cluster.StateActive {
		return errResp("join: unknown member state %q", state)
	}
	ns.mu.Lock()
	ns.reapMembersLocked()
	prev, existed := ns.members[m.ID]
	entry := &memberEntry{m: *m, seen: ns.now()}
	entry.m.State = state
	ns.members[m.ID] = entry
	// Ownership changes exactly when the active member set changes: a
	// member becoming active (fresh activation), or an already-active
	// member changing its endpoints.
	if state == cluster.StateActive &&
		(!existed || prev.m.State != cluster.StateActive || !sameEndpoints(prev.m, entry.m)) {
		ns.epoch++
		mClusterEpoch.Set(float64(ns.epoch))
	}
	ns.setMemberGaugesLocked()
	v := ns.viewLocked()
	ns.mu.Unlock()
	return Response{View: v}
}

func sameEndpoints(a, b cluster.Member) bool {
	ae, be := a.Endpoints(), b.Endpoints()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// handleLease renews a member's lease. An unknown member (expired, or the
// registry restarted) gets a terminal error so the agent re-joins from
// scratch. The response carries the view only when the caller's epoch is
// stale, so steady-state heartbeats stay small.
func (ns *NameServer) handleLease(req Request) Response {
	if req.Member == nil || req.Member.ID == "" {
		return errResp("lease requires a member id")
	}
	ns.mu.Lock()
	ns.reapMembersLocked()
	me, ok := ns.members[req.Member.ID]
	if !ok {
		ns.mu.Unlock()
		return errResp("lease: unknown member %q (lease expired or registry restarted; re-join)", req.Member.ID)
	}
	me.seen = ns.now()
	var v *cluster.View
	if req.Epoch != ns.epoch {
		v = ns.viewLocked()
	}
	ns.mu.Unlock()
	return Response{View: v}
}

// handleView serves the membership view. A caller already holding the
// current epoch gets a bare OK ("not modified"); epoch 0 always fetches.
func (ns *NameServer) handleView(req Request) Response {
	ns.mu.Lock()
	ns.reapMembersLocked()
	if req.Epoch != 0 && req.Epoch == ns.epoch {
		ns.mu.Unlock()
		return Response{}
	}
	v := ns.viewLocked()
	ns.mu.Unlock()
	return Response{View: v}
}

var _ Handler = (*NameServer)(nil)
