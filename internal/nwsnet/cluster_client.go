package nwsnet

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"nwscpu/internal/nwsnet/cluster"
	"nwscpu/internal/resilience"
)

// clusterRouteAttempts bounds how many times one logical operation may
// chase ownership redirects (each attempt re-resolves owners under the
// newest adopted view). Two redirects in a row already implies the view
// changed twice mid-operation; a third strike reports the failure rather
// than looping on a flapping registry.
const clusterRouteAttempts = 3

// ClusterClient routes series operations across a partitioned cluster: it
// caches the membership view, resolves each key's owners on the consistent
// ring, writes to all owners (succeeding on a majority quorum), and reads
// with failover across them.
//
// The view is refreshed by redirect, not by polling: a node answering
// CodeMoved embeds its current view, which the client adopts before
// re-routing (nws_cluster_view_refreshes_total{trigger="redirect"}). The
// registry is consulted only to bootstrap the first view and as a fallback
// when an operation exhausts its owners
// (nws_cluster_view_refreshes_total{trigger="registry"}).
//
// A ClusterClient satisfies the same backend contract as a ReplicaGroup
// (StoreBatch / Fetch / FetchBatch / Series / Health), so the sensor daemon
// and forecaster take the partitioned path through the constructors that
// accept a registry address without any change to their delivery logic.
type ClusterClient struct {
	client *Client
	nsAddr string

	mu   sync.RWMutex
	view *cluster.View
}

// NewClusterClient routes through client (nil selects a default client)
// against the cluster whose registry is at nsAddr. The first operation
// bootstraps the view from the registry.
func NewClusterClient(client *Client, nsAddr string) *ClusterClient {
	if client == nil {
		client = NewClient(0)
	}
	return &ClusterClient{client: client, nsAddr: nsAddr}
}

// Client returns the protocol client the router calls through.
func (c *ClusterClient) Client() *Client { return c.client }

// View returns the routing table's current view (nil before bootstrap).
func (c *ClusterClient) View() *cluster.View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.view
}

// AdoptView installs a view into the routing table if it is newer than the
// one held.
func (c *ClusterClient) AdoptView(v *cluster.View) {
	if v == nil {
		return
	}
	cp := v.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view != nil && cp.Epoch <= c.view.Epoch {
		return
	}
	c.view = &cp
}

// adoptRedirect folds a redirect's embedded view into the routing table.
// A redirect without a view (a node that lost its own view) falls back to
// the registry.
func (c *ClusterClient) adoptRedirect(ctx context.Context, me *MovedError) {
	if me.View != nil {
		mClusterRefreshRedirect.Inc()
		c.AdoptView(me.View)
		return
	}
	c.refresh(ctx) //nolint:errcheck // best effort; the retry loop re-resolves
}

// refresh fetches the registry's view unconditionally and adopts it.
func (c *ClusterClient) refresh(ctx context.Context) error {
	v, err := c.client.FetchViewCtx(ctx, c.nsAddr, 0)
	if err != nil {
		return err
	}
	if v == nil {
		return fmt.Errorf("nwsnet: registry %s returned no view", c.nsAddr)
	}
	mClusterRefreshRegistry.Inc()
	c.AdoptView(v)
	return nil
}

// Refresh re-reads the membership view from the registry.
func (c *ClusterClient) Refresh(ctx context.Context) error { return c.refresh(ctx) }

// ensureView returns the current view, bootstrapping from the registry on
// first use.
func (c *ClusterClient) ensureView(ctx context.Context) (*cluster.View, error) {
	if v := c.View(); v != nil {
		return v, nil
	}
	if err := c.refresh(ctx); err != nil {
		return nil, err
	}
	if v := c.View(); v != nil {
		return v, nil
	}
	return nil, fmt.Errorf("nwsnet: no cluster view from registry %s", c.nsAddr)
}

// owners resolves key's owning members of a kind under the current view.
func (c *ClusterClient) owners(ctx context.Context, kind Kind, key string) ([]cluster.Member, *cluster.View, error) {
	v, err := c.ensureView(ctx)
	if err != nil {
		return nil, nil, err
	}
	owners := v.Owners(string(kind), key)
	if len(owners) == 0 {
		return nil, v, fmt.Errorf("nwsnet: no active %s member owns %q (epoch %d)", kind, key, v.Epoch)
	}
	return owners, v, nil
}

// Store writes a series' points to every owner, succeeding once a majority
// quorum of them acknowledges — a batch of one; see StoreBatch.
func (c *ClusterClient) Store(ctx context.Context, key string, points [][2]float64) error {
	errs, err := c.StoreBatch(ctx, []BatchStore{{Series: key, Points: points}})
	if len(errs) == 1 && errs[0] != nil {
		return errs[0]
	}
	return err
}

// StoreBatch routes each sub-store to its key's owners and fans it out to
// all of them, succeeding per sub once a majority of that key's owners
// acknowledges. Sub-stores sharing an owner travel in one batch envelope
// per owner per attempt. An ownership redirect adopts the embedded view and
// re-routes the redirected subs; after the routing attempts are exhausted
// the view is refreshed from the registry for one final try. The returned
// slice has one entry per input — nil when that sub met its quorum.
func (c *ClusterClient) StoreBatch(ctx context.Context, stores []BatchStore) ([]error, error) {
	if len(stores) == 0 {
		return nil, nil
	}
	out := make([]error, len(stores))
	done := make([]bool, len(stores))
	remaining := len(stores)
	for attempt := 0; attempt < clusterRouteAttempts && remaining > 0; attempt++ {
		if attempt == clusterRouteAttempts-1 {
			// Last try: trust the registry over whatever view redirects left.
			if err := c.refresh(ctx); err != nil && c.View() == nil {
				return out, err
			}
		}
		// Route pending subs to owner endpoints: one batch per endpoint.
		byAddr := make(map[string][]int)
		var addrs []string
		quorum := make([]int, len(stores))
		acks := make([]int, len(stores))
		for i := range stores {
			if done[i] {
				continue
			}
			owners, _, err := c.owners(ctx, KindMemory, stores[i].Series)
			if err != nil {
				out[i] = err
				continue
			}
			quorum[i] = len(owners)/2 + 1
			for _, m := range owners {
				addr := m.Endpoints()[0]
				if _, seen := byAddr[addr]; !seen {
					addrs = append(addrs, addr)
				}
				byAddr[addr] = append(byAddr[addr], i)
			}
		}
		redirected := false
		for _, addr := range addrs {
			idx := byAddr[addr]
			subset := make([]BatchStore, len(idx))
			for j, i := range idx {
				subset[j] = stores[i]
			}
			errs, err := c.client.StoreBatchCtx(ctx, addr, subset)
			if err != nil {
				if me, ok := IsMoved(err); ok {
					c.adoptRedirect(ctx, me)
					redirected = true
					continue
				}
				for _, i := range idx {
					if out[i] == nil {
						out[i] = err
					}
				}
				continue
			}
			for j, i := range idx {
				switch e := errs[j]; {
				case e == nil:
					acks[i]++
				default:
					if me, ok := IsMoved(e); ok {
						c.adoptRedirect(ctx, me)
						redirected = true
					} else if out[i] == nil {
						out[i] = e
					}
				}
			}
		}
		for i := range stores {
			if done[i] || quorum[i] == 0 {
				continue
			}
			if acks[i] >= quorum[i] {
				done[i] = true
				out[i] = nil
				remaining--
			}
		}
		if !redirected && remaining > 0 && attempt < clusterRouteAttempts-2 {
			// No stale-view evidence and still failing: skip straight to the
			// registry-refresh attempt instead of repeating the same routing.
			attempt = clusterRouteAttempts - 2
		}
	}
	failed := 0
	for i := range stores {
		if done[i] {
			continue
		}
		failed++
		if out[i] == nil {
			out[i] = fmt.Errorf("nwsnet: cluster store %q: no owner acknowledged", stores[i].Series)
		} else {
			out[i] = fmt.Errorf("nwsnet: cluster store %q: quorum not met: %w", stores[i].Series, out[i])
		}
	}
	if failed > 0 {
		return out, fmt.Errorf("nwsnet: cluster batch store: %d/%d sub-stores missed quorum", failed, len(stores))
	}
	return out, nil
}

// Fetch reads a series range from its owners, failing over across them and
// chasing ownership redirects (see Client.Fetch for the range semantics).
func (c *ClusterClient) Fetch(ctx context.Context, key string, from, to float64, max int) ([][2]float64, error) {
	var pts [][2]float64
	err := c.routeRead(ctx, key, func(addr string) error {
		p, e := c.client.FetchCtx(ctx, addr, key, from, to, max)
		if e == nil {
			pts = p
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// routeRead runs op against key's owners in ring order until one succeeds,
// re-resolving after redirects.
func (c *ClusterClient) routeRead(ctx context.Context, key string, op func(addr string) error) error {
	var firstErr error
	for attempt := 0; attempt < clusterRouteAttempts; attempt++ {
		owners, _, err := c.owners(ctx, KindMemory, key)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return firstErr
		}
		redirected := false
		for _, m := range owners {
			err := op(m.Endpoints()[0])
			if err == nil {
				return nil
			}
			if me, ok := IsMoved(err); ok {
				c.adoptRedirect(ctx, me)
				redirected = true
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		if !redirected {
			return firstErr
		}
	}
	return firstErr
}

// FetchBatch reads several series ranges, routing each to its owners and
// batching per owner endpoint. Per-sub failures (including redirects that
// survive re-routing) land in that sub's FetchResult.Err; the overall error
// is non-nil only when no owner answered at all.
func (c *ClusterClient) FetchBatch(ctx context.Context, fetches []BatchFetch) ([]FetchResult, error) {
	if len(fetches) == 0 {
		return nil, nil
	}
	out := make([]FetchResult, len(fetches))
	done := make([]bool, len(fetches))
	remaining := len(fetches)
	answered := false
	var firstErr error
	for attempt := 0; attempt < clusterRouteAttempts && remaining > 0; attempt++ {
		// Preference rank r of each pending sub's owner list to try this
		// round: rank 0 first, failing over rank by rank within the attempt.
		type route struct {
			idx    []int
			subset []BatchFetch
		}
		owners := make([][]cluster.Member, len(fetches))
		maxRank := 0
		for i := range fetches {
			if done[i] {
				continue
			}
			o, _, err := c.owners(ctx, KindMemory, fetches[i].Series)
			if err != nil {
				if out[i].Err == nil {
					out[i].Err = err
				}
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			owners[i] = o
			if len(o) > maxRank {
				maxRank = len(o)
			}
		}
		redirected := false
		for rank := 0; rank < maxRank && remaining > 0; rank++ {
			byAddr := make(map[string]*route)
			var addrs []string
			for i := range fetches {
				if done[i] || owners[i] == nil || rank >= len(owners[i]) {
					continue
				}
				addr := owners[i][rank].Endpoints()[0]
				r := byAddr[addr]
				if r == nil {
					r = &route{}
					byAddr[addr] = r
					addrs = append(addrs, addr)
				}
				r.idx = append(r.idx, i)
				r.subset = append(r.subset, fetches[i])
			}
			for _, addr := range addrs {
				r := byAddr[addr]
				results, err := c.client.FetchBatchCtx(ctx, addr, r.subset)
				if err != nil {
					if me, ok := IsMoved(err); ok {
						c.adoptRedirect(ctx, me)
						redirected = true
					} else if firstErr == nil {
						firstErr = err
					}
					continue
				}
				answered = true
				for j, i := range r.idx {
					res := results[j]
					if res.Err != nil {
						if me, ok := IsMoved(res.Err); ok {
							c.adoptRedirect(ctx, me)
							redirected = true
						}
						if out[i].Err == nil {
							out[i].Err = res.Err
						}
						continue
					}
					out[i] = res
					done[i] = true
					remaining--
				}
			}
		}
		if !redirected {
			break
		}
	}
	if !answered {
		return nil, firstErr
	}
	return out, nil
}

// Series lists the union of stored series keys across every active memory
// member.
func (c *ClusterClient) Series(ctx context.Context) ([]string, error) {
	v, err := c.ensureView(ctx)
	if err != nil {
		return nil, err
	}
	members := v.Active(string(KindMemory))
	if len(members) == 0 {
		return nil, fmt.Errorf("nwsnet: no active memory members (epoch %d)", v.Epoch)
	}
	seen := make(map[string]bool)
	answered := false
	var firstErr error
	for _, m := range members {
		names, err := c.client.SeriesCtx(ctx, m.Endpoints()[0])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		answered = true
		for _, n := range names {
			seen[n] = true
		}
	}
	if !answered {
		return nil, firstErr
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// Forecast routes a forecast query to the forecaster shard owning key,
// failing over across the key's forecaster owners.
func (c *ClusterClient) Forecast(ctx context.Context, key string) (ForecastResult, error) {
	var res ForecastResult
	var firstErr error
	for attempt := 0; attempt < clusterRouteAttempts; attempt++ {
		v, err := c.ensureView(ctx)
		if err != nil {
			return ForecastResult{}, err
		}
		owners := v.Owners(string(KindForecaster), key)
		if len(owners) == 0 {
			return ForecastResult{}, fmt.Errorf("nwsnet: no active forecaster member owns %q (epoch %d)", key, v.Epoch)
		}
		redirected := false
		for _, m := range owners {
			r, err := c.client.ForecastCtx(ctx, m.Endpoints()[0], key)
			if err == nil {
				return r, nil
			}
			if me, ok := IsMoved(err); ok {
				c.adoptRedirect(ctx, me)
				redirected = true
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		if !redirected {
			break
		}
	}
	return res, firstErr
}

// Health reports one entry per active memory member, healthy unless the
// client's circuit breaker for its endpoint is open — the cluster analogue
// of ReplicaGroup.Health, satisfying the shared backend contract.
func (c *ClusterClient) Health() []ReplicaHealth {
	v := c.View()
	if v == nil {
		return nil
	}
	members := v.Active(string(KindMemory))
	out := make([]ReplicaHealth, len(members))
	for i, m := range members {
		addr := m.Endpoints()[0]
		out[i] = ReplicaHealth{Addr: addr, Healthy: c.client.BreakerState(addr) != resilience.BreakerOpen}
	}
	return out
}

// Close releases the router's pooled connections.
func (c *ClusterClient) Close() error { return c.client.Close() }
