package nwsnet

import (
	"context"
	"fmt"
	"time"

	"nwscpu/internal/sensors"
)

// LocalBackend adapts an in-process Handler — a *Memory or a *ClusterNode —
// to the StoreBackend and FetchBackend delivery contracts with no sockets,
// codecs or retry machinery in between. It is the wiring the grid-scale
// scenario harness (cmd/nwsgrid) runs the whole sensord → memory →
// forecaster stack on: thousands of simulated hosts share one process, the
// hot path is a method call, and determinism is limited only by the
// handler itself. Requests carry the same batch envelopes as the wire
// path, so the server-side semantics (idempotent frontier dedup, [from,to)
// ranges, per-sub rejections) are exercised identically.
type LocalBackend struct {
	h Handler
}

// NewLocalBackend wraps h. The handler must be safe for concurrent use
// (both *Memory and *ClusterNode are).
func NewLocalBackend(h Handler) *LocalBackend { return &LocalBackend{h: h} }

const localAddr = "local"

// StoreBatch implements StoreBackend via one OpBatch envelope.
func (l *LocalBackend) StoreBatch(_ context.Context, stores []BatchStore) ([]error, error) {
	if len(stores) == 0 {
		return nil, nil
	}
	subs := make([]Request, len(stores))
	for i, s := range stores {
		subs[i] = Request{Op: OpStore, Series: s.Series, Points: s.Points}
	}
	resp := l.h.Handle(Request{Op: OpBatch, Batch: subs})
	if err := respError(localAddr, resp); err != nil && len(resp.Batch) == 0 {
		return nil, err
	}
	if len(resp.Batch) != len(subs) {
		return nil, errEnvelope(len(resp.Batch), len(subs))
	}
	errs := make([]error, len(subs))
	for i, r := range resp.Batch {
		errs[i] = respError(localAddr, r)
	}
	return errs, nil
}

// Fetch implements FetchBackend with the wire range semantics: [from, to)
// with to == 0 meaning "through the latest point", keeping the most recent
// max points when max > 0.
func (l *LocalBackend) Fetch(_ context.Context, key string, from, to float64, max int) ([][2]float64, error) {
	resp := l.h.Handle(Request{Op: OpFetch, Series: key, From: from, To: to, Max: max})
	if err := respError(localAddr, resp); err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// FetchBatch implements FetchBackend via one OpBatch envelope.
func (l *LocalBackend) FetchBatch(_ context.Context, fetches []BatchFetch) ([]FetchResult, error) {
	if len(fetches) == 0 {
		return nil, nil
	}
	subs := make([]Request, len(fetches))
	for i, f := range fetches {
		subs[i] = Request{Op: OpFetch, Series: f.Series, From: f.From, To: f.To, Max: f.Max}
	}
	resp := l.h.Handle(Request{Op: OpBatch, Batch: subs})
	if err := respError(localAddr, resp); err != nil && len(resp.Batch) == 0 {
		return nil, err
	}
	if len(resp.Batch) != len(subs) {
		return nil, errEnvelope(len(resp.Batch), len(subs))
	}
	out := make([]FetchResult, len(subs))
	for i, r := range resp.Batch {
		if err := respError(localAddr, r); err != nil {
			out[i].Err = err
			continue
		}
		out[i].Points = r.Points
	}
	return out, nil
}

// Series implements FetchBackend.
func (l *LocalBackend) Series(_ context.Context) ([]string, error) {
	resp := l.h.Handle(Request{Op: OpSeries})
	if err := respError(localAddr, resp); err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Health implements both backend contracts: an in-process handler is
// reachable by construction.
func (l *LocalBackend) Health() []ReplicaHealth {
	return []ReplicaHealth{{Addr: localAddr, Healthy: true}}
}

func errEnvelope(got, want int) error {
	return fmt.Errorf("nwsnet: local batch returned %d sub-responses, want %d", got, want)
}

// NewSensorDaemonBackend builds a daemon for the named host delivering
// through an arbitrary StoreBackend — for in-process harnesses, a
// LocalBackend. The store-and-forward backlog, outage accounting and Step
// semantics are identical to the socket-backed constructors; only the
// delivery plane differs. The daemon owns no client, so Close is a no-op.
func NewSensorDaemonBackend(hostName string, h sensors.Host, backend StoreBackend, hybrid sensors.HybridConfig) *SensorDaemon {
	if hybrid.ProbeEvery == 0 {
		hybrid = sensors.DefaultHybridConfig()
	}
	return &SensorDaemon{
		hostName:   hostName,
		host:       h,
		group:      backend,
		backlog:    make(map[string][][2]float64),
		backlogCap: backlogDefaultCap,
		sensors: []sensors.Sensor{
			sensors.NewLoadAvgSensor(h),
			sensors.NewVmstatSensor(h, 0),
			sensors.NewHybridSensor(h, hybrid),
		},
	}
}

// NewForecasterServiceBackend returns a forecaster pulling through an
// arbitrary FetchBackend — for in-process harnesses, a LocalBackend over
// the same Memory the sensors store into. timeout bounds each fetch
// context (0 selects 5 s; a LocalBackend ignores it).
func NewForecasterServiceBackend(backend FetchBackend, timeout time.Duration) *ForecasterService {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &ForecasterService{
		group:   backend,
		timeout: timeout,
		engines: make(map[string]*engineState),
		subs:    make(map[string]map[PushSink]uint64),
		bySink:  make(map[PushSink]map[string]struct{}),
	}
}
