package simos

import (
	"math"
	"testing"
)

func smpHost(n int) *Host {
	cfg := DefaultConfig()
	cfg.NumCPUs = n
	return New(cfg)
}

func TestSMPValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumCPUs = -1
	defer func() {
		if recover() == nil {
			t.Fatal("negative NumCPUs accepted")
		}
	}()
	New(cfg)
}

func TestSMPZeroDefaultsToOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumCPUs = 0
	h := New(cfg)
	if h.NumCPUs() != 1 {
		t.Fatalf("NumCPUs = %d, want 1", h.NumCPUs())
	}
}

func TestSMPTwoSpinnersOnFourCPUs(t *testing.T) {
	h := smpHost(4)
	h.Spawn(spinner(0))
	res := h.RunProcess(ProcSpec{Name: "p2", Demand: math.Inf(1), WallLimit: 30})
	if res.Fraction < 0.999 {
		t.Fatalf("spinner on idle CPU got %v, want ~1", res.Fraction)
	}
}

func TestSMPFourSpinnersOnTwoCPUs(t *testing.T) {
	h := smpHost(2)
	for i := 0; i < 3; i++ {
		h.Spawn(spinner(0))
	}
	res := h.RunProcess(ProcSpec{Name: "p4", Demand: math.Inf(1), WallLimit: 120})
	if res.Fraction < 0.40 || res.Fraction > 0.60 {
		t.Fatalf("4 spinners on 2 CPUs: fraction %v, want ~0.5", res.Fraction)
	}
}

func TestSMPProcessCannotUseTwoCPUs(t *testing.T) {
	// A single process on a 4-way machine gets at most 1 CPU of time.
	h := smpHost(4)
	res := h.RunProcess(ProcSpec{Name: "solo", Demand: math.Inf(1), WallLimit: 10})
	if res.Fraction > 1.001 {
		t.Fatalf("single process exceeded one CPU: %v", res.Fraction)
	}
	if math.Abs(res.CPUTime-10) > 0.05 {
		t.Fatalf("CPUTime = %v, want 10", res.CPUTime)
	}
}

func TestSMPAccountingConservation(t *testing.T) {
	h := smpHost(4)
	h.Spawn(spinner(0))
	h.Spawn(ProcSpec{Name: "n", Nice: 19, Demand: math.Inf(1), WallLimit: 100, SysFrac: 0.5})
	h.RunUntil(100)
	c := h.Counters()
	if math.Abs(c.Total-400) > 0.1 {
		t.Fatalf("Total = %v, want 400 (4 CPUs x 100 s)", c.Total)
	}
	if math.Abs(c.User+c.Nice+c.Sys+c.Idle-c.Total) > 1e-6 {
		t.Fatalf("accounting leak: %+v", c)
	}
	// Two busy processes on 4 CPUs: ~200 s busy, ~200 s idle.
	busy := c.User + c.Nice + c.Sys
	if math.Abs(busy-200) > 1 {
		t.Fatalf("busy = %v, want ~200", busy)
	}
}

func TestSMPLoadAverageCountsAllRunnable(t *testing.T) {
	h := smpHost(4)
	for i := 0; i < 3; i++ {
		h.Spawn(spinner(0))
	}
	h.RunUntil(600)
	if l := h.LoadAvg(); math.Abs(l-3) > 0.05 {
		t.Fatalf("SMP load average = %v, want ~3", l)
	}
}

func TestSMPNicePreemptedOnlyWhenSaturated(t *testing.T) {
	// 2 CPUs, one full-priority spinner, one nice spinner: both can run
	// simultaneously, so the nice job is NOT starved.
	h := smpHost(2)
	h.Spawn(spinner(0))
	pidNice := h.Spawn(ProcSpec{Name: "bg", Nice: 19, Demand: math.Inf(1), WallLimit: 3600})
	h.RunUntil(60)
	res, ok := h.Lookup(pidNice)
	if !ok || res.Fraction < 0.95 {
		t.Fatalf("nice job on spare SMP CPU got %v, want ~1", res.Fraction)
	}
}
