package simos

import (
	"math"
	"testing"
)

// TestStealNilIsBitIdentical pins the zero-cost default: a host with no
// steal schedule must evolve exactly like one that predates the feature.
func TestStealNilIsBitIdentical(t *testing.T) {
	run := func(setNil bool) (Counters, float64, ProcResult) {
		h := newHost()
		if setNil {
			h.SetSteal(nil)
		}
		h.Spawn(spinner(0))
		h.SubmitAt(30, ProcSpec{Name: "batch", Demand: 5})
		h.RunUntil(60)
		res := h.RunProcess(ProcSpec{Name: "probe", Demand: math.Inf(1), WallLimit: 1.5})
		return h.Counters(), h.LoadAvg(), res
	}
	c1, l1, r1 := run(false)
	c2, l2, r2 := run(true)
	if c1 != c2 || l1 != l2 || r1 != r2 {
		t.Fatalf("nil steal diverged: %+v/%v/%v vs %+v/%v/%v", c1, l1, r1, c2, l2, r2)
	}
}

// TestStealSlowsProgressButHidesFromPassiveSensors is the paper's point:
// under a constant 50% steal a lone spinner's probe fraction halves, a
// fixed demand takes twice the wall time, yet the guest's loadavg and
// user-time counters are identical to the unstolen run — only the Steal
// counter (the hypervisor's view) and an active probe reveal it.
func TestStealSlowsProgressButHidesFromPassiveSensors(t *testing.T) {
	mk := func(steal float64) *Host {
		h := newHost()
		if steal > 0 {
			h.SetSteal(func(float64) float64 { return steal })
		}
		return h
	}

	// A fixed CPU demand needs 1/(1-steal) times the wall time.
	clean, stolen := mk(0), mk(0.5)
	p1 := clean.RunProcess(ProcSpec{Name: "job", Demand: 10})
	p2 := stolen.RunProcess(ProcSpec{Name: "job", Demand: 10})
	if math.Abs(p1.Wall-10) > 0.05 {
		t.Fatalf("clean 10s demand took %v wall", p1.Wall)
	}
	if math.Abs(p2.Wall-20) > 0.1 {
		t.Fatalf("50%% steal: 10s demand took %v wall, want ~20", p2.Wall)
	}

	// A wall-limited probe on a busy host: guest accounting identical,
	// probe fraction halved.
	clean, stolen = mk(0), mk(0.5)
	for _, h := range []*Host{clean, stolen} {
		h.Spawn(spinner(0))
		h.RunUntil(300)
	}
	c1, c2 := clean.Counters(), stolen.Counters()
	if c1.User != c2.User || c1.Sys != c2.Sys || c1.Nice != c2.Nice || c1.Idle != c2.Idle {
		t.Fatalf("guest accounting saw the steal: %+v vs %+v", c1, c2)
	}
	if clean.LoadAvg() != stolen.LoadAvg() {
		t.Fatalf("loadavg saw the steal: %v vs %v", clean.LoadAvg(), stolen.LoadAvg())
	}
	if c2.Steal < 140 || c2.Steal > 160 {
		t.Fatalf("steal counter = %v after 300s at 50%%, want ~150", c2.Steal)
	}
	if c1.Steal != 0 {
		t.Fatalf("clean host accrued steal: %v", c1.Steal)
	}
	r1 := clean.RunProcess(ProcSpec{Name: "probe", Demand: math.Inf(1), WallLimit: 3})
	r2 := stolen.RunProcess(ProcSpec{Name: "probe", Demand: math.Inf(1), WallLimit: 3})
	if r2.Fraction > 0.75*r1.Fraction {
		t.Fatalf("probe blind to steal: clean %v vs stolen %v", r1.Fraction, r2.Fraction)
	}
}

// TestStealClamped verifies out-of-range schedules are clamped: negative
// steal gives no speedup and steal > 1 cannot make progress negative.
func TestStealClamped(t *testing.T) {
	h := newHost()
	h.SetSteal(func(float64) float64 { return -3 })
	res := h.RunProcess(ProcSpec{Name: "job", Demand: 5})
	if math.Abs(res.Wall-5) > 0.05 {
		t.Fatalf("negative steal changed progress: wall %v", res.Wall)
	}
	h2 := newHost()
	h2.SetSteal(func(float64) float64 { return 2 })
	pid := h2.Spawn(ProcSpec{Name: "job", Demand: 5, WallLimit: 10})
	h2.RunUntil(20)
	res2, _, ok := h2.Exit(pid)
	if !ok {
		t.Fatal("fully stolen process never reaped")
	}
	if res2.CPUTime != 0 {
		t.Fatalf("fully stolen process made progress: %+v", res2)
	}
}
