// Package simos simulates a time-shared Unix host at scheduling-quantum
// resolution. It stands in for the UCSD workstations and servers of the HPDC
// 1999 study: the phenomena the paper reports — Equation 1/2 measurement
// error, the invisibility of nice-19 background jobs to load average and
// vmstat (conundrum), the eviction of long-running full-priority jobs by
// fresh short probes (kongo), and the slow decay of availability — all arise
// mechanically from the 4.3BSD scheduler model implemented here:
//
//   - Each quantum (default 10 ms) the runnable process with the lowest
//     priority number runs; priority = PCpu/4 + 4*nice, so recent CPU usage
//     degrades priority and freshly started processes preempt hogs.
//   - Once per virtual second every process's PCpu estimator decays by
//     (2*load)/(2*load + 1), the 4.3BSD digital decay filter.
//   - Every 5 virtual seconds the kernel samples the run-queue length into
//     the 1-minute exponentially smoothed load average that uptime reports.
//   - Per-quantum accounting feeds the user/nice/system/idle counters that
//     vmstat reports.
//
// The simulator is single-goroutine and fully deterministic: all randomness
// lives in the workload that callers submit.
package simos

import (
	"fmt"
	"math"
	"sort"
)

// Config holds the tunable constants of the simulated kernel. The zero value
// is not valid; use DefaultConfig.
type Config struct {
	// Tick is the scheduling quantum in seconds.
	Tick float64
	// DecayPeriod is how often (seconds) the PCpu decay filter runs.
	DecayPeriod float64
	// LoadSamplePeriod is how often (seconds) the load average samples the
	// run queue.
	LoadSamplePeriod float64
	// LoadTimeConstant is the smoothing time constant of the load average
	// in seconds (60 for the 1-minute load average).
	LoadTimeConstant float64
	// NiceWeight is the priority penalty per unit of nice. 4.3BSD used 2;
	// SVR4-era and modern kernels weight nice more heavily so that nice-19
	// background jobs effectively never preempt full-priority work, which
	// matches the behaviour the paper observed on conundrum. We use 4.
	NiceWeight float64
	// PCpuMax caps the per-process CPU usage estimator (255 in 4.3BSD).
	PCpuMax float64
	// NumCPUs is the number of processors (default 1). On a shared-memory
	// multiprocessor — the paper's stated future work — up to NumCPUs
	// runnable processes execute each quantum, one CPU per process, and the
	// accounting counters advance NumCPUs seconds of CPU time per second of
	// wall time.
	NumCPUs int
	// PriBucket quantizes priorities into run queues PriBucket points wide,
	// as the 4.3BSD dispatcher does (it keeps 32 run queues of 4 priority
	// points each; coupled with round-robin inside a queue this lets
	// processes of similar recent CPU usage share the processor instead of
	// strictly dominating one another). Zero or negative disables
	// quantization.
	PriBucket float64
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		Tick:             0.01,
		DecayPeriod:      1.0,
		LoadSamplePeriod: 5.0,
		LoadTimeConstant: 60.0,
		NiceWeight:       4.0,
		PCpuMax:          255.0,
		PriBucket:        8.0,
		NumCPUs:          1,
	}
}

// PID identifies a process within one Host.
type PID int

// ProcSpec describes a process to run on the simulated host.
type ProcSpec struct {
	// Name labels the process in diagnostics.
	Name string
	// Nice is the Unix nice value, 0 (full priority) to 19 (background).
	Nice int
	// Demand is the total CPU seconds the process needs before exiting.
	// Use math.Inf(1) for a process that runs until killed or until
	// WallLimit expires.
	Demand float64
	// WallLimit, if positive, makes the process exit after that much wall
	// time regardless of CPU obtained (this is how the NWS probe and the
	// test process behave: they spin for a fixed wall-clock interval).
	WallLimit float64
	// SysFrac is the fraction of this process's CPU time accounted as
	// system time rather than user time (e.g. a network daemon doing kernel
	// work on behalf of packets). Must be in [0, 1].
	SysFrac float64
	// Kernel marks non-preemptible kernel work (interrupt handling on a
	// network gateway): it always runs ahead of every user process,
	// regardless of priority decay. Combine with SysFrac: 1 so the
	// accounting shows it as system time, and with a Burst pattern so it
	// consumes a duty-cycle fraction rather than the whole CPU.
	Kernel bool
	// BurstCPU and BurstSleep, when BurstCPU > 0, make the process
	// alternate between computing BurstCPU CPU-seconds and sleeping
	// BurstSleep wall-seconds — the think-time pattern of an interactive
	// user.
	BurstCPU   float64
	BurstSleep float64
}

type process struct {
	pid      PID
	spec     ProcSpec
	pcpu     float64 // decaying CPU usage estimator
	cpuTime  float64 // CPU seconds obtained so far
	start    float64 // wall time of creation
	left     float64 // remaining CPU demand
	wake     float64 // sleeping until this time (burst pattern)
	burstCPU float64 // CPU used in the current burst
	lastRun  int64   // tick sequence when last scheduled (round-robin tiebreak)
	done     bool
}

func (p *process) runnable(now float64) bool {
	return !p.done && now >= p.wake
}

// Counters is the cumulative CPU-time accounting of the host, in seconds.
// Nice holds CPU time consumed by processes with Nice > 0 (classic vmstat
// folds this into user time; the sensors do the same, but tests want it
// separately). Steal is the hypervisor's view of cycles taken from the
// guest while a process was dispatched; the guest's own counters (User,
// Nice, Sys) still charge the full quantum, exactly as a guest kernel
// without a paravirtual steal clock accounts time it never actually got.
type Counters struct {
	User  float64
	Nice  float64
	Sys   float64
	Idle  float64
	Total float64
	Steal float64
}

// ProcResult reports the outcome of a completed process.
type ProcResult struct {
	CPUTime  float64 // CPU seconds obtained
	Wall     float64 // wall seconds from start to exit
	Fraction float64 // CPUTime / Wall; 0 when Wall == 0
}

type exitRec struct {
	res ProcResult
	at  float64
}

type arrival struct {
	t    float64
	spec ProcSpec
}

// Host is one simulated time-shared machine. It is not safe for concurrent
// use — drive it from a single goroutine (experiments run hosts in parallel
// by giving each goroutine its own Host).
type Host struct {
	cfg     Config
	tickNum int64 // current tick; Now() = tickNum * cfg.Tick
	nextPID PID
	procs   []*process // live processes
	pending []arrival  // future arrivals, kept sorted by t
	loadavg float64
	ctr     Counters

	nextDecayTick int64
	nextLoadTick  int64
	decayTicks    int64
	loadTicks     int64

	steal func(t float64) float64

	exits   map[PID]exitRec // results of exited processes
	running []*process      // scratch: processes dispatched this quantum
}

// New creates a Host with the given configuration. It panics on a
// non-positive Tick or on period constants smaller than the tick.
func New(cfg Config) *Host {
	if cfg.Tick <= 0 {
		panic("simos: Tick must be positive")
	}
	if cfg.DecayPeriod < cfg.Tick || cfg.LoadSamplePeriod < cfg.Tick {
		panic("simos: decay and load periods must be >= Tick")
	}
	if cfg.LoadTimeConstant <= 0 {
		panic("simos: LoadTimeConstant must be positive")
	}
	if cfg.NumCPUs == 0 {
		cfg.NumCPUs = 1
	}
	if cfg.NumCPUs < 0 {
		panic("simos: NumCPUs must be positive")
	}
	h := &Host{cfg: cfg, exits: make(map[PID]exitRec)}
	h.decayTicks = int64(math.Round(cfg.DecayPeriod / cfg.Tick))
	h.loadTicks = int64(math.Round(cfg.LoadSamplePeriod / cfg.Tick))
	h.nextDecayTick = h.decayTicks
	h.nextLoadTick = h.loadTicks
	return h
}

// Now returns the current virtual time in seconds.
func (h *Host) Now() float64 { return float64(h.tickNum) * h.cfg.Tick }

// LoadAvg returns the kernel's 1-minute load average, as uptime would
// report it.
func (h *Host) LoadAvg() float64 { return h.loadavg }

// NumCPUs returns the number of processors of this host.
func (h *Host) NumCPUs() int { return h.cfg.NumCPUs }

// Counters returns the cumulative CPU accounting.
func (h *Host) Counters() Counters { return h.ctr }

// SetSteal installs a hypervisor steal schedule: fn(t) is the fraction of
// each scheduling quantum at virtual time t that the hypervisor takes from
// this guest, clamped to [0, 1]. While a quantum is stolen the dispatched
// process makes only (1-steal) of a tick of progress, but the guest's
// accounting — loadavg, user/nice/system counters — charges the full
// quantum, because a guest kernel without a paravirtual steal clock cannot
// tell the difference ("Platform-Agnostic Steal-Time Measurement in a Guest
// Operating System"). Passive sensors are therefore blind to steal; only an
// active probe, which observes its own wall-clock progress, sees it. A nil
// fn (the default) disables steal and reproduces the legacy schedule
// bit-for-bit.
func (h *Host) SetSteal(fn func(t float64) float64) { h.steal = fn }

// RunQueue returns the instantaneous number of runnable processes.
func (h *Host) RunQueue() int {
	n := 0
	now := h.Now()
	for _, p := range h.procs {
		if p.runnable(now) {
			n++
		}
	}
	return n
}

// NumLive returns the number of live (not yet exited) processes.
func (h *Host) NumLive() int { return len(h.procs) }

// Spawn creates a process now and returns its PID.
func (h *Host) Spawn(spec ProcSpec) PID {
	return h.spawnAt(h.Now(), spec)
}

func (h *Host) spawnAt(now float64, spec ProcSpec) PID {
	if spec.SysFrac < 0 || spec.SysFrac > 1 {
		panic(fmt.Sprintf("simos: SysFrac %v out of [0,1]", spec.SysFrac))
	}
	if spec.Demand <= 0 && spec.WallLimit <= 0 {
		panic("simos: process needs positive Demand or WallLimit")
	}
	h.nextPID++
	p := &process{
		pid:   h.nextPID,
		spec:  spec,
		start: now,
		left:  spec.Demand,
	}
	if spec.Demand <= 0 {
		p.left = math.Inf(1)
	}
	h.procs = append(h.procs, p)
	return p.pid
}

// SubmitAt schedules a process to arrive at time t (>= Now). Arrivals may be
// submitted in any order.
func (h *Host) SubmitAt(t float64, spec ProcSpec) {
	if t < h.Now() {
		t = h.Now()
	}
	h.pending = append(h.pending, arrival{t: t, spec: spec})
	// Keep sorted; submissions are usually near-sorted so insertion is cheap.
	for i := len(h.pending) - 1; i > 0 && h.pending[i].t < h.pending[i-1].t; i-- {
		h.pending[i], h.pending[i-1] = h.pending[i-1], h.pending[i]
	}
}

// SubmitAll schedules a batch of (time, spec) arrivals.
func (h *Host) SubmitAll(ts []float64, specs []ProcSpec) {
	if len(ts) != len(specs) {
		panic("simos: SubmitAll length mismatch")
	}
	for i := range ts {
		h.pending = append(h.pending, arrival{t: ts[i], spec: specs[i]})
	}
	sort.SliceStable(h.pending, func(i, j int) bool { return h.pending[i].t < h.pending[j].t })
}

// Kill terminates the process with the given pid. Killing an unknown or
// already-exited pid is a no-op.
func (h *Host) Kill(pid PID) {
	for _, p := range h.procs {
		if p.pid == pid {
			p.done = true
			return
		}
	}
}

// Lookup returns the live process result-so-far for pid. ok is false if the
// process is not live.
func (h *Host) Lookup(pid PID) (ProcResult, bool) {
	for _, p := range h.procs {
		if p.pid == pid {
			wall := h.Now() - p.start
			return result(p.cpuTime, wall), true
		}
	}
	return ProcResult{}, false
}

// Exit returns the result of an exited process along with its completion
// time. ok is false while the process is still live (or was never spawned).
// Killed processes appear here once the next simulation step reaps them.
func (h *Host) Exit(pid PID) (res ProcResult, at float64, ok bool) {
	r, ok := h.exits[pid]
	if !ok {
		return ProcResult{}, 0, false
	}
	return r.res, r.at, true
}

func result(cpu, wall float64) ProcResult {
	r := ProcResult{CPUTime: cpu, Wall: wall}
	if wall > 0 {
		r.Fraction = cpu / wall
	}
	return r
}

// RunUntil advances the simulation to time t. It is a no-op if t <= Now.
func (h *Host) RunUntil(t float64) {
	target := int64(math.Ceil(t/h.cfg.Tick - 1e-9))
	for h.tickNum < target {
		h.step()
	}
}

// RunProcess spawns spec now, advances the simulation until it exits, and
// returns its result. This is how the NWS probe and the paper's test process
// are run: they block the experiment driver exactly as a real spinning
// process blocks a shell.
func (h *Host) RunProcess(spec ProcSpec) ProcResult {
	if math.IsInf(spec.Demand, 1) && spec.WallLimit <= 0 {
		panic("simos: RunProcess would never return (infinite demand, no wall limit)")
	}
	pid := h.spawnAt(h.Now(), spec)
	p := h.find(pid)
	for !p.done {
		h.step()
	}
	return result(p.cpuTime, h.Now()-p.start)
}

// dispatched reports whether p was already given a CPU this quantum.
func (h *Host) dispatched(p *process) bool {
	for _, q := range h.running {
		if q == p {
			return true
		}
	}
	return false
}

func (h *Host) find(pid PID) *process {
	for _, p := range h.procs {
		if p.pid == pid {
			return p
		}
	}
	return nil
}

// step advances one scheduling quantum.
func (h *Host) step() {
	now := h.Now()

	// Admit arrivals due now.
	for len(h.pending) > 0 && h.pending[0].t <= now {
		h.spawnAt(now, h.pending[0].spec)
		h.pending = h.pending[1:]
	}

	// Dispatch the NumCPUs lowest-priority runnable processes (one CPU per
	// process); within a priority run queue, the least recently scheduled
	// runs first (round-robin).
	tick := h.cfg.Tick
	h.ctr.Total += tick * float64(h.cfg.NumCPUs)
	h.running = h.running[:0]
	for cpu := 0; cpu < h.cfg.NumCPUs; cpu++ {
		var best *process
		var bestPri float64
		for _, p := range h.procs {
			if !p.runnable(now) || h.dispatched(p) {
				continue
			}
			pri := p.pcpu/4 + h.cfg.NiceWeight*float64(p.spec.Nice)
			if h.cfg.PriBucket > 0 {
				pri = math.Floor(pri / h.cfg.PriBucket)
			}
			if p.spec.Kernel {
				pri = math.Inf(-1) // interrupts preempt everything
			}
			if best == nil || pri < bestPri ||
				(pri == bestPri && p.lastRun < best.lastRun) {
				best, bestPri = p, pri
			}
		}
		if best == nil {
			h.ctr.Idle += tick * float64(h.cfg.NumCPUs-cpu)
			break
		}
		h.running = append(h.running, best)
	}
	stolen := 0.0
	if h.steal != nil && len(h.running) > 0 {
		stolen = h.steal(now)
		if stolen < 0 {
			stolen = 0
		} else if stolen > 1 {
			stolen = 1
		}
	}
	for _, best := range h.running {
		got := tick * (1 - stolen)
		best.cpuTime += got
		best.left -= got
		best.burstCPU += got
		h.ctr.Steal += tick - got
		best.lastRun = h.tickNum
		best.pcpu += 1
		if best.pcpu > h.cfg.PCpuMax {
			best.pcpu = h.cfg.PCpuMax
		}
		sys := tick * best.spec.SysFrac
		h.ctr.Sys += sys
		if best.spec.Nice > 0 {
			h.ctr.Nice += tick - sys
		} else {
			h.ctr.User += tick - sys
		}
		// Burst pattern: finished the compute phase of this burst?
		if best.spec.BurstCPU > 0 && best.burstCPU >= best.spec.BurstCPU-1e-12 {
			best.burstCPU = 0
			best.wake = now + tick + best.spec.BurstSleep
		}
	}

	h.tickNum++
	now = h.Now()

	// Reap exits: demand satisfied or wall limit expired.
	live := h.procs[:0]
	for _, p := range h.procs {
		if !p.done {
			if p.left <= 1e-12 {
				p.done = true
			} else if p.spec.WallLimit > 0 && now-p.start >= p.spec.WallLimit-1e-12 {
				p.done = true
			}
		}
		if !p.done {
			live = append(live, p)
		} else {
			h.exits[p.pid] = exitRec{res: result(p.cpuTime, now-p.start), at: now}
		}
	}
	h.procs = live

	// Periodic kernel work.
	if h.tickNum >= h.nextDecayTick {
		h.nextDecayTick += h.decayTicks
		l := h.loadavg
		f := (2 * l) / (2*l + 1)
		for _, p := range h.procs {
			p.pcpu *= f
		}
	}
	if h.tickNum >= h.nextLoadTick {
		h.nextLoadTick += h.loadTicks
		alpha := math.Exp(-h.cfg.LoadSamplePeriod / h.cfg.LoadTimeConstant)
		h.loadavg = h.loadavg*alpha + float64(h.RunQueue())*(1-alpha)
	}
}
