package simos

import (
	"math"
	"testing"
)

func newHost() *Host { return New(DefaultConfig()) }

func spinner(nice int) ProcSpec {
	return ProcSpec{Name: "spin", Nice: nice, Demand: math.Inf(1), WallLimit: 3600}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	cases := []Config{
		{},
		{Tick: 0.01, DecayPeriod: 0.001, LoadSamplePeriod: 5, LoadTimeConstant: 60},
		{Tick: 0.01, DecayPeriod: 1, LoadSamplePeriod: 5, LoadTimeConstant: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad config accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestClockAdvances(t *testing.T) {
	h := newHost()
	if h.Now() != 0 {
		t.Fatalf("initial Now = %v", h.Now())
	}
	h.RunUntil(10)
	if math.Abs(h.Now()-10) > 0.011 {
		t.Fatalf("Now = %v, want ~10", h.Now())
	}
	before := h.Now()
	h.RunUntil(5) // in the past: no-op
	if h.Now() != before {
		t.Fatal("RunUntil went backwards")
	}
}

func TestIdleAccounting(t *testing.T) {
	h := newHost()
	h.RunUntil(100)
	c := h.Counters()
	if math.Abs(c.Idle-100) > 0.02 || math.Abs(c.Total-100) > 0.02 {
		t.Fatalf("idle host counters = %+v", c)
	}
	if c.User != 0 || c.Sys != 0 || c.Nice != 0 {
		t.Fatalf("idle host consumed CPU: %+v", c)
	}
}

func TestLoneProcessGetsFullCPU(t *testing.T) {
	h := newHost()
	res := h.RunProcess(ProcSpec{Name: "solo", Demand: math.Inf(1), WallLimit: 10})
	if res.Fraction < 0.999 {
		t.Fatalf("lone process fraction = %v, want ~1", res.Fraction)
	}
	if math.Abs(res.Wall-10) > 0.02 {
		t.Fatalf("wall = %v, want 10", res.Wall)
	}
}

func TestTwoEqualSpinnersShareFairly(t *testing.T) {
	h := newHost()
	h.Spawn(spinner(0))
	res := h.RunProcess(ProcSpec{Name: "p2", Demand: math.Inf(1), WallLimit: 60})
	if res.Fraction < 0.40 || res.Fraction > 0.60 {
		t.Fatalf("competing process fraction = %v, want ~0.5", res.Fraction)
	}
}

func TestConservation(t *testing.T) {
	// user + nice + sys + idle == total, and total CPU granted <= wall time.
	h := newHost()
	h.Spawn(ProcSpec{Name: "a", Demand: 30, SysFrac: 0.25})
	h.Spawn(ProcSpec{Name: "b", Nice: 19, Demand: math.Inf(1), WallLimit: 200})
	h.SubmitAt(50, ProcSpec{Name: "c", Demand: 10})
	h.RunUntil(200)
	c := h.Counters()
	if math.Abs(c.User+c.Nice+c.Sys+c.Idle-c.Total) > 1e-6 {
		t.Fatalf("accounting leak: %+v", c)
	}
	if c.Total < 199.9 || c.Total > 200.1 {
		t.Fatalf("total = %v", c.Total)
	}
	busy := c.User + c.Nice + c.Sys
	if busy > c.Total+1e-9 {
		t.Fatalf("granted more CPU than wall time: %+v", c)
	}
}

func TestDemandCompletion(t *testing.T) {
	h := newHost()
	res := h.RunProcess(ProcSpec{Name: "job", Demand: 5})
	if math.Abs(res.CPUTime-5) > 0.02 {
		t.Fatalf("CPUTime = %v, want 5", res.CPUTime)
	}
	if math.Abs(res.Wall-5) > 0.02 { // idle host: wall == cpu
		t.Fatalf("Wall = %v, want 5", res.Wall)
	}
	if h.NumLive() != 0 {
		t.Fatal("completed process still live")
	}
}

func TestSysFracAccounting(t *testing.T) {
	h := newHost()
	h.RunProcess(ProcSpec{Name: "daemon", Demand: 10, SysFrac: 0.3})
	c := h.Counters()
	if math.Abs(c.Sys-3) > 0.05 || math.Abs(c.User-7) > 0.05 {
		t.Fatalf("sysfrac accounting: %+v", c)
	}
}

func TestNiceAccountedSeparately(t *testing.T) {
	h := newHost()
	h.RunProcess(ProcSpec{Name: "bg", Nice: 19, Demand: 5})
	c := h.Counters()
	if math.Abs(c.Nice-5) > 0.05 || c.User > 0.01 {
		t.Fatalf("nice accounting: %+v", c)
	}
}

func TestLoadAverageConvergesToSpinnerCount(t *testing.T) {
	h := newHost()
	h.Spawn(spinner(0))
	h.Spawn(spinner(0))
	h.Spawn(spinner(0))
	h.RunUntil(600) // 10 time constants
	if l := h.LoadAvg(); math.Abs(l-3) > 0.05 {
		t.Fatalf("load average = %v, want ~3", l)
	}
}

func TestLoadAverageDecaysWhenIdle(t *testing.T) {
	h := newHost()
	pid := h.Spawn(spinner(0))
	h.RunUntil(300)
	high := h.LoadAvg()
	h.Kill(pid)
	prev := high
	for _, tt := range []float64{330, 360, 420, 600} {
		h.RunUntil(tt)
		l := h.LoadAvg()
		if l > prev+1e-9 {
			t.Fatalf("load average rose while idle: %v -> %v", prev, l)
		}
		prev = l
	}
	if prev > 0.01 {
		t.Fatalf("load average did not decay to ~0: %v", prev)
	}
	// One-minute time constant: after 60 idle seconds the load should have
	// decayed by roughly e.
	h2 := newHost()
	pid2 := h2.Spawn(spinner(0))
	h2.RunUntil(300)
	l0 := h2.LoadAvg()
	h2.Kill(pid2)
	h2.RunUntil(360)
	ratio := h2.LoadAvg() / l0
	if math.Abs(ratio-math.Exp(-1)) > 0.05 {
		t.Fatalf("decay over 60s = %v, want ~1/e", ratio)
	}
}

// The conundrum phenomenon: a nice-19 background spinner inflates the load
// average, but a full-priority process preempts it and obtains nearly the
// whole CPU.
func TestNiceBackgroundIsPreempted(t *testing.T) {
	h := newHost()
	h.Spawn(ProcSpec{Name: "bg", Nice: 19, Demand: math.Inf(1), WallLimit: 7200})
	h.RunUntil(600)
	if l := h.LoadAvg(); l < 0.9 {
		t.Fatalf("background spinner load = %v, want ~1", l)
	}
	res := h.RunProcess(ProcSpec{Name: "test", Demand: math.Inf(1), WallLimit: 10})
	if res.Fraction < 0.93 {
		t.Fatalf("full-priority process got %v of CPU against nice-19 bg, want ~1", res.Fraction)
	}
}

// The kongo phenomenon: a long-running full-priority hog is temporarily
// evicted by a fresh short probe (the probe sees ~100% available), while a
// longer test process ends up sharing and sees much less.
func TestLongRunnerEvictedByShortProbe(t *testing.T) {
	h := newHost()
	h.Spawn(ProcSpec{Name: "hog", Demand: math.Inf(1), WallLimit: 7200})
	h.RunUntil(600) // hog accumulates pcpu
	probe := h.RunProcess(ProcSpec{Name: "probe", Demand: math.Inf(1), WallLimit: 1.5})
	if probe.Fraction < 0.9 {
		t.Fatalf("1.5s probe fraction = %v, want ~1 (eviction)", probe.Fraction)
	}
	h.RunUntil(h.Now() + 120) // let the hog re-equilibrate
	test := h.RunProcess(ProcSpec{Name: "test", Demand: math.Inf(1), WallLimit: 10})
	if test.Fraction > 0.85 {
		t.Fatalf("10s test fraction = %v, want well below the probe's", test.Fraction)
	}
	if test.Fraction < 0.45 {
		t.Fatalf("10s test fraction = %v, should still beat a fair 50%% share", test.Fraction)
	}
}

func TestBurstProcessSleeps(t *testing.T) {
	h := newHost()
	// Compute 1s, sleep 3s, repeat: ~25% utilization on an idle machine.
	h.Spawn(ProcSpec{Name: "think", Demand: math.Inf(1), WallLimit: 400,
		BurstCPU: 1, BurstSleep: 3})
	h.RunUntil(400)
	c := h.Counters()
	util := (c.User + c.Nice + c.Sys) / c.Total
	if util < 0.2 || util > 0.3 {
		t.Fatalf("burst process utilization = %v, want ~0.25", util)
	}
}

func TestSubmitAtFutureArrival(t *testing.T) {
	h := newHost()
	h.SubmitAt(50, ProcSpec{Name: "later", Demand: 5})
	h.RunUntil(49)
	if h.NumLive() != 0 {
		t.Fatal("process arrived early")
	}
	h.RunUntil(51)
	if h.NumLive() != 1 {
		t.Fatal("process did not arrive")
	}
	h.RunUntil(60)
	if h.NumLive() != 0 {
		t.Fatal("process did not finish")
	}
	c := h.Counters()
	if math.Abs(c.User-5) > 0.05 {
		t.Fatalf("arrival consumed %v CPU, want 5", c.User)
	}
}

func TestSubmitAtPastClamps(t *testing.T) {
	h := newHost()
	h.RunUntil(10)
	h.SubmitAt(5, ProcSpec{Name: "past", Demand: 1})
	h.RunUntil(10.02)
	if h.NumLive() != 1 {
		t.Fatal("past-dated arrival not admitted immediately")
	}
}

func TestSubmitAllSortsArrivals(t *testing.T) {
	h := newHost()
	h.SubmitAll(
		[]float64{30, 10, 20},
		[]ProcSpec{{Name: "c", Demand: 1}, {Name: "a", Demand: 1}, {Name: "b", Demand: 1}},
	)
	h.RunUntil(10.5)
	if h.NumLive() != 1 {
		t.Fatalf("live at t=10.5: %d, want 1", h.NumLive())
	}
	h.RunUntil(35)
	if h.NumLive() != 0 {
		t.Fatal("arrivals did not all complete")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SubmitAll length mismatch accepted")
			}
		}()
		h.SubmitAll([]float64{1}, nil)
	}()
}

func TestKillAndLookup(t *testing.T) {
	h := newHost()
	pid := h.Spawn(spinner(0))
	h.RunUntil(5)
	res, ok := h.Lookup(pid)
	if !ok || res.CPUTime < 4.9 {
		t.Fatalf("Lookup = %+v, %v", res, ok)
	}
	h.Kill(pid)
	h.RunUntil(6)
	if _, ok := h.Lookup(pid); ok {
		t.Fatal("killed process still visible")
	}
	h.Kill(pid)                   // double-kill is a no-op
	h.Kill(PID(9999))             // unknown pid is a no-op
	if _, ok := h.Lookup(0); ok { // never-issued pid
		t.Fatal("Lookup(0) succeeded")
	}
}

func TestSpawnValidation(t *testing.T) {
	h := newHost()
	for i, spec := range []ProcSpec{
		{Name: "x"},                         // no demand, no wall limit
		{Name: "y", Demand: 1, SysFrac: -1}, // bad sysfrac
		{Name: "z", Demand: 1, SysFrac: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d accepted", i)
				}
			}()
			h.Spawn(spec)
		}()
	}
}

func TestRunProcessNeverReturningPanics(t *testing.T) {
	h := newHost()
	defer func() {
		if recover() == nil {
			t.Fatal("RunProcess(inf, no wall) accepted")
		}
	}()
	h.RunProcess(ProcSpec{Name: "forever", Demand: math.Inf(1)})
}

func TestPriorityDegradationSharesWithLatecomer(t *testing.T) {
	// Two full-priority spinners started 100s apart must converge to a fair
	// share thanks to pcpu decay; without decay the first would starve the
	// second indefinitely or vice versa.
	h := newHost()
	h.Spawn(spinner(0))
	h.RunUntil(100)
	res := h.RunProcess(ProcSpec{Name: "late", Demand: math.Inf(1), WallLimit: 120})
	if res.Fraction < 0.4 || res.Fraction > 0.75 {
		t.Fatalf("latecomer fraction over 120s = %v, want ~0.5-0.7", res.Fraction)
	}
}

func TestRunQueueCountsOnlyRunnable(t *testing.T) {
	h := newHost()
	h.Spawn(ProcSpec{Name: "sleeper", Demand: math.Inf(1), WallLimit: 100,
		BurstCPU: 0.1, BurstSleep: 50})
	h.Spawn(spinner(0))
	h.RunUntil(10) // sleeper has burst-slept by now
	if rq := h.RunQueue(); rq != 1 {
		t.Fatalf("RunQueue = %d, want 1 (sleeper excluded)", rq)
	}
	if h.NumLive() != 2 {
		t.Fatalf("NumLive = %d, want 2", h.NumLive())
	}
}

func BenchmarkHostTick(b *testing.B) {
	h := newHost()
	for i := 0; i < 5; i++ {
		h.Spawn(ProcSpec{Name: "w", Demand: math.Inf(1), WallLimit: 1e9})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.step()
	}
}

func TestKernelProcessPreemptsEverything(t *testing.T) {
	h := newHost()
	// A duty-cycled kernel interrupt load (40%) against a full-priority
	// user process: the user process gets only the remaining 60%.
	h.Spawn(ProcSpec{Name: "irq", Kernel: true, SysFrac: 1,
		Demand: math.Inf(1), WallLimit: 7200, BurstCPU: 0.2, BurstSleep: 0.3})
	res := h.RunProcess(ProcSpec{Name: "user", Demand: math.Inf(1), WallLimit: 60})
	if res.Fraction < 0.5 || res.Fraction > 0.7 {
		t.Fatalf("user fraction vs 40%% kernel load = %v, want ~0.6", res.Fraction)
	}
	c := h.Counters()
	if c.Sys < 20 {
		t.Fatalf("kernel time accounted as sys = %v, want ~24", c.Sys)
	}
}
