package simos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any random mixture of processes, the accounting identities
// hold after any amount of simulated time:
//
//	user + nice + sys + idle == total == NumCPUs * wall
//	sum of per-process CPU time <= total busy time
//	load average >= 0
func TestRandomWorkloadInvariants(t *testing.T) {
	prop := func(seed int64, nProcsRaw, cpusRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.NumCPUs = int(cpusRaw%4) + 1
		h := New(cfg)

		nProcs := int(nProcsRaw%8) + 1
		pids := make([]PID, 0, nProcs)
		for i := 0; i < nProcs; i++ {
			spec := ProcSpec{
				Name:    "p",
				Nice:    int(rng.Int31n(20)),
				SysFrac: rng.Float64(),
			}
			switch rng.Intn(3) {
			case 0:
				spec.Demand = 1 + rng.Float64()*30
			case 1:
				spec.Demand = math.Inf(1)
				spec.WallLimit = 1 + rng.Float64()*60
			default:
				spec.Demand = math.Inf(1)
				spec.WallLimit = 1 + rng.Float64()*60
				spec.BurstCPU = 0.05 + rng.Float64()
				spec.BurstSleep = 0.05 + rng.Float64()*3
			}
			if rng.Intn(2) == 0 {
				pids = append(pids, h.Spawn(spec))
			} else {
				h.SubmitAt(rng.Float64()*30, spec)
			}
		}
		wall := 20 + rng.Float64()*60
		h.RunUntil(wall)
		if rng.Intn(2) == 0 && len(pids) > 0 {
			h.Kill(pids[rng.Intn(len(pids))])
			h.RunUntil(wall + 10)
			wall += 10
		}

		c := h.Counters()
		if math.Abs(c.User+c.Nice+c.Sys+c.Idle-c.Total) > 1e-6 {
			return false
		}
		wantTotal := float64(cfg.NumCPUs) * h.Now()
		if math.Abs(c.Total-wantTotal) > 0.1 {
			return false
		}
		if h.LoadAvg() < 0 {
			return false
		}
		// Per-process CPU never exceeds wall clock (one CPU per process).
		for _, pid := range pids {
			if res, ok := h.Lookup(pid); ok && res.CPUTime > h.Now()+1e-6 {
				return false
			}
			if res, _, ok := h.Exit(pid); ok && res.CPUTime > res.Wall+0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the simulator is deterministic — identical submissions produce
// identical counters and load averages.
func TestDeterminism(t *testing.T) {
	build := func() *Host {
		h := New(DefaultConfig())
		h.Spawn(ProcSpec{Name: "a", Demand: 12.3, SysFrac: 0.2})
		h.SubmitAt(7, ProcSpec{Name: "b", Nice: 5, Demand: math.Inf(1), WallLimit: 40,
			BurstCPU: 0.3, BurstSleep: 0.7})
		h.SubmitAt(19, ProcSpec{Name: "c", Demand: 5})
		h.RunUntil(60)
		return h
	}
	h1, h2 := build(), build()
	if h1.Counters() != h2.Counters() {
		t.Fatalf("counters diverged: %+v vs %+v", h1.Counters(), h2.Counters())
	}
	if h1.LoadAvg() != h2.LoadAvg() {
		t.Fatalf("load averages diverged: %v vs %v", h1.LoadAvg(), h2.LoadAvg())
	}
	if h1.RunQueue() != h2.RunQueue() {
		t.Fatalf("run queues diverged")
	}
}
