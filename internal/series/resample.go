package series

import (
	"errors"
	"math"
	"sort"
)

// ErrBadResample reports invalid resampling parameters.
var ErrBadResample = errors.New("series: resample parameters invalid")

// Resample returns the series linearly interpolated onto a regular grid
// t0, t0+dt, t0+2dt, ... covering [t0, tEnd]. Grid points before the first
// or after the last original point take the nearest endpoint value
// (constant extrapolation). Live monitoring produces slightly jittered
// timestamps (probe and GC pauses); the analyses assume regular spacing, and
// this is the bridge.
//
// The series must contain at least one point, dt must be positive, and
// tEnd must be >= t0.
func (s *Series) Resample(t0, dt, tEnd float64) (*Series, error) {
	if dt <= 0 || math.IsNaN(dt) || tEnd < t0 || s.Len() == 0 {
		return nil, ErrBadResample
	}
	out := New(s.Name, s.Unit)
	n := int(math.Floor((tEnd-t0)/dt + 1e-9))
	for i := 0; i <= n; i++ {
		t := t0 + float64(i)*dt
		if err := out.Append(t, s.interp(t)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// interp returns the linearly interpolated value at time t with constant
// extrapolation beyond the endpoints.
func (s *Series) interp(t float64) float64 {
	pts := s.Points
	if t <= pts[0].T {
		return pts[0].V
	}
	last := pts[len(pts)-1]
	if t >= last.T {
		return last.V
	}
	// First point with T >= t.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T >= t })
	a, b := pts[i-1], pts[i]
	if b.T == a.T {
		return b.V
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.V + frac*(b.V-a.V)
}

// GapStats reports the spacing regularity of a series: the median interval,
// the largest interval, and the number of gaps exceeding factor times the
// median. It is the diagnostic a caller consults before trusting the
// regular-grid analyses, and returns ok=false for series with fewer than
// two points.
func (s *Series) GapStats(factor float64) (median, max float64, gaps int, ok bool) {
	if s.Len() < 2 {
		return 0, 0, 0, false
	}
	if factor <= 1 {
		factor = 2
	}
	deltas := make([]float64, s.Len()-1)
	for i := 1; i < s.Len(); i++ {
		deltas[i-1] = s.Points[i].T - s.Points[i-1].T
	}
	sorted := append([]float64(nil), deltas...)
	sort.Float64s(sorted)
	median = sorted[len(sorted)/2]
	for _, d := range deltas {
		if d > max {
			max = d
		}
		if median > 0 && d > factor*median {
			gaps++
		}
	}
	return median, max, gaps, true
}
