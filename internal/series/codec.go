package series

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the series as CSV with a header line "t,value". Timestamps
// and values are formatted with full float64 round-trip precision so that
// ReadCSV(WriteCSV(s)) reproduces s exactly.
func (s *Series) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"t", "value"}); err != nil {
		return err
	}
	rec := make([]string, 2)
	for _, p := range s.Points {
		rec[0] = strconv.FormatFloat(p.T, 'g', -1, 64)
		rec[1] = strconv.FormatFloat(p.V, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a series written by WriteCSV. The header line is required.
func ReadCSV(r io.Reader, name string) (*Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("series: reading CSV header: %w", err)
	}
	if header[0] != "t" || header[1] != "value" {
		return nil, fmt.Errorf("series: unexpected CSV header %v", header)
	}
	s := New(name, "")
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, fmt.Errorf("series: reading CSV: %w", err)
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("series: bad timestamp %q: %w", rec[0], err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("series: bad value %q: %w", rec[1], err)
		}
		if err := s.Append(t, v); err != nil {
			return nil, err
		}
	}
}

// seriesJSON is the wire form of a Series.
type seriesJSON struct {
	Name   string       `json:"name"`
	Unit   string       `json:"unit,omitempty"`
	Points [][2]float64 `json:"points"`
}

// MarshalJSON encodes the series as {"name":..., "points":[[t,v],...]}.
func (s *Series) MarshalJSON() ([]byte, error) {
	js := seriesJSON{Name: s.Name, Unit: s.Unit, Points: make([][2]float64, len(s.Points))}
	for i, p := range s.Points {
		js.Points[i] = [2]float64{p.T, p.V}
	}
	return json.Marshal(js)
}

// UnmarshalJSON decodes the form produced by MarshalJSON.
func (s *Series) UnmarshalJSON(data []byte) error {
	var js seriesJSON
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	s.Name = js.Name
	s.Unit = js.Unit
	s.Points = make([]Point, len(js.Points))
	for i, tv := range js.Points {
		s.Points[i] = Point{T: tv[0], V: tv[1]}
	}
	return nil
}
