package series

// Ring is a fixed-capacity ring buffer of float64 values. It backs the
// sliding-window forecasters: once full, each Push evicts the oldest value.
// The zero value is not usable; create Rings with NewRing.
type Ring struct {
	buf   []float64
	start int // index of oldest element
	n     int // number of stored elements
}

// NewRing returns a ring buffer holding at most capacity values.
// It panics if capacity < 1.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic("series: NewRing capacity must be >= 1")
	}
	return &Ring{buf: make([]float64, capacity)}
}

// Push appends v, evicting the oldest value if the ring is full.
func (r *Ring) Push(v float64) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % len(r.buf)
}

// Len returns the number of stored values.
func (r *Ring) Len() int { return r.n }

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Full reports whether the ring has reached capacity.
func (r *Ring) Full() bool { return r.n == len(r.buf) }

// At returns the i-th stored value in insertion order (0 = oldest). It
// panics if i is out of range.
func (r *Ring) At(i int) float64 {
	if i < 0 || i >= r.n {
		panic("series: Ring.At out of range")
	}
	return r.buf[(r.start+i)%len(r.buf)]
}

// Last returns the most recently pushed value. ok is false when empty.
func (r *Ring) Last() (v float64, ok bool) {
	if r.n == 0 {
		return 0, false
	}
	return r.At(r.n - 1), true
}

// Values copies the stored values into dst in insertion order and returns
// the filled prefix. If dst is too small, a new slice is allocated. Passing a
// reused scratch slice avoids per-call allocation in forecaster hot paths.
func (r *Ring) Values(dst []float64) []float64 {
	if cap(dst) < r.n {
		dst = make([]float64, r.n)
	}
	dst = dst[:r.n]
	for i := 0; i < r.n; i++ {
		dst[i] = r.At(i)
	}
	return dst
}

// Tail copies the most recent k stored values (oldest first) into dst,
// allocating if needed. If k exceeds Len, all values are returned.
func (r *Ring) Tail(k int, dst []float64) []float64 {
	if k > r.n {
		k = r.n
	}
	if k < 0 {
		k = 0
	}
	if cap(dst) < k {
		dst = make([]float64, k)
	}
	dst = dst[:k]
	for i := 0; i < k; i++ {
		dst[i] = r.At(r.n - k + i)
	}
	return dst
}

// Reset empties the ring without releasing its storage.
func (r *Ring) Reset() { r.start, r.n = 0, 0 }
