package series

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResampleValidation(t *testing.T) {
	s := FromValues("a", 0, 1, []float64{1, 2})
	for _, c := range []struct{ t0, dt, tEnd float64 }{
		{0, 0, 10},
		{0, -1, 10},
		{10, 1, 0},
		{0, math.NaN(), 10},
	} {
		if _, err := s.Resample(c.t0, c.dt, c.tEnd); err == nil {
			t.Errorf("Resample(%v) accepted", c)
		}
	}
	empty := New("e", "")
	if _, err := empty.Resample(0, 1, 10); err == nil {
		t.Error("empty series accepted")
	}
}

func TestResampleIdentityOnRegularGrid(t *testing.T) {
	s := FromValues("a", 0, 10, []float64{1, 2, 3, 4})
	r, err := s.Resample(0, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	for i := range s.Points {
		if math.Abs(r.Points[i].V-s.Points[i].V) > 1e-12 {
			t.Fatalf("point %d: %v != %v", i, r.Points[i], s.Points[i])
		}
	}
}

func TestResampleInterpolates(t *testing.T) {
	s := FromValues("a", 0, 10, []float64{0, 10})
	r, err := s.Resample(0, 2.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2.5, 5, 7.5, 10}
	if r.Len() != len(want) {
		t.Fatalf("len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if math.Abs(r.Points[i].V-w) > 1e-12 {
			t.Fatalf("r[%d] = %v, want %v", i, r.Points[i].V, w)
		}
	}
}

func TestResampleExtrapolatesConstant(t *testing.T) {
	s := FromValues("a", 10, 10, []float64{5, 7})
	r, err := s.Resample(0, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.At(0).V != 5 || r.At(1).V != 5 { // t=0, 5 before first point
		t.Fatalf("left extrapolation: %v", r.Points)
	}
	if r.At(r.Len()-1).V != 7 { // t=30 after last point
		t.Fatalf("right extrapolation: %v", r.Points)
	}
}

func TestResampleDuplicateTimestamps(t *testing.T) {
	s := New("a", "")
	for _, p := range []Point{{0, 1}, {10, 2}, {10, 4}, {20, 6}} {
		if err := s.Append(p.T, p.V); err != nil {
			t.Fatal(err)
		}
	}
	r, err := s.Resample(0, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	// At the duplicated time the first matching point wins via search; any
	// of the duplicated values is acceptable, but no NaN/Inf.
	for _, p := range r.Points {
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			t.Fatalf("degenerate interpolation: %v", r.Points)
		}
	}
}

// Property: resampled values always lie within [min, max] of the source.
func TestResampleBounded(t *testing.T) {
	prop := func(raw []float64, dtRaw uint8) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e50 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := FromValues("p", 0, 7, vals)
		dt := float64(dtRaw%13) + 0.5
		r, err := s.Resample(-10, dt, 7*float64(len(vals))+10)
		if err != nil {
			return false
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, p := range r.Points {
			if p.V < lo-1e-9 || p.V > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGapStats(t *testing.T) {
	s := New("a", "")
	for _, p := range []Point{{0, 1}, {10, 1}, {20, 1}, {60, 1}, {70, 1}} {
		if err := s.Append(p.T, p.V); err != nil {
			t.Fatal(err)
		}
	}
	median, max, gaps, ok := s.GapStats(2)
	if !ok {
		t.Fatal("GapStats not ok")
	}
	if median != 10 || max != 40 || gaps != 1 {
		t.Fatalf("GapStats = %v %v %v", median, max, gaps)
	}
	// factor <= 1 defaults to 2.
	if _, _, g, _ := s.GapStats(0); g != 1 {
		t.Fatalf("default factor gaps = %d", g)
	}
	if _, _, _, ok := New("e", "").GapStats(2); ok {
		t.Fatal("GapStats ok on empty series")
	}
}
