package series

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks the trace reader never panics and only returns ordered
// series.
func FuzzReadCSV(f *testing.F) {
	for _, seed := range []string{
		"t,value\n1,0.5\n2,0.6\n",
		"t,value\n",
		"",
		"a,b\n1,2\n",
		"t,value\n1,0.5\n0.5,0.6\n",
		"t,value\nNaN,0.5\n",
		"t,value\n1e309,0\n",
		"t,value\n1,2,3\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, content string) {
		s, err := ReadCSV(strings.NewReader(content), "fuzz")
		if err != nil {
			return
		}
		for i := 1; i < s.Len(); i++ {
			if s.At(i).T < s.At(i-1).T {
				t.Fatalf("unordered series accepted from %q", content)
			}
		}
	})
}
