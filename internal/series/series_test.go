package series

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAppendOrdering(t *testing.T) {
	s := New("x", "")
	if err := s.Append(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 11); err != nil {
		t.Fatalf("equal timestamps should be allowed: %v", err)
	}
	if err := s.Append(0.5, 12); err == nil {
		t.Fatal("out-of-order append not rejected")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestFromValuesAndAccessors(t *testing.T) {
	s := FromValues("a", 100, 10, []float64{1, 2, 3})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	ts := s.Times()
	if ts[0] != 100 || ts[1] != 110 || ts[2] != 120 {
		t.Fatalf("Times = %v", ts)
	}
	vs := s.Values()
	if vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("Values = %v", vs)
	}
	p, ok := s.Last()
	if !ok || p.T != 120 || p.V != 3 {
		t.Fatalf("Last = %v %v", p, ok)
	}
	if got := s.At(1); got.V != 2 {
		t.Fatalf("At(1) = %v", got)
	}
	// Accessors must return copies.
	vs[0] = 99
	if s.At(0).V == 99 {
		t.Fatal("Values aliased internal storage")
	}
}

func TestLastEmpty(t *testing.T) {
	s := New("x", "")
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty should report !ok")
	}
}

func TestSlice(t *testing.T) {
	s := FromValues("a", 0, 1, []float64{0, 1, 2, 3, 4})
	sub := s.Slice(1, 3.5)
	if sub.Len() != 3 || sub.At(0).V != 1 || sub.At(2).V != 3 {
		t.Fatalf("Slice = %+v", sub.Points)
	}
	if s.Slice(10, 20).Len() != 0 {
		t.Fatal("out-of-range slice should be empty")
	}
}

func TestLatestBefore(t *testing.T) {
	s := FromValues("a", 0, 10, []float64{5, 6, 7})
	p, ok := s.LatestBefore(15)
	if !ok || p.V != 6 {
		t.Fatalf("LatestBefore(15) = %v %v", p, ok)
	}
	// Strictly before: a point at exactly t does not count.
	p, ok = s.LatestBefore(10)
	if !ok || p.V != 5 {
		t.Fatalf("LatestBefore(10) = %v %v", p, ok)
	}
	if _, ok := s.LatestBefore(0); ok {
		t.Fatal("LatestBefore before first point should fail")
	}
}

func TestAggregateCount(t *testing.T) {
	s := FromValues("a", 0, 10, []float64{1, 3, 5, 7, 100})
	agg, err := s.AggregateCount(2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != 2 {
		t.Fatalf("agg.Len = %d", agg.Len())
	}
	if agg.At(0).V != 2 || agg.At(0).T != 10 {
		t.Fatalf("agg[0] = %v", agg.At(0))
	}
	if agg.At(1).V != 6 || agg.At(1).T != 30 {
		t.Fatalf("agg[1] = %v", agg.At(1))
	}
	if _, err := s.AggregateCount(0); err == nil {
		t.Fatal("m=0 not rejected")
	}
	cp, _ := s.AggregateCount(1)
	cp.Points[0].V = 42
	if s.At(0).V == 42 {
		t.Fatal("AggregateCount(1) aliased the source")
	}
}

func TestAggregateWindow(t *testing.T) {
	s := New("a", "")
	for _, p := range []Point{{0, 1}, {5, 3}, {12, 10}, {31, 100}} {
		if err := s.Append(p.T, p.V); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := s.AggregateWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	// Window [0,10): mean 2 at t=10; [10,20): 10 at t=20; [20,30) empty and
	// skipped; [30,40): 100 at t=40.
	if agg.Len() != 3 {
		t.Fatalf("agg = %+v", agg.Points)
	}
	if agg.At(0).V != 2 || agg.At(0).T != 10 {
		t.Fatalf("agg[0] = %v", agg.At(0))
	}
	if agg.At(1).V != 10 || agg.At(1).T != 20 {
		t.Fatalf("agg[1] = %v", agg.At(1))
	}
	if agg.At(2).V != 100 || agg.At(2).T != 40 {
		t.Fatalf("agg[2] = %v", agg.At(2))
	}
	if _, err := s.AggregateWindow(0); err == nil {
		t.Fatal("zero width not rejected")
	}
	empty := New("e", "")
	agg, err = empty.AggregateWindow(5)
	if err != nil || agg.Len() != 0 {
		t.Fatalf("empty aggregate = %v %v", agg, err)
	}
}

func TestMeanOver(t *testing.T) {
	s := FromValues("a", 0, 1, []float64{2, 4, 6, 8})
	m, n := s.MeanOver(1, 3)
	if n != 2 || m != 5 {
		t.Fatalf("MeanOver = %v, %d", m, n)
	}
	if _, n := s.MeanOver(100, 200); n != 0 {
		t.Fatal("MeanOver empty range should report n=0")
	}
}

// Property: AggregateCount preserves the mean over complete blocks.
func TestAggregateCountPreservesMean(t *testing.T) {
	prop := func(vals []float64, mRaw uint8) bool {
		m := int(mRaw%8) + 1
		n := (len(vals) / m) * m
		clean := make([]float64, 0, n)
		for _, v := range vals[:n] {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e50 {
				v = 0
			}
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		s := FromValues("p", 0, 1, clean)
		agg, err := s.AggregateCount(m)
		if err != nil {
			return false
		}
		var sum, aggSum float64
		for _, v := range clean {
			sum += v
		}
		for _, p := range agg.Points {
			aggSum += p.V * float64(m)
		}
		return math.Abs(sum-aggSum) <= 1e-6*(1+math.Abs(sum))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
