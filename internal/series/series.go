// Package series provides the time-series containers used by the sensors and
// forecasters: timestamped measurement series, fixed-capacity ring buffers
// for sliding windows, time-based aggregation (the X^(m) block means of the
// paper's Section 3.2), and CSV/JSON persistence for traces.
//
// Timestamps are float64 seconds on whatever clock produced the series —
// virtual seconds for the simulator, Unix seconds for live monitoring. The
// package never interprets absolute time; only differences matter.
package series

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is one timestamped measurement.
type Point struct {
	T float64 // seconds
	V float64 // measured value (e.g. fraction of CPU available, in [0,1])
}

// Series is an append-only sequence of Points ordered by time. The zero
// value is an empty, usable series.
type Series struct {
	Name   string
	Unit   string
	Points []Point
}

// New returns an empty series with the given name and unit.
func New(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// FromValues builds a series from evenly spaced values: point i carries time
// t0 + i*dt.
func FromValues(name string, t0, dt float64, values []float64) *Series {
	s := New(name, "")
	s.Points = make([]Point, len(values))
	for i, v := range values {
		s.Points[i] = Point{T: t0 + float64(i)*dt, V: v}
	}
	return s
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Append adds a point. It returns an error if t is earlier than the last
// point's time (series are strictly time-ordered; equal times are allowed so
// that instantaneous re-measurements are representable).
func (s *Series) Append(t, v float64) error {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		return fmt.Errorf("series: out-of-order append at t=%v (last %v)", t, s.Points[n-1].T)
	}
	s.Points = append(s.Points, Point{T: t, V: v})
	return nil
}

// Values returns the measurement values in time order as a fresh slice.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Times returns the timestamps in order as a fresh slice.
func (s *Series) Times() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.T
	}
	return out
}

// Last returns the most recent point. ok is false for an empty series.
func (s *Series) Last() (p Point, ok bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// At returns the i-th point (0-based). It panics if i is out of range, like
// a slice index.
func (s *Series) At(i int) Point { return s.Points[i] }

// Slice returns a new Series holding the points with t in [from, to). The
// underlying points are copied.
func (s *Series) Slice(from, to float64) *Series {
	lo := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= from })
	hi := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= to })
	out := New(s.Name, s.Unit)
	out.Points = append([]Point(nil), s.Points[lo:hi]...)
	return out
}

// LatestBefore returns the last point with time strictly before t, mirroring
// the paper's rule of comparing the test process to "the measurement taken
// most immediately before the test process executes". ok is false when no
// such point exists.
func (s *Series) LatestBefore(t float64) (Point, bool) {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= t })
	if i == 0 {
		return Point{}, false
	}
	return s.Points[i-1], true
}

// ErrBadAggregation reports an invalid aggregation parameter.
var ErrBadAggregation = errors.New("series: aggregation parameters invalid")

// AggregateCount returns the series of non-overlapping m-point block means
// (the aggregated series X^(m) of Section 3.2). Each aggregated point is
// stamped with the time of the last point of its block. A trailing partial
// block is discarded. m must be >= 1.
func (s *Series) AggregateCount(m int) (*Series, error) {
	if m < 1 {
		return nil, ErrBadAggregation
	}
	out := New(s.Name, s.Unit)
	if m == 1 {
		out.Points = append([]Point(nil), s.Points...)
		return out, nil
	}
	nb := len(s.Points) / m
	out.Points = make([]Point, nb)
	for b := 0; b < nb; b++ {
		var sum float64
		for i := b * m; i < (b+1)*m; i++ {
			sum += s.Points[i].V
		}
		out.Points[b] = Point{
			T: s.Points[(b+1)*m-1].T,
			V: sum / float64(m),
		}
	}
	return out, nil
}

// AggregateWindow returns the series of means over fixed wall-clock windows
// of the given width in seconds, anchored at the first point's time. Windows
// containing no points are skipped. width must be positive.
func (s *Series) AggregateWindow(width float64) (*Series, error) {
	if width <= 0 || math.IsNaN(width) {
		return nil, ErrBadAggregation
	}
	out := New(s.Name, s.Unit)
	if len(s.Points) == 0 {
		return out, nil
	}
	start := s.Points[0].T
	var sum float64
	var n int
	win := 0
	flush := func(endT float64) {
		if n > 0 {
			out.Points = append(out.Points, Point{T: endT, V: sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for _, p := range s.Points {
		for p.T >= start+float64(win+1)*width {
			flush(start + float64(win+1)*width)
			win++
		}
		sum += p.V
		n++
	}
	flush(start + float64(win+1)*width)
	return out, nil
}

// MeanOver returns the mean value of points with t in [from, to), and the
// number of points averaged.
func (s *Series) MeanOver(from, to float64) (mean float64, n int) {
	lo := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= from })
	hi := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= to })
	var sum float64
	for _, p := range s.Points[lo:hi] {
		sum += p.V
	}
	n = hi - lo
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}
