package series

import "testing"

func TestPointRingGrowsToBoundThenEvicts(t *testing.T) {
	r := NewPointRing(5)
	if r.Cap() != 5 || r.Len() != 0 {
		t.Fatalf("fresh ring: cap %d len %d", r.Cap(), r.Len())
	}
	if _, ok := r.Last(); ok {
		t.Fatal("Last on empty ring reported ok")
	}
	for i := 0; i < 5; i++ {
		if evicted := r.Push(Point{T: float64(i), V: float64(i) / 10}); evicted {
			t.Fatalf("push %d evicted below capacity", i)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	for i := 5; i < 12; i++ {
		if evicted := r.Push(Point{T: float64(i), V: float64(i) / 10}); !evicted {
			t.Fatalf("push %d at capacity did not evict", i)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len after wraps = %d, want 5", r.Len())
	}
	// The retained window is the last 5 pushes, in time order.
	for i := 0; i < 5; i++ {
		want := float64(7 + i)
		if got := r.At(i).T; got != want {
			t.Fatalf("At(%d).T = %v, want %v", i, got, want)
		}
	}
	if last, ok := r.Last(); !ok || last.T != 11 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
}

func TestPointRingLazyAllocation(t *testing.T) {
	// A huge capacity bound must not allocate a huge array up front.
	r := NewPointRing(1 << 20)
	r.Push(Point{T: 1})
	if len(r.buf) > pointRingMinAlloc {
		t.Fatalf("first push allocated %d slots", len(r.buf))
	}
	for i := 2; i <= 1000; i++ {
		r.Push(Point{T: float64(i)})
	}
	if r.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", r.Len())
	}
	if len(r.buf) >= 1<<20 {
		t.Fatalf("backing array jumped to the bound (%d slots) for 1000 points", len(r.buf))
	}
	for i := 0; i < 1000; i++ {
		if got := r.At(i).T; got != float64(i+1) {
			t.Fatalf("At(%d).T = %v after growth, want %v", i, got, i+1)
		}
	}
}

func TestPointRingSearchT(t *testing.T) {
	r := NewPointRing(4)
	for i := 0; i < 7; i++ { // retained window: T = 3, 4, 5, 6 (start != 0)
		r.Push(Point{T: float64(i)})
	}
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {3, 0}, {3.5, 1}, {4, 1}, {6, 3}, {6.5, 4}, {100, 4},
	}
	for _, c := range cases {
		if got := r.SearchT(c.t); got != c.want {
			t.Errorf("SearchT(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestPointRingReset(t *testing.T) {
	r := NewPointRing(3)
	for i := 0; i < 5; i++ {
		r.Push(Point{T: float64(i)})
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	r.Push(Point{T: 9})
	if r.Len() != 1 || r.At(0).T != 9 {
		t.Fatalf("ring unusable after Reset: len %d", r.Len())
	}
}

func TestPointRingAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	NewPointRing(2).At(0)
}

func TestNewPointRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewPointRing(0)
}
