package series

import (
	"math/rand"
	"sort"
	"testing"
)

// refMedian / refQuantile / refTrimmed replicate the stats package's
// copy-and-sort arithmetic so the equivalence checks below can assert exact
// (bitwise) agreement without importing stats (which would cycle).

func refSorted(xs []float64) []float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	return tmp
}

func refMedian(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	tmp := refSorted(xs)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

func refKahanMean(xs []float64) float64 {
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs))
}

func refQuantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	tmp := refSorted(xs)
	if n == 1 {
		return tmp[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if frac == 0 {
		return tmp[lo]
	}
	return tmp[lo]*(1-frac) + tmp[lo+1]*frac
}

func refTrimmed(xs []float64, frac float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if frac <= 0 {
		return refKahanMean(xs)
	}
	if frac >= 0.5 {
		return refMedian(xs)
	}
	tmp := refSorted(xs)
	k := int(float64(n) * frac)
	if 2*k >= n {
		return refMedian(xs)
	}
	return refKahanMean(tmp[k : n-k])
}

func TestOrderWindowMatchesSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, capacity := range []int{1, 2, 3, 5, 8, 50, 200} {
		w := NewOrderWindow(capacity)
		window := make([]float64, 0, capacity)
		for i := 0; i < 3000; i++ {
			var v float64
			switch i % 5 {
			case 0:
				v = float64(rng.Intn(4)) // force duplicates
			default:
				v = rng.NormFloat64() * 100
			}
			w.Push(v)
			window = append(window, v)
			if len(window) > capacity {
				window = window[1:]
			}
			if w.Len() != len(window) {
				t.Fatalf("cap %d step %d: Len = %d, want %d", capacity, i, w.Len(), len(window))
			}
			sorted := refSorted(window)
			for k, want := range sorted {
				if got := w.Kth(k); got != want {
					t.Fatalf("cap %d step %d: Kth(%d) = %v, want %v", capacity, i, k, got, want)
				}
			}
			if got, want := w.Median(), refMedian(window); got != want {
				t.Fatalf("cap %d step %d: Median = %v, want %v", capacity, i, got, want)
			}
			for _, q := range []float64{0, 0.05, 0.25, 0.5, 0.77, 0.95, 1} {
				if got, want := w.Quantile(q), refQuantile(window, q); got != want {
					t.Fatalf("cap %d step %d: Quantile(%v) = %v, want %v", capacity, i, q, got, want)
				}
			}
			for _, f := range []float64{0, 0.1, 0.2, 0.3, 0.49} {
				if got, want := w.TrimmedMean(f), refTrimmed(window, f); got != want {
					t.Fatalf("cap %d step %d: TrimmedMean(%v) = %v, want %v", capacity, i, f, got, want)
				}
			}
		}
	}
}

func TestOrderWindowEmptyAndClamps(t *testing.T) {
	w := NewOrderWindow(4)
	if w.Median() != 0 || w.Quantile(0.5) != 0 || w.TrimmedMean(0.2) != 0 {
		t.Fatal("empty window should report 0 like the stats package")
	}
	w.Push(7)
	if w.Quantile(-3) != 7 || w.Quantile(9) != 7 {
		t.Fatal("Quantile should clamp q into [0,1]")
	}
	if w.TrimmedMean(0.9) != 7 {
		t.Fatal("TrimmedMean with frac >= 0.5 should fall back to the median")
	}
}

func TestOrderWindowReset(t *testing.T) {
	w := NewOrderWindow(3)
	for _, v := range []float64{5, 1, 9, 2} {
		w.Push(v)
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	for _, v := range []float64{4, 8} {
		w.Push(v)
	}
	if got := w.Median(); got != 6 {
		t.Fatalf("Median after Reset+Push = %v, want 6", got)
	}
}

func TestOrderWindowPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero capacity": func() { NewOrderWindow(0) },
		"Kth range":     func() { NewOrderWindow(2).Kth(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// The whole point of OrderWindow: a full window must run without touching
// the allocator.
func TestOrderWindowSteadyStateAllocs(t *testing.T) {
	w := NewOrderWindow(50)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		w.Push(rng.Float64())
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		w.Push(float64(i%97) * 0.125)
		_ = w.Median()
		_ = w.Quantile(0.9)
		_ = w.TrimmedMean(0.2)
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkOrderWindowPushMedian50(b *testing.B) {
	w := NewOrderWindow(50)
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	for _, v := range vals[:64] {
		w.Push(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Push(vals[i%len(vals)])
		_ = w.Median()
	}
}
