package series

import "sort"

// PointRing is a fixed-capacity ring buffer of timestamped Points ordered by
// time — the storage behind the memory server's circular per-series files.
// Once full, each Push overwrites the oldest point in place, so steady-state
// eviction is O(1) instead of the O(capacity) slice copy a plain Series
// needs. The backing array grows geometrically up to the capacity bound, so
// short series stay small.
//
// PointRing does not enforce time ordering; callers must push points with
// non-decreasing timestamps (the memory server skips out-of-order points
// before pushing). SearchT relies on that ordering for binary search.
//
// The zero value is not usable; create PointRings with NewPointRing.
type PointRing struct {
	bound int     // capacity bound
	buf   []Point // len(buf) <= bound; grows geometrically until bound
	start int     // index of the oldest point
	n     int     // number of stored points
}

// pointRingMinAlloc is the smallest backing array allocated on first push.
const pointRingMinAlloc = 64

// NewPointRing returns a ring holding at most capacity points. It panics if
// capacity < 1.
func NewPointRing(capacity int) *PointRing {
	if capacity < 1 {
		panic("series: NewPointRing capacity must be >= 1")
	}
	return &PointRing{bound: capacity}
}

// Len returns the number of stored points.
func (r *PointRing) Len() int { return r.n }

// Cap returns the ring's capacity bound.
func (r *PointRing) Cap() int { return r.bound }

// Push appends p, evicting the oldest point when the ring is at capacity.
// It reports whether an eviction happened.
func (r *PointRing) Push(p Point) (evicted bool) {
	if r.n == len(r.buf) && r.n < r.bound {
		r.grow()
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = p
		r.n++
		return false
	}
	r.buf[r.start] = p
	r.start = (r.start + 1) % len(r.buf)
	return true
}

// grow enlarges the backing array geometrically (bounded by the capacity),
// linearizing the stored points so index arithmetic stays simple.
func (r *PointRing) grow() {
	size := 2 * len(r.buf)
	if size < pointRingMinAlloc {
		size = pointRingMinAlloc
	}
	if size > r.bound {
		size = r.bound
	}
	buf := make([]Point, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.at(i)
	}
	r.buf, r.start = buf, 0
}

// at returns the i-th stored point without bounds checking.
func (r *PointRing) at(i int) Point { return r.buf[(r.start+i)%len(r.buf)] }

// At returns the i-th stored point in time order (0 = oldest). It panics if
// i is out of range.
func (r *PointRing) At(i int) Point {
	if i < 0 || i >= r.n {
		panic("series: PointRing.At out of range")
	}
	return r.at(i)
}

// Last returns the most recently pushed point. ok is false when empty.
func (r *PointRing) Last() (p Point, ok bool) {
	if r.n == 0 {
		return Point{}, false
	}
	return r.at(r.n - 1), true
}

// SearchT returns the smallest index whose point has T >= t (Len when no
// such point exists) — the ring analogue of sort.Search over timestamps.
func (r *PointRing) SearchT(t float64) int {
	return sort.Search(r.n, func(i int) bool { return r.at(i).T >= t })
}

// Reset empties the ring without releasing its storage.
func (r *PointRing) Reset() { r.start, r.n = 0, 0 }
