package series

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCSVRoundTrip(t *testing.T) {
	s := FromValues("trace", 0, 10, []float64{0.5, 0.25, 1, 0.123456789012345})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "trace")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round trip len %d != %d", back.Len(), s.Len())
	}
	for i := range s.Points {
		if back.Points[i] != s.Points[i] {
			t.Fatalf("point %d: %v != %v", i, back.Points[i], s.Points[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                    // no header
		"a,b\n1,2\n",          // wrong header
		"t,value\nxx,2\n",     // bad timestamp
		"t,value\n1,yy\n",     // bad value
		"t,value\n5,1\n1,2\n", // out of order
		"t,value\n1,2,3\n",    // wrong field count
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "x"); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", c)
		}
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("t,value\n"), "empty")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Name != "empty" {
		t.Fatalf("got %+v", s)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := FromValues("host1", 100, 10, []float64{0.9, 0.8})
	s.Unit = "fraction"
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Series
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "host1" || back.Unit != "fraction" || back.Len() != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Points[1] != s.Points[1] {
		t.Fatalf("points differ: %v vs %v", back.Points[1], s.Points[1])
	}
}

func TestJSONUnmarshalBad(t *testing.T) {
	var s Series
	if err := json.Unmarshal([]byte(`{"points": "nope"}`), &s); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

// Property: CSV round-trip is the identity on series with finite values.
func TestCSVRoundTripProperty(t *testing.T) {
	prop := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			clean = append(clean, v)
		}
		s := FromValues("p", 0, 1, clean)
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf, "p")
		if err != nil || back.Len() != s.Len() {
			return false
		}
		for i := range s.Points {
			if back.Points[i] != s.Points[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
