package series_test

import (
	"bytes"
	"fmt"

	"nwscpu/internal/series"
)

func ExampleSeries_AggregateCount() {
	s := series.FromValues("trace", 0, 10, []float64{0.2, 0.4, 0.6, 0.8})
	agg, _ := s.AggregateCount(2)
	for _, p := range agg.Points {
		fmt.Printf("t=%.0f v=%.1f\n", p.T, p.V)
	}
	// Output:
	// t=10 v=0.3
	// t=30 v=0.7
}

func ExampleSeries_WriteCSV() {
	s := series.FromValues("trace", 0, 10, []float64{0.5})
	var buf bytes.Buffer
	_ = s.WriteCSV(&buf)
	fmt.Print(buf.String())
	// Output:
	// t,value
	// 0,0.5
}

func ExampleSeries_Resample() {
	s := series.FromValues("jittery", 0, 10, []float64{0, 1})
	r, _ := s.Resample(0, 5, 10)
	fmt.Println(r.Values())
	// Output: [0 0.5 1]
}
