package series

import (
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || r.Cap() != 3 || r.Full() {
		t.Fatalf("fresh ring: len=%d cap=%d full=%v", r.Len(), r.Cap(), r.Full())
	}
	r.Push(1)
	r.Push(2)
	if v, ok := r.Last(); !ok || v != 2 {
		t.Fatalf("Last = %v %v", v, ok)
	}
	r.Push(3)
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	r.Push(4) // evicts 1
	got := r.Values(nil)
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
	if r.At(0) != 2 || r.At(2) != 4 {
		t.Fatalf("At: %v %v", r.At(0), r.At(2))
	}
}

func TestRingTail(t *testing.T) {
	r := NewRing(5)
	for i := 1; i <= 7; i++ {
		r.Push(float64(i))
	}
	tail := r.Tail(3, nil)
	want := []float64{5, 6, 7}
	for i := range want {
		if tail[i] != want[i] {
			t.Fatalf("Tail = %v, want %v", tail, want)
		}
	}
	if got := r.Tail(100, nil); len(got) != 5 {
		t.Fatalf("Tail(100) len = %d", len(got))
	}
	if got := r.Tail(-1, nil); len(got) != 0 {
		t.Fatalf("Tail(-1) len = %d", len(got))
	}
}

func TestRingValuesReusesBuffer(t *testing.T) {
	r := NewRing(4)
	r.Push(1)
	r.Push(2)
	scratch := make([]float64, 0, 8)
	out := r.Values(scratch)
	if &out[0] != &scratch[:1][0] {
		t.Fatal("Values did not reuse provided buffer")
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	r.Push(1)
	r.Push(2)
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	if _, ok := r.Last(); ok {
		t.Fatal("Last after Reset should fail")
	}
	r.Push(9)
	if v, _ := r.Last(); v != 9 {
		t.Fatal("ring unusable after Reset")
	}
}

func TestRingPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewRing(0) did not panic")
			}
		}()
		NewRing(0)
	}()
	r := NewRing(2)
	r.Push(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("At out of range did not panic")
			}
		}()
		r.At(1)
	}()
}

// Property: after any push sequence, Values returns the last min(n, cap)
// pushed values in order.
func TestRingMatchesReference(t *testing.T) {
	prop := func(vals []float64, capRaw uint8) bool {
		capacity := int(capRaw%10) + 1
		r := NewRing(capacity)
		for _, v := range vals {
			r.Push(v)
		}
		keep := len(vals)
		if keep > capacity {
			keep = capacity
		}
		want := vals[len(vals)-keep:]
		got := r.Values(nil)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] && !(got[i] != got[i] && want[i] != want[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
