package series

import "sort"

// LatestAtOrBefore returns the last point with time <= t. ok is false when
// no such point exists. This is the lookup the error analysis uses: the
// paper compares each test-process observation against "the measurement
// taken most immediately before the test process executes", and that
// measurement is taken in the same sensing epoch the test starts in.
func (s *Series) LatestAtOrBefore(t float64) (Point, bool) {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return Point{}, false
	}
	return s.Points[i-1], true
}
