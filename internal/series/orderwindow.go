package series

import "math"

// OrderWindow is a sliding window over a scalar series that serves order
// statistics incrementally: Push is O(log w), Median/Kth/Quantile are
// O(log w), and the alpha-trimmed mean is O(trimmed span + log w) — all with
// zero steady-state allocations. It replaces the copy-and-sort pattern
// (O(w log w) time and one allocation per query) in the forecaster hot path.
//
// Internally it pairs an arrival-order Ring (which value to evict next) with
// an array-backed treap keyed by value and augmented with subtree sizes.
// Nodes are preallocated and recycled through a free list, so a window at
// steady state never touches the allocator.
//
// Median, Quantile and TrimmedMean are bit-compatible with stats.Median,
// stats.Quantile and stats.TrimmedMean applied to the window's contents:
// they select the same order statistics and combine them with the same
// floating-point operations (including Kahan summation over ascending order
// for the trimmed mean), so swapping a sorted-copy implementation for an
// OrderWindow changes no forecast bit. NaN values are not supported (they
// have no total order); availability series are finite by construction.
//
// The zero value is not usable; create OrderWindows with NewOrderWindow.
type OrderWindow struct {
	ring  *Ring // arrival order: oldest value = next eviction
	nodes []owNode
	root  int32
	free  int32  // head of the free list, linked through owNode.left
	rng   uint64 // xorshift64 state for treap priorities (deterministic)
}

type owNode struct {
	val         float64
	left, right int32
	size        int32
	prio        uint32
}

// NewOrderWindow returns a window holding at most capacity values.
// It panics if capacity < 1.
func NewOrderWindow(capacity int) *OrderWindow {
	if capacity < 1 {
		panic("series: NewOrderWindow capacity must be >= 1")
	}
	w := &OrderWindow{
		ring:  NewRing(capacity),
		nodes: make([]owNode, capacity),
		root:  -1,
		rng:   0x9E3779B97F4A7C15, // golden-ratio seed; any nonzero works
	}
	w.rebuildFreeList()
	return w
}

func (w *OrderWindow) rebuildFreeList() {
	for i := range w.nodes {
		w.nodes[i].left = int32(i) + 1
	}
	w.nodes[len(w.nodes)-1].left = -1
	w.free = 0
}

func (w *OrderWindow) nextPrio() uint32 {
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	return uint32(w.rng >> 32)
}

func (w *OrderWindow) allocNode(v float64) int32 {
	idx := w.free
	w.free = w.nodes[idx].left
	w.nodes[idx] = owNode{val: v, left: -1, right: -1, size: 1, prio: w.nextPrio()}
	return idx
}

func (w *OrderWindow) freeNode(h int32) {
	w.nodes[h].left = w.free
	w.free = h
}

func (w *OrderWindow) size(h int32) int32 {
	if h < 0 {
		return 0
	}
	return w.nodes[h].size
}

func (w *OrderWindow) update(h int32) {
	nd := &w.nodes[h]
	nd.size = 1 + w.size(nd.left) + w.size(nd.right)
}

func (w *OrderWindow) rotRight(h int32) int32 {
	l := w.nodes[h].left
	w.nodes[h].left = w.nodes[l].right
	w.nodes[l].right = h
	w.update(h)
	w.update(l)
	return l
}

func (w *OrderWindow) rotLeft(h int32) int32 {
	r := w.nodes[h].right
	w.nodes[h].right = w.nodes[r].left
	w.nodes[r].left = h
	w.update(h)
	w.update(r)
	return r
}

func (w *OrderWindow) insert(h, idx int32) int32 {
	if h < 0 {
		return idx
	}
	if w.nodes[idx].val < w.nodes[h].val {
		w.nodes[h].left = w.insert(w.nodes[h].left, idx)
		if w.nodes[w.nodes[h].left].prio < w.nodes[h].prio {
			h = w.rotRight(h)
		}
	} else {
		w.nodes[h].right = w.insert(w.nodes[h].right, idx)
		if w.nodes[w.nodes[h].right].prio < w.nodes[h].prio {
			h = w.rotLeft(h)
		}
	}
	w.update(h)
	return h
}

// delete removes one node holding v (duplicates are interchangeable).
func (w *OrderWindow) delete(h int32, v float64) int32 {
	if h < 0 {
		panic("series: OrderWindow evicting a value it does not hold")
	}
	nd := &w.nodes[h]
	switch {
	case v < nd.val:
		nd.left = w.delete(nd.left, v)
	case v > nd.val:
		nd.right = w.delete(nd.right, v)
	default:
		if nd.left < 0 {
			r := nd.right
			w.freeNode(h)
			return r
		}
		if nd.right < 0 {
			l := nd.left
			w.freeNode(h)
			return l
		}
		if w.nodes[nd.left].prio < w.nodes[nd.right].prio {
			h = w.rotRight(h)
			w.nodes[h].right = w.delete(w.nodes[h].right, v)
		} else {
			h = w.rotLeft(h)
			w.nodes[h].left = w.delete(w.nodes[h].left, v)
		}
	}
	w.update(h)
	return h
}

// Push appends v, evicting the oldest value if the window is full.
func (w *OrderWindow) Push(v float64) {
	if w.ring.Full() {
		w.root = w.delete(w.root, w.ring.At(0))
	}
	w.ring.Push(v)
	w.root = w.insert(w.root, w.allocNode(v))
}

// Len returns the number of stored values.
func (w *OrderWindow) Len() int { return w.ring.Len() }

// Cap returns the window's capacity.
func (w *OrderWindow) Cap() int { return w.ring.Cap() }

// Full reports whether the window has reached capacity.
func (w *OrderWindow) Full() bool { return w.ring.Full() }

// At returns the i-th stored value in arrival order (0 = oldest).
func (w *OrderWindow) At(i int) float64 { return w.ring.At(i) }

// Kth returns the i-th smallest stored value (0-based). It panics if i is
// out of range.
func (w *OrderWindow) Kth(i int) float64 {
	if i < 0 || i >= w.Len() {
		panic("series: OrderWindow.Kth out of range")
	}
	h := w.root
	for {
		ls := int(w.size(w.nodes[h].left))
		switch {
		case i < ls:
			h = w.nodes[h].left
		case i == ls:
			return w.nodes[h].val
		default:
			i -= ls + 1
			h = w.nodes[h].right
		}
	}
}

// Median returns the median of the stored values, or 0 when empty
// (matching stats.Median).
func (w *OrderWindow) Median() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return w.Kth(n / 2)
	}
	return (w.Kth(n/2-1) + w.Kth(n/2)) / 2
}

// Quantile returns the q-quantile of the stored values using linear
// interpolation between order statistics (type-7, matching stats.Quantile).
// It returns 0 when empty and clamps q into [0,1].
func (w *OrderWindow) Quantile(q float64) float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if n == 1 {
		return w.Kth(0)
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return w.Kth(lo)
	}
	frac := pos - float64(lo)
	return w.Kth(lo)*(1-frac) + w.Kth(hi)*frac
}

// TrimmedMean returns the mean of the stored values after discarding the
// lowest and highest frac fraction of the sorted window, matching
// stats.TrimmedMean bit for bit: the surviving order statistics are summed
// with Kahan compensation in ascending order, exactly as stats.Mean does
// over a sorted copy.
func (w *OrderWindow) TrimmedMean(frac float64) float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	if frac <= 0 {
		return w.arrivalMean()
	}
	if frac >= 0.5 {
		return w.Median()
	}
	k := int(float64(n) * frac)
	if 2*k >= n {
		return w.Median()
	}
	var acc kahanSum
	w.rankRangeSum(w.root, 0, k, n-k, &acc)
	return acc.sum / float64(n-2*k)
}

// arrivalMean is stats.Mean over the window in arrival order (the frac <= 0
// branch of stats.TrimmedMean averages the unsorted sample).
func (w *OrderWindow) arrivalMean() float64 {
	n := w.Len()
	var acc kahanSum
	for i := 0; i < n; i++ {
		acc.add(w.ring.At(i))
	}
	return acc.sum / float64(n)
}

// kahanSum replicates the compensated loop of stats.Sum.
type kahanSum struct{ sum, c float64 }

func (k *kahanSum) add(x float64) {
	y := x - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// rankRangeSum adds the order statistics with ranks in [lo, hi) to acc in
// ascending order. offset is the rank of the subtree's smallest element.
func (w *OrderWindow) rankRangeSum(h int32, offset, lo, hi int, acc *kahanSum) {
	if h < 0 {
		return
	}
	nd := &w.nodes[h]
	rank := offset + int(w.size(nd.left))
	if lo < rank {
		w.rankRangeSum(nd.left, offset, lo, hi, acc)
	}
	if rank >= lo && rank < hi {
		acc.add(nd.val)
	}
	if hi > rank+1 {
		w.rankRangeSum(nd.right, rank+1, lo, hi, acc)
	}
}

// Reset empties the window without releasing its storage.
func (w *OrderWindow) Reset() {
	w.ring.Reset()
	w.root = -1
	w.rebuildFreeList()
}
