package netsensor

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"nwscpu/internal/forecast"
)

func startReflector(t *testing.T) string {
	t.Helper()
	r := NewReflector()
	addr, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return addr
}

func TestLatencySensor(t *testing.T) {
	addr := startReflector(t)
	s := NewLatencySensor(addr, 4, time.Second)
	defer s.Close()
	for i := 0; i < 10; i++ {
		rtt, err := s.Measure()
		if err != nil {
			t.Fatal(err)
		}
		if rtt <= 0 || rtt > 0.5 {
			t.Fatalf("loopback RTT = %v s, implausible", rtt)
		}
	}
	if s.Name() != "net_latency" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestLatencySensorPayloadClamping(t *testing.T) {
	addr := startReflector(t)
	for _, n := range []int{-5, 0, 1 << 30} {
		s := NewLatencySensor(addr, n, time.Second)
		if len(s.payload) < 1 || len(s.payload) > 64<<10 {
			t.Fatalf("payload size %d not clamped: %d", n, len(s.payload))
		}
		if _, err := s.Measure(); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
}

func TestBandwidthSensor(t *testing.T) {
	addr := startReflector(t)
	s := NewBandwidthSensor(addr, 256<<10, 5*time.Second)
	defer s.Close()
	for i := 0; i < 5; i++ {
		bw, err := s.Measure()
		if err != nil {
			t.Fatal(err)
		}
		// Loopback should move far more than 1 MB/s.
		if bw < 1<<20 {
			t.Fatalf("loopback bandwidth = %v B/s, implausibly low", bw)
		}
	}
	if s.Name() != "net_bandwidth" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestBandwidthSensorClamping(t *testing.T) {
	addr := startReflector(t)
	s := NewBandwidthSensor(addr, 1, time.Second)
	defer s.Close()
	if len(s.buf) != 64<<10 {
		t.Fatalf("probe size not clamped up: %d", len(s.buf))
	}
	s2 := NewBandwidthSensor(addr, 1<<30, time.Second)
	defer s2.Close()
	if len(s2.buf) != maxProbeBytes {
		t.Fatalf("probe size not clamped down: %d", len(s2.buf))
	}
}

func TestSensorsUnreachableReflector(t *testing.T) {
	s := NewLatencySensor("127.0.0.1:1", 4, 200*time.Millisecond)
	defer s.Close()
	if _, err := s.Measure(); err == nil {
		t.Fatal("measurement against nothing succeeded")
	}
	b := NewBandwidthSensor("127.0.0.1:1", 0, 200*time.Millisecond)
	defer b.Close()
	if _, err := b.Measure(); err == nil {
		t.Fatal("bandwidth against nothing succeeded")
	}
}

func TestSensorRedialsAfterReflectorRestart(t *testing.T) {
	r := NewReflector()
	addr, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewLatencySensor(addr, 4, time.Second)
	defer s.Close()
	if _, err := s.Measure(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := NewReflector()
	if _, err := r2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer r2.Close()
	// First call fails (dead connection), second redials.
	if _, err := s.Measure(); err == nil {
		t.Log("note: first post-restart measure unexpectedly succeeded")
	}
	if _, err := s.Measure(); err != nil {
		t.Fatalf("redial failed: %v", err)
	}
}

func TestReflectorRejectsOversizedProbe(t *testing.T) {
	addr := startReflector(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [5]byte
	hdr[0] = probeEcho
	binary.BigEndian.PutUint32(hdr[1:], maxProbeBytes+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("reflector answered an oversized probe")
	}
}

func TestReflectorRejectsUnknownProbeType(t *testing.T) {
	addr := startReflector(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xFF, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("reflector answered an unknown probe type")
	}
}

func TestReflectorCloseIdempotent(t *testing.T) {
	r := NewReflector()
	if _, err := r.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("Listen after Close succeeded")
	}
}

// The point of the package: network measurement series feed the same NWS
// forecasting engine as CPU availability.
func TestNetworkSeriesForecastable(t *testing.T) {
	addr := startReflector(t)
	s := NewLatencySensor(addr, 4, time.Second)
	defer s.Close()
	eng := forecast.NewDefaultEngine()
	for i := 0; i < 30; i++ {
		rtt, err := s.Measure()
		if err != nil {
			t.Fatal(err)
		}
		eng.Update(rtt)
	}
	pred, ok := eng.Forecast()
	if !ok {
		t.Fatal("no forecast")
	}
	if pred.Value <= 0 || pred.Value > 0.5 {
		t.Fatalf("latency forecast = %v s, implausible", pred.Value)
	}
}

func TestCliqueValidation(t *testing.T) {
	if _, err := NewClique(nil, nil, 0, time.Second); err == nil {
		t.Fatal("empty clique accepted")
	}
	if _, err := NewClique([]string{"a"}, []string{"x", "y"}, 0, time.Second); err == nil {
		t.Fatal("mismatched clique accepted")
	}
}

func TestCliqueMeasure(t *testing.T) {
	a := startReflector(t)
	b := startReflector(t)
	c, err := NewClique([]string{"hostA", "hostB"}, []string{a, b}, 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := c.Measure()
	for i := range m.Names {
		if m.Errs[i] != nil {
			t.Fatalf("%s: %v", m.Names[i], m.Errs[i])
		}
		if m.Latency[i] <= 0 || m.Bandwidth[i] < 1<<20 {
			t.Fatalf("%s: latency %v bandwidth %v", m.Names[i], m.Latency[i], m.Bandwidth[i])
		}
	}
	out := m.String()
	if !strings.Contains(out, "hostA") || !strings.Contains(out, "ok") {
		t.Fatalf("matrix render:\n%s", out)
	}
}

func TestCliquePartialFailure(t *testing.T) {
	a := startReflector(t)
	c, err := NewClique([]string{"up", "down"}, []string{a, "127.0.0.1:1"}, 0, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := c.Measure()
	if m.Errs[0] != nil {
		t.Fatalf("healthy member failed: %v", m.Errs[0])
	}
	if m.Errs[1] == nil {
		t.Fatal("dead member did not error")
	}
	if !strings.Contains(m.String(), "down") {
		t.Fatal("dead member missing from render")
	}
}
