package netsensor

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Clique measures the full pairwise network performance among a set of
// endpoints, the (simplified) role of the NWS clique protocol: every member
// runs a Reflector, and one coordinator walks the pairs taking latency and
// bandwidth samples. The real NWS token-passes so only one probe runs at a
// time clique-wide; a single-coordinator walk has the same property within
// one process.
type Clique struct {
	names []string
	addrs []string
	lat   []*LatencySensor
	bw    []*BandwidthSensor
}

// NewClique returns a coordinator probing the named reflector endpoints.
// names and addrs must be parallel, non-empty slices. probeBytes configures
// the bandwidth probes (see NewBandwidthSensor).
func NewClique(names, addrs []string, probeBytes int, timeout time.Duration) (*Clique, error) {
	if len(names) == 0 || len(names) != len(addrs) {
		return nil, errors.New("netsensor: clique needs parallel, non-empty names and addrs")
	}
	c := &Clique{names: names, addrs: addrs}
	for _, a := range addrs {
		c.lat = append(c.lat, NewLatencySensor(a, 4, timeout))
		c.bw = append(c.bw, NewBandwidthSensor(a, probeBytes, timeout))
	}
	return c, nil
}

// Matrix holds one round of pairwise measurements. Entry [i] describes the
// path coordinator -> member i. Failed probes leave NaN-free zero entries
// with Err set.
type Matrix struct {
	Names     []string
	Latency   []float64 // seconds
	Bandwidth []float64 // bytes/second
	Errs      []error
}

// Measure walks all members once, serially (one probe in flight at a time,
// as in the NWS clique token protocol).
func (c *Clique) Measure() Matrix {
	m := Matrix{
		Names:     c.names,
		Latency:   make([]float64, len(c.names)),
		Bandwidth: make([]float64, len(c.names)),
		Errs:      make([]error, len(c.names)),
	}
	for i := range c.names {
		rtt, err := c.lat[i].Measure()
		if err != nil {
			m.Errs[i] = err
			continue
		}
		bw, err := c.bw[i].Measure()
		if err != nil {
			m.Errs[i] = err
			continue
		}
		m.Latency[i] = rtt
		m.Bandwidth[i] = bw
	}
	return m
}

// Close releases every member connection.
func (c *Clique) Close() error {
	var first error
	for i := range c.lat {
		if err := c.lat[i].Close(); err != nil && first == nil {
			first = err
		}
		if err := c.bw[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// String renders the matrix as a small table.
func (m Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-12s %-14s %s\n", "member", "latency", "bandwidth", "status")
	for i, name := range m.Names {
		if m.Errs[i] != nil {
			fmt.Fprintf(&b, "%-16s %-12s %-14s %v\n", name, "-", "-", m.Errs[i])
			continue
		}
		fmt.Fprintf(&b, "%-16s %-12s %-14s ok\n", name,
			fmt.Sprintf("%.2fms", m.Latency[i]*1000),
			fmt.Sprintf("%.1fMB/s", m.Bandwidth[i]/(1<<20)))
	}
	return b.String()
}
